// Package knowphish is a Go reproduction of "Know Your Phish: Novel
// Techniques for Detecting Phishing Sites and their Targets" (Marchal,
// Saari, Singh, Asokan — ICDCS 2016).
//
// It exposes the paper's two systems behind a small API:
//
//   - a phishing Detector: 212 hand-designed, language-independent
//     features over the data sources a browser observes, classified by
//     gradient-boosted trees with a 0.7 discrimination threshold;
//   - a TargetIdentifier that extracts keyterms from a page and uses a
//     search engine to either confirm the page as legitimate or name the
//     brand a phishing page is mimicking;
//   - a Pipeline chaining both, using target identification to discard
//     detector false positives.
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface a downstream user needs. Experiments against the
// paper's tables and figures are driven by cmd/kpexperiments; see
// DESIGN.md and EXPERIMENTS.md.
package knowphish

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/dataset"
	"knowphish/internal/drift"
	"knowphish/internal/features"
	"knowphish/internal/feed"
	"knowphish/internal/feedsrc"
	"knowphish/internal/loadgen"
	"knowphish/internal/ml"
	"knowphish/internal/obs"
	"knowphish/internal/ocr"
	"knowphish/internal/ranking"
	"knowphish/internal/registry"
	"knowphish/internal/search"
	"knowphish/internal/serve"
	"knowphish/internal/slo"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// Re-exported core types. A Snapshot is what a scraper records when
// visiting one page (the paper's Section II-C data sources); everything
// in the library consumes Snapshots.
type (
	// Snapshot is one recorded page visit.
	Snapshot = webpage.Snapshot
	// Detector is the trained phishing classifier (Section IV).
	Detector = core.Detector
	// TrainConfig tunes detector training.
	TrainConfig = core.TrainConfig
	// Pipeline chains detection with target identification (Section
	// III-C).
	Pipeline = core.Pipeline
	// Outcome is a legacy (v1) pipeline verdict, embedded in Verdict.
	Outcome = core.Outcome
	// TargetIdentifier names the brand a phish mimics (Section V).
	TargetIdentifier = target.Identifier
	// TargetResult is a target identification outcome.
	TargetResult = target.Result
	// SearchEngine is the legitimate-web index used by target
	// identification.
	SearchEngine = search.Engine
	// RankList is the offline popularity list (feature 9 of Table IV).
	RankList = ranking.List
	// FeatureSet selects feature groups f1..f5.
	FeatureSet = features.Set
	// GBMConfig tunes the gradient-boosting classifier.
	GBMConfig = ml.GBMConfig
)

// Target identification verdicts.
const (
	VerdictLegitimate = target.VerdictLegitimate
	VerdictPhish      = target.VerdictPhish
	VerdictSuspicious = target.VerdictSuspicious
)

// DefaultThreshold is the paper's discrimination threshold (0.7).
const DefaultThreshold = core.DefaultThreshold

// ---------------------------------------------------------------------
// The v2 scoring API: request/verdict pairs with cancellation end to
// end. Build a ScoreRequest with NewScoreRequest plus functional
// options, then call Detector.ScoreCtx or Pipeline.AnalyzeCtx (or the
// batch/stream variants AnalyzeBatchCtx / AnalyzeStream). The verdict
// carries a label, per-stage timings and — when requested — the exact
// per-feature log-odds evidence behind the score. The context-free
// Score/Analyze methods remain as deprecated wrappers.

type (
	// ScoreRequest describes one page plus how to score it.
	ScoreRequest = core.ScoreRequest
	// ScoreOption is a functional option of NewScoreRequest.
	ScoreOption = core.ScoreOption
	// Verdict is the rich scoring result (label, evidence, timings).
	Verdict = core.Verdict
	// Explanation is a verdict's per-feature evidence.
	Explanation = core.Explanation
	// FeatureContribution is one feature's share of a verdict.
	FeatureContribution = features.Contribution
	// StageTimings reports where a verdict's latency went.
	StageTimings = core.StageTimings
	// ExplainLevel selects how much evidence a verdict carries.
	ExplainLevel = core.ExplainLevel
	// StreamResult is one completed item of Pipeline.AnalyzeStream.
	StreamResult = core.StreamResult
)

// Explain levels.
const (
	ExplainNone = core.ExplainNone
	ExplainTop  = core.ExplainTop
	ExplainFull = core.ExplainFull
)

// Verdict labels.
const (
	LabelPhishing   = core.LabelPhishing
	LabelLegitimate = core.LabelLegitimate
)

// NewScoreRequest builds a v2 scoring request for one snapshot.
func NewScoreRequest(snap *Snapshot, opts ...ScoreOption) ScoreRequest {
	return core.NewScoreRequest(snap, opts...)
}

// WithDeadline bounds the scoring work per request.
func WithDeadline(d time.Duration) ScoreOption { return core.WithDeadline(d) }

// WithExplain attaches per-feature evidence to the verdict.
func WithExplain(level ExplainLevel) ScoreOption { return core.WithExplain(level) }

// WithTopFeatures caps an ExplainTop explanation at n contributions.
func WithTopFeatures(n int) ScoreOption { return core.WithTopFeatures(n) }

// WithoutTargetID skips target identification on detector positives.
func WithoutTargetID() ScoreOption { return core.WithoutTargetID() }

// WithFeatureSet restricts scoring to the given feature groups
// (inference-time ablation).
func WithFeatureSet(s FeatureSet) ScoreOption { return core.WithFeatureSet(s) }

// ParseExplainLevel parses "none", "top" or "full".
func ParseExplainLevel(s string) (ExplainLevel, error) { return core.ParseExplainLevel(s) }

// Feature groups of Table III.
const (
	F1      = features.F1
	F2      = features.F2
	F3      = features.F3
	F4      = features.F4
	F5      = features.F5
	AllSets = features.All
)

// Serving types: the HTTP scoring service of internal/serve. A Server
// answers /v1/score, /v1/score/batch and /v1/target, fanning work out
// over the same worker-pool primitive (internal/pool) that backs
// ExtractBatch and the library batch methods, with a sharded verdict
// cache and /healthz + /metrics introspection.
type (
	// Server is the HTTP scoring service (an http.Handler).
	Server = serve.Server
	// ServerConfig assembles a Server.
	ServerConfig = serve.Config
	// PageRequest is one page to score (snapshot or raw HTML).
	PageRequest = serve.PageRequest
	// BatchRequest scores many pages in one call.
	BatchRequest = serve.BatchRequest
	// ScoreResponse is the verdict for one page.
	ScoreResponse = serve.ScoreResponse
	// BatchResponse carries per-page verdicts in request order.
	BatchResponse = serve.BatchResponse
	// TargetResponse is the /v1/target document.
	TargetResponse = serve.TargetResponse
	// HealthResponse is the /healthz document.
	HealthResponse = serve.HealthResponse
	// MetricsSnapshot is the /metrics document.
	MetricsSnapshot = serve.MetricsSnapshot
	// FeedRequest enqueues URLs via POST /v1/feed.
	FeedRequest = serve.FeedRequest
	// FeedResponse reports per-URL acceptance.
	FeedResponse = serve.FeedResponse
	// VerdictsResponse is the GET /v1/verdicts document.
	VerdictsResponse = serve.VerdictsResponse

	// ScoreOptions are the per-request knobs of the v2 HTTP surface.
	ScoreOptions = serve.ScoreOptions
	// V2ScoreRequest is the POST /v2/score (and stream item) document.
	V2ScoreRequest = serve.V2ScoreRequest
	// V2ScoreResponse is the rich verdict document of /v2/score.
	V2ScoreResponse = serve.V2ScoreResponse
	// V2TargetResponse is the POST /v2/target document.
	V2TargetResponse = serve.V2TargetResponse
	// V2StreamResult is one NDJSON line of a /v2/score/stream response.
	V2StreamResult = serve.V2StreamResult
)

// NewServer builds the HTTP scoring service over a trained detector and
// a target identifier.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// Feed-ingestion types: the continuous pipeline of internal/feed (URL
// feeds → bounded queue → per-domain-rate-limited crawl → score →
// persist) and the durable verdict store of internal/store backing it.
type (
	// FeedScheduler is the continuous ingestion pipeline.
	FeedScheduler = feed.Scheduler
	// FeedConfig assembles a FeedScheduler.
	FeedConfig = feed.Config
	// FeedStats are the scheduler counters (queue depth, throughput,
	// retries).
	FeedStats = feed.Stats
	// Fetcher resolves URLs to pages; the synthetic World satisfies it.
	Fetcher = crawl.Fetcher
	// Page is one fetchable resource of the (synthetic) web.
	Page = webgen.Page

	// VerdictBackend is the pluggable storage engine behind the verdict
	// log: segmented write-ahead log (default), legacy single-file
	// JSONL, or in-memory. See OpenVerdictStore.
	VerdictBackend = store.Backend
	// VerdictStore is the legacy single-file JSONL verdict log.
	//
	// Deprecated: use VerdictBackend; OpenVerdictStore returns one.
	VerdictStore = store.Store
	// StoreConfig assembles a VerdictBackend (Backend selects the
	// engine; Path is a directory for the segmented engine).
	StoreConfig = store.Config
	// VerdictRecord is one persisted verdict.
	VerdictRecord = store.Record
	// VerdictQuery filters VerdictBackend.Scan (and the deprecated
	// VerdictStore.Select).
	VerdictQuery = store.Query
	// VerdictPage is one cursor-paginated VerdictBackend.Scan result.
	VerdictPage = store.ScanPage
	// StoreStats are the store counters (records, segments,
	// compactions, snapshot state).
	StoreStats = store.Stats
)

// Storage engine names for StoreConfig.Backend.
const (
	BackendSegmented = store.BackendSegmented
	BackendLegacy    = store.BackendLegacy
	BackendMemory    = store.BackendMemory
)

// Feed rejection reasons returned by FeedScheduler.Enqueue.
var (
	ErrFeedQueueFull  = feed.ErrQueueFull
	ErrFeedDuplicate  = feed.ErrDuplicate
	ErrFeedInvalidURL = feed.ErrInvalidURL
	ErrFeedClosed     = feed.ErrClosed
)

// NewFeed validates the configuration and starts the ingestion worker
// loop.
func NewFeed(cfg FeedConfig) (*FeedScheduler, error) { return feed.New(cfg) }

// OpenVerdictStore opens (creating if necessary) a verdict store with
// the engine named by cfg.Backend — the segmented write-ahead log by
// default. A legacy JSONL log found at cfg.Path is migrated into
// segments on first open.
func OpenVerdictStore(cfg StoreConfig) (VerdictBackend, error) { return store.Open(cfg) }

// OpenStore opens the legacy single-file JSONL verdict store and
// replays its log into memory.
//
// Deprecated: use OpenVerdictStore, which defaults to the segmented
// engine and migrates legacy logs in place.
func OpenStore(cfg StoreConfig) (*VerdictStore, error) { return store.OpenLegacy(cfg) }

// Feed-connector types: the external URL-feed sources of
// internal/feedsrc (PhishTank/OpenPhish-style JSON feeds, ranked benign
// CSV lists, CT-log-style NDJSON streams) and the Mux that polls them
// with resumable cursors, per-source rate shares and cross-source
// dedupe, fanning accepted URLs into the FeedScheduler with provenance
// carried to VerdictRecord.Source.
type (
	// FeedSource is one pollable external URL feed.
	FeedSource = feedsrc.Source
	// FeedItem is one URL a source produced.
	FeedItem = feedsrc.Item
	// FeedMux drives a set of FeedSources into the scheduler.
	FeedMux = feedsrc.Mux
	// FeedMuxConfig assembles a FeedMux.
	FeedMuxConfig = feedsrc.MuxConfig
	// FeedSourceStats is one connector's health snapshot (cursor, lag,
	// fetch/error/reject counters), exported at /metrics.
	FeedSourceStats = feedsrc.SourceStats
	// FeedRejectStats breaks a source's non-enqueued URLs down by
	// reason.
	FeedRejectStats = feedsrc.RejectStats
)

// NewFeedMux validates the configuration, restores persisted cursors
// and starts one polling goroutine per source.
func NewFeedMux(cfg FeedMuxConfig) (*FeedMux, error) { return feedsrc.NewMux(cfg) }

// NewJSONFeedSource polls a PhishTank/OpenPhish-style JSON feed,
// resuming past the highest entry id seen.
func NewJSONFeedSource(name, url string, client *http.Client) FeedSource {
	return feedsrc.NewJSONFeed(name, url, client)
}

// NewRankedCSVSource walks a Tranco-style "rank,domain" CSV benign
// list in batches, resuming at the last consumed row.
func NewRankedCSVSource(name, url string, client *http.Client, maxBatch int) FeedSource {
	return feedsrc.NewRankedCSV(name, url, client, maxBatch)
}

// NewNDJSONStreamSource tails a CT-log-style NDJSON stream with HTTP
// range requests, resuming at the byte offset past the last complete
// line.
func NewNDJSONStreamSource(name, url string, client *http.Client) FeedSource {
	return feedsrc.NewNDJSONStream(name, url, client)
}

// Load-generation types: the closed/open-loop harness of
// internal/loadgen behind cmd/kpload, replaying a URL corpus against a
// running server's POST /v1/feed and measuring sustained throughput,
// latency percentiles and queue depth.
type (
	// LoadConfig describes one load run.
	LoadConfig = loadgen.Config
	// LoadReport is the outcome (the LOAD_PR.json document).
	LoadReport = loadgen.Report
)

// RunLoad executes one load test against a running server.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) { return loadgen.Run(ctx, cfg) }

// ---------------------------------------------------------------------
// The model lifecycle subsystem: a versioned, content-hashed model
// registry serving the current champion behind an atomic pointer
// (zero-downtime hot swap), drift monitors over live traffic
// (score-distribution PSI, per-feature population drift, phish-rate
// shift), and a Lifecycle controller that closes the loop — background
// retrain from store-persisted verdicts, challenger shadow-scoring, and
// a gated champion promotion.

type (
	// ModelRegistry is the versioned on-disk model store; it implements
	// DetectorSource, serving the champion lock-free.
	ModelRegistry = registry.Registry
	// ModelManifest describes one registered model version (content
	// hash, feature-set hash, training stats, created-at).
	ModelManifest = registry.Manifest
	// RegistryModel pairs a loaded detector with its manifest.
	RegistryModel = registry.Model
	// TrainingStats records a model's training provenance.
	TrainingStats = registry.TrainingStats

	// DetectorSource yields the detector scoring paths use right now —
	// the hot-swap seam of the serving and ingestion layers.
	DetectorSource = core.DetectorSource
	// SwappableSource is a DetectorSource swapped with one atomic store.
	SwappableSource = core.SwappableSource

	// DriftMonitor watches live traffic for distribution shift.
	DriftMonitor = drift.Monitor
	// DriftConfig tunes the drift monitor's windows and thresholds.
	DriftConfig = drift.Config
	// DriftStatus carries the drift gauges (PSI values, rate shift).
	DriftStatus = drift.Status
	// Lifecycle is the champion/challenger controller: observe →
	// retrain → shadow → gate → promote.
	Lifecycle = drift.Lifecycle
	// LifecycleConfig assembles a Lifecycle.
	LifecycleConfig = drift.LifecycleConfig
	// LifecycleStatus is the lifecycle introspection document.
	LifecycleStatus = drift.LifecycleStatus
	// PromotionDecision is a promotion-gate ruling.
	PromotionDecision = drift.Decision
	// ModelEvaluation compares champion and challenger held-out metrics.
	ModelEvaluation = drift.Evaluation

	// ModelsResponse is the GET /v2/models document.
	ModelsResponse = serve.ModelsResponse
	// PromoteRequest is the POST /v2/models/promote document.
	PromoteRequest = serve.PromoteRequest
	// PromoteResponse reports a completed promotion.
	PromoteResponse = serve.PromoteResponse
)

// Lifecycle errors.
var (
	ErrNoChampion     = registry.ErrNoChampion
	ErrRetrainRunning = drift.ErrRetrainRunning
	ErrGateRefused    = drift.ErrGateRefused
)

// OpenModelRegistry opens (creating if necessary) a versioned model
// registry and loads its champion, if one was promoted. rank is wired
// into loaded detectors (it is not embedded in artifacts).
func OpenModelRegistry(dir string, rank *RankList) (*ModelRegistry, error) {
	return registry.Open(dir, rank)
}

// NewDriftMonitor builds a sliding-window drift monitor.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor { return drift.NewMonitor(cfg) }

// NewLifecycle builds the champion/challenger lifecycle controller.
func NewLifecycle(cfg LifecycleConfig) (*Lifecycle, error) { return drift.NewLifecycle(cfg) }

// StaticSource wraps a fixed detector as a DetectorSource.
func StaticSource(d *Detector) DetectorSource { return core.StaticSource(d) }

// NewSwappableSource returns a source initially serving d (may be nil).
func NewSwappableSource(d *Detector) *SwappableSource { return core.NewSwappableSource(d) }

// FeatureSetHash fingerprints the feature schema of a feature-group
// selection; models sharing it are hot-swap compatible.
func FeatureSetHash(set FeatureSet) string { return registry.FeatureSetHash(set) }

// WithVectorCapture retains the extracted feature vector on the verdict
// (drift monitors read it); never serialized.
func WithVectorCapture() ScoreOption { return core.WithVectorCapture() }

// PageAnalysis is the derived, feature-ready view of a Snapshot (URLs
// parsed, links classified, term distributions built).
type PageAnalysis = webpage.Analysis

// AnalyzePage computes a snapshot's analysis once; pass it to repeated
// scoring requests via WithAnalysis to skip the analysis stage.
func AnalyzePage(s *Snapshot) *PageAnalysis { return webpage.Analyze(s) }

// WithAnalysis supplies a precomputed page analysis, skipping the
// analysis stage — the cached-page fast path, which scores without any
// heap allocation.
func WithAnalysis(a *PageAnalysis) ScoreOption { return core.WithAnalysis(a) }

// Fingerprint hashes a snapshot's content fields into the stable page
// identity used by the verdict cache and the store's compaction.
func Fingerprint(s *Snapshot) string { return webpage.Fingerprint(s) }

// LoadSearchEngine restores an index saved with SearchEngine.Save (kpgen
// writes one as index.json).
func LoadSearchEngine(r io.Reader) (*SearchEngine, error) { return search.Load(r) }

// SnapshotFromHTML builds a Snapshot from raw page HTML plus visit
// metadata, resolving relative links against the landing URL. Use it to
// feed real scraped pages into the detector.
func SnapshotFromHTML(startingURL, landingURL string, redirectionChain []string, html string) Snapshot {
	return webpage.FromHTML(startingURL, landingURL, redirectionChain, html)
}

// Train fits a detector on labeled snapshots (label 1 = phishing).
func Train(snaps []*Snapshot, labels []int, cfg TrainConfig) (*Detector, error) {
	return core.Train(snaps, labels, cfg)
}

// LoadDetector restores a detector saved with Detector.Save. rank may be
// nil (all domains treated as unranked).
func LoadDetector(r io.Reader, rank *RankList) (*Detector, error) {
	return core.Load(r, rank)
}

// NewTargetIdentifier builds a target identifier over a search engine
// with the paper's defaults (top-5 keyterms, OCR fallback enabled).
func NewTargetIdentifier(engine *SearchEngine) *TargetIdentifier {
	return target.New(engine)
}

// NewSearchEngine returns an empty legitimate-web index.
func NewSearchEngine() *SearchEngine { return search.NewEngine() }

// NewOCR returns the default simulated OCR recognizer.
func NewOCR() *ocr.Recognizer { return ocr.Default() }

// ReadRankList parses a popularity list in Alexa CSV format
// ("rank,domain" per line).
func ReadRankList(r io.Reader) (*RankList, error) { return ranking.Read(r) }

// Synthetic-world helpers: the evaluation substrate of this reproduction.
// They let examples and downstream experiments generate realistic
// labeled corpora without live crawling.
type (
	// World is the synthetic web (brands, hosting, languages).
	World = webgen.World
	// WorldConfig tunes world generation.
	WorldConfig = webgen.Config
	// Corpus bundles the Table V evaluation campaigns.
	Corpus = dataset.Corpus
	// CorpusConfig tunes corpus generation.
	CorpusConfig = dataset.Config
)

// NewWorld generates a synthetic web.
func NewWorld(cfg WorldConfig) *World { return webgen.New(cfg) }

// BuildCorpus generates the Table V evaluation campaigns over a fresh
// world.
func BuildCorpus(cfg CorpusConfig) (*Corpus, error) { return dataset.Build(cfg) }

// VisitSite crawls a generated site into a Snapshot.
func VisitSite(w *World, site *webgen.Site) (*Snapshot, error) {
	return crawl.VisitSite(w, site)
}

// ---------------------------------------------------------------------
// Observability: the internal/obs telemetry layer. A Tracer records
// per-stage request traces (crawl → analyze → extract → score →
// identify → persist) into a ring of recent traces plus a slow/error
// exemplar reservoir; wire one into ServerConfig.Tracer and
// FeedConfig.Tracer, and pass a structured Logger alongside. Both are
// nil-safe: an unconfigured pipeline pays no tracing or logging cost.

type (
	// Tracer records request traces and per-stage latency histograms.
	Tracer = obs.Tracer
	// TracerConfig tunes the trace ring, exemplar reservoir and slow
	// threshold.
	TracerConfig = obs.Config
	// TraceStage names one pipeline stage of a trace.
	TraceStage = obs.Stage
	// RequestTrace is one in-flight trace, carried on the context.
	RequestTrace = obs.Trace
	// TraceSummary aggregates tracer counters and per-stage latency for
	// /metrics.
	TraceSummary = obs.Summary
	// LatencyHist is the lock-free exponential-bucket latency histogram
	// shared by the server and the tracer.
	LatencyHist = obs.Hist
)

// Trace stages, in pipeline order.
const (
	StageCrawl       = obs.StageCrawl
	StageAnalyze     = obs.StageAnalyze
	StageExtract     = obs.StageExtract
	StageScore       = obs.StageScore
	StageIdentify    = obs.StageIdentify
	StageExplain     = obs.StageExplain
	StageStoreAppend = obs.StageStoreAppend
)

// NewTracer builds a request tracer.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewTracer(cfg) }

// NewLogger builds a structured logger writing to w. level is "debug",
// "info", "warn" or "error"; format is "text" or "json".
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// NopLogger returns a logger that discards everything — the default
// wherever a config Logger field is nil.
func NopLogger() *slog.Logger { return obs.NopLogger() }

// TraceFromContext returns the request trace carried by ctx, or nil.
// The returned trace's methods are nil-safe, so callers never branch.
func TraceFromContext(ctx context.Context) *RequestTrace { return obs.TraceFrom(ctx) }

// ---------------------------------------------------------------------
// SLOs and overload control: the internal/slo error-budget engine plus
// the windowed-telemetry primitives it runs on. Parse "-slo"-style
// specs with ParseSLOs, build an SLOEngine, wire it into
// ServerConfig.SLO and start SLOEngine.Run; the server then answers
// GET /debug/slo, reflects the state in /healthz and /metrics, and
// sheds low-priority request classes under sustained budget burn. An
// EventJournal (ServerConfig.Journal) records the transitions at
// GET /debug/events.

type (
	// SLOObjective is one parsed objective (latency quantile target or
	// availability floor) on an endpoint class.
	SLOObjective = slo.Objective
	// SLOConfig assembles an SLOEngine (windows, burn thresholds,
	// hysteresis).
	SLOConfig = slo.Config
	// SLOEngine evaluates objectives as multi-window multi-burn-rate
	// error budgets and drives the admission controller's shed level.
	SLOEngine = slo.Engine
	// SLOState is an objective's (or the engine's worst) alert state.
	SLOState = slo.State
	// SLOStatus is the GET /debug/slo document.
	SLOStatus = slo.Status
	// SLOObjectiveStatus is one objective's entry in SLOStatus.
	SLOObjectiveStatus = slo.ObjectiveStatus

	// EventJournal is the fixed-size operational event ring behind
	// GET /debug/events.
	EventJournal = obs.Journal
	// JournalEvent is one recorded operational event.
	JournalEvent = obs.Event

	// WindowedLatencyHist is a time-bucketed ring of LatencyHists
	// answering "what is p99 right now" over rolling windows.
	WindowedLatencyHist = obs.WindowedHist
	// WindowSummary is one rolling window's rendered percentiles.
	WindowSummary = obs.WindowSummary
)

// SLO alert states.
const (
	SLOStateOK   = slo.StateOK
	SLOStateWarn = slo.StateWarn
	SLOStatePage = slo.StatePage
)

// ParseSLOs parses "-slo"-style objective specs, e.g.
// "score:p99<250ms,avail>99.9".
func ParseSLOs(specs []string) ([]SLOObjective, error) { return slo.ParseObjectives(specs) }

// NewSLOEngine builds an error-budget engine; nil (inert) when cfg has
// no objectives. Start it with SLOEngine.Run.
func NewSLOEngine(cfg SLOConfig) *SLOEngine { return slo.New(cfg) }

// NewEventJournal builds a fixed-size operational event journal
// (size <= 0 selects the default capacity).
func NewEventJournal(size int) *EventJournal { return obs.NewJournal(size) }

// NewWindowedLatencyHist builds a windowed latency histogram; clock nil
// means time.Now.
func NewWindowedLatencyHist(clock func() time.Time) *WindowedLatencyHist {
	return obs.NewWindowedHist(clock)
}
