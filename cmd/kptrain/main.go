// Command kptrain trains the phishing detection model on the synthetic
// training campaigns (legTrain + phishTrain) and saves it as JSON, along
// with a quick held-out evaluation.
//
// Usage:
//
//	kptrain -model model.json -scale 10 -seed 1 -trees 120
//	kptrain -registry models/ -scale 10 -seed 1    # versioned artifact
//
// With -registry the model becomes the next content-hashed version in a
// model registry (see internal/registry): manifest with training stats,
// held-out metrics and the feature-set hash, promoted to champion when
// the registry has none yet (or when -promote is set). Training is
// deterministic for a fixed -seed, so the artifact's content hash is
// reproducible across runs — CI checks this round-trips.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/registry"
	"knowphish/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kptrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath   = flag.String("model", "model.json", "output model path (ignored with -registry)")
		registryDir = flag.String("registry", "", "write the model into this registry directory as the next content-hashed version")
		promote     = flag.Bool("promote", false, "promote the saved version to champion (implied when the registry has no champion)")
		scale       = flag.Int("scale", 10, "corpus scale divisor")
		seed        = flag.Int64("seed", 1, "generation and training seed")
		trees       = flag.Int("trees", 120, "boosting rounds")
		depth       = flag.Int("depth", 4, "tree depth")
		threshold   = flag.Float64("threshold", core.DefaultThreshold, "discrimination threshold")
		set         = flag.String("features", "fall", "feature set: f1 f2 f3 f4 f5 f1,5 f2,3,4 fall")
	)
	flag.Parse()
	if *promote && *registryDir == "" {
		return errors.New("-promote requires -registry")
	}

	fset, err := parseFeatureSet(*set)
	if err != nil {
		return err
	}

	fmt.Printf("building corpus (scale 1/%d)...\n", *scale)
	corpus, err := dataset.Build(dataset.Config{
		Seed:              *seed,
		Scale:             *scale,
		World:             webgen.Config{Seed: *seed + 1},
		SkipLanguageTests: true,
	})
	if err != nil {
		return err
	}

	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	fmt.Printf("training on %d instances (%d legitimate, %d phishing)...\n",
		len(snaps), corpus.LegTrain.Clean(), corpus.PhishTrain.Clean())

	det, err := core.Train(snaps, labels, core.TrainConfig{
		GBM:        ml.GBMConfig{Trees: *trees, MaxDepth: *depth, Subsample: 0.8, MinLeaf: 5, Seed: *seed + 2},
		Threshold:  *threshold,
		FeatureSet: fset,
		Rank:       corpus.World.Ranking(),
	})
	if err != nil {
		return err
	}

	// Held-out check on phishTest + the English set, scored over the
	// context-aware batch path (all cores).
	var reqs []core.ScoreRequest
	var truth []int
	for _, ex := range corpus.PhishTest.Examples {
		reqs = append(reqs, core.NewScoreRequest(ex.Snapshot))
		truth = append(truth, 1)
	}
	for _, ex := range corpus.LangTests[webgen.English].Examples {
		reqs = append(reqs, core.NewScoreRequest(ex.Snapshot))
		truth = append(truth, 0)
	}
	verdicts, err := det.ScoreBatchCtx(context.Background(), reqs, 0)
	if err != nil {
		return err
	}
	scores := make([]float64, len(verdicts))
	for i, v := range verdicts {
		scores[i] = v.Score
	}
	conf := ml.Evaluate(scores, truth, det.Threshold())
	auc := ml.AUC(scores, truth)
	fmt.Printf("held-out: precision=%.3f recall=%.3f fpr=%.4f auc=%.4f\n",
		conf.Precision(), conf.Recall(), conf.FPR(), auc)

	if *registryDir != "" {
		reg, err := registry.Open(*registryDir, corpus.World.Ranking())
		if err != nil {
			return err
		}
		phish := 0
		for _, y := range labels {
			phish += y
		}
		man, err := reg.Save(det, registry.TrainingStats{
			Samples:         len(snaps),
			Phish:           phish,
			Legitimate:      len(snaps) - phish,
			HeldOutAUC:      auc,
			HeldOutAccuracy: conf.Accuracy(),
			Source:          "synthetic-corpus",
		}, fmt.Sprintf("kptrain -scale %d -seed %d -trees %d", *scale, *seed, *trees))
		if err != nil {
			return err
		}
		fmt.Printf("registered %s (hash %s) in %s\n", man.Version, man.Hash[:12], *registryDir)
		if *promote || reg.ChampionVersion() == "" {
			if _, err := reg.SetChampion(man.Version); err != nil {
				return err
			}
			fmt.Printf("champion: %s\n", man.Version)
		}
		return nil
	}

	f, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	if err := det.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *modelPath)
	return nil
}

func parseFeatureSet(s string) (features.Set, error) {
	switch s {
	case "f1":
		return features.F1, nil
	case "f2":
		return features.F2, nil
	case "f3":
		return features.F3, nil
	case "f4":
		return features.F4, nil
	case "f5":
		return features.F5, nil
	case "f1,5":
		return features.F15, nil
	case "f2,3,4":
		return features.F234, nil
	case "fall", "":
		return features.All, nil
	default:
		return 0, fmt.Errorf("unknown feature set %q", s)
	}
}
