// Command knowphish runs the full detection + target-identification
// pipeline interactively against the synthetic web: it generates pages
// (or loads snapshots from a kpgen dump), classifies each one, and — for
// detector positives — names the mimicked target.
//
// Usage:
//
//	knowphish -demo 10               # classify 10 fresh pages
//	knowphish -snapshots phishTest.json -limit 20
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/dataset"
	"knowphish/internal/ml"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "knowphish:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		demo      = flag.Int("demo", 10, "classify this many freshly generated pages")
		snapsPath = flag.String("snapshots", "", "classify snapshots from a kpgen campaign JSON instead")
		limit     = flag.Int("limit", 20, "max snapshots to classify from -snapshots")
		scale     = flag.Int("scale", 25, "corpus scale for the training pass")
		seed      = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	fmt.Printf("building world and training detector (scale 1/%d)...\n", *scale)
	corpus, err := dataset.Build(dataset.Config{
		Seed:              *seed,
		Scale:             *scale,
		World:             webgen.Config{Seed: *seed + 1},
		SkipLanguageTests: true,
	})
	if err != nil {
		return err
	}
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	det, err := core.Train(snaps, labels, core.TrainConfig{
		GBM:  ml.GBMConfig{Trees: 100, MaxDepth: 4, Subsample: 0.8, MinLeaf: 5, Seed: *seed + 2},
		Rank: corpus.World.Ranking(),
	})
	if err != nil {
		return err
	}
	pipe := &core.Pipeline{Detector: det, Identifier: target.New(corpus.Engine)}

	if *snapsPath != "" {
		return classifyFile(pipe, *snapsPath, *limit)
	}
	return classifyDemo(pipe, corpus, *demo, *seed)
}

func classifyDemo(pipe *core.Pipeline, corpus *dataset.Corpus, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 9))
	w := corpus.World
	for i := 0; i < n; i++ {
		var site *webgen.Site
		truth := "legitimate"
		if i%2 == 1 {
			site = w.NewPhishSite(rng, w.RandomPhishOptions(rng))
			truth = fmt.Sprintf("phish targeting %s", site.TargetRDN)
		} else {
			site = w.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		}
		snap, err := crawl.VisitSite(w, site)
		if err != nil {
			return err
		}
		v, err := pipe.AnalyzeCtx(context.Background(), core.NewScoreRequest(snap))
		if err != nil {
			return err
		}
		printOutcome(v.Outcome, snap, truth)
	}
	return nil
}

func classifyFile(pipe *core.Pipeline, path string, limit int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var camp dataset.Campaign
	if err := json.NewDecoder(f).Decode(&camp); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	for i, ex := range camp.Examples {
		if i >= limit {
			break
		}
		truth := "legitimate"
		if ex.Label == 1 {
			truth = fmt.Sprintf("phish targeting %s", ex.TargetRDN)
		}
		v, err := pipe.AnalyzeCtx(context.Background(), core.NewScoreRequest(ex.Snapshot))
		if err != nil {
			return err
		}
		printOutcome(v.Outcome, ex.Snapshot, truth)
	}
	return nil
}

func printOutcome(out core.Outcome, snap *webpage.Snapshot, truth string) {
	verdict := "LEGITIMATE"
	if out.FinalPhish {
		verdict = "PHISH"
	}
	fmt.Printf("%-10s score=%.3f  %s\n", verdict, out.Score, snap.StartingURL)
	fmt.Printf("           truth: %s\n", truth)
	if out.TargetRun {
		fmt.Printf("           target-id: %s", out.Target.Verdict)
		if len(out.Target.Candidates) > 0 {
			fmt.Printf(" candidates:")
			for i, c := range out.Target.Candidates {
				if i == 3 {
					break
				}
				fmt.Printf(" %s", c.RDN)
			}
		}
		fmt.Println()
	}
}
