// Command kpload is the load-generation harness for kpserve: it replays
// a URL corpus against POST /v1/feed in a closed or open loop and
// reports what the service sustained — throughput, latency percentiles
// (p50/p99/p999), error and drop rates, and the feed queue depth
// scraped from /metrics — as a human table and, with -json, as the
// LOAD_PR.json artifact the CI smoke uploads.
//
// Two subcommands:
//
//	kpload gen  -seed 42 -out corpus.txt
//	kpload run  -target http://127.0.0.1:8080 -corpus corpus.txt -qps 200 -duration 30s
//	kpload run  -self -duration 5s -json LOAD_PR.json
//
// gen emits a synthetic corpus of brand-site URLs from the same
// deterministic world a self-trained kpserve crawls. Pass kpserve's
// -seed value: gen derives the world seed the same way kpserve does, so
// every generated URL resolves in that server's world. Against a
// kpserve with a live crawler, feed it a captured corpus instead — the
// file format is one URL per line, #-comments ignored.
//
// run drives the load. With -qps 0 (the default) workers run a closed
// loop — each fires its next request when the previous response lands —
// measuring the service's throughput ceiling at that concurrency. With
// -qps > 0 arrivals are paced at the target rate regardless of response
// times (an open loop), so reported latency includes queueing delay,
// the number closed loops hide. -self skips the network target and
// boots a complete in-process kpserve (self-trained detector, feed
// pipeline, in-memory verdict store) on a loopback listener, then loads
// it: a one-command macro benchmark needing nothing running.
//
// Overload testing: -endpoint score drives uncached POST /v1/score
// requests instead of feed batches; with -self, repeatable -slo specs
// (plus -slo-fast/-slo-slow/-slo-holddown and -serve-workers) arm the
// self server's SLO engine and admission controller. Shed 503s are
// broken out in the report (shed count, shed rate, Retry-After backoffs
// honored). -expect-shed turns the run into an overload smoke: it exits
// nonzero unless shedding engaged, the server's ledger accounts for
// every accepted request, and the engine recovered to ok afterwards —
// the OVERLOAD_PR.json artifact in nightly CI:
//
//	kpload run -self -endpoint score -serve-workers 2 \
//	    -slo "score:p99<250ms,avail>99" -slo-fast 5s -slo-slow 30s -slo-holddown 2s \
//	    -qps 300 -duration 20s -expect-shed -json OVERLOAD_PR.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/feed"
	"knowphish/internal/loadgen"
	"knowphish/internal/ml"
	"knowphish/internal/obs"
	"knowphish/internal/serve"
	"knowphish/internal/slo"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
)

// multiFlag collects a repeatable string flag (-slo may be given once
// per objective).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kpload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: kpload <gen|run> [flags]\nrun 'kpload gen -h' or 'kpload run -h' for flags")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "run":
		return runLoad(args[1:])
	case "-h", "-help", "--help":
		return fmt.Errorf("usage: kpload <gen|run> [flags]")
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or run)", args[0])
	}
}

// runGen emits a corpus of resolvable brand-site URLs from the
// deterministic synthetic world.
func runGen(args []string) error {
	fs := flag.NewFlagSet("kpload gen", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "kpserve's -seed; the world seed is derived from it the same way kpserve derives it")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	urls := genCorpus(*seed)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# kpload corpus: %d brand-site URLs from the seed-%d world\n", len(urls), *seed)
	for _, u := range urls {
		fmt.Fprintln(bw, u)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "kpload: wrote %d URLs to %s\n", len(urls), *out)
	}
	return nil
}

// genCorpus lists every persistent brand page of the world a kpserve
// started with -seed serveSeed crawls. The +1 mirrors kpserve's
// buildCorpus: the world seed is the service seed plus one.
func genCorpus(serveSeed int64) []string {
	w := webgen.New(webgen.Config{Seed: serveSeed + 1})
	var urls []string
	for _, b := range w.Brands {
		urls = append(urls, w.BrandSiteURLs(b)...)
	}
	return urls
}

// runLoad drives one load test and prints the report.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("kpload run", flag.ContinueOnError)
	targetURL := fs.String("target", "", "kpserve base URL (e.g. http://127.0.0.1:8080); mutually exclusive with -self")
	self := fs.Bool("self", false, "boot an in-process kpserve on loopback and load that instead of -target")
	corpusPath := fs.String("corpus", "", "URL corpus file, one per line (-self defaults to the generated world corpus)")
	qps := fs.Float64("qps", 0, "open-loop target rate in URLs/second (0 = closed loop: measure the ceiling)")
	workers := fs.Int("workers", loadgen.DefaultWorkersForHost(), "concurrent request workers")
	ramp := fs.Duration("ramp", 0, "stagger worker start over this window")
	duration := fs.Duration("duration", 10*time.Second, "run length (ignored with -requests)")
	requests := fs.Int("requests", 0, "fixed request budget instead of -duration (reproducible runs)")
	batch := fs.Int("batch", 1, "URLs per /v1/feed request")
	endpoint := fs.String("endpoint", "feed", "endpoint to load: feed (POST /v1/feed batches) or score (POST /v1/score, one uncached page per request)")
	shedBackoff := fs.Duration("shed-backoff", loadgen.DefaultShedBackoff, "cap on how long a worker honors a shed 503's Retry-After")
	pageBytes := fs.Int("page-bytes", loadgen.DefaultPageBytes, "with -endpoint score: approximate HTML size per submitted page (bigger = more server work per request)")
	cacheMix := fs.Float64("cache-mix", 0, "with -endpoint score: fraction (0..1) of requests replaying a small hot page set — warm traffic for the verdict cache and the coalescer's stage memos")
	jsonOut := fs.String("json", "", "also write the report as JSON (the LOAD_PR.json artifact)")
	seed := fs.Int64("seed", 42, "with -self: the service seed (detector, world)")
	scale := fs.Int("scale", 20, "with -self: corpus downscale divisor for self-training (higher = faster boot)")
	feedWorkers := fs.Int("feed-workers", 0, "with -self: feed pipeline workers (0 = GOMAXPROCS)")
	feedQueue := fs.Int("feed-queue", 0, "with -self: feed queue depth (0 = default)")
	serveWorkers := fs.Int("serve-workers", 0, "with -self: serve worker-pool bound (0 = GOMAXPROCS); lower it to make overload reachable")
	var sloSpecs multiFlag
	fs.Var(&sloSpecs, "slo", "with -self: SLO objective spec, e.g. \"score:p99<250ms,avail>99.9\" (repeatable)")
	sloFast := fs.Duration("slo-fast", slo.DefaultFastWindow, "with -self -slo: fast burn-rate window")
	sloSlow := fs.Duration("slo-slow", slo.DefaultSlowWindow, "with -self -slo: slow burn-rate window")
	sloHold := fs.Duration("slo-holddown", slo.DefaultHoldDown, "with -self -slo: state fall hold-down")
	expectShed := fs.Bool("expect-shed", false, "assert the run engaged load shedding, lost no accepted work, and recovered (exits nonzero otherwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expectShed && !*self {
		return fmt.Errorf("-expect-shed requires -self (it scrapes the server's ledger and waits for recovery)")
	}
	if *expectShed && len(sloSpecs) == 0 {
		return fmt.Errorf("-expect-shed requires at least one -slo objective (nothing sheds without an SLO engine)")
	}
	if (*targetURL == "") == !*self {
		return fmt.Errorf("exactly one of -target or -self is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var corpus []string
	var err error
	if *corpusPath != "" {
		if corpus, err = readCorpus(*corpusPath); err != nil {
			return err
		}
	}

	if *self {
		srv, shutdown, err := bootSelf(selfConfig{
			seed: *seed, scale: *scale,
			feedWorkers: *feedWorkers, feedQueue: *feedQueue,
			serveWorkers: *serveWorkers,
			sloSpecs:     sloSpecs,
			sloFast:      *sloFast, sloSlow: *sloSlow, sloHold: *sloHold,
		})
		if err != nil {
			return err
		}
		defer shutdown()
		*targetURL = srv
		if corpus == nil {
			corpus = genCorpus(*seed)
		}
	}
	if len(corpus) == 0 {
		return fmt.Errorf("-corpus is required with -target (generate one with 'kpload gen')")
	}

	fmt.Fprintf(os.Stderr, "kpload: loading %s with %d URLs (workers %d, %s)\n",
		*targetURL, len(corpus), *workers, describeBudget(*requests, *duration))
	rep, err := loadgen.Run(ctx, loadgen.Config{
		TargetURL:   *targetURL,
		Corpus:      corpus,
		QPS:         *qps,
		Workers:     *workers,
		Ramp:        *ramp,
		Duration:    *duration,
		Requests:    *requests,
		BatchSize:   *batch,
		Endpoint:    *endpoint,
		ShedBackoff: *shedBackoff,
		PageBytes:   *pageBytes,
		CacheMix:    *cacheMix,
	})
	if err != nil {
		return err
	}
	fmt.Println("kpload report")
	fmt.Print(rep.Table())
	if *jsonOut != "" {
		if err := rep.WriteJSON(*jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "kpload: wrote %s\n", *jsonOut)
	}
	if *expectShed {
		return assertOverload(*targetURL, rep)
	}
	return nil
}

// assertOverload verifies the overload-smoke contract after an
// -expect-shed run: the admission controller actually engaged, every
// request the server accepted was really scored (zero-loss ledger),
// and the SLO engine recovered to ok once the pressure stopped.
func assertOverload(targetURL string, rep loadgen.Report) error {
	if rep.Shed == 0 {
		return fmt.Errorf("expect-shed: no requests were shed — overload never engaged the admission controller (raise -qps or lower -serve-workers)")
	}
	if rep.RetryAfterHonored == 0 {
		return fmt.Errorf("expect-shed: no Retry-After backoff was honored despite %d sheds", rep.Shed)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	// Zero-loss ledger: every 200 the load generator counted must be
	// matched by scoring work the server accounts for. A gap means an
	// accepted request was silently dropped under overload.
	var snap serve.MetricsSnapshot
	if err := getJSON(client, targetURL+"/metrics", &snap); err != nil {
		return fmt.Errorf("expect-shed: scraping ledger: %w", err)
	}
	scoredOrCached := snap.PagesScored + snap.CacheHits
	if scoredOrCached < rep.Accepted {
		return fmt.Errorf("expect-shed: ledger mismatch — %d requests accepted but only %d scored+cached", rep.Accepted, scoredOrCached)
	}
	fmt.Fprintf(os.Stderr, "kpload: expect-shed — shed %d (%.1f%%), ledger ok (%d accepted <= %d scored+cached)\n",
		rep.Shed, rep.ShedRate*100, rep.Accepted, scoredOrCached)

	// Recovery: with load stopped, the fast window drains and the
	// engine must walk back to ok with shedding disengaged.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var status slo.Status
		if err := getJSON(client, targetURL+"/debug/slo", &status); err != nil {
			return fmt.Errorf("expect-shed: polling /debug/slo: %w", err)
		}
		if status.State == "ok" && status.ShedLevel == 0 {
			fmt.Fprintln(os.Stderr, "kpload: expect-shed — engine recovered to ok, shedding disengaged")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("expect-shed: engine did not recover (state %s, shed level %d)", status.State, status.ShedLevel)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// getJSON fetches a JSON document.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func describeBudget(requests int, d time.Duration) string {
	if requests > 0 {
		return fmt.Sprintf("%d requests", requests)
	}
	return d.String()
}

// readCorpus loads one URL per line; blank lines and #-comments are
// skipped.
func readCorpus(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var urls []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		urls = append(urls, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return urls, nil
}

type selfConfig struct {
	seed         int64
	scale        int
	feedWorkers  int
	feedQueue    int
	serveWorkers int
	sloSpecs     []string
	sloFast      time.Duration
	sloSlow      time.Duration
	sloHold      time.Duration
}

// bootSelf stands up a complete in-process kpserve — self-trained
// detector, synthetic world as crawl source, feed pipeline, in-memory
// verdict store — on a loopback listener, and returns its base URL plus
// a shutdown function that drains the feed before exiting.
func bootSelf(cfg selfConfig) (string, func(), error) {
	fmt.Fprintf(os.Stderr, "kpload: self mode — training detector (seed %d, scale %d)\n", cfg.seed, cfg.scale)
	corpus, err := dataset.Build(dataset.Config{
		Seed:              cfg.seed,
		Scale:             cfg.scale,
		World:             webgen.Config{Seed: cfg.seed + 1},
		SkipLanguageTests: true,
	})
	if err != nil {
		return "", nil, err
	}
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	det, err := core.Train(snaps, labels, core.TrainConfig{
		GBM:  ml.GBMConfig{Trees: 100, MaxDepth: 4, Subsample: 0.8, MinLeaf: 5, Seed: cfg.seed + 2},
		Rank: corpus.World.Ranking(),
	})
	if err != nil {
		return "", nil, err
	}
	identifier := target.New(corpus.Engine)

	st, err := store.Open(store.Config{Backend: store.BackendMemory})
	if err != nil {
		return "", nil, err
	}
	sched, err := feed.New(feed.Config{
		Fetcher:    corpus.World,
		Pipeline:   &core.Pipeline{Detector: det, Identifier: identifier},
		Store:      st,
		Workers:    cfg.feedWorkers,
		QueueDepth: cfg.feedQueue,
	})
	if err != nil {
		st.Close()
		return "", nil, err
	}
	// With -slo specs the self server gets the full SLO stack: engine,
	// event journal, and a ticking goroutine, exactly as kpserve wires
	// them — so -expect-shed exercises the real overload behavior.
	var eng *slo.Engine
	var journal *obs.Journal
	if len(cfg.sloSpecs) > 0 {
		objs, err := slo.ParseObjectives(cfg.sloSpecs)
		if err != nil {
			st.Close()
			return "", nil, err
		}
		journal = obs.NewJournal(0)
		eng = slo.New(slo.Config{
			Objectives: objs,
			FastWindow: cfg.sloFast,
			SlowWindow: cfg.sloSlow,
			HoldDown:   cfg.sloHold,
			Journal:    journal,
		})
	}
	handler, err := serve.New(serve.Config{
		Detector:   det,
		Identifier: identifier,
		Feed:       sched,
		Store:      st,
		Workers:    cfg.serveWorkers,
		SLO:        eng,
		Journal:    journal,
	})
	if err != nil {
		sched.Drain(time.Now())
		st.Close()
		return "", nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sched.Drain(time.Now())
		st.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	tickCtx, stopTick := context.WithCancel(context.Background())
	if eng != nil {
		go eng.Run(tickCtx, 0)
	}

	shutdown := func() {
		stopTick()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shCtx)
		dropped := sched.Drain(time.Now().Add(10 * time.Second))
		fs := sched.Stats()
		ss := st.Stats()
		fmt.Fprintf(os.Stderr, "kpload: self server drained — processed %d, failed %d, dropped %d, store appends %d\n",
			fs.Processed, fs.Failed, dropped, ss.Appends)
		st.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
