// Command kpexperiments regenerates the paper's tables and figures
// (DESIGN.md experiment index E1–E12 plus ablations A1–A5).
//
// Usage:
//
//	kpexperiments                      # run everything at scale 1/10
//	kpexperiments -run tableVI,fig4    # selected experiments
//	kpexperiments -scale 1             # paper-scale corpora (slow)
//	kpexperiments -out results/        # also write one file per artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"knowphish/internal/dataset"
	"knowphish/internal/experiments"
	"knowphish/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kpexperiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runFilter = flag.String("run", "all", "comma list: tableV tableVI tableVII tableVIII tableIX tableX fig2 fig3 fig4 fig5 fig6 fpreduction ablation-split ablation-distance ablation-threshold ablation-trainsize ablation-unseen, or all")
		scale     = flag.Int("scale", 10, "corpus scale divisor (1 = paper-scale, slow)")
		seed      = flag.Int64("seed", 1, "seed")
		outDir    = flag.String("out", "", "directory to also write artifacts into")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building corpus (scale 1/%d, seed %d)...\n", *scale, *seed)
	r, err := experiments.NewRunner(dataset.Config{
		Seed:  *seed,
		Scale: *scale,
		World: webgen.Config{Seed: *seed + 1},
	})
	if err != nil {
		return err
	}

	wanted := map[string]bool{}
	for _, name := range strings.Split(*runFilter, ",") {
		wanted[strings.ToLower(strings.TrimSpace(name))] = true
	}
	all := wanted["all"]

	var artifacts []experiments.Artifact
	addT := func(id string, t *experiments.Table, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		artifacts = append(artifacts, experiments.Artifact{ID: id, Table: t})
		return nil
	}
	addF := func(id string, f *experiments.Figure, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		artifacts = append(artifacts, experiments.Artifact{ID: id, Figure: f})
		return nil
	}
	addFs := func(id string, fs []*experiments.Figure, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, f := range fs {
			artifacts = append(artifacts, experiments.Artifact{ID: id, Figure: f})
		}
		return nil
	}

	if all && *runFilter == "all" {
		arts, err := r.RunAll(os.Stderr)
		if err != nil {
			return err
		}
		artifacts = arts
	} else {
		if wanted["tablev"] {
			if err := addT("E1/TableV", r.TableV(), nil); err != nil {
				return err
			}
		}
		if wanted["tablevi"] {
			t, err := r.TableVI()
			if err := addT("E2/TableVI", t, err); err != nil {
				return err
			}
		}
		if wanted["fig2"] {
			fs, err := r.Fig2()
			if err := addFs("E3/Fig2", fs, err); err != nil {
				return err
			}
		}
		if wanted["tablevii"] {
			t, err := r.TableVII()
			if err := addT("E4/TableVII", t, err); err != nil {
				return err
			}
		}
		if wanted["fig3"] {
			f, err := r.Fig3()
			if err := addF("E5/Fig3", f, err); err != nil {
				return err
			}
		}
		if wanted["fig4"] {
			f, err := r.Fig4()
			if err := addF("E6/Fig4", f, err); err != nil {
				return err
			}
		}
		if wanted["fig5"] {
			fs, err := r.Fig5()
			if err := addFs("E7/Fig5", fs, err); err != nil {
				return err
			}
		}
		if wanted["fig6"] {
			f, err := r.Fig6()
			if err := addF("E8/Fig6", f, err); err != nil {
				return err
			}
		}
		if wanted["tableviii"] {
			t, err := r.TableVIII(100)
			if err := addT("E9/TableVIII", t, err); err != nil {
				return err
			}
		}
		if wanted["tableix"] {
			t, err := r.TableIX()
			if err := addT("E10/TableIX", t, err); err != nil {
				return err
			}
		}
		if wanted["tablex"] {
			t, err := r.TableX()
			if err := addT("E11/TableX", t, err); err != nil {
				return err
			}
		}
		if wanted["fpreduction"] {
			t, err := r.FPReduction()
			if err := addT("E12/FPReduction", t, err); err != nil {
				return err
			}
		}
		if wanted["ablation-split"] {
			t, err := r.AblationSplit()
			if err := addT("A1/Split", t, err); err != nil {
				return err
			}
		}
		if wanted["ablation-distance"] {
			t, err := r.AblationDistance()
			if err := addT("A2/Distance", t, err); err != nil {
				return err
			}
		}
		if wanted["ablation-threshold"] {
			t, err := r.AblationThreshold()
			if err := addT("A3/Threshold", t, err); err != nil {
				return err
			}
		}
		if wanted["ablation-trainsize"] {
			t, err := r.AblationTrainSize()
			if err := addT("A4/TrainSize", t, err); err != nil {
				return err
			}
		}
		if wanted["ablation-unseen"] {
			t, err := r.AblationUnseenBrands()
			if err := addT("A5/UnseenBrands", t, err); err != nil {
				return err
			}
		}
		if wanted["ablation-classifier"] {
			t, err := r.AblationClassifier()
			if err := addT("A6/Classifier", t, err); err != nil {
				return err
			}
		}
	}

	if len(artifacts) == 0 {
		return fmt.Errorf("nothing selected by -run %q", *runFilter)
	}
	for _, a := range artifacts {
		fmt.Println(a.Render())
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, a := range artifacts {
			name := strings.NewReplacer("/", "_", ":", "", " ", "_").Replace(a.ID) + ".txt"
			path := filepath.Join(*outDir, name)
			if err := os.WriteFile(path, []byte(a.Render()), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d artifacts to %s\n", len(artifacts), *outDir)
	}
	return nil
}
