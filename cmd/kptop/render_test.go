package main

import (
	"strings"
	"testing"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/obs"
	"knowphish/internal/serve"
	"knowphish/internal/slo"
)

func testFrame(at time.Time) *frame {
	return &frame{
		At: at,
		Metrics: serve.MetricsSnapshot{
			UptimeSeconds: 90,
			Requests:      1200,
			Errors:        3,
			InFlight:      4,
			CacheHitRate:  0.5,
			ModelVersion:  "v0007",
			Shed:          serve.ShedMetrics{Total: 40, Queued: 2, Level: 2},
			Endpoints: map[string]serve.EndpointMetrics{
				"score": {Priority: 3, Shed: 38, Windows: []obs.WindowSummary{
					{Window: "1m", Count: 600, P50US: 800, P99US: 2400},
					{Window: "5m", Count: 900, P50US: 700, P99US: 2100},
					{Window: "1h", Count: 1100, P50US: 650, P99US: 1900},
				}},
				"feed": {Priority: 1, Shed: 2},
			},
			SLO: &slo.Status{
				State:        "warn",
				ShedLevel:    2,
				FastWindowMS: 300000,
				SlowWindowMS: 3600000,
				PageBurn:     14.4,
				WarnBurn:     6,
				Objectives: []slo.ObjectiveStatus{{
					Name: "score:p99<250ms", Endpoint: "score", Kind: "latency",
					State: "warn", FastBurn: 7.5, SlowBurn: 6.2,
					BudgetRemaining: 0.4, FastGood: 930, FastBad: 70,
				}},
			},
			Coalesce: &coalesce.Stats{
				Batches:      100,
				BatchedItems: 450,
				Bypassed:     7,
				FlushFull:    20, FlushAdaptive: 70, FlushTimer: 10,
				Analysis: coalesce.TableStats{Hits: 300, Misses: 150, Entries: 150},
				Score:    coalesce.TableStats{Hits: 225, Misses: 225, Entries: 150},
			},
			Tracing: &obs.Summary{Stages: []obs.StageSummary{
				{Stage: "score", Count: 1100, Windows: []obs.WindowSummary{
					{Window: "1m", Count: 600, P50US: 500, P99US: 1500},
				}},
			}},
		},
		Events: []obs.Event{
			{Seq: 2, Time: at, Type: "shed_level", Msg: "admission shed level 0 -> 2"},
			{Seq: 1, Time: at.Add(-time.Second), Type: "slo_transition", Msg: "slo score:p99<250ms ok -> warn"},
		},
	}
}

// TestRenderFrame pins the dashboard's sections and key values.
func TestRenderFrame(t *testing.T) {
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	out := renderFrame(nil, testFrame(at), false)

	for _, want := range []string{
		"up 1m30s",
		"model v0007",
		"requests 1200",
		"state warn",
		"shed level 2",
		"score:p99<250ms",
		"burn fast   7.50x slow   6.20x",
		"budget  40%",
		"total 40",
		"queued 2",
		"score",
		"2.4ms", // score 1m p99
		"shed_level",
		"admission shed level 0 -> 2",
		"batches 100",
		"items 450 (avg 4.5)",
		"flush full/adaptive/timer 20/70/10",
		"analysis  67% (150)",
		"score  50% (150)",
		"features -",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("color disabled but frame contains ANSI escapes")
	}
}

// TestRenderRates pins the delta-rate computation between two frames.
func TestRenderRates(t *testing.T) {
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	prev := testFrame(at)
	cur := testFrame(at.Add(2 * time.Second))
	cur.Metrics.Requests = prev.Metrics.Requests + 300
	cur.Metrics.Shed.Total = prev.Metrics.Shed.Total + 10

	out := renderFrame(prev, cur, false)
	if !strings.Contains(out, "(150.0/s)") {
		t.Errorf("want 150.0/s request rate\n%s", out)
	}
	if !strings.Contains(out, "total 50 (5.0/s)") {
		t.Errorf("want 5.0/s shed rate\n%s", out)
	}
}

// TestRenderNoEngine pins the degraded layout against a server without
// an SLO engine: the dashboard must stay useful, not error out.
func TestRenderNoEngine(t *testing.T) {
	f := &frame{At: time.Now(), Metrics: serve.MetricsSnapshot{Requests: 5}}
	out := renderFrame(nil, f, true)
	if !strings.Contains(out, "no engine") {
		t.Errorf("want no-engine hint\n%s", out)
	}
}
