package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/obs"
)

// ANSI color codes; empty strings when color is off.
type palette struct {
	reset, dim, green, yellow, red, bold string
}

func newPalette(color bool) palette {
	if !color {
		return palette{}
	}
	return palette{
		reset:  "\x1b[0m",
		dim:    "\x1b[2m",
		green:  "\x1b[32m",
		yellow: "\x1b[33m",
		red:    "\x1b[31m",
		bold:   "\x1b[1m",
	}
}

func (p palette) state(s string) string {
	switch s {
	case "page":
		return p.red + p.bold + s + p.reset
	case "warn":
		return p.yellow + s + p.reset
	default:
		return p.green + s + p.reset
	}
}

// renderFrame renders one dashboard frame. prev, when non-nil, is the
// previous frame — rates (req/s, shed/s) are deltas between the two.
// Pure: all I/O stays in the caller, which is what makes the layout
// testable.
func renderFrame(prev, cur *frame, color bool) string {
	p := newPalette(color)
	m := &cur.Metrics
	var b strings.Builder

	// Header: uptime, rates, in-flight, cache.
	fmt.Fprintf(&b, "%skptop%s  up %s  model %s\n", p.bold, p.reset,
		(time.Duration(m.UptimeSeconds) * time.Second).String(), orDash(m.ModelVersion))
	reqRate, shedRate := rates(prev, cur)
	fmt.Fprintf(&b, "  requests %d (%.1f/s)   errors %d   in-flight %d   cache hit %.0f%%\n",
		m.Requests, reqRate, m.Errors, m.InFlight, m.CacheHitRate*100)

	// SLO block: engine state, shed level, one line per objective.
	if s := m.SLO; s != nil {
		fmt.Fprintf(&b, "\n%sslo%s  state %s   shed level %d   windows %s/%s   thresholds warn %.1fx page %.1fx\n",
			p.bold, p.reset, p.state(s.State), s.ShedLevel,
			(time.Duration(s.FastWindowMS) * time.Millisecond).String(),
			(time.Duration(s.SlowWindowMS) * time.Millisecond).String(),
			s.WarnBurn, s.PageBurn)
		for _, o := range s.Objectives {
			fmt.Fprintf(&b, "  %-28s %s  burn fast %6.2fx slow %6.2fx  budget %3.0f%%  bad %d/%d\n",
				o.Name, p.state(o.State), o.FastBurn, o.SlowBurn,
				o.BudgetRemaining*100, o.FastBad, o.FastGood+o.FastBad)
		}
	} else {
		fmt.Fprintf(&b, "\n%sslo%s  (no engine: start kpserve with -slo)\n", p.dim, p.reset)
	}

	// Admission control.
	fmt.Fprintf(&b, "\n%sshed%s  total %d (%.1f/s)   queued %d   level %d\n",
		p.bold, p.reset, m.Shed.Total, shedRate, m.Shed.Queued, m.Shed.Level)

	// Endpoint classes: windowed percentiles, the "now" view.
	if len(m.Endpoints) > 0 {
		fmt.Fprintf(&b, "\n%sendpoints%s                prio  shed      1m n    1m p50    1m p99    5m p99    1h p99\n", p.bold, p.reset)
		for _, name := range sortedKeys(m.Endpoints) {
			ep := m.Endpoints[name]
			w1, w5, wh := pickWindows(ep.Windows)
			fmt.Fprintf(&b, "  %-22s %4d %5d  %8d  %8s  %8s  %8s  %8s\n",
				name, ep.Priority, ep.Shed, w1.Count,
				us(w1.P50US), us(w1.P99US), us(w5.P99US), us(wh.P99US))
		}
	}

	// Pipeline stages from the tracing summary.
	if tr := m.Tracing; tr != nil && len(tr.Stages) > 0 {
		fmt.Fprintf(&b, "\n%sstages%s                          n     1m p50    1m p99    5m p99\n", p.bold, p.reset)
		for _, st := range tr.Stages {
			w1, w5, _ := pickWindows(st.Windows)
			fmt.Fprintf(&b, "  %-22s %9d  %8s  %8s  %8s\n",
				st.Stage, st.Count, us(w1.P50US), us(w1.P99US), us(w5.P99US))
		}
	}

	// Coalescer: batching counters and per-stage memo hit rates.
	if co := m.Coalesce; co != nil {
		avg := 0.0
		if co.Batches > 0 {
			avg = float64(co.BatchedItems) / float64(co.Batches)
		}
		fmt.Fprintf(&b, "\n%scoalesce%s  batches %d   items %d (avg %.1f)   bypassed %d   flush full/adaptive/timer %d/%d/%d\n",
			p.bold, p.reset, co.Batches, co.BatchedItems, avg, co.Bypassed,
			co.FlushFull, co.FlushAdaptive, co.FlushTimer)
		fmt.Fprintf(&b, "  memo hit  analysis %s   features %s   score %s   target %s\n",
			memoRate(co.Analysis), memoRate(co.Features), memoRate(co.Score), memoRate(co.Target))
	}

	// Feed queue.
	if f := m.Feed; f != nil {
		fmt.Fprintf(&b, "\n%sfeed%s  queue %d   in-flight %d   processed %d   failed %d\n",
			p.bold, p.reset, f.Depth, f.InFlight, f.Processed, f.Failed)
	}

	// Journal tail: the last few operational events, newest first.
	if len(cur.Events) > 0 {
		fmt.Fprintf(&b, "\n%sevents%s\n", p.bold, p.reset)
		n := len(cur.Events)
		if n > 5 {
			n = 5
		}
		for _, ev := range cur.Events[:n] {
			fmt.Fprintf(&b, "  %s%s%s  [%s] %s\n",
				p.dim, ev.Time.Format("15:04:05"), p.reset, ev.Type, ev.Msg)
		}
	}
	return b.String()
}

// rates computes requests/s and sheds/s from two consecutive frames.
func rates(prev, cur *frame) (req, shed float64) {
	if prev == nil {
		return 0, 0
	}
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return 0, 0
	}
	return float64(cur.Metrics.Requests-prev.Metrics.Requests) / dt,
		float64(cur.Metrics.Shed.Total-prev.Metrics.Shed.Total) / dt
}

// pickWindows splits a WindowSummary slice into the 1m/5m/1h entries
// (zero values for any that are absent).
func pickWindows(ws []obs.WindowSummary) (w1, w5, wh obs.WindowSummary) {
	for _, w := range ws {
		switch w.Window {
		case "1m":
			w1 = w
		case "5m":
			w5 = w
		case "1h":
			wh = w
		}
	}
	return
}

// memoRate renders one memo table's hit rate and size ("-" before any
// lookup has happened).
func memoRate(ts coalesce.TableStats) string {
	total := ts.Hits + ts.Misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%3.0f%% (%d)", float64(ts.Hits)/float64(total)*100, ts.Entries)
}

// us renders a microsecond value human-readably ("-" for zero).
func us(v int64) string {
	switch {
	case v == 0:
		return "-"
	case v < 1000:
		return fmt.Sprintf("%dµs", v)
	case v < 1_000_000:
		return fmt.Sprintf("%.1fms", float64(v)/1000)
	default:
		return fmt.Sprintf("%.2fs", float64(v)/1_000_000)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
