// Command kptop is a zero-dependency terminal dashboard for a running
// kpserve: it polls GET /metrics and GET /debug/slo and renders, in
// place, the numbers an operator watches during an incident — request
// and error rates, windowed latency percentiles (p50/p99/p999 over the
// rolling 1m/5m/1h windows, per endpoint class and per pipeline stage),
// the SLO error-budget burn rates and alert states, the admission
// controller's shed level and counters, the feed queue depth, and the
// tail of the operational event journal.
//
// Usage:
//
//	kptop -target http://127.0.0.1:8080              # live, repaint every 2s
//	kptop -target http://127.0.0.1:8080 -interval 1s
//	kptop -target http://127.0.0.1:8080 -once        # one frame to stdout (scriptable)
//
// -once prints a single frame without ANSI cursor control — the form
// CI logs and shell pipelines want. Live mode repaints in place and
// exits on interrupt. Colors mark the SLO states (green ok, yellow
// warn, red page); -no-color disables them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knowphish/internal/obs"
	"knowphish/internal/serve"
	"knowphish/internal/slo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kptop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "kpserve base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll interval in live mode")
		once     = flag.Bool("once", false, "print one frame and exit (no cursor control; for scripts and CI logs)")
		noColor  = flag.Bool("no-color", false, "disable ANSI colors")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *frame

	poll := func() (*frame, error) {
		f, err := fetchFrame(client, *target)
		if err != nil {
			return nil, err
		}
		out := renderFrame(prev, f, !*noColor)
		if *once {
			fmt.Print(out)
		} else {
			// Clear and home, then repaint: one frame per interval, no
			// scrollback spam.
			fmt.Print("\x1b[2J\x1b[H" + out)
		}
		return f, nil
	}

	if *once {
		_, err := poll()
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		f, err := poll()
		if err != nil {
			fmt.Printf("\x1b[2J\x1b[H(kptop: %v — retrying)\n", err)
		} else {
			prev = f
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-t.C:
		}
	}
}

// frame is one poll's worth of server state.
type frame struct {
	At      time.Time
	Metrics serve.MetricsSnapshot
	Events  []obs.Event
}

// fetchFrame polls the server once. /metrics is required; the event
// journal is optional garnish (older servers don't serve it).
func fetchFrame(client *http.Client, target string) (*frame, error) {
	f := &frame{At: time.Now()}
	if err := getJSON(client, target+"/metrics", &f.Metrics); err != nil {
		return nil, err
	}
	var events struct {
		Events []obs.Event `json:"events"`
	}
	if err := getJSON(client, target+"/debug/events", &events); err == nil {
		f.Events = events.Events
	}
	// /metrics embeds the SLO status; fall back to /debug/slo for a
	// server configured with an engine but scraped mid-wire.
	if f.Metrics.SLO == nil {
		var st slo.Status
		if err := getJSON(client, target+"/debug/slo", &st); err == nil && len(st.Objectives) > 0 {
			f.Metrics.SLO = &st
		}
	}
	return f, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
