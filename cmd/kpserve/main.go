// Command kpserve runs the concurrent phishing-scoring service: it loads
// a trained detector (kptrain), the offline popularity ranking (kpgen)
// and the legitimate-web search index, then serves the detection →
// target-identification pipeline over HTTP until interrupted.
//
// With no -model, kpserve bootstraps itself: it builds a synthetic
// corpus, trains a detector and serves against the corpus search index —
// a one-command demo of the whole system. In that mode the synthetic
// world doubles as the crawl source, so -store also enables the
// continuous feed-ingestion pipeline (POST /v1/feed → crawl → score →
// persist, queryable at GET /v1/verdicts and, with cursor pagination,
// GET /v2/verdicts).
//
// Verdicts persist in a segmented write-ahead log by default (-store
// names its directory); -store-backend selects the legacy single-file
// JSONL engine or an in-memory store instead, and a legacy log found
// at the -store path is migrated into segments on first open.
//
// Repeatable -feed-src flags (NAME=KIND:URL; kinds json, csv, ndjson)
// attach external feed connectors on top of the feed pipeline: each is
// polled with a resumable cursor (persisted under -feed-src-cursor),
// rate-shared (-feed-src-rate) and deduped before its URLs enter the
// scheduler, and every resulting verdict carries the source name in its
// provenance — filterable at GET /v2/verdicts?source=NAME. Per-source
// health (cursor, lag, rejects by reason) is exported at /metrics.
//
// Usage:
//
//	kpserve -addr :8080 -store verdicts/                     # demo + feed
//	kpserve -addr :8080 -store verdicts/ -feed-src-cursor cursors/ \
//	        -feed-src phishtank=json:https://feed.example/phish.json \
//	        -feed-src ct=ndjson:https://ct.example/stream            # external feed connectors
//	kpserve -addr :8080 -model model.json -ranking data/ranking.csv -index index.json
//	kpserve -addr :8080 -deadline 250ms -explain top         # bounded, explainable verdicts
//	kpserve -addr :8080 -registry models/ -store verdicts/ \
//	        -shadow-frac 0.25 -auto-retrain                  # full model lifecycle
//
// With -registry the detector is served from a versioned model registry
// behind an atomic pointer: GET/POST /v2/models and /v2/models/promote
// manage versions, and a promotion hot-swaps the champion with zero
// downtime — no restart, no dropped requests. Combined with -store (and
// the self-train world as crawl source), the drift monitor watches feed
// traffic, -auto-retrain closes the loop (drift flag → background
// retrain from stored verdicts → challenger shadow-scores -shadow-frac
// of traffic → promotion gate swaps), and every verdict carries the
// model_version that produced it.
//
// Repeatable -slo flags ("score:p99<250ms,avail>99.9") arm the SLO
// engine: multi-window multi-burn-rate error budgets (tuned by
// -slo-fast/-slo-slow/-slo-holddown) drive an ok → warn → page state
// machine at GET /debug/slo (and in /healthz and /metrics), a
// fixed-size operational event journal at GET /debug/events, and the
// adaptive admission controller — under sustained budget burn the
// server sheds lowest-priority request classes first with 503 +
// Retry-After until the burn subsides. With a latency objective the
// -trace-slow default derives from the tightest SLO target. cmd/kptop
// renders the whole surface as a live terminal dashboard.
//
// Endpoints: POST /v2/score, POST /v2/score/batch, POST /v2/target,
// POST /v2/score/stream
// (NDJSON), GET/POST /v2/models, POST /v2/models/promote, POST
// /v1/score, POST /v1/score/batch, POST /v1/target, POST /v1/feed,
// GET /v1/verdicts, GET /v2/verdicts, GET /healthz, GET /metrics (JSON;
// ?format=prometheus for the scrape surface), GET /debug/traces
// (recent + slow/error request traces), GET /debug/slo and GET
// /debug/events. Structured logs go to stderr (-log-level,
// -log-format); per-stage tracing is on by default (-trace=false
// disables it) and -debug-addr binds net/http/pprof on a separate
// listener. See README.md for request formats and the v1 → v2
// migration table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/drift"
	"knowphish/internal/feed"
	"knowphish/internal/feedsrc"
	"knowphish/internal/ml"
	"knowphish/internal/obs"
	"knowphish/internal/ranking"
	"knowphish/internal/registry"
	"knowphish/internal/search"
	"knowphish/internal/serve"
	"knowphish/internal/slo"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kpserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "detector JSON from kptrain (empty: train a fresh one)")
		rankPath  = flag.String("ranking", "", "popularity list CSV from kpgen (optional)")
		indexPath = flag.String("index", "", "search index JSON (optional; required with -model for target identification)")
		workers   = flag.Int("workers", 0, "batch fan-out cap (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", serve.DefaultCacheSize, "verdict cache entries (negative disables)")
		maxBatch  = flag.Int("max-batch", serve.DefaultMaxBatch, "max pages per batch or stream request")

		coalesceWindow = flag.Duration("coalesce-window", coalesce.DefaultWindow, "cross-request scoring coalescer gather window (negative disables coalescing and stage memoization)")
		coalesceMax    = flag.Int("coalesce-max", coalesce.DefaultMaxBatch, "max requests per coalesced node-major kernel pass")
		memoSize       = flag.Int("memo-size", coalesce.DefaultMemoEntries, "entries per content-addressed stage memo table (negative disables memoization, keeps batching)")
		deadline  = flag.Duration("deadline", 0, "default per-request scoring deadline (0 = none; requests may set their own deadline_ms)")
		explain   = flag.String("explain", "none", "default explain level for v2 requests: none, top or full")
		topN      = flag.Int("explain-top", 0, "default contribution count of a 'top' explanation (0 = library default)")
		scale     = flag.Int("scale", 25, "corpus scale for the self-train path")
		seed      = flag.Int64("seed", 1, "seed for the self-train path")

		storePath    = flag.String("store", "", "verdict store path (enables GET /v1/verdicts and /v2/verdicts; with the self-train world, also POST /v1/feed). The default segmented engine uses it as a directory; a legacy JSONL log found there is migrated in place on first open")
		storeEngine  = flag.String("store-backend", store.BackendSegmented, "storage engine: segmented (WAL directory), legacy (single JSONL log) or memory")
		segmentBytes = flag.Int("segment-bytes", store.DefaultSegmentBytes, "segmented engine: bytes per WAL segment before it seals")
		storeSync    = flag.Bool("store-sync", false, "fsync the verdict store on every append")
		compactEvery = flag.Int("compact-every", store.DefaultCompactEvery, "appends between verdict-store compactions (negative: never)")
		feedQueue    = flag.Int("feed-queue", feed.DefaultQueueDepth, "feed queue depth, the backpressure bound")
		feedWorkers  = flag.Int("feed-workers", 0, "feed crawl/score workers (0 = GOMAXPROCS)")
		domainRate   = flag.Float64("domain-rate", feed.DefaultDomainRate, "per-registered-domain crawl rate in URLs/sec (negative: unlimited)")
		domainBurst  = flag.Int("domain-burst", feed.DefaultDomainBurst, "per-domain token-bucket burst")
		feedRetries  = flag.Int("feed-retries", feed.DefaultMaxAttempts, "fetch attempts per URL before the failure is persisted")
		feedExplain  = flag.String("feed-explain", "none", "explain level for feed-ingested verdicts (persisted evidence): none, top or full")

		feedSrcCursor   = flag.String("feed-src-cursor", "", "directory persisting each connector's resume cursor across restarts (empty: in-memory only)")
		feedSrcRate     = flag.Float64("feed-src-rate", 0, "per-connector delivery cap in URLs/sec; excess is shed, not queued (0 = unlimited)")
		feedSrcInterval = flag.Duration("feed-src-interval", feedsrc.DefaultInterval, "idle poll interval per connector (a poll that yielded items re-polls immediately)")
		maxExplain      = flag.Int("store-max-explain", 0, "verdict-store explanation size cap in bytes (0 = default, negative = never persist evidence)")
		drainWait       = flag.Duration("drain-timeout", 30*time.Second, "max wait for the feed to drain on shutdown")

		registryDir = flag.String("registry", "", "model registry directory (versioned artifacts, /v2/models, zero-downtime champion hot-swap)")
		shadowFrac  = flag.Float64("shadow-frac", 0.25, "fraction of feed traffic the challenger shadow-scores (with -registry)")
		driftWindow = flag.Int("drift-window", drift.DefaultWindow, "drift-monitor sliding window in observations (with -registry)")
		autoRetrain = flag.Bool("auto-retrain", false, "close the loop: drift flag triggers retrain from the store, gated challenger promotion follows")

		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "structured log encoding: text or json")
		traceOn   = flag.Bool("trace", true, "record per-stage request traces (GET /debug/traces, stage histograms in /metrics)")
		traceSlow = flag.Duration("trace-slow", obs.DefaultSlowThreshold, "slow-request threshold: traces over it are kept as exemplars and logged (sampled); with a latency -slo the default derives from the tightest target instead")
		debugAddr = flag.String("debug-addr", "", "separate listener for net/http/pprof profiling endpoints (empty: disabled)")

		sloFast     = flag.Duration("slo-fast", slo.DefaultFastWindow, "SLO fast burn-rate window (is it happening now?)")
		sloSlow     = flag.Duration("slo-slow", slo.DefaultSlowWindow, "SLO slow burn-rate window (is it significant?)")
		sloHold     = flag.Duration("slo-holddown", slo.DefaultHoldDown, "SLO hysteresis: burn must stay below a threshold this long before state or shed level steps down")
		journalSize = flag.Int("journal-size", 0, "operational event journal capacity in events (GET /debug/events; 0 = default)")
	)
	var feedSrcs multiFlag
	flag.Var(&feedSrcs, "feed-src", "external feed connector as NAME=KIND:URL, repeatable; KIND is json (PhishTank/OpenPhish-style feed), csv (ranked benign list) or ndjson (CT-log-style stream)")
	var sloSpecs multiFlag
	flag.Var(&sloSpecs, "slo", "SLO objective as endpoint:objective[,objective...], e.g. \"score:p99<250ms,avail>99.9\" (repeatable; arms burn-rate alerting at /debug/slo and adaptive load shedding)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	// The SLO engine and the event journal are built before the tracer:
	// with a latency objective and no explicit -trace-slow, the slow-
	// exemplar threshold derives from the tightest SLO target, so the
	// traces an operator keeps are exactly the requests that burn budget.
	journal := obs.NewJournal(*journalSize)
	var sloEng *slo.Engine
	if len(sloSpecs) > 0 {
		objs, err := slo.ParseObjectives(sloSpecs)
		if err != nil {
			return err
		}
		sloEng = slo.New(slo.Config{
			Objectives: objs,
			FastWindow: *sloFast,
			SlowWindow: *sloSlow,
			HoldDown:   *sloHold,
			Journal:    journal,
		})
	}
	slowThreshold, slowSource := *traceSlow, ""
	traceSlowSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trace-slow" {
			traceSlowSet = true
		}
	})
	if !traceSlowSet {
		if target, name := sloEng.MinLatencyTarget(); target > 0 {
			slowThreshold, slowSource = target, "slo:"+name
		}
	}
	tracer := obs.NewTracer(obs.Config{SlowThreshold: slowThreshold, SlowSource: slowSource, Disabled: !*traceOn})
	if sloEng != nil {
		logger.Info("slo engine armed",
			"objectives", len(sloEng.Objectives()),
			"fast_window", *sloFast, "slow_window", *sloSlow, "holddown", *sloHold,
			"slow_threshold", slowThreshold, "slow_source", slowSource)
	}

	explainLevel, err := core.ParseExplainLevel(*explain)
	if err != nil {
		return err
	}
	feedExplainLevel, err := core.ParseExplainLevel(*feedExplain)
	if err != nil {
		return err
	}

	var (
		det    *core.Detector
		engine *search.Engine
		world  *webgen.World
		reg    *registry.Registry
		rank   *ranking.List
	)
	if *registryDir != "" {
		// Registry mode rides the self-train world: the corpus supplies
		// the search index, the crawl source and the popularity ranking,
		// while the models come from (or bootstrap into) the registry.
		if *modelPath != "" {
			return errors.New("-registry and -model are mutually exclusive; import a model file with kptrain -registry")
		}
		logger.Info("building corpus", "scale", *scale)
		corpus, err := buildCorpus(*scale, *seed)
		if err != nil {
			return err
		}
		engine, world = corpus.Engine, corpus.World
		rank = corpus.World.Ranking()
		if reg, err = registry.Open(*registryDir, rank); err != nil {
			return err
		}
		if reg.ChampionVersion() == "" {
			logger.Info("registry has no champion; training the initial version", "registry", *registryDir)
			if err := bootstrapChampion(reg, corpus, *seed); err != nil {
				return err
			}
		}
		m, _ := reg.Champion()
		logger.Info("serving champion",
			"version", m.Manifest.Version, "hash", m.Manifest.Hash[:12], "registered_versions", reg.Len())
	} else {
		var err error
		det, engine, world, err = loadArtifacts(*modelPath, *rankPath, *indexPath, *scale, *seed, logger)
		if err != nil {
			return err
		}
	}
	identifier := target.New(engine)

	// One coalescer serves every scoring path — the HTTP surface and the
	// feed drain coalesce into the same batches and share the same memo
	// tables, so a page seen on the feed warms interactive requests.
	var coal *coalesce.Coalescer
	if *coalesceWindow >= 0 {
		coal = coalesce.New(coalesce.Config{
			Window:      *coalesceWindow,
			MaxBatch:    *coalesceMax,
			MemoEntries: *memoSize,
			Workers:     *workers,
		})
		logger.Info("scoring coalescer armed",
			"window", *coalesceWindow, "max_batch", *coalesceMax, "memo_entries", *memoSize)
	} else {
		logger.Info("scoring coalescer disabled")
	}

	// The durable verdict store and the feed scheduler on top of it.
	// Feed ingestion needs a crawl source; only the self-train path has
	// one (the synthetic world). An artifact-mode server still persists
	// nothing by itself but serves /v1/verdicts over an existing log.
	var st store.Backend
	var sched *feed.Scheduler
	var lc *drift.Lifecycle
	if *storePath != "" {
		st, err = store.Open(store.Config{
			Path:            *storePath,
			Backend:         *storeEngine,
			Sync:            *storeSync,
			CompactEvery:    *compactEvery,
			MaxExplainBytes: *maxExplain,
			SegmentBytes:    *segmentBytes,
			Logger:          logger,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		logger.Info("verdict store open",
			"path", *storePath, "engine", st.Stats().Backend, "records", st.Len())
		if world != nil {
			// The full lifecycle loop needs the registry (models), the
			// store (retrain corpus) and the world (re-crawl source) —
			// all present here.
			if reg != nil {
				lc, err = drift.NewLifecycle(drift.LifecycleConfig{
					Registry:       reg,
					Store:          st,
					Fetcher:        world,
					Rank:           rank,
					Monitor:        drift.Config{Window: *driftWindow},
					ShadowFraction: *shadowFrac,
					AutoRetrain:    *autoRetrain,
					Seed:           *seed,
					Logger:         logger,
				})
				if err != nil {
					return err
				}
				defer lc.Close()
				logger.Info("drift monitor armed",
					"window", *driftWindow, "shadow_frac", *shadowFrac, "auto_retrain", *autoRetrain)
			}
			pipeDet := det
			if reg != nil {
				pipeDet = reg.Current()
			}
			feedCfg := feed.Config{
				Fetcher:     world,
				Pipeline:    &core.Pipeline{Detector: pipeDet, Identifier: identifier},
				Detectors:   detectorSource(reg),
				Store:       st,
				Workers:     *feedWorkers,
				QueueDepth:  *feedQueue,
				DomainRate:  *domainRate,
				DomainBurst: *domainBurst,
				MaxAttempts: *feedRetries,
				Explain:     feedExplainLevel,
				Tracer:      tracer,
				Logger:      logger,
			}
			if lc != nil {
				feedCfg.OnVerdict = lc.OnVerdict
			}
			if coal != nil {
				feedCfg.Score = func(ctx context.Context, pipe *core.Pipeline, req core.ScoreRequest) (core.Verdict, error) {
					return coal.Do(ctx, pipe, req, coalesce.CacheDefault, nil)
				}
			}
			if sched, err = feed.New(feedCfg); err != nil {
				return err
			}
		} else {
			logger.Warn("no crawl source with -model; POST /v1/feed disabled (GET /v1/verdicts still serves the store)")
		}
	} else if reg != nil && *autoRetrain {
		logger.Warn("-auto-retrain needs -store (the retrain corpus); running registry without the retrain loop")
	}

	// External feed connectors fan into the scheduler; they only make
	// sense when the feed pipeline exists to receive them.
	var srcMux *feedsrc.Mux
	if len(feedSrcs) > 0 {
		if sched == nil {
			return errors.New("-feed-src needs the feed pipeline: run with -store and a crawl source (the self-train world)")
		}
		sources, err := buildFeedSources(feedSrcs)
		if err != nil {
			return err
		}
		rates := make(map[string]float64)
		if *feedSrcRate > 0 {
			for _, s := range sources {
				rates[s.Name()] = *feedSrcRate
			}
		}
		srcMux, err = feedsrc.NewMux(feedsrc.MuxConfig{
			Sink:      sched,
			Sources:   sources,
			Interval:  *feedSrcInterval,
			Rates:     rates,
			CursorDir: *feedSrcCursor,
			Logger:    logger,
		})
		if err != nil {
			return err
		}
		for _, s := range sources {
			logger.Info("feed source armed", "source", s.Name(), "cursor", s.Cursor())
		}
	}

	srv, err := serve.New(serve.Config{
		Detector:        det,
		Registry:        reg,
		Lifecycle:       lc,
		Identifier:      identifier,
		Workers:         *workers,
		CacheSize:       *cacheSize,
		MaxBatch:        *maxBatch,
		Coalescer:       coal,
		CoalesceWindow:  *coalesceWindow,
		DefaultDeadline: *deadline,
		DefaultExplain:  explainLevel,
		ExplainTopN:     *topN,
		Feed:            sched,
		FeedSources:     srcMux,
		Store:           st,
		Tracer:          tracer,
		Logger:          logger,
		SLO:             sloEng,
		Journal:         journal,
	})
	if err != nil {
		return err
	}

	// The pprof listener is its own server on its own address, never the
	// scoring mux: profiling endpoints stay off the public surface unless
	// an operator binds them explicitly.
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Error("pprof listener failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	// Full timeout set: without Read/Write/Idle timeouts a client that
	// trickles a request body (or never reads the response) pins a
	// goroutine and its buffers indefinitely.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then drain
	// in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The SLO engine ticks for the server's whole life (nil-safe no-op
	// when no -slo was given): burn rates, state machine, shed level.
	go sloEng.Run(ctx, 0)

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "index_docs", engine.Len(),
			"tracing", tracer.Enabled(), "slow_threshold", tracer.SlowThreshold())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Drain the feed after HTTP intake stops: every accepted URL is
	// either scored-and-persisted or reported dropped.
	if sched != nil {
		// Connectors stop first: no new URLs arrive while the queue
		// drains, and each source's cursor is already persisted per poll.
		if srcMux != nil {
			srcMux.Close()
			for name, ss := range srcMux.Stats() {
				logger.Info("feed source stopped", "source", name,
					"cursor", ss.Cursor, "enqueued", ss.Enqueued, "fetch_errors", ss.FetchErrors)
			}
		}
		dropped := sched.Drain(time.Now().Add(*drainWait))
		fs := sched.Stats()
		logger.Info("feed drained",
			"processed", fs.Processed, "failed", fs.Failed, "dropped", dropped)
	}
	if st != nil {
		ss := st.Stats()
		logger.Info("store closed", "records", ss.Records, "compactions", ss.Compactions)
	}
	if lc != nil {
		ls := lc.Status()
		logger.Info("lifecycle summary", "champion", ls.ChampionVersion,
			"retrains", ls.Retrains, "promotions", ls.Promotions, "drift_flagged", ls.Drift.Flagged)
	}
	m := srv.Metrics()
	logger.Info("served", "requests", m.Requests, "pages_scored", m.PagesScored,
		"cache_hit_rate", m.CacheHitRate)
	return <-errc
}

// loadArtifacts assembles the detector and search index, either from the
// saved artifacts or by training a fresh stack on the synthetic world.
// The returned world is non-nil only on the self-train path, where it
// serves as the feed's crawl source.
func loadArtifacts(modelPath, rankPath, indexPath string, scale int, seed int64, logger *slog.Logger) (*core.Detector, *search.Engine, *webgen.World, error) {
	if modelPath == "" {
		if rankPath != "" || indexPath != "" {
			return nil, nil, nil, errors.New("-ranking/-index require -model; the self-train path would silently ignore them")
		}
		return selfTrain(scale, seed, logger)
	}

	var rank *ranking.List
	if rankPath == "" {
		// The ranking is not embedded in the model (see Detector.Save);
		// without it the popularity feature sees every domain as
		// unranked — a distribution the model never trained on.
		logger.Warn("no -ranking; popularity feature will treat all domains as unranked")
	}
	if rankPath != "" {
		f, err := os.Open(rankPath)
		if err != nil {
			return nil, nil, nil, err
		}
		rank, err = ranking.Read(f)
		f.Close()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("reading ranking %s: %w", rankPath, err)
		}
	}

	f, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, nil, err
	}
	det, err := core.Load(f, rank)
	f.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loading model %s: %w", modelPath, err)
	}

	engine := search.NewEngine()
	if indexPath != "" {
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, nil, nil, err
		}
		engine, err = search.Load(f)
		f.Close()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("loading index %s: %w", indexPath, err)
		}
	} else {
		logger.Warn("no -index; target identification will mostly report suspicious")
	}
	return det, engine, nil, nil
}

// buildCorpus generates the synthetic world and evaluation campaigns —
// the substrate of the self-train and registry modes.
func buildCorpus(scale int, seed int64) (*dataset.Corpus, error) {
	return dataset.Build(dataset.Config{
		Seed:              seed,
		Scale:             scale,
		World:             webgen.Config{Seed: seed + 1},
		SkipLanguageTests: true,
	})
}

// trainOnCorpus fits the demo detector on the corpus training campaigns.
func trainOnCorpus(corpus *dataset.Corpus, seed int64) (*core.Detector, int, int, error) {
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	det, err := core.Train(snaps, labels, core.TrainConfig{
		GBM:  ml.GBMConfig{Trees: 100, MaxDepth: 4, Subsample: 0.8, MinLeaf: 5, Seed: seed + 2},
		Rank: corpus.World.Ranking(),
	})
	if err != nil {
		return nil, 0, 0, err
	}
	phish := 0
	for _, y := range labels {
		phish += y
	}
	return det, phish, len(labels) - phish, nil
}

// bootstrapChampion trains and promotes the registry's first version.
func bootstrapChampion(reg *registry.Registry, corpus *dataset.Corpus, seed int64) error {
	det, phish, legit, err := trainOnCorpus(corpus, seed)
	if err != nil {
		return err
	}
	man, err := reg.Save(det, registry.TrainingStats{
		Samples:    phish + legit,
		Phish:      phish,
		Legitimate: legit,
		Source:     "synthetic-corpus",
	}, "kpserve bootstrap")
	if err != nil {
		return err
	}
	_, err = reg.SetChampion(man.Version)
	return err
}

// detectorSource adapts the registry to the feed's hot-swap seam,
// avoiding a typed-nil interface when no registry is configured.
func detectorSource(reg *registry.Registry) core.DetectorSource {
	if reg == nil {
		return nil
	}
	return reg
}

// selfTrain builds a corpus and trains a detector — the zero-artifact
// demo path.
func selfTrain(scale int, seed int64, logger *slog.Logger) (*core.Detector, *search.Engine, *webgen.World, error) {
	logger.Info("no -model given; self-training", "scale", scale)
	corpus, err := buildCorpus(scale, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	det, _, _, err := trainOnCorpus(corpus, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	return det, corpus.Engine, corpus.World, nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// buildFeedSources parses -feed-src specs (NAME=KIND:URL) into
// connectors. Names must be unique — they tag verdict provenance and
// name cursor files.
func buildFeedSources(specs []string) ([]feedsrc.Source, error) {
	seen := make(map[string]bool, len(specs))
	sources := make([]feedsrc.Source, 0, len(specs))
	for _, spec := range specs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-feed-src %q: want NAME=KIND:URL", spec)
		}
		kind, url, ok := strings.Cut(rest, ":")
		if !ok || url == "" {
			return nil, fmt.Errorf("-feed-src %q: want NAME=KIND:URL", spec)
		}
		if seen[name] {
			return nil, fmt.Errorf("-feed-src %q: duplicate source name %q", spec, name)
		}
		seen[name] = true
		switch kind {
		case "json":
			sources = append(sources, feedsrc.NewJSONFeed(name, url, nil))
		case "csv":
			sources = append(sources, feedsrc.NewRankedCSV(name, url, nil, 0))
		case "ndjson":
			sources = append(sources, feedsrc.NewNDJSONStream(name, url, nil))
		default:
			return nil, fmt.Errorf("-feed-src %q: unknown kind %q (want json, csv or ndjson)", spec, kind)
		}
	}
	return sources, nil
}
