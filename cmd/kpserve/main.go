// Command kpserve runs the concurrent phishing-scoring service: it loads
// a trained detector (kptrain), the offline popularity ranking (kpgen)
// and the legitimate-web search index, then serves the detection →
// target-identification pipeline over HTTP until interrupted.
//
// With no -model, kpserve bootstraps itself: it builds a synthetic
// corpus, trains a detector and serves against the corpus search index —
// a one-command demo of the whole system.
//
// Usage:
//
//	kpserve -addr :8080                                  # self-contained demo
//	kpserve -addr :8080 -model model.json -ranking data/ranking.csv -index index.json
//
// Endpoints: POST /v1/score, POST /v1/score/batch, POST /v1/target,
// GET /healthz, GET /metrics. See README.md for request formats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/ml"
	"knowphish/internal/ranking"
	"knowphish/internal/search"
	"knowphish/internal/serve"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kpserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "detector JSON from kptrain (empty: train a fresh one)")
		rankPath  = flag.String("ranking", "", "popularity list CSV from kpgen (optional)")
		indexPath = flag.String("index", "", "search index JSON (optional; required with -model for target identification)")
		workers   = flag.Int("workers", 0, "batch fan-out cap (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", serve.DefaultCacheSize, "verdict cache entries (negative disables)")
		maxBatch  = flag.Int("max-batch", serve.DefaultMaxBatch, "max pages per batch request")
		scale     = flag.Int("scale", 25, "corpus scale for the self-train path")
		seed      = flag.Int64("seed", 1, "seed for the self-train path")
	)
	flag.Parse()

	det, engine, err := loadArtifacts(*modelPath, *rankPath, *indexPath, *scale, *seed)
	if err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		Detector:   det,
		Identifier: target.New(engine),
		Workers:    *workers,
		CacheSize:  *cacheSize,
		MaxBatch:   *maxBatch,
	})
	if err != nil {
		return err
	}

	// Full timeout set: without Read/Write/Idle timeouts a client that
	// trickles a request body (or never reads the response) pins a
	// goroutine and its buffers indefinitely.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then drain
	// in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("kpserve: listening on %s (index: %d docs)\n", *addr, engine.Len())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("kpserve: shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	m := srv.Metrics()
	fmt.Printf("kpserve: served %d requests, %d pages scored, cache hit rate %.2f\n",
		m.Requests, m.PagesScored, m.CacheHitRate)
	return <-errc
}

// loadArtifacts assembles the detector and search index, either from the
// saved artifacts or by training a fresh stack on the synthetic world.
func loadArtifacts(modelPath, rankPath, indexPath string, scale int, seed int64) (*core.Detector, *search.Engine, error) {
	if modelPath == "" {
		if rankPath != "" || indexPath != "" {
			return nil, nil, errors.New("-ranking/-index require -model; the self-train path would silently ignore them")
		}
		return selfTrain(scale, seed)
	}

	var rank *ranking.List
	if rankPath == "" {
		// The ranking is not embedded in the model (see Detector.Save);
		// without it the popularity feature sees every domain as
		// unranked — a distribution the model never trained on.
		fmt.Println("kpserve: warning: no -ranking; popularity feature will treat all domains as unranked")
	}
	if rankPath != "" {
		f, err := os.Open(rankPath)
		if err != nil {
			return nil, nil, err
		}
		rank, err = ranking.Read(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("reading ranking %s: %w", rankPath, err)
		}
	}

	f, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, err
	}
	det, err := core.Load(f, rank)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("loading model %s: %w", modelPath, err)
	}

	engine := search.NewEngine()
	if indexPath != "" {
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, nil, err
		}
		engine, err = search.Load(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("loading index %s: %w", indexPath, err)
		}
	} else {
		fmt.Println("kpserve: warning: no -index; target identification will mostly report suspicious")
	}
	return det, engine, nil
}

// selfTrain builds a corpus and trains a detector — the zero-artifact
// demo path.
func selfTrain(scale int, seed int64) (*core.Detector, *search.Engine, error) {
	fmt.Printf("kpserve: no -model given; building corpus and training (scale 1/%d)...\n", scale)
	corpus, err := dataset.Build(dataset.Config{
		Seed:              seed,
		Scale:             scale,
		World:             webgen.Config{Seed: seed + 1},
		SkipLanguageTests: true,
	})
	if err != nil {
		return nil, nil, err
	}
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	det, err := core.Train(snaps, labels, core.TrainConfig{
		GBM:  ml.GBMConfig{Trees: 100, MaxDepth: 4, Subsample: 0.8, MinLeaf: 5, Seed: seed + 2},
		Rank: corpus.World.Ranking(),
	})
	if err != nil {
		return nil, nil, err
	}
	return det, corpus.Engine, nil
}
