// Command kpgen generates the synthetic evaluation corpora (Table V
// campaigns) and writes them as JSON, one file per campaign, so that
// other tools — and humans — can inspect exactly what the detector sees.
//
// Usage:
//
//	kpgen -out data/ -scale 10 -seed 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"knowphish/internal/dataset"
	"knowphish/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kpgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "data", "output directory")
		scale     = flag.Int("scale", 10, "divide Table V sizes by this factor (1 = paper scale)")
		seed      = flag.Int64("seed", 1, "generation seed")
		brands    = flag.Int("brands", 140, "number of brands in the world")
		skipLangs = flag.Bool("english-only", false, "skip the five non-English test sets")
	)
	flag.Parse()

	corpus, err := dataset.Build(dataset.Config{
		Seed:              *seed,
		Scale:             *scale,
		World:             webgen.Config{Seed: *seed + 1, Brands: *brands},
		SkipLanguageTests: *skipLangs,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	write := func(camp *dataset.Campaign) error {
		path := filepath.Join(*out, camp.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(camp); err != nil {
			f.Close()
			return fmt.Errorf("encoding %s: %w", camp.Name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d examples (initial %d)\n", path, camp.Clean(), camp.Initial)
		return nil
	}

	for _, camp := range []*dataset.Campaign{
		corpus.PhishTrain, corpus.PhishTest, corpus.PhishBrand, corpus.LegTrain,
	} {
		if err := write(camp); err != nil {
			return err
		}
	}
	for _, lang := range webgen.Languages {
		if camp, ok := corpus.LangTests[lang]; ok {
			if err := write(camp); err != nil {
				return err
			}
		}
	}

	// The offline ranking list (the paper's local Alexa copy).
	rankPath := filepath.Join(*out, "ranking.csv")
	f, err := os.Create(rankPath)
	if err != nil {
		return err
	}
	if _, err := corpus.World.Ranking().WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d domains\n", rankPath, corpus.World.Ranking().Len())

	// The legitimate-web search index, which kpserve loads for target
	// identification.
	indexPath := filepath.Join(*out, "index.json")
	f, err = os.Create(indexPath)
	if err != nil {
		return err
	}
	if err := corpus.Engine.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d documents\n", indexPath, corpus.Engine.Len())
	return nil
}
