package knowphish_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"knowphish"
	"knowphish/internal/webgen"
)

// TestPublicAPIEndToEnd drives the whole library exactly the way the
// README quickstart does: build a corpus, train, classify, identify.
func TestPublicAPIEndToEnd(t *testing.T) {
	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{
		Seed:              61,
		Scale:             100,
		World:             knowphish.WorldConfig{Seed: 62, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
		SkipLanguageTests: true,
	})
	if err != nil {
		t.Fatalf("BuildCorpus: %v", err)
	}

	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	det, err := knowphish.Train(snaps, labels, knowphish.TrainConfig{
		Rank: corpus.World.Ranking(),
		GBM:  knowphish.GBMConfig{Trees: 50, MaxDepth: 4, Seed: 3},
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if det.Threshold() != knowphish.DefaultThreshold {
		t.Errorf("threshold = %v", det.Threshold())
	}

	pipe := &knowphish.Pipeline{
		Detector:   det,
		Identifier: knowphish.NewTargetIdentifier(corpus.Engine),
	}

	caught := 0
	for _, ex := range corpus.PhishTest.Examples {
		out := pipe.Analyze(ex.Snapshot)
		if out.FinalPhish {
			caught++
		}
	}
	if rate := float64(caught) / float64(len(corpus.PhishTest.Examples)); rate < 0.7 {
		t.Errorf("pipeline catch rate = %.2f, want >= 0.7", rate)
	}

	// Persistence through the facade.
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := knowphish.LoadDetector(&buf, corpus.World.Ranking())
	if err != nil {
		t.Fatalf("LoadDetector: %v", err)
	}
	snap := corpus.PhishTest.Examples[0].Snapshot
	if a, b := det.Score(snap), back.Score(snap); math.Abs(a-b) > 1e-12 {
		t.Errorf("roundtrip score mismatch: %v vs %v", a, b)
	}

	// The model lifecycle through the facade: register, promote, swap —
	// with the verdict naming the model that produced it.
	reg, err := knowphish.OpenModelRegistry(t.TempDir(), corpus.World.Ranking())
	if err != nil {
		t.Fatalf("OpenModelRegistry: %v", err)
	}
	man, err := reg.Save(det, knowphish.TrainingStats{Samples: len(snaps), Source: "facade-test"}, "")
	if err != nil {
		t.Fatalf("registry Save: %v", err)
	}
	if man.FeatureSetHash != knowphish.FeatureSetHash(knowphish.AllSets) {
		t.Errorf("feature-set hash mismatch: %q", man.FeatureSetHash)
	}
	if _, err := reg.SetChampion(man.Version); err != nil {
		t.Fatalf("SetChampion: %v", err)
	}
	var src knowphish.DetectorSource = reg
	v, err := src.Current().ScoreCtx(t.Context(), knowphish.NewScoreRequest(snap))
	if err != nil {
		t.Fatalf("ScoreCtx via registry source: %v", err)
	}
	if v.ModelVersion != man.Version {
		t.Errorf("verdict model version = %q, want %q", v.ModelVersion, man.Version)
	}
	mon := knowphish.NewDriftMonitor(knowphish.DriftConfig{Window: 16})
	mon.Observe(v.Score, v.FinalPhish, nil)
	if got := mon.Status().Observations; got != 1 {
		t.Errorf("drift monitor observations = %d", got)
	}
}

func TestSnapshotFromHTML(t *testing.T) {
	snap := knowphish.SnapshotFromHTML(
		"http://evil.example/x",
		"http://evil.example/x",
		nil,
		`<title>NovaBank Login</title><body>novabank secure login
		 <a href="https://www.novabank.com/help">help</a>
		 <form action="/steal.php"><input type="text"><input type="password"></form></body>`,
	)
	if snap.Title != "NovaBank Login" {
		t.Errorf("Title = %q", snap.Title)
	}
	if snap.InputCount != 2 {
		t.Errorf("InputCount = %d", snap.InputCount)
	}
	if len(snap.HREFLinks) != 1 {
		t.Errorf("HREFLinks = %v", snap.HREFLinks)
	}
}

func TestWorldHelpers(t *testing.T) {
	w := knowphish.NewWorld(knowphish.WorldConfig{Seed: 63, Brands: 20, RankedGenerics: 30, VocabularyWords: 60})
	if len(w.Brands) != 20 {
		t.Fatalf("brands = %d", len(w.Brands))
	}
	engine := knowphish.NewSearchEngine()
	if engine.Len() != 0 {
		t.Error("fresh engine not empty")
	}
	if knowphish.NewOCR() == nil {
		t.Error("NewOCR returned nil")
	}
	rng := rand.New(rand.NewSource(1))
	site := w.NewPhishSite(rng, webgen.PhishOptions{})
	snap, err := knowphish.VisitSite(w, site)
	if err != nil {
		t.Fatalf("VisitSite: %v", err)
	}
	if snap.StartingURL == "" || snap.InputCount < 2 {
		t.Errorf("phish snapshot malformed: %+v", snap)
	}
}
