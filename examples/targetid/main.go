// Targetid walks through the target identification process of Section V:
// keyterm extraction (boosted prominent, prominent, OCR prominent terms),
// target-FQDN guessing, the search-engine steps, and candidate ranking —
// including the OCR fallback on an image-only phishing page.
//
// This example drives the Identifier directly to expose each step. In a
// full deployment identification runs inside Pipeline.AnalyzeCtx (its
// outcome lands in Verdict.Target) or over HTTP at POST /v2/target; a
// request can skip it with knowphish.WithoutTargetID when only the
// detector score matters.
//
//	go run ./examples/targetid
package main

import (
	"fmt"
	"log"
	"math/rand"

	"knowphish"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

func main() {
	log.SetFlags(0)

	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{
		Seed:              3,
		Scale:             50,
		SkipLanguageTests: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	world := corpus.World
	identifier := knowphish.NewTargetIdentifier(corpus.Engine)
	rng := rand.New(rand.NewSource(9))

	brand := world.Brands[2]
	fmt.Printf("target brand: %s (%s)\n\n", brand.Name, brand.RDN())

	// Case 1: a typical phish with text content.
	fmt.Println("--- case 1: ordinary phishing page ---")
	site := world.NewPhishSite(rng, webgen.PhishOptions{Target: brand, Hosting: webgen.HostDedicated})
	snap, err := knowphish.VisitSite(world, site)
	if err != nil {
		log.Fatal(err)
	}
	walkthrough(identifier, snap)

	// Case 2: an image-only phish — keyterm extraction from HTML fails,
	// the OCR prominent terms path (step 4) takes over.
	fmt.Println("--- case 2: image-only phishing page (OCR fallback) ---")
	site = world.NewPhishSite(rng, webgen.PhishOptions{Target: brand, ImageOnly: true, MinimalText: true})
	snap, err = knowphish.VisitSite(world, site)
	if err != nil {
		log.Fatal(err)
	}
	walkthrough(identifier, snap)

	// Case 3: a legitimate page — the process confirms it and stops.
	fmt.Println("--- case 3: legitimate page ---")
	legit := world.NewLegitSite(rng, webgen.LegitOptions{BrandVisit: true})
	snap, err = knowphish.VisitSite(world, legit)
	if err != nil {
		log.Fatal(err)
	}
	walkthrough(identifier, snap)
}

func walkthrough(id *knowphish.TargetIdentifier, snap *knowphish.Snapshot) {
	a := webpage.Analyze(snap)
	kt := target.ExtractKeyterms(a, 5)
	fmt.Printf("page: %s\n", snap.StartingURL)
	fmt.Printf("boosted prominent terms: %v\n", kt.Boosted)
	fmt.Printf("prominent terms:         %v\n", kt.Prominent)

	res := id.Identify(a)
	fmt.Printf("verdict after step %d: %s", res.StepsUsed, res.Verdict)
	if res.UsedOCR {
		fmt.Printf(" (used OCR prominent terms: %v)", res.OCRProminent)
	}
	fmt.Println()
	for i, c := range res.Candidates {
		if i == 3 {
			break
		}
		fmt.Printf("  candidate %d: %s (weight %d)\n", i+1, c.RDN, c.Count)
	}
	fmt.Println()
}
