// Clientside demonstrates the deployment model the paper argues for
// (Section IV-A "Usability" and the browser add-on of reference [3]): the
// detector runs entirely on the client from a persisted model file plus a
// local ranking list — no search engine, no centralized service, no
// browsing-history disclosure. Only the optional target identification
// step needs a search engine.
//
//	go run ./examples/clientside
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"knowphish"
)

func main() {
	log.SetFlags(0)

	// ---- Server side, once: train and export a model. ----------------
	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{
		Seed:              13,
		Scale:             50,
		SkipLanguageTests: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	trained, err := knowphish.Train(snaps, labels, knowphish.TrainConfig{Rank: corpus.World.Ranking()})
	if err != nil {
		log.Fatal(err)
	}
	var modelFile, rankFile bytes.Buffer
	if err := trained.Save(&modelFile); err != nil {
		log.Fatal(err)
	}
	if _, err := corpus.World.Ranking().WriteTo(&rankFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported model (%d bytes) and ranking list (%d bytes)\n\n",
		modelFile.Len(), rankFile.Len())

	// ---- Client side: everything below uses only the two files and ---
	// ---- the page content the browser already has. -------------------
	rank, err := knowphish.ReadRankList(&rankFile)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := knowphish.LoadDetector(&modelFile, rank)
	if err != nil {
		log.Fatal(err)
	}

	// The browser hands over what it observed: URLs, redirects, HTML.
	brand := corpus.World.Brands[0]
	phishHTML := fmt.Sprintf(`<html><head><title>%s — Verify Account</title></head>
<body><h1>%s</h1>
<p>%s secure login verify your account details immediately</p>
<a href="https://www.%s/support">Support</a>
<img src="https://www.%s/static/logo.png">
<form action="/collect.php" method="post">
  <input type="text"><input type="password">
</form>
</body></html>`, brand.Name, brand.Name, brand.Name, brand.RDN(), brand.RDN())

	// A browser add-on wants bounded latency and a reason it can show
	// the user — the v2 ScoreCtx request carries both.
	ctx := context.Background()
	snap := knowphish.SnapshotFromHTML(
		"http://account-verify-check.top/"+brand.MLD+"/login.php",
		"http://account-verify-check.top/"+brand.MLD+"/login.php",
		nil, phishHTML)
	verdict, err := detector.ScoreCtx(ctx, knowphish.NewScoreRequest(&snap,
		knowphish.WithDeadline(200*time.Millisecond),
		knowphish.WithExplain(knowphish.ExplainTop),
		knowphish.WithTopFeatures(4)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspicious page score: %.3f -> phish=%v (threshold %.1f, scored in %.1fms)\n",
		verdict.Score, verdict.DetectorPhish, verdict.Threshold,
		float64(verdict.Timings.TotalNS)/1e6)
	fmt.Println("  evidence the add-on can show the user:")
	for _, ctr := range verdict.Explanation.Contributions {
		fmt.Printf("    %-34s %+0.3f\n", ctr.Name, ctr.LogOdds)
	}

	legitHTML := `<html><head><title>Harbor Field — Community Garden News</title></head>
<body><h1>HarborField</h1>
<p>harborfield welcomes the spring planting season with workshops and stories
from our harborfield community garden plots around town</p>
<a href="/events">Events</a> <a href="/plots">Plots</a> <a href="/about">About</a>
<img src="/img/garden.jpg">
</body></html>`
	snap = knowphish.SnapshotFromHTML(
		"https://www.harborfield.org/news",
		"https://www.harborfield.org/news",
		nil, legitHTML)
	verdict, err = detector.ScoreCtx(ctx, knowphish.NewScoreRequest(&snap))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nordinary page score:   %.3f -> phish=%v\n",
		verdict.Score, verdict.DetectorPhish)

	// What does the model key on? (Section VII-A discussion.)
	fmt.Println("\ntop model features by ensemble splits:")
	for _, fw := range detector.TopFeatures(8) {
		fmt.Printf("  %-40s %d\n", fw.Name, fw.Splits)
	}
}
