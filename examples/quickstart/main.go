// Quickstart: train a detector on a small synthetic corpus, classify a
// legitimate page and a phishing page, and identify the phish's target.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"knowphish"
	"knowphish/internal/webgen"
)

func main() {
	log.SetFlags(0)

	// 1. Build the evaluation corpus: a synthetic web with brands,
	// legitimate sites and phishing campaigns (Table V of the paper,
	// scaled down 1/50 for a fast start).
	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{
		Seed:              1,
		Scale:             50,
		SkipLanguageTests: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the detector on legTrain + phishTrain — a few hundred
	// pages. The paper's point: this small training set generalizes.
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	detector, err := knowphish.Train(snaps, labels, knowphish.TrainConfig{
		Rank: corpus.World.Ranking(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d pages, threshold %.1f\n\n", len(snaps), detector.Threshold())

	// 3. Assemble the pipeline: detection + target identification.
	pipeline := &knowphish.Pipeline{
		Detector:   detector,
		Identifier: knowphish.NewTargetIdentifier(corpus.Engine),
	}

	// 4. Classify a fresh legitimate page and a fresh phish.
	rng := rand.New(rand.NewSource(42))
	world := corpus.World

	legit := world.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
	legitSnap, err := knowphish.VisitSite(world, legit)
	if err != nil {
		log.Fatal(err)
	}
	report(pipeline.Analyze(legitSnap), legitSnap)

	phish := world.NewPhishSite(rng, world.RandomPhishOptions(rng))
	phishSnap, err := knowphish.VisitSite(world, phish)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(ground truth: phish mimicking %s)\n", phish.TargetRDN)
	report(pipeline.Analyze(phishSnap), phishSnap)
}

func report(out knowphish.Outcome, snap *knowphish.Snapshot) {
	fmt.Printf("page:    %s\n", snap.StartingURL)
	fmt.Printf("score:   %.3f\n", out.Score)
	if out.FinalPhish {
		fmt.Println("verdict: PHISH")
	} else {
		fmt.Println("verdict: legitimate")
	}
	if out.TargetRun {
		fmt.Printf("target identification: %s\n", out.Target.Verdict)
		for i, c := range out.Target.Candidates {
			if i == 3 {
				break
			}
			fmt.Printf("  candidate %d: %s (weight %d)\n", i+1, c.RDN, c.Count)
		}
	}
	fmt.Println()
}
