// Quickstart: train a detector on a small synthetic corpus, classify a
// legitimate page and a phishing page, and identify the phish's target.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"knowphish"
	"knowphish/internal/webgen"
)

func main() {
	log.SetFlags(0)

	// 1. Build the evaluation corpus: a synthetic web with brands,
	// legitimate sites and phishing campaigns (Table V of the paper,
	// scaled down 1/50 for a fast start).
	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{
		Seed:              1,
		Scale:             50,
		SkipLanguageTests: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the detector on legTrain + phishTrain — a few hundred
	// pages. The paper's point: this small training set generalizes.
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	detector, err := knowphish.Train(snaps, labels, knowphish.TrainConfig{
		Rank: corpus.World.Ranking(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d pages, threshold %.1f\n\n", len(snaps), detector.Threshold())

	// 3. Assemble the pipeline: detection + target identification.
	pipeline := &knowphish.Pipeline{
		Detector:   detector,
		Identifier: knowphish.NewTargetIdentifier(corpus.Engine),
	}

	// 4. Classify a fresh legitimate page and a fresh phish.
	rng := rand.New(rand.NewSource(42))
	world := corpus.World

	ctx := context.Background()
	legit := world.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
	legitSnap, err := knowphish.VisitSite(world, legit)
	if err != nil {
		log.Fatal(err)
	}
	report(analyze(ctx, pipeline, legitSnap), legitSnap)

	phish := world.NewPhishSite(rng, world.RandomPhishOptions(rng))
	phishSnap, err := knowphish.VisitSite(world, phish)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(ground truth: phish mimicking %s)\n", phish.TargetRDN)
	report(analyze(ctx, pipeline, phishSnap), phishSnap)
}

// analyze runs the v2 pipeline entry point: context-aware, with the top
// per-feature evidence attached to the verdict.
func analyze(ctx context.Context, p *knowphish.Pipeline, snap *knowphish.Snapshot) knowphish.Verdict {
	v, err := p.AnalyzeCtx(ctx, knowphish.NewScoreRequest(snap,
		knowphish.WithExplain(knowphish.ExplainTop),
		knowphish.WithTopFeatures(3)))
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func report(v knowphish.Verdict, snap *knowphish.Snapshot) {
	fmt.Printf("page:    %s\n", snap.StartingURL)
	fmt.Printf("score:   %.3f\n", v.Score)
	fmt.Printf("verdict: %s (threshold %.1f)\n", v.Label, v.Threshold)
	if v.TargetRun {
		fmt.Printf("target identification: %s\n", v.Target.Verdict)
		for i, c := range v.Target.Candidates {
			if i == 3 {
				break
			}
			fmt.Printf("  candidate %d: %s (weight %d)\n", i+1, c.RDN, c.Count)
		}
	}
	if v.Explanation != nil {
		fmt.Println("why (top feature evidence, log-odds):")
		for _, ctr := range v.Explanation.Contributions {
			fmt.Printf("  %-34s %+0.3f (value %.2f)\n", ctr.Name, ctr.LogOdds, ctr.Value)
		}
	}
	fmt.Println()
}
