// Multilang demonstrates the language independence of the feature set
// (Section VI-C, Table VI of the paper): a detector trained only on
// English pages is evaluated against legitimate test sets in six
// languages, with the same phishing test set.
//
//	go run ./examples/multilang
package main

import (
	"context"
	"fmt"
	"log"

	"knowphish"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building six-language corpus (this generates ~15k pages)...")
	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{Seed: 7, Scale: 25})
	if err != nil {
		log.Fatal(err)
	}

	// Train on English-only corpora: legTrain is English, phishTrain is
	// multilingual-lure but structure-driven.
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	detector, err := knowphish.Train(snaps, labels, knowphish.TrainConfig{Rank: corpus.World.Ranking()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d pages (legTrain is English-only)\n\n", len(snaps))

	ctx := context.Background()
	fmt.Printf("%-12s %-6s %-7s %-8s %-7s\n", "Language", "Pre.", "Recall", "FPR", "AUC")
	for _, lang := range webgen.Languages {
		camp, ok := corpus.LangTests[lang]
		if !ok {
			continue
		}
		// One context-aware batch per language: the v2 batch path fans
		// out over all cores and would stop at ctx cancellation.
		var reqs []knowphish.ScoreRequest
		var truth []int
		for _, ex := range corpus.PhishTest.Examples {
			reqs = append(reqs, knowphish.NewScoreRequest(ex.Snapshot))
			truth = append(truth, 1)
		}
		for _, ex := range camp.Examples {
			reqs = append(reqs, knowphish.NewScoreRequest(ex.Snapshot))
			truth = append(truth, 0)
		}
		verdicts, err := detector.ScoreBatchCtx(ctx, reqs, 0)
		if err != nil {
			log.Fatal(err)
		}
		scores := make([]float64, len(verdicts))
		for i, v := range verdicts {
			scores[i] = v.Score
		}
		conf := ml.Evaluate(scores, truth, detector.Threshold())
		fmt.Printf("%-12s %-6.3f %-7.3f %-8.4f %-7.3f\n",
			lang, conf.Precision(), conf.Recall(), conf.FPR(), ml.AUC(scores, truth))
	}
	fmt.Println("\nthe paper's Table VI shape: precision 0.95+, recall ~constant, FPR < 0.005 across all six languages")
}
