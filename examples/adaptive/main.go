// Adaptive pits the evasion techniques of Section VII-C against the
// detector: IP-based URLs, minimal text, image-only pages, avoiding
// external links, typosquatted domains, and URL shorteners. It reports
// per-technique recall, reproducing the paper's discussion of which
// evasions cost the attacker the most.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"knowphish"
	"knowphish/internal/webgen"
)

func main() {
	log.SetFlags(0)

	corpus, err := knowphish.BuildCorpus(knowphish.CorpusConfig{
		Seed:              5,
		Scale:             25,
		SkipLanguageTests: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	snaps := append(corpus.LegTrain.Snapshots(), corpus.PhishTrain.Snapshots()...)
	labels := append(corpus.LegTrain.Labels(), corpus.PhishTrain.Labels()...)
	detector, err := knowphish.Train(snaps, labels, knowphish.TrainConfig{Rank: corpus.World.Ranking()})
	if err != nil {
		log.Fatal(err)
	}
	world := corpus.World
	rng := rand.New(rand.NewSource(11))

	techniques := []struct {
		name string
		opts func() webgen.PhishOptions
	}{
		{"baseline mixture", func() webgen.PhishOptions { return world.RandomPhishOptions(rng) }},
		{"IP-based URL", func() webgen.PhishOptions { return webgen.PhishOptions{Hosting: webgen.HostIP} }},
		{"typosquat domain", func() webgen.PhishOptions { return webgen.PhishOptions{Hosting: webgen.HostTyposquat} }},
		{"minimal text", func() webgen.PhishOptions {
			return webgen.PhishOptions{Hosting: webgen.HostDedicated, MinimalText: true}
		}},
		{"image-only page", func() webgen.PhishOptions { return webgen.PhishOptions{Hosting: webgen.HostDedicated, ImageOnly: true} }},
		{"no external links", func() webgen.PhishOptions {
			return webgen.PhishOptions{Hosting: webgen.HostDedicated, NoExternalLinks: true}
		}},
		{"all evasions at once", func() webgen.PhishOptions {
			return webgen.PhishOptions{Hosting: webgen.HostIP, MinimalText: true, NoExternalLinks: true}
		}},
		{"shortener chain", func() webgen.PhishOptions {
			return webgen.PhishOptions{Hosting: webgen.HostDedicated, UseShortener: true}
		}},
		{"stealth kit", func() webgen.PhishOptions {
			return webgen.PhishOptions{Stealth: true}
		}},
		{"misspelled lure", func() webgen.PhishOptions {
			return webgen.PhishOptions{Hosting: webgen.HostDedicated, MisspelledLure: true}
		}},
	}

	const perTechnique = 60
	ctx := context.Background()
	fmt.Printf("%-22s %-8s %s\n", "Evasion technique", "Recall", "(phish caught / generated)")
	for _, tech := range techniques {
		// Score each technique's cohort over the context-aware batch
		// path — the v2 entry point a serving deployment uses.
		reqs := make([]knowphish.ScoreRequest, 0, perTechnique)
		for i := 0; i < perTechnique; i++ {
			site := world.NewPhishSite(rng, tech.opts())
			snap, err := knowphish.VisitSite(world, site)
			if err != nil {
				log.Fatal(err)
			}
			reqs = append(reqs, knowphish.NewScoreRequest(snap))
		}
		verdicts, err := detector.ScoreBatchCtx(ctx, reqs, 0)
		if err != nil {
			log.Fatal(err)
		}
		caught := 0
		for _, v := range verdicts {
			if v.DetectorPhish {
				caught++
			}
		}
		fmt.Printf("%-22s %-8.2f (%d/%d)\n", tech.name, float64(caught)/perTechnique, caught, perTechnique)
	}
	fmt.Println("\npaper's finding (Section VII): individual evasions barely dent recall;")
	fmt.Println("IP URLs were the weakest spot (0.76 recall on 25 URLs), and stacking")
	fmt.Println("evasions degrades the phish itself more than the detector.")
}
