// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md experiment index E1–E12), the design ablations
// (A1–A5), and micro-benchmarks for the hot paths (term extraction,
// Hellinger distance, 212-feature extraction, GBM scoring, target
// identification, crawling).
//
// The table/figure benchmarks run the full experiment per iteration on a
// shared reduced-scale corpus (scale 1/50); cmd/kpexperiments regenerates
// the same artifacts at any scale. Shapes are scale-stable (see
// EXPERIMENTS.md).
package knowphish_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/dataset"
	"knowphish/internal/experiments"
	"knowphish/internal/features"
	"knowphish/internal/feed"
	"knowphish/internal/loadgen"
	"knowphish/internal/ml"
	"knowphish/internal/obs"
	"knowphish/internal/registry"
	"knowphish/internal/serve"
	"knowphish/internal/slo"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/terms"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
)

func benchSetup(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner, benchErr = experiments.NewRunner(dataset.Config{
			Seed:  71,
			Scale: 50,
			World: webgen.Config{Seed: 72, Brands: 100, RankedGenerics: 80, VocabularyWords: 140},
		})
	})
	if benchErr != nil {
		b.Fatalf("corpus: %v", benchErr)
	}
	return benchRunner
}

// ---------------------------------------------------------------------
// Per-table / per-figure benchmarks (E1–E12).

func BenchmarkTableV(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab := r.TableV(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableVI(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableVII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVIII(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableVIII(30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIX(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableIX(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableX(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableX(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPReduction(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.FPReduction(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks (A1–A5).

func BenchmarkAblationSplit(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationSplit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDistance(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationDistance(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationThreshold(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTrainSize(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationTrainSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUnseenBrands(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationUnseenBrands(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClassifier(b *testing.B) {
	r := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationClassifier(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks for the hot paths.

func benchSnapshot(b *testing.B, phish bool) *webpage.Snapshot {
	b.Helper()
	r := benchSetup(b)
	rng := rand.New(rand.NewSource(5))
	var site *webgen.Site
	if phish {
		site = r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
	} else {
		site = r.Corpus.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
	}
	snap, err := crawl.VisitSite(r.Corpus.World, site)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

func BenchmarkTermExtraction(b *testing.B) {
	snap := benchSnapshot(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := terms.Extract(snap.Text); len(got) == 0 {
			b.Fatal("no terms")
		}
	}
}

func BenchmarkHellinger(b *testing.B) {
	snap := benchSnapshot(b, false)
	a := webpage.Analyze(snap)
	p := a.Dist(webpage.DistText)
	q := a.Dist(webpage.DistTitle)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = terms.Hellinger(p, q)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	snap := benchSnapshot(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = webpage.Analyze(snap)
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	r := benchSetup(b)
	snap := benchSnapshot(b, true)
	e := features.Extractor{Rank: r.Corpus.World.Ranking()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := e.ExtractSnapshot(snap); len(v) != features.TotalCount {
			b.Fatal("bad vector")
		}
	}
}

func BenchmarkGBMScore(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot(b, true)
	e := features.Extractor{Rank: r.Corpus.World.Ranking()}
	v := e.ExtractSnapshot(snap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.ScoreVector(v)
	}
}

// BenchmarkGBMPredict prices one ensemble prediction in both inference
// layouts: layout=flat is the production path (contiguous node array,
// children by absolute index, zero allocation), layout=tree walks the
// serialized per-tree node slices the model trains and saves in. The
// delta is what the flattened layout buys; the CI benchmark-regression
// gate watches the flat variant.
func BenchmarkGBMPredict(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	m := d.Model()
	snap := benchSnapshot(b, true)
	e := features.Extractor{Rank: r.Corpus.World.Ranking()}
	v := e.ExtractSnapshot(snap)
	if m.Score(v) != m.ScoreReference(v) {
		b.Fatal("flat and reference layouts disagree")
	}
	b.Run("layout=flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Score(v)
		}
	})
	b.Run("layout=tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.ScoreReference(v)
		}
	})
}

// BenchmarkScoreHotPath measures core.Detector.ScoreCtx, the per-page
// scoring engine under every serving endpoint. path=warm is the
// cached-page fast path — the analysis is precomputed (WithAnalysis)
// and the feature vector is pooled — and must report 0 allocs/op:
// extraction, classification and verdict assembly all run without
// touching the heap. path=cold includes snapshot analysis, the
// allocation-budgeted full path. The CI benchmark-regression gate
// watches the warm variant.
func BenchmarkScoreHotPath(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot(b, false)
	a := webpage.Analyze(snap)
	ctx := context.Background()
	warm := core.NewScoreRequest(snap, core.WithAnalysis(a))
	cold := core.NewScoreRequest(snap)
	if _, err := d.ScoreCtx(ctx, warm); err != nil {
		b.Fatal(err)
	}
	b.Run("path=warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.ScoreCtx(ctx, warm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path=cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.ScoreCtx(ctx, cold); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedScore prices the observability layer on the scoring
// hot path: the warm ScoreCtx loop of BenchmarkScoreHotPath wrapped in
// Tracer.StartRequest/Finish. tracing=off is the production default for
// untraced callers — a disabled tracer returns a nil trace and the
// scorer's span calls are nil no-ops, so the variant must hold the
// PR-5 zero-allocation contract. tracing=on records a pooled trace with
// per-stage spans per iteration; its delta over off is the full cost of
// tracing a request. The CI benchmark-regression gate watches both.
func BenchmarkTracedScore(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot(b, false)
	a := webpage.Analyze(snap)
	warm := core.NewScoreRequest(snap, core.WithAnalysis(a))
	for _, enabled := range []bool{false, true} {
		name := "tracing=off"
		if enabled {
			name = "tracing=on"
		}
		b.Run(name, func(b *testing.B) {
			tracer := obs.NewTracer(obs.Config{Disabled: !enabled})
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tctx, tr := tracer.StartRequest(ctx, "/bench", "")
				if _, err := d.ScoreCtx(tctx, warm); err != nil {
					b.Fatal(err)
				}
				tracer.Finish(tr)
			}
		})
	}
}

func BenchmarkGBMTrain(b *testing.B) {
	r := benchSetup(b)
	x, y := r.TrainMatrix()
	cfg := ml.GBMConfig{Trees: 30, MaxDepth: 3, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainGBM(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTargetIdentification(b *testing.B) {
	r := benchSetup(b)
	id := target.New(r.Corpus.Engine)
	snap := benchSnapshot(b, true)
	a := webpage.Analyze(snap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = id.Identify(a)
	}
}

// BenchmarkServeScore drives the HTTP serving path end to end: one batch
// request of mixed phish/legit pages through Server.ServeHTTP, with the
// verdict cache disabled so every iteration does the full pipeline. The
// workers sub-benchmarks show batch scoring scaling from serial to
// GOMAXPROCS fan-out.
func BenchmarkServeScore(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var pages []serve.PageRequest
	for i := 0; i < 32; i++ {
		var site *webgen.Site
		if i%2 == 0 {
			site = r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
		} else {
			site = r.Corpus.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		}
		snap, err := crawl.VisitSite(r.Corpus.World, site)
		if err != nil {
			b.Fatal(err)
		}
		pages = append(pages, serve.PageRequest{Snapshot: snap})
	}

	workerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv, err := serve.New(serve.Config{
				Detector:   d,
				Identifier: target.New(r.Corpus.Engine),
				Workers:    workers,
				CacheSize:  -1, // measure scoring, not cache hits
			})
			if err != nil {
				b.Fatal(err)
			}
			body, err := json.Marshal(serve.BatchRequest{Pages: pages, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/score/batch", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkCoalescedScore measures the cross-request scoring coalescer:
// conc concurrent callers funnel into shared node-major kernel passes
// (internal/coalesce), with the per-stage memo tables cold (disabled, so
// every request recomputes but still batches) or warm (pre-populated, so
// requests ride the content-addressed fast path). Per-op time is one
// scored page. The warm sub-benchmarks are the steady-state claim:
// repeated content must be near-free and allocation-free.
func BenchmarkCoalescedScore(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	pipe := &core.Pipeline{Detector: d, Identifier: target.New(r.Corpus.Engine)}
	rng := rand.New(rand.NewSource(11))
	var reqs []core.ScoreRequest
	for i := 0; i < 32; i++ {
		var site *webgen.Site
		if i%2 == 0 {
			site = r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
		} else {
			site = r.Corpus.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		}
		snap, err := crawl.VisitSite(r.Corpus.World, site)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, core.NewScoreRequest(snap))
	}

	ctx := context.Background()
	for _, conc := range []int{1, 8, 64} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("conc=%d/memo=%s", conc, mode), func(b *testing.B) {
				memo := 0 // default table size
				if mode == "cold" {
					memo = -1 // disabled: batching without memoization
				}
				coal := coalesce.New(coalesce.Config{MemoEntries: memo})
				if mode == "warm" {
					for _, req := range reqs {
						if _, err := coal.Do(ctx, pipe, req, coalesce.CacheDefault, nil); err != nil {
							b.Fatal(err)
						}
					}
				}
				var next atomic.Int64
				b.ReportAllocs()
				b.SetParallelism(conc) // conc goroutines per GOMAXPROCS
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						req := reqs[int(next.Add(1))%len(reqs)]
						if _, err := coal.Do(ctx, pipe, req, coalesce.CacheDefault, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.StopTimer()
				st := coal.Snapshot()
				if st.Batches > 0 {
					b.ReportMetric(float64(st.BatchedItems)/float64(st.Batches), "items/batch")
				}
			})
		}
	}
}

// BenchmarkMemoLookup pins the content-addressed memo fast path: one
// fully-warm page through Coalescer.Do — content hash, sharded table
// lookups (analysis, features, score, target) and verdict assembly,
// with no stage recomputed. This is the per-request overhead every
// warm request pays, so the gate holds it to microseconds and zero
// allocations. (internal/coalesce has the table-only microbenchmark.)
func BenchmarkMemoLookup(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	pipe := &core.Pipeline{Detector: d, Identifier: target.New(r.Corpus.Engine)}
	rng := rand.New(rand.NewSource(13))
	site := r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
	snap, err := crawl.VisitSite(r.Corpus.World, site)
	if err != nil {
		b.Fatal(err)
	}
	req := core.NewScoreRequest(snap)
	ctx := context.Background()
	coal := coalesce.New(coalesce.Config{})
	if _, err := coal.Do(ctx, pipe, req, coalesce.CacheDefault, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coal.Do(ctx, pipe, req, coalesce.CacheDefault, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedIngest drives the continuous ingestion pipeline end to
// end: a batch of synthetic-world URLs enters the scheduler, is crawled,
// scored, target-identified and persisted to the segmented verdict
// store.
// The workers sub-benchmarks show enqueue→persist throughput scaling
// from a serial worker loop to GOMAXPROCS fan-out. Per-domain rate
// limiting is disabled — the measurement is pipeline throughput, not
// politeness.
func BenchmarkFeedIngest(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	var urls []string
	fetchers := []crawl.Fetcher{r.Corpus.World}
	for i := 0; i < 32; i++ {
		var site *webgen.Site
		if i%2 == 0 {
			site = r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
		} else {
			site = r.Corpus.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		}
		fetchers = append(fetchers, site)
		urls = append(urls, site.StartURL)
	}
	fetcher := crawl.Compose(fetchers...)

	workerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			st, err := store.Open(store.Config{Path: filepath.Join(b.TempDir(), "verdicts.jsonl")})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			sched, err := feed.New(feed.Config{
				Fetcher:    fetcher,
				Pipeline:   &core.Pipeline{Detector: d, Identifier: target.New(r.Corpus.Engine)},
				Store:      st,
				Workers:    workers,
				QueueDepth: 2 * len(urls),
				DomainRate: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, u := range urls {
					if err := sched.Enqueue(u); err != nil {
						b.Fatal(err)
					}
				}
				if !sched.Wait(time.Now().Add(time.Minute)) {
					b.Fatal("ingestion stalled")
				}
			}
			b.StopTimer()
			if dropped := sched.Drain(time.Now().Add(time.Minute)); dropped != 0 {
				b.Fatalf("drain dropped %d", dropped)
			}
			if stats := sched.Stats(); stats.Failed != 0 {
				b.Fatalf("feed failures: %+v", stats)
			}
			b.ReportMetric(float64(len(urls)), "urls/op")
		})
	}
}

func BenchmarkCrawlVisit(b *testing.B) {
	r := benchSetup(b)
	rng := rand.New(rand.NewSource(6))
	site := r.Corpus.World.NewPhishSite(rng, webgen.PhishOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crawl.VisitSite(r.Corpus.World, site); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := webgen.New(webgen.Config{Seed: int64(i + 1), Brands: 50, RankedGenerics: 50, VocabularyWords: 80})
		if len(w.Brands) != 50 {
			b.Fatal("bad world")
		}
	}
}

func BenchmarkPhishGeneration(b *testing.B) {
	r := benchSetup(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site := r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
		if !site.IsPhish {
			b.Fatal("not phish")
		}
	}
}

// BenchmarkHotSwap prices the zero-downtime model swap: the same
// scoring loop runs against a registry source in steady state
// (swaps=off) and while a background goroutine promotes champions as
// fast as the registry allows (swaps=on). The swap path is one atomic
// store plus cold-path disk IO, and the scoring hot path is one atomic
// load, so the p99-ns/op metric of the two sub-benchmarks must stay
// comparable — a swap never stalls in-flight scorers.
func BenchmarkHotSwap(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	reg, err := registry.Open(b.TempDir(), r.Corpus.World.Ranking())
	if err != nil {
		b.Fatal(err)
	}
	// Two registered versions of the same artifact: swapping between
	// them isolates the swap mechanics from model-quality differences.
	for i := 0; i < 2; i++ {
		if _, err := reg.Save(d, registry.TrainingStats{Source: "bench"}, ""); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := reg.SetChampion("v0001"); err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot(b, true)
	req := core.NewScoreRequest(snap, core.WithoutTargetID())
	ctx := context.Background()

	for _, swapping := range []bool{false, true} {
		name := "swaps=off"
		if swapping {
			name = "swaps=on"
		}
		b.Run(name, func(b *testing.B) {
			done := make(chan struct{})
			swapped := make(chan struct{})
			if swapping {
				go func() {
					defer close(swapped)
					versions := [2]string{"v0002", "v0001"}
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						if _, err := reg.SetChampion(versions[i%2]); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			} else {
				close(swapped)
			}
			durations := make([]time.Duration, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				det := reg.Current()
				if _, err := det.ScoreCtx(ctx, req); err != nil {
					b.Fatal(err)
				}
				durations[i] = time.Since(t0)
			}
			b.StopTimer()
			close(done)
			<-swapped
			sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
			b.ReportMetric(float64(durations[len(durations)*99/100].Nanoseconds()), "p99-ns/op")
		})
	}
}

// BenchmarkAnalyzeCtx measures the v2 pipeline entry point and prices
// the explanation feature: explain=none is the production fast path,
// explain=top adds one decision-path walk per tree, explain=full adds
// the same walk plus full contribution sorting. The delta between
// sub-benchmarks is the exact cost a client opts into with
// WithExplain.
func BenchmarkAnalyzeCtx(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	pipe := &core.Pipeline{Detector: d, Identifier: target.New(r.Corpus.Engine)}
	rng := rand.New(rand.NewSource(12))
	var snaps []*webpage.Snapshot
	for i := 0; i < 16; i++ {
		var site *webgen.Site
		if i%2 == 0 {
			site = r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
		} else {
			site = r.Corpus.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		}
		snap, err := crawl.VisitSite(r.Corpus.World, site)
		if err != nil {
			b.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	ctx := context.Background()
	for _, lvl := range []struct {
		name string
		opts []core.ScoreOption
	}{
		{"explain=none", nil},
		{"explain=top", []core.ScoreOption{core.WithExplain(core.ExplainTop)}},
		{"explain=full", []core.ScoreOption{core.WithExplain(core.ExplainFull)}},
	} {
		b.Run(lvl.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snap := snaps[i%len(snaps)]
				v, err := pipe.AnalyzeCtx(ctx, core.NewScoreRequest(snap, lvl.opts...))
				if err != nil {
					b.Fatal(err)
				}
				if v.Score < 0 || v.Score > 1 {
					b.Fatal("score out of range")
				}
			}
		})
	}
}

// BenchmarkAnalyzeBatchCancelled demonstrates bounded work after
// cancellation: a pre-cancelled context over batches of very different
// sizes costs near-constant time — the pool never starts items once
// ctx is done, so abandoned requests stop consuming CPU. Compare
// n=64 with n=1024: without cancellation the latter is 16× the work;
// cancelled, both cost microseconds.
func BenchmarkAnalyzeBatchCancelled(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	pipe := &core.Pipeline{Detector: d, Identifier: target.New(r.Corpus.Engine)}
	rng := rand.New(rand.NewSource(13))
	site := r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
	snap, err := crawl.VisitSite(r.Corpus.World, site)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{64, 1024} {
		reqs := make([]core.ScoreRequest, n)
		for i := range reqs {
			reqs[i] = core.NewScoreRequest(snap)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs, err := pipe.AnalyzeBatchCtx(ctx, reqs, 0)
				if err == nil {
					b.Fatal("cancelled batch reported no error")
				}
				done := 0
				for _, v := range vs {
					if v != nil {
						done++
					}
				}
				if done > runtime.GOMAXPROCS(0)*4 {
					b.Fatalf("cancelled batch still ran %d of %d items", done, n)
				}
			}
		})
	}
}

// storeBenchOpen opens a fresh verdict store of the named engine.
// Automatic compaction is disabled so the append and scan benchmarks
// measure the engine's steady-state path, not compaction scheduling.
func storeBenchOpen(b *testing.B, engine string) store.Backend {
	b.Helper()
	path := filepath.Join(b.TempDir(), "verdicts")
	if engine == store.BackendLegacy {
		path = filepath.Join(b.TempDir(), "verdicts.jsonl")
	}
	st, err := store.Open(store.Config{Path: path, Backend: engine, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	return st
}

func storeBenchRecord(i int) store.Record {
	return store.Record{
		URL:          fmt.Sprintf("http://lure.test/%d", i),
		LandingURL:   fmt.Sprintf("http://land.test/%d", i),
		Fingerprint:  "fp",
		Target:       "novabank.com",
		ModelVersion: "v0001",
		Outcome:      core.Outcome{Score: 0.9, DetectorPhish: true, FinalPhish: true},
		ScoredAt:     time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
	}
}

// BenchmarkStoreAppend measures one durable verdict append per
// iteration — frame encoding plus the buffered segment write for the
// segmented WAL, one JSON line for the legacy log.
func BenchmarkStoreAppend(b *testing.B) {
	for _, engine := range []string{store.BackendSegmented, store.BackendLegacy} {
		b.Run("backend="+engine, func(b *testing.B) {
			st := storeBenchOpen(b, engine)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Append(ctx, storeBenchRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreScan measures one 100-record newest-first query page
// over a 4096-record store — the /v1 and /v2 verdicts read path. The
// segmented engine pays a disk read per record (its index holds
// locations, not records); the legacy engine serves from its in-memory
// map.
func BenchmarkStoreScan(b *testing.B) {
	const records = 4096
	for _, engine := range []string{store.BackendSegmented, store.BackendLegacy} {
		b.Run("backend="+engine, func(b *testing.B) {
			st := storeBenchOpen(b, engine)
			ctx := context.Background()
			for i := 0; i < records; i++ {
				if err := st.Append(ctx, storeBenchRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page, err := st.Scan(ctx, store.Query{Limit: 100})
				if err != nil {
					b.Fatal(err)
				}
				if len(page.Records) != 100 {
					b.Fatalf("page = %d records, want 100", len(page.Records))
				}
			}
		})
	}
}

// BenchmarkStoreReopen measures cold-start time over an existing
// verdict log — the restart-recovery path. The segmented engine loads
// a binary snapshot and replays only the frames past its watermark;
// the legacy engine re-parses every JSON line. The records=100000
// sub-benchmarks are the PR's fast-start acceptance measurement:
// segmented reopen must be ≥10× faster than legacy.
func BenchmarkStoreReopen(b *testing.B) {
	for _, records := range []int{10000, 100000} {
		for _, engine := range []string{store.BackendSegmented, store.BackendLegacy} {
			b.Run(fmt.Sprintf("backend=%s/records=%d", engine, records), func(b *testing.B) {
				path := filepath.Join(b.TempDir(), "verdicts")
				if engine == store.BackendLegacy {
					path = filepath.Join(b.TempDir(), "verdicts.jsonl")
				}
				st, err := store.Open(store.Config{Path: path, Backend: engine, CompactEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				for i := 0; i < records; i++ {
					if err := st.Append(ctx, storeBenchRecord(i)); err != nil {
						b.Fatal(err)
					}
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := store.Open(store.Config{Path: path, Backend: engine, CompactEvery: -1})
					if err != nil {
						b.Fatal(err)
					}
					if st.Len() != records {
						b.Fatalf("reopened Len = %d, want %d", st.Len(), records)
					}
					b.StopTimer() // measure the open, not the close
					if err := st.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkWindowedHist prices one windowed-latency observation — the
// cost the serving layer adds to every successful request for the
// rolling 1m/5m/1h percentile view. The path is two ring-slot epoch
// checks plus two histogram increments, all atomics; the gate pins it
// at 0 allocs/op.
func BenchmarkWindowedHist(b *testing.B) {
	w := obs.NewWindowedHist(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkAdmission prices the admission-control fast path as the
// serving layer executes it on every request: one atomic shed-level
// load from the SLO engine plus a priority comparison. Runs against an
// armed engine in the healthy state (shed level 0, everything
// admitted) — the path every request pays whether or not overload ever
// happens. The gate pins it at 0 allocs/op.
func BenchmarkAdmission(b *testing.B) {
	objs, err := slo.ParseObjectives([]string{"score:p99<250ms,avail>99.9"})
	if err != nil {
		b.Fatal(err)
	}
	eng := slo.New(slo.Config{Objectives: objs})
	const pri = 3 // interactive class: sheddable, admitted at level 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if admitted := pri == 0 || pri > eng.ShedLevel(); !admitted {
			b.Fatal("unexpected shed")
		}
	}
}

// BenchmarkLoadEndToEnd is the macro benchmark behind `make load-smoke`
// and the bench gate: a complete in-process kpserve (detector, feed
// pipeline, in-memory verdict store) on a real HTTP listener, loaded by
// the internal/loadgen closed loop with a fixed request budget per
// iteration. One op is one full load run; the reported url/s is the
// sustained submission throughput, and the benchmark fails if the
// server loses a verdict (accepted but neither persisted nor failed).
func BenchmarkLoadEndToEnd(b *testing.B) {
	r := benchSetup(b)
	d, err := r.Detector(0)
	if err != nil {
		b.Fatal(err)
	}
	world := r.Corpus.World
	var corpus []string
	for _, brand := range world.Brands {
		corpus = append(corpus, world.BrandSiteURLs(brand)...)
	}

	const budget = 256 // requests per load run
	b.ReportAllocs()
	b.ResetTimer()
	var last loadgen.Report
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(store.Config{Backend: store.BackendMemory})
		if err != nil {
			b.Fatal(err)
		}
		sched, err := feed.New(feed.Config{
			Fetcher:    world,
			Pipeline:   &core.Pipeline{Detector: d, Identifier: target.New(r.Corpus.Engine)},
			Store:      st,
			DomainRate: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := serve.New(serve.Config{
			Detector:   d,
			Identifier: target.New(r.Corpus.Engine),
			Feed:       sched,
			Store:      st,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		b.StartTimer()

		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			TargetURL:      ts.URL,
			Corpus:         corpus,
			Workers:        runtime.GOMAXPROCS(0),
			Requests:       budget,
			ScrapeInterval: -1,
		})
		if err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		if dropped := sched.Drain(time.Now().Add(30 * time.Second)); dropped != 0 {
			b.Fatalf("drain dropped %d accepted URLs", dropped)
		}
		fs := sched.Stats()
		if fs.Processed+fs.Failed != fs.Accepted {
			b.Fatalf("verdict loss: accepted %d, processed %d + failed %d", fs.Accepted, fs.Processed, fs.Failed)
		}
		if rep.Errors > 0 {
			b.Fatalf("load run saw %d request errors", rep.Errors)
		}
		ts.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		last = rep
		b.StartTimer()
	}
	b.ReportMetric(last.SustainedQPS, "url/s")
	b.ReportMetric(float64(last.LatencyP99US), "p99-µs")
}
