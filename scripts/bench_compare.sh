#!/bin/sh
# bench_compare.sh — run a benchmark on a base ref and on the working
# tree, then print a delta table. The CI job runs it on every pull
# request so serving-path regressions show up in the log before merge.
#
# Usage:
#   scripts/bench_compare.sh [base-ref]      # default: HEAD~1
#
# Environment:
#   BENCH      benchmark regexp        (default: BenchmarkServeScore)
#   COUNT      runs per benchmark      (default: 3; best-of is compared)
#   BENCHTIME  go test -benchtime      (default: 1s)
set -eu

BASE_REF=${1:-HEAD~1}
BENCH=${BENCH:-BenchmarkServeScore}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-1s}

ROOT=$(git rev-parse --show-toplevel)
cd "$ROOT"

TMP=$(mktemp -d)
BASE_DIR="$TMP/base"
trap 'git worktree remove --force "$BASE_DIR" >/dev/null 2>&1 || true; rm -rf "$TMP"' EXIT INT TERM

git worktree add --detach "$BASE_DIR" "$BASE_REF" >/dev/null

run_bench() {
    # $1 = dir, $2 = output file. Keep the minimum ns/op per benchmark
    # across COUNT runs — minimum is the standard noise-robust statistic
    # for CPU-bound microbenchmarks.
    (cd "$1" && go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" .) |
        awk '$NF == "ns/op" { if (!($1 in best) || $(NF-1) < best[$1]) best[$1] = $(NF-1) }
             END { for (b in best) printf "%s %s\n", b, best[b] }' | sort > "$2"
}

echo "bench-compare: base=$BASE_REF ($(git rev-parse --short "$BASE_REF")) vs HEAD ($(git rev-parse --short HEAD))"
echo "bench-compare: bench=$BENCH count=$COUNT benchtime=$BENCHTIME"

run_bench "$BASE_DIR" "$TMP/base.txt"
run_bench "$ROOT" "$TMP/head.txt"

echo
printf '%-44s %14s %14s %9s\n' "benchmark" "base ns/op" "head ns/op" "delta"
join "$TMP/base.txt" "$TMP/head.txt" | awk '{
    delta = ($2 > 0) ? ($3 - $2) / $2 * 100 : 0
    printf "%-44s %14.0f %14.0f %+8.1f%%\n", $1, $2, $3, delta
}'

# Benchmarks present on only one side (added or removed by the change).
cut -d' ' -f1 "$TMP/base.txt" > "$TMP/base.names"
cut -d' ' -f1 "$TMP/head.txt" > "$TMP/head.names"
comm -23 "$TMP/base.names" "$TMP/head.names" | sed 's/^/only in base: /'
comm -13 "$TMP/base.names" "$TMP/head.names" | sed 's/^/only in head: /'
