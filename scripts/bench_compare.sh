#!/bin/sh
# bench_compare.sh — run benchmarks on a base ref and on the working
# tree, print a base-vs-HEAD delta table (ns/op and allocs/op), and
# optionally gate: with GATE=1 the script exits nonzero when a key
# benchmark regresses beyond the threshold. The CI perf job runs it on
# every pull request so hot-path regressions fail the PR instead of
# scrolling past in a log.
#
# Usage:
#   scripts/bench_compare.sh [base-ref]      # default: HEAD~1
#
# Environment:
#   BENCH          benchmark regexp       (default: the key-benchmark set)
#   COUNT          runs per benchmark     (default: 3; medians compared)
#   BENCHTIME      go test -benchtime     (default: 1s)
#   GATE           1 = fail on regression (default: 0, report only)
#   GATE_BENCHES   regexp of benchmarks held to the threshold
#                  (default: the key-benchmark set)
#   GATE_THRESHOLD max tolerated regression in percent (default: 15)
#
# Statistics: each benchmark runs COUNT times per side and the medians
# are compared (benchstat's robust central estimate; a single noisy run
# on a shared CI machine cannot fake or mask a regression). allocs/op
# gates alongside ns/op because an allocation regression is invisible
# in wall time until the GC bill arrives under production load.
set -eu

# KEY_BENCHES / KEY_GATE come from bench_lib.sh, the single source of
# the key-benchmark set shared with bench_json.sh.
. "$(dirname "$0")/bench_lib.sh"

BASE_REF=${1:-HEAD~1}
BENCH=${BENCH:-$KEY_BENCHES}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-1s}
GATE=${GATE:-0}
GATE_BENCHES=${GATE_BENCHES:-$KEY_GATE}
GATE_THRESHOLD=${GATE_THRESHOLD:-15}

ROOT=$(git rev-parse --show-toplevel)
cd "$ROOT"

TMP=$(mktemp -d)
BASE_DIR="$TMP/base"
trap 'git worktree remove --force "$BASE_DIR" >/dev/null 2>&1 || true; rm -rf "$TMP"' EXIT INT TERM

git worktree add --detach "$BASE_DIR" "$BASE_REF" >/dev/null

# median_stats reduces raw `go test -bench -benchmem` output to one
# line per benchmark: "name median-ns/op median-allocs/op". Units are
# located by marker field, so benchmarks reporting extra metrics
# (urls/op, p99-ns/op) parse the same as plain ones. Benchmarks from a
# base ref predating -benchmem in this script report allocs as "na".
median_stats() {
    awk '
        function median(vals, n,    i, j, tmp, srt) {
            if (n == 0) return "na"
            for (i = 1; i <= n; i++) srt[i] = vals[i] + 0
            for (i = 2; i <= n; i++) {
                tmp = srt[i]
                for (j = i - 1; j >= 1 && srt[j] > tmp; j--) srt[j + 1] = srt[j]
                srt[j + 1] = tmp
            }
            if (n % 2 == 1) return srt[(n + 1) / 2]
            return (srt[n / 2] + srt[n / 2 + 1]) / 2
        }
        /^Benchmark/ {
            name = $1
            for (i = 2; i < NF; i++) {
                if ($(i + 1) == "ns/op" && i == 3) {
                    nns[name]++
                    ns[name, nns[name]] = $i
                }
                if ($(i + 1) == "allocs/op") {
                    nal[name]++
                    al[name, nal[name]] = $i
                }
            }
        }
        END {
            for (b in nns) {
                n = nns[b]
                for (i = 1; i <= n; i++) v[i] = ns[b, i]
                m1 = median(v, n)
                n2 = nal[b]
                for (i = 1; i <= n2; i++) w[i] = al[b, i]
                m2 = median(w, n2)
                printf "%s %s %s\n", b, m1, m2
            }
        }'
}

run_bench() {
    # $1 = dir, $2 = output file.
    (cd "$1" && go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .) |
        median_stats | sort > "$2"
}

echo "bench-compare: base=$BASE_REF ($(git rev-parse --short "$BASE_REF")) vs HEAD ($(git rev-parse --short HEAD))"
echo "bench-compare: bench=$BENCH count=$COUNT benchtime=$BENCHTIME gate=$GATE threshold=${GATE_THRESHOLD}%"

run_bench "$BASE_DIR" "$TMP/base.txt"
run_bench "$ROOT" "$TMP/head.txt"

# join output fields: 1 name, 2 base ns/op, 3 base allocs/op,
# 4 head ns/op, 5 head allocs/op.
join "$TMP/base.txt" "$TMP/head.txt" > "$TMP/joined.txt"

echo
printf '%-44s %13s %13s %8s %11s %11s %8s\n' \
    "benchmark" "base ns/op" "head ns/op" "delta" "base allocs" "head allocs" "delta"
awk '{
    nsd = ($2 > 0) ? ($4 - $2) / $2 * 100 : 0
    if ($3 == "na" || $5 == "na")      ald = "n/a"
    else if ($3 + 0 > 0)               ald = sprintf("%+7.1f%%", ($5 - $3) / $3 * 100)
    else if ($5 + 0 > 0)               ald = "  +inf%"
    else                               ald = "   0.0%"
    printf "%-44s %13.0f %13.0f %+7.1f%% %11s %11s %8s\n", $1, $2, $4, nsd, $3, $5, ald
}' "$TMP/joined.txt"

# Benchmarks present on only one side (added or removed by the change).
cut -d' ' -f1 "$TMP/base.txt" > "$TMP/base.names"
cut -d' ' -f1 "$TMP/head.txt" > "$TMP/head.names"
comm -23 "$TMP/base.names" "$TMP/head.names" | sed 's/^/only in base: /'
comm -13 "$TMP/base.names" "$TMP/head.names" | sed 's/^/only in head: /'

[ "$GATE" = "1" ] || exit 0

echo
FAILED=0

# A gate benchmark that existed on base but vanished from HEAD cannot
# be verified — treat removal as failure rather than silently passing.
if comm -23 "$TMP/base.names" "$TMP/head.names" | grep -E -- "$GATE_BENCHES" > "$TMP/removed.txt"; then
    sed 's/^/GATE FAIL (removed): /' "$TMP/removed.txt"
    FAILED=1
fi

awk -v gate="$GATE_BENCHES" -v thr="$GATE_THRESHOLD" '
    $1 !~ gate { next }
    {
        fail = 0
        if ($2 > 0 && ($4 - $2) / $2 * 100 > thr) {
            printf "GATE FAIL: %s ns/op regressed %+.1f%% (%.0f -> %.0f, limit +%s%%)\n", \
                $1, ($4 - $2) / $2 * 100, $2, $4, thr
            fail = 1
        }
        if ($3 != "na" && $5 != "na") {
            if ($3 + 0 > 0 && ($5 - $3) / $3 * 100 > thr) {
                printf "GATE FAIL: %s allocs/op regressed %+.1f%% (%s -> %s, limit +%s%%)\n", \
                    $1, ($5 - $3) / $3 * 100, $3, $5, thr
                fail = 1
            } else if ($3 + 0 == 0 && $5 + 0 > 0) {
                printf "GATE FAIL: %s allocs/op regressed from 0 to %s\n", $1, $5
                fail = 1
            }
        }
        if (fail) bad = 1
        else printf "gate ok:   %s\n", $1
    }
    END { exit bad ? 1 : 0 }
' "$TMP/joined.txt" || FAILED=1

if [ "$FAILED" = "1" ]; then
    echo "bench-compare: GATE FAILED (regression over ${GATE_THRESHOLD}% in a key benchmark)"
    exit 1
fi
echo "bench-compare: gate passed"
