#!/bin/sh
# bench_json.sh — run the key benchmarks and emit a machine-readable
# summary (ns/op, B/op, allocs/op per benchmark) so the performance
# trajectory across PRs can be tracked: CI uploads the file as the
# BENCH_PR artifact on every run, and any later tooling can diff two
# artifacts without re-parsing go test logs.
#
# Environment:
#   BENCH      benchmark regexp    (default: the key-benchmark set)
#   COUNT      runs per benchmark  (default: 3; medians reported)
#   BENCHTIME  go test -benchtime  (default: 1s)
#   OUT        output path         (default: BENCH_PR.json)
set -eu

# KEY_BENCHES comes from bench_lib.sh, the single source of the
# key-benchmark set shared with bench_compare.sh.
. "$(dirname "$0")/bench_lib.sh"

BENCH=${BENCH:-$KEY_BENCHES}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-1s}
OUT=${OUT:-BENCH_PR.json}

ROOT=$(git rev-parse --show-toplevel)
cd "$ROOT"

COMMIT=$(git rev-parse HEAD 2>/dev/null || echo unknown)
GOVER=$(go env GOVERSION)
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . |
    awk -v commit="$COMMIT" -v gover="$GOVER" -v stamp="$STAMP" '
        function median(vals, n,    i, j, tmp, srt) {
            for (i = 1; i <= n; i++) srt[i] = vals[i] + 0
            for (i = 2; i <= n; i++) {
                tmp = srt[i]
                for (j = i - 1; j >= 1 && srt[j] > tmp; j--) srt[j + 1] = srt[j]
                srt[j + 1] = tmp
            }
            if (n % 2 == 1) return srt[(n + 1) / 2]
            return (srt[n / 2] + srt[n / 2 + 1]) / 2
        }
        /^Benchmark/ {
            name = $1
            if (!(name in seen)) { seen[name] = 1; order[++nb] = name }
            for (i = 2; i < NF; i++) {
                if ($(i + 1) == "ns/op" && i == 3) { cns[name]++; ns[name, cns[name]] = $i }
                if ($(i + 1) == "B/op")            { cbp[name]++; bp[name, cbp[name]] = $i }
                if ($(i + 1) == "allocs/op")       { cal[name]++; al[name, cal[name]] = $i }
            }
        }
        END {
            printf "{\n"
            printf "  \"schema\": 1,\n"
            printf "  \"commit\": \"%s\",\n", commit
            printf "  \"go\": \"%s\",\n", gover
            printf "  \"generated\": \"%s\",\n", stamp
            printf "  \"benchtime\": \"%s\",\n", "'"$BENCHTIME"'"
            printf "  \"count\": %d,\n", "'"$COUNT"'" + 0
            printf "  \"benchmarks\": [\n"
            for (k = 1; k <= nb; k++) {
                b = order[k]
                n = cns[b];  for (i = 1; i <= n; i++) v[i] = ns[b, i];  mns = median(v, n)
                n = cbp[b];  for (i = 1; i <= n; i++) v[i] = bp[b, i];  mbp = (n > 0) ? median(v, n) : -1
                n = cal[b];  for (i = 1; i <= n; i++) v[i] = al[b, i];  mal = (n > 0) ? median(v, n) : -1
                printf "    {\"name\": \"%s\", \"ns_per_op\": %g, \"b_per_op\": %g, \"allocs_per_op\": %g}%s\n", \
                    b, mns, mbp, mal, (k < nb) ? "," : ""
            }
            printf "  ]\n}\n"
        }' > "$OUT"

echo "bench-json: wrote $OUT"
