# bench_lib.sh — the single source of truth for the key-benchmark set.
# Sourced by bench_compare.sh and bench_json.sh; the Makefile targets
# invoke those scripts without setting BENCH, so changing the set here
# changes the gate, the local delta table and the BENCH_PR.json
# artifact together — they can never silently diverge.
#
# KEY_BENCHES selects what runs; KEY_GATE is the gate filter over the
# resulting (sub-)benchmark names. They differ in one deliberate way:
# BenchmarkGBMPredict/layout=tree is the retained reference walk — it
# serves no traffic, so it runs (its delta is informative) but is not
# held to the threshold; layout=flat, the production path, is.

KEY_BENCHES='BenchmarkServeScore|BenchmarkLoadEndToEnd|BenchmarkGBMPredict|BenchmarkFeedIngest|BenchmarkScoreHotPath|BenchmarkCoalescedScore|BenchmarkMemoLookup|BenchmarkStoreAppend|BenchmarkStoreScan|BenchmarkTracedScore|BenchmarkWindowedHist|BenchmarkAdmission'
KEY_GATE='BenchmarkServeScore|BenchmarkLoadEndToEnd|BenchmarkGBMPredict/layout=flat|BenchmarkFeedIngest|BenchmarkScoreHotPath|BenchmarkCoalescedScore|BenchmarkMemoLookup|BenchmarkStoreAppend|BenchmarkStoreScan|BenchmarkTracedScore|BenchmarkWindowedHist|BenchmarkAdmission'
