# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race race-cover bench bench-smoke bench-compare fuzz-smoke cover fmt fmt-check vet staticcheck serve registry-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race + coverage in one pass — what CI runs, so the suite executes
# once per push instead of once per concern.
race-cover:
	$(GO) test -race -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Full benchmark run (slow). CI runs `bench-smoke` instead.
bench:
	$(GO) test -run='^$$' -bench=. ./...

bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short fuzz pass over the URL decomposition (the most adversarial
# input surface). Found inputs land in internal/urlx/testdata/fuzz and
# become permanent regression seeds.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/urlx

# Coverage profile for local inspection and CI artifacts. Reported, not
# gated: no threshold.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Two passes:
#   1. the SA correctness checks everywhere, minus deprecation (SA1019)
#      — internal packages implement the deprecated wrappers and the v1
#      adapters, so they legitimately call deprecated API;
#   2. deprecation checks gated to the non-internal surface (root
#      library, examples, commands), which must stay on the v2 API.
# Tests are excluded from pass 2: the facade tests pin the deprecated
# wrappers' behavior on purpose. Skips gracefully when the binary is
# missing so offline dev machines are not blocked.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks SA,-SA1019 ./... && \
		staticcheck -tests=false -checks SA1019 . ./examples/... ./cmd/... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Benchmark delta between a base ref (default HEAD~1, override with
# BASE=<ref>) and the working tree; see scripts/bench_compare.sh. CI
# runs it against the PR base so serving regressions surface in the log.
bench-compare:
	BENCH="$${BENCH:-BenchmarkServeScore}" ./scripts/bench_compare.sh $(BASE)

# Self-contained demo server: trains on the synthetic world, serves on
# :8080. See README.md for curl examples.
serve:
	$(GO) run ./cmd/kpserve -addr :8080

# Model-registry artifact round trip: train → Save → Load must score a
# fixture batch identically, and two same-seed trainings must produce
# the same content hash (the reproducibility the registry's hashes
# promise). Uncached (-count=1) so the check really runs per CI push.
registry-check:
	$(GO) test -count=1 -run 'TestRoundTrip|TestSaveIsDeterministic' ./internal/registry

ci: fmt-check vet staticcheck build race-cover registry-check bench-smoke fuzz-smoke
