# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

# The key-benchmark set (what the CI gate holds to a threshold and
# BENCH_PR.json records) is defined once, in scripts/bench_lib.sh; the
# bench-* targets below inherit it by not setting BENCH. Override per
# run with BENCH=<regexp>.

.PHONY: all build test race race-cover bench bench-smoke bench-compare bench-gate bench-json fuzz-smoke fuzz-long store-stress load-smoke overload-smoke cover fmt fmt-check vet staticcheck vulncheck serve registry-check alloc-check profile ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race + coverage in one pass — what CI runs, so the suite executes
# once per push instead of once per concern.
race-cover:
	$(GO) test -race -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Full benchmark run (slow). CI runs `bench-smoke` instead.
bench:
	$(GO) test -run='^$$' -bench=. ./...

bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short fuzz pass over the URL decomposition (the most adversarial
# input surface). Found inputs land in internal/urlx/testdata/fuzz and
# become permanent regression seeds.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/urlx

# The nightly workflow's longer pass over the same surface.
fuzz-long:
	$(GO) test -fuzz=FuzzParse -fuzztime=60s ./internal/urlx

# Nightly storage soak: 100k appends with supersede churn and
# concurrent compaction, then a reopen-and-verify pass. Too slow for
# every PR; nightly.yml runs it. STORE_STRESS_N overrides the volume.
store-stress:
	STORE_STRESS=1 $(GO) test -count=1 -run TestStoreStress -timeout 30m ./internal/store

# Coverage profile for local inspection and CI artifacts. Reported, not
# gated: no threshold.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Two passes:
#   1. the SA correctness checks everywhere, minus deprecation (SA1019)
#      — internal packages implement the deprecated wrappers and the v1
#      adapters, so they legitimately call deprecated API;
#   2. deprecation checks gated to the non-internal surface (root
#      library, examples, commands), which must stay on the v2 API.
# Tests are excluded from pass 2: the facade tests pin the deprecated
# wrappers' behavior on purpose. Skips gracefully when the binary is
# missing so offline dev machines are not blocked.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks SA,-SA1019 ./... && \
		staticcheck -tests=false -checks SA1019 . ./examples/... ./cmd/... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Benchmark delta between a base ref (default HEAD~1, override with
# BASE=<ref>) and the working tree; see scripts/bench_compare.sh.
# Defaults to the key-benchmark set so local runs and the CI gate
# measure the same thing.
bench-compare:
	BENCH="$(BENCH)" ./scripts/bench_compare.sh $(BASE)

# bench-compare with the regression gate armed: exits nonzero when a
# key benchmark regresses more than 15% in ns/op or allocs/op versus
# the base ref. This is the perf job CI requires on every PR.
bench-gate:
	BENCH="$(BENCH)" GATE=1 ./scripts/bench_compare.sh $(BASE)

# Machine-readable key-benchmark summary (ns/op, B/op, allocs/op);
# written to BENCH_PR.json and uploaded as a CI artifact per run so the
# perf trajectory across PRs is tracked.
bench-json:
	BENCH="$(BENCH)" ./scripts/bench_json.sh

# Load smoke: kpload drives a complete in-process kpserve (-self) for a
# few seconds at a modest open-loop rate and writes LOAD_PR.json — the
# macro health check nightly.yml runs and archives next to
# BENCH_PR.json. A second leg replays score traffic with a warm cache
# mix so the coalescer's memo tables see realistic duplicate pressure.
# LOAD_QPS / LOAD_DURATION / LOAD_CACHE_MIX override the defaults.
LOAD_QPS ?= 100
LOAD_DURATION ?= 5s
LOAD_CACHE_MIX ?= 0.5
load-smoke:
	$(GO) run ./cmd/kpload run -self -scale 40 -qps $(LOAD_QPS) \
		-duration $(LOAD_DURATION) -workers 4 -json LOAD_PR.json
	$(GO) run ./cmd/kpload run -self -scale 40 -endpoint score \
		-cache-mix $(LOAD_CACHE_MIX) -qps $(LOAD_QPS) \
		-duration $(LOAD_DURATION) -workers 4 -json LOAD_WARM_PR.json

# Overload smoke: drive an in-process kpserve well past its sustainable
# rate (1 scoring worker, 64KiB pages, tight 5ms p99 objective on short
# engine windows so the episode fits in seconds) and assert the full
# overload story end to end: admission control sheds with 503 +
# Retry-After, every accepted request is accounted for (zero-loss
# ledger: scored + cache hits >= accepted), and the engine recovers to
# ok / shed level 0 once the load stops. -expect-shed makes a run that
# never sheds exit nonzero, so the guarantee is CI-enforced, not
# aspirational. Writes OVERLOAD_PR.json; nightly.yml runs and archives
# it.
overload-smoke:
	$(GO) run ./cmd/kpload run -self -endpoint score -serve-workers 1 \
		-slo "score:p99<5ms,avail>99" -slo-fast 5s -slo-slow 30s \
		-slo-holddown 2s -qps 600 -workers 32 -duration 15s \
		-expect-shed -json OVERLOAD_PR.json

# Known-vulnerability scan over the module and its (empty) dependency
# graph — effectively a stdlib advisory check pinned to the toolchain.
# Skips gracefully when the binary is missing so offline dev machines
# are not blocked; CI installs it.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Self-contained demo server: trains on the synthetic world, serves on
# :8080. See README.md for curl examples.
serve:
	$(GO) run ./cmd/kpserve -addr :8080

# Model-registry artifact round trip: train → Save → Load must score a
# fixture batch identically, and two same-seed trainings must produce
# the same content hash (the reproducibility the registry's hashes
# promise). Uncached (-count=1) so the check really runs per CI push.
registry-check:
	$(GO) test -count=1 -run 'TestRoundTrip|TestSaveIsDeterministic' ./internal/registry

# Allocation contracts in a non-race build: 0 allocs on the warm
# cached-score path (flat model + pooled vectors + precomputed
# analysis), a fixed budget on the full-extraction path, and 0 allocs
# on the per-request admission check in the serving layer. These tests
# skip themselves under -race (the detector's own allocations would
# poison the counts), so the race suite alone would never run them —
# this target is what makes the zero-alloc claims CI-enforced.
alloc-check:
	$(GO) test -count=1 -run Alloc ./internal/ml ./internal/features ./internal/core ./internal/serve

# 10-second CPU profile of a running kpserve started with the pprof
# listener bound (kpserve -debug-addr :6060). Writes cpu.pprof; inspect
# with `$(GO) tool pprof cpu.pprof`. Override the listener address with
# DEBUG_ADDR=<host:port>.
DEBUG_ADDR ?= localhost:6060
profile:
	curl -fsS "http://$(DEBUG_ADDR)/debug/pprof/profile?seconds=10" -o cpu.pprof
	@echo "wrote cpu.pprof; inspect with: $(GO) tool pprof cpu.pprof"

ci: fmt-check vet staticcheck vulncheck build race-cover registry-check alloc-check bench-smoke fuzz-smoke
