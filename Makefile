# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-check vet serve ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (slow). CI runs `bench-smoke` instead.
bench:
	$(GO) test -run='^$$' -bench=. ./...

bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Self-contained demo server: trains on the synthetic world, serves on
# :8080. See README.md for curl examples.
serve:
	$(GO) run ./cmd/kpserve -addr :8080

ci: fmt-check vet build race bench-smoke
