// Package pool provides the worker-pool primitive used by every batch
// entry point in the repository: parallel feature extraction
// (features.ExtractBatch), the library batch methods
// (core.Detector.ScoreBatch, core.Pipeline.AnalyzeBatch) and the HTTP
// server's own fan-out (internal/serve). One implementation means one
// place for pool semantics: order preservation, inline execution at
// workers==1, GOMAXPROCS defaulting, panic propagation.
//
// Each call spins up its own short-lived workers; the bound is
// per-call. Callers that need a process-wide concurrency limit across
// many concurrent batches (the HTTP server) layer a semaphore on top.
package pool

import (
	"runtime"
	"sync"
)

// ForEachIndex runs fn for every index in [0, n) across a bounded
// worker pool. fn must be safe to call concurrently for distinct
// indexes; each index is processed exactly once. workers <= 0 uses
// GOMAXPROCS; workers == 1 runs inline with zero goroutine overhead.
//
// A panic in fn is always raised on the caller's goroutine, so
// net/http's per-handler recover contains it — a worker-goroutine panic
// must never take down a whole serving process. Inline execution
// (workers == 1) propagates it immediately; parallel execution re-raises
// the first panic after the batch drains, so remaining indexes may
// still run first.
func ForEachIndex(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
