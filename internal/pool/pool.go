// Package pool provides the worker-pool primitive used by every batch
// entry point in the repository: parallel feature extraction
// (features.ExtractBatch), the library batch methods
// (core.Detector.ScoreBatch, core.Pipeline.AnalyzeBatch) and the HTTP
// server's own fan-out (internal/serve). One implementation means one
// place for pool semantics: order preservation, inline execution at
// workers==1, GOMAXPROCS defaulting, panic propagation, cancellation.
//
// Each call spins up its own short-lived workers; the bound is
// per-call. Callers that need a process-wide concurrency limit across
// many concurrent batches (the HTTP server) layer a semaphore on top.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// ForEachIndex runs fn for every index in [0, n) across a bounded
// worker pool. fn must be safe to call concurrently for distinct
// indexes; each index is processed exactly once. workers <= 0 uses
// GOMAXPROCS; workers == 1 runs inline with zero goroutine overhead.
//
// A panic in fn is always raised on the caller's goroutine, so
// net/http's per-handler recover contains it — a worker-goroutine panic
// must never take down a whole serving process. Inline execution
// (workers == 1) propagates it immediately; parallel execution re-raises
// the first panic after the batch drains, so remaining indexes may
// still run first.
func ForEachIndex(n, workers int, fn func(i int)) {
	// context.Background is never done, so every index runs and the
	// error is statically nil.
	_ = ForEachIndexCtx(context.Background(), n, workers, fn)
}

// ForEachIndexCtx is ForEachIndex with cancellation: workers observe
// ctx between items, so once ctx is done no *new* index is started —
// in-flight fn calls run to completion (fn receives no context; keep
// items small enough that item granularity is an acceptable
// cancellation latency). It returns nil when every index ran, or
// context.Cause(ctx) when cancellation cut the batch short; the caller
// learns *which* indexes ran only through fn's own side effects, so
// batch callers record per-index completion themselves.
//
// Panic propagation matches ForEachIndex: the first fn panic re-raises
// on the caller's goroutine after the pool drains.
func ForEachIndexCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
			fn(i)
		}
		return nil
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case i, ok := <-next:
					if !ok {
						return
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								panicOnce.Do(func() { panicked = r })
							}
						}()
						fn(i)
					}()
				}
			}
		}()
	}
	// An unbuffered send only completes when a worker has taken the
	// index, and a taken index always runs fn — so "all n sent" means
	// "all n ran" even if ctx fires while the last items are in flight.
	fed := 0
feed:
	for ; fed < n; fed++ {
		select {
		case next <- fed:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if fed == n {
		return nil
	}
	return context.Cause(ctx)
}
