package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachIndexCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, runtime.GOMAXPROCS(0), 64} {
		const n = 100
		var counts [n]atomic.Int32
		ForEachIndex(n, workers, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachIndexPropagatesPanic(t *testing.T) {
	var processed atomic.Int32
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("worker panic not re-raised on caller")
			} else if r != "boom" {
				t.Errorf("panic value = %v, want boom", r)
			}
		}()
		ForEachIndex(50, 4, func(i int) {
			if i == 7 {
				panic("boom")
			}
			processed.Add(1)
		})
	}()
	if got := processed.Load(); got != 49 {
		t.Errorf("processed %d indexes, want 49 (all but the panicking one)", got)
	}
}

// panicPayload is a distinct pointer type so the test can assert the
// re-raised panic is the very value thrown, not a copy or a wrapper.
type panicPayload struct{ index int }

func TestForEachIndexParallelPanicValueIdentity(t *testing.T) {
	// The parallel path (workers > 1) recovers worker panics and
	// re-raises on the caller's goroutine. Contract under test: the
	// panic value survives the hand-off with identity intact, and every
	// non-panicking index still completes before the re-raise.
	payload := &panicPayload{index: 13}
	var processed atomic.Int32
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ForEachIndex(64, 8, func(i int) {
			if i == 13 {
				panic(payload)
			}
			processed.Add(1)
		})
	}()
	if recovered == nil {
		t.Fatal("parallel worker panic not re-raised on caller")
	}
	if recovered != payload {
		t.Errorf("re-raised value %#v is not the thrown value %#v (identity lost)", recovered, payload)
	}
	if got := processed.Load(); got != 63 {
		t.Errorf("processed %d indexes, want 63 (batch drains before re-raise)", got)
	}

	// Multiple concurrent panics: exactly one value is re-raised, and it
	// is one of the thrown values (first observed wins; no corruption).
	thrown := map[any]bool{}
	for i := 0; i < 4; i++ {
		thrown[&panicPayload{index: i}] = true
	}
	var reraised any
	func() {
		defer func() { reraised = recover() }()
		ForEachIndex(4, 4, func(i int) {
			for p := range thrown {
				if p.(*panicPayload).index == i {
					panic(p)
				}
			}
		})
	}()
	if reraised == nil || !thrown[reraised] {
		t.Errorf("re-raised value %#v is not one of the thrown values", reraised)
	}
}

func TestForEachIndexEdgeCases(t *testing.T) {
	called := false
	ForEachIndex(0, 4, func(int) { called = true })
	ForEachIndex(-1, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
	// More workers than items must not deadlock.
	var sum atomic.Int32
	ForEachIndex(3, 100, func(i int) { sum.Add(int32(i)) })
	if sum.Load() != 3 {
		t.Errorf("sum = %d, want 3", sum.Load())
	}
}
