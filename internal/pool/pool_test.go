package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachIndexCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, runtime.GOMAXPROCS(0), 64} {
		const n = 100
		var counts [n]atomic.Int32
		ForEachIndex(n, workers, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachIndexPropagatesPanic(t *testing.T) {
	var processed atomic.Int32
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("worker panic not re-raised on caller")
			} else if r != "boom" {
				t.Errorf("panic value = %v, want boom", r)
			}
		}()
		ForEachIndex(50, 4, func(i int) {
			if i == 7 {
				panic("boom")
			}
			processed.Add(1)
		})
	}()
	if got := processed.Load(); got != 49 {
		t.Errorf("processed %d indexes, want 49 (all but the panicking one)", got)
	}
}

func TestForEachIndexEdgeCases(t *testing.T) {
	called := false
	ForEachIndex(0, 4, func(int) { called = true })
	ForEachIndex(-1, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
	// More workers than items must not deadlock.
	var sum atomic.Int32
	ForEachIndex(3, 100, func(i int) { sum.Add(int32(i)) })
	if sum.Load() != 3 {
		t.Errorf("sum = %d, want 3", sum.Load())
	}
}
