package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachIndexCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, runtime.GOMAXPROCS(0), 64} {
		const n = 100
		var counts [n]atomic.Int32
		ForEachIndex(n, workers, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachIndexPropagatesPanic(t *testing.T) {
	var processed atomic.Int32
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("worker panic not re-raised on caller")
			} else if r != "boom" {
				t.Errorf("panic value = %v, want boom", r)
			}
		}()
		ForEachIndex(50, 4, func(i int) {
			if i == 7 {
				panic("boom")
			}
			processed.Add(1)
		})
	}()
	if got := processed.Load(); got != 49 {
		t.Errorf("processed %d indexes, want 49 (all but the panicking one)", got)
	}
}

// panicPayload is a distinct pointer type so the test can assert the
// re-raised panic is the very value thrown, not a copy or a wrapper.
type panicPayload struct{ index int }

func TestForEachIndexParallelPanicValueIdentity(t *testing.T) {
	// The parallel path (workers > 1) recovers worker panics and
	// re-raises on the caller's goroutine. Contract under test: the
	// panic value survives the hand-off with identity intact, and every
	// non-panicking index still completes before the re-raise.
	payload := &panicPayload{index: 13}
	var processed atomic.Int32
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ForEachIndex(64, 8, func(i int) {
			if i == 13 {
				panic(payload)
			}
			processed.Add(1)
		})
	}()
	if recovered == nil {
		t.Fatal("parallel worker panic not re-raised on caller")
	}
	if recovered != payload {
		t.Errorf("re-raised value %#v is not the thrown value %#v (identity lost)", recovered, payload)
	}
	if got := processed.Load(); got != 63 {
		t.Errorf("processed %d indexes, want 63 (batch drains before re-raise)", got)
	}

	// Multiple concurrent panics: exactly one value is re-raised, and it
	// is one of the thrown values (first observed wins; no corruption).
	thrown := map[any]bool{}
	for i := 0; i < 4; i++ {
		thrown[&panicPayload{index: i}] = true
	}
	var reraised any
	func() {
		defer func() { reraised = recover() }()
		ForEachIndex(4, 4, func(i int) {
			for p := range thrown {
				if p.(*panicPayload).index == i {
					panic(p)
				}
			}
		})
	}()
	if reraised == nil || !thrown[reraised] {
		t.Errorf("re-raised value %#v is not one of the thrown values", reraised)
	}
}

func TestForEachIndexCtxCompletesWhenNeverCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 64
		var counts [n]atomic.Int32
		if err := ForEachIndexCtx(context.Background(), n, workers, func(i int) {
			counts[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, counts[i].Load())
			}
		}
	}
}

// TestForEachIndexCtxCancelMidBatch proves the cancellation contract the
// serving and batch layers rely on: after ctx is cancelled mid-batch, no
// new index starts, every in-flight fn call still completes (each index
// runs at most once), the call returns context.Cause, and the workers
// exit promptly instead of grinding through the remaining items.
func TestForEachIndexCtxCancelMidBatch(t *testing.T) {
	cause := errors.New("client walked away")
	for _, workers := range []int{1, 4} {
		const n = 10000
		ctx, cancel := context.WithCancelCause(context.Background())
		var counts [n]atomic.Int32
		var started atomic.Int32
		release := make(chan struct{})
		err := ForEachIndexCtx(ctx, n, workers, func(i int) {
			counts[i].Add(1)
			if started.Add(1) == int32(workers) {
				// Every worker holds an item: cancel now, mid-batch.
				cancel(cause)
				close(release)
			}
			<-release
		})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want cause %v", workers, err, cause)
		}
		var ran int32
		for i := range counts {
			if c := counts[i].Load(); c > 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, c)
			} else {
				ran += c
			}
		}
		// In-flight items (≤ workers, plus at most one race-window item
		// per worker) finish; the rest of the batch never starts.
		if ran > int32(4*workers) || ran == 0 {
			t.Errorf("workers=%d: %d of %d indexes ran after mid-batch cancel, want ≈%d", workers, ran, n, workers)
		}
		cancel(nil)
	}
}

// TestForEachIndexCtxWorkersExitPromptly measures the wall clock of the
// cancel: a 4-worker pool over items that block until cancellation must
// return as soon as the in-flight quartet drains — not after n items.
func TestForEachIndexCtxWorkersExitPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var inflight atomic.Int32
	go func() {
		// Cancel once work is demonstrably in flight.
		for inflight.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	t0 := time.Now()
	err := ForEachIndexCtx(ctx, 100000, 4, func(i int) {
		inflight.Add(1)
		<-ctx.Done()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: draining ≤4 blocked items after cancel is
	// microseconds of work; 100k items at any per-item cost would not be.
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("pool took %v to exit after cancellation", d)
	}
	if n := inflight.Load(); n > 8 {
		t.Errorf("%d items entered flight, want at most the worker count's race window", n)
	}
}

func TestForEachIndexCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEachIndexCtx(ctx, 50, workers, func(int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		// The parallel path may race one item per worker into flight;
		// the inline path starts nothing.
		if limit := int32(workers); ran.Load() > limit {
			t.Errorf("workers=%d: %d items ran on a pre-cancelled context", workers, ran.Load())
		}
	}
}

func TestForEachIndexEdgeCases(t *testing.T) {
	called := false
	ForEachIndex(0, 4, func(int) { called = true })
	ForEachIndex(-1, 4, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
	// More workers than items must not deadlock.
	var sum atomic.Int32
	ForEachIndex(3, 100, func(i int) { sum.Add(int32(i)) })
	if sum.Load() != 3 {
		t.Errorf("sum = %d, want 3", sum.Load())
	}
}
