package slo

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"knowphish/internal/obs"
	"knowphish/internal/racecheck"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives([]string{"score:p99<250ms,avail>99.9", "feed:p50<10ms"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	lat := objs[0]
	if lat.Name != "score:p99<250ms" || lat.Endpoint != "score" || lat.Kind != KindLatency {
		t.Errorf("objective 0 = %+v", lat)
	}
	if lat.Quantile != 99 || lat.LatencyTarget != 250*time.Millisecond {
		t.Errorf("objective 0 target = q%v %v", lat.Quantile, lat.LatencyTarget)
	}
	if got := lat.Budget(); got < 0.0099 || got > 0.0101 {
		t.Errorf("p99 budget = %v, want 0.01", got)
	}
	av := objs[1]
	if av.Kind != KindAvailability || av.AvailTarget != 99.9 {
		t.Errorf("objective 1 = %+v", av)
	}
	if got := av.Budget(); got < 0.0009 || got > 0.0011 {
		t.Errorf("avail budget = %v, want 0.001", got)
	}
	if objs[2].Endpoint != "feed" {
		t.Errorf("objective 2 = %+v", objs[2])
	}
}

func TestParseQuantileSpellings(t *testing.T) {
	objs, err := ParseObjectives([]string{"score:p999<1s"})
	if err != nil {
		t.Fatal(err)
	}
	if objs[0].Quantile != 99.9 {
		t.Errorf("p999 quantile = %v, want 99.9", objs[0].Quantile)
	}
	if got := objs[0].Target(); got != "p999<1s" {
		t.Errorf("Target() = %q, want p999<1s round trip", got)
	}
}

func TestParseObjectivesErrors(t *testing.T) {
	for _, bad := range []string{
		"",                  // empty
		"score",             // no colon
		"score:",            // no objective
		":p99<250ms",        // no endpoint
		"score:p99>250ms",   // wrong comparator
		"score:p99<",        // no duration
		"score:p99<fast",    // bad duration
		"score:p0<1ms",      // quantile out of range
		"score:avail>100",   // availability out of range
		"score:avail>-1",    // availability out of range
		"score:latency<1ms", // unknown objective kind
	} {
		if _, err := ParseObjectives([]string{bad}); err == nil {
			t.Errorf("ParseObjectives(%q) = nil error, want error", bad)
		}
	}
	// Duplicates across specs.
	if _, err := ParseObjectives([]string{"score:p99<250ms", "score:p99<250ms"}); err == nil {
		t.Error("duplicate objective accepted")
	}
}

// testClock is an atomically-settable clock.
type testClock struct{ ns atomic.Int64 }

func newTestClock() *testClock {
	c := &testClock{}
	c.ns.Store(time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC).UnixNano())
	return c
}
func (c *testClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *testClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// testEngine builds an engine with short windows and an injected
// clock: fast 10s, slow 60s, hold-down 5s.
func testEngine(t *testing.T, j *obs.Journal, specs ...string) (*Engine, *testClock) {
	t.Helper()
	if len(specs) == 0 {
		specs = []string{"score:p99<100ms,avail>99"}
	}
	objs, err := ParseObjectives(specs)
	if err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	e := New(Config{
		Objectives: objs,
		FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second,
		HoldDown:   5 * time.Second,
		Clock:      clk.Now,
		Journal:    j,
	})
	if e == nil {
		t.Fatal("New returned nil with objectives")
	}
	return e, clk
}

// drive observes n requests spread over seconds with the given
// duration/failure mix, ticking as it goes.
func drive(e *Engine, clk *testClock, seconds int, perSec int, dur time.Duration, failed bool) {
	for s := 0; s < seconds; s++ {
		for i := 0; i < perSec; i++ {
			e.Observe("score", dur, failed)
		}
		clk.Advance(time.Second)
		e.Tick()
	}
}

func TestEngineStaysOKUnderGoodTraffic(t *testing.T) {
	e, clk := testEngine(t, nil)
	drive(e, clk, 30, 20, 10*time.Millisecond, false)
	if got := e.State(); got != StateOK {
		t.Errorf("state under good traffic = %v, want ok", got)
	}
	if got := e.ShedLevel(); got != 0 {
		t.Errorf("shed level = %d, want 0", got)
	}
	st := e.Status()
	if st.Objectives[0].FastBurn != 0 {
		t.Errorf("fast burn = %v, want 0", st.Objectives[0].FastBurn)
	}
}

func TestEnginePagesAndRecovers(t *testing.T) {
	j := obs.NewJournal(32)
	e, clk := testEngine(t, j)
	j.Clock = clk.Now

	// Healthy baseline.
	drive(e, clk, 15, 20, 10*time.Millisecond, false)
	if e.State() != StateOK {
		t.Fatalf("baseline state = %v", e.State())
	}

	// Sustained breach: every request blows the 100ms latency target.
	// Burn = 1.0/0.01 = 100× in both windows once the slow window's
	// bad fraction catches up.
	drive(e, clk, 20, 20, 500*time.Millisecond, false)
	if got := e.State(); got != StatePage {
		t.Fatalf("state under sustained breach = %v, want page", got)
	}
	if got := e.ShedLevel(); got != 3 {
		t.Errorf("shed level under 100x burn = %d, want 3", got)
	}

	// Recovery: good traffic again. State must hold (hysteresis) until
	// the burn has stayed below threshold for the 5s hold-down AND the
	// windows have drained.
	drive(e, clk, 2, 20, 10*time.Millisecond, false)
	if got := e.State(); got == StateOK {
		t.Error("state dropped to ok before hold-down expired")
	}
	drive(e, clk, 75, 20, 10*time.Millisecond, false)
	if got := e.State(); got != StateOK {
		t.Errorf("state after recovery = %v, want ok", got)
	}
	if got := e.ShedLevel(); got != 0 {
		t.Errorf("shed level after recovery = %d, want 0", got)
	}

	// The journal saw both transitions.
	var sawPage, sawRecover, sawShed bool
	for _, ev := range j.Events() {
		if ev.Type == "slo_transition" && ev.Fields["to"] == "page" {
			sawPage = true
		}
		if ev.Type == "slo_transition" && ev.Fields["to"] == "ok" {
			sawRecover = true
		}
		if ev.Type == "shed_level" {
			sawShed = true
		}
	}
	if !sawPage || !sawRecover || !sawShed {
		t.Errorf("journal missing transitions: page=%v recover=%v shed=%v events=%v",
			sawPage, sawRecover, sawShed, j.Events())
	}
}

// TestEngineFastBlipDoesNotPage: a burst shorter than the slow
// window's significance bar must not page (multi-window condition).
func TestEngineFastBlipDoesNotPage(t *testing.T) {
	e, clk := testEngine(t, nil)
	// 50s of healthy traffic fills the slow window with good events.
	drive(e, clk, 50, 50, 10*time.Millisecond, false)
	// A 2-second blip of slow requests: the fast window burns hot but
	// the slow window (60s, mostly good) stays under the page burn.
	drive(e, clk, 2, 10, 500*time.Millisecond, false)
	if got := e.State(); got == StatePage {
		st := e.Status()
		t.Errorf("2s blip paged: fast=%v slow=%v", st.Objectives[0].FastBurn, st.Objectives[0].SlowBurn)
	}
}

func TestEngineAvailabilityObjective(t *testing.T) {
	e, clk := testEngine(t, nil, "score:avail>99")
	// 100% failures: avail burn = 1/0.01 = 100×.
	drive(e, clk, 20, 20, time.Millisecond, true)
	if got := e.State(); got != StatePage {
		t.Errorf("state under total failure = %v, want page", got)
	}
	st := e.Status()
	if st.Objectives[0].Kind != "availability" {
		t.Errorf("kind = %q", st.Objectives[0].Kind)
	}
	if st.Objectives[0].BudgetRemaining != 0 {
		t.Errorf("budget remaining under total failure = %v, want 0", st.Objectives[0].BudgetRemaining)
	}
}

func TestEngineWarnState(t *testing.T) {
	e, clk := testEngine(t, nil, "score:avail>99")
	// 8% failures: burn = 0.08/0.01 = 8× — above warn (6), below page
	// (14.4).
	for s := 0; s < 70; s++ {
		for i := 0; i < 100; i++ {
			e.Observe("score", time.Millisecond, i < 8)
		}
		clk.Advance(time.Second)
		e.Tick()
	}
	if got := e.State(); got != StateWarn {
		st := e.Status()
		t.Errorf("state at 8x burn = %v, want warn (fast=%v slow=%v)", got, st.Objectives[0].FastBurn, st.Objectives[0].SlowBurn)
	}
	if got := e.ShedLevel(); got != 1 {
		t.Errorf("shed level at 8x burn = %d, want 1", got)
	}
}

func TestEngineEndpointMatching(t *testing.T) {
	e, clk := testEngine(t, nil, "score:avail>99", "*:avail>90")
	// Failures on "feed" must burn the wildcard objective only.
	drive(e, clk, 20, 0, 0, false) // warm the clock/ticks
	for s := 0; s < 20; s++ {
		for i := 0; i < 20; i++ {
			e.Observe("feed", time.Millisecond, true)
		}
		clk.Advance(time.Second)
		e.Tick()
	}
	st := e.Status()
	for _, o := range st.Objectives {
		switch o.Endpoint {
		case "score":
			if o.FastBad != 0 {
				t.Errorf("score objective saw %d bad events from feed traffic", o.FastBad)
			}
		case "*":
			if o.FastBad == 0 {
				t.Error("wildcard objective saw no bad events")
			}
		}
	}
}

func TestMinLatencyTarget(t *testing.T) {
	e, _ := testEngine(t, nil, "score:p99<250ms,p999<1s", "batch:p99<50ms")
	d, name := e.MinLatencyTarget()
	if d != 50*time.Millisecond || name != "batch:p99<50ms" {
		t.Errorf("MinLatencyTarget = %v %q", d, name)
	}
}

func TestEngineNilSafe(t *testing.T) {
	var e *Engine
	e.Observe("score", time.Millisecond, false)
	e.Tick()
	if e.State() != StateOK || e.ShedLevel() != 0 || e.RetryAfter() != 0 {
		t.Error("nil engine not inert")
	}
	st := e.Status()
	if st.State != "ok" || len(st.Objectives) != 0 {
		t.Errorf("nil Status = %+v", st)
	}
	if got := New(Config{}); got != nil {
		t.Error("New with no objectives != nil")
	}
	if d, _ := e.MinLatencyTarget(); d != 0 {
		t.Error("nil MinLatencyTarget != 0")
	}
}

func TestStatusDocument(t *testing.T) {
	e, clk := testEngine(t, nil)
	drive(e, clk, 5, 10, time.Millisecond, false)
	st := e.Status()
	if st.FastWindowMS != 10_000 || st.SlowWindowMS != 60_000 {
		t.Errorf("windows = %d/%d ms", st.FastWindowMS, st.SlowWindowMS)
	}
	if st.PageBurn != DefaultPageBurn || st.WarnBurn != DefaultWarnBurn {
		t.Errorf("burn thresholds = %v/%v", st.PageBurn, st.WarnBurn)
	}
	if st.Ticks != 5 {
		t.Errorf("ticks = %d, want 5", st.Ticks)
	}
	names := make([]string, 0, len(st.Objectives))
	for _, o := range st.Objectives {
		names = append(names, o.Name)
	}
	if strings.Join(names, " ") != "score:avail>99 score:p99<100ms" {
		t.Errorf("objective order = %v (want sorted by name)", names)
	}
}

// TestObserveAllocs pins the hot-path contract: Observe must not
// allocate.
func TestObserveAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	e, _ := testEngine(t, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		e.Observe("score", 5*time.Millisecond, false)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v per run, want 0", allocs)
	}
}
