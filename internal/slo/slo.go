// Package slo tracks service-level objectives as multi-window,
// multi-burn-rate error budgets, Google-SRE-style. An objective is a
// latency quantile target ("score:p99<250ms") or an availability
// floor ("score:avail>99.9") on one endpoint class; the engine turns
// every completed request into a good/bad service-level-indicator
// event in a windowed counter ring, and a periodic Tick evaluates the
// budget burn rate over a fast window (is it happening *now*?) and a
// slow window (is it *significant*?) to drive an ok → warn → page
// state machine with hysteretic recovery.
//
// Burn rate is the budget-normalized error rate: with a 99.9%
// availability target the error budget is 0.1%, so a 1.44% bad
// fraction burns at 14.4× — the rate that exhausts a 30-day budget in
// ~2 days, the canonical paging threshold. Paging requires the burn to
// exceed the threshold over BOTH windows, so a brief blip (fast window
// only) and yesterday's recovered incident (slow window only) both
// stay quiet.
//
// The engine also drives overload response: ShedLevel distills the
// fast-window burn into 0..3 (nothing / shed background / shed batch /
// shed everything sheddable), which the serving layer's admission
// controller maps to priority classes. The level rises the tick the
// burn crosses a threshold and falls only after the burn has stayed
// below it for the hold-down, so shedding does not flap at the
// boundary.
//
// Observe is allocation-free and safe for concurrent use; every
// method is nil-receiver safe so an unconfigured server wires a nil
// *Engine everywhere and pays one branch.
package slo

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"knowphish/internal/obs"
)

// Kind is the objective flavor.
type Kind uint8

const (
	// KindLatency targets a latency quantile: bad = request slower
	// than the target (or failed).
	KindLatency Kind = iota
	// KindAvailability targets a success fraction: bad = request
	// failed (5xx). Deliberately shed requests are not observed at
	// all — shedding to protect an SLO must not itself burn the
	// budget, or the controller death-spirals.
	KindAvailability
)

func (k Kind) String() string {
	if k == KindAvailability {
		return "availability"
	}
	return "latency"
}

// Objective is one parsed SLO target.
type Objective struct {
	// Name is the canonical spec string, e.g. "score:p99<250ms" —
	// the objective label in /debug/slo, Prometheus and the journal.
	Name string
	// Endpoint is the endpoint class the objective watches ("score",
	// "batch", "feed", ...; "*" watches every observed endpoint).
	Endpoint string
	Kind     Kind
	// Quantile is the latency quantile in percent (99 for p99); the
	// error budget is what the quantile leaves: 1% for p99.
	Quantile float64
	// LatencyTarget is the quantile's bound (KindLatency).
	LatencyTarget time.Duration
	// AvailTarget is the availability floor in percent
	// (KindAvailability); the error budget is its complement.
	AvailTarget float64
}

// Budget returns the objective's error budget as a fraction in (0, 1):
// the bad-event fraction the objective tolerates.
func (o Objective) Budget() float64 {
	if o.Kind == KindAvailability {
		return 1 - o.AvailTarget/100
	}
	return 1 - o.Quantile/100
}

// Target renders the target half of the spec ("p99<250ms",
// "avail>99.9").
func (o Objective) Target() string {
	if o.Kind == KindAvailability {
		return fmt.Sprintf("avail>%g", o.AvailTarget)
	}
	return fmt.Sprintf("p%s<%s", quantileSuffix(o.Quantile), o.LatencyTarget)
}

func quantileSuffix(q float64) string {
	// p99.9 is spelled p999 in the flag grammar.
	s := strconv.FormatFloat(q, 'f', -1, 64)
	return strings.ReplaceAll(s, ".", "")
}

// ParseObjectives parses -slo flag values. Each spec is
//
//	endpoint:objective[,objective...]
//
// where an objective is pNN<duration (p50, p95, p99, p999) or
// avail>percent. Example: "score:p99<250ms,avail>99.9". The endpoint
// "*" applies to every endpoint class the server observes. Multiple
// specs accumulate; duplicate objectives (same endpoint and target)
// are rejected.
func ParseObjectives(specs []string) ([]Objective, error) {
	var out []Objective
	seen := map[string]bool{}
	for _, spec := range specs {
		endpoint, rest, ok := strings.Cut(spec, ":")
		if !ok || endpoint == "" || rest == "" {
			return nil, fmt.Errorf("slo spec %q: want endpoint:objective[,objective...]", spec)
		}
		endpoint = strings.TrimSpace(endpoint)
		for _, part := range strings.Split(rest, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			obj, err := parseObjective(endpoint, part)
			if err != nil {
				return nil, fmt.Errorf("slo spec %q: %w", spec, err)
			}
			if seen[obj.Name] {
				return nil, fmt.Errorf("slo spec %q: duplicate objective %s", spec, obj.Name)
			}
			seen[obj.Name] = true
			out = append(out, obj)
		}
	}
	return out, nil
}

func parseObjective(endpoint, part string) (Objective, error) {
	switch {
	case strings.HasPrefix(part, "p"):
		qs, ds, ok := strings.Cut(part[1:], "<")
		if !ok {
			return Objective{}, fmt.Errorf("objective %q: want pNN<duration", part)
		}
		q, err := parseQuantile(qs)
		if err != nil {
			return Objective{}, fmt.Errorf("objective %q: %w", part, err)
		}
		d, err := time.ParseDuration(ds)
		if err != nil || d <= 0 {
			return Objective{}, fmt.Errorf("objective %q: bad duration %q", part, ds)
		}
		return Objective{
			Name:          endpoint + ":p" + qs + "<" + ds,
			Endpoint:      endpoint,
			Kind:          KindLatency,
			Quantile:      q,
			LatencyTarget: d,
		}, nil
	case strings.HasPrefix(part, "avail>"):
		ps := part[len("avail>"):]
		p, err := strconv.ParseFloat(ps, 64)
		if err != nil || p <= 0 || p >= 100 {
			return Objective{}, fmt.Errorf("objective %q: availability must be in (0, 100)", part)
		}
		return Objective{
			Name:        endpoint + ":avail>" + ps,
			Endpoint:    endpoint,
			Kind:        KindAvailability,
			AvailTarget: p,
		}, nil
	default:
		return Objective{}, fmt.Errorf("objective %q: want pNN<duration or avail>percent", part)
	}
}

// parseQuantile maps the flag spelling to percent: "50" → 50,
// "99" → 99, "999" → 99.9 (three digits read as NN.N).
func parseQuantile(s string) (float64, error) {
	if len(s) == 3 && !strings.Contains(s, ".") {
		s = s[:2] + "." + s[2:]
	}
	q, err := strconv.ParseFloat(s, 64)
	if err != nil || q <= 0 || q >= 100 {
		return 0, fmt.Errorf("bad quantile %q (want 50, 95, 99, 999, ...)", s)
	}
	return q, nil
}

// State is one objective's (and the engine's worst) alert state.
type State int32

const (
	StateOK State = iota
	StateWarn
	StatePage
)

func (s State) String() string {
	switch s {
	case StatePage:
		return "page"
	case StateWarn:
		return "warn"
	default:
		return "ok"
	}
}

// Defaults for Config zero values.
const (
	DefaultFastWindow = 5 * time.Minute
	DefaultSlowWindow = time.Hour
	// DefaultPageBurn is the paging burn rate: 14.4× exhausts a 30-day
	// budget in 50 hours — incident-now territory.
	DefaultPageBurn = 14.4
	// DefaultWarnBurn is the ticket-level burn rate: 6× exhausts a
	// 30-day budget in 5 days.
	DefaultWarnBurn = 6.0
	// DefaultHoldDown is how long the burn must stay below a threshold
	// before state or shed level steps back down.
	DefaultHoldDown = 2 * time.Minute
)

// Config assembles an Engine.
type Config struct {
	Objectives []Objective
	// FastWindow is the "is it happening now" burn window
	// (0 → DefaultFastWindow).
	FastWindow time.Duration
	// SlowWindow is the "is it significant" burn window
	// (0 → DefaultSlowWindow).
	SlowWindow time.Duration
	// PageBurn / WarnBurn are the burn-rate thresholds
	// (0 → DefaultPageBurn / DefaultWarnBurn).
	PageBurn float64
	WarnBurn float64
	// HoldDown is the hysteresis on recovery (0 → DefaultHoldDown).
	HoldDown time.Duration
	// Clock is the time source, for deterministic tests (nil →
	// time.Now).
	Clock func() time.Time
	// Journal, when set, records state transitions and shed-level
	// changes.
	Journal *obs.Journal
}

// tracked is one objective plus its live SLI counters and state.
type tracked struct {
	obj     Objective
	counter *obs.WindowedCounter

	mu        sync.Mutex
	state     State
	since     time.Time // state entered
	lastHigh  time.Time // last tick the computed target was >= state
	fastBurn  float64
	slowBurn  float64
	fastGood  int64
	fastBad   int64
	slowGood  int64
	slowBad   int64
	lastTrans uint64 // transition count, for tests and Prometheus
}

// Engine evaluates objectives. Construct with New; nil engines are
// inert.
type Engine struct {
	cfg   Config
	clock func() time.Time
	objs  []*tracked

	// shedLevel is atomic, not under mu: the admission controller
	// loads it on every request.
	shedLevel atomic.Int32

	mu       sync.Mutex
	worst    State
	shedHigh time.Time // last tick the computed shed target was >= level
	ticks    uint64
}

// New builds an engine; returns nil when no objectives are configured,
// which every method treats as "SLOs off".
func New(cfg Config) *Engine {
	if len(cfg.Objectives) == 0 {
		return nil
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = DefaultFastWindow
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = DefaultSlowWindow
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = cfg.FastWindow
	}
	if cfg.PageBurn <= 0 {
		cfg.PageBurn = DefaultPageBurn
	}
	if cfg.WarnBurn <= 0 {
		cfg.WarnBurn = DefaultWarnBurn
	}
	if cfg.HoldDown <= 0 {
		cfg.HoldDown = DefaultHoldDown
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	e := &Engine{cfg: cfg, clock: clock}
	// Slot resolution: fine enough that the fast window spans several
	// slots (burn reacts within a fraction of the window), floored at
	// 1 s by the counter itself.
	slotDur := cfg.FastWindow / 10
	now := clock()
	for _, obj := range cfg.Objectives {
		e.objs = append(e.objs, &tracked{
			obj:      obj,
			counter:  obs.NewWindowedCounter(cfg.SlowWindow, slotDur, clock),
			since:    now,
			lastHigh: now,
		})
	}
	e.shedHigh = now
	return e
}

// Objectives returns the configured objectives (nil-safe).
func (e *Engine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	out := make([]Objective, len(e.objs))
	for i, t := range e.objs {
		out[i] = t.obj
	}
	return out
}

// MinLatencyTarget returns the tightest latency target across
// objectives, 0 when none — what the tracer's slow-exemplar threshold
// derives from. The second result names the objective. Nil-safe.
func (e *Engine) MinLatencyTarget() (time.Duration, string) {
	if e == nil {
		return 0, ""
	}
	var best time.Duration
	var name string
	for _, t := range e.objs {
		if t.obj.Kind != KindLatency {
			continue
		}
		if best == 0 || t.obj.LatencyTarget < best {
			best = t.obj.LatencyTarget
			name = t.obj.Name
		}
	}
	return best, name
}

// Observe records one completed request against every objective
// watching its endpoint class. failed marks a server-side failure
// (5xx). Allocation-free; nil-safe no-op. Deliberately shed requests
// must NOT be observed — see KindAvailability.
func (e *Engine) Observe(endpoint string, dur time.Duration, failed bool) {
	if e == nil {
		return
	}
	for _, t := range e.objs {
		if t.obj.Endpoint != endpoint && t.obj.Endpoint != "*" {
			continue
		}
		bad := failed
		if !bad && t.obj.Kind == KindLatency {
			bad = dur > t.obj.LatencyTarget
		}
		t.counter.Add(bad)
	}
}

// burn returns the budget-normalized bad fraction: 0 with no traffic.
func burn(good, bad int64, budget float64) float64 {
	total := good + bad
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// Tick evaluates every objective once: recomputes window burns, steps
// the state machines (instantly up, hold-down-gated down) and the shed
// level. Run calls it on an interval; tests call it directly after
// advancing an injected clock. Nil-safe no-op.
func (e *Engine) Tick() {
	if e == nil {
		return
	}
	now := e.clock()
	worst := StateOK
	maxFastBurn := 0.0
	for _, t := range e.objs {
		budget := t.obj.Budget()
		fg, fb := t.counter.Totals(e.cfg.FastWindow)
		sg, sb := t.counter.Totals(e.cfg.SlowWindow)
		fastBurn := burn(fg, fb, budget)
		slowBurn := burn(sg, sb, budget)
		if fastBurn > maxFastBurn {
			maxFastBurn = fastBurn
		}

		// Multi-window condition: both windows must agree before the
		// state rises — the fast window proves it is happening now,
		// the slow window that it is eating real budget.
		target := StateOK
		switch {
		case fastBurn >= e.cfg.PageBurn && slowBurn >= e.cfg.PageBurn:
			target = StatePage
		case fastBurn >= e.cfg.WarnBurn && slowBurn >= e.cfg.WarnBurn:
			target = StateWarn
		}

		t.mu.Lock()
		t.fastBurn, t.slowBurn = fastBurn, slowBurn
		t.fastGood, t.fastBad = fg, fb
		t.slowGood, t.slowBad = sg, sb
		prev := t.state
		if target >= t.state {
			t.lastHigh = now
			if target > t.state {
				t.state = target
				t.since = now
			}
		} else if now.Sub(t.lastHigh) >= e.cfg.HoldDown {
			t.state = target
			t.since = now
		}
		cur := t.state
		if cur != prev {
			t.lastTrans++
		}
		t.mu.Unlock()
		if cur != prev {
			e.cfg.Journal.Record("slo_transition", "slo "+t.obj.Name+" "+prev.String()+" -> "+cur.String(),
				"objective", t.obj.Name,
				"from", prev.String(),
				"to", cur.String(),
				"fast_burn", strconv.FormatFloat(fastBurn, 'f', 2, 64),
				"slow_burn", strconv.FormatFloat(slowBurn, 'f', 2, 64),
			)
		}
		if cur > worst {
			worst = cur
		}
	}

	// Shed level follows the worst fast-window burn alone: overload
	// response must react within seconds, before the slow window
	// confirms — shedding early and recovering hysteretically is
	// cheaper than a queue collapse.
	shedTarget := int32(0)
	switch {
	case maxFastBurn >= 2*e.cfg.PageBurn:
		shedTarget = 3
	case maxFastBurn >= e.cfg.PageBurn:
		shedTarget = 2
	case maxFastBurn >= e.cfg.WarnBurn:
		shedTarget = 1
	}

	e.mu.Lock()
	e.ticks++
	e.worst = worst
	prevShed := e.shedLevel.Load()
	curShed := prevShed
	if shedTarget >= prevShed {
		e.shedHigh = now
		curShed = shedTarget
	} else if now.Sub(e.shedHigh) >= e.cfg.HoldDown {
		curShed = shedTarget
	}
	e.shedLevel.Store(curShed)
	e.mu.Unlock()
	if curShed != prevShed {
		e.cfg.Journal.Record("shed_level", "admission shed level "+strconv.Itoa(int(prevShed))+" -> "+strconv.Itoa(int(curShed)),
			"from", strconv.Itoa(int(prevShed)),
			"to", strconv.Itoa(int(curShed)),
			"max_fast_burn", strconv.FormatFloat(maxFastBurn, 'f', 2, 64),
		)
	}
}

// Run ticks the engine until ctx is done. interval <= 0 defaults to
// 1 s. Nil-safe no-op (returns immediately).
func (e *Engine) Run(ctx context.Context, interval time.Duration) {
	if e == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			e.Tick()
		}
	}
}

// State returns the worst objective state as of the last Tick.
// Nil-safe (StateOK).
func (e *Engine) State() State {
	if e == nil {
		return StateOK
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.worst
}

// ShedLevel returns the admission shed level 0..3 as of the last
// Tick: 0 sheds nothing, 3 sheds every sheddable priority class. One
// atomic load — safe on every request's admission path. Nil-safe (0).
func (e *Engine) ShedLevel() int {
	if e == nil {
		return 0
	}
	return int(e.shedLevel.Load())
}

// RetryAfter suggests how long a shed caller should back off: half
// the fast window (the soonest the burn can meaningfully decay),
// clamped to [1s, 60s]. Nil-safe (0).
func (e *Engine) RetryAfter() time.Duration {
	if e == nil {
		return 0
	}
	d := e.cfg.FastWindow / 2
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// ObjectiveStatus is one objective's rendering in the /debug/slo
// document.
type ObjectiveStatus struct {
	Name     string    `json:"name"`
	Endpoint string    `json:"endpoint"`
	Kind     string    `json:"kind"`
	Target   string    `json:"target"`
	State    string    `json:"state"`
	Since    time.Time `json:"since"`
	// FastBurn / SlowBurn are the budget-normalized burn rates over
	// the two windows; 1.0 burns exactly the budget.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BudgetRemaining is the slow-window budget fraction left:
	// max(0, 1 - slow_burn).
	BudgetRemaining float64 `json:"budget_remaining"`
	FastGood        int64   `json:"fast_good"`
	FastBad         int64   `json:"fast_bad"`
	SlowGood        int64   `json:"slow_good"`
	SlowBad         int64   `json:"slow_bad"`
	Transitions     uint64  `json:"transitions"`
}

// Status is the /debug/slo document.
type Status struct {
	State        string            `json:"state"`
	ShedLevel    int               `json:"shed_level"`
	FastWindowMS int64             `json:"fast_window_ms"`
	SlowWindowMS int64             `json:"slow_window_ms"`
	PageBurn     float64           `json:"page_burn"`
	WarnBurn     float64           `json:"warn_burn"`
	HoldDownMS   int64             `json:"hold_down_ms"`
	Ticks        uint64            `json:"ticks"`
	Objectives   []ObjectiveStatus `json:"objectives"`
}

// Status renders the engine for /debug/slo and the /metrics slo
// subtree. Nil-safe (zero document with empty objective list).
func (e *Engine) Status() Status {
	if e == nil {
		return Status{State: StateOK.String(), Objectives: []ObjectiveStatus{}}
	}
	e.mu.Lock()
	st := Status{
		State:        e.worst.String(),
		ShedLevel:    int(e.shedLevel.Load()),
		FastWindowMS: e.cfg.FastWindow.Milliseconds(),
		SlowWindowMS: e.cfg.SlowWindow.Milliseconds(),
		PageBurn:     e.cfg.PageBurn,
		WarnBurn:     e.cfg.WarnBurn,
		HoldDownMS:   e.cfg.HoldDown.Milliseconds(),
		Ticks:        e.ticks,
	}
	e.mu.Unlock()
	st.Objectives = make([]ObjectiveStatus, 0, len(e.objs))
	for _, t := range e.objs {
		t.mu.Lock()
		rem := 1 - t.slowBurn
		if rem < 0 {
			rem = 0
		}
		st.Objectives = append(st.Objectives, ObjectiveStatus{
			Name:            t.obj.Name,
			Endpoint:        t.obj.Endpoint,
			Kind:            t.obj.Kind.String(),
			Target:          t.obj.Target(),
			State:           t.state.String(),
			Since:           t.since,
			FastBurn:        t.fastBurn,
			SlowBurn:        t.slowBurn,
			BudgetRemaining: rem,
			FastGood:        t.fastGood,
			FastBad:         t.fastBad,
			SlowGood:        t.slowGood,
			SlowBad:         t.slowBad,
			Transitions:     t.lastTrans,
		})
		t.mu.Unlock()
	}
	sort.Slice(st.Objectives, func(i, j int) bool { return st.Objectives[i].Name < st.Objectives[j].Name })
	return st
}
