// Package ocr simulates optical character recognition over the synthetic
// screenshot layer. The paper applies OCR to webpage screenshots to
// produce the Timage term set used as a fallback keyterm source for
// image-based pages (Sections III-B, V-A). Real OCR is noisy and slow;
// this simulator reproduces the noise (character confusions that destroy
// terms, dropped words) deterministically so experiments are repeatable,
// and the paper's "OCR is a slow process" cost shows up in the Table VIII
// benchmark as a tunable constant.
package ocr

import (
	"hash/fnv"
	"math/rand"
	"strings"
)

// Recognizer simulates OCR. The zero value recognizes perfectly; use
// Default for realistic noise.
type Recognizer struct {
	// DropRate is the probability a word is missed entirely.
	DropRate float64
	// ConfuseRate is the per-word probability of a character confusion
	// (l→1, o→0, ...), which splits or destroys the extracted term.
	ConfuseRate float64
	// Seed decorrelates noise across recognizer instances while keeping
	// each (seed, input) pair deterministic.
	Seed int64
}

// Default returns a recognizer with noise rates typical of OCR on web
// screenshots.
func Default() *Recognizer {
	return &Recognizer{DropRate: 0.08, ConfuseRate: 0.10, Seed: 1}
}

// confusions maps characters to their classic OCR misreads.
var confusions = map[byte]byte{
	'l': '1', 'i': '1', 'o': '0', 'e': '3', 's': '5', 'b': '8', 'g': '9', 'z': '2',
}

// Recognize returns the text OCR would extract from the screenshot lines.
// Deterministic for a given (Seed, input) pair.
func (r *Recognizer) Recognize(lines []string) []string {
	if len(lines) == 0 {
		return nil
	}
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		words := strings.Fields(line)
		kept := make([]string, 0, len(words))
		for _, word := range words {
			rng := r.wordRNG(word)
			if rng.Float64() < r.DropRate {
				continue
			}
			if rng.Float64() < r.ConfuseRate {
				word = confuse(rng, word)
			}
			kept = append(kept, word)
		}
		if len(kept) > 0 {
			out = append(out, strings.Join(kept, " "))
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// wordRNG derives a deterministic RNG from the word content and seed.
func (r *Recognizer) wordRNG(word string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(word))
	return rand.New(rand.NewSource(int64(h.Sum64()) ^ r.Seed))
}

func confuse(rng *rand.Rand, word string) string {
	b := []byte(strings.ToLower(word))
	// Try a handful of positions for a confusable character.
	for attempt := 0; attempt < 3; attempt++ {
		i := rng.Intn(len(b))
		if repl, ok := confusions[b[i]]; ok {
			b[i] = repl
			break
		}
	}
	return string(b)
}
