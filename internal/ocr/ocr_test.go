package ocr

import (
	"reflect"
	"strings"
	"testing"
)

func TestZeroValuePerfectRecognition(t *testing.T) {
	var r Recognizer
	in := []string{"nova bank secure login", "welcome back"}
	got := r.Recognize(in)
	want := []string{"nova bank secure login", "welcome back"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recognize = %v, want %v", got, want)
	}
}

func TestDeterministic(t *testing.T) {
	r := Default()
	in := []string{"nova bank secure login verify account password"}
	a := r.Recognize(in)
	b := r.Recognize(in)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSeedChangesNoise(t *testing.T) {
	in := []string{"alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo lima"}
	r1 := &Recognizer{DropRate: 0.5, Seed: 1}
	r2 := &Recognizer{DropRate: 0.5, Seed: 999}
	a := strings.Join(r1.Recognize(in), " ")
	b := strings.Join(r2.Recognize(in), " ")
	if a == b {
		t.Log("note: two seeds produced identical output (possible, but suspicious)")
	}
}

func TestDropRateOne(t *testing.T) {
	r := &Recognizer{DropRate: 1}
	if got := r.Recognize([]string{"everything vanishes"}); got != nil {
		t.Errorf("DropRate=1 must drop all words, got %v", got)
	}
}

func TestConfusionDestroysTerms(t *testing.T) {
	r := &Recognizer{ConfuseRate: 1, Seed: 3}
	got := r.Recognize([]string{"login"})
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0] == "login" {
		t.Errorf("ConfuseRate=1 must alter a confusable word, got %q", got[0])
	}
	// The classic confusions replace letters with digits.
	if !strings.ContainsAny(got[0], "0123456789") {
		t.Errorf("confused word %q has no digit substitution", got[0])
	}
}

func TestEmptyInput(t *testing.T) {
	r := Default()
	if got := r.Recognize(nil); got != nil {
		t.Errorf("nil input: got %v", got)
	}
	if got := r.Recognize([]string{""}); got != nil {
		t.Errorf("blank line: got %v", got)
	}
}

func TestDefaultRatesModerate(t *testing.T) {
	r := Default()
	// A long input must survive mostly intact.
	words := strings.Fields(strings.Repeat("alpha bravo charlie delta echo ", 20))
	in := []string{strings.Join(words, " ")}
	out := strings.Fields(strings.Join(r.Recognize(in), " "))
	ratio := float64(len(out)) / float64(len(words))
	if ratio < 0.7 {
		t.Errorf("default OCR keeps only %.0f%% of words", ratio*100)
	}
}
