package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The legacy engine: a single-file JSONL log. The log is append-only —
// one self-contained JSON document per line, written in a single
// write(2) call — so a crash can at worst truncate the final line,
// which Reload detects and skips. Compaction rewrites the whole log
// dropping superseded verdicts via a temp-file + rename so a crash
// mid-compaction leaves either the old log or the new one, never a mix.
// Reload and compaction are whole-file, which is why the segmented
// engine replaced it as the default; it remains for logs already on
// disk and as the migration source.

// Store is the legacy single-file JSONL verdict store. All methods are
// safe for concurrent use.
//
// Deprecated: construct stores through Open, which returns the engine
// behind the Backend interface (Config.Backend selects BackendLegacy to
// keep this engine). Direct *Store use remains supported for existing
// callers only.
type Store struct {
	mu   sync.Mutex
	path string
	sync bool
	file *os.File

	nextSeq      uint64
	sinceCompact int
	compactEvery int
	// deadOnDisk counts log lines superseded by a later append — what
	// the next compaction will reclaim.
	deadOnDisk int64

	// byKey holds the newest record per landing URL + fingerprint — the
	// identity compaction preserves. byURL and byTarget index into the
	// same records.
	byKey    map[string]*Record
	byURL    map[string][]*Record // landing URL → records, append order
	byStart  map[string][]*Record // starting URL → records, append order
	byTarget map[string][]*Record // identified target RDN → records

	maxExplain int

	appends       int64
	compactions   int64
	superseded    int64
	compactErrors int64
	explDropped   int64
}

// OpenLegacy opens (creating if necessary) the legacy JSONL store at
// cfg.Path and replays the existing log into the in-memory index.
//
// Deprecated: use Open with Config.Backend set to BackendLegacy, which
// returns the same engine behind the Backend interface.
func OpenLegacy(cfg Config) (*Store, error) {
	return openLegacy(cfg)
}

func openLegacy(cfg Config) (*Store, error) {
	if cfg.Path == "" {
		return nil, errors.New("store: Config.Path is required")
	}
	if dir := filepath.Dir(cfg.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", dir, err)
		}
	}
	s := &Store{
		path:         cfg.Path,
		sync:         cfg.Sync,
		compactEvery: cfg.CompactEvery,
		maxExplain:   cfg.MaxExplainBytes,
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if s.maxExplain == 0 {
		s.maxExplain = DefaultMaxExplainBytes
	}
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload closes the log, re-reads it from disk and rebuilds the index —
// the startup path, also usable to pick up a log replaced underneath the
// process. Counters (appends, compactions) survive; the index is rebuilt
// from scratch.
func (s *Store) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reloadLocked()
}

func (s *Store) reloadLocked() error {
	if s.file != nil {
		_ = s.file.Close()
		s.file = nil
	}
	s.byKey = make(map[string]*Record)
	s.byURL = make(map[string][]*Record)
	s.byStart = make(map[string][]*Record)
	s.byTarget = make(map[string][]*Record)
	s.nextSeq = 1
	s.sinceCompact = 0
	s.deadOnDisk = 0

	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", s.path, err)
	}
	// Replay line by line, tracking the byte offset of the last cleanly
	// terminated, parseable line. Anything past it — an unterminated
	// tail or a corrupt line — is the residue of a torn write (crash
	// mid-append); truncate it away so new appends start on a clean
	// line boundary instead of gluing onto the fragment.
	r := bufio.NewReaderSize(f, 64<<10)
	var good int64
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			if rerr == io.EOF {
				break // any bytes in line are an unterminated torn tail
			}
			_ = f.Close()
			return fmt.Errorf("store: reading %s: %w", s.path, rerr)
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec Record
			if err := json.Unmarshal(trimmed, &rec); err != nil {
				break // corrupt line; nothing after it can be trusted
			}
			s.indexLocked(&rec)
		}
		good += int64(len(line))
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
	}
	_ = f.Close()
	s.file, err = os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening %s: %w", s.path, err)
	}
	return nil
}

// indexLocked installs rec into the in-memory maps, superseding any older
// record with the same landing URL + fingerprint.
func (s *Store) indexLocked(rec *Record) {
	if rec.Seq >= s.nextSeq {
		s.nextSeq = rec.Seq + 1
	}
	key := rec.key()
	if old, ok := s.byKey[key]; ok {
		s.dropLocked(old)
		s.deadOnDisk++
	}
	s.byKey[key] = rec
	s.byURL[rec.LandingURL] = append(s.byURL[rec.LandingURL], rec)
	if rec.URL != rec.LandingURL {
		s.byStart[rec.URL] = append(s.byStart[rec.URL], rec)
	}
	if rec.Target != "" {
		s.byTarget[rec.Target] = append(s.byTarget[rec.Target], rec)
	}
}

// dropLocked removes a superseded record from the secondary indexes.
func (s *Store) dropLocked(old *Record) {
	remove := func(m map[string][]*Record, k string) {
		rs := m[k]
		for i, r := range rs {
			if r == old {
				m[k] = append(rs[:i], rs[i+1:]...)
				break
			}
		}
		if len(m[k]) == 0 {
			delete(m, k)
		}
	}
	remove(s.byURL, old.LandingURL)
	if old.URL != old.LandingURL {
		remove(s.byStart, old.URL)
	}
	if old.Target != "" {
		remove(s.byTarget, old.Target)
	}
}

// Append assigns the record a sequence number and timestamp (when unset),
// writes it to the log and indexes it. Triggers compaction when the
// append budget since the last one is spent.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return ErrClosed
	}
	if prepare(&rec, s.nextSeq, s.maxExplain) {
		s.explDropped++
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	// One write call for line + newline: the log stays line-atomic under
	// concurrent process crashes (a torn write truncates, never
	// interleaves).
	if _, err := s.file.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	if s.sync {
		if err := s.file.Sync(); err != nil {
			return fmt.Errorf("store: syncing %s: %w", s.path, err)
		}
	}
	s.indexLocked(&rec)
	s.appends++
	s.sinceCompact++
	if s.compactEvery > 0 && s.sinceCompact >= s.compactEvery {
		// The append itself is durable at this point; a failed
		// compaction must not make it look lost. Count the failure (it
		// surfaces in Stats/metrics) and retry at the next trigger.
		if err := s.compactLocked(); err != nil {
			s.compactErrors++
			s.sinceCompact = 0
		}
	}
	return nil
}

// Compact rewrites the log keeping only live records (the newest per
// landing URL + fingerprint), dropping everything superseded.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	live := make([]*Record, 0, len(s.byKey))
	for _, rec := range s.byKey {
		live = append(live, rec)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })

	tmp := s.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range live {
		if err := enc.Encode(rec); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: syncing compacted log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing compacted log: %w", err)
	}
	// Atomic cutover: rename leaves either the full old log or the full
	// new one. Swap the write handle only after it succeeds.
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("store: installing compacted log: %w", err)
	}
	_ = s.file.Close()
	s.file, err = os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The data on disk is complete and consistent (the rename
		// landed); only the write handle is gone. Appends fail until
		// Reload reopens the log — they must not silently write to the
		// unlinked pre-compaction inode.
		return fmt.Errorf("store: reopening compacted log (Reload recovers): %w", err)
	}
	s.compactions++
	s.superseded += s.deadOnDisk
	s.deadOnDisk = 0
	s.sinceCompact = 0
	return nil
}

// Get returns the newest record whose landing URL or starting URL equals
// url.
func (s *Store) Get(url string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Record
	for _, rec := range s.byURL[url] {
		if best == nil || rec.Seq > best.Seq {
			best = rec
		}
	}
	for _, rec := range s.byStart[url] {
		if best == nil || rec.Seq > best.Seq {
			best = rec
		}
	}
	if best == nil {
		return Record{}, false
	}
	return *best, true
}

// recMatches applies the Query filters to a full record — the legacy
// mirror of the index-row matches; the two must agree so the engines
// answer identically.
func recMatches(rec *Record, q Query) bool {
	if q.Target != "" && rec.Target != q.Target {
		return false
	}
	if q.URL != "" && rec.LandingURL != q.URL && rec.URL != q.URL {
		return false
	}
	if q.ModelVersion != "" && rec.ModelVersion != q.ModelVersion {
		return false
	}
	if !q.Since.IsZero() && rec.ScoredAt.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !rec.ScoredAt.Before(q.Until) {
		return false
	}
	if q.PhishOnly && !rec.Outcome.FinalPhish {
		return false
	}
	return true
}

// pageLocked collects one page matching q: filter, sort newest-first
// (strictly descending Seq — the deterministic order every query path
// guarantees), apply the limit, and report whether more records follow.
func (s *Store) pageLocked(q Query, cursor uint64, hasCursor bool) ([]Record, bool) {
	var candidates []*Record
	switch {
	case q.Target != "":
		candidates = s.byTarget[q.Target]
	case q.URL != "":
		candidates = append(append([]*Record{}, s.byURL[q.URL]...), s.byStart[q.URL]...)
	default:
		candidates = make([]*Record, 0, len(s.byKey))
		for _, rec := range s.byKey {
			candidates = append(candidates, rec)
		}
	}
	matched := make([]*Record, 0, len(candidates))
	for _, rec := range candidates {
		if hasCursor && rec.Seq >= cursor {
			continue
		}
		if !recMatches(rec, q) {
			continue
		}
		matched = append(matched, rec)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].Seq > matched[j].Seq })
	more := false
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
		more = true
	}
	out := make([]Record, len(matched))
	for i, rec := range matched {
		out[i] = *rec
	}
	return out, more
}

// Select returns live records matching q, newest (highest Seq) first.
// A malformed q.Cursor is ignored (Select has no error path); use the
// Backend Scan for validated cursor pagination.
func (s *Store) Select(q Query) []Record {
	cursor, hasCursor, err := parseCursor(q.Cursor)
	if err != nil {
		cursor, hasCursor = 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out, _ := s.pageLocked(q, cursor, hasCursor)
	return out
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Stats returns the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Backend:             BackendLegacy,
		Records:             len(s.byKey),
		Appends:             s.appends,
		Compactions:         s.compactions,
		Superseded:          s.superseded,
		CompactErrors:       s.compactErrors,
		ExplanationsDropped: s.explDropped,
	}
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the log. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Sync()
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	s.file = nil
	return err
}

// liveAscending returns every live record ordered by Seq ascending —
// the migration read path (append order is reproduced in the new log).
func (s *Store) liveAscending() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make([]*Record, 0, len(s.byKey))
	for _, rec := range s.byKey {
		live = append(live, rec)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })
	return live
}

// Backend adapts the legacy store to the Backend interface — the
// bridge for callers still holding a *Store while the rest of the
// system speaks Backend. Both views share the same engine and lock.
func (s *Store) Backend() Backend { return &legacyBackend{s: s} }

// legacyBackend adapts *Store to the Backend interface: same engine,
// context-aware signatures and cursor-paginated scans on top.
type legacyBackend struct {
	s *Store
}

func (b *legacyBackend) Append(ctx context.Context, rec Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.s.Append(rec)
}

func (b *legacyBackend) Get(ctx context.Context, url string) (Record, bool, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, false, err
	}
	rec, ok := b.s.Get(url)
	return rec, ok, nil
}

func (b *legacyBackend) Scan(ctx context.Context, q Query) (ScanPage, error) {
	cursor, hasCursor, err := parseCursor(q.Cursor)
	if err != nil {
		return ScanPage{}, err
	}
	if err := ctx.Err(); err != nil {
		return ScanPage{}, err
	}
	b.s.mu.Lock()
	if b.s.file == nil {
		b.s.mu.Unlock()
		return ScanPage{}, ErrClosed
	}
	recs, more := b.s.pageLocked(q, cursor, hasCursor)
	b.s.mu.Unlock()
	page := ScanPage{Records: recs}
	if more {
		page.NextCursor = encodeCursor(recs[len(recs)-1].Seq)
	}
	return page, nil
}

func (b *legacyBackend) Compact(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return b.s.Compact()
}

func (b *legacyBackend) Stats() Stats { return b.s.Stats() }
func (b *legacyBackend) Len() int     { return b.s.Len() }
func (b *legacyBackend) Path() string { return b.s.Path() }
func (b *legacyBackend) Close() error { return b.s.Close() }
