package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout. A segment is a sequence of frames:
//
//	[payload length: uint32 LE][CRC-32C of payload: uint32 LE][payload]
//
// where the payload is one Record as JSON. The CRC detects torn or
// bit-rotted frames; a frame that fails its CRC (or runs past EOF) ends
// the readable prefix of the segment. Sealed segments additionally
// carry a "<id>.idx" sidecar with segment stats and a sparse seq→offset
// index so recovery can seek into the tail instead of replaying from
// offset zero.
const (
	frameHeader = 8
	// maxFramePayload bounds a single frame; anything larger in a
	// header is corruption, not data (records are a few KB).
	maxFramePayload = 64 << 20
	segSuffix       = ".seg"
	idxSuffix       = ".idx"
	// sparseEvery is the record interval between sparse-index points.
	sparseEvery = 512
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTornFrame marks the end of a segment's readable prefix.
var errTornFrame = errors.New("store: torn or corrupt frame")

// appendFrame appends one framed payload to buf.
func appendFrame(buf []byte, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// readFrameAt reads and verifies the frame at off using ReadAt (safe
// for concurrent readers on a shared handle). It returns the payload
// and the full frame length. Torn, truncated or corrupt frames return
// errTornFrame.
func readFrameAt(r io.ReaderAt, off int64) (payload []byte, frameLen int64, err error) {
	var hdr [frameHeader]byte
	if _, err := r.ReadAt(hdr[:], off); err != nil {
		return nil, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return nil, 0, errTornFrame
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(r, off+frameHeader, int64(n)), payload); err != nil {
		return nil, 0, errTornFrame
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, 0, errTornFrame
	}
	return payload, frameHeader + int64(n), nil
}

// sparsePoint is one sparse-index row: the frame at Off holds Seq.
type sparsePoint struct {
	Seq uint64 `json:"seq"`
	Off int64  `json:"off"`
}

// sidecar is the per-segment index written when a segment seals
// ("<id>.idx", JSON). Bytes is the exact framed length — anything past
// it in the .seg file is garbage from a crashed write and is ignored.
// The sparse index has one point every sparseEvery records; recovery
// past a snapshot watermark seeks to the last point at or below the
// watermark instead of replaying the segment from the start.
type sidecar struct {
	Count  int           `json:"count"`
	MinSeq uint64        `json:"min_seq"`
	MaxSeq uint64        `json:"max_seq"`
	Bytes  int64         `json:"bytes"`
	Sparse []sparsePoint `json:"sparse,omitempty"`
}

// seekPoint returns the best known start offset for replaying frames
// with seq > watermark.
func (sc *sidecar) seekPoint(watermark uint64) int64 {
	off := int64(0)
	for _, p := range sc.Sparse {
		if p.Seq > watermark {
			break
		}
		off = p.Off
	}
	return off
}

func segName(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", id, segSuffix))
}

func idxName(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", id, idxSuffix))
}

// parseSegID extracts the segment ID from a ".seg" or ".idx" basename.
func parseSegID(base string) (uint64, bool) {
	stem, ok := strings.CutSuffix(base, segSuffix)
	if !ok {
		if stem, ok = strings.CutSuffix(base, idxSuffix); !ok {
			return 0, false
		}
	}
	id, err := strconv.ParseUint(stem, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// writeSidecar persists a segment's sidecar via temp-file + rename.
func writeSidecar(dir string, id uint64, sc *sidecar, fp func() error) error {
	data, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	if err := fp(); err != nil { // failpoint: crash before the sidecar lands
		return err
	}
	return atomicWrite(idxName(dir, id), data)
}

// loadSidecar reads a segment's sidecar; ok is false when absent or
// unreadable (the segment is then replayed from offset zero).
func loadSidecar(dir string, id uint64) (*sidecar, bool) {
	data, err := os.ReadFile(idxName(dir, id))
	if err != nil {
		return nil, false
	}
	sc := new(sidecar)
	if err := json.Unmarshal(data, sc); err != nil {
		return nil, false
	}
	return sc, true
}

// atomicWrite writes data to path via a same-directory temp file,
// fsync, and rename, so the path never holds a partial file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// listSegments returns the segment IDs present in dir, ascending, after
// sweeping crash leftovers: "*.tmp" files (half-written sidecars,
// snapshots or compaction outputs that never renamed into place) and
// orphaned ".idx" sidecars whose segment never appeared.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	segs := map[uint64]bool{}
	var idxOnly []uint64
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		id, ok := parseSegID(name)
		if !ok {
			continue
		}
		if strings.HasSuffix(name, segSuffix) {
			segs[id] = true
		} else {
			idxOnly = append(idxOnly, id)
		}
	}
	for _, id := range idxOnly {
		if !segs[id] {
			os.Remove(idxName(dir, id))
		}
	}
	ids := make([]uint64, 0, len(segs))
	for id := range segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
