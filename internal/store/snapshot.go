package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Index snapshot ("snapshot.bin"): the segmented engine's fast-start
// path. It holds every live index row (meta + on-disk location, not
// the records themselves) plus a watermark; reopening loads it and
// replays only frames with seq > watermark, so startup cost is
// proportional to the index plus the un-snapshotted tail instead of the
// whole log. The format is a hand-rolled varint codec rather than JSON
// because the snapshot is read on every open and decoding 100k JSON
// rows would eat most of the fast-start budget.
//
// Layout: magic, then uvarint(nextSeq), uvarint(watermark), the active
// segment state (uvarint id — 0 for none — then uvarint offset,
// uvarint count, uvarint minSeq, uvarint maxSeq, uvarint sparse count
// and that many seq/off pairs), uvarint(count), count rows, and a
// trailing CRC-32C of everything after the magic. A row is:
//
//	uvarint seq · varint scoredAt · flag byte (bit0 phish) ·
//	uvarint seg · uvarint off · uvarint frameLen ·
//	6 length-prefixed strings (landing, start, fp, target, model,
//	source)
//
// The active state lets reopen resume the active segment's replay at
// the watermark's byte offset (frames below it are already in the
// snapshot rows) — without it, a clean restart would re-parse the whole
// unsealed segment, which for a hot store is most of a segment's worth
// of JSON. The embedded segMeta seeds the sidecar-to-be so a later seal
// still records the segment's true count, seq range, and sparse index.
//
// A snapshot that fails its magic or CRC is ignored — recovery falls
// back to a full segment replay, never to a partial index. The magic
// doubles as the format version: KPSNAP2 added the source string, and
// a store opened with a KPSNAP1 snapshot simply replays its segments
// once and writes the current format on the next snapshot.
const (
	snapshotFile  = "snapshot.bin"
	snapshotMagic = "KPSNAP2\n"
)

var errBadSnapshot = errors.New("store: unreadable snapshot")

// appendSnapshotString appends a length-prefixed string.
func appendSnapshotString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// activeState is the active segment's position at snapshot time: which
// segment was being appended to, how many framed bytes it held (all of
// them indexed by the snapshot rows), and the sidecar meta accumulated
// so far. id 0 means no active segment.
type activeState struct {
	id   uint64
	off  int64
	meta segMeta
}

// encodeSnapshot serializes live index rows (callers pass them seq-
// ascending so decode can rebuild the bySeq slice with append-only
// inserts).
func encodeSnapshot(nextSeq, watermark uint64, act activeState, rows []*entry) []byte {
	buf := make([]byte, 0, 64+len(rows)*96)
	buf = append(buf, snapshotMagic...)
	buf = binary.AppendUvarint(buf, nextSeq)
	buf = binary.AppendUvarint(buf, watermark)
	buf = binary.AppendUvarint(buf, act.id)
	buf = binary.AppendUvarint(buf, uint64(act.off))
	buf = binary.AppendUvarint(buf, uint64(act.meta.count))
	buf = binary.AppendUvarint(buf, act.meta.minSeq)
	buf = binary.AppendUvarint(buf, act.meta.maxSeq)
	buf = binary.AppendUvarint(buf, uint64(len(act.meta.sparse)))
	for _, p := range act.meta.sparse {
		buf = binary.AppendUvarint(buf, p.Seq)
		buf = binary.AppendUvarint(buf, uint64(p.Off))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, e := range rows {
		buf = binary.AppendUvarint(buf, e.seq)
		buf = binary.AppendVarint(buf, e.scoredAt)
		var flags byte
		if e.phish {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, e.seg)
		buf = binary.AppendUvarint(buf, uint64(e.off))
		buf = binary.AppendUvarint(buf, uint64(e.n))
		buf = appendSnapshotString(buf, e.landing)
		buf = appendSnapshotString(buf, e.start)
		buf = appendSnapshotString(buf, e.fp)
		buf = appendSnapshotString(buf, e.target)
		buf = appendSnapshotString(buf, e.model)
		buf = appendSnapshotString(buf, e.source)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(snapshotMagic):], castagnoli))
}

// snapshotReader decodes the varint stream with sticky error state so
// row decoding reads linearly without per-field error plumbing. str is
// the same bytes as one shared string: decoded strings are substrings
// of it, so a 100k-row snapshot costs one string allocation instead of
// several hundred thousand (the rows retain the body, which is mostly
// those strings anyway).
type snapshotReader struct {
	buf []byte
	str string
	bad bool
}

func (r *snapshotReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapshotReader) varint() int64 {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *snapshotReader) byte() byte {
	if len(r.buf) < 1 {
		r.bad = true
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *snapshotReader) string() string {
	n := r.uvarint()
	if r.bad || uint64(len(r.buf)) < n {
		r.bad = true
		return ""
	}
	off := len(r.str) - len(r.buf)
	s := r.str[off : off+int(n)]
	r.buf = r.buf[n:]
	return s
}

// decodeSnapshot parses a snapshot payload back into index rows.
func decodeSnapshot(data []byte) (rows []*entry, nextSeq, watermark uint64, act activeState, err error) {
	if len(data) < len(snapshotMagic)+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, 0, 0, act, errBadSnapshot
	}
	body := data[len(snapshotMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, 0, 0, act, errBadSnapshot
	}
	r := &snapshotReader{buf: body, str: string(body)}
	nextSeq = r.uvarint()
	watermark = r.uvarint()
	act.id = r.uvarint()
	act.off = int64(r.uvarint())
	act.meta.count = int(r.uvarint())
	act.meta.minSeq = r.uvarint()
	act.meta.maxSeq = r.uvarint()
	sparseCount := r.uvarint()
	if r.bad || sparseCount > uint64(len(body)) {
		return nil, 0, 0, activeState{}, errBadSnapshot
	}
	for i := uint64(0); i < sparseCount; i++ {
		seq := r.uvarint()
		off := int64(r.uvarint())
		act.meta.sparse = append(act.meta.sparse, sparsePoint{Seq: seq, Off: off})
	}
	count := r.uvarint()
	if r.bad || count > uint64(len(body)) { // a row is >1 byte; cheap sanity bound
		return nil, 0, 0, activeState{}, errBadSnapshot
	}
	// One contiguous entry block instead of count tiny allocations: the
	// row count is CRC-protected and bounded by the body size above.
	block := make([]entry, count)
	rows = make([]*entry, 0, count)
	for i := uint64(0); i < count; i++ {
		e := &block[i]
		e.seq = r.uvarint()
		e.scoredAt = r.varint()
		e.phish = r.byte()&1 != 0
		e.seg = r.uvarint()
		e.off = int64(r.uvarint())
		e.n = uint32(r.uvarint())
		e.landing = r.string()
		e.start = r.string()
		e.fp = r.string()
		e.target = r.string()
		e.model = r.string()
		e.source = r.string()
		if r.bad {
			return nil, 0, 0, activeState{}, errBadSnapshot
		}
		rows = append(rows, e)
	}
	return rows, nextSeq, watermark, act, nil
}

// writeSnapshot persists an encoded snapshot atomically.
func writeSnapshot(dir string, data []byte, fp func() error) error {
	if err := fp(); err != nil { // failpoint: crash before the snapshot lands
		return err
	}
	return atomicWrite(filepath.Join(dir, snapshotFile), data)
}

// loadSnapshot reads and decodes the directory's snapshot; ok is false
// (full replay) when absent or unreadable.
func loadSnapshot(dir string) (rows []*entry, nextSeq, watermark uint64, act activeState, ok bool) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, 0, 0, act, false
	}
	rows, nextSeq, watermark, act, err = decodeSnapshot(data)
	if err != nil {
		return nil, 0, 0, activeState{}, false
	}
	return rows, nextSeq, watermark, act, true
}
