package store

import (
	"fmt"
	"os"
)

// migrationBackupSuffix is appended to a migrated legacy log's path.
const migrationBackupSuffix = ".pre-migration.jsonl"

// migrationSideSuffix names the side directory a migration builds in.
const migrationSideSuffix = ".migrating"

// maybeMigrate converts a legacy JSONL log at cfg.Path into a segmented
// store directory at the same path, one-shot; it is a no-op when the
// path already holds a directory (or nothing). Sequence numbers,
// timestamps and explanations are preserved verbatim, so queries answer
// identically before and after.
//
// The dance is crash-safe at every step: the segmented store is built
// in a side directory ("<Path>.migrating") while the legacy log is
// untouched; the log is then renamed to its backup name
// ("<Path>.pre-migration.jsonl") and the side directory renamed into
// place. A crash before the first rename leaves the legacy log
// authoritative (a stale side directory is discarded and rebuilt on the
// next attempt); a crash between the renames leaves the path absent and
// the finished side directory present, which the next open completes.
func maybeMigrate(cfg Config) error {
	side := cfg.Path + migrationSideSuffix
	fi, err := os.Stat(cfg.Path)
	switch {
	case err == nil && !fi.Mode().IsRegular():
		return nil // already a segment directory
	case os.IsNotExist(err):
		// Resume a crash between the two renames: the side directory,
		// if present, is complete (it is renamed away before the legacy
		// log is) — install it.
		if _, serr := os.Stat(side); serr == nil {
			return os.Rename(side, cfg.Path)
		}
		return nil // fresh store; nothing to migrate
	case err != nil:
		return err
	}

	// Read every live record out of the legacy log. MaxExplainBytes is
	// effectively unbounded here: whatever survived the original
	// append-time cap must survive migration byte-for-byte.
	src, err := openLegacy(Config{Path: cfg.Path, CompactEvery: -1, MaxExplainBytes: 1 << 30})
	if err != nil {
		return err
	}
	recs := src.liveAscending()
	if err := src.Close(); err != nil {
		return err
	}

	if err := os.RemoveAll(side); err != nil {
		return err
	}
	dstCfg := cfg
	dstCfg.Path = side
	dstCfg.Backend = BackendSegmented
	dstCfg.CompactEvery = -1         // nothing to supersede in a replay
	dstCfg.MaxExplainBytes = 1 << 30 // preserve stored evidence verbatim
	dst, err := openSegmented(dstCfg)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		r := *rec
		dst.mu.Lock()
		err := dst.appendLocked(&r, true)
		dst.mu.Unlock()
		if err != nil {
			_ = dst.Close()
			return fmt.Errorf("replaying record seq %d: %w", rec.Seq, err)
		}
	}
	// Close seals durability and writes the index snapshot — the new
	// store opens via the fast-start path immediately.
	if err := dst.Close(); err != nil {
		return err
	}

	if err := os.Rename(cfg.Path, cfg.Path+migrationBackupSuffix); err != nil {
		return err
	}
	if err := os.Rename(side, cfg.Path); err != nil {
		return err
	}
	if cfg.Logger != nil {
		cfg.Logger.Info("migrated legacy verdict log to segmented layout",
			"path", cfg.Path, "records", len(recs), "backup", cfg.Path+migrationBackupSuffix)
	}
	return nil
}
