package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"

	"knowphish/internal/obs"
)

// The segmented engine. Appends go to a single active segment; when it
// would grow past SegmentBytes it is fsynced, described by a sidecar
// index, and sealed — sealed segments are immutable, which is what lets
// compaction and recovery reason about them without coordination.
// Only the index lives in memory; records are loaded from their segment
// on demand.
//
// Crash-safety invariants:
//
//   - A frame is the unit of durability: the CRC makes a torn append
//     detectable, and recovery truncates the active segment back to its
//     last whole frame. Sealed segments are fsynced before their
//     sidecar lands, so the sealed prefix never loses a frame.
//   - A compaction output segment becomes visible (renamed from .tmp)
//     only after it is fsynced and its sidecar is on disk; old segments
//     are deleted only after the index snapshot reflecting the move is
//     written. A crash at any point leaves duplicate frames at worst,
//     and replay deduplicates by sequence number (newest wins per
//     landing URL + fingerprint, whatever order segments are read in).
//   - The snapshot is advisory: it only short-circuits replay of sealed
//     segments wholly below its watermark. Losing or corrupting it
//     costs a full replay, never data.
type segStore struct {
	dir          string
	syncEvery    bool
	segBytes     int64
	compactEvery int
	maxExplain   int
	snapEvery    int
	log          *slog.Logger

	mu         sync.Mutex
	ix         *memIndex
	active     *os.File
	activeID   uint64
	activeOff  int64
	activeMeta segMeta
	lastID     uint64 // highest segment ID ever allocated
	sealed     map[uint64]*sidecar
	closed     bool
	buf        []byte // frame scratch, reused under mu

	appends       int64
	compactions   int64
	superseded    int64
	compactErrors int64
	explDropped   int64
	tailReplayed  int64
	snapshotSeq   uint64
	sinceCompact  int
	sinceSnap     int
	snapDirty     bool // index changed since the last snapshot encode

	// compactMu serializes compactions (manual and background); it is
	// never held while mu is held, and compaction holds mu only for
	// the brief victim-selection and index-flip critical sections —
	// appends proceed during the heavy copy work.
	compactMu sync.Mutex
	wg        sync.WaitGroup

	readers struct {
		sync.Mutex
		m map[uint64]*os.File
	}

	snapMu      sync.Mutex // serializes snapshot writes
	snapWritten uint64     // highest watermark persisted (under snapMu)

	fail failpoints
}

// segMeta accumulates the sidecar-to-be of the segment being written.
type segMeta struct {
	count          int
	minSeq, maxSeq uint64
	sparse         []sparsePoint
}

func (m *segMeta) note(seq uint64, off int64) {
	if m.count == 0 || seq < m.minSeq {
		m.minSeq = seq
	}
	if seq > m.maxSeq {
		m.maxSeq = seq
	}
	if m.count%sparseEvery == 0 {
		m.sparse = append(m.sparse, sparsePoint{Seq: seq, Off: off})
	}
	m.count++
}

func (m *segMeta) sidecar(bytes int64) *sidecar {
	return &sidecar{Count: m.count, MinSeq: m.minSeq, MaxSeq: m.maxSeq, Bytes: bytes, Sparse: m.sparse}
}

// failpoints are test-only crash injection hooks: a non-nil hook runs
// immediately before the named durability step and its error aborts the
// operation there, simulating a kill at that instant.
type failpoints struct {
	appendSync     func() error // before the per-append fsync (Sync mode)
	sealSync       func() error // before fsyncing the sealing segment
	sealSidecar    func() error // before the seal sidecar lands
	compactRename  func() error // before a compaction output renames into place
	compactInstall func() error // after outputs are visible, before the index flip
	compactDelete  func() error // before compacted segments are deleted
	snapshotWrite  func() error // before the snapshot lands
}

func fpcall(f func() error) error {
	if f == nil {
		return nil
	}
	return f()
}

// fpwrap adapts an optional hook to the non-optional callback the
// writer helpers take.
func fpwrap(f func() error) func() error {
	return func() error { return fpcall(f) }
}

// frameLoc is a record's on-disk address, copied out of the index so
// reads happen without the store lock.
type frameLoc struct {
	seg uint64
	off int64
	n   uint32
}

func openSegmented(cfg Config) (*segStore, error) {
	s := &segStore{
		dir:          cfg.Path,
		syncEvery:    cfg.Sync,
		segBytes:     int64(cfg.SegmentBytes),
		compactEvery: cfg.CompactEvery,
		maxExplain:   cfg.MaxExplainBytes,
		snapEvery:    cfg.SnapshotEvery,
		log:          cfg.Logger,
		ix:           newMemIndex(),
		sealed:       map[uint64]*sidecar{},
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.readers.m = map[uint64]*os.File{}
	if s.segBytes == 0 {
		s.segBytes = DefaultSegmentBytes
	}
	if s.segBytes < frameHeader+1 {
		return nil, fmt.Errorf("store: SegmentBytes %d is unusably small", s.segBytes)
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if s.maxExplain == 0 {
		s.maxExplain = DefaultMaxExplainBytes
	}
	if s.snapEvery == 0 {
		s.snapEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", s.dir, err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover rebuilds the index: snapshot first, then replay of every
// segment not wholly covered by the snapshot watermark, then reopening
// (or creating) the active segment.
func (s *segStore) recover() error {
	ids, err := listSegments(s.dir)
	if err != nil {
		return fmt.Errorf("store: listing %s: %w", s.dir, err)
	}
	if len(ids) > 0 {
		s.lastID = ids[len(ids)-1]
	}
	rows, nextSeq, watermark, act, snapOK := loadSnapshot(s.dir)
	if snapOK {
		s.ix.bulkLoad(rows)
		if nextSeq > s.ix.nextSeq {
			s.ix.nextSeq = nextSeq
		}
		s.snapshotSeq = watermark
	}
	// The active segment is the newest one never sealed (no sidecar).
	// Compaction outputs always land with their sidecar already on
	// disk, so an unsealed newest segment can only be a genuine active.
	activeID, haveActive := uint64(0), false
	var activeGood int64
	var activeMeta segMeta
	for i, id := range ids {
		sc, sealedSeg := loadSidecar(s.dir, id)
		if sealedSeg {
			s.sealed[id] = sc
		}
		if sealedSeg && snapOK && sc.MaxSeq <= watermark {
			continue // every live frame here is already in the snapshot
		}
		start := int64(0)
		limit := int64(-1)
		var seed segMeta
		if sealedSeg {
			limit = sc.Bytes
			if snapOK {
				start = sc.seekPoint(watermark)
			}
		} else if i == len(ids)-1 && snapOK && act.id == id {
			// The snapshot recorded where the active segment stood when it
			// was taken: every frame below act.off is already in the rows,
			// so replay resumes there with the sidecar meta seeded — the
			// fast-start path never re-parses the settled part of the
			// active segment. A shorter file than act.off means the
			// segment was tampered with; fall back to a full replay.
			if fi, err := os.Stat(segName(s.dir, id)); err == nil && fi.Size() >= act.off {
				start, seed = act.off, act.meta
			}
		}
		meta, good, replayed, err := s.replaySegment(id, start, limit, watermark, snapOK, seed)
		if err != nil {
			return err
		}
		s.tailReplayed += replayed
		switch {
		case !sealedSeg && i == len(ids)-1:
			// Torn-tail recovery happens here and only here: the one
			// segment that can legally end mid-frame.
			activeID, haveActive, activeGood, activeMeta = id, true, good, meta
			if fi, err := os.Stat(segName(s.dir, id)); err == nil && fi.Size() > good {
				if err := os.Truncate(segName(s.dir, id), good); err != nil {
					return fmt.Errorf("store: truncating torn tail of segment %d: %w", id, err)
				}
			}
		case !sealedSeg:
			// A non-newest segment missing its sidecar: a crash landed
			// between the seal fsync and the sidecar write. The frames
			// replayed fine — heal the sidecar from the replay.
			sc := meta.sidecar(good)
			if err := writeSidecar(s.dir, id, sc, fpwrap(nil)); err == nil {
				s.sealed[id] = sc
			}
		}
	}
	// The index diverges from the on-disk snapshot only if frames were
	// replayed past its watermark (or there was no snapshot at all); a
	// snapshot-complete open stays clean, so closing it again skips the
	// redundant snapshot rewrite.
	s.snapDirty = s.tailReplayed > 0 || (!snapOK && len(s.ix.bySeq) > 0)
	if s.tailReplayed > 0 {
		// The replay cost of this open — the fast-start gauge an operator
		// watches after a crash.
		s.log.Info("recovered store by replaying log tail",
			"dir", s.dir, "records_replayed", s.tailReplayed, "snapshot_found", snapOK)
	}
	if haveActive {
		f, err := os.OpenFile(segName(s.dir, activeID), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: reopening active segment: %w", err)
		}
		s.active, s.activeID, s.activeOff, s.activeMeta = f, activeID, activeGood, activeMeta
		return nil
	}
	return s.openNextLocked()
}

// replaySegment indexes the frames of one segment from offset start up
// to limit (-1 → until the frames stop parsing). It returns the
// segment meta accumulated over the frames it read — on top of seed,
// for an active segment partially covered by the snapshot — the end
// offset of the last whole frame, and how many frames were past the
// snapshot watermark (the replayed tail).
func (s *segStore) replaySegment(id uint64, start, limit int64, watermark uint64, useWM bool, seed segMeta) (meta segMeta, good int64, replayed int64, err error) {
	meta = seed
	f, err := os.Open(segName(s.dir, id))
	if err != nil {
		return meta, 0, 0, fmt.Errorf("store: opening segment %d: %w", id, err)
	}
	defer f.Close()
	off := start
	good = start
	for {
		if limit >= 0 && off >= limit {
			break
		}
		payload, flen, ferr := readFrameAt(f, off)
		if ferr != nil {
			break // torn tail (or simply the end of the segment)
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil {
			break // undecodable payload: treat like a torn frame
		}
		e := metaOf(&rec)
		e.seg, e.off, e.n = id, off, uint32(flen)
		meta.note(e.seq, off)
		if !useWM || e.seq > watermark {
			replayed++
		}
		// insert deduplicates against the snapshot and against
		// compaction-crash duplicates: an equal-or-older seq for a key
		// already indexed is dropped.
		s.ix.insert(e)
		off += flen
		good = off
	}
	return meta, good, replayed, nil
}

func (s *segStore) Append(ctx context.Context, rec Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.appendLocked(&rec, false)
}

// appendLocked frames and writes one record. keepSeq preserves a
// pre-assigned sequence number (the migration replay path).
func (s *segStore) appendLocked(rec *Record, keepSeq bool) error {
	seq := rec.Seq
	if !keepSeq || seq == 0 {
		seq = s.ix.nextSeq
	}
	if prepare(rec, seq, s.maxExplain) {
		s.explDropped++
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	frame := appendFrame(s.buf[:0], payload)
	s.buf = frame[:0]
	if s.active == nil {
		// A previous append sealed the old segment but failed to open
		// the next one; retry the open.
		if err := s.openNextLocked(); err != nil {
			return err
		}
	}
	if s.activeOff > 0 && s.activeOff+int64(len(frame)) > s.segBytes {
		if err := s.sealActiveLocked(); err != nil {
			return err
		}
		if err := s.openNextLocked(); err != nil {
			return err
		}
	}
	off := s.activeOff
	if _, err := s.active.Write(frame); err != nil {
		// Best effort to keep the file at a frame boundary; recovery
		// would truncate the torn frame anyway.
		_ = s.active.Truncate(off)
		return fmt.Errorf("store: appending to segment %d: %w", s.activeID, err)
	}
	if s.syncEvery {
		if err := fpcall(s.fail.appendSync); err != nil {
			return err
		}
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: syncing segment %d: %w", s.activeID, err)
		}
	}
	s.activeOff += int64(len(frame))
	e := metaOf(rec)
	e.seg, e.off, e.n = s.activeID, off, uint32(len(frame))
	s.ix.insert(e)
	s.activeMeta.note(e.seq, off)
	s.snapDirty = true
	s.appends++
	s.sinceCompact++
	s.sinceSnap++
	if s.compactEvery > 0 && s.sinceCompact >= s.compactEvery {
		s.sinceCompact = 0
		s.startBackgroundCompactLocked()
	}
	return nil
}

// sealActiveLocked makes the active segment immutable: fsync, sidecar,
// close. Periodic snapshots piggyback on seals so their cost amortizes
// over a whole segment of appends.
func (s *segStore) sealActiveLocked() error {
	if err := fpcall(s.fail.sealSync); err != nil {
		return err
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: syncing sealing segment %d: %w", s.activeID, err)
	}
	sc := s.activeMeta.sidecar(s.activeOff)
	if err := writeSidecar(s.dir, s.activeID, sc, fpwrap(s.fail.sealSidecar)); err != nil {
		return fmt.Errorf("store: writing sidecar for segment %d: %w", s.activeID, err)
	}
	s.sealed[s.activeID] = sc
	_ = s.active.Close()
	s.active = nil
	if s.snapEvery > 0 && s.sinceSnap >= s.snapEvery {
		s.sinceSnap = 0
		data, wm := s.encodeSnapshotLocked()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.persistSnapshot(data, wm)
		}()
	}
	return nil
}

func (s *segStore) openNextLocked() error {
	s.lastID++
	id := s.lastID
	f, err := os.OpenFile(segName(s.dir, id), os.O_WRONLY|os.O_CREATE|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %d: %w", id, err)
	}
	s.active, s.activeID, s.activeOff = f, id, 0
	s.activeMeta = segMeta{}
	return nil
}

// encodeSnapshotLocked serializes the live index (bySeq order keeps it
// seq-ascending) and returns the payload with its watermark.
func (s *segStore) encodeSnapshotLocked() (data []byte, watermark uint64) {
	rows := make([]*entry, 0, s.ix.live())
	for _, e := range s.ix.bySeq {
		if !e.dead {
			rows = append(rows, e)
		}
	}
	watermark = s.ix.nextSeq - 1
	s.snapDirty = false
	var act activeState
	if s.active != nil {
		act = activeState{id: s.activeID, off: s.activeOff, meta: s.activeMeta}
	}
	return encodeSnapshot(s.ix.nextSeq, watermark, act, rows), watermark
}

// persistSnapshot writes an encoded snapshot unless a newer one already
// landed (concurrent writers race benignly; the highest watermark wins).
func (s *segStore) persistSnapshot(data []byte, watermark uint64) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if watermark < s.snapWritten {
		return
	}
	if writeSnapshot(s.dir, data, fpwrap(s.fail.snapshotWrite)) != nil {
		return // advisory: a missing snapshot only slows the next open
	}
	s.snapWritten = watermark
	s.mu.Lock()
	if watermark > s.snapshotSeq {
		s.snapshotSeq = watermark
	}
	s.mu.Unlock()
}

// reader returns a cached read handle for a segment.
func (s *segStore) reader(id uint64) (*os.File, error) {
	s.readers.Lock()
	f := s.readers.m[id]
	s.readers.Unlock()
	if f != nil {
		return f, nil
	}
	f, err := os.Open(segName(s.dir, id))
	if err != nil {
		return nil, err
	}
	s.readers.Lock()
	if g := s.readers.m[id]; g != nil {
		s.readers.Unlock()
		_ = f.Close()
		return g, nil
	}
	s.readers.m[id] = f
	s.readers.Unlock()
	return f, nil
}

// dropReaders closes and forgets cached handles for deleted segments.
func (s *segStore) dropReaders(ids []uint64) {
	s.readers.Lock()
	for _, id := range ids {
		if f := s.readers.m[id]; f != nil {
			_ = f.Close()
			delete(s.readers.m, id)
		}
	}
	s.readers.Unlock()
}

// loadFrame reads and verifies the raw frame at l.
func (s *segStore) loadFrame(l frameLoc) ([]byte, error) {
	f, err := s.reader(l.seg)
	if err != nil {
		return nil, err
	}
	payload, _, err := readFrameAt(f, l.off)
	return payload, err
}

// loadRecord materializes the record at l.
func (s *segStore) loadRecord(l frameLoc) (Record, error) {
	payload, err := s.loadFrame(l)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("store: decoding record in segment %d: %w", l.seg, err)
	}
	return rec, nil
}

func (s *segStore) Get(ctx context.Context, url string) (Record, bool, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, false, err
	}
	// A concurrent compaction can delete a segment between the index
	// lookup and the disk read; the retry re-resolves the (by then
	// repointed) location. Two moves in a row are not possible for one
	// lookup, but the loop is cheap insurance.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return Record{}, false, ErrClosed
		}
		e := s.ix.get(url)
		var l frameLoc
		if e != nil {
			l = frameLoc{e.seg, e.off, e.n}
		}
		s.mu.Unlock()
		if e == nil {
			return Record{}, false, nil
		}
		rec, err := s.loadRecord(l)
		if err == nil {
			return rec, true, nil
		}
		lastErr = err
	}
	return Record{}, false, lastErr
}

func (s *segStore) Scan(ctx context.Context, q Query) (ScanPage, error) {
	cursor, hasCursor, err := parseCursor(q.Cursor)
	if err != nil {
		return ScanPage{}, err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return ScanPage{}, err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ScanPage{}, ErrClosed
		}
		ents, more := s.ix.scan(q, cursor, hasCursor)
		locs := make([]frameLoc, len(ents))
		for i, e := range ents {
			locs[i] = frameLoc{e.seg, e.off, e.n}
		}
		s.mu.Unlock()
		recs := make([]Record, 0, len(locs))
		lastErr = nil
		for i, l := range locs {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return ScanPage{}, err
				}
			}
			rec, err := s.loadRecord(l)
			if err != nil {
				lastErr = err // segment moved underneath us; retry the page
				break
			}
			recs = append(recs, rec)
		}
		if lastErr != nil {
			continue
		}
		page := ScanPage{Records: recs}
		if more && len(recs) > 0 {
			page.NextCursor = encodeCursor(recs[len(recs)-1].Seq)
		}
		return page, nil
	}
	return ScanPage{}, lastErr
}

func (s *segStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.live()
}

func (s *segStore) Path() string { return s.dir }

func (s *segStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := len(s.sealed)
	if s.active != nil {
		segs++
	}
	return Stats{
		Backend:             BackendSegmented,
		Records:             s.ix.live(),
		Appends:             s.appends,
		Compactions:         s.compactions,
		Superseded:          s.superseded,
		CompactErrors:       s.compactErrors,
		ExplanationsDropped: s.explDropped,
		Segments:            segs,
		SnapshotSeq:         s.snapshotSeq,
		TailReplayed:        s.tailReplayed,
	}
}

// startBackgroundCompactLocked launches a compaction goroutine unless
// one is already running (called with mu held; the goroutine itself
// takes no locks until it starts).
func (s *segStore) startBackgroundCompactLocked() {
	if !s.compactMu.TryLock() {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.compactMu.Unlock()
		if err := s.runCompact(context.Background()); err != nil && !errors.Is(err, ErrClosed) {
			s.mu.Lock()
			s.compactErrors++
			s.mu.Unlock()
			// The triggering append was durable; the rewrite retries at
			// the next trigger — but an operator should know disk-side
			// maintenance is failing.
			s.log.Error("background compaction failed", "dir", s.dir, "err", err)
		}
	}()
}

// Compact runs a merge compaction synchronously (waiting out any
// background one first). Appends are never blocked: the heavy copy work
// runs without the store lock.
func (s *segStore) Compact(ctx context.Context) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.runCompact(ctx)
}

// compactItem tracks one live frame through a compaction: where it was,
// which record it is (key+seq), and where its copy landed.
type compactItem struct {
	key    pageKey
	seq    uint64
	loc    frameLoc
	newLoc frameLoc
}

// runCompact merges sealed segments containing superseded frames into
// fresh segments holding only live records. Callers hold compactMu.
//
// Locking profile: mu is held twice, briefly — to pick victims and to
// flip index locations. Reading victim frames and writing outputs (the
// actual IO) happens lock-free against immutable sealed segments.
func (s *segStore) runCompact(ctx context.Context) error {
	// Phase 1: pick victim segments — sealed ones whose live count
	// dropped below their frame count — and snapshot the live frames
	// they hold.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	liveBySeg := make(map[uint64]int, len(s.sealed)+1)
	for _, e := range s.ix.bySeq {
		if !e.dead {
			liveBySeg[e.seg]++
		}
	}
	var victims []uint64
	victimFrames := 0
	for id, sc := range s.sealed {
		if liveBySeg[id] < sc.Count {
			victims = append(victims, id)
			victimFrames += sc.Count
		}
	}
	if len(victims) == 0 {
		s.mu.Unlock()
		return nil
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	inVictims := make(map[uint64]bool, len(victims))
	for _, id := range victims {
		inVictims[id] = true
	}
	var items []compactItem
	for _, e := range s.ix.bySeq {
		if !e.dead && inVictims[e.seg] {
			items = append(items, compactItem{key: e.key(), seq: e.seq, loc: frameLoc{e.seg, e.off, e.n}})
		}
	}
	s.mu.Unlock()

	// Phase 2 (lock-free): copy the live frames verbatim — they carry
	// their CRC already — into new output segments.
	out := &compactWriter{s: s}
	newSegs, err := func() ([]segResult, error) {
		for i := range items {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			payload, err := s.loadFrame(items[i].loc)
			if err != nil {
				return nil, fmt.Errorf("store: compacting segment %d: %w", items[i].loc.seg, err)
			}
			loc, err := out.write(payload, items[i].seq)
			if err != nil {
				return nil, err
			}
			items[i].newLoc = loc
		}
		return out.finish()
	}()
	if err != nil {
		out.abort()
		return err
	}

	if err := fpcall(s.fail.compactInstall); err != nil {
		// Crash point: outputs visible, index not flipped. Replay
		// dedupes the duplicate frames; the stray outputs are merged
		// away by a later compaction after reopen.
		return err
	}

	// Phase 3: flip the index to the new locations. A frame superseded
	// while we copied keeps its newer entry — the stale copy just
	// becomes a dead frame in the output, reclaimed next time.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ix.materialize() // the flip below needs byKey even on a fresh lazy open
	for _, it := range items {
		if e := s.ix.byKey[it.key]; e != nil && e.seq == it.seq {
			e.seg, e.off, e.n = it.newLoc.seg, it.newLoc.off, it.newLoc.n
		}
	}
	for _, id := range victims {
		delete(s.sealed, id)
	}
	for _, ns := range newSegs {
		s.sealed[ns.id] = ns.sc
	}
	s.superseded += int64(victimFrames - len(items))
	s.compactions++
	data, wm := s.encodeSnapshotLocked()
	s.mu.Unlock()

	// Phase 4: persist the moved index before unlinking the old
	// segments, then delete them. A crash in between costs nothing: the
	// new segments already hold every live frame.
	s.persistSnapshot(data, wm)
	if err := fpcall(s.fail.compactDelete); err != nil {
		return err
	}
	for _, id := range victims {
		_ = os.Remove(segName(s.dir, id))
		_ = os.Remove(idxName(s.dir, id))
	}
	s.dropReaders(victims)
	s.log.Debug("compaction merged segments",
		"victims", len(victims),
		"live_records", len(items),
		"superseded_dropped", victimFrames-len(items))
	return nil
}

// segResult is one finished compaction output segment.
type segResult struct {
	id uint64
	sc *sidecar
}

// compactWriter writes compaction output segments, rolling at the
// store's segment size. Outputs are written as .tmp files and renamed
// into place only after fsync + sidecar, preserving the invariant that
// a visible segment is complete and described.
type compactWriter struct {
	s    *segStore
	f    *os.File
	id   uint64
	off  int64
	meta segMeta
	done []segResult
	tmp  string
}

// allocSegID takes the next segment ID from the store's monotonic
// counter, shared with active-segment rolls so IDs never collide.
func (s *segStore) allocSegID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastID++
	return s.lastID
}

func (w *compactWriter) write(payload []byte, seq uint64) (frameLoc, error) {
	frame := appendFrame(nil, payload)
	if w.f != nil && w.off > 0 && w.off+int64(len(frame)) > w.s.segBytes {
		if err := w.seal(); err != nil {
			return frameLoc{}, err
		}
	}
	if w.f == nil {
		w.id = w.s.allocSegID()
		w.tmp = segName(w.s.dir, w.id) + ".tmp"
		f, err := os.OpenFile(w.tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return frameLoc{}, fmt.Errorf("store: creating compaction output: %w", err)
		}
		w.f, w.off, w.meta = f, 0, segMeta{}
	}
	off := w.off
	if _, err := w.f.Write(frame); err != nil {
		return frameLoc{}, fmt.Errorf("store: writing compaction output: %w", err)
	}
	w.off += int64(len(frame))
	w.meta.note(seq, off)
	return frameLoc{seg: w.id, off: off, n: uint32(len(frame))}, nil
}

func (w *compactWriter) seal() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: syncing compaction output: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing compaction output: %w", err)
	}
	w.f = nil
	if err := writeSidecar(w.s.dir, w.id, w.meta.sidecar(w.off), fpwrap(nil)); err != nil {
		return fmt.Errorf("store: writing compaction sidecar: %w", err)
	}
	if err := fpcall(w.s.fail.compactRename); err != nil {
		return err
	}
	if err := os.Rename(w.tmp, segName(w.s.dir, w.id)); err != nil {
		return fmt.Errorf("store: installing compaction output: %w", err)
	}
	w.done = append(w.done, segResult{id: w.id, sc: w.meta.sidecar(w.off)})
	w.tmp = ""
	return nil
}

func (w *compactWriter) finish() ([]segResult, error) {
	if w.f != nil {
		if err := w.seal(); err != nil {
			return nil, err
		}
	}
	return w.done, nil
}

// abort cleans up an unfinished output. Already-renamed outputs stay:
// they hold valid duplicate frames that replay deduplicates and a later
// compaction merges away.
func (w *compactWriter) abort() {
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	if w.tmp != "" {
		_ = os.Remove(w.tmp)
		_ = os.Remove(idxName(w.s.dir, w.id))
		w.tmp = ""
	}
}

// Close seals nothing but makes everything durable: fsync the active
// segment, wait out background work, write a final snapshot (the
// fast-start path for the next open) and release handles.
func (s *segStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var firstErr error
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			firstErr = err
		}
	}
	s.mu.Unlock()

	// Wait out any in-flight compaction (it observes closed at its
	// next lock and stands down), then encode the final snapshot while
	// holding compactMu so no index flip can interleave. The active
	// handle closes only after the encode: the snapshot must record the
	// active segment's position so the next open resumes its replay at
	// the watermark offset instead of re-parsing the whole segment.
	s.compactMu.Lock()
	s.mu.Lock()
	var data []byte
	var wm uint64
	if s.snapDirty {
		data, wm = s.encodeSnapshotLocked()
	}
	if s.active != nil {
		if err := s.active.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.active = nil
	}
	s.mu.Unlock()
	s.compactMu.Unlock()
	s.wg.Wait()
	if data != nil {
		// A clean close (no appends, compactions or replayed tail since
		// open) skips this: rewriting an identical snapshot would make
		// every restart pay a full index serialization for nothing.
		s.persistSnapshot(data, wm)
	}

	s.readers.Lock()
	for id, f := range s.readers.m {
		_ = f.Close()
		delete(s.readers.m, id)
	}
	s.readers.Unlock()
	return firstErr
}
