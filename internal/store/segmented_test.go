package store

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// segOpen opens a segmented store on a fresh directory (or cfg.Path)
// with auto-close; crash tests open stores by hand so an abandoned
// instance never runs its orderly shutdown.
func segOpen(t *testing.T, cfg Config) *segStore {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "verdicts")
	}
	b, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b.(*segStore)
}

func ctxb() context.Context { return context.Background() }

// scanAll drains a backend through cursor pages of the given size.
func scanAll(t *testing.T, b Backend, q Query, pageSize int) []Record {
	t.Helper()
	var out []Record
	q.Limit = pageSize
	for {
		page, err := b.Scan(ctxb(), q)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		out = append(out, page.Records...)
		if page.NextCursor == "" {
			return out
		}
		q.Cursor = page.NextCursor
	}
}

func TestSegmentedAppendGetReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "verdicts")
	// A small segment size forces several seals so reopen crosses
	// segment boundaries.
	s := segOpen(t, Config{Path: dir, SegmentBytes: 2048})
	for i := 0; i < 40; i++ {
		r := rec("http://lure.test/"+strconv.Itoa(i), "http://land.test/"+strconv.Itoa(i), "fp", "", i%2 == 0)
		if err := s.Append(ctxb(), r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	got, ok, err := s.Get(ctxb(), "http://land.test/7")
	if err != nil || !ok || got.URL != "http://lure.test/7" {
		t.Fatalf("Get by landing = %+v ok=%v err=%v", got, ok, err)
	}
	got2, ok, err := s.Get(ctxb(), "http://lure.test/7")
	if err != nil || !ok || got2.Seq != got.Seq {
		t.Fatalf("Get by starting URL = %+v ok=%v err=%v, want seq %d", got2, ok, err, got.Seq)
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2 (rolls happened)", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := segOpen(t, Config{Path: dir, SegmentBytes: 2048})
	if s2.Len() != 40 {
		t.Fatalf("Len after reopen = %d, want 40", s2.Len())
	}
	// Clean shutdown wrote a snapshot covering everything: the reopen
	// replayed no tail.
	if st := s2.Stats(); st.TailReplayed != 0 || st.SnapshotSeq == 0 {
		t.Fatalf("fast-start stats = %+v, want TailReplayed=0 and a snapshot watermark", st)
	}
	// Sequence numbering continues after reopen.
	if err := s2.Append(ctxb(), rec("http://new.test/", "http://new.test/", "fp", "", false)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	r3, _, _ := s2.Get(ctxb(), "http://new.test/")
	if r3.Seq <= got.Seq {
		t.Fatalf("seq after reopen = %d, want > %d", r3.Seq, got.Seq)
	}
}

func TestSegmentedReplayWithoutSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "verdicts")
	s := segOpen(t, Config{Path: dir, SegmentBytes: 2048})
	for i := 0; i < 30; i++ {
		if err := s.Append(ctxb(), rec("http://u.test/"+strconv.Itoa(i), "http://u.test/"+strconv.Itoa(i), "fp", "", false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot: recovery must ignore it and rebuild the
	// identical view from the segments alone.
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := segOpen(t, Config{Path: dir, SegmentBytes: 2048})
	if s2.Len() != 30 {
		t.Fatalf("Len after corrupt-snapshot reopen = %d, want 30", s2.Len())
	}
	if st := s2.Stats(); st.TailReplayed != 30 {
		t.Fatalf("TailReplayed = %d, want 30 (full replay)", st.TailReplayed)
	}
	if _, ok, _ := s2.Get(ctxb(), "http://u.test/29"); !ok {
		t.Fatal("record lost on full replay")
	}
}

func TestSegmentedSupersedeAndCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "verdicts")
	s := segOpen(t, Config{Path: dir, SegmentBytes: 1024, CompactEvery: -1})
	// Many generations of the same few pages: most frames end up
	// superseded across several sealed segments.
	for i := 0; i < 60; i++ {
		r := rec("http://lure.test/", "http://land.test/"+strconv.Itoa(i%5), "fp", "brand.com", true)
		r.ScoredAt = r.ScoredAt.Add(time.Duration(i) * time.Minute)
		if err := s.Append(ctxb(), r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5 live pages", s.Len())
	}
	before := s.Stats()
	if before.Segments < 3 {
		t.Fatalf("Segments before compact = %d, want several", before.Segments)
	}
	if err := s.Compact(ctxb()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Compactions != 1 || after.Superseded == 0 {
		t.Fatalf("stats after compact = %+v, want 1 compaction and superseded frames", after)
	}
	if after.Segments >= before.Segments {
		t.Fatalf("Segments after compact = %d, want < %d", after.Segments, before.Segments)
	}
	// Every live record still answers, from its moved location.
	for i := 0; i < 5; i++ {
		got, ok, err := s.Get(ctxb(), "http://land.test/"+strconv.Itoa(i))
		if err != nil || !ok {
			t.Fatalf("Get after compact: ok=%v err=%v", ok, err)
		}
		if got.ScoredAt.Before(rec("", "", "", "", false).ScoredAt.Add(55 * time.Minute)) {
			t.Fatalf("stale generation survived compaction: %+v", got)
		}
	}
	// And the compacted layout replays identically.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := segOpen(t, Config{Path: dir, SegmentBytes: 1024})
	if s2.Len() != 5 {
		t.Fatalf("Len after compacted reopen = %d, want 5", s2.Len())
	}
}

func TestSegmentedAutomaticCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "verdicts")
	s := segOpen(t, Config{Path: dir, SegmentBytes: 512, CompactEvery: 8})
	for i := 0; i < 64; i++ {
		if err := s.Append(ctxb(), rec("http://l.test/", "http://l.test/", "fp", "", true)); err != nil {
			t.Fatal(err)
		}
	}
	// Background compaction needs a moment; poll rather than sleep a
	// fixed interval.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic compaction after 64 appends: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got, ok, _ := s.Get(ctxb(), "http://l.test/"); !ok || !got.Outcome.FinalPhish {
		t.Fatalf("live record wrong after auto compaction: %+v ok=%v", got, ok)
	}
}

// TestScanOrderDeterministic pins the ordering guarantee: every query
// path on every engine returns strictly descending Seq. The legacy
// engine's target-filtered path historically leaned on map slices;
// the shared pageLocked sort now pins it.
func TestScanOrderDeterministic(t *testing.T) {
	backends := map[string]Backend{}
	seg := segOpen(t, Config{Path: filepath.Join(t.TempDir(), "seg"), SegmentBytes: 1024})
	backends[BackendSegmented] = seg
	backends[BackendMemory] = newMemStore(Config{})
	leg, err := Open(Config{Path: filepath.Join(t.TempDir(), "v.jsonl"), Backend: BackendLegacy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = leg.Close() })
	backends[BackendLegacy] = leg

	queries := []Query{
		{},
		{Target: "brand.com"},
		{URL: "http://shared.test/"},
		{ModelVersion: "v2"},
		{PhishOnly: true},
		{Target: "brand.com", PhishOnly: true, Limit: 4},
	}
	for name, b := range backends {
		for i := 0; i < 30; i++ {
			r := rec("http://start.test/"+strconv.Itoa(i), "http://shared.test/", "fp"+strconv.Itoa(i%10), "", i%2 == 0)
			if i%3 == 0 {
				r.Target = "brand.com"
			}
			if i%2 == 1 {
				r.ModelVersion = "v2"
			}
			if err := b.Append(ctxb(), r); err != nil {
				t.Fatalf("%s: Append: %v", name, err)
			}
		}
		for qi, q := range queries {
			page, err := b.Scan(ctxb(), q)
			if err != nil {
				t.Fatalf("%s query %d: %v", name, qi, err)
			}
			for j := 1; j < len(page.Records); j++ {
				if page.Records[j-1].Seq <= page.Records[j].Seq {
					t.Fatalf("%s query %d: order not strictly descending at %d: %d then %d",
						name, qi, j, page.Records[j-1].Seq, page.Records[j].Seq)
				}
			}
			if len(page.Records) == 0 && !q.PhishOnly && q.Limit == 0 && q.Target == "" && q.URL == "" && q.ModelVersion == "" {
				t.Fatalf("%s: unfiltered scan returned nothing", name)
			}
		}
		// Select on the legacy engine directly keeps the same order.
		if name == BackendLegacy {
			lb := b.(*legacyBackend)
			out := lb.s.Select(Query{Target: "brand.com"})
			for j := 1; j < len(out); j++ {
				if out[j-1].Seq <= out[j].Seq {
					t.Fatalf("legacy Select by target: order violated at %d", j)
				}
			}
			// 10 generations carried the target but only the newest
			// per landing+fingerprint is live: i∈{21,24,27}.
			if len(out) != 3 {
				t.Fatalf("legacy Select by target = %d records, want 3", len(out))
			}
		}
	}
}

func TestScanCursorPagination(t *testing.T) {
	for _, backend := range []string{BackendSegmented, BackendLegacy, BackendMemory} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{Backend: backend, SegmentBytes: 1024}
			switch backend {
			case BackendSegmented:
				cfg.Path = filepath.Join(t.TempDir(), "seg")
			case BackendLegacy:
				cfg.Path = filepath.Join(t.TempDir(), "v.jsonl")
			}
			b, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = b.Close() })
			for i := 0; i < 23; i++ {
				r := rec("http://u.test/"+strconv.Itoa(i), "http://u.test/"+strconv.Itoa(i), "fp", "", i%2 == 0)
				if i%3 == 0 {
					r.Target = "brand.com"
				}
				if err := b.Append(ctxb(), r); err != nil {
					t.Fatal(err)
				}
			}
			// Page through everything: no duplicates, no gaps, newest
			// first end to end.
			all := scanAll(t, b, Query{}, 5)
			if len(all) != 23 {
				t.Fatalf("paged total = %d, want 23", len(all))
			}
			for j := 1; j < len(all); j++ {
				if all[j-1].Seq <= all[j].Seq {
					t.Fatalf("cross-page order violated at %d", j)
				}
			}
			// A filtered paged walk agrees with the one-shot query.
			filtered := scanAll(t, b, Query{Target: "brand.com"}, 3)
			oneShot, err := b.Scan(ctxb(), Query{Target: "brand.com"})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(filtered, oneShot.Records) {
				t.Fatalf("paged filter (%d) != one-shot (%d)", len(filtered), len(oneShot.Records))
			}
			// The final page reports exhaustion, not a dangling cursor.
			last, err := b.Scan(ctxb(), Query{Limit: 23})
			if err != nil {
				t.Fatal(err)
			}
			if last.NextCursor != "" {
				t.Fatalf("exact-limit page should exhaust, got cursor %q", last.NextCursor)
			}
			// Malformed cursors are rejected, not misread.
			if _, err := b.Scan(ctxb(), Query{Cursor: "not-a-cursor"}); !errors.Is(err, ErrBadCursor) {
				t.Fatalf("bad cursor error = %v, want ErrBadCursor", err)
			}
			// Appends after a cursor was issued do not disturb the walk.
			mid, err := b.Scan(ctxb(), Query{Limit: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Append(ctxb(), rec("http://late.test/", "http://late.test/", "fp", "", false)); err != nil {
				t.Fatal(err)
			}
			rest, err := b.Scan(ctxb(), Query{Limit: 1000, Cursor: mid.NextCursor})
			if err != nil {
				t.Fatal(err)
			}
			if len(mid.Records)+len(rest.Records) != 23 {
				t.Fatalf("resumed walk saw %d records, want 23 (late append excluded)", len(mid.Records)+len(rest.Records))
			}
		})
	}
}

// TestCrashRecoveryMatrix kills the store mid-append, mid-seal and
// mid-compaction and proves the sealed prefix never loses a verdict and
// the torn tail truncates cleanly.
func TestCrashRecoveryMatrix(t *testing.T) {
	open := func(t *testing.T, dir string) *segStore {
		b, err := Open(Config{Path: dir, SegmentBytes: 1024, CompactEvery: -1})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return b.(*segStore)
	}
	fill := func(t *testing.T, s *segStore, n int) {
		for i := 0; i < n; i++ {
			r := rec("http://lure.test/"+strconv.Itoa(i), "http://land.test/"+strconv.Itoa(i%7), "fp"+strconv.Itoa(i%3), "", i%2 == 0)
			if err := s.Append(ctxb(), r); err != nil {
				t.Fatalf("Append %d: %v", i, err)
			}
		}
	}
	verify := func(t *testing.T, dir string, wantLive int) {
		t.Helper()
		s := open(t, dir)
		defer s.Close()
		if s.Len() != wantLive {
			t.Fatalf("Len after recovery = %d, want %d", s.Len(), wantLive)
		}
		all := scanAll(t, s, Query{}, 9)
		if len(all) != wantLive {
			t.Fatalf("scan after recovery = %d records, want %d", len(all), wantLive)
		}
		seen := map[string]bool{}
		for _, r := range all {
			k := r.LandingURL + "\x00" + r.Fingerprint
			if seen[k] {
				t.Fatalf("duplicate live record after recovery: %q", k)
			}
			seen[k] = true
		}
		// Still appendable after every crash shape.
		if err := s.Append(ctxb(), rec("http://post.test/", "http://post.test/", "fp", "", false)); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
	}
	// 40 appends over 7 landings × 3 fingerprints → 21 live keys.
	const liveKeys = 21

	t.Run("mid-append", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "v")
		s := open(t, dir)
		fill(t, s, 40)
		s.mu.Lock()
		activeID, goodSize := s.activeID, s.activeOff
		s.mu.Unlock()
		// Abandon without Close (no snapshot, no final fsync), then
		// tear the active segment mid-frame: a plausible header
		// followed by a short, CRC-less payload.
		torn := []byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}
		f, err := os.OpenFile(segName(dir, activeID), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()
		verify(t, dir, liveKeys)
		if fi, err := os.Stat(segName(dir, activeID)); err == nil && fi.Size() > goodSize {
			// Recovery truncated the torn bytes... unless a post-crash
			// append from verify() reused the segment, which starts at
			// the truncated boundary. Either way no torn bytes remain:
			// reopening once more must still parse cleanly.
			b, err := Open(Config{Path: dir, SegmentBytes: 1024})
			if err != nil {
				t.Fatalf("re-reopen after truncation: %v", err)
			}
			b.Close()
		}
	})

	t.Run("mid-seal", func(t *testing.T) {
		for _, point := range []string{"before-sync", "before-sidecar"} {
			t.Run(point, func(t *testing.T) {
				dir := filepath.Join(t.TempDir(), "v")
				s := open(t, dir)
				fill(t, s, 40)
				boom := errors.New("injected crash")
				if point == "before-sync" {
					s.fail.sealSync = func() error { return boom }
				} else {
					s.fail.sealSidecar = func() error { return boom }
				}
				// Append until a seal is attempted and fails.
				var sawErr bool
				for i := 0; i < 200 && !sawErr; i++ {
					r := rec("http://roll.test/"+strconv.Itoa(i), "http://roll.test/"+strconv.Itoa(i), "fproll", "", false)
					if err := s.Append(ctxb(), r); err != nil {
						if !errors.Is(err, boom) {
							t.Fatalf("unexpected append error: %v", err)
						}
						sawErr = true
					}
				}
				if !sawErr {
					t.Fatal("seal failpoint never hit")
				}
				// Crash here (no Close). Every append that returned nil
				// must survive; count them from the index of the dying
				// store.
				wantLive := s.Len()
				verify(t, dir, wantLive)
			})
		}
	})

	t.Run("mid-compaction", func(t *testing.T) {
		for _, point := range []string{"rename", "install", "delete"} {
			t.Run(point, func(t *testing.T) {
				dir := filepath.Join(t.TempDir(), "v")
				s := open(t, dir)
				fill(t, s, 40)
				boom := errors.New("injected crash")
				switch point {
				case "rename":
					s.fail.compactRename = func() error { return boom }
				case "install":
					s.fail.compactInstall = func() error { return boom }
				case "delete":
					s.fail.compactDelete = func() error { return boom }
				}
				if err := s.Compact(ctxb()); !errors.Is(err, boom) {
					t.Fatalf("Compact error = %v, want injected crash", err)
				}
				verify(t, dir, liveKeys)
			})
		}
	})
}

// TestCompactionNeverBlocksAppends parks a compaction mid-flight (after
// its outputs are written, before the index flip — the point where a
// blocking design would hold the store lock) and asserts appends keep
// completing promptly. Run under -race this also proves the phases
// share state safely.
func TestCompactionNeverBlocksAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "v")
	b, err := Open(Config{Path: dir, SegmentBytes: 1024, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := b.(*segStore)
	defer s.Close()
	for i := 0; i < 60; i++ {
		if err := s.Append(ctxb(), rec("http://p.test/", "http://land.test/"+strconv.Itoa(i%4), "fp", "", true)); err != nil {
			t.Fatal(err)
		}
	}
	parked := make(chan struct{})
	release := make(chan struct{})
	s.fail.compactInstall = func() error {
		close(parked)
		<-release
		return nil
	}
	done := make(chan error, 1)
	go func() { done <- s.Compact(ctxb()) }()
	<-parked

	// The compaction is live and parked. Appends must not queue behind
	// it: each one is a lock-hop plus a buffered write, so even a slow
	// CI machine finishes far inside the bound.
	const bound = 1 * time.Second
	var worst time.Duration
	for i := 0; i < 50; i++ {
		start := time.Now()
		if err := s.Append(ctxb(), rec("http://during.test/"+strconv.Itoa(i), "http://during.test/"+strconv.Itoa(i), "fp", "", false)); err != nil {
			t.Fatalf("Append during compaction: %v", err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if worst > bound {
		t.Fatalf("append latency during compaction = %v, want < %v", worst, bound)
	}
	if s.Len() != 4+50 {
		t.Fatalf("Len = %d, want 54", s.Len())
	}
	if st := s.Stats(); st.Compactions != 1 || st.Superseded == 0 {
		t.Fatalf("stats = %+v, want a completed compaction", st)
	}
}

// TestMigration proves the one-shot JSONL→segmented migration preserves
// every record and every index.
func TestMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	leg, err := OpenLegacy(Config{Path: path, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		r := rec("http://start.test/"+strconv.Itoa(i), "http://land.test/"+strconv.Itoa(i%20), "fp"+strconv.Itoa(i%2), "", i%2 == 0)
		r.ScoredAt = base.Add(time.Duration(i) * time.Hour)
		if i%4 == 0 {
			r.Target = "brand.com"
		}
		if i%3 == 0 {
			r.ModelVersion = "v1"
		} else {
			r.ModelVersion = "v2"
		}
		if i == 13 {
			r.Error = "fetch: connection refused"
		}
		if err := leg.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	want := leg.Select(Query{})
	if err := leg.Close(); err != nil {
		t.Fatal(err)
	}

	// Opening the default backend over the JSONL file migrates it.
	b, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("Open (migrating): %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })
	if st, err := os.Stat(path); err != nil || !st.IsDir() {
		t.Fatalf("path after migration: %v (dir=%v), want segment directory", err, st != nil && st.IsDir())
	}
	if _, err := os.Stat(path + migrationBackupSuffix); err != nil {
		t.Fatalf("backup of original log missing: %v", err)
	}

	got := scanAll(t, b, Query{}, 7)
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("migrated records differ:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}
	// Every secondary index answers identically to pre-migration.
	checks := []Query{
		{Target: "brand.com"},
		{ModelVersion: "v1"},
		{URL: "http://land.test/3"},
		{URL: "http://start.test/3"},
		{Since: base.Add(24 * time.Hour), Until: base.Add(36 * time.Hour)},
		{PhishOnly: true},
	}
	legAgain, err := OpenLegacy(Config{Path: path + migrationBackupSuffix})
	if err != nil {
		t.Fatal(err)
	}
	defer legAgain.Close()
	for qi, q := range checks {
		wantRecs := legAgain.Select(q)
		page, err := b.Scan(ctxb(), q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		wj, _ := json.Marshal(wantRecs)
		gj, _ := json.Marshal(page.Records)
		if string(wj) != string(gj) {
			t.Fatalf("query %d differs after migration:\nwant %s\ngot  %s", qi, wj, gj)
		}
	}

	// Reopening is a no-op migration: still a directory, same records.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Len() != len(want) {
		t.Fatalf("Len after re-open = %d, want %d", b2.Len(), len(want))
	}
}

func TestMemoryBackend(t *testing.T) {
	b, err := Open(Config{Backend: BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Append(ctxb(), rec("http://m.test/", "http://m.test/", "fp", "brand.com", true)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (supersede)", b.Len())
	}
	got, ok, err := b.Get(ctxb(), "http://m.test/")
	if err != nil || !ok || got.Seq != 3 {
		t.Fatalf("Get = %+v ok=%v err=%v, want seq 3", got, ok, err)
	}
	if st := b.Stats(); st.Backend != BackendMemory || st.Superseded != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(ctxb(), Record{URL: "x", LandingURL: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestCursorCodec(t *testing.T) {
	for _, seq := range []uint64{0, 1, 42, 1 << 40} {
		seqOut, ok, err := parseCursor(encodeCursor(seq))
		if err != nil || !ok || seqOut != seq {
			t.Fatalf("roundtrip %d: %d %v %v", seq, seqOut, ok, err)
		}
	}
	if _, ok, err := parseCursor(""); err != nil || ok {
		t.Fatal("empty cursor must mean no cursor")
	}
	for _, bad := range []string{"zzz", "s1-", "s1-!!!", "s2-10"} {
		if _, _, err := parseCursor(bad); !errors.Is(err, ErrBadCursor) {
			t.Fatalf("parseCursor(%q) = %v, want ErrBadCursor", bad, err)
		}
	}
}

func TestSnapshotCodec(t *testing.T) {
	rows := []*entry{
		{seq: 1, landing: "http://a.test/", fp: "fp1", scoredAt: 12345, phish: true, seg: 1, off: 0, n: 100},
		{seq: 9, landing: "http://b.test/", start: "http://s.test/", target: "brand.com", model: "v3", scoredAt: -1, seg: 2, off: 4096, n: 220},
	}
	act := activeState{id: 3, off: 8192, meta: segMeta{count: 7, minSeq: 3, maxSeq: 9, sparse: []sparsePoint{{Seq: 3, Off: 0}}}}
	data := encodeSnapshot(10, 9, act, rows)
	got, nextSeq, wm, actOut, err := decodeSnapshot(data)
	if err != nil || nextSeq != 10 || wm != 9 {
		t.Fatalf("decode: %v nextSeq=%d wm=%d", err, nextSeq, wm)
	}
	if !reflect.DeepEqual(actOut, act) {
		t.Fatalf("active state differs: %+v vs %+v", actOut, act)
	}
	if len(got) != 2 || !reflect.DeepEqual(got[0], rows[0]) || !reflect.DeepEqual(got[1], rows[1]) {
		t.Fatalf("rows differ: %+v vs %+v", got, rows)
	}
	// Any corruption is detected, never half-loaded.
	for i := 0; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, _, _, _, err := decodeSnapshot(mut); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	if _, _, _, _, err := decodeSnapshot(data[:len(data)-2]); err == nil {
		t.Fatal("truncated snapshot went undetected")
	}
}

// TestStoreStress is the nightly 100k round-trip: append (with
// supersede churn), compact concurrently, reopen, verify. Gated behind
// STORE_STRESS=1 because it moves real data volumes.
func TestStoreStress(t *testing.T) {
	if os.Getenv("STORE_STRESS") == "" {
		t.Skip("set STORE_STRESS=1 (STORE_STRESS_N to size) to run")
	}
	n := 100_000
	if v := os.Getenv("STORE_STRESS_N"); v != "" {
		if p, err := strconv.Atoi(v); err == nil && p > 0 {
			n = p
		}
	}
	keys := n / 4 // 4 generations per page on average
	dir := filepath.Join(t.TempDir(), "stress")
	b, err := Open(Config{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		k := i % keys
		r := rec("http://lure.test/"+strconv.Itoa(i), "http://land.test/"+strconv.Itoa(k), "fp", "", i%2 == 0)
		if k%5 == 0 {
			r.Target = "brand" + strconv.Itoa(k%17) + ".com"
		}
		if err := b.Append(ctxb(), r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	t.Logf("appended %d records in %v", n, time.Since(start))
	if err := b.Compact(ctxb()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if b.Len() != keys {
		t.Fatalf("Len after churn = %d, want %d", b.Len(), keys)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	start = time.Now()
	b2, err := Open(Config{Path: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Logf("reopened %d live records in %v (stats %+v)", b2.Len(), time.Since(start), b2.Stats())
	defer b2.Close()
	if b2.Len() != keys {
		t.Fatalf("Len after reopen = %d, want %d", b2.Len(), keys)
	}
	// Spot-check: every page's newest generation survived.
	for k := 0; k < keys; k += keys / 100 {
		got, ok, err := b2.Get(ctxb(), "http://land.test/"+strconv.Itoa(k))
		if err != nil || !ok {
			t.Fatalf("Get key %d: ok=%v err=%v", k, ok, err)
		}
		if wantStart := "http://lure.test/" + strconv.Itoa(n-keys+k); got.URL != wantStart {
			t.Fatalf("key %d: newest generation = %q, want %q", k, got.URL, wantStart)
		}
	}
	cnt := 0
	q := Query{Limit: 1000}
	for {
		page, err := b2.Scan(ctxb(), q)
		if err != nil {
			t.Fatal(err)
		}
		cnt += len(page.Records)
		if page.NextCursor == "" {
			break
		}
		q.Cursor = page.NextCursor
	}
	if cnt != keys {
		t.Fatalf("full paged scan = %d, want %d", cnt, keys)
	}
}
