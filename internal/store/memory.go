package store

import (
	"context"
	"sync"
)

// memStore is the in-memory engine: the shared index with records held
// inline and nothing on disk. It exists for tests and for callers that
// want the Backend query surface without persistence.
type memStore struct {
	path       string
	maxExplain int

	mu     sync.Mutex
	ix     *memIndex
	closed bool

	appends     int64
	compactions int64
	superseded  int64
	explDropped int64
}

func newMemStore(cfg Config) *memStore {
	s := &memStore{path: cfg.Path, maxExplain: cfg.MaxExplainBytes, ix: newMemIndex()}
	if s.maxExplain == 0 {
		s.maxExplain = DefaultMaxExplainBytes
	}
	return s
}

func (s *memStore) Append(ctx context.Context, rec Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if prepare(&rec, s.ix.nextSeq, s.maxExplain) {
		s.explDropped++
	}
	e := metaOf(&rec)
	e.rec = &rec
	if displaced, _ := s.ix.insert(e); displaced != nil {
		// No disk to reclaim from: a superseded record is gone the
		// moment its replacement lands.
		s.superseded++
	}
	s.appends++
	return nil
}

func (s *memStore) Get(ctx context.Context, url string) (Record, bool, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Record{}, false, ErrClosed
	}
	if e := s.ix.get(url); e != nil {
		return *e.rec, true, nil
	}
	return Record{}, false, nil
}

func (s *memStore) Scan(ctx context.Context, q Query) (ScanPage, error) {
	cursor, hasCursor, err := parseCursor(q.Cursor)
	if err != nil {
		return ScanPage{}, err
	}
	if err := ctx.Err(); err != nil {
		return ScanPage{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ScanPage{}, ErrClosed
	}
	ents, more := s.ix.scan(q, cursor, hasCursor)
	recs := make([]Record, len(ents))
	for i, e := range ents {
		recs[i] = *e.rec
	}
	page := ScanPage{Records: recs}
	if more && len(recs) > 0 {
		page.NextCursor = encodeCursor(recs[len(recs)-1].Seq)
	}
	return page, nil
}

// Compact reclaims index holes (there is no log to rewrite).
func (s *memStore) Compact(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	live := s.ix.bySeq[:0]
	for _, e := range s.ix.bySeq {
		if !e.dead {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(s.ix.bySeq); i++ {
		s.ix.bySeq[i] = nil
	}
	s.ix.bySeq = live
	s.ix.holes = 0
	s.compactions++
	return nil
}

func (s *memStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Backend:             BackendMemory,
		Records:             s.ix.live(),
		Appends:             s.appends,
		Compactions:         s.compactions,
		Superseded:          s.superseded,
		ExplanationsDropped: s.explDropped,
	}
}

func (s *memStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.live()
}

func (s *memStore) Path() string { return s.path }

func (s *memStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
