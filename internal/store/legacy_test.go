package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"knowphish/internal/core"
)

func openTemp(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "verdicts.jsonl")
	}
	s, err := OpenLegacy(cfg)
	if err != nil {
		t.Fatalf("OpenLegacy: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func rec(url, landing, fp, target string, phish bool) Record {
	return Record{
		URL:         url,
		LandingURL:  landing,
		Fingerprint: fp,
		Target:      target,
		Outcome:     core.Outcome{FinalPhish: phish, Score: 0.9},
		ScoredAt:    time.Date(2026, 7, 29, 12, 0, 0, 0, time.UTC),
	}
}

func TestAppendGetReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.jsonl")
	s := openTemp(t, Config{Path: path})
	if err := s.Append(rec("http://lure.test/a", "http://land.test/", "fp1", "novabank.com", true)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append(rec("http://other.test/", "http://other.test/", "fp2", "", false)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	got, ok := s.Get("http://land.test/")
	if !ok || !got.Outcome.FinalPhish || got.Target != "novabank.com" {
		t.Fatalf("Get by landing = %+v, ok=%v", got, ok)
	}
	if got2, ok := s.Get("http://lure.test/a"); !ok || got2.Seq != got.Seq {
		t.Errorf("Get by starting URL = %+v, ok=%v, want same record", got2, ok)
	}

	// Reload from disk rebuilds the same view.
	if err := s.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after Reload = %d, want 2", s.Len())
	}
	got, ok = s.Get("http://land.test/")
	if !ok || got.Target != "novabank.com" || !got.Outcome.FinalPhish {
		t.Fatalf("after Reload: Get = %+v, ok=%v", got, ok)
	}

	// A fresh Store over the same file sees the same records, and
	// appends continue the sequence instead of reusing it.
	s2 := openTemp(t, Config{Path: path})
	if s2.Len() != 2 {
		t.Fatalf("fresh open Len = %d, want 2", s2.Len())
	}
	if err := s2.Append(rec("http://third.test/", "http://third.test/", "fp3", "", false)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	r3, _ := s2.Get("http://third.test/")
	if r3.Seq <= got.Seq {
		t.Errorf("seq after reopen = %d, want > %d", r3.Seq, got.Seq)
	}
}

func TestSupersedeAndCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.jsonl")
	s := openTemp(t, Config{Path: path, CompactEvery: -1})
	// Three verdicts for the same page (landing URL + fingerprint):
	// only the newest is live.
	for i := 0; i < 3; i++ {
		r := rec("http://lure.test/", "http://land.test/", "fp", "brand.com", i%2 == 0)
		r.ScoredAt = r.ScoredAt.Add(time.Duration(i) * time.Hour)
		if err := s.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Same landing URL, different content: a distinct page, kept.
	if err := s.Append(rec("http://lure.test/", "http://land.test/", "fp-other", "brand.com", true)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (one live per landing+fingerprint)", s.Len())
	}
	if got := len(s.Select(Query{Target: "brand.com"})); got != 2 {
		t.Fatalf("Select by target = %d records, want 2", got)
	}

	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(before), "\n"); n != 4 {
		t.Fatalf("log lines before compaction = %d, want 4", n)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(after), "\n"); n != 2 {
		t.Fatalf("log lines after compaction = %d, want 2", n)
	}
	st := s.Stats()
	if st.Compactions != 1 || st.Superseded != 2 {
		t.Errorf("stats after compaction = %+v, want 1 compaction, 2 superseded", st)
	}

	// The compacted log replays to the same live view, and the store
	// still accepts appends (write handle swapped correctly).
	if err := s.Reload(); err != nil {
		t.Fatalf("Reload after compaction: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after compacted reload = %d, want 2", s.Len())
	}
	got, ok := s.Get("http://land.test/")
	if !ok {
		t.Fatal("live record lost by compaction")
	}
	if got.Fingerprint != "fp-other" {
		// Get returns the newest by Seq; the later distinct page wins.
		t.Errorf("newest fingerprint = %q, want fp-other", got.Fingerprint)
	}
	if err := s.Append(rec("http://new.test/", "http://new.test/", "fp9", "", false)); err != nil {
		t.Fatalf("Append after compaction: %v", err)
	}
}

func TestAutomaticCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.jsonl")
	s := openTemp(t, Config{Path: path, CompactEvery: 4})
	for i := 0; i < 8; i++ {
		if err := s.Append(rec("http://l.test/", "http://l.test/", "fp", "", true)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Compactions < 2 {
		t.Errorf("compactions = %d, want >= 2 (every 4 appends)", st.Compactions)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Errorf("log lines = %d, want 1 (all superseded records reclaimed)", n)
	}
}

func TestReloadSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.jsonl")
	s := openTemp(t, Config{Path: path})
	for i := 0; i < 3; i++ {
		r := rec("http://a.test/", "http://a.test/", "fp", "", true)
		r.Fingerprint = string(rune('a' + i))
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"url":"http://torn`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2 := openTemp(t, Config{Path: path})
	if s2.Len() != 3 {
		t.Fatalf("Len after torn tail = %d, want 3 (torn line skipped)", s2.Len())
	}
	// The store must still be appendable and the new record must replay.
	if err := s2.Append(rec("http://b.test/", "http://b.test/", "x", "", false)); err != nil {
		t.Fatalf("Append after torn reload: %v", err)
	}
	if err := s2.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if _, ok := s2.Get("http://b.test/"); !ok {
		t.Error("record appended after torn tail lost on reload")
	}
}

func TestSelectFilters(t *testing.T) {
	s := openTemp(t, Config{})
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		r := rec("http://u.test/"+string(rune('a'+i)), "http://u.test/"+string(rune('a'+i)), "fp", "", i%2 == 0)
		if i%2 == 0 {
			r.Target = "brand.com"
		}
		r.ScoredAt = base.Add(time.Duration(i) * time.Hour)
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Select(Query{Target: "brand.com"})); got != 3 {
		t.Errorf("by target = %d, want 3", got)
	}
	if got := len(s.Select(Query{Since: base.Add(3 * time.Hour)})); got != 3 {
		t.Errorf("since +3h = %d, want 3", got)
	}
	if got := len(s.Select(Query{PhishOnly: true})); got != 3 {
		t.Errorf("phish only = %d, want 3", got)
	}
	if got := s.Select(Query{Limit: 2}); len(got) != 2 || got[0].Seq < got[1].Seq {
		t.Errorf("limit 2 newest-first violated: %+v", got)
	}
	if got := len(s.Select(Query{URL: "http://u.test/a"})); got != 1 {
		t.Errorf("by url = %d, want 1", got)
	}
	if got := len(s.Select(Query{})); got != 6 {
		t.Errorf("unfiltered = %d, want 6", got)
	}
}

func TestOpenValidates(t *testing.T) {
	if _, err := OpenLegacy(Config{}); err == nil {
		t.Error("empty path: want error")
	}
	if _, err := Open(Config{}); err == nil {
		t.Error("empty path (segmented): want error")
	}
	if _, err := Open(Config{Path: filepath.Join(t.TempDir(), "x"), Backend: "bogus"}); err == nil {
		t.Error("unknown backend: want error")
	}
	// Parent directories are created.
	path := filepath.Join(t.TempDir(), "deep", "nested", "v.jsonl")
	s, err := OpenLegacy(Config{Path: path})
	if err != nil {
		t.Fatalf("Open with nested path: %v", err)
	}
	_ = s.Close()
	// Appending to a closed store fails rather than panicking.
	if err := s.Append(Record{URL: "x", LandingURL: "x"}); err == nil {
		t.Error("Append after Close: want error")
	}
}

func TestSyncMode(t *testing.T) {
	s := openTemp(t, Config{Path: filepath.Join(t.TempDir(), "v.jsonl"), Sync: true})
	if err := s.Append(rec("http://s.test/", "http://s.test/", "fp", "", false)); err != nil {
		t.Fatalf("Append with Sync: %v", err)
	}
}
