package store

import "sort"

// entry is one live record's index row. Every engine shares it: the
// memory and legacy engines keep the record inline in rec; the
// segmented engine keeps only the on-disk location (seg/off/n) and
// loads the record from its segment on demand, so a store of millions
// of verdicts costs index-row memory, not record memory.
type entry struct {
	seq      uint64
	start    string // Record.URL ("" when equal to landing)
	landing  string
	fp       string
	target   string
	model    string
	source   string // Record.Source (feed-connector provenance)
	scoredAt int64  // Record.ScoredAt.UnixNano()
	phish    bool

	// dead marks a superseded entry still occupying its bySeq slot.
	// Holes keep bySeq binary-searchable (the seq stays); scans skip
	// them and maybeShrink reclaims them in bulk.
	dead bool

	rec *Record // inline record (memory and legacy engines)

	seg uint64 // segmented engine: segment ID holding the frame
	off int64  // frame offset within the segment
	n   uint32 // full frame length in bytes
}

// metaOf fills an index row from a record (location and rec left to the
// caller).
func metaOf(rec *Record) *entry {
	e := &entry{
		seq:      rec.Seq,
		landing:  rec.LandingURL,
		fp:       rec.Fingerprint,
		target:   rec.Target,
		model:    rec.ModelVersion,
		source:   rec.Source,
		scoredAt: rec.ScoredAt.UnixNano(),
		phish:    rec.Outcome.FinalPhish,
	}
	if rec.URL != rec.LandingURL {
		e.start = rec.URL
	}
	return e
}

// pageKey is the supersede identity — a struct key rather than a
// concatenated string so byKey lookups and bulk loads never allocate.
type pageKey struct{ landing, fp string }

func (e *entry) key() pageKey { return pageKey{e.landing, e.fp} }

// memIndex is the in-memory view of the live records, shared by all
// engines: the supersede map plus the secondary indexes the Scan
// filters and Get are served from. Not self-locking — the owning engine
// serializes access.
type memIndex struct {
	byKey map[pageKey]*entry // supersede identity → newest entry

	// bySeq is every entry ascending by seq; superseded entries stay as
	// dead holes until maybeShrink. It is both the default scan order
	// (walked backwards: newest first) and the snapshot iteration order.
	bySeq []*entry
	holes int

	byURL    map[string][]*entry // landing URL → entries, ascending seq
	byStart  map[string][]*entry // starting URL (≠ landing) → entries
	byTarget map[string][]*entry // identified target RDN → entries
	byModel  map[string][]*entry // model version → entries

	// lazy holds snapshot rows whose map indexes have not been built
	// yet (see bulkLoad/materialize). While set, bySeq aliases it and
	// byKey and the secondary maps are empty.
	lazy []*entry

	nextSeq uint64 // next sequence number to assign (max seen + 1)
}

func newMemIndex() *memIndex {
	return &memIndex{
		byKey:    make(map[pageKey]*entry),
		byURL:    make(map[string][]*entry),
		byStart:  make(map[string][]*entry),
		byTarget: make(map[string][]*entry),
		byModel:  make(map[string][]*entry),
		nextSeq:  1,
	}
}

// insert indexes e, superseding any older entry for the same key.
// Replay order is irrelevant: whatever order segments or log lines
// arrive in, the highest seq for a key wins, and a duplicate or older
// frame (compaction crash leftovers, snapshot overlap) is dropped.
// It returns the entry e displaced, and whether e was actually
// installed (false → e itself was the stale duplicate).
func (ix *memIndex) insert(e *entry) (displaced *entry, installed bool) {
	ix.materialize()
	if e.seq >= ix.nextSeq {
		ix.nextSeq = e.seq + 1
	}
	k := e.key()
	if old := ix.byKey[k]; old != nil {
		if old.seq >= e.seq {
			return nil, false
		}
		ix.unindex(old)
		displaced = old
	}
	ix.byKey[k] = e
	ix.bySeq = seqInsert(ix.bySeq, e)
	ix.byURL[e.landing] = seqInsert(ix.byURL[e.landing], e)
	if e.start != "" {
		ix.byStart[e.start] = seqInsert(ix.byStart[e.start], e)
	}
	if e.target != "" {
		ix.byTarget[e.target] = seqInsert(ix.byTarget[e.target], e)
	}
	if e.model != "" {
		ix.byModel[e.model] = seqInsert(ix.byModel[e.model], e)
	}
	ix.maybeShrink()
	return displaced, true
}

// bulkLoad seeds an empty index from snapshot rows. A snapshot this
// engine wrote holds live rows only — strictly seq-ascending, one per
// key — so bySeq can adopt the slice as-is and the map indexes can be
// deferred entirely: a read-mostly reopen (the common kpserve restart)
// serves newest-first scans straight off bySeq and never pays for maps
// it does not consult. The first operation that needs a map (an append,
// a Get, a filtered scan, compaction) triggers materialize. Anything
// violating the snapshot invariants (or a non-empty index) falls back
// to the checked insert path.
func (ix *memIndex) bulkLoad(rows []*entry) {
	ok := len(ix.byKey) == 0 && len(ix.bySeq) == 0 && ix.lazy == nil
	if ok {
		var last uint64
		for _, e := range rows {
			if e.seq <= last || e.dead {
				ok = false
				break
			}
			last = e.seq
		}
	}
	if !ok {
		for _, e := range rows {
			ix.insert(e)
		}
		return
	}
	ix.bySeq = rows // bulkLoad owns the slice; callers never reuse it
	ix.lazy = rows
	if n := len(rows); n > 0 && rows[n-1].seq >= ix.nextSeq {
		ix.nextSeq = rows[n-1].seq + 1
	}
}

// materialize builds the deferred map indexes for bulkLoad-ed rows.
// Presizing avoids the rehash cascade of growing a map to 100k keys one
// insert at a time, and first-entry lists are full-capacity subslices
// of rows itself (one backing array for the whole index) rather than
// 100k single-element allocations; the capped cap makes a later append
// copy out instead of clobbering the neighboring row.
func (ix *memIndex) materialize() {
	rows := ix.lazy
	if rows == nil {
		return
	}
	ix.lazy = nil
	byKey := make(map[pageKey]*entry, len(rows))
	for _, e := range rows {
		k := e.key()
		if _, dup := byKey[k]; dup {
			// A duplicate key slipped past the CRC (hand-edited
			// snapshot): re-insert everything through the checked path.
			ix.bySeq = nil
			for _, e := range rows {
				ix.insert(e)
			}
			return
		}
		byKey[k] = e
	}
	byURL := make(map[string][]*entry, len(rows))
	for i, e := range rows {
		if cur, seen := byURL[e.landing]; seen {
			byURL[e.landing] = append(cur, e)
		} else {
			byURL[e.landing] = rows[i : i+1 : i+1]
		}
		if e.start != "" {
			if cur, seen := ix.byStart[e.start]; seen {
				ix.byStart[e.start] = append(cur, e)
			} else {
				ix.byStart[e.start] = rows[i : i+1 : i+1]
			}
		}
		if e.target != "" {
			ix.byTarget[e.target] = append(ix.byTarget[e.target], e)
		}
		if e.model != "" {
			ix.byModel[e.model] = append(ix.byModel[e.model], e)
		}
	}
	ix.byKey = byKey
	ix.byURL = byURL
}

// live returns the number of live (non-superseded) entries.
func (ix *memIndex) live() int { return len(ix.bySeq) - ix.holes }

// unindex removes an entry from the secondary indexes and turns its
// bySeq slot into a dead hole (an O(1) supersede; bulk reclaim happens
// in maybeShrink so a hot supersede path never memmoves the whole
// sequence slice).
func (ix *memIndex) unindex(old *entry) {
	old.dead = true
	old.rec = nil
	ix.holes++
	ix.byURL[old.landing] = seqRemove(ix.byURL, old.landing, old)
	if old.start != "" {
		ix.byStart[old.start] = seqRemove(ix.byStart, old.start, old)
	}
	if old.target != "" {
		ix.byTarget[old.target] = seqRemove(ix.byTarget, old.target, old)
	}
	if old.model != "" {
		ix.byModel[old.model] = seqRemove(ix.byModel, old.model, old)
	}
}

// maybeShrink compacts bySeq once dead holes outnumber live entries
// (amortized O(1) per supersede).
func (ix *memIndex) maybeShrink() {
	if ix.holes < 1024 || ix.holes*2 < len(ix.bySeq) {
		return
	}
	live := ix.bySeq[:0]
	for _, e := range ix.bySeq {
		if !e.dead {
			live = append(live, e)
		}
	}
	// Zero the reclaimed tail so dead entries don't leak through the
	// retained backing array.
	for i := len(live); i < len(ix.bySeq); i++ {
		ix.bySeq[i] = nil
	}
	ix.bySeq = live
	ix.holes = 0
}

// get returns the newest entry whose landing or starting URL equals
// url, or nil.
func (ix *memIndex) get(url string) *entry {
	ix.materialize()
	var best *entry
	if s := ix.byURL[url]; len(s) > 0 {
		best = s[len(s)-1]
	}
	if s := ix.byStart[url]; len(s) > 0 {
		if e := s[len(s)-1]; best == nil || e.seq > best.seq {
			best = e
		}
	}
	return best
}

// scan walks the narrowest applicable index newest-first and collects
// up to limit entries matching q (limit <= 0 → unbounded), starting
// strictly below cursor when hasCursor. more reports whether at least
// one further matching entry exists past the returned page.
func (ix *memIndex) scan(q Query, cursor uint64, hasCursor bool) (out []*entry, more bool) {
	var lists [][]*entry
	switch {
	case q.Target != "":
		ix.materialize()
		lists = [][]*entry{ix.byTarget[q.Target]}
	case q.URL != "":
		ix.materialize()
		lists = [][]*entry{ix.byURL[q.URL], ix.byStart[q.URL]}
	case q.ModelVersion != "":
		ix.materialize()
		lists = [][]*entry{ix.byModel[q.ModelVersion]}
	default:
		lists = [][]*entry{ix.bySeq} // no map needed; stays fast on a lazy index
	}
	// Merge-walk the candidate lists backwards (each ascending by seq)
	// so the result is strictly descending — the deterministic order
	// every query path guarantees and cursors encode.
	pos := make([]int, len(lists))
	for i, l := range lists {
		pos[i] = len(l) - 1
	}
	for {
		best := -1
		for i, l := range lists {
			if pos[i] >= 0 && (best < 0 || l[pos[i]].seq > lists[best][pos[best]].seq) {
				best = i
			}
		}
		if best < 0 {
			return out, false
		}
		e := lists[best][pos[best]]
		pos[best]--
		if e.dead || (hasCursor && e.seq >= cursor) || !matches(e, q) {
			continue
		}
		if q.Limit > 0 && len(out) >= q.Limit {
			return out, true
		}
		out = append(out, e)
	}
}

// matches applies the Query filters to an index row.
func matches(e *entry, q Query) bool {
	if q.Target != "" && e.target != q.Target {
		return false
	}
	if q.URL != "" && e.landing != q.URL && e.start != q.URL {
		return false
	}
	if q.ModelVersion != "" && e.model != q.ModelVersion {
		return false
	}
	// Source has no dedicated index: its cardinality is the connector
	// count (a handful), so a per-source list would cover most of the
	// log anyway — filtering the seq walk costs the same and keeps the
	// index (and its snapshot) lean.
	if q.Source != "" && e.source != q.Source {
		return false
	}
	if !q.Since.IsZero() && e.scoredAt < q.Since.UnixNano() {
		return false
	}
	if !q.Until.IsZero() && e.scoredAt >= q.Until.UnixNano() {
		return false
	}
	if q.PhishOnly && !e.phish {
		return false
	}
	return true
}

// seqInsert adds e to a seq-ascending slice. Appends (the live path)
// are O(1); out-of-order replay falls back to a binary-searched insert.
func seqInsert(s []*entry, e *entry) []*entry {
	if n := len(s); n == 0 || s[n-1].seq < e.seq {
		return append(s, e)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].seq >= e.seq })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// seqRemove deletes e from the slice at m[k] (emptied keys are removed
// from the map so one-shot URLs don't pin empty slices forever).
func seqRemove(m map[string][]*entry, k string, e *entry) []*entry {
	s := m[k]
	i := sort.Search(len(s), func(i int) bool { return s[i].seq >= e.seq })
	if i >= len(s) || s[i] != e {
		return s
	}
	if len(s) == 1 {
		// Never write into a single-entry list: materialize builds those
		// as subslices of the bySeq/snapshot backing array, so nilling
		// the slot would punch a nil into bySeq and crash the next scan.
		delete(m, k)
		return nil
	}
	copy(s[i:], s[i+1:])
	s[len(s)-1] = nil
	s = s[:len(s)-1]
	return s
}
