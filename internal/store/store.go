// Package store is the durable verdict store of the feed-ingestion
// pipeline: every scored URL becomes a Record, persisted by a pluggable
// storage engine behind the Backend interface and queryable through
// secondary indexes (by URL, by identified target brand, by model
// version, by time range) with cursor-based pagination.
//
// Three engines implement Backend:
//
//   - segmented (the default): a segmented write-ahead log. Records are
//     appended to a fixed-size active segment as CRC-framed JSON;
//     full segments are sealed with a per-segment sparse index sidecar
//     and become immutable. Only the in-memory index (seq, URLs,
//     target, model version, timestamp, on-disk location) is held in
//     RAM — records are read back from their segment on demand, so
//     memory stays proportional to the index, not the log. Recovery
//     loads a binary snapshot of the index plus the log tail past the
//     snapshot's watermark (skipping sealed segments the snapshot
//     already covers), and truncates a torn tail on the active segment
//     only. Background merge compaction rewrites sealed segments
//     dropping superseded verdicts (an older record for the same
//     landing URL + content fingerprint) without ever blocking appends:
//     sealed segments are immutable, so the rewrite happens outside the
//     store lock and only the index repointing takes it.
//   - memory: the same index with records held in RAM and no files —
//     the test engine.
//   - legacy: the original single-file JSONL log (one self-contained
//     JSON document per line, whole-file reload and compaction),
//     kept as an adapter for existing logs. Open migrates a legacy
//     file to the segmented layout one-shot when asked for the
//     segmented engine over a path that holds a JSONL log.
//
// This is the persistence layer the paper's deployment sketch (Section
// VI) needs but the batch evaluation never built: verdicts outlive the
// process, and a restarted service answers queries about everything it
// ever scored — at a scale (months of traffic, millions of verdicts)
// the single-file log could not reopen in bounded time.
package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/obs"
)

// Backend names accepted by Config.Backend.
const (
	// BackendSegmented is the segmented write-ahead log, the default.
	BackendSegmented = "segmented"
	// BackendLegacy is the single-file JSONL log.
	BackendLegacy = "legacy"
	// BackendMemory is the in-memory engine (tests; nothing persists).
	BackendMemory = "memory"
)

// Defaults for Config zero values.
const (
	// DefaultCompactEvery is the append count between automatic
	// compactions.
	DefaultCompactEvery = 4096
	// DefaultMaxExplainBytes is the per-record explanation size cap.
	DefaultMaxExplainBytes = 8192
	// DefaultSegmentBytes is the segmented engine's segment size: the
	// active segment seals and a new one opens when it would grow past
	// this.
	DefaultSegmentBytes = 4 << 20
	// DefaultSnapshotEvery is the segmented engine's append count
	// between periodic index snapshots (snapshots are also written on
	// compaction and Close, so a cleanly closed store always fast-starts).
	DefaultSnapshotEvery = 65536
)

// Record is one persisted verdict: the URL as it entered the feed, where
// it landed, what the pipeline decided, and which brand (if any) target
// identification named.
type Record struct {
	// Seq orders records; later records supersede earlier ones for the
	// same landing URL + fingerprint. Assigned by Append.
	Seq uint64 `json:"seq"`
	// URL is the starting URL as submitted to the feed.
	URL string `json:"url"`
	// LandingURL is where the crawl ended up.
	LandingURL string `json:"landing_url"`
	// RDN is the registered domain of the landing URL ("" for IP hosts).
	RDN string `json:"rdn,omitempty"`
	// Fingerprint is the content fingerprint (webpage.Fingerprint) of
	// the scored snapshot. Records sharing LandingURL+Fingerprint are
	// verdicts about the same page; only the newest matters.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Outcome is the pipeline verdict.
	Outcome core.Outcome `json:"outcome"`
	// ModelVersion is the registry version of the detector that produced
	// the verdict ("" when the detector was never registered). It makes
	// the log's history attributable across champion hot-swaps: records
	// written mid-promotion name whichever model actually scored them.
	ModelVersion string `json:"model_version,omitempty"`
	// Explanation is the per-feature evidence behind the verdict, when
	// the feed scored with an explain level and the serialized evidence
	// fit under the store's size cap (Config.MaxExplainBytes).
	Explanation *core.Explanation `json:"explanation,omitempty"`
	// Target is the top identified target RDN for phishing verdicts
	// ("" when identification did not run or named nothing).
	Target string `json:"target,omitempty"`
	// Source names the feed connector that produced the URL ("" for
	// URLs submitted directly, e.g. over POST /v1/feed) — the
	// provenance that distinguishes a PhishTank-style report from a
	// benign-baseline crawl in the same log. Omitted when empty, so
	// pre-provenance logs render byte-identically.
	Source string `json:"source,omitempty"`
	// ScoredAt is when the verdict was produced (UTC).
	ScoredAt time.Time `json:"scored_at"`
	// Error records a terminal ingestion failure (e.g. unreachable
	// after retries) instead of an outcome.
	Error string `json:"error,omitempty"`
}

// key is the supersede identity: verdicts sharing it describe the same
// page content at the same address, and only the newest one is live.
func (r *Record) key() string { return r.LandingURL + "\x00" + r.Fingerprint }

// Config assembles a Backend.
type Config struct {
	// Path locates the store: a directory for the segmented engine, a
	// JSONL file for the legacy engine (created, with parents, if
	// missing). Ignored by the memory engine. Required otherwise.
	Path string
	// Backend selects the engine: BackendSegmented (the default, ""),
	// BackendLegacy or BackendMemory. Opening the segmented engine over
	// a path that holds a legacy JSONL file migrates it one-shot: the
	// records are rewritten into a segment directory at Path and the
	// original file is kept beside it as "<Path>.pre-migration.jsonl".
	Backend string
	// Sync forces an fsync after every append. Durable against power
	// loss, but serializes appends on disk latency; leave false when
	// the OS page cache is trustworthy enough (the default, matching
	// most log pipelines). Sealed segments are always fsynced before
	// the seal is recorded, whatever this says.
	Sync bool
	// CompactEvery triggers compaction after that many appends
	// (0 → DefaultCompactEvery, negative → never automatically). The
	// segmented engine compacts in the background; appends never wait.
	CompactEvery int
	// MaxExplainBytes caps the serialized size of a record's
	// Explanation (0 → DefaultMaxExplainBytes, negative → never
	// persist explanations). Oversized evidence is dropped — the
	// verdict itself is always kept — and counted in Stats: a full
	// explanation of a 212-feature model can dwarf the verdict it
	// explains, and an append-only log amplifies that forever.
	MaxExplainBytes int
	// SegmentBytes is the segmented engine's segment size
	// (0 → DefaultSegmentBytes). Ignored by the other engines.
	SegmentBytes int
	// SnapshotEvery is the segmented engine's append count between
	// periodic index snapshots (0 → DefaultSnapshotEvery, negative →
	// snapshot only on compaction and Close). Ignored by the other
	// engines.
	SnapshotEvery int
	// Logger receives the engine's structured logs — compaction results
	// and failures, legacy-log migration, recovery replay (nil →
	// discard).
	Logger *slog.Logger
}

// Stats are the store counters exported at /metrics.
type Stats struct {
	// Backend names the engine serving the store.
	Backend string `json:"backend,omitempty"`
	// Records is the number of live (indexed) verdicts.
	Records int `json:"records"`
	// Appends counts records written since Open.
	Appends int64 `json:"appends"`
	// Compactions counts log rewrites since Open.
	Compactions int64 `json:"compactions"`
	// Superseded counts records dropped by compaction since Open.
	Superseded int64 `json:"superseded"`
	// CompactErrors counts automatic compactions that failed (the
	// triggering append itself was durable; the rewrite is retried at
	// the next trigger).
	CompactErrors int64 `json:"compact_errors,omitempty"`
	// ExplanationsDropped counts appended records whose evidence was
	// discarded for exceeding the explanation size cap.
	ExplanationsDropped int64 `json:"explanations_dropped,omitempty"`
	// Segments is the segment-file count of the segmented engine.
	Segments int `json:"segments,omitempty"`
	// SnapshotSeq is the watermark of the last index snapshot written
	// by the segmented engine (0 → none yet this process).
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	// TailReplayed counts records replayed past the snapshot watermark
	// when the store was opened — the cost of the last fast-start.
	TailReplayed int64 `json:"tail_replayed,omitempty"`
}

// Query filters the live records. Zero-valued fields match everything.
// All query paths return records newest-first (strictly descending
// Seq) — a deterministic order that pagination cursors rely on.
type Query struct {
	// Target restricts to records whose identified target RDN matches.
	Target string
	// URL restricts to records whose landing or starting URL matches.
	URL string
	// ModelVersion restricts to records scored by that registry version.
	ModelVersion string
	// Source restricts to records ingested through that feed connector
	// (Record.Source).
	Source string
	// Since restricts to records scored at or after this time
	// (inclusive lower bound).
	Since time.Time
	// Until restricts to records scored before this time (exclusive
	// upper bound; half-open [Since, Until) ranges compose cleanly).
	Until time.Time
	// PhishOnly restricts to final phishing verdicts.
	PhishOnly bool
	// Limit caps the page size (0 → no cap). Newest first.
	Limit int
	// Cursor resumes a paginated Scan where the previous page left off
	// (the previous ScanPage.NextCursor). Empty starts from the newest
	// record. Cursors are opaque; they stay valid across appends and
	// compactions (new records land after the cursor position and are
	// not seen by an in-progress walk).
	Cursor string
}

// ScanPage is one page of a cursor-paginated Scan.
type ScanPage struct {
	// Records are the matching records, newest first.
	Records []Record `json:"records"`
	// NextCursor resumes the scan after the last record of this page.
	// Empty when the scan is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
}

// ErrBadCursor reports a Query.Cursor that is not a cursor this store
// issued.
var ErrBadCursor = errors.New("store: malformed scan cursor")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// cursorPrefix versions the cursor wire format.
const cursorPrefix = "s1-"

// encodeCursor makes the opaque resume token for "records older than
// seq".
func encodeCursor(seq uint64) string {
	return cursorPrefix + strconv.FormatUint(seq, 36)
}

// parseCursor validates and decodes a Query.Cursor ("" → no cursor).
func parseCursor(s string) (seq uint64, ok bool, err error) {
	if s == "" {
		return 0, false, nil
	}
	raw, found := strings.CutPrefix(s, cursorPrefix)
	if !found {
		return 0, false, fmt.Errorf("%w: %q", ErrBadCursor, s)
	}
	seq, perr := strconv.ParseUint(raw, 36, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("%w: %q", ErrBadCursor, s)
	}
	return seq, true, nil
}

// Backend is the pluggable verdict-store engine: append-only writes,
// point lookups, cursor-paginated scans over the secondary indexes,
// and compaction that drops superseded verdicts. All implementations
// are safe for concurrent use; every method observes ctx.
type Backend interface {
	// Append assigns the record a sequence number and timestamp (when
	// unset), persists it and indexes it.
	Append(ctx context.Context, rec Record) error
	// Get returns the newest record whose landing URL or starting URL
	// equals url.
	Get(ctx context.Context, url string) (Record, bool, error)
	// Scan returns one page of live records matching q, newest first,
	// with a cursor resuming after the page's last record.
	Scan(ctx context.Context, q Query) (ScanPage, error)
	// Compact reclaims superseded records. The segmented engine merges
	// sealed segments in place without blocking concurrent appends.
	Compact(ctx context.Context) error
	// Stats returns the engine counters.
	Stats() Stats
	// Len returns the number of live records.
	Len() int
	// Path locates the store on disk ("" for the memory engine).
	Path() string
	// Close flushes and closes the store. Further appends fail.
	Close() error
}

// Open opens (creating if necessary) the store described by cfg and
// returns its engine behind the Backend interface. With the default
// segmented backend, a cfg.Path holding a legacy JSONL log is migrated
// one-shot into the segmented layout first (the original file survives
// as "<Path>.pre-migration.jsonl").
func Open(cfg Config) (Backend, error) {
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	switch cfg.Backend {
	case BackendMemory:
		return newMemStore(cfg), nil
	case BackendLegacy:
		s, err := openLegacy(cfg)
		if err != nil {
			return nil, err
		}
		return &legacyBackend{s: s}, nil
	case "", BackendSegmented:
		if cfg.Path == "" {
			return nil, errors.New("store: Config.Path is required")
		}
		if err := maybeMigrate(cfg); err != nil {
			return nil, fmt.Errorf("store: migrating legacy log %s: %w", cfg.Path, err)
		}
		return openSegmented(cfg)
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want %q, %q or %q)",
			cfg.Backend, BackendSegmented, BackendLegacy, BackendMemory)
	}
}

// prepare fills a record's append-time fields: sequence number,
// timestamp, and the explanation size cap. It returns whether oversized
// evidence was dropped.
func prepare(rec *Record, seq uint64, maxExplain int) (explainDropped bool) {
	rec.Seq = seq
	if rec.ScoredAt.IsZero() {
		rec.ScoredAt = time.Now().UTC()
	}
	if rec.Explanation == nil {
		return false
	}
	drop := maxExplain < 0
	if !drop {
		// This encodes the explanation once for measurement and the
		// record marshal that follows encodes it again — accepted:
		// evidence persistence is an opt-in diagnostic path, and
		// splicing a pre-encoded RawMessage would leak wire concerns
		// into the Record type every reader shares.
		ej, err := json.Marshal(rec.Explanation)
		drop = err != nil || len(ej) > maxExplain
	}
	if drop {
		// The verdict is the durable fact; oversized evidence is
		// recomputable on demand and not worth log amplification.
		rec.Explanation = nil
	}
	return drop
}
