// Package store is the durable verdict store of the feed-ingestion
// pipeline: every scored URL becomes a Record appended to a JSONL log on
// disk and indexed in memory by URL and by identified target. The log is
// append-only — one self-contained JSON document per line, written in a
// single write(2) call — so a crash can at worst truncate the final
// line, which Reload detects and skips. Compaction periodically rewrites
// the log dropping superseded verdicts (an older record for the same
// landing URL + content fingerprint) via a temp-file + rename so a crash
// mid-compaction leaves either the old log or the new one, never a mix.
//
// This is the persistence layer the paper's deployment sketch (Section
// VI) needs but the batch evaluation never built: verdicts outlive the
// process, and a restarted service answers queries about everything it
// ever scored.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"knowphish/internal/core"
)

// Record is one persisted verdict: the URL as it entered the feed, where
// it landed, what the pipeline decided, and which brand (if any) target
// identification named.
type Record struct {
	// Seq orders records; later records supersede earlier ones for the
	// same landing URL + fingerprint. Assigned by Append.
	Seq uint64 `json:"seq"`
	// URL is the starting URL as submitted to the feed.
	URL string `json:"url"`
	// LandingURL is where the crawl ended up.
	LandingURL string `json:"landing_url"`
	// RDN is the registered domain of the landing URL ("" for IP hosts).
	RDN string `json:"rdn,omitempty"`
	// Fingerprint is the content fingerprint (webpage.Fingerprint) of
	// the scored snapshot. Records sharing LandingURL+Fingerprint are
	// verdicts about the same page; only the newest matters.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Outcome is the pipeline verdict.
	Outcome core.Outcome `json:"outcome"`
	// ModelVersion is the registry version of the detector that produced
	// the verdict ("" when the detector was never registered). It makes
	// the log's history attributable across champion hot-swaps: records
	// written mid-promotion name whichever model actually scored them.
	ModelVersion string `json:"model_version,omitempty"`
	// Explanation is the per-feature evidence behind the verdict, when
	// the feed scored with an explain level and the serialized evidence
	// fit under the store's size cap (Config.MaxExplainBytes).
	Explanation *core.Explanation `json:"explanation,omitempty"`
	// Target is the top identified target RDN for phishing verdicts
	// ("" when identification did not run or named nothing).
	Target string `json:"target,omitempty"`
	// ScoredAt is when the verdict was produced (UTC).
	ScoredAt time.Time `json:"scored_at"`
	// Error records a terminal ingestion failure (e.g. unreachable
	// after retries) instead of an outcome.
	Error string `json:"error,omitempty"`
}

// Config assembles a Store.
type Config struct {
	// Path is the JSONL log file; created (with parent directories) if
	// missing. Required.
	Path string
	// Sync forces an fsync after every append. Durable against power
	// loss, but serializes appends on disk latency; leave false when
	// the OS page cache is trustworthy enough (the default, matching
	// most log pipelines).
	Sync bool
	// CompactEvery triggers compaction after that many appends
	// (0 → DefaultCompactEvery, negative → never automatically).
	CompactEvery int
	// MaxExplainBytes caps the serialized size of a record's
	// Explanation (0 → DefaultMaxExplainBytes, negative → never
	// persist explanations). Oversized evidence is dropped — the
	// verdict itself is always kept — and counted in Stats: a full
	// explanation of a 212-feature model can dwarf the verdict it
	// explains, and an append-only log amplifies that forever.
	MaxExplainBytes int
}

// DefaultCompactEvery is the append count between automatic compactions.
const DefaultCompactEvery = 4096

// DefaultMaxExplainBytes is the per-record explanation size cap.
const DefaultMaxExplainBytes = 8192

// Stats are the store counters exported at /metrics.
type Stats struct {
	// Records is the number of live (indexed) verdicts.
	Records int `json:"records"`
	// Appends counts records written since Open.
	Appends int64 `json:"appends"`
	// Compactions counts log rewrites since Open.
	Compactions int64 `json:"compactions"`
	// Superseded counts records dropped by compaction since Open.
	Superseded int64 `json:"superseded"`
	// CompactErrors counts automatic compactions that failed (the
	// triggering append itself was durable; the rewrite is retried at
	// the next trigger).
	CompactErrors int64 `json:"compact_errors,omitempty"`
	// ExplanationsDropped counts appended records whose evidence was
	// discarded for exceeding the explanation size cap.
	ExplanationsDropped int64 `json:"explanations_dropped,omitempty"`
}

// Store is a durable verdict store. All methods are safe for concurrent
// use.
type Store struct {
	mu   sync.Mutex
	path string
	sync bool
	file *os.File

	nextSeq      uint64
	sinceCompact int
	compactEvery int
	// deadOnDisk counts log lines superseded by a later append — what
	// the next compaction will reclaim.
	deadOnDisk int64

	// byKey holds the newest record per landing URL + fingerprint — the
	// identity compaction preserves. byURL and byTarget index into the
	// same records.
	byKey    map[string]*Record
	byURL    map[string][]*Record // landing URL → records, append order
	byStart  map[string][]*Record // starting URL → records, append order
	byTarget map[string][]*Record // identified target RDN → records

	maxExplain int

	appends       int64
	compactions   int64
	superseded    int64
	compactErrors int64
	explDropped   int64
}

// Open opens (creating if necessary) the store at cfg.Path and replays
// the existing log into the in-memory index.
func Open(cfg Config) (*Store, error) {
	if cfg.Path == "" {
		return nil, errors.New("store: Config.Path is required")
	}
	if dir := filepath.Dir(cfg.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", dir, err)
		}
	}
	s := &Store{
		path:         cfg.Path,
		sync:         cfg.Sync,
		compactEvery: cfg.CompactEvery,
		maxExplain:   cfg.MaxExplainBytes,
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if s.maxExplain == 0 {
		s.maxExplain = DefaultMaxExplainBytes
	}
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload closes the log, re-reads it from disk and rebuilds the index —
// the startup path, also usable to pick up a log replaced underneath the
// process. Counters (appends, compactions) survive; the index is rebuilt
// from scratch.
func (s *Store) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reloadLocked()
}

func (s *Store) reloadLocked() error {
	if s.file != nil {
		_ = s.file.Close()
		s.file = nil
	}
	s.byKey = make(map[string]*Record)
	s.byURL = make(map[string][]*Record)
	s.byStart = make(map[string][]*Record)
	s.byTarget = make(map[string][]*Record)
	s.nextSeq = 1
	s.sinceCompact = 0
	s.deadOnDisk = 0

	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening %s: %w", s.path, err)
	}
	// Replay line by line, tracking the byte offset of the last cleanly
	// terminated, parseable line. Anything past it — an unterminated
	// tail or a corrupt line — is the residue of a torn write (crash
	// mid-append); truncate it away so new appends start on a clean
	// line boundary instead of gluing onto the fragment.
	r := bufio.NewReaderSize(f, 64<<10)
	var good int64
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			if rerr == io.EOF {
				break // any bytes in line are an unterminated torn tail
			}
			_ = f.Close()
			return fmt.Errorf("store: reading %s: %w", s.path, rerr)
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec Record
			if err := json.Unmarshal(trimmed, &rec); err != nil {
				break // corrupt line; nothing after it can be trusted
			}
			s.indexLocked(&rec)
		}
		good += int64(len(line))
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
	}
	_ = f.Close()
	s.file, err = os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening %s: %w", s.path, err)
	}
	return nil
}

// indexLocked installs rec into the in-memory maps, superseding any older
// record with the same landing URL + fingerprint.
func (s *Store) indexLocked(rec *Record) {
	if rec.Seq >= s.nextSeq {
		s.nextSeq = rec.Seq + 1
	}
	key := rec.LandingURL + "\x00" + rec.Fingerprint
	if old, ok := s.byKey[key]; ok {
		s.dropLocked(old)
		s.deadOnDisk++
	}
	s.byKey[key] = rec
	s.byURL[rec.LandingURL] = append(s.byURL[rec.LandingURL], rec)
	if rec.URL != rec.LandingURL {
		s.byStart[rec.URL] = append(s.byStart[rec.URL], rec)
	}
	if rec.Target != "" {
		s.byTarget[rec.Target] = append(s.byTarget[rec.Target], rec)
	}
}

// dropLocked removes a superseded record from the secondary indexes.
func (s *Store) dropLocked(old *Record) {
	remove := func(m map[string][]*Record, k string) {
		rs := m[k]
		for i, r := range rs {
			if r == old {
				m[k] = append(rs[:i], rs[i+1:]...)
				break
			}
		}
		if len(m[k]) == 0 {
			delete(m, k)
		}
	}
	remove(s.byURL, old.LandingURL)
	if old.URL != old.LandingURL {
		remove(s.byStart, old.URL)
	}
	if old.Target != "" {
		remove(s.byTarget, old.Target)
	}
}

// Append assigns the record a sequence number and timestamp (when unset),
// writes it to the log and indexes it. Triggers compaction when the
// append budget since the last one is spent.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return errors.New("store: closed")
	}
	rec.Seq = s.nextSeq
	if rec.ScoredAt.IsZero() {
		rec.ScoredAt = time.Now().UTC()
	}
	if rec.Explanation != nil {
		drop := s.maxExplain < 0
		if !drop {
			// This encodes the explanation once for measurement and the
			// record marshal below encodes it again — accepted: evidence
			// persistence is an opt-in diagnostic path, and splicing a
			// pre-encoded RawMessage would leak wire concerns into the
			// Record type every reader shares.
			ej, err := json.Marshal(rec.Explanation)
			drop = err != nil || len(ej) > s.maxExplain
		}
		if drop {
			// The verdict is the durable fact; oversized evidence is
			// recomputable on demand and not worth log amplification.
			rec.Explanation = nil
			s.explDropped++
		}
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	// One write call for line + newline: the log stays line-atomic under
	// concurrent process crashes (a torn write truncates, never
	// interleaves).
	if _, err := s.file.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	if s.sync {
		if err := s.file.Sync(); err != nil {
			return fmt.Errorf("store: syncing %s: %w", s.path, err)
		}
	}
	s.indexLocked(&rec)
	s.appends++
	s.sinceCompact++
	if s.compactEvery > 0 && s.sinceCompact >= s.compactEvery {
		// The append itself is durable at this point; a failed
		// compaction must not make it look lost. Count the failure (it
		// surfaces in Stats/metrics) and retry at the next trigger.
		if err := s.compactLocked(); err != nil {
			s.compactErrors++
			s.sinceCompact = 0
		}
	}
	return nil
}

// Compact rewrites the log keeping only live records (the newest per
// landing URL + fingerprint), dropping everything superseded.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	live := make([]*Record, 0, len(s.byKey))
	for _, rec := range s.byKey {
		live = append(live, rec)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Seq < live[j].Seq })

	tmp := s.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range live {
		if err := enc.Encode(rec); err != nil {
			_ = f.Close()
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: syncing compacted log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing compacted log: %w", err)
	}
	// Atomic cutover: rename leaves either the full old log or the full
	// new one. Swap the write handle only after it succeeds.
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("store: installing compacted log: %w", err)
	}
	_ = s.file.Close()
	s.file, err = os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The data on disk is complete and consistent (the rename
		// landed); only the write handle is gone. Appends fail until
		// Reload reopens the log — they must not silently write to the
		// unlinked pre-compaction inode.
		return fmt.Errorf("store: reopening compacted log (Reload recovers): %w", err)
	}
	s.compactions++
	s.superseded += s.deadOnDisk
	s.deadOnDisk = 0
	s.sinceCompact = 0
	return nil
}

// Get returns the newest record whose landing URL or starting URL equals
// url.
func (s *Store) Get(url string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Record
	for _, rec := range s.byURL[url] {
		if best == nil || rec.Seq > best.Seq {
			best = rec
		}
	}
	for _, rec := range s.byStart[url] {
		if best == nil || rec.Seq > best.Seq {
			best = rec
		}
	}
	if best == nil {
		return Record{}, false
	}
	return *best, true
}

// Query filters the live records. Zero-valued fields match everything.
type Query struct {
	// Target restricts to records whose identified target RDN matches.
	Target string
	// URL restricts to records whose landing or starting URL matches.
	URL string
	// Since restricts to records scored at or after this time.
	Since time.Time
	// PhishOnly restricts to final phishing verdicts.
	PhishOnly bool
	// Limit caps the result count (0 → no cap). Newest first.
	Limit int
}

// Select returns live records matching q, newest (highest Seq) first.
func (s *Store) Select(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var candidates []*Record
	switch {
	case q.Target != "":
		candidates = s.byTarget[q.Target]
	case q.URL != "":
		candidates = append(append([]*Record{}, s.byURL[q.URL]...), s.byStart[q.URL]...)
	default:
		candidates = make([]*Record, 0, len(s.byKey))
		for _, rec := range s.byKey {
			candidates = append(candidates, rec)
		}
	}
	out := make([]Record, 0, len(candidates))
	for _, rec := range candidates {
		if q.URL != "" && rec.LandingURL != q.URL && rec.URL != q.URL {
			continue
		}
		if !q.Since.IsZero() && rec.ScoredAt.Before(q.Since) {
			continue
		}
		if q.PhishOnly && !rec.Outcome.FinalPhish {
			continue
		}
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Stats returns the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Records:             len(s.byKey),
		Appends:             s.appends,
		Compactions:         s.compactions,
		Superseded:          s.superseded,
		CompactErrors:       s.compactErrors,
		ExplanationsDropped: s.explDropped,
	}
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the log. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Sync()
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	s.file = nil
	return err
}
