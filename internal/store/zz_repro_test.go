package store

import (
	"context"
	"testing"
	"time"
)

// Reopen from snapshot (bulkLoad/lazy), then append a record that
// supersedes a snapshot row whose landing URL has a single entry.
func TestReopenSupersedeScan(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, err := openSegmented(Config{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rec := Record{URL: "http://u" + string(rune('a'+i)) + ".test/", LandingURL: "http://u" + string(rune('a'+i)) + ".test/", Fingerprint: "fp", ScoredAt: time.Now()}
		if err := s.Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = openSegmented(Config{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Supersede ua's record: same landing URL + fingerprint.
	rec := Record{URL: "http://ua.test/", LandingURL: "http://ua.test/", Fingerprint: "fp", ScoredAt: time.Now()}
	if err := s.Append(ctx, rec); err != nil {
		t.Fatal(err)
	}
	page, err := s.Scan(ctx, Query{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(page.Records))
	}
}
