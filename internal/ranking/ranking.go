// Package ranking provides the domain-popularity list used by feature 9 of
// Table IV ("Alexa ranking of the RDN"). The paper uses a fixed, previously
// downloaded copy of the Alexa top-1M list; unranked domains take the
// default value 1,000,001. This package loads such lists from disk and also
// generates deterministic synthetic lists over the synthetic world's
// legitimate domains (Zipf-ordered), which is our substitute for the real
// Alexa file (see DESIGN.md).
package ranking

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// UnrankedValue is the rank assigned to domains not present in the list,
// exactly as in the paper: 1,000,001.
const UnrankedValue = 1000001

// List is an immutable domain → rank lookup. The zero value is an empty
// list for which every domain is unranked.
type List struct {
	ranks map[string]int
}

// New builds a list from RDNs in rank order: domains[0] has rank 1.
func New(domains []string) *List {
	ranks := make(map[string]int, len(domains))
	for i, d := range domains {
		d = strings.ToLower(strings.TrimSpace(d))
		if d == "" {
			continue
		}
		if _, dup := ranks[d]; !dup {
			ranks[d] = i + 1
		}
	}
	return &List{ranks: ranks}
}

// Read parses the Alexa CSV format "rank,domain" (or just "domain" per
// line, in which case line order defines rank).
func Read(r io.Reader) (*List, error) {
	ranks := make(map[string]int)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rank := line
		domain := text
		if i := strings.IndexByte(text, ','); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(text[:i]))
			if err != nil {
				return nil, fmt.Errorf("ranking: line %d: bad rank %q: %w", line, text[:i], err)
			}
			rank = n
			domain = strings.TrimSpace(text[i+1:])
		}
		domain = strings.ToLower(domain)
		if _, dup := ranks[domain]; !dup && domain != "" {
			ranks[domain] = rank
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ranking: reading list: %w", err)
	}
	return &List{ranks: ranks}, nil
}

// Rank returns the rank of rdn, or UnrankedValue when absent. A nil List
// behaves as an empty list.
func (l *List) Rank(rdn string) int {
	if l == nil {
		return UnrankedValue
	}
	if r, ok := l.ranks[strings.ToLower(rdn)]; ok {
		return r
	}
	return UnrankedValue
}

// Contains reports whether rdn is ranked.
func (l *List) Contains(rdn string) bool {
	if l == nil {
		return false
	}
	_, ok := l.ranks[strings.ToLower(rdn)]
	return ok
}

// Len returns the number of ranked domains.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	return len(l.ranks)
}

// WriteTo emits the list in "rank,domain" CSV order, implementing a subset
// of io.WriterTo sufficient for persistence.
func (l *List) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	type entry struct {
		rank   int
		domain string
	}
	entries := make([]entry, 0, len(l.ranks))
	for d, r := range l.ranks {
		entries = append(entries, entry{r, d})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].rank != entries[j].rank {
			return entries[i].rank < entries[j].rank
		}
		return entries[i].domain < entries[j].domain
	})
	var total int64
	for _, e := range entries {
		n, err := fmt.Fprintf(w, "%d,%s\n", e.rank, e.domain)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("ranking: writing list: %w", err)
		}
	}
	return total, nil
}
