package ranking

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndRank(t *testing.T) {
	l := New([]string{"alpha.com", "Beta.org", "gamma.net"})
	if got := l.Rank("alpha.com"); got != 1 {
		t.Errorf("Rank(alpha.com) = %d, want 1", got)
	}
	if got := l.Rank("beta.org"); got != 2 {
		t.Errorf("Rank(beta.org) = %d, want 2 (case-insensitive)", got)
	}
	if got := l.Rank("missing.example"); got != UnrankedValue {
		t.Errorf("Rank(missing) = %d, want %d", got, UnrankedValue)
	}
	if !l.Contains("gamma.net") || l.Contains("nope.example") {
		t.Error("Contains misbehaves")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
}

func TestNilList(t *testing.T) {
	var l *List
	if got := l.Rank("anything.com"); got != UnrankedValue {
		t.Errorf("nil list Rank = %d, want %d", got, UnrankedValue)
	}
	if l.Contains("anything.com") {
		t.Error("nil list Contains = true")
	}
	if l.Len() != 0 {
		t.Error("nil list Len != 0")
	}
	if n, err := l.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Error("nil list WriteTo misbehaves")
	}
}

func TestReadCSV(t *testing.T) {
	src := "# comment\n1,google.com\n2,facebook.com\n\n5,wikipedia.org\n"
	l, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := l.Rank("wikipedia.org"); got != 5 {
		t.Errorf("Rank(wikipedia.org) = %d, want 5", got)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
}

func TestReadPlainLines(t *testing.T) {
	l, err := Read(strings.NewReader("first.com\nsecond.com\n"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := l.Rank("second.com"); got != 2 {
		t.Errorf("Rank(second.com) = %d, want 2", got)
	}
}

func TestReadBadRank(t *testing.T) {
	if _, err := Read(strings.NewReader("xx,google.com\n")); err == nil {
		t.Fatal("Read with bad rank: error = nil, want parse error")
	}
}

func TestRoundTrip(t *testing.T) {
	l := New([]string{"a.com", "b.com", "c.com"})
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for _, d := range []string{"a.com", "b.com", "c.com"} {
		if back.Rank(d) != l.Rank(d) {
			t.Errorf("roundtrip rank mismatch for %s", d)
		}
	}
}

func TestDuplicatesKeepFirst(t *testing.T) {
	l := New([]string{"dup.com", "other.com", "dup.com"})
	if got := l.Rank("dup.com"); got != 1 {
		t.Errorf("Rank(dup.com) = %d, want 1", got)
	}
}

// Property: every domain passed to New is ranked in [1, len], and ranks of
// distinct domains are unique.
func TestQuickNewRanksValid(t *testing.T) {
	f := func(raw []string) bool {
		l := New(raw)
		seen := map[int]bool{}
		for _, d := range raw {
			d = strings.ToLower(strings.TrimSpace(d))
			if d == "" {
				continue
			}
			r := l.Rank(d)
			if r == UnrankedValue {
				return false
			}
			if r < 1 || r > len(raw) {
				return false
			}
			if seen[r] {
				continue // same domain seen twice maps to one rank
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
