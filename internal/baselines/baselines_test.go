package baselines

import (
	"testing"

	"knowphish/internal/dataset"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

var sharedCorpus *dataset.Corpus

func corpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	if sharedCorpus == nil {
		c, err := dataset.Build(dataset.Config{
			Seed:  31,
			Scale: 40,
			World: webgen.Config{Seed: 32, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
		})
		if err != nil {
			t.Fatalf("corpus: %v", err)
		}
		sharedCorpus = c
	}
	return sharedCorpus
}

func evaluate(t *testing.T, clf Classifier, c *dataset.Corpus, threshold float64) ml.Confusion {
	t.Helper()
	var scores []float64
	var labels []int
	for _, ex := range c.PhishTest.Examples {
		scores = append(scores, clf.Score(ex.Snapshot))
		labels = append(labels, 1)
	}
	for _, ex := range c.LangTests[webgen.English].Examples {
		scores = append(scores, clf.Score(ex.Snapshot))
		labels = append(labels, 0)
	}
	return ml.Evaluate(scores, labels, threshold)
}

func TestCantinaBetterThanChance(t *testing.T) {
	c := corpus(t)
	clf := NewCantina(c.Engine)
	if clf.Name() == "" {
		t.Error("empty name")
	}
	conf := evaluate(t, clf, c, 0.5)
	// Cantina should catch most phish (their keyterms retrieve the brand,
	// not the phisher's RDN) at a visible false-positive cost.
	if rec := conf.Recall(); rec < 0.6 {
		t.Errorf("Cantina recall = %.3f, want >= 0.6 (%s)", rec, conf)
	}
	if fpr := conf.FPR(); fpr > 0.5 {
		t.Errorf("Cantina FPR = %.3f, want < 0.5", fpr)
	}
}

func TestCantinaScoresDiscrete(t *testing.T) {
	c := corpus(t)
	clf := NewCantina(c.Engine)
	for i := 0; i < 10; i++ {
		s := clf.Score(c.PhishTest.Examples[i].Snapshot)
		if s != 0 && s != 0.5 && s != 1 {
			t.Fatalf("Cantina score = %v, want 0, 0.5 or 1", s)
		}
	}
}

func TestURLLexicalLearns(t *testing.T) {
	c := corpus(t)
	snaps := append(c.LegTrain.Snapshots(), c.PhishTrain.Snapshots()...)
	labels := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	clf, err := TrainURLLexical(snaps, labels, 1)
	if err != nil {
		t.Fatalf("TrainURLLexical: %v", err)
	}
	conf := evaluate(t, clf, c, 0.5)
	if acc := conf.Accuracy(); acc < 0.8 {
		t.Errorf("URL-lexical accuracy = %.3f, want >= 0.8 (%s)", acc, conf)
	}
}

func TestBagOfWordsLearns(t *testing.T) {
	c := corpus(t)
	snaps := append(c.LegTrain.Snapshots(), c.PhishTrain.Snapshots()...)
	labels := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	clf, err := TrainBagOfWords(snaps, labels, 1)
	if err != nil {
		t.Fatalf("TrainBagOfWords: %v", err)
	}
	conf := evaluate(t, clf, c, 0.5)
	if acc := conf.Accuracy(); acc < 0.8 {
		t.Errorf("BoW accuracy = %.3f, want >= 0.8 (%s)", acc, conf)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainURLLexical(nil, nil, 1); err == nil {
		t.Error("URL-lexical empty training: want error")
	}
	if _, err := TrainBagOfWords(nil, nil, 1); err == nil {
		t.Error("BoW empty training: want error")
	}
}

func TestScoresInRange(t *testing.T) {
	c := corpus(t)
	snaps := append(c.LegTrain.Snapshots(), c.PhishTrain.Snapshots()...)
	labels := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	url, err := TrainURLLexical(snaps, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	bow, err := TrainBagOfWords(snaps, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, clf := range []Classifier{NewCantina(c.Engine), url, bow} {
		for i := 0; i < 5; i++ {
			s := clf.Score(c.PhishTest.Examples[i].Snapshot)
			if s < 0 || s > 1 {
				t.Errorf("%s score = %v", clf.Name(), s)
			}
		}
	}
}
