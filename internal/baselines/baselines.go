// Package baselines implements the three archetypes of prior work the
// paper compares against in Table X (see DESIGN.md for the substitution
// argument):
//
//   - Cantina (Zhang et al., WWW'07): TF-IDF keyword signature + search
//     engine membership test. Content-based, language-dependent, no
//     learning.
//   - Ma et al. (KDD'09): URL-lexical bag-of-words with online logistic
//     regression. URL-only, needs many training URLs.
//   - Whittaker et al. (NDSS'10): large static bag-of-words over page +
//     URL with a learned classifier — brand-dependent, hungry for
//     training data.
//
// All three expose the same Score(snapshot) ∈ [0,1] contract as the
// paper's system so that one evaluation harness drives Table X.
package baselines

import (
	"fmt"
	"strings"

	"knowphish/internal/ml"
	"knowphish/internal/search"
	"knowphish/internal/terms"
	"knowphish/internal/webpage"
)

// Classifier is the common scoring contract.
type Classifier interface {
	// Name identifies the baseline in tables.
	Name() string
	// Score returns phishing confidence in [0,1].
	Score(s *webpage.Snapshot) float64
}

// ---------------------------------------------------------------------
// Cantina-style baseline.

// Cantina classifies by querying a search engine with the page's top
// TF-IDF terms: if the page's own domain comes back, it is legitimate.
// IDF comes from the engine's corpus statistics.
type Cantina struct {
	// Engine is the search engine (with document frequencies).
	Engine *search.Engine
	// TopTerms is the signature length (paper's Cantina uses 5).
	TopTerms int
	// TopK is how many results to scan for the page's domain.
	TopK int
}

// NewCantina returns a Cantina baseline with the original's parameters.
func NewCantina(e *search.Engine) *Cantina {
	return &Cantina{Engine: e, TopTerms: 5, TopK: 30}
}

// Name implements Classifier.
func (c *Cantina) Name() string { return "Cantina (TF-IDF + search)" }

// Score implements Classifier: 1 when the lexical signature does not
// retrieve the page's own RDN, 0 when it does. A soft middle value covers
// pages with no usable signature.
func (c *Cantina) Score(s *webpage.Snapshot) float64 {
	a := webpage.Analyze(s)
	sig := c.signature(a)
	if len(sig) == 0 {
		return 0.5 // no text to judge: Cantina cannot decide
	}
	results := c.Engine.Query(sig, c.TopK)
	if search.ContainsRDN(results, a.Land.RDN) || search.ContainsRDN(results, a.Start.RDN) {
		return 0
	}
	return 1
}

// signature selects the page's TopTerms terms by TF-IDF against the
// engine's corpus.
func (c *Cantina) signature(a *webpage.Analysis) []string {
	text := a.Dist(webpage.DistText)
	title := a.Dist(webpage.DistTitle)
	if text.Empty() && title.Empty() {
		return nil
	}
	type scored struct {
		t string
		v float64
	}
	var all []scored
	seen := map[string]struct{}{}
	for _, d := range []terms.Distribution{text, title} {
		for _, t := range d.Terms() {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			tf := text.P(t) + title.P(t)
			idf := c.Engine.IDF(t)
			all = append(all, scored{t, tf * idf})
		}
	}
	// Highest TF-IDF first, lexical tie-break.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].v > all[j-1].v || (all[j].v == all[j-1].v && all[j].t < all[j-1].t)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	n := c.TopTerms
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}

// ---------------------------------------------------------------------
// Ma et al.-style URL-lexical baseline.

// urlLexicalDim is the hashing-trick space of the URL bag-of-words.
const urlLexicalDim = 1 << 16

// URLLexical is the Ma et al. archetype: logistic regression over hashed
// URL tokens (scheme, FQDN labels, path/query terms) of the starting and
// landing URLs.
type URLLexical struct {
	model *ml.LogisticRegression
}

// Name implements Classifier.
func (u *URLLexical) Name() string { return "URL-lexical LR (Ma et al. style)" }

// urlTokens produces the hashed sparse vector of one snapshot.
func urlTokens(s *webpage.Snapshot) ml.SparseVector {
	var v ml.SparseVector
	add := func(tok string) {
		v = append(v, ml.SparseEntry{Index: ml.HashFeature(tok, urlLexicalDim), Value: 1})
	}
	for tag, raw := range map[string]string{"start": s.StartingURL, "land": s.LandingURL} {
		if i := strings.Index(raw, "://"); i > 0 {
			add(tag + ":scheme:" + raw[:i])
		}
		for _, t := range terms.Extract(raw) {
			add(tag + ":term:" + t)
		}
		// Crude length buckets, as Ma et al. mix lexical and simple
		// numeric features.
		add(fmt.Sprintf("%s:lenbucket:%d", tag, len(raw)/16))
		add(fmt.Sprintf("%s:dots:%d", tag, strings.Count(raw, ".")))
	}
	return v
}

// TrainURLLexical fits the baseline on labeled snapshots.
func TrainURLLexical(snaps []*webpage.Snapshot, labels []int, seed int64) (*URLLexical, error) {
	x := make([]ml.SparseVector, len(snaps))
	for i, s := range snaps {
		x[i] = urlTokens(s)
	}
	m, err := ml.TrainLogistic(x, labels, ml.LRConfig{Dim: urlLexicalDim, Epochs: 8, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("baselines: training URL-lexical: %w", err)
	}
	return &URLLexical{model: m}, nil
}

// Score implements Classifier.
func (u *URLLexical) Score(s *webpage.Snapshot) float64 {
	return u.model.Score(urlTokens(s))
}

// ---------------------------------------------------------------------
// Whittaker et al.-style bag-of-words baseline.

// bowDim is the hashing space of the page bag-of-words.
const bowDim = 1 << 18

// BagOfWords is the Whittaker et al. archetype: a large static
// bag-of-words over page text, title and URLs. Its weakness — the one the
// paper's Section IV-A argues against — is brand dependence: the learned
// vocabulary is dominated by the brands seen in training.
type BagOfWords struct {
	model *ml.LogisticRegression
}

// Name implements Classifier.
func (b *BagOfWords) Name() string { return "Bag-of-words (Whittaker et al. style)" }

func bowTokens(s *webpage.Snapshot) ml.SparseVector {
	counts := map[int]float64{}
	addAll := func(prefix, text string) {
		for _, t := range terms.Extract(text) {
			counts[ml.HashFeature(prefix+t, bowDim)]++
		}
	}
	addAll("text:", s.Text)
	addAll("title:", s.Title)
	addAll("url:", s.StartingURL)
	addAll("url:", s.LandingURL)
	for _, l := range s.HREFLinks {
		addAll("href:", l)
	}
	v := make(ml.SparseVector, 0, len(counts))
	for i, c := range counts {
		v = append(v, ml.SparseEntry{Index: i, Value: c})
	}
	return v
}

// TrainBagOfWords fits the baseline on labeled snapshots.
func TrainBagOfWords(snaps []*webpage.Snapshot, labels []int, seed int64) (*BagOfWords, error) {
	x := make([]ml.SparseVector, len(snaps))
	for i, s := range snaps {
		x[i] = bowTokens(s)
	}
	m, err := ml.TrainLogistic(x, labels, ml.LRConfig{Dim: bowDim, Epochs: 8, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("baselines: training bag-of-words: %w", err)
	}
	return &BagOfWords{model: m}, nil
}

// Score implements Classifier.
func (b *BagOfWords) Score(s *webpage.Snapshot) float64 {
	return b.model.Score(bowTokens(s))
}

// Interface compliance.
var (
	_ Classifier = (*Cantina)(nil)
	_ Classifier = (*URLLexical)(nil)
	_ Classifier = (*BagOfWords)(nil)
)
