// Package dataset assembles the evaluation corpora of Table V from the
// synthetic world: the PhishTank-style phishing campaigns (phishTrain,
// phishTest, phishBrand), the Intel-style legitimate sets (legTrain plus
// six language test sets), and the cleaning pass that removes unavailable
// pages and parked domains from raw campaign captures.
//
// It also maintains the search-engine index over every crawled legitimate
// page plus all brand sites, which target identification queries.
package dataset

import (
	"fmt"
	"math/rand"

	"knowphish/internal/crawl"
	"knowphish/internal/search"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// Example is one labeled page visit.
type Example struct {
	// Snapshot is the crawled page.
	Snapshot *webpage.Snapshot `json:"snapshot"`
	// Label is 1 for phishing, 0 for legitimate.
	Label int `json:"label"`
	// Kind is the generator kind (phish, generic, brand, parked,
	// unavailable) — ground-truth metadata the detector never sees.
	Kind string `json:"kind"`
	// TargetMLD and TargetRDN name the true target of a phish.
	TargetMLD string `json:"target_mld,omitempty"`
	TargetRDN string `json:"target_rdn,omitempty"`
	// NoHint marks phishing pages deliberately built with no reference
	// to their target (Table IX's "unknown target" rows).
	NoHint bool `json:"no_hint,omitempty"`
	// Lang is the content language.
	Lang webgen.Language `json:"lang"`
}

// Campaign is one collection pass with its Table V bookkeeping.
type Campaign struct {
	// Name matches Table V (phishTrain, phishTest, phishBrand,
	// legTrain, English, French, ...).
	Name string `json:"name"`
	// Initial is the raw capture size before cleaning.
	Initial int `json:"initial"`
	// Examples are the post-cleaning contents.
	Examples []*Example `json:"examples"`
}

// Clean returns the post-cleaning size (len(Examples)).
func (c *Campaign) Clean() int { return len(c.Examples) }

// Labels returns the label vector of the campaign.
func (c *Campaign) Labels() []int {
	out := make([]int, len(c.Examples))
	for i, ex := range c.Examples {
		out[i] = ex.Label
	}
	return out
}

// Snapshots returns the snapshot slice of the campaign.
func (c *Campaign) Snapshots() []*webpage.Snapshot {
	out := make([]*webpage.Snapshot, len(c.Examples))
	for i, ex := range c.Examples {
		out[i] = ex.Snapshot
	}
	return out
}

// Config controls corpus generation.
type Config struct {
	// Seed drives campaign sampling (the world has its own seed inside
	// World).
	Seed int64
	// Scale divides the paper's dataset sizes: Scale 1 reproduces Table
	// V exactly (100,000-page English set); Scale 10 is the default
	// fast setting. See EXPERIMENTS.md for shape-stability notes.
	Scale int
	// World configures the synthetic web (zero value = defaults).
	World webgen.Config
	// SkipLanguageTests drops the five non-English test sets (used by
	// unit tests and micro-benchmarks).
	SkipLanguageTests bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 10
	}
	if c.World.Seed == 0 {
		c.World.Seed = c.Seed + 1
	}
	return c
}

// paperSizes are the clean sizes of Table V.
var paperSizes = struct {
	phishTrainInitial, phishTrainClean int
	phishTestInitial, phishTestClean   int
	phishBrand                         int
	legTrainInitial, legTrainClean     int
	english, otherLang                 int
}{
	phishTrainInitial: 1213, phishTrainClean: 1036,
	phishTestInitial: 1553, phishTestClean: 1216,
	phishBrand:      600,
	legTrainInitial: 5000, legTrainClean: 4531,
	english: 100000, otherLang: 10000,
}

// Corpus bundles the full evaluation data.
type Corpus struct {
	World  *webgen.World
	Engine *search.Engine

	PhishTrain *Campaign
	PhishTest  *Campaign
	PhishBrand *Campaign
	LegTrain   *Campaign
	// LangTests holds the six language test sets keyed by language
	// (English included).
	LangTests map[webgen.Language]*Campaign

	cfg Config
}

// Scale returns the scale divisor the corpus was built with.
func (c *Corpus) Scale() int { return c.cfg.Scale }

// Build generates the full corpus. Deterministic per Config.
func Build(cfg Config) (*Corpus, error) {
	cfg = cfg.withDefaults()
	w := webgen.New(cfg.World)
	c := &Corpus{
		World:     w,
		Engine:    search.NewEngine(),
		LangTests: make(map[webgen.Language]*Campaign),
		cfg:       cfg,
	}
	for _, b := range w.Brands {
		c.Engine.Add(search.Doc{URL: b.HomeURL(), RDN: b.RDN(), MLD: b.MLD, Terms: b.IndexTerms()})
	}
	s := cfg.Scale
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	var err error
	if c.PhishTrain, err = c.buildPhishCampaign(rng, "phishTrain", paperSizes.phishTrainInitial/s, paperSizes.phishTrainClean/s, 0, 0); err != nil {
		return nil, err
	}
	// legTrain draws from the same page mixture as the test sets (the
	// paper's legitimate train and test URLs come from the same Intel
	// source), including the news-style hard negatives and the few
	// percent of non-English pages any "English" web crawl contains.
	if c.LegTrain, err = c.buildLegCampaign(rng, "legTrain", webgen.English, paperSizes.legTrainInitial/s, paperSizes.legTrainClean/s, true); err != nil {
		return nil, err
	}
	// The later campaigns carry the newer perfect-clone kits (§VII-C
	// limit case) that had not yet appeared when phishTrain was captured
	// — the attack-mix drift the paper's old-train/new-test split
	// deliberately exposes.
	if c.PhishTest, err = c.buildPhishCampaign(rng, "phishTest", paperSizes.phishTestInitial/s, paperSizes.phishTestClean/s, 0, 0.02); err != nil {
		return nil, err
	}
	noHint := maxOf(1, 17*paperSizes.phishBrand/600/s)
	if c.PhishBrand, err = c.buildPhishCampaign(rng, "phishBrand", paperSizes.phishBrand/s, paperSizes.phishBrand/s, noHint, 0.02); err != nil {
		return nil, err
	}
	langs := webgen.Languages
	if cfg.SkipLanguageTests {
		langs = []webgen.Language{webgen.English}
	}
	for _, lang := range langs {
		size := paperSizes.otherLang / s
		name := "French"
		switch lang {
		case webgen.English:
			size = paperSizes.english / s
			name = "English"
		case webgen.French:
			name = "French"
		case webgen.German:
			name = "German"
		case webgen.Italian:
			name = "Italian"
		case webgen.Portuguese:
			name = "Portuguese"
		case webgen.Spanish:
			name = "Spanish"
		}
		camp, err := c.buildLegCampaign(rng, name, lang, size, size, true)
		if err != nil {
			return nil, err
		}
		c.LangTests[lang] = camp
	}
	return c, nil
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildPhishCampaign simulates one PhishTank collection pass: the raw
// capture contains real phishs plus junk (unavailable pages, parked
// domains, the odd mislabeled legitimate site); cleaning removes the junk.
// noHint > 0 forces that many pages to carry no target reference;
// cloneRate is the fraction of perfect-clone kits in the campaign.
func (c *Corpus) buildPhishCampaign(rng *rand.Rand, name string, initial, clean, noHint int, cloneRate float64) (*Campaign, error) {
	if clean < 1 {
		clean = 1
	}
	if initial < clean {
		initial = clean
	}
	camp := &Campaign{Name: name, Initial: initial}
	for i := 0; i < clean; i++ {
		opts := c.World.RandomPhishOptions(rng)
		isNoHint := i < noHint
		if isNoHint {
			opts.NoExternalLinks = true
			opts.MinimalText = true
			opts.ImageOnly = false
			opts.Hosting = webgen.HostDedicated
		}
		var site *webgen.Site
		if !isNoHint && rng.Float64() < cloneRate {
			// Perfect-clone kits: the §VII-C limit case (see
			// webgen.NewClonePhishSite).
			site = c.World.NewClonePhishSite(rng)
		} else {
			site = c.World.NewPhishSite(rng, opts)
		}
		snap, err := crawl.VisitSite(c.World, site)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", name, err)
		}
		if isNoHint {
			stripTargetHints(snap, site)
		}
		camp.Examples = append(camp.Examples, &Example{
			Snapshot:  snap,
			Label:     1,
			Kind:      site.Kind.String(),
			TargetMLD: site.TargetMLD,
			TargetRDN: site.TargetRDN,
			NoHint:    isNoHint,
			Lang:      site.Lang,
		})
	}
	return camp, nil
}

// stripTargetHints rewrites a no-hint phish so that nothing on the page
// names the target: Table IX's 17 "unknown target" pages, where the lure
// lived in the email, not the page.
func stripTargetHints(snap *webpage.Snapshot, site *webgen.Site) {
	snap.Title = "Account Verification"
	snap.Text = "please enter your details below to continue"
	snap.Copyright = ""
	snap.ScreenshotTerms = []string{"please enter your details below to continue"}
	var cleanLinks []string
	for _, l := range snap.HREFLinks {
		if !containsFold(l, site.TargetMLD) {
			cleanLinks = append(cleanLinks, l)
		}
	}
	snap.HREFLinks = cleanLinks
	var cleanLogged []string
	for _, l := range snap.LoggedLinks {
		if !containsFold(l, site.TargetMLD) {
			cleanLogged = append(cleanLogged, l)
		}
	}
	snap.LoggedLinks = cleanLogged
}

func containsFold(s, sub string) bool {
	if sub == "" {
		return false
	}
	return len(s) >= len(sub) && (stringIndexFold(s, sub) >= 0)
}

func stringIndexFold(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j]|0x20, sub[j]|0x20
			if a != b {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// buildLegCampaign generates one legitimate campaign. Every crawled page
// is added to the search index. When mixedKinds is true a small fraction
// of hard negatives (news-style pages) is included.
func (c *Corpus) buildLegCampaign(rng *rand.Rand, name string, lang webgen.Language, initial, clean int, mixedKinds bool) (*Campaign, error) {
	if clean < 1 {
		clean = 1
	}
	if initial < clean {
		initial = clean
	}
	camp := &Campaign{Name: name, Initial: initial}
	for i := 0; i < clean; i++ {
		opts := webgen.LegitOptions{Lang: lang}
		if mixedKinds && rng.Float64() < 0.08 {
			opts.NewsStyle = true
		}
		// Real-world crawls are never perfectly monolingual: the
		// training campaign carries a few percent of pages in other
		// languages (language test sets stay pure, as Intel's
		// per-language classification made them).
		if name == "legTrain" && rng.Float64() < 0.04 {
			opts.Lang = webgen.Languages[rng.Intn(len(webgen.Languages))]
		}
		site := c.World.NewLegitSite(rng, opts)
		snap, err := crawl.VisitSite(c.World, site)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", name, err)
		}
		c.indexLegit(snap)
		camp.Examples = append(camp.Examples, &Example{
			Snapshot: snap,
			Label:    0,
			Kind:     site.Kind.String(),
			Lang:     site.Lang,
		})
	}
	return camp, nil
}

// indexLegit adds a crawled legitimate page to the search engine.
func (c *Corpus) indexLegit(snap *webpage.Snapshot) {
	a := webpage.Analyze(snap)
	if a.Land.RDN == "" {
		return
	}
	var docTerms []string
	for _, id := range []webpage.DistID{webpage.DistText, webpage.DistTitle, webpage.DistLandRDN, webpage.DistCopyright} {
		d := a.Dist(id)
		for term := range d.TermSet() {
			// Weight: one entry per rounded occurrence.
			n := int(d.P(term)*float64(d.TotalOccurrences()) + 0.5)
			for k := 0; k < n; k++ {
				docTerms = append(docTerms, term)
			}
		}
	}
	c.Engine.Add(search.Doc{URL: snap.LandingURL, RDN: a.Land.RDN, MLD: a.Land.MLD, Terms: docTerms})
}

// NoisyCapture regenerates a raw (pre-cleaning) phishing capture for the
// Table V bookkeeping: clean phishs plus the junk a PhishTank feed
// contains. Returned examples are labeled by generator kind; the cleaning
// pass is Clean().
func (c *Corpus) NoisyCapture(rng *rand.Rand, n int) []*Example {
	var out []*Example
	for i := 0; i < n; i++ {
		var site *webgen.Site
		switch r := rng.Float64(); {
		case r < 0.82:
			site = c.World.NewPhishSite(rng, c.World.RandomPhishOptions(rng))
		case r < 0.92:
			site = c.World.NewParkedSite(rng)
		case r < 0.98:
			site = c.World.NewUnavailableSite(rng)
		default:
			site = c.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		}
		snap, err := crawl.VisitSite(c.World, site)
		if err != nil {
			continue
		}
		label := 0
		if site.IsPhish {
			label = 1
		}
		out = append(out, &Example{
			Snapshot: snap, Label: label, Kind: site.Kind.String(),
			TargetMLD: site.TargetMLD, TargetRDN: site.TargetRDN, Lang: site.Lang,
		})
	}
	return out
}

// CleanCapture filters a noisy capture the way the paper's manual pass
// does: keep only true phishing pages.
func CleanCapture(raw []*Example) []*Example {
	var out []*Example
	for _, ex := range raw {
		if ex.Kind == webgen.KindPhish.String() {
			out = append(out, ex)
		}
	}
	return out
}
