package dataset

import (
	"math/rand"
	"testing"

	"knowphish/internal/webgen"
)

var sharedSmall *Corpus

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	if sharedSmall == nil {
		c, err := Build(Config{
			Seed:  11,
			Scale: 40,
			World: webgen.Config{Seed: 12, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
		})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sharedSmall = c
	}
	return sharedSmall
}

func TestBuildCampaignSizes(t *testing.T) {
	c := smallCorpus(t)
	// Scale 40 ⇒ phishTrain ≈ 1036/40 = 25, legTrain ≈ 4531/40 = 113.
	if got := c.PhishTrain.Clean(); got != 25 {
		t.Errorf("phishTrain clean = %d, want 25", got)
	}
	if got := c.LegTrain.Clean(); got != 113 {
		t.Errorf("legTrain clean = %d, want 113", got)
	}
	if got := c.PhishTest.Clean(); got != 30 {
		t.Errorf("phishTest clean = %d, want 30", got)
	}
	if got := c.PhishBrand.Clean(); got != 15 {
		t.Errorf("phishBrand clean = %d, want 15", got)
	}
	if got := len(c.LangTests); got != 6 {
		t.Fatalf("language tests = %d, want 6", got)
	}
	if got := c.LangTests[webgen.English].Clean(); got != 2500 {
		t.Errorf("English = %d, want 2500", got)
	}
	if got := c.LangTests[webgen.French].Clean(); got != 250 {
		t.Errorf("French = %d, want 250", got)
	}
	// Initial ≥ clean for campaigns with a cleaning pass.
	if c.PhishTrain.Initial < c.PhishTrain.Clean() {
		t.Error("initial < clean")
	}
}

func TestCampaignLabels(t *testing.T) {
	c := smallCorpus(t)
	for _, l := range c.PhishTrain.Labels() {
		if l != 1 {
			t.Fatal("phish campaign contains non-phish label")
		}
	}
	for _, l := range c.LegTrain.Labels() {
		if l != 0 {
			t.Fatal("leg campaign contains phish label")
		}
	}
	if len(c.PhishTrain.Snapshots()) != c.PhishTrain.Clean() {
		t.Error("Snapshots length mismatch")
	}
}

func TestPhishBrandTargetsRecorded(t *testing.T) {
	c := smallCorpus(t)
	noHint := 0
	for _, ex := range c.PhishBrand.Examples {
		if ex.TargetMLD == "" || ex.TargetRDN == "" {
			t.Error("phishBrand example missing target ground truth")
		}
		if ex.NoHint {
			noHint++
			// No-hint pages must not mention their target anywhere.
			if containsFold(ex.Snapshot.Text, ex.TargetMLD) ||
				containsFold(ex.Snapshot.Title, ex.TargetMLD) {
				t.Errorf("no-hint page still mentions target %s", ex.TargetMLD)
			}
			for _, l := range ex.Snapshot.HREFLinks {
				if containsFold(l, ex.TargetMLD) {
					t.Errorf("no-hint page links target: %s", l)
				}
			}
		}
	}
	if noHint == 0 {
		t.Error("phishBrand has no no-hint (unknown target) pages")
	}
}

func TestLanguageTagging(t *testing.T) {
	c := smallCorpus(t)
	for lang, camp := range c.LangTests {
		for _, ex := range camp.Examples {
			if ex.Lang != lang {
				t.Fatalf("%s campaign contains %s example", lang, ex.Lang)
			}
		}
	}
}

func TestEngineIndexed(t *testing.T) {
	c := smallCorpus(t)
	// All brands plus (most) legitimate pages must be indexed.
	if c.Engine.Len() < len(c.World.Brands) {
		t.Errorf("engine has %d docs, fewer than %d brands", c.Engine.Len(), len(c.World.Brands))
	}
	minLegit := c.LegTrain.Clean()
	if c.Engine.Len() < minLegit {
		t.Errorf("engine has %d docs, expected at least legTrain size %d", c.Engine.Len(), minLegit)
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Scale: 100, World: webgen.Config{Seed: 6, Brands: 30, RankedGenerics: 40, VocabularyWords: 80}, SkipLanguageTests: true}
	c1, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1.PhishTrain.Clean() != c2.PhishTrain.Clean() {
		t.Fatal("sizes differ")
	}
	for i := range c1.PhishTrain.Examples {
		a, b := c1.PhishTrain.Examples[i], c2.PhishTrain.Examples[i]
		if a.Snapshot.StartingURL != b.Snapshot.StartingURL {
			t.Fatalf("example %d differs: %s vs %s", i, a.Snapshot.StartingURL, b.Snapshot.StartingURL)
		}
	}
}

func TestSkipLanguageTests(t *testing.T) {
	c, err := Build(Config{Seed: 9, Scale: 100, World: webgen.Config{Seed: 10, Brands: 30, RankedGenerics: 40, VocabularyWords: 80}, SkipLanguageTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LangTests) != 1 {
		t.Errorf("LangTests = %d, want 1 (English only)", len(c.LangTests))
	}
}

func TestNoisyCaptureAndCleaning(t *testing.T) {
	c := smallCorpus(t)
	rng := rand.New(rand.NewSource(20))
	raw := c.NoisyCapture(rng, 200)
	if len(raw) < 150 {
		t.Fatalf("capture = %d pages", len(raw))
	}
	kinds := map[string]int{}
	for _, ex := range raw {
		kinds[ex.Kind]++
	}
	if kinds["phish"] == 0 || kinds["parked"]+kinds["unavailable"] == 0 {
		t.Errorf("capture lacks junk mixture: %v", kinds)
	}
	clean := CleanCapture(raw)
	if len(clean) >= len(raw) {
		t.Error("cleaning removed nothing")
	}
	for _, ex := range clean {
		if ex.Kind != "phish" {
			t.Errorf("cleaning kept %s", ex.Kind)
		}
	}
}

func TestScaleOneSizesMatchTableV(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-1 corpus is large")
	}
	// Only verify the arithmetic, not an actual build: paper sizes over
	// scale 1 must match Table V exactly.
	if paperSizes.phishTrainClean != 1036 || paperSizes.phishTestClean != 1216 ||
		paperSizes.phishBrand != 600 || paperSizes.legTrainClean != 4531 ||
		paperSizes.english != 100000 || paperSizes.otherLang != 10000 {
		t.Error("paper sizes drifted from Table V")
	}
}
