// Package loadgen is the load-generation engine behind cmd/kpload and
// the end-to-end throughput benchmark: it replays a URL corpus against
// a running kpserve's POST /v1/feed and measures what the service
// actually sustains — throughput, latency percentiles, error and drop
// rates, and the feed queue depth scraped from /metrics.
//
// Two loop disciplines, because they answer different questions:
//
//   - Closed loop (QPS = 0): each worker issues its next request the
//     moment the previous response lands. Offered load adapts to the
//     service, so the result is the ceiling — the maximum sustained
//     throughput at the configured concurrency.
//   - Open loop (QPS > 0): arrivals are paced at the target rate
//     regardless of how fast responses come back, the way real feed
//     traffic arrives. Latency then includes queueing delay, which is
//     exactly the number a closed loop hides (coordinated omission).
//     Arrivals that find every worker busy and the arrival queue full
//     are counted as missed, never silently dropped.
//
// The engine lives in an internal package rather than in cmd/kpload so
// the benchmark gate and the serve e2e tests drive the same code path
// operators use.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"knowphish/internal/serve"
)

// Defaults for Config zero values.
const (
	// DefaultWorkers is the concurrency when Config.Workers is unset.
	DefaultWorkers = 8
	// DefaultScrapeInterval is the /metrics queue-depth poll cadence.
	DefaultScrapeInterval = 200 * time.Millisecond
	// DefaultShedBackoff caps how long a worker sleeps on a shed 503's
	// Retry-After before offering load again.
	DefaultShedBackoff = time.Second
)

// DefaultPageBytes is the approximate HTML size score mode submits
// when Config.PageBytes is unset. Sized so one score costs the server
// whole milliseconds of parsing and feature extraction — small pages
// score in ~200µs, which makes overload unreachable at any realistic
// request rate.
const DefaultPageBytes = 64 << 10

// buildScorePage renders the page body score mode submits: a phish-like
// shell (title, login form) padded with linked paragraphs to roughly
// size bytes, so the real parsing and feature-extraction pipeline does
// proportional work per request.
func buildScorePage(size int) string {
	var b strings.Builder
	b.Grow(size + 512)
	b.WriteString(`<html><head><title>account verification portal</title></head>` +
		`<body><h1>Verify your account</h1>` +
		`<form action="/login" method="post"><input type="password" name="pw"/></form>`)
	for i := 0; b.Len() < size; i++ {
		fmt.Fprintf(&b, `<p>Your account access is suspended pending verification step %d. `+
			`Review the <a href="/notice/%d">notice</a> and confirm your identity to restore service.</p>`, i, i)
	}
	b.WriteString(`<a href="/support">support</a></body></html>`)
	return b.String()
}

// Config describes one load run.
type Config struct {
	// TargetURL is the kpserve base URL, e.g. "http://127.0.0.1:8080"
	// (required).
	TargetURL string
	// Client issues the requests (nil → a dedicated client with a
	// per-request timeout).
	Client *http.Client
	// Corpus is the URL set to replay, round-robin (required).
	Corpus []string
	// QPS is the open-loop target arrival rate in URL submissions per
	// second; 0 runs the closed loop (workers back-to-back, measuring
	// the throughput ceiling).
	QPS float64
	// Workers is the concurrent request count (0 → DefaultWorkers).
	Workers int
	// Ramp staggers worker start over this window so the target warms
	// (connection setup, cache fill) instead of taking the full
	// concurrency as a step function (0 → no ramp).
	Ramp time.Duration
	// Duration bounds the run. Ignored when Requests is set.
	Duration time.Duration
	// Requests, when positive, runs a fixed request budget instead of a
	// duration — the reproducible mode the benchmark gate uses.
	Requests int
	// BatchSize is how many corpus URLs ride one POST /v1/feed request
	// (0 → 1; ignored in score mode, which is one page per request).
	BatchSize int
	// Endpoint selects what the run replays: "feed" (default) posts
	// URL batches to POST /v1/feed; "score" posts one page per request
	// to POST /v1/score, each with a unique starting URL so every
	// request takes the full scoring path instead of the verdict
	// cache. Score mode is what the overload smoke drives — it is the
	// endpoint the latency SLO guards.
	Endpoint string
	// ShedBackoff bounds how long a worker honors a 503 Retry-After
	// before retrying (0 → DefaultShedBackoff). The server's suggested
	// backoff can exceed the whole run; honoring it with a cap keeps
	// pressure on so the run can observe shedding and recovery.
	ShedBackoff time.Duration
	// PageBytes is the approximate HTML size of the page score mode
	// submits (0 → DefaultPageBytes). Bigger pages cost the server
	// proportionally more per request, which is how the overload smoke
	// makes saturation reachable at moderate request rates.
	PageBytes int
	// ScrapeInterval is how often the run polls GET /metrics for the
	// feed queue depth (0 → DefaultScrapeInterval, negative →
	// disabled).
	ScrapeInterval time.Duration
	// CacheMix is the fraction (0..1) of score-mode requests that
	// replay one of a small hot set of already-submitted pages instead
	// of a unique URL — warm traffic that exercises the verdict cache
	// and the coalescer's stage memos the way real feed duplicates do
	// (0 → every request unique; ignored in feed mode).
	CacheMix float64
}

// hotPages is the size of the hot set CacheMix replays: small enough
// that warm requests actually repeat, large enough to spread across
// memo shards.
const hotPages = 16

// Report is the outcome of a run — the LOAD_PR.json document.
type Report struct {
	// Mode is "closed" or "open".
	Mode string `json:"mode"`
	// TargetQPS is the configured arrival rate (0 in closed mode).
	TargetQPS float64 `json:"target_qps"`
	Workers   int     `json:"workers"`
	BatchSize int     `json:"batch_size"`
	// CacheMix is the configured warm-traffic fraction (score mode).
	CacheMix float64 `json:"cache_mix,omitempty"`
	// DurationSeconds is the measured wall-clock span of the run.
	DurationSeconds float64 `json:"duration_seconds"`

	// Requests counts completed HTTP requests; SustainedQPS is URL
	// submissions per second actually achieved (requests × batch over
	// the measured duration).
	Requests     int64   `json:"requests"`
	SustainedQPS float64 `json:"sustained_qps"`

	// URLsSubmitted counts URLs carried by completed requests;
	// Accepted is how many the scheduler took; Rejected breaks the
	// rest down by the server's rejection reason.
	URLsSubmitted int64            `json:"urls_submitted"`
	Accepted      int64            `json:"accepted"`
	Rejected      map[string]int64 `json:"rejected"`
	// DropRate is rejected / submitted.
	DropRate float64 `json:"drop_rate"`

	// Errors counts failed requests (transport errors and non-200
	// responses other than shed 503s); ErrorRate is
	// errors / (requests + errors + shed).
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// Shed counts 503 responses carrying a Retry-After header — the
	// admission controller rejecting load to protect its SLO. They are
	// broken out from Errors because shedding under overload is the
	// server working as designed; ShedRate is shed / (requests +
	// errors + shed).
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// RetryAfterHonored counts shed responses after which the worker
	// actually backed off for the advertised Retry-After (capped at
	// the configured backoff) before offering load again.
	RetryAfterHonored int64 `json:"retry_after_honored"`
	// MissedArrivals counts open-loop arrivals discarded because the
	// arrival queue was full — offered load the service never saw.
	// Nonzero means the measured rate understates the target.
	MissedArrivals int64 `json:"missed_arrivals"`

	LatencyMeanUS int64 `json:"latency_mean_us"`
	LatencyP50US  int64 `json:"latency_p50_us"`
	LatencyP90US  int64 `json:"latency_p90_us"`
	LatencyP99US  int64 `json:"latency_p99_us"`
	LatencyP999US int64 `json:"latency_p999_us"`
	LatencyMaxUS  int64 `json:"latency_max_us"`

	// QueueDepthMax is the deepest feed queue observed — from the
	// per-response queue_depth field and the /metrics scrape combined;
	// QueueDepthFinal is the depth at the end of the run.
	QueueDepthMax   int `json:"queue_depth_max"`
	QueueDepthFinal int `json:"queue_depth_final"`
	// ScrapeErrors counts failed /metrics polls (0 when scraping is
	// disabled).
	ScrapeErrors int64 `json:"scrape_errors"`
}

// run is the engine's mutable state while a load test executes.
type run struct {
	cfg      Config
	client   *http.Client
	pageHTML string // score mode: the page body, built once

	next      atomic.Int64 // corpus round-robin position
	budget    atomic.Int64 // remaining requests (fixed-budget mode)
	requests  atomic.Int64
	submitted atomic.Int64
	accepted  atomic.Int64
	errors    atomic.Int64
	shed      atomic.Int64
	honored   atomic.Int64
	missed    atomic.Int64
	scrapeErr atomic.Int64

	mu        sync.Mutex
	latencies []int64 // µs, one per completed request
	rejected  map[string]int64
	depthMax  int
}

// Run executes one load test and reports what the service sustained.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.TargetURL == "" {
		return Report{}, errors.New("loadgen: Config.TargetURL is required")
	}
	if len(cfg.Corpus) == 0 {
		return Report{}, errors.New("loadgen: Config.Corpus is empty")
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		return Report{}, errors.New("loadgen: Config needs a Duration or a Requests budget")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.ScrapeInterval == 0 {
		cfg.ScrapeInterval = DefaultScrapeInterval
	}
	if cfg.ShedBackoff <= 0 {
		cfg.ShedBackoff = DefaultShedBackoff
	}
	switch cfg.Endpoint {
	case "", "feed":
		cfg.Endpoint = "feed"
	case "score":
		cfg.BatchSize = 1
		if cfg.PageBytes <= 0 {
			cfg.PageBytes = DefaultPageBytes
		}
	default:
		return Report{}, fmt.Errorf("loadgen: unknown Endpoint %q (want feed or score)", cfg.Endpoint)
	}
	if cfg.CacheMix < 0 || cfg.CacheMix > 1 {
		return Report{}, fmt.Errorf("loadgen: CacheMix %v out of range [0, 1]", cfg.CacheMix)
	}
	r := &run{
		cfg:      cfg,
		client:   cfg.Client,
		rejected: make(map[string]int64),
	}
	if cfg.Endpoint == "score" {
		r.pageHTML = buildScorePage(cfg.PageBytes)
	}
	if r.client == nil {
		// A dedicated transport with the pool sized to the worker count:
		// http.DefaultTransport keeps only 2 idle conns per host, so a
		// 64-worker run over it thrashes connections and measures the
		// client's own queueing instead of the server's.
		tr := &http.Transport{
			MaxIdleConns:        cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
		}
		r.client = &http.Client{Timeout: 30 * time.Second, Transport: tr}
	}
	if cfg.Requests > 0 {
		r.budget.Store(int64(cfg.Requests))
	} else {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// The queue-depth scraper rides its own goroutine for the whole
	// run; its last successful read is the final depth.
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	var finalDepth atomic.Int64
	var scrapeWG sync.WaitGroup
	if cfg.ScrapeInterval > 0 {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			t := time.NewTicker(cfg.ScrapeInterval)
			defer t.Stop()
			for {
				r.scrapeDepth(&finalDepth)
				select {
				case <-scrapeCtx.Done():
					return
				case <-t.C:
				}
			}
		}()
	}

	// Open loop: a pacer goroutine emits arrivals at the target rate
	// into a bounded queue (one second of arrivals); workers drain it.
	// Closed loop: no pacer, workers self-pace on response completion.
	var arrivals chan struct{}
	if cfg.QPS > 0 {
		depth := int(cfg.QPS)
		if depth < cfg.Workers {
			depth = cfg.Workers
		}
		arrivals = make(chan struct{}, depth)
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / cfg.QPS * float64(cfg.BatchSize)))
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					close(arrivals)
					return
				case <-t.C:
					select {
					case arrivals <- struct{}{}:
					default:
						r.missed.Add(1) // queue full: offered load lost
					}
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.Ramp > 0 && i > 0 {
				delay := time.Duration(int64(cfg.Ramp) * int64(i) / int64(cfg.Workers))
				select {
				case <-ctx.Done():
					return
				case <-time.After(delay):
				}
			}
			for {
				if cfg.Requests > 0 && r.budget.Add(-1) < 0 {
					return
				}
				if arrivals != nil {
					select {
					case <-ctx.Done():
						return
					case _, ok := <-arrivals:
						if !ok {
							return
						}
					}
				} else if ctx.Err() != nil {
					return
				}
				r.shoot(ctx)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopScrape()
	scrapeWG.Wait()

	return r.report(elapsed, int(finalDepth.Load())), nil
}

// shoot issues one request (a feed batch or one score page) and
// records its outcome.
func (r *run) shoot(ctx context.Context) {
	var body []byte
	var path string
	var urlCount int64
	if r.cfg.Endpoint == "score" {
		// A unique query string per request defeats the verdict cache,
		// so every accepted request pays the full scoring pipeline —
		// the work the latency SLO budgets. With CacheMix set, that
		// fraction of requests replays the hot set instead, so the run
		// measures the cached fast path in the advertised proportion.
		n := r.next.Add(1) - 1
		var u string
		if r.cfg.CacheMix > 0 && float64(n%1000) < r.cfg.CacheMix*1000 {
			hot := n % hotPages
			u = r.cfg.Corpus[int(hot)%len(r.cfg.Corpus)] + "?hot=" + strconv.FormatInt(hot, 10)
		} else {
			u = r.cfg.Corpus[int(n)%len(r.cfg.Corpus)] + "?q=" + strconv.FormatInt(n, 10)
		}
		body, _ = json.Marshal(serve.PageRequest{HTML: r.pageHTML, StartingURL: u})
		path = "/v1/score"
		urlCount = 1
	} else {
		urls := make([]string, r.cfg.BatchSize)
		for i := range urls {
			n := r.next.Add(1) - 1
			urls[i] = r.cfg.Corpus[int(n)%len(r.cfg.Corpus)]
		}
		body, _ = json.Marshal(serve.FeedRequest{URLs: urls})
		path = "/v1/feed"
		urlCount = int64(len(urls))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.TargetURL+path, bytes.NewReader(body))
	if err != nil {
		r.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := r.client.Do(req)
	lat := time.Since(t0).Microseconds()
	if err != nil {
		// A request cut off by the run deadline is neither a completed
		// request nor a service error — it just did not finish in time.
		if ctx.Err() == nil {
			r.errors.Add(1)
		}
		return
	}
	defer resp.Body.Close()
	// A 503 carrying Retry-After is the admission controller shedding
	// load — the server protecting its SLO, not failing. Count it apart
	// from errors and honor the advertised backoff (capped, so a
	// 60-second suggestion cannot idle the run) before offering load
	// again. Shed latencies stay out of the latency sample: they
	// measure the rejection fast path, not service.
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			r.shed.Add(1)
			if backoff := retryAfterDelay(ra, r.cfg.ShedBackoff); backoff > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(backoff):
					r.honored.Add(1)
				}
			}
			return
		}
	}
	if r.cfg.Endpoint == "score" {
		var sr serve.ScoreResponse
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&sr) != nil {
			r.errors.Add(1)
			return
		}
		r.requests.Add(1)
		r.submitted.Add(urlCount)
		r.accepted.Add(urlCount)
		r.mu.Lock()
		r.latencies = append(r.latencies, lat)
		r.mu.Unlock()
		return
	}
	var fr serve.FeedResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&fr) != nil {
		r.errors.Add(1)
		return
	}
	r.requests.Add(1)
	r.submitted.Add(urlCount)
	r.accepted.Add(int64(fr.Accepted))
	r.mu.Lock()
	r.latencies = append(r.latencies, lat)
	if fr.QueueDepth > r.depthMax {
		r.depthMax = fr.QueueDepth
	}
	for _, res := range fr.Results {
		if !res.Accepted {
			r.rejected[res.Reason]++
		}
	}
	r.mu.Unlock()
}

// retryAfterDelay parses a Retry-After header (delta-seconds form) and
// caps it at max. Unparseable values fall back to max: the server asked
// for a backoff, so back off, just not forever.
func retryAfterDelay(ra string, max time.Duration) time.Duration {
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 0 {
		return max
	}
	d := time.Duration(secs) * time.Second
	if d > max {
		return max
	}
	return d
}

// scrapeDepth polls GET /metrics for the feed queue depth.
func (r *run) scrapeDepth(final *atomic.Int64) {
	resp, err := r.client.Get(r.cfg.TargetURL + "/metrics")
	if err != nil {
		r.scrapeErr.Add(1)
		return
	}
	defer resp.Body.Close()
	var snap serve.MetricsSnapshot
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&snap) != nil {
		r.scrapeErr.Add(1)
		return
	}
	if snap.Feed == nil {
		return
	}
	final.Store(int64(snap.Feed.Depth))
	r.mu.Lock()
	if snap.Feed.Depth > r.depthMax {
		r.depthMax = snap.Feed.Depth
	}
	r.mu.Unlock()
}

// report assembles the final document from the run's counters.
func (r *run) report(elapsed time.Duration, finalDepth int) Report {
	rep := Report{
		Mode:              "closed",
		TargetQPS:         r.cfg.QPS,
		Workers:           r.cfg.Workers,
		BatchSize:         r.cfg.BatchSize,
		CacheMix:          r.cfg.CacheMix,
		DurationSeconds:   elapsed.Seconds(),
		Requests:          r.requests.Load(),
		URLsSubmitted:     r.submitted.Load(),
		Accepted:          r.accepted.Load(),
		Errors:            r.errors.Load(),
		Shed:              r.shed.Load(),
		RetryAfterHonored: r.honored.Load(),
		MissedArrivals:    r.missed.Load(),
		Rejected:          r.rejected,
		QueueDepthMax:     r.depthMax,
		QueueDepthFinal:   finalDepth,
		ScrapeErrors:      r.scrapeErr.Load(),
	}
	if r.cfg.QPS > 0 {
		rep.Mode = "open"
	}
	if elapsed > 0 {
		rep.SustainedQPS = float64(rep.URLsSubmitted) / elapsed.Seconds()
	}
	if rep.URLsSubmitted > 0 {
		rep.DropRate = float64(rep.URLsSubmitted-rep.Accepted) / float64(rep.URLsSubmitted)
	}
	if total := rep.Requests + rep.Errors + rep.Shed; total > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(total)
		rep.ShedRate = float64(rep.Shed) / float64(total)
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	if n := len(r.latencies); n > 0 {
		var sum int64
		for _, l := range r.latencies {
			sum += l
		}
		rep.LatencyMeanUS = sum / int64(n)
		rep.LatencyP50US = percentile(r.latencies, 0.50)
		rep.LatencyP90US = percentile(r.latencies, 0.90)
		rep.LatencyP99US = percentile(r.latencies, 0.99)
		rep.LatencyP999US = percentile(r.latencies, 0.999)
		rep.LatencyMaxUS = r.latencies[n-1]
	}
	return rep
}

// percentile reads the q-quantile from an ascending-sorted sample set
// (nearest-rank): exact over the recorded population, no bucketing
// error — a load report's p999 should not be an approximation.
func percentile(sorted []int64, q float64) int64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Table renders the human-readable summary cmd/kpload prints.
func (r Report) Table() string {
	var b strings.Builder
	w := func(k, format string, args ...any) {
		fmt.Fprintf(&b, "  %-16s %s\n", k, fmt.Sprintf(format, args...))
	}
	target := "unlimited (closed loop)"
	if r.TargetQPS > 0 {
		target = fmt.Sprintf("%.0f URL/s", r.TargetQPS)
	}
	w("mode", "%s", r.Mode)
	w("target rate", "%s", target)
	w("workers", "%d (batch %d)", r.Workers, r.BatchSize)
	if r.CacheMix > 0 {
		w("cache mix", "%.0f%% warm (hot set of %d pages)", r.CacheMix*100, hotPages)
	}
	w("duration", "%.1f s", r.DurationSeconds)
	w("sustained", "%.1f URL/s (%d requests, %d URLs)", r.SustainedQPS, r.Requests, r.URLsSubmitted)
	w("accepted", "%d (drop rate %.2f%%)", r.Accepted, r.DropRate*100)
	if len(r.Rejected) > 0 {
		reasons := make([]string, 0, len(r.Rejected))
		for reason := range r.Rejected {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, reason := range reasons {
			parts[i] = fmt.Sprintf("%s %d", reason, r.Rejected[reason])
		}
		w("rejected", "%s", strings.Join(parts, ", "))
	}
	w("errors", "%d (%.2f%%)", r.Errors, r.ErrorRate*100)
	if r.Shed > 0 {
		w("shed", "%d (%.2f%%) — 503 + Retry-After; backoff honored %d times",
			r.Shed, r.ShedRate*100, r.RetryAfterHonored)
	}
	if r.MissedArrivals > 0 {
		w("missed", "%d arrivals (generator could not keep pace)", r.MissedArrivals)
	}
	w("latency", "p50 %s  p90 %s  p99 %s  p999 %s  max %s",
		us(r.LatencyP50US), us(r.LatencyP90US), us(r.LatencyP99US), us(r.LatencyP999US), us(r.LatencyMaxUS))
	w("queue depth", "max %d, final %d", r.QueueDepthMax, r.QueueDepthFinal)
	return b.String()
}

// us renders a microsecond latency with a human unit.
func us(v int64) string {
	d := time.Duration(v) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", v)
	}
}

// WriteJSON writes the report as an indented JSON document — the
// LOAD_PR.json artifact CI uploads next to BENCH_PR.json.
func (r Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DefaultWorkersForHost picks a worker count for CLI defaults: enough
// concurrency to saturate the scoring pool without swamping a laptop.
func DefaultWorkersForHost() int {
	n := runtime.GOMAXPROCS(0)
	if n < DefaultWorkers {
		return DefaultWorkers
	}
	return n
}
