package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"knowphish/internal/feed"
	"knowphish/internal/serve"
)

// feedStatsStub is the /metrics feed block the stub server reports;
// its depth (7) deliberately exceeds the per-response depth (3) so the
// tests can tell the scrape path contributed.
var feedStatsStub = feed.Stats{Depth: 7}

// stubServer fakes kpserve's /v1/feed and /metrics surface: every Nth
// URL is rejected as queue_full, and /metrics reports a fixed queue
// depth.
func stubServer(t *testing.T, rejectEvery int, depth int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var urlsSeen atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/feed", func(w http.ResponseWriter, r *http.Request) {
		var req serve.FeedRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := serve.FeedResponse{QueueDepth: depth}
		for _, u := range req.URLs {
			n := urlsSeen.Add(1)
			res := serve.FeedResult{URL: u, Accepted: true}
			if rejectEvery > 0 && n%int64(rejectEvery) == 0 {
				res.Accepted = false
				res.Reason = "queue_full"
				resp.Rejected++
			} else {
				resp.Accepted++
			}
			resp.Results = append(resp.Results, res)
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := serve.MetricsSnapshot{Feed: &feedStatsStub}
		json.NewEncoder(w).Encode(snap)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &urlsSeen
}

func TestClosedLoopFixedBudget(t *testing.T) {
	srv, seen := stubServer(t, 0, 3)
	rep, err := Run(context.Background(), Config{
		TargetURL: srv.URL,
		Corpus:    []string{"https://a.example/", "https://b.example/"},
		Workers:   4,
		Requests:  40,
		BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Fatalf("mode = %q, want closed", rep.Mode)
	}
	if rep.Requests != 40 {
		t.Fatalf("requests = %d, want exactly the 40-request budget", rep.Requests)
	}
	if rep.URLsSubmitted != 80 || seen.Load() != 80 {
		t.Fatalf("urls: report %d, server saw %d, want 80", rep.URLsSubmitted, seen.Load())
	}
	if rep.Accepted != 80 || rep.DropRate != 0 {
		t.Fatalf("accepted = %d drop = %v, want all accepted", rep.Accepted, rep.DropRate)
	}
	if rep.Errors != 0 || rep.ErrorRate != 0 {
		t.Fatalf("errors = %d, want none", rep.Errors)
	}
	if rep.SustainedQPS <= 0 {
		t.Fatalf("sustained qps = %v, want > 0", rep.SustainedQPS)
	}
	// Percentiles come from a sorted sample set: monotone, max is max.
	if rep.LatencyP50US > rep.LatencyP99US || rep.LatencyP99US > rep.LatencyP999US || rep.LatencyP999US > rep.LatencyMaxUS {
		t.Fatalf("percentiles not monotone: p50 %d p99 %d p999 %d max %d",
			rep.LatencyP50US, rep.LatencyP99US, rep.LatencyP999US, rep.LatencyMaxUS)
	}
	// Queue depth is visible from both the per-response field and the
	// /metrics scrape; the stub reports 3 and 7 respectively.
	if rep.QueueDepthMax != 7 {
		t.Fatalf("queue depth max = %d, want 7 (scraped beats per-response 3)", rep.QueueDepthMax)
	}
}

func TestOpenLoopPacesAndCountsRejects(t *testing.T) {
	srv, _ := stubServer(t, 4, 1) // every 4th URL rejected queue_full
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		TargetURL:      srv.URL,
		Corpus:         []string{"https://a.example/"},
		QPS:            200,
		Workers:        4,
		Duration:       300 * time.Millisecond,
		ScrapeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.TargetQPS != 200 {
		t.Fatalf("mode/target = %q/%v, want open/200", rep.Mode, rep.TargetQPS)
	}
	// Open loop must not finish early (arrivals pace the run) and must
	// not exceed the offered load.
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("run finished in %v, want the full 300ms window", el)
	}
	if rep.SustainedQPS > 260 {
		t.Fatalf("sustained %v URL/s, want ≤ target 200 (+tolerance)", rep.SustainedQPS)
	}
	if rep.Rejected["queue_full"] == 0 {
		t.Fatalf("rejected = %v, want queue_full counts from per-URL results", rep.Rejected)
	}
	want := rep.URLsSubmitted - rep.Accepted
	if got := rep.Rejected["queue_full"]; got != want {
		t.Fatalf("queue_full = %d, want %d (submitted-accepted)", got, want)
	}
	if rep.DropRate <= 0 {
		t.Fatal("drop rate = 0, want > 0 with forced rejects")
	}
}

func TestErrorsCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		TargetURL:      srv.URL,
		Corpus:         []string{"https://a.example/"},
		Workers:        2,
		Requests:       10,
		ScrapeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 10 || rep.Requests != 0 {
		t.Fatalf("errors/requests = %d/%d, want 10/0", rep.Errors, rep.Requests)
	}
	if rep.ErrorRate != 1 {
		t.Fatalf("error rate = %v, want 1", rep.ErrorRate)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                      // no target
		{TargetURL: "http://x"}, // no corpus
		{TargetURL: "http://x", Corpus: []string{"u"}}, // no budget
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: Run accepted an invalid config", i)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.90, 90}, {0.99, 100}, {0.999, 100}} {
		if got := percentile(s, tc.q); got != tc.want {
			t.Fatalf("p%v = %d, want %d", tc.q*100, got, tc.want)
		}
	}
	if got := percentile([]int64{42}, 0.999); got != 42 {
		t.Fatalf("single sample p999 = %d, want 42", got)
	}
}

func TestReportTableAndJSON(t *testing.T) {
	rep := Report{
		Mode: "open", TargetQPS: 100, Workers: 4, BatchSize: 1,
		DurationSeconds: 5, Requests: 480, URLsSubmitted: 480,
		Accepted: 470, Rejected: map[string]int64{"queue_full": 10},
		SustainedQPS: 96, DropRate: 10.0 / 480,
		LatencyP50US: 900, LatencyP99US: 4200, LatencyP999US: 9000, LatencyMaxUS: 12000,
		QueueDepthMax: 64, QueueDepthFinal: 0,
	}
	table := rep.Table()
	for _, want := range []string{"open", "96.0 URL/s", "queue_full 10", "p999 9.0ms", "max 64, final 0"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	path := t.TempDir() + "/LOAD_PR.json"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	var back Report
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SustainedQPS != rep.SustainedQPS || back.Rejected["queue_full"] != 10 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
