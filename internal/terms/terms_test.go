package terms

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalizePaperExample(t *testing.T) {
	// Section III-B: { B, β, b̀, b̂ } → b.
	for _, r := range []rune{'B', 'β', 'b'} {
		if got := Canonicalize(r); got != 'b' {
			t.Errorf("Canonicalize(%q) = %q, want b", r, got)
		}
	}
	// Accented forms via the fold table.
	for r, want := range map[rune]rune{'é': 'e', 'Ñ': 'n', 'ü': 'u', 'ç': 'c', 'а': 'a'} {
		if got := Canonicalize(r); got != want {
			t.Errorf("Canonicalize(%q) = %q, want %q", r, got, want)
		}
	}
	// Non-letters are rejected.
	for _, r := range []rune{'7', '-', '.', ' ', '中', '€'} {
		if got := Canonicalize(r); got != -1 {
			t.Errorf("Canonicalize(%q) = %q, want -1", r, got)
		}
	}
}

func TestExtract(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Bank of America", []string{"bank", "america"}}, // "of" dropped (<3)
		{"sign-in.amazon.co.uk", []string{"sign", "amazon"}},
		{"PayPal Secure Login", []string{"paypal", "secure", "login"}},
		{"dl4a s2mr e-go", nil}, // all fragments < 3 chars (paper §VII-B)
		{"theinstantexchange", []string{"theinstantexchange"}},
		{"", nil},
		{"123 456", nil},
		{"Crédit Agricole", []string{"credit", "agricole"}},
		{"foo foo bar", []string{"foo", "foo", "bar"}},
	}
	for _, tt := range tests {
		if got := Extract(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Extract(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestQuickExtractInvariants(t *testing.T) {
	f := func(s string) bool {
		for _, term := range Extract(s) {
			if len(term) < MinTermLength {
				return false
			}
			for i := 0; i < len(term); i++ {
				if term[i] < 'a' || term[i] > 'z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickExtractIdempotent(t *testing.T) {
	// Extracting from the joined output of Extract returns the same terms.
	f := func(s string) bool {
		first := Extract(s)
		second := Extract(strings.Join(first, " "))
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistributionProbabilities(t *testing.T) {
	d := NewDistribution([]string{"foo", "foo", "bar", "baz"})
	if got := d.P("foo"); got != 0.5 {
		t.Errorf("P(foo) = %v, want 0.5", got)
	}
	if got := d.P("bar"); got != 0.25 {
		t.Errorf("P(bar) = %v, want 0.25", got)
	}
	if got := d.P("missing"); got != 0 {
		t.Errorf("P(missing) = %v, want 0", got)
	}
	if d.Len() != 3 || d.TotalOccurrences() != 4 {
		t.Errorf("Len=%d Total=%d, want 3 and 4", d.Len(), d.TotalOccurrences())
	}
	if !d.Contains("baz") || d.Contains("qux") {
		t.Error("Contains misbehaves")
	}
}

func TestQuickDistributionSumsToOne(t *testing.T) {
	f := func(raw []string) bool {
		var occ []string
		for _, s := range raw {
			occ = append(occ, Extract(s)...)
		}
		d := NewDistribution(occ)
		if len(occ) == 0 {
			return d.Empty()
		}
		var sum float64
		for _, term := range d.Terms() {
			p := d.P(term)
			if p <= 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopN(t *testing.T) {
	d := NewDistribution([]string{"aaa", "aaa", "aaa", "bbb", "bbb", "ccc", "ddd"})
	got := d.TopN(2)
	if !reflect.DeepEqual(got, []string{"aaa", "bbb"}) {
		t.Errorf("TopN(2) = %v", got)
	}
	// Ties broken lexicographically.
	got = d.TopN(4)
	if !reflect.DeepEqual(got, []string{"aaa", "bbb", "ccc", "ddd"}) {
		t.Errorf("TopN(4) = %v", got)
	}
	if got := d.TopN(100); len(got) != 4 {
		t.Errorf("TopN(100) len = %d, want 4", len(got))
	}
}

func TestSubstringProbabilitySum(t *testing.T) {
	d := NewDistribution([]string{"bank", "america", "bank", "login"})
	// "bank" and "america" are substrings of "bankofamerica".
	got := d.SubstringProbabilitySum("bankofamerica")
	want := 0.5 + 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SubstringProbabilitySum = %v, want %v", got, want)
	}
	if d.SubstringProbabilitySum("") != 0 {
		t.Error("empty target should yield 0")
	}
}

func TestHellingerKnownValues(t *testing.T) {
	p := NewDistribution([]string{"aaa", "bbb"})
	q := NewDistribution([]string{"aaa", "bbb"})
	if got := Hellinger(p, q); got != 0 {
		t.Errorf("identical distributions: H² = %v, want 0", got)
	}
	r := NewDistribution([]string{"ccc", "ddd"})
	if got := Hellinger(p, r); got != 1 {
		t.Errorf("disjoint distributions: H² = %v, want 1", got)
	}
	// Half-overlap hand computation: P = {a:1}, Q = {a:.5, b:.5}
	// H² = ½[(1-√.5)² + .5] = ½[1 - 2√.5 + .5 + .5] = 1 - √.5/... compute:
	pa := NewDistribution([]string{"aaa"})
	qa := NewDistribution([]string{"aaa", "bbb"})
	want := 0.5 * ((1-math.Sqrt(0.5))*(1-math.Sqrt(0.5)) + 0.5)
	if got := Hellinger(pa, qa); math.Abs(got-want) > 1e-12 {
		t.Errorf("H² = %v, want %v", got, want)
	}
}

func TestHellingerEmptyConventions(t *testing.T) {
	var empty Distribution
	full := NewDistribution([]string{"aaa"})
	if got := Hellinger(empty, empty); got != 0 {
		t.Errorf("H²(∅,∅) = %v, want 0", got)
	}
	if got := Hellinger(empty, full); got != 1 {
		t.Errorf("H²(∅,P) = %v, want 1", got)
	}
	if got := Hellinger(full, empty); got != 1 {
		t.Errorf("H²(P,∅) = %v, want 1", got)
	}
}

// randomDist builds a random small distribution for property tests.
func randomDist(r *rand.Rand) Distribution {
	n := 1 + r.Intn(8)
	var occ []string
	for i := 0; i < n; i++ {
		occ = append(occ, genTerm(r))
	}
	return NewDistribution(occ)
}

func genTerm(r *rand.Rand) string {
	n := MinTermLength + r.Intn(5)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(6)) // small alphabet → overlaps common
	}
	return string(b)
}

func TestQuickHellingerProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p, q := randomDist(r), randomDist(r)
		h := Hellinger(p, q)
		if h < 0 || h > 1 {
			t.Fatalf("H² out of range: %v", h)
		}
		if got := Hellinger(q, p); math.Abs(got-h) > 1e-12 {
			t.Fatalf("asymmetric: H(p,q)=%v H(q,p)=%v", h, got)
		}
		if got := Hellinger(p, p); got != 0 {
			t.Fatalf("H(p,p) = %v, want 0", got)
		}
		// Relation to Bhattacharyya: H² = 1 − BC.
		if bc := BhattacharyyaCoefficient(p, q); math.Abs(h-(1-bc)) > 1e-9 {
			t.Fatalf("H² = %v but 1−BC = %v", h, 1-bc)
		}
	}
}

func TestQuickTotalVariationProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p, q := randomDist(r), randomDist(r)
		tv := TotalVariation(p, q)
		if tv < 0 || tv > 1 {
			t.Fatalf("TV out of range: %v", tv)
		}
		if got := TotalVariation(q, p); math.Abs(got-tv) > 1e-12 {
			t.Fatalf("asymmetric TV")
		}
		if TotalVariation(p, p) != 0 {
			t.Fatalf("TV(p,p) != 0")
		}
		// Hellinger² ≤ TV (standard inequality H² ≤ TV ≤ H√2, on squared H).
		if h := Hellinger(p, q); h > tv+1e-9 {
			t.Fatalf("H²=%v > TV=%v", h, tv)
		}
	}
}

func TestFromTextAndStrings(t *testing.T) {
	d1 := FromText("secure bank login bank")
	if d1.P("bank") != 0.5 {
		t.Errorf("FromText P(bank) = %v, want 0.5", d1.P("bank"))
	}
	d2 := FromStrings([]string{"secure bank", "login bank"})
	if d2.P("bank") != 0.5 {
		t.Errorf("FromStrings P(bank) = %v, want 0.5", d2.P("bank"))
	}
}

func TestTermSet(t *testing.T) {
	d := FromText("one two three three")
	set := d.TermSet()
	if len(set) != 3 {
		t.Fatalf("TermSet size = %d, want 3", len(set))
	}
	for _, want := range []string{"one", "two", "three"} {
		if _, ok := set[want]; !ok {
			t.Errorf("TermSet missing %q", want)
		}
	}
}

func TestCountMatchesExtract(t *testing.T) {
	cases := []string{
		"",
		"ab",
		"abc",
		"secure-login-77 Bank of Tests",
		"paypаl with-а-homograph",              // Cyrillic а folds to a
		"x.y.z..w http://example.com/a/b?c=dd", // separators everywhere
		"ßströng ünïcode ендс",
		"no",
	}
	for _, s := range cases {
		if got, want := Count(s), len(Extract(s)); got != want {
			t.Errorf("Count(%q) = %d, want len(Extract) = %d", s, got, want)
		}
	}
}

func TestAppendFolded(t *testing.T) {
	if got := string(AppendFolded(nil, "Secure-Login-77")); got != "securelogin" {
		t.Errorf("AppendFolded = %q, want securelogin", got)
	}
	// Appends to the tail of dst rather than overwriting it.
	if got := string(AppendFolded([]byte("x"), "ab")); got != "xab" {
		t.Errorf("AppendFolded with prefix = %q, want xab", got)
	}
}

func TestBytesVariantsMatchStringAPI(t *testing.T) {
	d := FromText("secure bank login secure")
	for _, term := range []string{"secure", "bank", "absent", ""} {
		if got, want := d.ContainsBytes([]byte(term)), d.Contains(term); got != want {
			t.Errorf("ContainsBytes(%q) = %v, want %v", term, got, want)
		}
	}
	for _, target := range []string{"", "securebank", "bank", "xyz", "loginsecurelogin"} {
		got := d.SubstringProbabilitySumBytes([]byte(target))
		want := d.SubstringProbabilitySum(target)
		if got != want {
			t.Errorf("SubstringProbabilitySumBytes(%q) = %v, want %v", target, got, want)
		}
	}
}
