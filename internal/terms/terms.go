// Package terms implements the term-extraction scheme of Section III-B of
// the paper and the probabilistic term distributions compared with the
// Hellinger distance (Equation 1).
//
// A "term" is a maximal run of characters from the 26-letter lowercase
// English alphabet A = {a..z} of length at least 3, after canonicalizing
// upper-case, accented and look-alike characters to their base letter
// (e.g. B, β, b̀, b̂ → b). Everything outside A splits the input. The scheme
// is deliberately language-independent: no dictionary, no stop-word list,
// no stemming.
package terms

import (
	"sort"
	"strings"
	"unicode"
)

// MinTermLength is the minimum length of an extracted term. Shorter
// substrings are discarded (Section III-B: "throw away any substring whose
// length is less than 3").
const MinTermLength = 3

// Canonicalize maps r to a lowercase English letter in a–z, or -1 when the
// rune has no base letter (digits, punctuation, CJK, etc.). Accented Latin
// characters fold to their base letter; Greek look-alikes used in
// homograph attacks fold to the Latin letter they resemble.
func Canonicalize(r rune) rune {
	switch {
	case 'a' <= r && r <= 'z':
		return r
	case 'A' <= r && r <= 'Z':
		return r + ('a' - 'A')
	}
	if r < 128 {
		return -1
	}
	if f, ok := foldTable[r]; ok {
		return f
	}
	// Generic decomposition fallback: strip the combining class by
	// checking the unicode Latin range tables.
	if unicode.Is(unicode.Latin, r) {
		lower := unicode.ToLower(r)
		if f, ok := foldTable[lower]; ok {
			return f
		}
	}
	return -1
}

// Extract splits s into terms per the paper's scheme. The returned slice
// preserves occurrence order and repetitions (one entry per occurrence),
// which NewDistribution needs to compute probabilities.
func Extract(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= MinTermLength {
			out = append(out, cur.String())
		}
		cur.Reset()
	}
	for _, r := range s {
		c := Canonicalize(r)
		if c < 0 {
			flush()
			continue
		}
		cur.WriteRune(c)
	}
	flush()
	return out
}

// Count returns len(Extract(s)) without materializing the terms: the
// number of maximal runs of canonicalizable characters of length at
// least MinTermLength. It allocates nothing, which is what keeps the
// URL-statistics features (terms-in-URL, terms-in-mld, computed per
// link on every scored page) off the heap.
func Count(s string) int {
	n, run := 0, 0
	for _, r := range s {
		if Canonicalize(r) < 0 {
			if run >= MinTermLength {
				n++
			}
			run = 0
			continue
		}
		run++
	}
	if run >= MinTermLength {
		n++
	}
	return n
}

// AppendFolded appends the canonicalized form of s to dst: every rune
// with a base letter contributes that letter, everything else is
// dropped ("secure-login-77" → "securelogin"). It is the
// allocation-free form of folding an mld to the term its usage in text
// would produce; Canonicalize only emits a–z, so one byte per kept
// rune.
func AppendFolded(dst []byte, s string) []byte {
	for _, r := range s {
		if c := Canonicalize(r); c > 0 {
			dst = append(dst, byte(c))
		}
	}
	return dst
}

// ExtractAll extracts terms from every string in ss, concatenated in order.
func ExtractAll(ss []string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, Extract(s)...)
	}
	return out
}

// Distribution is a probabilistic term distribution D_S: each extracted
// term t_i paired with its occurrence probability p_i within the source,
// with probabilities in (0, 1] summing to 1 (Section III-B).
//
// Terms are stored sorted so that every numeric traversal (Hellinger
// distance, probability sums) visits them in a fixed order — floating-
// point accumulation is order-sensitive, and the whole repository
// guarantees bit-identical results for identical inputs.
type Distribution struct {
	terms []string  // sorted ascending
	probs []float64 // parallel to terms
	index map[string]int
	total int
}

// NewDistribution builds a distribution from a multiset of term
// occurrences. An empty occurrence list yields the empty distribution.
func NewDistribution(occurrences []string) Distribution {
	if len(occurrences) == 0 {
		return Distribution{}
	}
	counts := make(map[string]int, len(occurrences))
	for _, t := range occurrences {
		counts[t]++
	}
	ts := make([]string, 0, len(counts))
	for t := range counts {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	probs := make([]float64, len(ts))
	index := make(map[string]int, len(ts))
	n := float64(len(occurrences))
	for i, t := range ts {
		probs[i] = float64(counts[t]) / n
		index[t] = i
	}
	return Distribution{terms: ts, probs: probs, index: index, total: len(occurrences)}
}

// FromText extracts terms from s and builds their distribution.
func FromText(s string) Distribution {
	return NewDistribution(Extract(s))
}

// FromStrings extracts terms from every string and builds the combined
// distribution.
func FromStrings(ss []string) Distribution {
	return NewDistribution(ExtractAll(ss))
}

// Empty reports whether the distribution has no terms.
func (d Distribution) Empty() bool { return len(d.terms) == 0 }

// Len returns the number of distinct terms.
func (d Distribution) Len() int { return len(d.terms) }

// TotalOccurrences returns the number of term occurrences the distribution
// was built from.
func (d Distribution) TotalOccurrences() int { return d.total }

// P returns the probability of term t, or 0 if absent.
func (d Distribution) P(t string) float64 {
	if i, ok := d.index[t]; ok {
		return d.probs[i]
	}
	return 0
}

// Contains reports whether term t occurs in the distribution.
func (d Distribution) Contains(t string) bool {
	_, ok := d.index[t]
	return ok
}

// ContainsBytes is Contains for a byte-slice term, allocation-free (the
// map lookup converts without copying).
func (d Distribution) ContainsBytes(t []byte) bool {
	_, ok := d.index[string(t)]
	return ok
}

// Terms returns the distinct terms in sorted order. The slice is shared;
// callers must not modify it.
func (d Distribution) Terms() []string { return d.terms }

// TermSet returns the support of the distribution as a set.
func (d Distribution) TermSet() map[string]struct{} {
	out := make(map[string]struct{}, len(d.terms))
	for _, t := range d.terms {
		out[t] = struct{}{}
	}
	return out
}

// SubstringProbabilitySum returns the sum of probabilities of terms that
// are substrings of target. Used by feature set f3: "sum of probability
// from terms of D that are substrings of starting/landing mld".
// Deterministic: terms are visited in sorted order.
func (d Distribution) SubstringProbabilitySum(target string) float64 {
	if target == "" {
		return 0
	}
	var sum float64
	for i, t := range d.terms {
		if strings.Contains(target, t) {
			sum += d.probs[i]
		}
	}
	return sum
}

// SubstringProbabilitySumBytes is SubstringProbabilitySum for a
// byte-slice target. It is allocation-free: the substring scan compares
// bytes in place instead of converting either side to a string.
func (d Distribution) SubstringProbabilitySumBytes(target []byte) float64 {
	if len(target) == 0 {
		return 0
	}
	var sum float64
	for i, t := range d.terms {
		if bytesContainString(target, t) {
			sum += d.probs[i]
		}
	}
	return sum
}

// bytesContainString reports whether sub occurs in b, matching
// strings.Contains semantics without allocating. The scan is naive;
// targets here are mld-length (tens of bytes), where setup-free beats
// Rabin–Karp.
func bytesContainString(b []byte, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(b); i++ {
		// A string(...) conversion in an == comparison does not allocate.
		if string(b[i:i+len(sub)]) == sub {
			return true
		}
	}
	return false
}

// TopN returns the n most probable terms, ties broken lexicographically
// for determinism.
func (d Distribution) TopN(n int) []string {
	type tp struct {
		t string
		p float64
	}
	all := make([]tp, 0, len(d.terms))
	for i, t := range d.terms {
		all = append(all, tp{t, d.probs[i]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].t < all[j].t
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}
