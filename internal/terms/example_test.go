package terms_test

import (
	"fmt"

	"knowphish/internal/terms"
)

func ExampleExtract() {
	// Section III-B: canonicalize, split on non-letters, drop short
	// fragments. Homograph characters fold to their base letter.
	fmt.Println(terms.Extract("Bank of Amérìca — sign-in"))
	// Output: [bank america sign]
}

func ExampleHellinger() {
	legitimate := terms.FromText("harbor field news harbor field stories")
	phishing := terms.FromText("novabank login verify password")
	same := terms.FromText("harbor field news harbor field stories")

	fmt.Printf("disjoint: %.0f\n", terms.Hellinger(legitimate, phishing))
	fmt.Printf("identical: %.0f\n", terms.Hellinger(legitimate, same))
	// Output:
	// disjoint: 1
	// identical: 0
}

func ExampleDistribution_TopN() {
	d := terms.FromText("login login login account account secure")
	fmt.Println(d.TopN(2))
	// Output: [login account]
}
