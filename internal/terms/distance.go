package terms

import "math"

// Hellinger computes the squared Hellinger distance H²(P,Q) between two
// term distributions per Equation 1 of the paper:
//
//	H²(P,Q) = ½ Σ_{x ∈ P∪Q} (√P(x) − √Q(x))²
//
// The result is in [0,1]: 0 when P and Q are identical, 1 when their
// supports are disjoint (P ∩ Q = ∅). By convention — needed for IP-based
// URLs and empty sources discussed in Section VII-B — the distance between
// two empty distributions is 0 and between an empty and a non-empty
// distribution is 1.
//
// The accumulation walks both sorted term lists in merge order, so the
// result is bit-identical across runs.
func Hellinger(p, q Distribution) float64 {
	if p.Empty() && q.Empty() {
		return 0
	}
	if p.Empty() || q.Empty() {
		return 1
	}
	var sum float64
	i, j := 0, 0
	for i < len(p.terms) && j < len(q.terms) {
		switch {
		case p.terms[i] == q.terms[j]:
			d := math.Sqrt(p.probs[i]) - math.Sqrt(q.probs[j])
			sum += d * d
			i++
			j++
		case p.terms[i] < q.terms[j]:
			sum += p.probs[i] // (√p − 0)²
			i++
		default:
			sum += q.probs[j]
			j++
		}
	}
	for ; i < len(p.terms); i++ {
		sum += p.probs[i]
	}
	for ; j < len(q.terms); j++ {
		sum += q.probs[j]
	}
	h := sum / 2
	// Clamp floating-point drift so callers can rely on [0,1].
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// TotalVariation computes the total-variation distance
// ½ Σ |P(x) − Q(x)| ∈ [0,1]. It is used only by the distance-metric
// ablation (DESIGN.md A2), not by the paper's feature set.
func TotalVariation(p, q Distribution) float64 {
	if p.Empty() && q.Empty() {
		return 0
	}
	if p.Empty() || q.Empty() {
		return 1
	}
	var sum float64
	i, j := 0, 0
	for i < len(p.terms) && j < len(q.terms) {
		switch {
		case p.terms[i] == q.terms[j]:
			sum += math.Abs(p.probs[i] - q.probs[j])
			i++
			j++
		case p.terms[i] < q.terms[j]:
			sum += p.probs[i]
			i++
		default:
			sum += q.probs[j]
			j++
		}
	}
	for ; i < len(p.terms); i++ {
		sum += p.probs[i]
	}
	for ; j < len(q.terms); j++ {
		sum += q.probs[j]
	}
	tv := sum / 2
	if tv > 1 {
		return 1
	}
	return tv
}

// BhattacharyyaCoefficient computes BC(P,Q) = Σ √(P(x)·Q(x)) ∈ [0,1];
// 1 − BC equals the squared Hellinger distance. Exposed for the
// distance-metric ablation.
func BhattacharyyaCoefficient(p, q Distribution) float64 {
	if p.Empty() && q.Empty() {
		return 1
	}
	if p.Empty() || q.Empty() {
		return 0
	}
	var sum float64
	i, j := 0, 0
	for i < len(p.terms) && j < len(q.terms) {
		switch {
		case p.terms[i] == q.terms[j]:
			sum += math.Sqrt(p.probs[i] * q.probs[j])
			i++
			j++
		case p.terms[i] < q.terms[j]:
			i++
		default:
			j++
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}
