package serve

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistPercentiles(t *testing.T) {
	var h latencyHist
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zero")
	}
	// 90 fast requests, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	p50 := h.Percentile(50)
	p99 := h.Percentile(99)
	if p50 > 1000 {
		t.Errorf("p50 = %dµs, want <= ~256µs bucket", p50)
	}
	if p99 < 10_000 {
		t.Errorf("p99 = %dµs, want in the tens of milliseconds", p99)
	}
	if p50 > p99 {
		t.Errorf("p50 %d > p99 %d", p50, p99)
	}
	if m := h.Mean(); m <= 0 {
		t.Errorf("mean = %d", m)
	}
}

func TestLatencyHistExtremes(t *testing.T) {
	var h latencyHist
	h.Observe(-time.Second) // clamped, must not panic or corrupt
	h.Observe(0)
	h.Observe(10 * time.Minute) // beyond last bucket boundary
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Percentile(100) == 0 {
		t.Error("p100 of nonempty histogram is zero")
	}
}

func TestMetricsSnapshotCounters(t *testing.T) {
	m := newMetrics()
	m.requests.Add(5)
	m.scored.Add(3)
	m.phish.Add(1)
	m.cacheHits.Add(2)
	m.cacheMiss.Add(2)
	m.latency.Observe(time.Millisecond)
	snap := m.Snapshot(7)
	if snap.Requests != 5 || snap.PagesScored != 3 || snap.PhishVerdicts != 1 {
		t.Errorf("counters: %+v", snap)
	}
	if snap.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", snap.CacheHitRate)
	}
	if snap.CacheEntries != 7 {
		t.Errorf("entries = %d", snap.CacheEntries)
	}
	if snap.LatencyP50US <= 0 {
		t.Errorf("p50 = %d", snap.LatencyP50US)
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := newMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.requests.Add(1)
				m.latency.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot(0)
	if snap.Requests != 8000 {
		t.Errorf("requests = %d, want 8000", snap.Requests)
	}
	if m.latency.Count() != 8000 {
		t.Errorf("latency count = %d, want 8000", m.latency.Count())
	}
}
