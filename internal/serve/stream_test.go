package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// streamBody builds an NDJSON request body of n distinct raw-HTML pages.
func streamBody(n int) *bytes.Buffer {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		line, _ := json.Marshal(V2ScoreRequest{PageRequest: PageRequest{
			HTML:       fmt.Sprintf(`<title>Site %d</title><body>welcome to page %d <a href="http://peer%d.test/">peer</a></body>`, i, i, i),
			LandingURL: fmt.Sprintf("http://site%d.test/page", i),
		}})
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return &buf
}

func TestScoreStreamDeliversEveryItem(t *testing.T) {
	s := newServer(t, nil)
	const n = 12
	req := httptest.NewRequest(http.MethodPost, "/v2/score/stream", streamBody(n))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var res V2StreamResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		if res.Error != "" {
			t.Fatalf("item %d failed: %s", res.Index, res.Error)
		}
		if seen[res.Index] {
			t.Fatalf("item %d delivered twice", res.Index)
		}
		seen[res.Index] = true
		if res.V2ScoreResponse == nil || res.Score < 0 || res.Score > 1 || res.Label == "" {
			t.Fatalf("malformed verdict line: %+v", res)
		}
		if res.LandingURL != fmt.Sprintf("http://site%d.test/page", res.Index) {
			t.Fatalf("item %d carries landing url %q", res.Index, res.LandingURL)
		}
	}
	if len(seen) != n {
		t.Fatalf("stream delivered %d of %d items", len(seen), n)
	}
	if m := s.Metrics(); m.StreamedItems != n {
		t.Errorf("streamed_items = %d, want %d", m.StreamedItems, n)
	}
}

func TestScoreStreamPerItemErrors(t *testing.T) {
	s := newServer(t, nil)
	body := strings.NewReader(
		`{"html":"<p>fine</p>","landing_url":"http://ok.test/"}` + "\n" +
			`{"html":` + "\n" + // malformed JSON
			`{"html":"<p>no url</p>"}` + "\n" + // unresolvable page
			`{"html":"<p>also fine</p>","landing_url":"http://ok2.test/","explain":"bogus"}` + "\n") // bad option
	req := httptest.NewRequest(http.MethodPost, "/v2/score/stream", body)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	byIdx := map[int]V2StreamResult{}
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var res V2StreamResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		byIdx[res.Index] = res
	}
	if len(byIdx) != 4 {
		t.Fatalf("got %d result lines, want 4", len(byIdx))
	}
	if byIdx[0].Error != "" || byIdx[0].V2ScoreResponse == nil {
		t.Errorf("good item 0 failed: %+v", byIdx[0])
	}
	for _, i := range []int{1, 2, 3} {
		if byIdx[i].Error == "" {
			t.Errorf("bad item %d produced no error", i)
		}
		if byIdx[i].V2ScoreResponse != nil {
			t.Errorf("bad item %d carries a verdict", i)
		}
	}
}

func TestScoreStreamOverLimitRejected(t *testing.T) {
	s := newServer(t, func(cfg *Config) { cfg.MaxBatch = 4 })
	req := httptest.NewRequest(http.MethodPost, "/v2/score/stream", streamBody(5))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	if m := s.Metrics(); m.BatchRejected != 1 {
		t.Errorf("batch_rejected = %d, want 1", m.BatchRejected)
	}
	if m := s.Metrics(); m.PagesScored != 0 {
		t.Errorf("rejected stream scored %d pages", m.PagesScored)
	}
}

func TestScoreStreamEmpty(t *testing.T) {
	s := newServer(t, nil)
	req := httptest.NewRequest(http.MethodPost, "/v2/score/stream", strings.NewReader("\n\n"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
}

// TestStreamFlushesThroughInstrumentation pins the transport contract:
// each verdict line must reach the client while the server is still
// scoring later items. This requires the instrumentation wrapper to
// forward Flush to the real writer — a plain interface-embedding
// statusRecorder hides http.Flusher and silently degrades streaming to
// one buffered batch (found by review: flusher was always nil in
// production while httptest recorders masked it).
func TestStreamFlushesThroughInstrumentation(t *testing.T) {
	var rec statusRecorder
	if _, ok := any(&rec).(interface{ Flush() }); !ok {
		t.Fatal("statusRecorder does not forward Flush")
	}

	const n = 200
	s := newServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.CacheSize = -1
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v2/score/stream", "application/x-ndjson", heavyStreamBody(n))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	// The first line (~400 bytes, far under any transport buffer) must
	// arrive while most of the 200 heavy items are still unscored —
	// only an explicit per-item flush delivers it.
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		t.Fatalf("reading first stream line: %v", err)
	}
	if scored := s.Metrics().PagesScored; scored >= n {
		t.Fatalf("first line arrived only after all %d items were scored (no per-item flush)", scored)
	}
}

// heavyStreamBody builds an NDJSON body of n link-dense pages, each
// costing the pipeline a substantial sub-millisecond analysis — enough
// aggregate work that a disconnect demonstrably lands mid-stream.
func heavyStreamBody(n int) *bytes.Buffer {
	var page strings.Builder
	page.WriteString("<title>Portal</title><body>")
	for j := 0; j < 100; j++ {
		fmt.Fprintf(&page, `<a href="http://peer%d.example/path/%d">partner link %d</a> assorted page words here `, j, j, j)
	}
	page.WriteString("</body>")
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		line, _ := json.Marshal(V2ScoreRequest{PageRequest: PageRequest{
			HTML:       page.String(),
			LandingURL: fmt.Sprintf("http://heavy%d.test/page", i),
		}})
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return &buf
}

// TestScoreStreamStopsOnClientDisconnect is the satellite end-to-end
// proof: a client that walks away mid-stream stops the server's
// remaining scoring work. A one-worker server receives a long stream
// over a real TCP connection; the client reads one verdict and slams
// the connection shut; the server must abandon most of the stream
// instead of grinding through all of it.
func TestScoreStreamStopsOnClientDisconnect(t *testing.T) {
	const n = 600
	s := newServer(t, func(cfg *Config) {
		cfg.Workers = 1    // serialize scoring so the stream takes a while
		cfg.CacheSize = -1 // every item is distinct work
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v2/score/stream", "application/x-ndjson", heavyStreamBody(n))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	// Read exactly one result line, then drop the connection.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("reading first stream line: %v", err)
	}
	resp.Body.Close()

	// The handler notices the dead connection at the next item boundary
	// and stops; wait for the cancellation to be recorded, then for
	// scoring progress to stop.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var last int64 = -1
	for {
		m := s.Metrics()
		if m.PagesScored == last {
			break
		}
		last = m.PagesScored
		time.Sleep(50 * time.Millisecond)
		if time.Now().After(deadline) {
			t.Fatal("scoring never settled")
		}
	}
	if scored := s.Metrics().PagesScored; scored >= n {
		t.Fatalf("server scored all %d items after the client disconnected", scored)
	} else {
		t.Logf("scored %d of %d items before the disconnect took effect", scored, n)
	}
}

// TestScoreV2DeadlineExceeded pins the 504 path: a server-wide default
// deadline that is already expired when scoring starts turns every
// scoring request into a bounded-latency failure instead of a full
// pipeline run.
func TestScoreV2DeadlineExceeded(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) { cfg.DefaultDeadline = time.Nanosecond })
	var resp errorResponse
	code := call(t, s, http.MethodPost, "/v2/score",
		V2ScoreRequest{PageRequest: PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot}}, &resp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	if resp.Error == "" {
		t.Error("504 without a JSON error body")
	}
	if m := s.Metrics(); m.PagesScored != 0 {
		t.Errorf("expired deadline still scored %d pages", m.PagesScored)
	}

	// The stream folds the same condition into per-item errors.
	req := httptest.NewRequest(http.MethodPost, "/v2/score/stream", streamBody(3))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status = %d", rec.Code)
	}
	lines := 0
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var res V2StreamResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.Error == "" {
			t.Errorf("item %d: expected a deadline error line", res.Index)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("got %d error lines, want 3", lines)
	}
}
