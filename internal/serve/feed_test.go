package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/feed"
	"knowphish/internal/store"
	"knowphish/internal/target"
)

// feedServer assembles a server with the full ingestion pipeline wired
// in: a store in a temp dir and a scheduler crawling the synthetic
// world plus any extra sites.
func feedServer(t *testing.T, extra []crawl.Fetcher, mutate func(*feed.Config)) (*Server, *feed.Scheduler, *store.Store) {
	t.Helper()
	c, d := fixtures(t)
	// The legacy JSONL engine keeps this test's in-place Reload
	// semantics; the segmented engine is covered by the golden and
	// migration tests.
	st, err := store.OpenLegacy(store.Config{Path: filepath.Join(t.TempDir(), "verdicts.jsonl")})
	if err != nil {
		t.Fatalf("store.OpenLegacy: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	fcfg := feed.Config{
		Fetcher:  crawl.Compose(append(extra, c.World)...),
		Pipeline: &core.Pipeline{Detector: d, Identifier: target.New(c.Engine)},
		Store:    st.Backend(),
		Workers:  2,
	}
	if mutate != nil {
		mutate(&fcfg)
	}
	sched, err := feed.New(fcfg)
	if err != nil {
		t.Fatalf("feed.New: %v", err)
	}
	t.Cleanup(func() { sched.Drain(time.Now().Add(10 * time.Second)) })
	s, err := New(Config{
		Detector:   d,
		Identifier: target.New(c.Engine),
		Feed:       sched,
		Store:      st.Backend(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, sched, st
}

// TestFeedEndToEnd is the PR's acceptance path: a synthetic-world
// phishing URL enters via POST /v1/feed, its verdict appears in
// GET /v1/verdicts, and the verdict survives a store restart (Reload).
func TestFeedEndToEnd(t *testing.T) {
	c, _ := fixtures(t)
	rng := rand.New(rand.NewSource(9))
	site := c.World.NewPhishSite(rng, c.World.RandomPhishOptions(rng))
	s, sched, st := feedServer(t, []crawl.Fetcher{site}, nil)

	var fr FeedResponse
	code := call(t, s, http.MethodPost, "/v1/feed", FeedRequest{URLs: []string{site.StartURL}}, &fr)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/feed status = %d", code)
	}
	if fr.Accepted != 1 || !fr.Results[0].Accepted {
		t.Fatalf("feed response = %+v, want 1 accepted", fr)
	}
	if !sched.Wait(time.Now().Add(30 * time.Second)) {
		t.Fatal("ingestion did not finish")
	}

	query := "/v1/verdicts?url=" + site.StartURL
	var vr VerdictsResponse
	if code := call(t, s, http.MethodGet, query, nil, &vr); code != http.StatusOK {
		t.Fatalf("GET /v1/verdicts status = %d", code)
	}
	if vr.Count != 1 || len(vr.Records) != 1 {
		t.Fatalf("verdicts = %+v, want exactly one record", vr)
	}
	rec := vr.Records[0]
	if rec.URL != site.StartURL || rec.Error != "" || rec.Fingerprint == "" {
		t.Fatalf("record = %+v", rec)
	}

	// Restart the store from disk: the same verdict must come back.
	if err := st.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	var vr2 VerdictsResponse
	if code := call(t, s, http.MethodGet, query, nil, &vr2); code != http.StatusOK {
		t.Fatalf("GET after Reload status = %d", code)
	}
	if vr2.Count != 1 || vr2.Records[0].Seq != rec.Seq ||
		vr2.Records[0].Outcome.Score != rec.Outcome.Score {
		t.Fatalf("verdict changed across restart: %+v vs %+v", vr2.Records, rec)
	}

	// When identification named a target, the record is also reachable
	// through the target index.
	if rec.Target != "" {
		var byTarget VerdictsResponse
		call(t, s, http.MethodGet, "/v1/verdicts?target="+rec.Target, nil, &byTarget)
		found := false
		for _, r := range byTarget.Records {
			if r.Seq == rec.Seq {
				found = true
			}
		}
		if !found {
			t.Errorf("record not found via target=%s", rec.Target)
		}
	}

	// The ingestion counters surface at /metrics.
	m := s.Metrics()
	if m.Feed == nil || m.Feed.Processed != 1 || m.Feed.Accepted != 1 {
		t.Errorf("feed metrics = %+v, want processed=1", m.Feed)
	}
	if m.Store == nil || m.Store.Records != 1 {
		t.Errorf("store metrics = %+v, want 1 record", m.Store)
	}
}

func TestFeedEndpointRejections(t *testing.T) {
	s, _, _ := feedServer(t, nil, func(cfg *feed.Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
		// A glacial rate keeps accepted URLs parked in the queue so the
		// depth bound is observable.
		cfg.DomainRate = 0.001
		cfg.DomainBurst = 1
	})
	urls := []string{
		"not a url at all ://", // invalid: no host
		"http://parked.test/a", // accepted
		"http://parked.test/a", // duplicate (in flight)
		"http://parked.test/b", // queue full (depth 1) or accepted while the worker holds /a
		"http://parked.test/c", // by now the depth bound must hit
	}
	var fr FeedResponse
	if code := call(t, s, http.MethodPost, "/v1/feed", FeedRequest{URLs: urls}, &fr); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if fr.Results[0].Accepted || fr.Results[0].Reason != "invalid_url" {
		t.Errorf("result[0] = %+v, want invalid_url", fr.Results[0])
	}
	if !fr.Results[1].Accepted {
		t.Errorf("result[1] = %+v, want accepted", fr.Results[1])
	}
	if fr.Results[2].Accepted || fr.Results[2].Reason != "duplicate" {
		t.Errorf("result[2] = %+v, want duplicate", fr.Results[2])
	}
	if fr.Results[4].Accepted || fr.Results[4].Reason != "queue_full" {
		t.Errorf("result[4] = %+v, want queue_full", fr.Results[4])
	}
	if fr.Accepted+fr.Rejected != len(urls) {
		t.Errorf("accepted %d + rejected %d != %d", fr.Accepted, fr.Rejected, len(urls))
	}

	// Malformed bodies.
	var er errorResponse
	if code := call(t, s, http.MethodPost, "/v1/feed", FeedRequest{}, &er); code != http.StatusBadRequest {
		t.Errorf("empty urls: status = %d, want 400", code)
	}
}

func TestFeedAndVerdictsUnconfigured(t *testing.T) {
	s := newServer(t, nil) // no feed, no store
	var er errorResponse
	if code := call(t, s, http.MethodPost, "/v1/feed", FeedRequest{URLs: []string{"http://x.test/"}}, &er); code != http.StatusServiceUnavailable {
		t.Errorf("feed unconfigured: status = %d, want 503", code)
	}
	if code := call(t, s, http.MethodGet, "/v1/verdicts", nil, &er); code != http.StatusServiceUnavailable {
		t.Errorf("verdicts unconfigured: status = %d, want 503", code)
	}
	var h HealthResponse
	call(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.FeedEnabled || h.StoreEnabled {
		t.Errorf("healthz advertises feed/store on a server without them: %+v", h)
	}
}

func TestVerdictsQueryValidation(t *testing.T) {
	s, _, st := feedServer(t, nil, nil)
	for _, bad := range []string{
		"/v1/verdicts?since=yesterday",
		"/v1/verdicts?phish_only=perhaps",
		"/v1/verdicts?limit=0",
		"/v1/verdicts?limit=1000000",
		"/v1/verdicts?limit=ten",
	} {
		var er errorResponse
		if code := call(t, s, http.MethodGet, bad, nil, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, code)
		}
	}
	// since filters on the wire.
	old := store.Record{URL: "http://old.test/", LandingURL: "http://old.test/", Fingerprint: "a",
		ScoredAt: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	recent := store.Record{URL: "http://new.test/", LandingURL: "http://new.test/", Fingerprint: "b",
		ScoredAt: time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)}
	if err := st.Append(old); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(recent); err != nil {
		t.Fatal(err)
	}
	var vr VerdictsResponse
	call(t, s, http.MethodGet, "/v1/verdicts?since=2025-01-01T00:00:00Z", nil, &vr)
	if vr.Count != 1 || vr.Records[0].URL != "http://new.test/" {
		t.Errorf("since filter returned %+v, want only the recent record", vr)
	}
}

// TestErrorResponsesExcludedFromLatency locks in the instrumentation
// contract across the whole surface, including the feed endpoints:
// cheap rejections must not drag the scoring percentiles toward zero.
func TestErrorResponsesExcludedFromLatency(t *testing.T) {
	s, _, _ := feedServer(t, nil, nil)
	bad := []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/v1/score", PageRequest{}},        // 400
		{http.MethodPost, "/v1/score/batch", BatchRequest{}}, // 400
		{http.MethodPost, "/v1/feed", FeedRequest{}},         // 400
		{http.MethodGet, "/v1/verdicts?since=nope", nil},     // 400
		{http.MethodGet, "/v1/feed", nil},                    // 405
		{http.MethodPost, "/v1/verdicts", FeedRequest{}},     // 405
	}
	for _, r := range bad {
		if code := call(t, s, r.method, r.path, r.body, nil); code < 400 {
			t.Fatalf("%s %s: status = %d, want an error", r.method, r.path, code)
		}
	}
	if n := s.metrics.latency.Count(); n != 0 {
		t.Fatalf("latency observations after only-errors = %d, want 0", n)
	}
	if m := s.Metrics(); m.Errors != int64(len(bad)) {
		t.Errorf("errors = %d, want %d", m.Errors, len(bad))
	}
	// Successful requests on the new endpoints DO observe.
	var vr VerdictsResponse
	if code := call(t, s, http.MethodGet, "/v1/verdicts", nil, &vr); code != http.StatusOK {
		t.Fatalf("verdicts: status = %d", code)
	}
	var fr FeedResponse
	if code := call(t, s, http.MethodPost, "/v1/feed", FeedRequest{URLs: []string{"http://ok.test/"}}, &fr); code != http.StatusOK {
		t.Fatalf("feed: status = %d", code)
	}
	if n := s.metrics.latency.Count(); n != 2 {
		t.Errorf("latency observations after two successes = %d, want 2", n)
	}
}

// TestCacheEvictionsExported covers the /metrics eviction counter: an
// undersized cache under distinct-page traffic must report evictions.
func TestCacheEvictionsExported(t *testing.T) {
	s := newServer(t, func(cfg *Config) { cfg.CacheSize = 16 }) // 1 entry/shard
	for i := 0; i < 64; i++ {
		var resp ScoreResponse
		page := PageRequest{
			HTML:       fmt.Sprintf("<title>page %d</title><body>content %d</body>", i, i),
			LandingURL: fmt.Sprintf("http://host%d.test/", i),
		}
		if code := call(t, s, http.MethodPost, "/v1/score", page, &resp); code != http.StatusOK {
			t.Fatalf("score %d: status = %d", i, code)
		}
	}
	m := s.Metrics()
	if m.CacheEvictions <= 0 {
		t.Errorf("cache evictions = %d, want > 0 for 64 pages in a 16-entry cache", m.CacheEvictions)
	}
	if m.CacheEntries+int(m.CacheEvictions) < 64 {
		t.Errorf("entries %d + evictions %d < 64 pages", m.CacheEntries, m.CacheEvictions)
	}
}
