package serve

import (
	"net/http"
	"sync"
	"testing"

	"knowphish/internal/core"
	"knowphish/internal/ml"
	"knowphish/internal/registry"
	"knowphish/internal/target"
)

// trainSmall fits a quick throwaway detector for registry tests — the
// shared fixture detector must stay unversioned (registry.Save stamps
// the detector it registers).
func trainSmall(t *testing.T, seed int64) *core.Detector {
	t.Helper()
	c, _ := fixtures(t)
	snaps := append(c.LegTrain.Snapshots(), c.PhishTrain.Snapshots()...)
	labels := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	d, err := core.Train(snaps, labels, core.TrainConfig{
		Rank: c.World.Ranking(),
		GBM:  ml.GBMConfig{Trees: 15, MaxDepth: 3, Seed: seed},
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return d
}

// registryServer builds a server over a two-version registry with
// v0001 as champion.
func registryServer(t *testing.T) (*Server, *registry.Registry) {
	t.Helper()
	c, _ := fixtures(t)
	reg, err := registry.Open(t.TempDir(), c.World.Ranking())
	if err != nil {
		t.Fatalf("registry.Open: %v", err)
	}
	for _, seed := range []int64{11, 12} {
		if _, err := reg.Save(trainSmall(t, seed), registry.TrainingStats{Source: "test"}, ""); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if _, err := reg.SetChampion("v0001"); err != nil {
		t.Fatalf("SetChampion: %v", err)
	}
	s, err := New(Config{Registry: reg, Identifier: target.New(c.Engine)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, reg
}

func TestModelsEndpointsWithoutRegistry(t *testing.T) {
	s := newServer(t, nil)
	var out errorResponse
	if code := call(t, s, http.MethodGet, "/v2/models", nil, &out); code != http.StatusServiceUnavailable {
		t.Errorf("GET /v2/models without registry = %d, want 503", code)
	}
	if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: "v0001"}, &out); code != http.StatusServiceUnavailable {
		t.Errorf("promote without registry = %d, want 503", code)
	}
}

func TestModelsListAndPromote(t *testing.T) {
	s, reg := registryServer(t)

	var models ModelsResponse
	if code := call(t, s, http.MethodGet, "/v2/models", nil, &models); code != http.StatusOK {
		t.Fatalf("GET /v2/models = %d", code)
	}
	if models.Count != 2 || models.ChampionVersion != "v0001" {
		t.Fatalf("models = %+v", models)
	}
	if models.Models[0].Hash == "" || models.Models[0].FeatureSetHash == "" {
		t.Errorf("manifest missing hashes: %+v", models.Models[0])
	}

	// Without a lifecycle controller there is no gate: promotion is
	// direct.
	var prom PromoteResponse
	if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: "v0002"}, &prom); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	if !prom.Promoted || prom.From != "v0001" || prom.To != "v0002" {
		t.Fatalf("promote response = %+v", prom)
	}
	if got := reg.ChampionVersion(); got != "v0002" {
		t.Fatalf("champion after promote = %q", got)
	}

	// The swap is visible on every introspection surface.
	var health HealthResponse
	call(t, s, http.MethodGet, "/healthz", nil, &health)
	if health.ModelVersion != "v0002" {
		t.Errorf("healthz model_version = %q", health.ModelVersion)
	}
	var metrics MetricsSnapshot
	call(t, s, http.MethodGet, "/metrics", nil, &metrics)
	if metrics.ModelVersion != "v0002" {
		t.Errorf("metrics model_version = %q", metrics.ModelVersion)
	}

	// Unknown versions are a 404, not a silent no-op.
	var out errorResponse
	if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: "v9999"}, &out); code != http.StatusNotFound {
		t.Errorf("promote unknown version = %d, want 404", code)
	}
	// Retraining needs the lifecycle controller.
	if code := call(t, s, http.MethodPost, "/v2/models", nil, &out); code != http.StatusServiceUnavailable {
		t.Errorf("POST /v2/models without lifecycle = %d, want 503", code)
	}
}

// TestScoreCarriesModelVersion pins the v2 wire contract: fresh and
// cached verdicts both name the model that produced them, and a
// promotion invalidates cached verdicts of the predecessor.
func TestScoreCarriesModelVersion(t *testing.T) {
	s, _ := registryServer(t)
	c, _ := fixtures(t)
	page := V2ScoreRequest{PageRequest: PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot}}

	var v2 V2ScoreResponse
	if code := call(t, s, http.MethodPost, "/v2/score", page, &v2); code != http.StatusOK {
		t.Fatalf("score = %d", code)
	}
	if v2.ModelVersion != "v0001" || v2.Cached {
		t.Fatalf("fresh verdict: version=%q cached=%v", v2.ModelVersion, v2.Cached)
	}
	call(t, s, http.MethodPost, "/v2/score", page, &v2)
	if !v2.Cached || v2.ModelVersion != "v0001" {
		t.Fatalf("cached verdict: version=%q cached=%v", v2.ModelVersion, v2.Cached)
	}

	var prom PromoteResponse
	if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: "v0002"}, &prom); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}
	// The predecessor's cached verdict must not shadow the new champion.
	call(t, s, http.MethodPost, "/v2/score", page, &v2)
	if v2.Cached || v2.ModelVersion != "v0002" {
		t.Fatalf("post-swap verdict: version=%q cached=%v (stale cache served?)", v2.ModelVersion, v2.Cached)
	}
}

// TestHotSwapUnderTraffic hammers the scoring endpoints while champions
// swap back and forth through the API — the serve-level half of the
// hot-swap race test (run under -race in CI). Every request must
// succeed; no request may straddle models.
func TestHotSwapUnderTraffic(t *testing.T) {
	s, _ := registryServer(t)
	c, _ := fixtures(t)
	page := V2ScoreRequest{PageRequest: PageRequest{Snapshot: c.PhishTest.Examples[1].Snapshot}}
	batch := BatchRequest{Pages: []PageRequest{
		{Snapshot: c.PhishTest.Examples[2].Snapshot},
		{Snapshot: c.LegTrain.Examples[0].Snapshot},
	}}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if g%2 == 0 {
					var out V2ScoreResponse
					if code := call(t, s, http.MethodPost, "/v2/score", page, &out); code != http.StatusOK {
						t.Errorf("score during swap = %d", code)
						return
					}
					if out.ModelVersion != "v0001" && out.ModelVersion != "v0002" {
						t.Errorf("unknown model version %q", out.ModelVersion)
						return
					}
				} else {
					var out BatchResponse
					if code := call(t, s, http.MethodPost, "/v1/score/batch", batch, &out); code != http.StatusOK {
						t.Errorf("batch during swap = %d", code)
						return
					}
				}
			}
		}(g)
	}
	versions := [2]string{"v0002", "v0001"}
	for i := 0; i < 30; i++ {
		var prom PromoteResponse
		if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: versions[i%2]}, &prom); code != http.StatusOK {
			t.Errorf("swap %d = %d", i, code)
			break
		}
	}
	// With the storm settled but traffic still hammering, each promotion
	// must be visible to the very next request — the deterministic
	// mid-stream version change.
	probe := V2ScoreRequest{PageRequest: PageRequest{Snapshot: c.LegTrain.Examples[1].Snapshot}}
	for _, v := range []string{"v0002", "v0001"} {
		var prom PromoteResponse
		if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: v}, &prom); code != http.StatusOK {
			t.Fatalf("promote %s = %d", v, code)
		}
		var out V2ScoreResponse
		if code := call(t, s, http.MethodPost, "/v2/score", probe, &out); code != http.StatusOK {
			t.Fatalf("score after promote = %d", code)
		}
		if out.ModelVersion != v {
			t.Errorf("verdict after promoting %s carries %q", v, out.ModelVersion)
		}
	}
	close(done)
	wg.Wait()
}
