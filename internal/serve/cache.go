package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"knowphish/internal/core"
	"knowphish/internal/webpage"
)

// appendCacheKey appends the cache identity of a snapshot to dst: the
// landing URL plus a fingerprint of every content field
// (webpage.AppendFingerprint, the same identity the verdict store
// compacts on). Keying on the URL alone would let any client poison the
// verdict for a URL it does not own by submitting different content
// under it; with the fingerprint, a reused verdict always comes from an
// identical page. Snapshots without a landing URL are not cacheable
// (empty key). Building the key into a pooled buffer keeps lookups —
// the dominant operation once a campaign's landing pages are cached —
// off the heap; the key is only materialized as a string when an
// outcome is actually stored.
func appendCacheKey(dst []byte, snap *webpage.Snapshot) []byte {
	if snap.LandingURL == "" {
		return dst
	}
	dst = append(dst, snap.LandingURL...)
	dst = append(dst, 0)
	return webpage.AppendFingerprint(dst, snap)
}

// keyPool recycles cache-key build buffers. putKeyBuf is the only way
// back in: it drops oversized buffers (a key is a landing URL plus a
// 64-byte fingerprint, so anything past the cap means one pathological
// URL that must not stay pinned in the pool).
var keyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// maxPooledKey caps the capacity of buffers returned to keyPool.
const maxPooledKey = 4 << 10

func putKeyBuf(b *[]byte) {
	if cap(*b) <= maxPooledKey {
		keyPool.Put(b)
	}
}

// cacheKey returns the snapshot's cache key as a string ("" =
// uncacheable) — the batch path's form, which stores keys for later
// Puts. The build still runs in a pooled buffer, so the only
// allocation is the returned string itself.
func cacheKey(snap *webpage.Snapshot) string {
	kb := keyPool.Get().(*[]byte)
	*kb = appendCacheKey((*kb)[:0], snap)
	s := string(*kb)
	putKeyBuf(kb)
	return s
}

// cacheShards is the shard count of the verdict cache. Sharding keeps
// lock contention off the hot path when many connections score pages
// concurrently; 16 shards is ample for the handler pool sizes a single
// process runs.
const cacheShards = 16

// verdictCache is a sharded LRU cache of pipeline outcomes keyed by
// landing URL. Phishing campaigns hit the same landing pages from many
// lures, so a small cache absorbs a large share of production traffic.
type verdictCache struct {
	shards [cacheShards]cacheShard
	// evictions counts entries dropped by LRU pressure across all
	// shards — the signal (exported at /metrics) that the cache is
	// undersized for the traffic it sees.
	evictions atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type cacheEntry struct {
	key     string
	outcome core.Outcome
	// version is the model version that produced the outcome. A hit is
	// only served while it matches the current detector: a promotion
	// makes every older entry stale, so swapped-in models take effect on
	// cached pages too instead of being shadowed by their predecessor's
	// verdicts.
	version string
	// fp is the page's content fingerprint (coalesce.Fingerprint form),
	// carried so a cache hit can still answer with the ETag the v2
	// surface derives from it ("" when the scoring path had none, e.g.
	// the v1 batch adapter).
	fp string
}

// newVerdictCache builds a cache holding about capacity entries in
// total. capacity < cacheShards still yields one entry per shard.
func newVerdictCache(capacity int) *verdictCache {
	perShard := capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &verdictCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element, perShard)
	}
	return c
}

// fnv32 hashes a key for shard selection. Generic over the two key
// forms so neither the string nor the pooled-byte path converts (and
// therefore allocates) just to pick a shard; it runs on every Get/Put.
func fnv32[T ~string | ~[]byte](key T) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *verdictCache) shard(h uint32) *cacheShard {
	return &c.shards[h%cacheShards]
}

// Get returns the cached outcome for key when it was produced by the
// given model version, promoting hits to most-recently-used. A version
// mismatch reads as a miss: the entry stays put (an in-flight old-model
// scorer may still refresh it) but the caller re-scores with the
// current model, whose Put then overwrites it.
func (c *verdictCache) Get(key, version string) (core.Outcome, string, bool) {
	if key == "" {
		return core.Outcome{}, "", false
	}
	s := c.shard(fnv32(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	return hit(s, s.m[key], version)
}

// GetBytes is Get for a byte-slice key, allocation-free — the
// single-score path builds its key in a pooled buffer and looks it up
// without ever materializing a string (the direct map-index conversion
// below does not copy).
func (c *verdictCache) GetBytes(key []byte, version string) (core.Outcome, string, bool) {
	if len(key) == 0 {
		return core.Outcome{}, "", false
	}
	s := c.shard(fnv32(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	return hit(s, s.m[string(key)], version)
}

// hit resolves a shard lookup: nil element or a version mismatch reads
// as a miss, a hit is promoted to most-recently-used. Callers hold the
// shard lock.
func hit(s *cacheShard, el *list.Element, version string) (core.Outcome, string, bool) {
	if el == nil {
		return core.Outcome{}, "", false
	}
	e := el.Value.(*cacheEntry)
	if e.version != version {
		return core.Outcome{}, "", false
	}
	s.ll.MoveToFront(el)
	return e.outcome, e.fp, true
}

// Put stores an outcome under the model version that produced it,
// evicting the least-recently-used entry of the shard when full. Empty
// keys are not cached.
func (c *verdictCache) Put(key string, out core.Outcome, version, fp string) {
	if key == "" {
		return
	}
	s := c.shard(fnv32(key))
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.outcome, e.version, e.fp = out, version, fp
		s.ll.MoveToFront(el)
		return
	}
	for s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, outcome: out, version: version, fp: fp})
}

// Evictions returns the number of entries dropped by LRU pressure.
func (c *verdictCache) Evictions() int64 { return c.evictions.Load() }

// Len returns the number of cached entries across all shards.
func (c *verdictCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
