package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"knowphish/internal/coalesce"
)

// callHdr is call with request headers and access to the raw recorder
// (the ETag tests read response headers and status without a body).
func callHdr(t *testing.T, s *Server, method, path string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestScoreV2ETagAndConditionalGet pins the v2 cache-validation
// contract: verdicts carry an ETag derived from the page's content
// fingerprint and the model generation, and If-None-Match revalidation
// answers 304 without a body when the tag still holds.
func TestScoreV2ETagAndConditionalGet(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	snap := c.PhishTest.Examples[0].Snapshot
	body := V2ScoreRequest{PageRequest: PageRequest{Snapshot: snap}}

	rec := callHdr(t, s, http.MethodPost, "/v2/score", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("fresh v2 verdict carries no ETag")
	}
	var resp V2ScoreResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.ContentFingerprint == "" {
		t.Fatal("fresh v2 verdict carries no content fingerprint")
	}
	if want := `"` + resp.ContentFingerprint + "-" + resp.ModelVersion + `"`; etag != want {
		t.Errorf("ETag = %s, want %s", etag, want)
	}

	// Revalidation with the current tag: 304, empty body, tag echoed.
	for name, header := range map[string]string{
		"exact":    etag,
		"weak":     "W/" + etag,
		"wildcard": "*",
		"list":     `"other", ` + etag,
	} {
		rec = callHdr(t, s, http.MethodPost, "/v2/score", body, map[string]string{"If-None-Match": header})
		if rec.Code != http.StatusNotModified {
			t.Errorf("%s: status = %d, want 304", name, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("%s: 304 carried a body: %q", name, rec.Body.String())
		}
		if got := rec.Header().Get("ETag"); got != etag {
			t.Errorf("%s: 304 ETag = %q, want %q", name, got, etag)
		}
	}

	// A stale tag gets the full body.
	rec = callHdr(t, s, http.MethodPost, "/v2/score", body, map[string]string{"If-None-Match": `"deadbeef-v9"`})
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("stale tag: status = %d, body %d bytes; want 200 with body", rec.Code, rec.Body.Len())
	}

	// Cache-control modes that ask for recomputation never shortcut to
	// 304 — the client wants the recomputed body.
	for _, cc := range []string{"no-memo", "refresh"} {
		req := body
		req.CacheControl = cc
		rec = callHdr(t, s, http.MethodPost, "/v2/score", req, map[string]string{"If-None-Match": etag})
		if rec.Code != http.StatusOK {
			t.Errorf("cache_control=%s with matching tag: status = %d, want 200", cc, rec.Code)
		}
	}

	// An explain response carries evidence a bare 304 would withhold.
	exp := body
	exp.Explain = "top"
	rec = callHdr(t, s, http.MethodPost, "/v2/score", exp, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Errorf("explain with matching tag: status = %d, want 200", rec.Code)
	}
}

// TestScoreV2CacheControl pins the three cache_control modes across
// both caching layers (verdict cache and stage memos).
func TestScoreV2CacheControl(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	snap := c.PhishTest.Examples[1].Snapshot
	score := func(cc string) V2ScoreResponse {
		var resp V2ScoreResponse
		code := call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
			PageRequest:  PageRequest{Snapshot: snap},
			ScoreOptions: ScoreOptions{CacheControl: cc},
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("cache_control=%q: status = %d", cc, code)
		}
		return resp
	}

	first := score("no-memo")
	if first.Cached {
		t.Error("first no-memo request claims cached")
	}
	// no-memo neither wrote nor reads: a repeat recomputes, and so does
	// a default request (nothing was stored).
	if again := score("no-memo"); again.Cached {
		t.Error("no-memo request served from cache")
	}
	warm := score("")
	if warm.Cached {
		t.Error("no-memo left state behind: default request hit a cache")
	}

	// The default request wrote; a repeat is a verdict-cache hit.
	if hit := score("default"); !hit.Cached {
		t.Error("default request after a write missed the cache")
	}

	// refresh recomputes even with a warm cache, then overwrites.
	ref := score("refresh")
	if ref.Cached {
		t.Error("refresh request served from cache")
	}
	if ref.Timings.TotalNS == 0 {
		t.Error("refresh verdict carries no fresh timings")
	}
	if hit := score(""); !hit.Cached {
		t.Error("refresh did not repopulate the cache")
	}

	// Every mode agrees on the verdict.
	if first.Score != warm.Score || ref.Score != warm.Score {
		t.Errorf("scores diverge across cache modes: %v %v %v", first.Score, warm.Score, ref.Score)
	}

	// Unknown modes are a 400.
	var eresp errorResponse
	if code := call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
		PageRequest:  PageRequest{Snapshot: snap},
		ScoreOptions: ScoreOptions{CacheControl: "never"},
	}, &eresp); code != http.StatusBadRequest {
		t.Errorf("cache_control=never: status = %d, want 400", code)
	}
}

// TestScoreBatchV2 exercises the new batch surface: ordered results,
// agreement with single scoring, memo provenance on warm repeats, and
// the validation failures.
func TestScoreBatchV2(t *testing.T) {
	c, _ := fixtures(t)
	// Verdict cache off so the repeat exercises the stage memos rather
	// than the whole-verdict cache.
	s := newServer(t, func(cfg *Config) { cfg.CacheSize = -1 })
	const n = 4
	pages := make([]PageRequest, n)
	for i := range pages {
		pages[i] = PageRequest{Snapshot: c.PhishTest.Examples[i].Snapshot}
	}

	var batch V2BatchResponse
	if code := call(t, s, http.MethodPost, "/v2/score/batch", V2BatchRequest{Pages: pages}, &batch); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if batch.Count != n || len(batch.Results) != n {
		t.Fatalf("count = %d, results = %d, want %d", batch.Count, len(batch.Results), n)
	}
	for i, res := range batch.Results {
		if res.LandingURL != pages[i].Snapshot.LandingURL {
			t.Fatalf("result %d out of order: %q", i, res.LandingURL)
		}
		if res.ContentFingerprint == "" {
			t.Errorf("result %d missing content fingerprint", i)
		}
		var single V2ScoreResponse
		call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{PageRequest: pages[i]}, &single)
		if single.Score != res.Score || single.FinalPhish != res.FinalPhish {
			t.Errorf("result %d diverges from single scoring: %v vs %v", i, res.Score, single.Score)
		}
	}

	// The repeat runs warm: every stage that ran is served from memo.
	var again V2BatchResponse
	call(t, s, http.MethodPost, "/v2/score/batch", V2BatchRequest{Pages: pages}, &again)
	for i, res := range again.Results {
		if res.Memo == nil {
			t.Fatalf("warm result %d carries no memo provenance", i)
		}
		if res.Memo.Score != "memo" {
			t.Errorf("warm result %d score provenance = %q, want memo", i, res.Memo.Score)
		}
		if res.TargetRun && res.Memo.Target != "memo" {
			t.Errorf("warm result %d target provenance = %q, want memo", i, res.Memo.Target)
		}
	}

	var eresp errorResponse
	if code := call(t, s, http.MethodPost, "/v2/score/batch", V2BatchRequest{}, &eresp); code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", code)
	}
	small := newServer(t, func(cfg *Config) { cfg.MaxBatch = 2 })
	if code := call(t, small, http.MethodPost, "/v2/score/batch", V2BatchRequest{Pages: pages}, &eresp); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit batch: status = %d, want 413", code)
	}
	if m := small.Metrics(); m.BatchRejected != 1 {
		t.Errorf("batch_rejected = %d, want 1", m.BatchRejected)
	}
}

// TestPromoteFlushesMemos pins the invalidation contract end to end
// over HTTP: promotion flushes the model-dependent memo tables (scores,
// target results) while the model-independent analysis memos survive,
// and post-promote verdicts come from the new champion.
func TestPromoteFlushesMemos(t *testing.T) {
	c, _ := fixtures(t)
	s, _ := registryServer(t)

	// Warm the memos under v0001.
	for i := 0; i < 6; i++ {
		var resp V2ScoreResponse
		if code := call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
			PageRequest: PageRequest{Snapshot: c.PhishTest.Examples[i].Snapshot},
		}, &resp); code != http.StatusOK {
			t.Fatalf("warm-up %d: status = %d", i, code)
		}
		if resp.ModelVersion != "v0001" {
			t.Fatalf("warm-up scored by %q, want v0001", resp.ModelVersion)
		}
	}
	before := s.Metrics().Coalesce
	if before == nil {
		t.Fatal("metrics carry no coalesce stats")
	}
	if before.Score.Entries == 0 || before.Analysis.Entries == 0 {
		t.Fatalf("memos not warmed: %+v", before)
	}

	var prom PromoteResponse
	if code := call(t, s, http.MethodPost, "/v2/models/promote", PromoteRequest{Version: "v0002"}, &prom); code != http.StatusOK {
		t.Fatalf("promote = %d", code)
	}

	after := s.Metrics().Coalesce
	if after.Score.Entries != 0 || after.Target.Entries != 0 {
		t.Errorf("model-dependent memos survived promotion: score=%d target=%d",
			after.Score.Entries, after.Target.Entries)
	}
	if after.Analysis.Entries != before.Analysis.Entries {
		t.Errorf("analysis memos flushed by promotion: %d -> %d",
			before.Analysis.Entries, after.Analysis.Entries)
	}

	// No stale verdicts: a rescore is served by the new champion.
	var resp V2ScoreResponse
	call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
		PageRequest: PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot},
	}, &resp)
	if resp.ModelVersion != "v0002" {
		t.Errorf("post-promote verdict scored by %q, want v0002", resp.ModelVersion)
	}
	if resp.Cached {
		t.Error("post-promote verdict served from the predecessor's cache")
	}
}

// TestCoreOptionsHoistedSlices pins the allocation fix: the two common
// request shapes reuse option slices built once in New instead of
// assembling them per request.
func TestCoreOptionsHoistedSlices(t *testing.T) {
	s := newServer(t, nil)
	a, cc, err := s.coreOptions(ScoreOptions{})
	if err != nil || cc != coalesce.CacheDefault {
		t.Fatalf("defaulted options: cc=%v err=%v", cc, err)
	}
	b, _, _ := s.coreOptions(ScoreOptions{})
	if &a[0] != &b[0] {
		t.Error("defaulted requests do not share the hoisted option slice")
	}
	sk1, _, _ := s.coreOptions(ScoreOptions{SkipTarget: true})
	sk2, _, _ := s.coreOptions(ScoreOptions{SkipTarget: true})
	if &sk1[0] != &sk2[0] {
		t.Error("skip_target requests do not share the hoisted option slice")
	}
	if &a[0] == &sk1[0] {
		t.Error("skip_target shares the no-skip slice")
	}
	// cache_control rides the hoisted fast path too — it is not a core
	// option, so it must not force a fresh slice.
	nm, cc, err := s.coreOptions(ScoreOptions{CacheControl: "no-memo"})
	if err != nil || cc != coalesce.CacheNoMemo {
		t.Fatalf("no-memo options: cc=%v err=%v", cc, err)
	}
	if &nm[0] != &a[0] {
		t.Error("cache_control request does not share the hoisted option slice")
	}
	// Customized requests build their own.
	custom, _, _ := s.coreOptions(ScoreOptions{DeadlineMS: 50})
	if &custom[0] == &a[0] {
		t.Error("customized request reused the hoisted slice")
	}
}
