package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/feed"
	"knowphish/internal/feedsrc"
	"knowphish/internal/obs"
	"knowphish/internal/slo"
	"knowphish/internal/store"
	"knowphish/internal/target"
)

// rawCall sends a request and returns the recorder (for tests that need
// headers or non-JSON bodies; call() handles the JSON-only common case).
func rawCall(t *testing.T, s *Server, method, path string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// tracedServer builds a server with a tracer and scores n pages so the
// telemetry surfaces have data.
func tracedServer(t *testing.T, n int) *Server {
	t.Helper()
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) {
		cfg.Tracer = obs.NewTracer(obs.Config{})
	})
	for i := 0; i < n && i < len(c.PhishTest.Examples); i++ {
		snap := c.PhishTest.Examples[i].Snapshot
		if code := call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil); code != http.StatusOK {
			t.Fatalf("score %d: status %d", i, code)
		}
	}
	return s
}

// Exposition-format grammar (version 0.0.4): every line of the scrape
// must be a HELP comment, a TYPE comment, or a sample.
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:\\\\|\\"|\\n|[^"\\])*",?)*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels string // raw {...} text, "" when unlabeled
	value  float64
}

// parseProm validates the exposition grammar line by line and returns
// the samples plus the TYPE of each family.
func parseProm(t *testing.T, body string) ([]promSample, map[string]string) {
	t.Helper()
	var samples []promSample
	types := make(map[string]string)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !promHelpRe.MatchString(line) {
				t.Errorf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			types[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64)
		if err != nil {
			if m[3] == "+Inf" {
				v = float64(1<<63 - 1)
			} else {
				t.Errorf("unparseable value in %q: %v", line, err)
				continue
			}
		}
		samples = append(samples, promSample{name: m[1], labels: m[2], value: v})
	}
	return samples, types
}

// baseFamily strips histogram sample suffixes back to the family name.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func TestPrometheusExpositionGrammar(t *testing.T) {
	s := fullSurfaceServer(t, 5)
	rec := rawCall(t, s, http.MethodGet, "/metrics?format=prometheus", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body := rec.Body.String()
	samples, types := parseProm(t, body)
	if len(samples) == 0 {
		t.Fatal("scrape produced no samples")
	}

	// Every sample must belong to a declared family.
	for _, smp := range samples {
		if _, ok := types[baseFamily(smp.name)]; !ok {
			t.Errorf("sample %q has no TYPE declaration", smp.name)
		}
	}

	// The load-bearing families must be present with the right types.
	for fam, typ := range map[string]string{
		"knowphish_http_requests_total":      "counter",
		"knowphish_pages_scored_total":       "counter",
		"knowphish_requests_in_flight":       "gauge",
		"knowphish_request_duration_seconds": "histogram",
		"knowphish_stage_duration_seconds":   "histogram",
		"knowphish_traces_finished_total":    "counter",
		"knowphish_model_info":               "gauge",
		"knowphish_feed_rejected_total":      "counter",
		"knowphish_feedsrc_lag_seconds":      "gauge",
		"knowphish_feedsrc_rejected_total":   "counter",
		"knowphish_shed_total":               "counter",
		"knowphish_shed_level":               "gauge",
		"knowphish_endpoint_shed_total":      "counter",
		"knowphish_endpoint_latency_seconds": "gauge",
		"knowphish_slo_state":                "gauge",
		"knowphish_slo_objective_state":      "gauge",
		"knowphish_slo_burn_rate":            "gauge",
		"knowphish_slo_budget_remaining":     "gauge",
		"knowphish_slo_transitions_total":    "counter",
		"go_goroutines":                      "gauge",
	} {
		if got := types[fam]; got != typ {
			t.Errorf("family %s: TYPE %q, want %q", fam, got, typ)
		}
	}

	// The per-source reject family carries one sample per reason —
	// including the mux's own rate_limited shedding — for every wired
	// source.
	reasonRe := regexp.MustCompile(`reason="([^"]+)"`)
	rejectReasons := make(map[string]bool)
	for _, smp := range samples {
		if smp.name == "knowphish_feedsrc_rejected_total" && strings.Contains(smp.labels, `source="phishtank"`) {
			if m := reasonRe.FindStringSubmatch(smp.labels); m != nil {
				rejectReasons[m[1]] = true
			}
		}
	}
	for _, want := range []string{"queue_full", "rate_limited", "duplicate", "invalid_url", "closed"} {
		if !rejectReasons[want] {
			t.Errorf("knowphish_feedsrc_rejected_total missing reason=%q sample for source phishtank", want)
		}
	}

	// The windowed latency family carries one sample per
	// (endpoint, window, quantile) for latency-tracked classes, and the
	// SLO burn-rate family one per (objective, window).
	winLabels := make(map[string]bool)
	burnWindows := make(map[string]bool)
	for _, smp := range samples {
		if smp.name == "knowphish_endpoint_latency_seconds" && strings.Contains(smp.labels, `endpoint="score"`) {
			winLabels[strings.Trim(smp.labels, "{}")] = true
		}
		if smp.name == "knowphish_slo_burn_rate" {
			if m := regexp.MustCompile(`window="([^"]+)"`).FindStringSubmatch(smp.labels); m != nil {
				burnWindows[m[1]] = true
			}
		}
	}
	for _, win := range []string{"1m", "5m", "1h"} {
		for _, q := range []string{"0.5", "0.99", "0.999"} {
			key := `endpoint="score",window="` + win + `",quantile="` + q + `"`
			if !winLabels[key] {
				t.Errorf("knowphish_endpoint_latency_seconds missing {%s}", key)
			}
		}
	}
	for _, want := range []string{"fast", "slow"} {
		if !burnWindows[want] {
			t.Errorf("knowphish_slo_burn_rate missing window=%q samples", want)
		}
	}

	// Histogram invariants per (family, label-set-sans-le): buckets
	// cumulative and non-decreasing, +Inf bucket equal to _count, _sum
	// and _count present.
	type histKey struct{ fam, labels string }
	buckets := make(map[histKey][]float64)
	infs := make(map[histKey]float64)
	counts := make(map[histKey]float64)
	sums := make(map[histKey]bool)
	leRe := regexp.MustCompile(`le="([^"]*)",?`)
	for _, smp := range samples {
		fam := baseFamily(smp.name)
		if types[fam] != "histogram" {
			continue
		}
		stripped := leRe.ReplaceAllString(smp.labels, "")
		stripped = strings.TrimSuffix(strings.TrimPrefix(stripped, "{"), "}")
		stripped = strings.TrimSuffix(stripped, ",")
		k := histKey{fam, stripped}
		switch {
		case strings.HasSuffix(smp.name, "_bucket"):
			le := leRe.FindStringSubmatch(smp.labels)
			if le == nil {
				t.Errorf("%s bucket sample without le label: %q", fam, smp.labels)
				continue
			}
			if le[1] == "+Inf" {
				infs[k] = smp.value
			} else {
				buckets[k] = append(buckets[k], smp.value)
			}
		case strings.HasSuffix(smp.name, "_count"):
			counts[k] = smp.value
		case strings.HasSuffix(smp.name, "_sum"):
			sums[k] = true
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in the scrape")
	}
	for k, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Errorf("%s{%s}: bucket counts not cumulative at %d: %v", k.fam, k.labels, i, bs)
				break
			}
		}
		inf, ok := infs[k]
		if !ok {
			t.Errorf("%s{%s}: no +Inf bucket", k.fam, k.labels)
			continue
		}
		if inf < bs[len(bs)-1] {
			t.Errorf("%s{%s}: +Inf bucket %v below last finite bucket %v", k.fam, k.labels, inf, bs[len(bs)-1])
		}
		if c, ok := counts[k]; !ok || c != inf {
			t.Errorf("%s{%s}: _count %v != +Inf bucket %v", k.fam, k.labels, c, inf)
		}
		if !sums[k] {
			t.Errorf("%s{%s}: no _sum sample", k.fam, k.labels)
		}
	}

	// One stage label set per pipeline stage under the stage family.
	stageSamples := 0
	for _, smp := range samples {
		if smp.name == "knowphish_stage_duration_seconds_count" {
			stageSamples++
		}
	}
	if want := len(obs.StageNames()); stageSamples != want {
		t.Errorf("stage histogram label sets = %d, want %d", stageSamples, want)
	}
}

func TestPrometheusCountersMonotonic(t *testing.T) {
	s := tracedServer(t, 3)
	c, _ := fixtures(t)

	scrape := func() map[string]float64 {
		rec := rawCall(t, s, http.MethodGet, "/metrics?format=prometheus", nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		samples, types := parseProm(t, rec.Body.String())
		vals := make(map[string]float64)
		for _, smp := range samples {
			if types[baseFamily(smp.name)] == "counter" || strings.HasSuffix(smp.name, "_bucket") || strings.HasSuffix(smp.name, "_count") {
				vals[smp.name+smp.labels] = smp.value
			}
		}
		return vals
	}

	first := scrape()
	for i := 3; i < 8 && i < len(c.PhishTest.Examples); i++ {
		snap := c.PhishTest.Examples[i].Snapshot
		call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil)
	}
	second := scrape()

	for key, v1 := range first {
		v2, ok := second[key]
		if !ok {
			t.Errorf("counter %s vanished between scrapes", key)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", key, v1, v2)
		}
	}
	if second["knowphish_pages_scored_total"] <= first["knowphish_pages_scored_total"] {
		t.Errorf("pages_scored_total did not advance: %v -> %v",
			first["knowphish_pages_scored_total"], second["knowphish_pages_scored_total"])
	}
}

func TestMetricsFormatParam(t *testing.T) {
	s := tracedServer(t, 1)
	for _, format := range []string{"", "json"} {
		path := "/metrics"
		if format != "" {
			path += "?format=" + format
		}
		rec := rawCall(t, s, http.MethodGet, path, nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d", path, rec.Code)
		}
		var doc MetricsSnapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s did not answer JSON: %v", path, err)
		}
	}
	if rec := rawCall(t, s, http.MethodGet, "/metrics?format=xml", nil, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown format: status = %d, want 400", rec.Code)
	}
}

// keyPaths flattens a decoded JSON document into its sorted set of
// object key paths; arrays descend through their first element.
func keyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			keyPaths(p, child, out)
		}
	case []any:
		if len(x) > 0 {
			keyPaths(prefix+"[]", x[0], out)
		}
	}
}

// fullSurfaceServer builds a server with every optional metrics
// subsystem this package wires in — tracer, feed scheduler, verdict
// store, and a feed-source mux with one idle connector — and scores n
// pages, so the /metrics document carries its complete key surface.
func fullSurfaceServer(t *testing.T, n int) *Server {
	t.Helper()
	c, d := fixtures(t)
	st, err := store.Open(store.Config{Backend: store.BackendMemory})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	sched, err := feed.New(feed.Config{
		Fetcher:  c.World,
		Pipeline: &core.Pipeline{Detector: d, Identifier: target.New(c.Engine)},
		Store:    st,
		Workers:  2,
	})
	if err != nil {
		t.Fatalf("feed.New: %v", err)
	}
	t.Cleanup(func() { sched.Drain(time.Now().Add(10 * time.Second)) })
	// An idle JSON connector with a fixed name: the shape golden needs
	// the feed_sources subtree present, not traffic through it.
	feedSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("[]"))
	}))
	t.Cleanup(feedSrv.Close)
	mux, err := feedsrc.NewMux(feedsrc.MuxConfig{
		Sink:    sched,
		Sources: []feedsrc.Source{feedsrc.NewJSONFeed("phishtank", feedSrv.URL, feedSrv.Client())},
	})
	if err != nil {
		t.Fatalf("feedsrc.NewMux: %v", err)
	}
	t.Cleanup(func() { _ = mux.Close() })
	objs, err := slo.ParseObjectives([]string{"score:p99<250ms,avail>99.9"})
	if err != nil {
		t.Fatalf("slo.ParseObjectives: %v", err)
	}
	journal := obs.NewJournal(0)
	s, err := New(Config{
		Detector:    d,
		Identifier:  target.New(c.Engine),
		Feed:        sched,
		FeedSources: mux,
		Store:       st,
		Tracer:      obs.NewTracer(obs.Config{}),
		SLO:         slo.New(slo.Config{Objectives: objs, Journal: journal}),
		Journal:     journal,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n && i < len(c.PhishTest.Examples); i++ {
		snap := c.PhishTest.Examples[i].Snapshot
		if code := call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil); code != http.StatusOK {
			t.Fatalf("score %d: status %d", i, code)
		}
	}
	return s
}

// TestMetricsJSONShapeGolden pins the key shape of the default JSON
// /metrics document, with every optional subsystem wired in so the
// optional subtrees (feed, feed_sources, store, tracing) are covered
// too. The JSON form is the frozen v1 surface — new telemetry must
// ride ?format=prometheus or new optional keys, and any removed or
// renamed key here is a breaking change for deployed dashboards.
func TestMetricsJSONShapeGolden(t *testing.T) {
	s := fullSurfaceServer(t, 2)
	rec := rawCall(t, s, http.MethodGet, "/metrics", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	paths := make(map[string]bool)
	keyPaths("", doc, paths)
	keys := make([]string, 0, len(paths))
	for p := range paths {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	got, err := json.MarshalIndent(keys, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_metrics_keys.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/metrics JSON key shape drifted from golden %s:\n got: %s\nwant: %s", path, got, want)
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	s := tracedServer(t, 3)
	rec := rawCall(t, s, http.MethodGet, "/debug/traces", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc obs.Debug
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding /debug/traces: %v", err)
	}
	if !doc.Summary.Enabled {
		t.Error("summary reports tracing disabled")
	}
	if doc.Summary.Finished < 3 {
		t.Errorf("finished traces = %d, want >= 3", doc.Summary.Finished)
	}
	if len(doc.Recent) == 0 {
		t.Fatal("no recent traces retained")
	}
	// The newest scoring trace must carry the pipeline stages the
	// request actually ran.
	var scored *obs.TraceDoc
	for i := range doc.Recent {
		if doc.Recent[i].Endpoint == "/v1/score" {
			scored = &doc.Recent[i]
			break
		}
	}
	if scored == nil {
		t.Fatal("no /v1/score trace in the ring")
	}
	if scored.TraceID == "" || len(scored.TraceID) != 32 {
		t.Errorf("trace id %q not 32 hex chars", scored.TraceID)
	}
	stages := make(map[string]bool)
	for _, sp := range scored.Spans {
		stages[sp.Stage] = true
		if sp.DurUS < 0 || sp.OffsetUS < 0 {
			t.Errorf("span %s has negative timing: %+v", sp.Stage, sp)
		}
	}
	for _, want := range []string{"extract", "score"} {
		if !stages[want] {
			t.Errorf("scoring trace missing stage %q (got %v)", want, stages)
		}
	}
}

func TestTraceparentEchoAndPropagation(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) {
		cfg.Tracer = obs.NewTracer(obs.Config{})
	})
	snap := c.PhishTest.Examples[0].Snapshot

	parent := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	rec := rawCall(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap},
		map[string]string{"traceparent": parent})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	echo := rec.Header().Get("Traceparent")
	if echo == "" {
		t.Fatal("no Traceparent response header")
	}
	parts := strings.Split(echo, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		t.Fatalf("malformed echoed traceparent %q", echo)
	}
	if parts[1] != "0123456789abcdef0123456789abcdef" {
		t.Errorf("trace id not propagated: %q", parts[1])
	}
	if parts[2] == "00f067aa0ba902b7" {
		t.Error("span id not refreshed; the server echoed the caller's span")
	}

	// A malformed traceparent must not poison the trace: the server
	// mints a fresh id instead.
	rec = rawCall(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap},
		map[string]string{"traceparent": "00-zzzz-bad-01"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	echo = rec.Header().Get("Traceparent")
	parts = strings.Split(echo, "-")
	if len(parts) != 4 || len(parts[1]) != 32 {
		t.Fatalf("malformed fresh traceparent %q", echo)
	}
	if parts[1] == "0123456789abcdef0123456789abcdef" {
		t.Error("malformed header was accepted as a trace id")
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	s := newServer(t, nil)
	var h HealthResponse
	if code := call(t, s, http.MethodGet, "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if h.GoVersion == "" {
		t.Error("healthz lost go_version")
	}
	if !strings.HasPrefix(runtime.Version(), h.GoVersion) && h.GoVersion != runtime.Version() {
		t.Errorf("go_version %q does not match runtime %q", h.GoVersion, runtime.Version())
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", h.UptimeSeconds)
	}
}
