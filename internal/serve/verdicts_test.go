package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/store"
)

// verdictsFixture is the deterministic corpus behind the /v1/verdicts
// goldens: supersede churn, targeted phish, a terminal error and two
// model versions, all with fixed timestamps so the legacy JSONL bytes
// at testdata/golden_verdicts_store.jsonl never drift.
func verdictsFixture() []store.Record {
	base := time.Date(2026, 7, 20, 8, 0, 0, 0, time.UTC)
	recs := []store.Record{
		{URL: "http://lure.test/a", LandingURL: "http://land.test/a", RDN: "land.test",
			Fingerprint: "fp-a", Target: "novabank.com", ModelVersion: "v0001",
			Outcome: core.Outcome{Score: 0.91, DetectorPhish: true, FinalPhish: true}},
		// Superseded twice: only the third verdict for land.test/a+fp-a
		// is live after migration or compaction.
		{URL: "http://lure.test/a", LandingURL: "http://land.test/a", RDN: "land.test",
			Fingerprint: "fp-a", Target: "novabank.com", ModelVersion: "v0001",
			Outcome: core.Outcome{Score: 0.93, DetectorPhish: true, FinalPhish: true}},
		{URL: "http://lure.test/a", LandingURL: "http://land.test/a", RDN: "land.test",
			Fingerprint: "fp-a", Target: "novabank.com", ModelVersion: "v0002",
			Outcome: core.Outcome{Score: 0.95, DetectorPhish: true, FinalPhish: true}},
		{URL: "http://shop.test/", LandingURL: "http://shop.test/", RDN: "shop.test",
			Fingerprint: "fp-s", ModelVersion: "v0001",
			Outcome: core.Outcome{Score: 0.12}},
		{URL: "http://lure.test/b", LandingURL: "http://land.test/b", RDN: "land.test",
			Fingerprint: "fp-b", Target: "novabank.com", ModelVersion: "v0002",
			Outcome: core.Outcome{Score: 0.88, DetectorPhish: true, FinalPhish: true}},
		{URL: "http://gone.test/", LandingURL: "http://gone.test/",
			Error: "fetch: connection refused"},
		{URL: "http://blog.test/", LandingURL: "http://blog.test/", RDN: "blog.test",
			Fingerprint: "fp-w", ModelVersion: "v0002",
			Outcome: core.Outcome{Score: 0.33}},
	}
	for i := range recs {
		recs[i].ScoredAt = base.Add(time.Duration(i) * time.Hour)
	}
	return recs
}

const verdictsFixtureFile = "golden_verdicts_store.jsonl"

// copyVerdictsFixture stages the committed legacy JSONL corpus into a
// temp dir (Open migrates in place, so each case needs its own copy).
func copyVerdictsFixture(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", verdictsFixtureFile))
	if err != nil {
		t.Fatalf("reading fixture corpus (run with -update-golden to create): %v", err)
	}
	path := filepath.Join(t.TempDir(), "verdicts.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestV1VerdictsGolden pins the /v1/verdicts wire format byte for byte
// across storage engines: the same committed legacy corpus is served
// once by the legacy JSONL engine and once by the segmented engine
// after a one-shot migration, and both must match the same goldens —
// the proof that the v2 storage redesign is invisible to v1 clients.
func TestV1VerdictsGolden(t *testing.T) {
	if *updateGolden {
		// Regenerate the fixture corpus first so the goldens below are
		// produced from exactly what is committed.
		s, err := store.OpenLegacy(store.Config{
			Path: filepath.Join(t.TempDir(), "verdicts.jsonl"), CompactEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range verdictsFixture() {
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(s.Path())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join("testdata", verdictsFixtureFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	queries := []struct{ name, query string }{
		{"all", "/v1/verdicts"},
		{"by_target", "/v1/verdicts?target=novabank.com"},
		{"by_url", "/v1/verdicts?url=http://lure.test/a"},
		{"phish_limit", "/v1/verdicts?phish_only=true&limit=2"},
		{"since", "/v1/verdicts?since=2026-07-20T11:30:00Z"},
		{"empty", "/v1/verdicts?target=unknown.example"},
	}
	backends := []struct {
		name string
		open func(t *testing.T) store.Backend
	}{
		{"legacy", func(t *testing.T) store.Backend {
			s, err := store.OpenLegacy(store.Config{Path: copyVerdictsFixture(t), CompactEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			return s.Backend()
		}},
		{"migrated", func(t *testing.T) store.Backend {
			// store.Open sees the legacy JSONL file and migrates it into
			// a segmented directory before serving.
			b, err := store.Open(store.Config{Path: copyVerdictsFixture(t)})
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}

	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			b := be.open(t)
			t.Cleanup(func() { _ = b.Close() })
			s := newServer(t, func(cfg *Config) { cfg.Store = b })
			for _, q := range queries {
				t.Run(q.name, func(t *testing.T) {
					req := httptest.NewRequest(http.MethodGet, q.query, nil)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Fatalf("status = %d (body %s)", rec.Code, rec.Body.String())
					}
					got := rec.Body.Bytes()
					path := filepath.Join("testdata", "golden_v1_verdicts_"+q.name+".json")
					if *updateGolden {
						if be.name != "legacy" {
							return // goldens are authored by the legacy engine
						}
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("reading golden (run with -update-golden to create): %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s response drifted from golden %s:\n got: %s\nwant: %s",
							be.name, path, got, want)
					}
				})
			}
		})
	}
}

// TestV2VerdictsPagination covers the cursor-paginated /v2/verdicts
// surface: pages chain through next_cursor without duplicates or gaps,
// filters compose with pagination, and malformed cursors answer 400.
func TestV2VerdictsPagination(t *testing.T) {
	b, err := store.Open(store.Config{Path: filepath.Join(t.TempDir(), "verdicts"), Backend: store.BackendSegmented})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	const n = 23
	for i := 0; i < n; i++ {
		r := store.Record{
			URL:        "http://u.test/" + string(rune('a'+i)),
			LandingURL: "http://u.test/" + string(rune('a'+i)),
			ScoredAt:   base.Add(time.Duration(i) * time.Hour),
		}
		if i%2 == 0 {
			r.ModelVersion = "v0001"
		} else {
			r.ModelVersion = "v0002"
		}
		if err := b.Append(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	s := newServer(t, func(cfg *Config) { cfg.Store = b })

	// Page through everything 5 at a time.
	var all []store.Record
	cursor := ""
	pages := 0
	for {
		path := "/v2/verdicts?limit=5"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var pr VerdictsPageResponse
		if code := call(t, s, http.MethodGet, path, nil, &pr); code != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, code)
		}
		if pr.Count != len(pr.Records) {
			t.Fatalf("count = %d, records = %d", pr.Count, len(pr.Records))
		}
		all = append(all, pr.Records...)
		pages++
		if pr.NextCursor == "" {
			break
		}
		cursor = pr.NextCursor
	}
	if len(all) != n || pages != 5 {
		t.Fatalf("paged scan = %d records over %d pages, want %d over 5", len(all), pages, n)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq >= all[i-1].Seq {
			t.Fatalf("page order not strictly newest-first at %d: %d then %d", i, all[i-1].Seq, all[i].Seq)
		}
	}

	// A filtered paged walk returns exactly the one-shot result.
	var oneShot VerdictsPageResponse
	if code := call(t, s, http.MethodGet, "/v2/verdicts?model_version=v0001&limit=1000", nil, &oneShot); code != http.StatusOK {
		t.Fatalf("one-shot status = %d", code)
	}
	if oneShot.NextCursor != "" {
		t.Errorf("exhaustive query returned next_cursor %q", oneShot.NextCursor)
	}
	var filtered []store.Record
	cursor = ""
	for {
		path := "/v2/verdicts?model_version=v0001&limit=4"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var pr VerdictsPageResponse
		if code := call(t, s, http.MethodGet, path, nil, &pr); code != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, code)
		}
		filtered = append(filtered, pr.Records...)
		if pr.NextCursor == "" {
			break
		}
		cursor = pr.NextCursor
	}
	if len(filtered) != len(oneShot.Records) {
		t.Fatalf("filtered paged = %d records, one-shot = %d", len(filtered), len(oneShot.Records))
	}
	for i := range filtered {
		if filtered[i].Seq != oneShot.Records[i].Seq {
			t.Fatalf("filtered page diverges at %d: seq %d vs %d", i, filtered[i].Seq, oneShot.Records[i].Seq)
		}
	}

	// until composes with since into a half-open window [since, until).
	var window VerdictsPageResponse
	path := "/v2/verdicts?since=2026-07-01T05:00:00Z&until=2026-07-01T10:00:00Z&limit=1000"
	if code := call(t, s, http.MethodGet, path, nil, &window); code != http.StatusOK {
		t.Fatalf("window status = %d", code)
	}
	if window.Count != 5 {
		t.Errorf("time window = %d records, want 5", window.Count)
	}

	// Errors: malformed cursor, bad until, oversized limit.
	for _, bad := range []string{
		"/v2/verdicts?cursor=bogus",
		"/v2/verdicts?until=yesterday",
		"/v2/verdicts?limit=1000000",
	} {
		if code := call(t, s, http.MethodGet, bad, nil, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, code)
		}
	}

	// An empty v2 result stays a JSON array, never null.
	req := httptest.NewRequest(http.MethodGet, "/v2/verdicts?target=unknown.example", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"records":[]`)) {
		t.Errorf("empty v2 result = %s, want records:[]", rec.Body.String())
	}

	// Without a store, both verdict endpoints answer 503.
	bare := newServer(t, nil)
	for _, path := range []string{"/v1/verdicts", "/v2/verdicts"} {
		if code := call(t, bare, http.MethodGet, path, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s without store: status = %d, want 503", path, code)
		}
	}
}

// TestV2VerdictsSourceFilter covers the feed-connector provenance
// filter: /v2/verdicts?source= restricts to records ingested through
// that connector and composes with pagination, while the frozen /v1
// surface ignores the parameter entirely.
func TestV2VerdictsSourceFilter(t *testing.T) {
	b, err := store.Open(store.Config{Backend: store.BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	sources := []string{"phishtank", "tranco", "phishtank", "", "ctlog", "phishtank"}
	for i, src := range sources {
		r := store.Record{
			URL:        "http://s.test/" + string(rune('a'+i)),
			LandingURL: "http://s.test/" + string(rune('a'+i)),
			Source:     src,
			ScoredAt:   base.Add(time.Duration(i) * time.Minute),
		}
		if err := b.Append(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	s := newServer(t, func(cfg *Config) { cfg.Store = b })

	var pr VerdictsPageResponse
	if code := call(t, s, http.MethodGet, "/v2/verdicts?source=phishtank", nil, &pr); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if pr.Count != 3 {
		t.Fatalf("source=phishtank returned %d records, want 3", pr.Count)
	}
	for _, r := range pr.Records {
		if r.Source != "phishtank" {
			t.Errorf("record %s has source %q, want phishtank", r.URL, r.Source)
		}
	}

	// The filter composes with the pagination cursor.
	var first VerdictsPageResponse
	if code := call(t, s, http.MethodGet, "/v2/verdicts?source=phishtank&limit=2", nil, &first); code != http.StatusOK {
		t.Fatalf("paged status = %d", code)
	}
	if first.Count != 2 || first.NextCursor == "" {
		t.Fatalf("first page = %d records, cursor %q; want 2 with a cursor", first.Count, first.NextCursor)
	}
	var rest VerdictsPageResponse
	if code := call(t, s, http.MethodGet, "/v2/verdicts?source=phishtank&limit=2&cursor="+first.NextCursor, nil, &rest); code != http.StatusOK {
		t.Fatalf("second page status = %d", code)
	}
	if rest.Count != 1 || rest.NextCursor != "" {
		t.Fatalf("second page = %d records, cursor %q; want the final 1", rest.Count, rest.NextCursor)
	}

	// An unknown source is an empty result, not an error.
	var none VerdictsPageResponse
	if code := call(t, s, http.MethodGet, "/v2/verdicts?source=nosuch", nil, &none); code != http.StatusOK {
		t.Fatalf("unknown source status = %d", code)
	}
	if none.Count != 0 {
		t.Errorf("unknown source returned %d records", none.Count)
	}

	// /v1/verdicts predates provenance: the parameter is ignored, not
	// rejected, and the response still carries every record.
	var v1 VerdictsResponse
	if code := call(t, s, http.MethodGet, "/v1/verdicts?source=phishtank", nil, &v1); code != http.StatusOK {
		t.Fatalf("v1 status = %d", code)
	}
	if v1.Count != len(sources) {
		t.Errorf("v1 with source param returned %d records, want all %d (param must be ignored)", v1.Count, len(sources))
	}
}
