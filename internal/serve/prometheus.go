package serve

import (
	"net/http"
	"sort"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/obs"
)

// writePrometheus renders the full metrics surface in the Prometheus
// text exposition format (version 0.0.4): serving counters and latency
// histograms, per-stage pipeline histograms from the tracer, feed /
// store / drift / lifecycle gauges when those subsystems are wired in,
// the model info metric, and the Go runtime metrics. The JSON document
// at /metrics stays the frozen default; this is the scrape surface
// behind ?format=prometheus.
//
// Naming follows Prometheus conventions: monotonically increasing
// values are *_total counters, point-in-time values are gauges,
// latencies are *_seconds histograms, and model identity rides on an
// info metric (a gauge fixed at 1 whose labels carry the metadata).
func (s *Server) writePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", obs.PromContentType)
	p := obs.NewPromWriter(w)
	m := s.metrics

	// Serving counters.
	p.Gauge("knowphish_uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds())
	p.Counter("knowphish_http_requests_total", "HTTP requests received.", float64(m.requests.Load()))
	p.Counter("knowphish_pages_scored_total", "Pages scored (batch items counted singly).", float64(m.scored.Load()))
	p.Counter("knowphish_phish_verdicts_total", "Pages with a final phishing verdict.", float64(m.phish.Load()))
	p.Counter("knowphish_http_errors_total", "4xx/5xx responses.", float64(m.errors.Load()))
	p.Gauge("knowphish_requests_in_flight", "Requests currently being served.", float64(m.inFlight.Load()))
	p.Counter("knowphish_batch_rejected_total", "Batch/stream/feed requests refused for exceeding the item limit.", float64(m.batchRejected.Load()))
	p.Counter("knowphish_requests_cancelled_total", "Requests cut short by client disconnect.", float64(m.cancelled.Load()))
	p.Counter("knowphish_streamed_items_total", "Result lines delivered on the streaming endpoint.", float64(m.streamed.Load()))

	// Verdict cache.
	p.Counter("knowphish_cache_hits_total", "Verdict-cache hits.", float64(m.cacheHits.Load()))
	p.Counter("knowphish_cache_misses_total", "Verdict-cache misses.", float64(m.cacheMiss.Load()))
	p.Gauge("knowphish_cache_entries", "Verdict-cache entries resident.", float64(s.cacheLen()))
	if s.cache != nil {
		p.Counter("knowphish_cache_evictions_total", "Verdict-cache evictions.", float64(s.cache.Evictions()))
	}

	// Scoring coalescer and per-stage memo tables.
	if s.coal != nil {
		cs := s.coal.Snapshot()
		p.Counter("knowphish_coalesce_batches_total", "Coalesced scoring passes run.", float64(cs.Batches))
		p.Counter("knowphish_coalesce_batched_items_total", "Requests scored through coalesced passes.", float64(cs.BatchedItems))
		p.Counter("knowphish_coalesce_bypassed_total", "Requests routed around the coalescer (explain or feature-masked).", float64(cs.Bypassed))
		p.FamilyL("knowphish_coalesce_flush_total", "Coalesced passes by flush trigger.", "counter", []obs.LabeledSample{
			{Labels: []obs.Label{{Name: "reason", Value: "adaptive"}}, Value: float64(cs.FlushAdaptive)},
			{Labels: []obs.Label{{Name: "reason", Value: "full"}}, Value: float64(cs.FlushFull)},
			{Labels: []obs.Label{{Name: "reason", Value: "timer"}}, Value: float64(cs.FlushTimer)},
		})
		tables := []struct {
			name string
			st   coalesce.TableStats
		}{
			{"analysis", cs.Analysis},
			{"features", cs.Features},
			{"score", cs.Score},
			{"target", cs.Target},
		}
		hits := make([]obs.LabeledSample, 0, len(tables))
		misses := make([]obs.LabeledSample, 0, len(tables))
		evictions := make([]obs.LabeledSample, 0, len(tables))
		entries := make([]obs.LabeledSample, 0, len(tables))
		for _, t := range tables {
			l := []obs.Label{{Name: "table", Value: t.name}}
			hits = append(hits, obs.LabeledSample{Labels: l, Value: float64(t.st.Hits)})
			misses = append(misses, obs.LabeledSample{Labels: l, Value: float64(t.st.Misses)})
			evictions = append(evictions, obs.LabeledSample{Labels: l, Value: float64(t.st.Evictions)})
			entries = append(entries, obs.LabeledSample{Labels: l, Value: float64(t.st.Entries)})
		}
		p.FamilyL("knowphish_memo_hits_total", "Per-stage memo-table hits.", "counter", hits)
		p.FamilyL("knowphish_memo_misses_total", "Per-stage memo-table misses.", "counter", misses)
		p.FamilyL("knowphish_memo_evictions_total", "Per-stage memo-table LRU evictions.", "counter", evictions)
		p.FamilyL("knowphish_memo_entries", "Per-stage memo-table entries resident.", "gauge", entries)
	}

	// Request latency histograms.
	p.Histogram("knowphish_request_duration_seconds", "Scoring-endpoint request latency.", &m.latency)
	p.Histogram("knowphish_batch_duration_seconds", "Per-batch request latency.", &m.scoreBatch)

	// Admission control: shed counters, the active level, and the
	// per-endpoint rolling latency quantiles the SLO engine steers by.
	// Classes are sorted by name so the exposition is byte-stable.
	p.Counter("knowphish_shed_total", "Requests shed by admission control.", float64(m.shedTotal.Load()))
	p.Counter("knowphish_shed_queued_total", "Of shed requests: shed at the worker-slot boundary after admission.", float64(m.shedQueued.Load()))
	p.Gauge("knowphish_shed_level", "Current admission shed level (0 = admitting everything).", float64(s.slo.ShedLevel()))
	classes := make([]*endpointClass, len(s.classes))
	copy(classes, s.classes)
	sort.Slice(classes, func(i, j int) bool { return classes[i].name < classes[j].name })
	shedByClass := make([]obs.LabeledSample, 0, len(classes))
	winQuantiles := make([]obs.LabeledSample, 0, len(classes)*9)
	for _, c := range classes {
		shedByClass = append(shedByClass, obs.LabeledSample{
			Labels: []obs.Label{{Name: "endpoint", Value: c.name}},
			Value:  float64(c.shed.Load()),
		})
		if c.window == nil {
			continue
		}
		for _, ws := range c.window.Summaries() {
			for _, q := range []struct {
				quantile string
				us       int64
			}{{"0.5", ws.P50US}, {"0.99", ws.P99US}, {"0.999", ws.P999US}} {
				winQuantiles = append(winQuantiles, obs.LabeledSample{
					Labels: []obs.Label{
						{Name: "endpoint", Value: c.name},
						{Name: "window", Value: ws.Window},
						{Name: "quantile", Value: q.quantile},
					},
					Value: float64(q.us) / 1e6,
				})
			}
		}
	}
	p.FamilyL("knowphish_endpoint_shed_total", "Requests shed per endpoint class.", "counter", shedByClass)
	p.FamilyL("knowphish_endpoint_latency_seconds", "Rolling windowed latency quantiles per endpoint class.", "gauge", winQuantiles)

	// SLO engine: worst state, per-objective state and burn rates.
	if s.slo != nil {
		st := s.slo.Status()
		p.Gauge("knowphish_slo_state", "Worst objective state (0 ok, 1 warn, 2 page).", float64(stateValue(st.State)))
		objState := make([]obs.LabeledSample, 0, len(st.Objectives))
		objBurn := make([]obs.LabeledSample, 0, len(st.Objectives)*2)
		objBudget := make([]obs.LabeledSample, 0, len(st.Objectives))
		objTrans := make([]obs.LabeledSample, 0, len(st.Objectives))
		for _, o := range st.Objectives {
			l := []obs.Label{{Name: "objective", Value: o.Name}}
			objState = append(objState, obs.LabeledSample{Labels: l, Value: float64(stateValue(o.State))})
			objBurn = append(objBurn,
				obs.LabeledSample{Labels: []obs.Label{{Name: "objective", Value: o.Name}, {Name: "window", Value: "fast"}}, Value: o.FastBurn},
				obs.LabeledSample{Labels: []obs.Label{{Name: "objective", Value: o.Name}, {Name: "window", Value: "slow"}}, Value: o.SlowBurn})
			objBudget = append(objBudget, obs.LabeledSample{Labels: l, Value: o.BudgetRemaining})
			objTrans = append(objTrans, obs.LabeledSample{Labels: l, Value: float64(o.Transitions)})
		}
		p.FamilyL("knowphish_slo_objective_state", "Per-objective state (0 ok, 1 warn, 2 page).", "gauge", objState)
		p.FamilyL("knowphish_slo_burn_rate", "Budget-normalized error-budget burn rate per objective and window (1.0 burns exactly the budget).", "gauge", objBurn)
		p.FamilyL("knowphish_slo_budget_remaining", "Slow-window error-budget fraction remaining per objective.", "gauge", objBudget)
		p.FamilyL("knowphish_slo_transitions_total", "State transitions per objective.", "counter", objTrans)
	}

	// Per-stage pipeline latency from the tracer, one label set per
	// stage under a single family.
	if s.tracer != nil {
		sum := s.tracer.Summary()
		p.Counter("knowphish_traces_started_total", "Request traces started.", float64(sum.Started))
		p.Counter("knowphish_traces_finished_total", "Request traces finished.", float64(sum.Finished))
		p.Counter("knowphish_traces_slow_total", "Finished traces over the slow threshold.", float64(sum.Slow))
		p.Counter("knowphish_trace_errors_total", "Finished traces marked failed.", float64(sum.Errors))
		p.Counter("knowphish_trace_spans_dropped_total", "Spans dropped for exceeding the per-trace capacity.", float64(sum.SpansDropped))
		p.HistHeader("knowphish_stage_duration_seconds", "Per-stage pipeline latency of traced requests.")
		for i, name := range obs.StageNames() {
			p.HistFromHist("knowphish_stage_duration_seconds",
				[]obs.Label{{Name: "stage", Value: name}}, s.tracer.StageHist(obs.Stage(i)))
		}
	}

	// Model identity: version from the serving detector, artifact hash
	// from the registry manifest when one backs this server.
	if det := s.source.Current(); det != nil {
		labels := []obs.Label{{Name: "version", Value: det.Version()}}
		if s.registry != nil {
			if mod, ok := s.registry.Champion(); ok {
				labels = append(labels,
					obs.Label{Name: "hash", Value: mod.Manifest.Hash},
					obs.Label{Name: "feature_set", Value: mod.Manifest.FeatureSet})
			}
		}
		p.Info("knowphish_model_info", "The model version serving traffic.", labels)
	}

	// Ingestion pipeline.
	if s.feed != nil {
		fs := s.feed.Stats()
		p.Gauge("knowphish_feed_queue_depth", "Queued URLs (ready + deferred).", float64(fs.Depth))
		p.Gauge("knowphish_feed_in_flight", "URLs being crawled or scored right now.", float64(fs.InFlight))
		p.Counter("knowphish_feed_accepted_total", "URLs accepted into the queue.", float64(fs.Accepted))
		p.Counter("knowphish_feed_processed_total", "URLs that reached a persisted verdict.", float64(fs.Processed))
		p.Counter("knowphish_feed_failed_total", "URLs whose fetch budget was exhausted.", float64(fs.Failed))
		p.Counter("knowphish_feed_retries_total", "Fetch attempts beyond the first.", float64(fs.Retries))
		p.Counter("knowphish_feed_dropped_total", "Accepted URLs abandoned by an expired drain.", float64(fs.Dropped))
		p.FamilyL("knowphish_feed_rejected_total", "URLs rejected at enqueue, by reason.", "counter", []obs.LabeledSample{
			{Labels: []obs.Label{{Name: "reason", Value: "queue_full"}}, Value: float64(fs.RejectedFull)},
			{Labels: []obs.Label{{Name: "reason", Value: "duplicate"}}, Value: float64(fs.RejectedDuplicate)},
			{Labels: []obs.Label{{Name: "reason", Value: "invalid_url"}}, Value: float64(fs.RejectedInvalid)},
			{Labels: []obs.Label{{Name: "reason", Value: "closed"}}, Value: float64(fs.RejectedClosed)},
		})
	}

	// Feed connectors: one labelled sample per source (and per reason
	// for the reject family), sorted by name so the exposition is
	// byte-stable between scrapes.
	if s.feedSources != nil {
		stats := s.feedSources.Stats()
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		lag := make([]obs.LabeledSample, 0, len(names))
		fetches := make([]obs.LabeledSample, 0, len(names))
		fetchErrs := make([]obs.LabeledSample, 0, len(names))
		items := make([]obs.LabeledSample, 0, len(names))
		enq := make([]obs.LabeledSample, 0, len(names))
		malformed := make([]obs.LabeledSample, 0, len(names))
		rejected := make([]obs.LabeledSample, 0, len(names)*3)
		for _, name := range names {
			st := stats[name]
			l := []obs.Label{{Name: "source", Value: name}}
			lag = append(lag, obs.LabeledSample{Labels: l, Value: st.LagSeconds})
			fetches = append(fetches, obs.LabeledSample{Labels: l, Value: float64(st.Fetches)})
			fetchErrs = append(fetchErrs, obs.LabeledSample{Labels: l, Value: float64(st.FetchErrors)})
			items = append(items, obs.LabeledSample{Labels: l, Value: float64(st.Items)})
			enq = append(enq, obs.LabeledSample{Labels: l, Value: float64(st.Enqueued)})
			malformed = append(malformed, obs.LabeledSample{Labels: l, Value: float64(st.Malformed)})
			for _, rr := range []struct {
				reason string
				n      int64
			}{
				{"queue_full", st.Rejected.QueueFull},
				{"rate_limited", st.Rejected.RateLimited},
				{"duplicate", st.Rejected.Duplicate},
				{"invalid_url", st.Rejected.Invalid},
				{"closed", st.Rejected.Closed},
			} {
				rejected = append(rejected, obs.LabeledSample{
					Labels: []obs.Label{{Name: "source", Value: name}, {Name: "reason", Value: rr.reason}},
					Value:  float64(rr.n),
				})
			}
		}
		p.FamilyL("knowphish_feedsrc_lag_seconds", "Seconds since the source's last successful poll (-1 before the first).", "gauge", lag)
		p.FamilyL("knowphish_feedsrc_fetches_total", "Successful polls per source.", "counter", fetches)
		p.FamilyL("knowphish_feedsrc_fetch_errors_total", "Failed polls per source.", "counter", fetchErrs)
		p.FamilyL("knowphish_feedsrc_items_total", "URLs produced per source.", "counter", items)
		p.FamilyL("knowphish_feedsrc_enqueued_total", "URLs accepted into the scheduler per source.", "counter", enq)
		p.FamilyL("knowphish_feedsrc_malformed_total", "Feed entries skipped as unusable per source.", "counter", malformed)
		p.FamilyL("knowphish_feedsrc_rejected_total", "URLs a source produced that were not enqueued, by reason.", "counter", rejected)
	}

	// Verdict store.
	if s.store != nil {
		ss := s.store.Stats()
		p.Gauge("knowphish_store_records", "Live (indexed) verdict records.", float64(ss.Records))
		p.Gauge("knowphish_store_segments", "Segment files of the segmented engine.", float64(ss.Segments))
		p.Counter("knowphish_store_appends_total", "Records appended since open.", float64(ss.Appends))
		p.Counter("knowphish_store_compactions_total", "Log rewrites since open.", float64(ss.Compactions))
		p.Counter("knowphish_store_superseded_total", "Records dropped by compaction.", float64(ss.Superseded))
		p.Counter("knowphish_store_compact_errors_total", "Automatic compactions that failed.", float64(ss.CompactErrors))
	}

	// Drift and model lifecycle.
	if s.lifecycle != nil {
		ls := s.lifecycle.Status()
		p.Gauge("knowphish_drift_score_psi", "Population stability index of the score distribution.", ls.Drift.ScorePSI)
		p.Gauge("knowphish_drift_max_feature_psi", "Largest per-feature PSI observed.", ls.Drift.MaxFeaturePSI)
		p.Gauge("knowphish_drift_phish_rate_shift", "Absolute phish-rate shift, current window vs baseline.", ls.Drift.RateShift)
		p.Gauge("knowphish_drift_flagged", "1 while any drift monitor is over its threshold.", boolGauge(ls.Drift.Flagged))
		p.Counter("knowphish_lifecycle_shadow_scored_total", "Challenger shadow scores.", float64(ls.ShadowScored))
		p.Counter("knowphish_lifecycle_retrains_total", "Background retrains completed.", float64(ls.Retrains))
		p.Counter("knowphish_lifecycle_retrain_failures_total", "Background retrains that failed.", float64(ls.RetrainFailures))
		p.Counter("knowphish_lifecycle_promotions_total", "Champion promotions.", float64(ls.Promotions))
		p.Gauge("knowphish_lifecycle_retraining", "1 while a background retrain is in flight.", boolGauge(ls.Retraining))
	}

	// Go runtime.
	p.WriteRuntimeMetrics()

	if err := p.Err(); err != nil {
		// Headers are gone; the scrape is torn and the scraper retries.
		s.metrics.errors.Add(1)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// stateValue maps an SLO state string onto the numeric gauge scale
// alert rules compare against.
func stateValue(state string) int {
	switch state {
	case "warn":
		return 1
	case "page":
		return 2
	default:
		return 0
	}
}
