package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"knowphish/internal/core"
	"knowphish/internal/webpage"
)

func TestCacheGetPut(t *testing.T) {
	c := newVerdictCache(64)
	if _, _, ok := c.Get("http://a.test/", ""); ok {
		t.Error("hit on empty cache")
	}
	want := core.Outcome{Score: 0.9, DetectorPhish: true, FinalPhish: true}
	c.Put("http://a.test/", want, "", "")
	got, _, ok := c.Get("http://a.test/", "")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Errorf("Get = %+v, %v; want %+v, true", got, ok, want)
	}
	// Overwrite updates in place.
	want.Score = 0.95
	c.Put("http://a.test/", want, "", "")
	if got, _, _ := c.Get("http://a.test/", ""); got.Score != 0.95 {
		t.Errorf("overwrite lost: %+v", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

// TestCacheVersionStaleness pins the hot-swap contract: entries scored
// by an older model read as misses for the new one, and the first fresh
// Put takes the slot over.
func TestCacheVersionStaleness(t *testing.T) {
	c := newVerdictCache(64)
	old := core.Outcome{Score: 0.9, FinalPhish: true}
	c.Put("http://a.test/", old, "v0001", "")
	if _, _, ok := c.Get("http://a.test/", "v0002"); ok {
		t.Error("stale-model entry served as a hit")
	}
	// The old model's readers still hit their own entry.
	if got, _, ok := c.Get("http://a.test/", "v0001"); !ok || got.Score != 0.9 {
		t.Errorf("same-version hit lost: %+v, %v", got, ok)
	}
	fresh := core.Outcome{Score: 0.2}
	c.Put("http://a.test/", fresh, "v0002", "")
	if got, _, ok := c.Get("http://a.test/", "v0002"); !ok || got.Score != 0.2 {
		t.Errorf("post-swap entry: %+v, %v", got, ok)
	}
	if _, _, ok := c.Get("http://a.test/", "v0001"); ok {
		t.Error("overwritten entry still serves the old version")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (overwrite, not duplicate)", c.Len())
	}
}

func TestCacheIgnoresEmptyKey(t *testing.T) {
	c := newVerdictCache(16)
	c.Put("", core.Outcome{Score: 1}, "", "")
	if c.Len() != 0 {
		t.Error("empty key was cached")
	}
	if _, _, ok := c.Get("", ""); ok {
		t.Error("empty key hit")
	}
}

func TestCacheEviction(t *testing.T) {
	// Capacity below the shard count still holds one entry per shard and
	// evicts within each shard.
	c := newVerdictCache(cacheShards) // one entry per shard
	for i := 0; i < 10*cacheShards; i++ {
		c.Put(fmt.Sprintf("http://s%d.test/", i), core.Outcome{Score: float64(i)}, "", "")
	}
	if got := c.Len(); got > cacheShards {
		t.Errorf("Len = %d, want <= %d after eviction", got, cacheShards)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Single-shard-sized cache: craft keys landing in one shard by using
	// one key repeatedly; exercise MoveToFront via interleaved gets.
	c := newVerdictCache(cacheShards * 2) // two entries per shard
	// Find three keys that map to the same shard.
	var keys []string
	target := c.shard(fnv32("seed"))
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(fnv32(k)) == target {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], core.Outcome{Score: 0}, "", "")
	c.Put(keys[1], core.Outcome{Score: 1}, "", "")
	// Touch keys[0] so keys[1] is the LRU entry.
	c.Get(keys[0], "")
	c.Put(keys[2], core.Outcome{Score: 2}, "", "")
	if _, _, ok := c.Get(keys[0], ""); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, _, ok := c.Get(keys[1], ""); ok {
		t.Error("least recently used entry survived")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newVerdictCache(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("http://s%d.test/", (w*7+i)%50)
				if i%2 == 0 {
					c.Put(key, core.Outcome{Score: float64(i)}, "", "")
				} else {
					c.Get(key, "")
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Errorf("cache overgrew: %d", c.Len())
	}
}

func TestGetBytesMatchesGet(t *testing.T) {
	snap := &webpage.Snapshot{StartingURL: "http://a.test/x", LandingURL: "http://b.test/y", Text: "hello"}
	key := cacheKey(snap)
	if want := string(appendCacheKey(nil, snap)); key != want {
		t.Fatalf("cacheKey = %q, want %q", key, want)
	}
	c := newVerdictCache(8)
	c.Put(key, core.Outcome{Score: 0.9}, "v0001", "")
	if out, _, ok := c.GetBytes([]byte(key), "v0001"); !ok || out.Score != 0.9 {
		t.Fatalf("GetBytes = (%+v, %v), want hit with score 0.9", out, ok)
	}
	if _, _, ok := c.GetBytes([]byte(key), "v0002"); ok {
		t.Fatal("GetBytes hit across model versions")
	}
	if _, _, ok := c.GetBytes(nil, "v0001"); ok {
		t.Fatal("GetBytes hit on empty key")
	}
	// Snapshots without a landing URL stay uncacheable.
	if got := appendCacheKey(nil, &webpage.Snapshot{StartingURL: "http://a.test/x"}); len(got) != 0 {
		t.Fatalf("appendCacheKey without landing URL = %q, want empty", got)
	}
}
