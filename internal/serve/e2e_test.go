// End-to-end acceptance: a live kpserve-shaped server (real HTTP
// listener, feed pipeline, verdict store) is fed by all three
// fixture-backed connector kinds while the loadgen harness drives
// POST /v1/feed at a target rate. The test asserts the three load
// invariants the subsystem promises: the target rate is sustained,
// no accepted URL is lost by the verdict store, and every
// connector-ingested verdict carries its source's provenance,
// filterable at GET /v2/verdicts?source=.
//
// This lives in an external test package: loadgen imports serve for
// the wire types, so an in-package test would be an import cycle.
package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/feed"
	"knowphish/internal/feedsrc"
	"knowphish/internal/loadgen"
	"knowphish/internal/ml"
	"knowphish/internal/serve"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
)

var (
	e2eOnce sync.Once
	e2eCorp *dataset.Corpus
	e2eDet  *core.Detector
	e2eErr  error
)

// e2eFixtures trains one small corpus/detector pair for the package's
// e2e tests (the in-package fixtures helper is unexported here).
func e2eFixtures(t *testing.T) (*dataset.Corpus, *core.Detector) {
	t.Helper()
	e2eOnce.Do(func() {
		e2eCorp, e2eErr = dataset.Build(dataset.Config{
			Seed:              61,
			Scale:             100,
			World:             webgen.Config{Seed: 62, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
			SkipLanguageTests: true,
		})
		if e2eErr != nil {
			return
		}
		snaps := append(e2eCorp.LegTrain.Snapshots(), e2eCorp.PhishTrain.Snapshots()...)
		labels := append(e2eCorp.LegTrain.Labels(), e2eCorp.PhishTrain.Labels()...)
		e2eDet, e2eErr = core.Train(snaps, labels, core.TrainConfig{
			Rank: e2eCorp.World.Ranking(),
			GBM:  ml.GBMConfig{Trees: 50, MaxDepth: 4, Seed: 3},
		})
	})
	if e2eErr != nil {
		t.Fatalf("e2e fixtures: %v", e2eErr)
	}
	return e2eCorp, e2eDet
}

// fixtureFeedServer serves the shared feedsrc testdata fixtures — the
// same bytes the connector unit tests parse, so the e2e path and the
// unit paths can never drift apart.
func fixtureFeedServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for route, file := range map[string]string{
		"/phish.json": "../feedsrc/testdata/phishtank.json",
		"/tranco.csv": "../feedsrc/testdata/tranco.csv",
		"/ct.ndjson":  "../feedsrc/testdata/ctlog.ndjson",
	} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("fixture %s: %v", file, err)
		}
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			w.Write(data)
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// The fixture item counts (see the feedsrc unit tests): 4 usable
// phishtank entries, 5 valid tranco rows, 3 complete ct-log lines.
var fixtureItems = map[string]int64{"phishtank": 4, "tranco": 5, "ctlog": 3}

func TestLoadEndToEndWithConnectors(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e load test in -short mode")
	}
	c, d := e2eFixtures(t)

	st, err := store.Open(store.Config{Backend: store.BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// MaxAttempts 1: connector URLs don't resolve in the synthetic
	// world, and the test wants their failure verdicts persisted (with
	// provenance) immediately, not after a retry schedule.
	sched, err := feed.New(feed.Config{
		Fetcher:     c.World,
		Pipeline:    &core.Pipeline{Detector: d, Identifier: target.New(c.Engine)},
		Store:       st,
		Workers:     4,
		DomainRate:  -1,
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	feedSrv := fixtureFeedServer(t)
	mux, err := feedsrc.NewMux(feedsrc.MuxConfig{
		Sink: sched,
		Sources: []feedsrc.Source{
			feedsrc.NewJSONFeed("phishtank", feedSrv.URL+"/phish.json", feedSrv.Client()),
			feedsrc.NewRankedCSV("tranco", feedSrv.URL+"/tranco.csv", feedSrv.Client(), 0),
			feedsrc.NewNDJSONStream("ctlog", feedSrv.URL+"/ct.ndjson", feedSrv.Client()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Detector:    d,
		Identifier:  target.New(c.Engine),
		Feed:        sched,
		FeedSources: mux,
		Store:       st,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The load corpus: resolvable brand-site pages, disjoint from every
	// connector fixture URL so per-source accounting stays exact.
	var corpus []string
	for _, b := range c.World.Brands {
		corpus = append(corpus, c.World.BrandSiteURLs(b)...)
	}

	const targetQPS = 100.0
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		TargetURL: ts.URL,
		Corpus:    corpus,
		QPS:       targetQPS,
		Workers:   4,
		Duration:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sustained ≥ target with a pacing allowance: the first arrival
	// waits one tick, so a 2s window carries 199 of 200 arrivals.
	if rep.SustainedQPS < 0.9*targetQPS {
		t.Fatalf("sustained %.1f URL/s, want ≥ %.1f (target %.0f)", rep.SustainedQPS, 0.9*targetQPS, targetQPS)
	}
	if rep.Errors > 0 {
		t.Fatalf("load run saw %d request errors", rep.Errors)
	}

	// All three connectors must have delivered every fixture item.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := mux.Stats()
		done := true
		for name, want := range fixtureItems {
			if stats[name].Items < want {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("connectors incomplete after 10s: %+v", stats)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Stop intake, drain, and check the zero-loss ledger: every
	// accepted URL must be persisted as processed or failed — no drops,
	// no silent losses between the scheduler and the store.
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}
	if dropped := sched.Drain(time.Now().Add(30 * time.Second)); dropped != 0 {
		t.Fatalf("drain dropped %d accepted URLs", dropped)
	}
	fs := sched.Stats()
	if fs.Accepted != fs.Processed+fs.Failed {
		t.Fatalf("verdict loss: accepted %d != processed %d + failed %d", fs.Accepted, fs.Processed, fs.Failed)
	}
	ss := st.Stats()
	if ss.Appends != fs.Processed+fs.Failed {
		t.Fatalf("store appends %d != persisted verdicts %d", ss.Appends, fs.Processed+fs.Failed)
	}

	// Per-source provenance through the live query surface: each
	// connector's verdicts are filterable by name and carry it in the
	// record; direct loadgen submissions carry no source.
	client := ts.Client()
	for name, want := range fixtureItems {
		var page serve.VerdictsPageResponse
		resp, err := client.Get(fmt.Sprintf("%s/v2/verdicts?source=%s&limit=50", ts.URL, name))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verdicts?source=%s: status %d", name, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if int64(page.Count) != want {
			t.Fatalf("source %s: %d verdicts, want %d", name, page.Count, want)
		}
		for _, rec := range page.Records {
			if rec.Source != name {
				t.Fatalf("source %s: record %q carries source %q", name, rec.URL, rec.Source)
			}
		}
	}
}
