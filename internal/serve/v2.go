package serve

import (
	"fmt"
	"net/http"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/target"
	"knowphish/internal/webpage"
)

// ScoreOptions are the per-request knobs of the v2 scoring surface,
// shared by /v2/score, /v2/target and every /v2/score/stream item.
type ScoreOptions struct {
	// DeadlineMS caps the scoring work for this request in
	// milliseconds (0 → the server's default deadline). The budget
	// covers pipeline stages, not time queued for a worker slot.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Explain selects evidence: "none", "top" or "full"
	// ("" → the server's default level).
	Explain string `json:"explain,omitempty"`
	// TopFeatures caps a "top" explanation's contribution count
	// (0 → the server's default).
	TopFeatures int `json:"top_features,omitempty"`
	// SkipTarget skips target identification even for detector
	// positives: cheaper, raw detector call only.
	SkipTarget bool `json:"skip_target,omitempty"`
}

// V2ScoreRequest is one page plus its scoring options.
type V2ScoreRequest struct {
	PageRequest
	ScoreOptions
}

// V2ScoreResponse is the rich verdict document of the v2 surface.
type V2ScoreResponse struct {
	core.Verdict
	// LandingURL identifies the scored page.
	LandingURL string `json:"landing_url,omitempty"`
	// Cached reports whether the verdict was reused rather than
	// freshly computed (cached verdicts carry no timings or evidence;
	// request an explanation to force a fresh computation).
	Cached bool `json:"cached"`
}

// V2TargetResponse is the target identification document of the v2
// surface.
type V2TargetResponse struct {
	LandingURL string        `json:"landing_url,omitempty"`
	Result     target.Result `json:"result"`
	// ElapsedUS is the identification wall time.
	ElapsedUS int64 `json:"elapsed_us"`
}

// resolveDeadline maps a wire deadline_ms onto the server default.
func (s *Server) resolveDeadline(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.defaultDeadline
}

// coreOptions validates wire options and resolves them against the
// server defaults into core functional options. It is the single
// option-validation path of the v2 surface; /v2/target calls it too
// (discarding the scoring options) so the endpoints reject the same
// malformed requests.
func (s *Server) coreOptions(o ScoreOptions) ([]core.ScoreOption, error) {
	if o.DeadlineMS < 0 {
		return nil, fmt.Errorf("negative deadline_ms %d", o.DeadlineMS)
	}
	if o.TopFeatures < 0 {
		return nil, fmt.Errorf("negative top_features %d", o.TopFeatures)
	}
	deadline := s.resolveDeadline(o.DeadlineMS)
	level := s.defaultExplain
	if o.Explain != "" {
		var err error
		if level, err = core.ParseExplainLevel(o.Explain); err != nil {
			return nil, err
		}
	}
	topN := o.TopFeatures
	if topN == 0 {
		topN = s.explainTopN
	}
	opts := []core.ScoreOption{
		core.WithDeadline(deadline),
		core.WithExplain(level),
		core.WithTopFeatures(topN),
	}
	if o.SkipTarget {
		opts = append(opts, core.WithoutTargetID())
	}
	return opts, nil
}

func (s *Server) handleScoreV2(w http.ResponseWriter, r *http.Request) {
	var req V2ScoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := s.coreOptions(req.ScoreOptions)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	pipe, err := s.pipeline()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	ctx := r.Context()
	var snap *webpage.Snapshot
	if berr := s.boundedCtx(ctx, prioInteractive, func() { snap, err = req.PageRequest.snapshot() }); berr != nil {
		s.failCtx(w, berr)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	v, cached, err := s.scoreSnap(ctx, prioInteractive, pipe, snap, core.NewScoreRequest(snap, opts...))
	if err != nil {
		s.failCtx(w, err)
		return
	}
	s.reply(w, http.StatusOK, V2ScoreResponse{Verdict: v, LandingURL: snap.LandingURL, Cached: cached})
}

func (s *Server) handleTargetV2(w http.ResponseWriter, r *http.Request) {
	var req V2ScoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	if _, err := s.coreOptions(req.ScoreOptions); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	var snap *webpage.Snapshot
	var err error
	if berr := s.boundedCtx(ctx, prioInteractive, func() { snap, err = req.PageRequest.snapshot() }); berr != nil {
		s.failCtx(w, berr)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	t0 := time.Now()
	res, err := s.identify(ctx, prioInteractive, snap, s.resolveDeadline(req.DeadlineMS))
	if err != nil {
		s.failCtx(w, err)
		return
	}
	s.reply(w, http.StatusOK, V2TargetResponse{
		LandingURL: snap.LandingURL,
		Result:     res,
		ElapsedUS:  time.Since(t0).Microseconds(),
	})
}
