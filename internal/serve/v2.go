package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/core"
	"knowphish/internal/pool"
	"knowphish/internal/target"
	"knowphish/internal/webpage"
)

// ScoreOptions are the per-request knobs of the v2 scoring surface,
// shared by /v2/score, /v2/score/batch, /v2/target and every
// /v2/score/stream item.
type ScoreOptions struct {
	// DeadlineMS caps the scoring work for this request in
	// milliseconds (0 → the server's default deadline). The budget
	// covers pipeline stages, not time queued for a worker slot.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Explain selects evidence: "none", "top" or "full"
	// ("" → the server's default level).
	Explain string `json:"explain,omitempty"`
	// TopFeatures caps a "top" explanation's contribution count
	// (0 → the server's default).
	TopFeatures int `json:"top_features,omitempty"`
	// SkipTarget skips target identification even for detector
	// positives: cheaper, raw detector call only.
	SkipTarget bool `json:"skip_target,omitempty"`
	// CacheControl selects how the request interacts with the verdict
	// cache and the per-stage memo tables: "default" (or absent) reads
	// and writes, "no-memo" neither reads nor writes, "refresh"
	// recomputes every stage and overwrites — the forced revalidation.
	CacheControl string `json:"cache_control,omitempty"`
}

// V2ScoreRequest is one page plus its scoring options.
type V2ScoreRequest struct {
	PageRequest
	ScoreOptions
}

// V2ScoreResponse is the rich verdict document of the v2 surface.
type V2ScoreResponse struct {
	core.Verdict
	// LandingURL identifies the scored page.
	LandingURL string `json:"landing_url,omitempty"`
	// Cached reports whether the verdict was reused rather than
	// freshly computed (cached verdicts carry no timings or evidence;
	// request an explanation to force a fresh computation).
	Cached bool `json:"cached"`
}

// V2TargetResponse is the target identification document of the v2
// surface.
type V2TargetResponse struct {
	LandingURL string        `json:"landing_url,omitempty"`
	Result     target.Result `json:"result"`
	// ElapsedUS is the identification wall time.
	ElapsedUS int64 `json:"elapsed_us"`
}

// resolveDeadline maps a wire deadline_ms onto the server default.
func (s *Server) resolveDeadline(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.defaultDeadline
}

// coreOptions validates wire options and resolves them against the
// server defaults into core functional options plus the parsed
// cache-control mode. It is the single option-validation path of the
// v2 surface; /v2/target calls it too (discarding the scoring options)
// so the endpoints reject the same malformed requests.
//
// The two common request shapes — all options defaulted, with or
// without skip_target — return slices hoisted once in New instead of
// assembling (and allocating) them per request; only requests that
// actually customize an option build a fresh slice.
func (s *Server) coreOptions(o ScoreOptions) ([]core.ScoreOption, coalesce.CacheControl, error) {
	cc, err := coalesce.ParseCacheControl(o.CacheControl)
	if err != nil {
		return nil, cc, err
	}
	if o.DeadlineMS < 0 {
		return nil, cc, fmt.Errorf("negative deadline_ms %d", o.DeadlineMS)
	}
	if o.TopFeatures < 0 {
		return nil, cc, fmt.Errorf("negative top_features %d", o.TopFeatures)
	}
	if o.DeadlineMS == 0 && o.Explain == "" && o.TopFeatures == 0 {
		if o.SkipTarget {
			return s.defaultOptsSkip, cc, nil
		}
		return s.defaultOpts, cc, nil
	}
	deadline := s.resolveDeadline(o.DeadlineMS)
	level := s.defaultExplain
	if o.Explain != "" {
		if level, err = core.ParseExplainLevel(o.Explain); err != nil {
			return nil, cc, err
		}
	}
	topN := o.TopFeatures
	if topN == 0 {
		topN = s.explainTopN
	}
	opts := []core.ScoreOption{
		core.WithDeadline(deadline),
		core.WithExplain(level),
		core.WithTopFeatures(topN),
	}
	if o.SkipTarget {
		opts = append(opts, core.WithoutTargetID())
	}
	return opts, cc, nil
}

// scoreETag derives the entity tag of a verdict: the page's content
// fingerprint plus the model generation that scored it. The same page
// under the same champion always carries the same tag; a promotion
// changes every tag, so clients revalidate exactly when verdicts can
// change.
func scoreETag(v *core.Verdict) string {
	if v.ContentFingerprint == "" {
		return ""
	}
	return `"` + v.ContentFingerprint + "-" + v.ModelVersion + `"`
}

// etagMatch reports whether an If-None-Match header matches the tag,
// per RFC 9110: a comma-separated candidate list, weak-comparison (the
// W/ prefix is ignored), with "*" matching anything.
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

func (s *Server) handleScoreV2(w http.ResponseWriter, r *http.Request) {
	var req V2ScoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, cc, err := s.coreOptions(req.ScoreOptions)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	pipe, err := s.pipeline()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	ctx := r.Context()
	var snap *webpage.Snapshot
	if berr := s.boundedCtx(ctx, prioInteractive, func() { snap, err = req.PageRequest.snapshot() }); berr != nil {
		s.failCtx(w, berr)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var prov core.MemoProvenance
	v, cached, err := s.scoreSnap(ctx, prioInteractive, pipe, snap, core.NewScoreRequest(snap, opts...), cc, &prov)
	if err != nil {
		s.failCtx(w, err)
		return
	}
	if prov != (core.MemoProvenance{}) {
		v.Memo = &prov
	}
	if etag := scoreETag(&v); etag != "" {
		w.Header().Set("ETag", etag)
		// 304 only on the default cache mode and for evidence-free
		// verdicts: no-memo/refresh ask for recomputation (the client
		// wants the body), and an explain response carries evidence a
		// bare 304 would withhold.
		if cc == coalesce.CacheDefault && v.Explanation == nil && etagMatch(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	s.reply(w, http.StatusOK, V2ScoreResponse{Verdict: v, LandingURL: snap.LandingURL, Cached: cached})
}

// V2BatchRequest scores many pages in one call on the v2 surface. The
// embedded options apply to every page; concurrent items coalesce into
// shared node-major kernel passes.
type V2BatchRequest struct {
	Pages []PageRequest `json:"pages"`
	ScoreOptions
	// Workers optionally lowers the fan-out for this request; it is
	// capped by the server's worker limit.
	Workers int `json:"workers,omitempty"`
}

// V2BatchResponse carries per-page verdict documents in request order.
type V2BatchResponse struct {
	Results   []V2ScoreResponse `json:"results"`
	Count     int               `json:"count"`
	ElapsedUS int64             `json:"elapsed_us"`
}

// handleScoreBatchV2 is the batch form of /v2/score: the same verdict
// documents (fingerprints, memo provenance, cache semantics), fanned
// out over the worker pool and funneled through the coalescer so the
// batch scores in node-major passes. Like v1, a deadline or
// cancellation anywhere fails the whole batch — per-item failure
// isolation is what /v2/score/stream is for.
func (s *Server) handleScoreBatchV2(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req V2BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Pages) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Pages) > s.maxBatch {
		s.metrics.batchRejected.Add(1)
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Pages), s.maxBatch))
		return
	}
	opts, cc, err := s.coreOptions(req.ScoreOptions)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	pipe, err := s.pipeline()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	ctx := r.Context()
	workers := s.workers
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}

	snaps := make([]*webpage.Snapshot, len(req.Pages))
	pageErrs := make([]error, len(req.Pages))
	if err := pool.ForEachIndexCtx(ctx, len(req.Pages), workers, func(i int) {
		if berr := s.boundedCtx(ctx, prioBatch, func() { snaps[i], pageErrs[i] = req.Pages[i].snapshot() }); berr != nil {
			pageErrs[i] = berr
		}
	}); err != nil {
		s.failCtx(w, err)
		return
	}
	for i, err := range pageErrs {
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.failCtx(w, err)
				return
			}
			s.fail(w, http.StatusBadRequest, fmt.Errorf("page %d: %w", i, err))
			return
		}
	}

	out := make([]V2ScoreResponse, len(snaps))
	provs := make([]core.MemoProvenance, len(snaps))
	itemErrs := make([]error, len(snaps))
	if err := pool.ForEachIndexCtx(ctx, len(snaps), workers, func(i int) {
		v, cached, err := s.scoreSnap(ctx, prioBatch, pipe, snaps[i], core.NewScoreRequest(snaps[i], opts...), cc, &provs[i])
		if err != nil {
			itemErrs[i] = err
			return
		}
		if provs[i] != (core.MemoProvenance{}) {
			v.Memo = &provs[i]
		}
		out[i] = V2ScoreResponse{Verdict: v, LandingURL: snaps[i].LandingURL, Cached: cached}
	}); err != nil {
		s.failCtx(w, err)
		return
	}
	for _, err := range itemErrs {
		if err != nil {
			s.failCtx(w, err)
			return
		}
	}
	s.metrics.scoreBatch.Observe(time.Since(t0))
	s.reply(w, http.StatusOK, V2BatchResponse{
		Results:   out,
		Count:     len(out),
		ElapsedUS: time.Since(t0).Microseconds(),
	})
}

func (s *Server) handleTargetV2(w http.ResponseWriter, r *http.Request) {
	var req V2ScoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	if _, _, err := s.coreOptions(req.ScoreOptions); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	var snap *webpage.Snapshot
	var err error
	if berr := s.boundedCtx(ctx, prioInteractive, func() { snap, err = req.PageRequest.snapshot() }); berr != nil {
		s.failCtx(w, berr)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	t0 := time.Now()
	res, err := s.identify(ctx, prioInteractive, snap, s.resolveDeadline(req.DeadlineMS))
	if err != nil {
		s.failCtx(w, err)
		return
	}
	s.reply(w, http.StatusOK, V2TargetResponse{
		LandingURL: snap.LandingURL,
		Result:     res,
		ElapsedUS:  time.Since(t0).Microseconds(),
	})
}
