package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"knowphish/internal/core"
	"knowphish/internal/pool"
	"knowphish/internal/webpage"
)

// V2StreamResult is one NDJSON line of a /v2/score/stream response:
// the item's position in the request stream plus either its verdict or
// a per-item error. Items complete out of order; clients reassemble by
// Index.
type V2StreamResult struct {
	// Index is the item's zero-based line number in the request body.
	Index int `json:"index"`
	*V2ScoreResponse
	// Error reports a per-item failure (malformed line, unresolvable
	// page, expired per-item deadline) without ending the stream.
	Error string `json:"error,omitempty"`
}

// streamItem is one parsed request line awaiting scoring.
type streamItem struct {
	req      V2ScoreRequest
	parseErr error
}

// handleScoreStream scores an NDJSON stream: one V2ScoreRequest per
// line in, one V2StreamResult per line out, flushed as each item
// completes. Items fan out over the server's worker pool (bounded by
// the server-wide scoring semaphore), each under its own deadline, and
// the whole stream rides the request context — when the client
// disconnects, unstarted items are never scored and the handler
// returns at the next item boundary.
func (s *Server) handleScoreStream(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	items, ok := s.readStreamItems(w, r)
	if !ok {
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	results := make(chan V2StreamResult)
	go func() {
		defer close(results)
		_ = pool.ForEachIndexCtx(ctx, len(items), s.workers, func(i int) {
			res := s.scoreStreamItem(ctx, i, items[i])
			select {
			case results <- res:
			case <-ctx.Done():
			}
		})
	}()
	// Each line is encoded into a reused buffer and written in one call:
	// the encoder's working memory amortizes across the stream instead
	// of being re-grown per item, and the transport sees whole lines.
	buf := replyPool.Get().(*bytes.Buffer)
	enc := json.NewEncoder(buf)
	for res := range results {
		buf.Reset()
		if err := enc.Encode(res); err != nil {
			continue
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			// The connection is gone; ctx cancellation is already
			// stopping the producers. Keep draining so they never block.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.metrics.streamed.Add(1)
	}
	if buf.Cap() <= maxPooledReply {
		replyPool.Put(buf)
	}
	if ctx.Err() != nil {
		s.metrics.cancelled.Add(1)
	}
}

// readStreamItems parses the NDJSON request body up to the batch item
// limit. It reports ok=false after writing the error response itself.
func (s *Server) readStreamItems(w http.ResponseWriter, r *http.Request) ([]streamItem, bool) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	sc := bufio.NewScanner(body)
	// A single line may carry a full snapshot; let it grow to the body
	// limit rather than bufio's 64 KiB default.
	maxLine := int(s.maxBody)
	if maxLine <= 0 || int64(maxLine) != s.maxBody {
		maxLine = DefaultMaxBodyBytes
	}
	sc.Buffer(make([]byte, 64<<10), maxLine)

	var items []streamItem
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if len(items) >= s.maxBatch {
			s.metrics.batchRejected.Add(1)
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("stream exceeds the %d-item limit", s.maxBatch))
			return nil, false
		}
		var it streamItem
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		// A malformed line becomes a per-item error in the response
		// stream; killing the whole stream for one bad line would throw
		// away every good item behind it.
		it.parseErr = dec.Decode(&it.req)
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.maxBody))
		} else {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("reading stream: %w", err))
		}
		return nil, false
	}
	if len(items) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty stream"))
		return nil, false
	}
	return items, true
}

// scoreStreamItem runs one stream item through the shared scoring path,
// folding every per-item failure into the result line. Each item
// resolves the detector for itself: a stream is long-lived, and a
// champion promoted mid-stream should score the items still queued —
// every result line carries the model_version that actually produced
// it.
func (s *Server) scoreStreamItem(ctx context.Context, idx int, it streamItem) V2StreamResult {
	res := V2StreamResult{Index: idx}
	if it.parseErr != nil {
		res.Error = fmt.Sprintf("decoding item: %v", it.parseErr)
		return res
	}
	opts, cc, err := s.coreOptions(it.req.ScoreOptions)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	pipe, err := s.pipeline()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var snap *webpage.Snapshot
	if berr := s.boundedCtx(ctx, prioBatch, func() { snap, err = it.req.PageRequest.snapshot() }); berr != nil {
		res.Error = berr.Error()
		return res
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var prov core.MemoProvenance
	v, cached, err := s.scoreSnap(ctx, prioBatch, pipe, snap, core.NewScoreRequest(snap, opts...), cc, &prov)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// This item ran out of its own budget; the stream lives on.
			res.Error = "scoring deadline exceeded"
		} else {
			res.Error = err.Error()
		}
		return res
	}
	if prov != (core.MemoProvenance{}) {
		v.Memo = &prov
	}
	res.V2ScoreResponse = &V2ScoreResponse{Verdict: v, LandingURL: snap.LandingURL, Cached: cached}
	return res
}
