// Package serve exposes the detection → target-identification pipeline
// as a concurrent HTTP JSON service — the paper's system as production
// infrastructure rather than a batch experiment. One process loads a
// trained detector, the popularity ranking and the legitimate-web search
// index, then answers:
//
//	POST /v2/score         score one page → rich Verdict (label,
//	                       evidence, timings; per-request deadline)
//	POST /v2/target        run target identification only (Verdict-era
//	                       document with timings)
//	POST /v2/score/stream  NDJSON in, verdicts streamed back as they
//	                       complete (per-item deadlines, stops on
//	                       client disconnect)
//	POST /v1/score         frozen wire format; adapter over v2
//	POST /v1/score/batch   frozen wire format; adapter over v2
//	POST /v1/target        frozen wire format; adapter over v2
//	POST /v1/feed          enqueue URLs into the ingestion pipeline
//	GET  /v1/verdicts      query the durable verdict store (frozen
//	                       wire format; adapter over the v2 path)
//	GET  /v2/verdicts      cursor-paginated verdict queries with
//	                       target, model_version, source and
//	                       time-range filters (next_cursor resumes
//	                       the scan)
//	GET  /v2/models        list registry versions, champion, drift and
//	                       shadow-scoring gauges
//	POST /v2/models        trigger a background retrain from the store
//	POST /v2/models/promote  swap the champion (gated; force overrides)
//	GET  /healthz          liveness and model metadata
//	GET  /metrics          request counts, latency percentiles, cache,
//	                       feed, store and model-lifecycle stats
//
// The detector is resolved through a core.DetectorSource once per
// request: with a model registry configured, a champion/challenger
// promotion is picked up by the next request — one atomic load, no lock
// on the hot path, no restart, and in-flight requests finish on the
// model they started with. Every verdict and stored record is stamped
// with the model_version that produced it, and cached verdicts are
// version-gated so a promoted model is never shadowed by its
// predecessor's cache entries.
//
// Every scoring path is context-aware end to end: the request context
// (plus an optional per-request deadline) reaches the pipeline through
// core.AnalyzeCtx, so a disconnected client or an expired budget stops
// consuming CPU at the next stage boundary instead of burning a worker
// slot to completion. The v1 endpoints are thin adapters over the same
// machinery and keep their historical wire format byte for byte (pinned
// by golden tests).
//
// Scoring fans out over the shared worker-pool primitive
// (internal/pool) under a server-wide concurrency bound, so a burst of
// concurrent batches cannot oversubscribe the cores. A sharded LRU
// cache keyed by landing URL plus a content fingerprint absorbs
// repeated lookups of the same page — phishing campaigns funnel many
// lures to one landing page — without letting one client's submission
// define the verdict for a URL it does not own.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/core"
	"knowphish/internal/drift"
	"knowphish/internal/feed"
	"knowphish/internal/feedsrc"
	"knowphish/internal/obs"
	"knowphish/internal/pool"
	"knowphish/internal/registry"
	"knowphish/internal/slo"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/webpage"
)

// Defaults for Config zero values.
const (
	// DefaultCacheSize is the total verdict-cache capacity in entries.
	DefaultCacheSize = 4096
	// DefaultMaxBatch bounds the page count of one batch request and
	// the item count of one stream request.
	DefaultMaxBatch = 1024
	// DefaultMaxBodyBytes bounds request body size.
	DefaultMaxBodyBytes = 16 << 20
	// DefaultVerdictsLimit is the record cap of a verdicts response
	// when the request does not set one.
	DefaultVerdictsLimit = 100
	// MaxVerdictsLimit is the largest accepted verdicts-query limit;
	// /v2/verdicts pages beyond it via next_cursor.
	MaxVerdictsLimit = 1000
)

// Config assembles a Server.
type Config struct {
	// Detector is the trained classifier, frozen for the server's
	// lifetime. Required unless Detectors (or Registry) supplies models.
	Detector *core.Detector
	// Detectors optionally serves the detector per request — the model
	// lifecycle's hot-swap seam. When set, every request resolves the
	// current champion through it (one atomic load) and Detector is only
	// used as a fallback while the source has none.
	Detectors core.DetectorSource
	// Registry is the versioned model store behind GET/POST /v2/models
	// and /v2/models/promote (optional). When Detectors is nil the
	// registry also becomes the detector source.
	Registry *registry.Registry
	// Lifecycle is the drift-monitoring / retraining controller whose
	// status is exported at /v2/models and /metrics, and which gates
	// promotions (optional).
	Lifecycle *drift.Lifecycle
	// Identifier is the target identification system. Required.
	Identifier *target.Identifier
	// Workers bounds concurrent pipeline executions across the whole
	// server and caps the per-batch fan-out (0 → GOMAXPROCS).
	Workers int
	// CacheSize is the verdict-cache capacity in entries
	// (0 → DefaultCacheSize, negative → caching disabled).
	CacheSize int
	// MaxBatch bounds pages per batch or stream request
	// (0 → DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (0 → DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// DefaultDeadline is the per-request scoring budget applied when a
	// request does not set its own deadline_ms (0 → no deadline). It
	// bounds pipeline work, not time spent queued for a worker slot.
	DefaultDeadline time.Duration
	// CoalesceWindow bounds how long the scoring coalescer waits to
	// gather concurrent requests into one batched ensemble traversal
	// (0 → coalesce.DefaultWindow; negative → coalescing disabled,
	// every request scores through the per-request path). A lone
	// request never pays the window: the coalescer flushes as soon as
	// no other request is on its way.
	CoalesceWindow time.Duration
	// CoalesceMax caps one coalesced pass (0 → coalesce.DefaultMaxBatch).
	CoalesceMax int
	// MemoEntries is the capacity of each per-stage memo table —
	// analysis, feature vector, detector score, target result — keyed
	// by content fingerprint (0 → coalesce.DefaultMemoEntries;
	// negative → memoization disabled while batching stays on).
	MemoEntries int
	// Coalescer optionally injects a pre-built scoring coalescer shared
	// with other subsystems (kpserve scores the feed drain through the
	// same one, so feed traffic warms the HTTP surface's memo tables and
	// vice versa). When nil, the server builds its own from
	// CoalesceWindow / CoalesceMax / MemoEntries.
	Coalescer *coalesce.Coalescer
	// DefaultExplain is the explain level applied when a v2 request
	// does not set one. v1 adapters never explain (their wire format
	// predates evidence).
	DefaultExplain core.ExplainLevel
	// ExplainTopN caps ExplainTop contributions when the request does
	// not set top_features (0 → core.DefaultTopFeatures).
	ExplainTopN int
	// Feed is the continuous ingestion scheduler backing POST /v1/feed
	// (optional; without it the endpoint answers 503).
	Feed *feed.Scheduler
	// FeedSources is the connector mux feeding the scheduler from
	// external URL feeds; wiring it here exports its per-source health
	// counters at /metrics (optional).
	FeedSources *feedsrc.Mux
	// Store is the durable verdict store backing GET /v1/verdicts and
	// GET /v2/verdicts (optional; without it both endpoints answer
	// 503). Any store.Backend engine works; see store.Open.
	Store store.Backend
	// Tracer records per-request pipeline traces served at
	// GET /debug/traces and summarized in /metrics (optional; nil
	// disables tracing — every instrumented path is nil-safe).
	Tracer *obs.Tracer
	// SLO is the error-budget engine: it turns completed requests into
	// SLI events, drives the ok/warn/page state at GET /debug/slo and
	// /healthz, and its shed level powers the adaptive admission
	// controller (optional; nil disables SLO tracking and shedding).
	// The caller owns ticking it (slo.Engine.Run).
	SLO *slo.Engine
	// Journal is the operational event ring served at GET /debug/events
	// (optional; without it the endpoint answers an empty document).
	Journal *obs.Journal
	// Clock feeds the windowed per-endpoint histograms, for
	// deterministic tests (nil → time.Now).
	Clock func() time.Time
	// Logger receives the server's structured logs: request-scoped slow
	// and error records carrying trace ids (nil → discard).
	Logger *slog.Logger
}

// Server is the HTTP scoring service. It is an http.Handler; wire it
// into any mux or server. All handlers are safe for concurrent use.
type Server struct {
	// source yields the detector per request; identifier is fixed. Each
	// HTTP request resolves the detector exactly once (pipeline()), so a
	// champion hot-swap lands between requests, never inside one — a
	// batch is scored end to end by a single model.
	source          core.DetectorSource
	identifier      *target.Identifier
	registry        *registry.Registry
	lifecycle       *drift.Lifecycle
	workers         int
	maxBatch        int
	maxBody         int64
	defaultDeadline time.Duration
	defaultExplain  core.ExplainLevel
	explainTopN     int
	cache           *verdictCache
	// coal is the cross-request scoring coalescer: concurrent score
	// calls batch into one node-major ensemble traversal, with
	// per-stage content-addressed memoization layered on top. The
	// verdict cache above is L1 (whole outcomes by URL + content); the
	// coalescer's memo tables are L2 (per-stage results by content
	// alone). Nil when coalescing is disabled — every call site goes
	// through coal.Do, which nil-degrades to a plain AnalyzeCtx.
	coal *coalesce.Coalescer
	// defaultOpts / defaultOptsSkip / v1Opts are the hoisted option
	// slices of the common request shapes, built once in New so the
	// hot paths never rebuild (and re-allocate) them per request.
	defaultOpts     []core.ScoreOption
	defaultOptsSkip []core.ScoreOption
	v1Opts          []core.ScoreOption
	feed            *feed.Scheduler
	feedSources     *feedsrc.Mux
	store           store.Backend
	metrics         *Metrics
	tracer          *obs.Tracer
	slo             *slo.Engine
	journal         *obs.Journal
	clock           func() time.Time
	logger          *slog.Logger
	// classes lists every endpoint class for metrics iteration; the
	// cls* fields are the per-class handles routes are wired with.
	classes     []*endpointClass
	clsScore    *endpointClass
	clsTarget   *endpointClass
	clsBatch    *endpointClass
	clsStream   *endpointClass
	clsFeed     *endpointClass
	clsVerdicts *endpointClass
	clsModels   *endpointClass
	clsOps      *endpointClass
	// slowSeen counts slow requests for the sampled slow-request log:
	// logging every slow request during an incident would flood the log
	// exactly when it matters most, so only every slowLogSample-th one
	// (and the first) is written. /debug/traces retains them all.
	slowSeen atomic.Int64
	mux      *http.ServeMux
	// scoreSem bounds CPU-heavy work (parsing, hashing, scoring,
	// identification) server-wide: per-request fan-out alone would let
	// B concurrent batches run B × workers goroutines and oversubscribe
	// the cores. See boundedCtx.
	scoreSem chan struct{}
}

// New validates the configuration and builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Detectors == nil && cfg.Registry != nil {
		cfg.Detectors = cfg.Registry
	}
	if cfg.Detector == nil && cfg.Detectors == nil {
		return nil, errors.New("serve: Config needs a Detector or a Detectors source")
	}
	if cfg.Identifier == nil {
		return nil, errors.New("serve: Config.Identifier is required")
	}
	source := cfg.Detectors
	if source == nil {
		source = core.StaticSource(cfg.Detector)
	} else if cfg.Detector != nil {
		source = fallbackSource{primary: source, fallback: cfg.Detector}
	}
	s := &Server{
		source:          source,
		identifier:      cfg.Identifier,
		registry:        cfg.Registry,
		lifecycle:       cfg.Lifecycle,
		workers:         cfg.Workers,
		maxBatch:        cfg.MaxBatch,
		maxBody:         cfg.MaxBodyBytes,
		defaultDeadline: cfg.DefaultDeadline,
		defaultExplain:  cfg.DefaultExplain,
		explainTopN:     cfg.ExplainTopN,
		feed:            cfg.Feed,
		feedSources:     cfg.FeedSources,
		store:           cfg.Store,
		metrics:         newMetrics(),
		tracer:          cfg.Tracer,
		slo:             cfg.SLO,
		journal:         cfg.Journal,
		clock:           cfg.Clock,
		logger:          cfg.Logger,
	}
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	s.scoreSem = make(chan struct{}, s.workers)
	s.coal = cfg.Coalescer
	if s.coal == nil && cfg.CoalesceWindow >= 0 {
		s.coal = coalesce.New(coalesce.Config{
			Window:      cfg.CoalesceWindow,
			MaxBatch:    cfg.CoalesceMax,
			MemoEntries: cfg.MemoEntries,
			Workers:     s.workers,
		})
	}
	// Hoist the option slices of the common request shapes: an
	// option-free v2 request, the same with skip_target, and the v1
	// adapters. Built once, they keep per-request option assembly off
	// the allocator (pinned by TestHoistedOptionsAllocContract in
	// internal/core and TestCoreOptionsHoisted here).
	s.defaultOpts = []core.ScoreOption{
		core.WithDeadline(s.defaultDeadline),
		core.WithExplain(s.defaultExplain),
		core.WithTopFeatures(s.explainTopN),
	}
	s.defaultOptsSkip = append(append([]core.ScoreOption{}, s.defaultOpts...), core.WithoutTargetID())
	if s.defaultDeadline > 0 {
		s.v1Opts = []core.ScoreOption{core.WithDeadline(s.defaultDeadline)}
	}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = newVerdictCache(size)
	}
	// Endpoint classes group routes for windowed latency, SLO
	// observation and admission control (see admission.go). The
	// cumulative latency histogram still tracks the scoring endpoints
	// only; healthz and metrics probes are counted but excluded so
	// liveness polling cannot dilute the percentiles operators alert
	// on. The stream endpoint is likewise excluded: a stream's duration
	// is the client's item count, not the server's latency.
	s.clsScore = s.newClass("score", prioInteractive, &s.metrics.latency, true)
	s.clsTarget = s.newClass("target", prioInteractive, &s.metrics.latency, true)
	s.clsBatch = s.newClass("batch", prioBatch, &s.metrics.latency, true)
	s.clsStream = s.newClass("stream", prioBatch, nil, false)
	s.clsFeed = s.newClass("feed", prioFeed, &s.metrics.latency, true)
	s.clsVerdicts = s.newClass("verdicts", prioBatch, &s.metrics.latency, true)
	s.clsModels = s.newClass("models", prioOps, nil, false)
	s.clsOps = s.newClass("ops", prioOps, nil, false)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v2/score", s.instrument(s.post(s.handleScoreV2), s.clsScore))
	s.mux.HandleFunc("/v2/score/batch", s.instrument(s.post(s.handleScoreBatchV2), s.clsBatch))
	s.mux.HandleFunc("/v2/target", s.instrument(s.post(s.handleTargetV2), s.clsTarget))
	s.mux.HandleFunc("/v2/score/stream", s.instrument(s.post(s.handleScoreStream), s.clsStream))
	s.mux.HandleFunc("/v1/score", s.instrument(s.post(s.handleScore), s.clsScore))
	s.mux.HandleFunc("/v1/score/batch", s.instrument(s.post(s.handleScoreBatch), s.clsBatch))
	s.mux.HandleFunc("/v1/target", s.instrument(s.post(s.handleTarget), s.clsTarget))
	s.mux.HandleFunc("/v2/models", s.instrument(s.handleModels, s.clsModels))
	s.mux.HandleFunc("/v2/models/promote", s.instrument(s.post(s.handlePromote), s.clsModels))
	s.mux.HandleFunc("/v1/feed", s.instrument(s.post(s.handleFeed), s.clsFeed))
	s.mux.HandleFunc("/v1/verdicts", s.instrument(s.get(s.handleVerdicts), s.clsVerdicts))
	s.mux.HandleFunc("/v2/verdicts", s.instrument(s.get(s.handleVerdictsV2), s.clsVerdicts))
	s.mux.HandleFunc("/healthz", s.instrument(s.get(s.handleHealthz), s.clsOps))
	s.mux.HandleFunc("/metrics", s.instrument(s.get(s.handleMetrics), s.clsOps))
	s.mux.HandleFunc("/debug/traces", s.instrument(s.get(s.handleDebugTraces), s.clsOps))
	s.mux.HandleFunc("/debug/slo", s.instrument(s.get(s.handleDebugSLO), s.clsOps))
	s.mux.HandleFunc("/debug/events", s.instrument(s.get(s.handleDebugEvents), s.clsOps))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// fallbackSource serves the primary source's detector, falling back to
// a fixed one while the primary has none (a registry still being
// bootstrapped).
type fallbackSource struct {
	primary  core.DetectorSource
	fallback *core.Detector
}

func (f fallbackSource) Current() *core.Detector {
	if d := f.primary.Current(); d != nil {
		return d
	}
	return f.fallback
}

// errNoModel is the 503 a scoring request gets from a hot-swappable
// source that has no champion yet.
var errNoModel = errors.New("no model available: the registry has no champion")

// pipeline resolves the detector for one request — exactly once, so a
// champion hot-swap lands between requests, never inside one.
func (s *Server) pipeline() (*core.Pipeline, error) {
	det := s.source.Current()
	if det == nil {
		return nil, errNoModel
	}
	return &core.Pipeline{Detector: det, Identifier: s.identifier}, nil
}

// Metrics returns a snapshot of the serving counters, including feed,
// store and model-lifecycle stats when those subsystems are wired in.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.metrics.Snapshot(s.cacheLen())
	if s.cache != nil {
		snap.CacheEvictions = s.cache.Evictions()
	}
	if det := s.source.Current(); det != nil {
		snap.ModelVersion = det.Version()
	}
	if s.feed != nil {
		fs := s.feed.Stats()
		snap.Feed = &fs
	}
	if s.feedSources != nil {
		snap.FeedSources = s.feedSources.Stats()
	}
	if s.store != nil {
		ss := s.store.Stats()
		snap.Store = &ss
	}
	if s.lifecycle != nil {
		ls := s.lifecycle.Status()
		snap.Lifecycle = &ls
	}
	if s.coal != nil {
		cs := s.coal.Snapshot()
		snap.Coalesce = &cs
	}
	if s.tracer != nil {
		ts := s.tracer.Summary()
		snap.Tracing = &ts
	}
	snap.Endpoints = make(map[string]EndpointMetrics, len(s.classes))
	for _, c := range s.classes {
		em := EndpointMetrics{Priority: c.priority, Shed: c.shed.Load()}
		if c.window != nil {
			em.Windows = c.window.Summaries()
		}
		snap.Endpoints[c.name] = em
	}
	snap.Shed = ShedMetrics{
		Total:  s.metrics.shedTotal.Load(),
		Queued: s.metrics.shedQueued.Load(),
		Level:  s.slo.ShedLevel(),
	}
	if s.slo != nil {
		st := s.slo.Status()
		snap.SLO = &st
	}
	return snap
}

func (s *Server) cacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// ---------------------------------------------------------------------
// v1 request / response documents (frozen wire format).

// PageRequest describes one page to score: either a full snapshot, or
// raw HTML plus visit metadata (converted with webpage.FromHTML).
type PageRequest struct {
	Snapshot *webpage.Snapshot `json:"snapshot,omitempty"`

	HTML             string   `json:"html,omitempty"`
	StartingURL      string   `json:"starting_url,omitempty"`
	LandingURL       string   `json:"landing_url,omitempty"`
	RedirectionChain []string `json:"redirection_chain,omitempty"`
}

// snapshot resolves the request to a Snapshot.
func (p *PageRequest) snapshot() (*webpage.Snapshot, error) {
	if p.Snapshot != nil {
		if p.HTML != "" || p.StartingURL != "" || p.LandingURL != "" || len(p.RedirectionChain) > 0 {
			// The URLs would be silently ignored in favor of the
			// snapshot's embedded ones; reject rather than mislead.
			return nil, errors.New("snapshot requests must not also set html, starting_url, landing_url or redirection_chain")
		}
		if p.Snapshot.StartingURL == "" && p.Snapshot.LandingURL == "" {
			return nil, errors.New("snapshot missing starting_url and landing_url")
		}
		return p.Snapshot, nil
	}
	if p.HTML == "" {
		return nil, errors.New("missing snapshot or html")
	}
	start := p.StartingURL
	land := p.LandingURL
	if land == "" {
		land = start
	}
	if start == "" {
		start = land
	}
	if land == "" {
		return nil, errors.New("html requests need starting_url or landing_url")
	}
	snap := webpage.FromHTML(start, land, p.RedirectionChain, p.HTML)
	return &snap, nil
}

// ScoreResponse is the v1 verdict for one page.
type ScoreResponse struct {
	core.Outcome
	// LandingURL identifies the scored page.
	LandingURL string `json:"landing_url,omitempty"`
	// Cached reports whether the verdict was reused — from the verdict
	// cache, or from an identical landing URL earlier in the same batch
	// — rather than freshly computed.
	Cached bool `json:"cached"`
}

// BatchRequest scores many pages in one call.
type BatchRequest struct {
	Pages []PageRequest `json:"pages"`
	// Workers optionally lowers the fan-out for this request; it is
	// capped by the server's worker limit.
	Workers int `json:"workers,omitempty"`
}

// BatchResponse carries per-page verdicts in request order.
type BatchResponse struct {
	Results   []ScoreResponse `json:"results"`
	Count     int             `json:"count"`
	ElapsedUS int64           `json:"elapsed_us"`
}

// TargetResponse is the v1 target identification result for one page.
type TargetResponse struct {
	LandingURL string        `json:"landing_url,omitempty"`
	Result     target.Result `json:"result"`
}

// FeedRequest enqueues URLs into the ingestion pipeline.
type FeedRequest struct {
	URLs []string `json:"urls"`
}

// FeedResult is the per-URL acceptance outcome.
type FeedResult struct {
	URL      string `json:"url"`
	Accepted bool   `json:"accepted"`
	// Reason explains a rejection: "queue_full", "duplicate",
	// "invalid_url" or "closed".
	Reason string `json:"reason,omitempty"`
}

// FeedResponse reports per-URL acceptance in request order. Partial
// acceptance is normal under backpressure; the response is still 200.
type FeedResponse struct {
	Results    []FeedResult `json:"results"`
	Accepted   int          `json:"accepted"`
	Rejected   int          `json:"rejected"`
	QueueDepth int          `json:"queue_depth"`
}

// VerdictsResponse carries verdict-store records, newest first. It is
// the frozen /v1/verdicts document: an empty result renders records as
// null, exactly as v1 always has.
type VerdictsResponse struct {
	Records []store.Record `json:"records"`
	Count   int            `json:"count"`
}

// VerdictsPageResponse is one /v2/verdicts page, newest first. When
// next_cursor is present the result was truncated at the limit; pass
// it back verbatim as ?cursor= to resume the scan exactly after the
// last record — the cursor stays valid across appends and compactions.
type VerdictsPageResponse struct {
	Records    []store.Record `json:"records"`
	Count      int            `json:"count"`
	NextCursor string         `json:"next_cursor,omitempty"`
}

// HealthResponse is the /healthz document.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Threshold     float64 `json:"threshold"`
	// ModelVersion is the serving champion's registry version ("" for a
	// detector loaded outside a registry).
	ModelVersion string `json:"model_version,omitempty"`
	// ModelHash is the champion artifact's sha256 (registry-backed
	// servers only) — together with ModelVersion it pins exactly which
	// model bytes answer this instance's traffic.
	ModelHash string `json:"model_hash,omitempty"`
	// GoVersion and VCSRevision identify the running build, read once
	// from debug.ReadBuildInfo (VCSRevision is empty when the binary
	// was built outside a VCS checkout, e.g. in tests).
	GoVersion    string `json:"go_version"`
	VCSRevision  string `json:"vcs_revision,omitempty"`
	Workers      int    `json:"workers"`
	CacheEnabled bool   `json:"cache_enabled"`
	FeedEnabled  bool   `json:"feed_enabled"`
	StoreEnabled bool   `json:"store_enabled"`
	// SLOState is the error-budget engine's worst objective state
	// ("ok", "warn" or "page"; absent without an SLO engine). A paging
	// server is still alive — liveness probes must not kill it — but
	// the field lets a smarter health check or operator see burn at a
	// glance without a second request.
	SLOState string `json:"slo_state,omitempty"`
	// ShedLevel is the active admission shed level (0 = admitting
	// everything; present only while shedding).
	ShedLevel int `json:"shed_level,omitempty"`
}

// buildGoVersion / buildVCSRevision are read once at startup; every
// /healthz response reuses them.
var buildGoVersion, buildVCSRevision = readBuildInfo()

func readBuildInfo() (goVersion, revision string) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return runtime.Version(), ""
	}
	goVersion = info.GoVersion
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return goVersion, revision
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------
// The shared scoring path. v1 and v2 handlers are adapters over these.

// boundedCtx runs fn under the server-wide CPU-work bound, giving up
// without running it when ctx is done first — a disconnected client
// waiting for a slot must not consume one. Every CPU-heavy stage — HTML
// parsing, cache-key hashing, pipeline scoring, target identification —
// goes through it, so a burst of concurrent requests cannot run more
// than Workers heavy executions at once. The deferred release survives
// a panic in fn.
//
// pri is the caller's shed priority (admission.go). After a slot is
// won, admission is re-checked: under overload, time queued for a slot
// is exactly what busts the latency SLO, so work admitted before the
// burn crossed the threshold is shed here instead of completing late
// and poisoning the accepted-request percentiles. The errShed return
// maps to a 503 via failCtx. pri is threaded as an explicit parameter
// — not a context value — to keep the warm path allocation-free.
func (s *Server) boundedCtx(ctx context.Context, pri int, fn func()) error {
	select {
	case s.scoreSem <- struct{}{}:
	case <-ctx.Done():
		return context.Cause(ctx)
	}
	defer func() { <-s.scoreSem }()
	if pri > 0 && pri <= s.slo.ShedLevel() {
		return errShed
	}
	fn()
	return nil
}

// scoreSnap scores one snapshot through the verdict cache and the
// scoring coalescer with the given request options. It returns the
// verdict, whether it was served from cache, and a context error
// (cancellation or deadline) when scoring was cut short. cc governs
// both cache layers: no-memo skips reads and writes, refresh skips
// reads but overwrites. When prov is non-nil it receives the
// coalescer's per-stage provenance (zero on a verdict-cache hit or
// with coalescing disabled).
//
// Explain requests always recompute: the cache stores bare outcomes,
// not per-feature evidence, and explanation cost is exactly what the
// client opted into. They touch no hit/miss counters (they can never
// hit, and counting them as misses would depress a rate no cache
// sizing could fix) but still refresh the cached outcome.
func (s *Server) scoreSnap(ctx context.Context, pri int, pipe *core.Pipeline, snap *webpage.Snapshot, req core.ScoreRequest, cc coalesce.CacheControl, prov *core.MemoProvenance) (core.Verdict, bool, error) {
	version := pipe.Detector.Version()
	// The key is built into a pooled buffer and looked up as bytes; a
	// string is only materialized when an outcome is actually stored, so
	// the dominant outcomes of this function — a cache hit, or a miss on
	// an uncacheable page — never put the key on the heap.
	var keyBuf *[]byte
	if s.cache != nil && cc != coalesce.CacheNoMemo {
		keyBuf = keyPool.Get().(*[]byte)
		if err := s.boundedCtx(ctx, pri, func() { *keyBuf = appendCacheKey((*keyBuf)[:0], snap) }); err != nil {
			putKeyBuf(keyBuf)
			return core.Verdict{}, false, err
		}
		if len(*keyBuf) != 0 && !req.Explains() && cc == coalesce.CacheDefault {
			// Hits are version-gated: after a champion hot-swap, entries
			// scored by the predecessor read as misses and the page is
			// re-scored by the model actually serving.
			if out, fp, ok := s.cache.GetBytes(*keyBuf, version); ok {
				putKeyBuf(keyBuf)
				s.metrics.cacheHits.Add(1)
				v := core.MakeVerdict(out, pipe.Detector.Threshold())
				v.ModelVersion = version
				v.ContentFingerprint = fp
				return v, true, nil
			}
			s.metrics.cacheMiss.Add(1)
		}
	}
	var v core.Verdict
	var err error
	if berr := s.boundedCtx(ctx, pri, func() { v, err = s.coal.Do(ctx, pipe, req, cc, prov) }); berr != nil {
		err = berr
	}
	if err != nil {
		if keyBuf != nil {
			putKeyBuf(keyBuf)
		}
		return core.Verdict{}, false, err
	}
	s.recordOutcome(v.Outcome)
	// A skip_target verdict is partial (no FP-removal pass); caching it
	// would hand later full requests a weaker outcome than they asked
	// for. Such requests may read the cache but never define it.
	if keyBuf != nil {
		if !req.SkipsTarget() {
			s.cache.Put(string(*keyBuf), v.Outcome, version, v.ContentFingerprint)
		}
		putKeyBuf(keyBuf)
	}
	return v, false, nil
}

// failCtx converts a scoring context error into a response: an expired
// per-request deadline is a 504 the client can act on; queued work shed
// by the admission controller is a 503 with Retry-After; a cancelled
// context means the client is gone, so nothing is written and the
// cancellation is only counted.
func (s *Server) failCtx(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.fail(w, http.StatusGatewayTimeout, errors.New("scoring deadline exceeded"))
		return
	}
	if errors.Is(err, errShed) {
		s.shedQueued(w)
		return
	}
	s.metrics.cancelled.Add(1)
}

// ---------------------------------------------------------------------
// v1 handlers (adapters over the v2 core).

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req PageRequest
	if !s.decode(w, r, &req) {
		return
	}
	pipe, err := s.pipeline()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	ctx := r.Context()
	// Snapshot resolution parses HTML; like every CPU-heavy stage it
	// runs under the server-wide bound.
	var snap *webpage.Snapshot
	if berr := s.boundedCtx(ctx, prioInteractive, func() { snap, err = req.snapshot() }); berr != nil {
		s.failCtx(w, berr)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	v, cached, err := s.scoreSnap(ctx, prioInteractive, pipe, snap, core.NewScoreRequest(snap, s.v1Opts...), coalesce.CacheDefault, nil)
	if err != nil {
		s.failCtx(w, err)
		return
	}
	s.reply(w, http.StatusOK, ScoreResponse{Outcome: v.Outcome, LandingURL: snap.LandingURL, Cached: cached})
}

// analyzeBatch fans snapshots out over the worker pool; every execution
// still passes through the server-wide scoring bound and observes ctx
// between items. It returns the outcomes, or the first context error
// once the batch was cut short. The whole batch scores on one pipe — a
// hot-swap mid-batch must not split a batch across models.
//
// Items score through the coalescer, so the concurrent fan-out below
// folds into node-major kernel passes (and shares the memo tables with
// every other scoring path) while the v1 wire format stays byte for
// byte what the per-request path produced — outcomes are bit-identical
// by construction, pinned by the goldens.
func (s *Server) analyzeBatch(ctx context.Context, pri int, pipe *core.Pipeline, snaps []*webpage.Snapshot, workers int) ([]core.Outcome, error) {
	out := make([]core.Outcome, len(snaps))
	errs := make([]error, len(snaps))
	poolErr := pool.ForEachIndexCtx(ctx, len(snaps), workers, func(i int) {
		if berr := s.boundedCtx(ctx, pri, func() {
			v, err := s.coal.Do(ctx, pipe, core.NewScoreRequest(snaps[i], s.v1Opts...), coalesce.CacheDefault, nil)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = v.Outcome
		}); berr != nil {
			errs[i] = berr
		}
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, poolErr
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Pages) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Pages) > s.maxBatch {
		s.metrics.batchRejected.Add(1)
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Pages), s.maxBatch))
		return
	}
	pipe, err := s.pipeline()
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	version := pipe.Detector.Version()
	ctx := r.Context()
	// One fan-out width for the whole request: the client's workers
	// field caps every stage, not just scoring.
	workers := s.workers
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}

	// Snapshot resolution parses HTML and is the dominant pre-scoring
	// cost of a raw-HTML batch; doing it serially would bound batch
	// throughput no matter how many workers score. Fan it out too.
	snaps := make([]*webpage.Snapshot, len(req.Pages))
	pageErrs := make([]error, len(req.Pages))
	if err := pool.ForEachIndexCtx(ctx, len(req.Pages), workers, func(i int) {
		if berr := s.boundedCtx(ctx, prioBatch, func() { snaps[i], pageErrs[i] = req.Pages[i].snapshot() }); berr != nil {
			pageErrs[i] = berr
		}
	}); err != nil {
		s.failCtx(w, err)
		return
	}
	for i, err := range pageErrs {
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.failCtx(w, err)
				return
			}
			s.fail(w, http.StatusBadRequest, fmt.Errorf("page %d: %w", i, err))
			return
		}
	}

	results := make([]ScoreResponse, len(snaps))
	// Cache keys are only needed — and only computed — when caching is
	// enabled; with it disabled there is nothing to look up or dedupe.
	var keys []string
	if s.cache != nil {
		keys = make([]string, len(snaps))
		if err := pool.ForEachIndexCtx(ctx, len(snaps), workers, func(i int) {
			_ = s.boundedCtx(ctx, prioBatch, func() { keys[i] = cacheKey(snaps[i]) })
		}); err != nil {
			s.failCtx(w, err)
			return
		}
	}
	// Serve cache hits first, then fan the misses out over the worker
	// pool under the server-wide scoring bound. Within-batch duplicates
	// count as cache hits below, so cache_hit_rate matches the reuse
	// the client observes in the cached response flags.
	var missIdx []int
	if s.cache != nil {
		for i, snap := range snaps {
			if out, _, ok := s.cache.Get(keys[i], version); ok {
				s.metrics.cacheHits.Add(1)
				results[i] = ScoreResponse{Outcome: out, LandingURL: snap.LandingURL, Cached: true}
			} else {
				missIdx = append(missIdx, i)
			}
		}
	} else {
		missIdx = make([]int, len(snaps))
		for i := range snaps {
			missIdx[i] = i
		}
	}
	if len(missIdx) > 0 {
		// Dedupe misses sharing a cache key — identical pages, since
		// the key fingerprints the content: campaigns funnel many lures
		// to one landing page, and scoring it once per batch is the
		// same verdict-reuse assumption the cache makes. It therefore
		// only applies while caching is enabled; with the cache
		// disabled every page scores individually (uniq is missIdx
		// itself, no bookkeeping), and uncacheable pages always do.
		uniq := missIdx
		var resultAt []int // per missIdx entry: position in uniq; nil = identity
		if s.cache != nil {
			firstAt := make(map[string]int, len(missIdx))
			resultAt = make([]int, 0, len(missIdx))
			uniq = make([]int, 0, len(missIdx))
			for _, i := range missIdx {
				// Uncacheable pages (empty key) touch no counters: they
				// can never hit, and counting them as misses would
				// depress a hit rate no cache sizing could fix.
				if key := keys[i]; key != "" {
					if j, ok := firstAt[key]; ok {
						resultAt = append(resultAt, j)
						s.metrics.cacheHits.Add(1)
						continue
					}
					firstAt[key] = len(uniq)
					s.metrics.cacheMiss.Add(1)
				}
				resultAt = append(resultAt, len(uniq))
				uniq = append(uniq, i)
			}
		}
		missSnaps := make([]*webpage.Snapshot, len(uniq))
		for j, i := range uniq {
			missSnaps[j] = snaps[i]
		}
		outcomes, err := s.analyzeBatch(ctx, prioBatch, pipe, missSnaps, workers)
		if err != nil {
			// v1 has no per-item error slot: a deadline anywhere fails
			// the batch (504), a disconnect just stops the work.
			s.failCtx(w, err)
			return
		}
		for _, out := range outcomes {
			s.recordOutcome(out)
		}
		if s.cache != nil {
			for j, i := range uniq {
				// The v1 batch path caches outcomes without a fingerprint:
				// its wire format never surfaces one, and a later v2 hit on
				// the same key simply responds without an ETag.
				s.cache.Put(keys[i], outcomes[j], version, "")
			}
		}
		for k, i := range missIdx {
			j := k
			if resultAt != nil {
				j = resultAt[k]
			}
			results[i] = ScoreResponse{
				Outcome:    outcomes[j],
				LandingURL: snaps[i].LandingURL,
				// A within-batch duplicate reused an identical page's
				// verdict and reports so, like a verdict-cache hit.
				Cached: uniq[j] != i,
			}
		}
	}
	s.metrics.scoreBatch.Observe(time.Since(t0))
	s.reply(w, http.StatusOK, BatchResponse{
		Results:   results,
		Count:     len(results),
		ElapsedUS: time.Since(t0).Microseconds(),
	})
}

func (s *Server) handleTarget(w http.ResponseWriter, r *http.Request) {
	var req PageRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx := r.Context()
	// Resolution and identification are both pipeline-weight work; they
	// respect the same server-wide bound as scoring.
	var snap *webpage.Snapshot
	var err error
	if berr := s.boundedCtx(ctx, prioInteractive, func() { snap, err = req.snapshot() }); berr != nil {
		s.failCtx(w, berr)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.identify(ctx, prioInteractive, snap, s.defaultDeadline)
	if err != nil {
		s.failCtx(w, err)
		return
	}
	s.reply(w, http.StatusOK, TargetResponse{LandingURL: snap.LandingURL, Result: res})
}

// identify runs target identification under the server-wide bound with
// an optional deadline, observing ctx between the analysis and
// identification stages.
func (s *Server) identify(ctx context.Context, pri int, snap *webpage.Snapshot, deadline time.Duration) (target.Result, error) {
	var res target.Result
	var err error
	if berr := s.boundedCtx(ctx, pri, func() {
		// The deadline budgets identification work, not time queued for
		// a worker slot, so it starts only once the slot is held — the
		// same semantics the score path gets from AnalyzeCtx applying
		// WithDeadline after boundedCtx.
		ictx := ctx
		if deadline > 0 {
			var cancel context.CancelFunc
			ictx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		a := webpage.Analyze(snap)
		if ictx.Err() != nil {
			err = context.Cause(ictx)
			return
		}
		res = s.identifier.Identify(a)
	}); berr != nil {
		return target.Result{}, berr
	}
	return res, err
}

// handleFeed enqueues URLs. Each URL is accepted or rejected
// independently; rejection reasons surface the scheduler's backpressure
// to the feed producer so it can slow down or retry later.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	if s.feed == nil {
		s.fail(w, http.StatusServiceUnavailable, errors.New("feed ingestion is not configured on this server"))
		return
	}
	var req FeedRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.URLs) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty urls list"))
		return
	}
	if len(req.URLs) > s.maxBatch {
		s.metrics.batchRejected.Add(1)
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("feed of %d URLs exceeds limit %d", len(req.URLs), s.maxBatch))
		return
	}
	resp := FeedResponse{Results: make([]FeedResult, len(req.URLs))}
	for i, u := range req.URLs {
		res := FeedResult{URL: u}
		if err := s.feed.Enqueue(u); err != nil {
			res.Reason = feedReason(err)
			resp.Rejected++
		} else {
			res.Accepted = true
			resp.Accepted++
		}
		resp.Results[i] = res
	}
	resp.QueueDepth = s.feed.Stats().Depth
	s.reply(w, http.StatusOK, resp)
}

// feedReason maps scheduler rejections to stable wire strings.
func feedReason(err error) string {
	switch {
	case errors.Is(err, feed.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, feed.ErrDuplicate):
		return "duplicate"
	case errors.Is(err, feed.ErrInvalidURL):
		return "invalid_url"
	case errors.Is(err, feed.ErrClosed):
		return "closed"
	default:
		return err.Error()
	}
}

// parseVerdictQuery builds a store.Query from request parameters. The
// v1 and v2 verdict endpoints share the core filters (target, url,
// since, phish_only, limit); the v2 surface adds model_version,
// source, until and the pagination cursor.
func parseVerdictQuery(r *http.Request, v2 bool) (store.Query, error) {
	p := r.URL.Query()
	q := store.Query{
		Target: p.Get("target"),
		URL:    p.Get("url"),
		Limit:  DefaultVerdictsLimit,
	}
	if v := p.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return q, fmt.Errorf("invalid since %q: want RFC3339", v)
		}
		q.Since = t
	}
	if v := p.Get("phish_only"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return q, fmt.Errorf("invalid phish_only %q", v)
		}
		q.PhishOnly = b
	}
	if v := p.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > MaxVerdictsLimit {
			return q, fmt.Errorf("invalid limit %q: want 1..%d", v, MaxVerdictsLimit)
		}
		q.Limit = n
	}
	if !v2 {
		return q, nil
	}
	q.ModelVersion = p.Get("model_version")
	q.Source = p.Get("source")
	q.Cursor = p.Get("cursor")
	if v := p.Get("until"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return q, fmt.Errorf("invalid until %q: want RFC3339", v)
		}
		q.Until = t
	}
	return q, nil
}

// scanFail maps a store.Backend.Scan error onto the HTTP surface.
func (s *Server) scanFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrBadCursor):
		s.fail(w, http.StatusBadRequest, err)
	case errors.Is(err, store.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

// handleVerdicts queries the verdict store with the frozen v1 wire
// format — a thin adapter over the same Scan path /v2/verdicts uses,
// minus pagination:
//
//	GET /v1/verdicts?target=brand.com&since=2026-07-29T00:00:00Z
//	GET /v1/verdicts?url=http://lure.test/&phish_only=true&limit=50
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, http.StatusServiceUnavailable, errors.New("verdict store is not configured on this server"))
		return
	}
	q, err := parseVerdictQuery(r, false)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	page, err := s.store.Scan(r.Context(), q)
	if err != nil {
		s.scanFail(w, err)
		return
	}
	recs := page.Records
	if len(recs) == 0 {
		recs = nil // v1 renders an empty result as null; pinned by goldens
	}
	s.reply(w, http.StatusOK, VerdictsResponse{Records: recs, Count: len(recs)})
}

// handleVerdictsV2 queries the verdict store with cursor pagination:
//
//	GET /v2/verdicts?target=brand.com&limit=50
//	GET /v2/verdicts?model_version=v0002&since=2026-07-01T00:00:00Z&until=2026-08-01T00:00:00Z
//	GET /v2/verdicts?cursor=<next_cursor from the previous page>
func (s *Server) handleVerdictsV2(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.fail(w, http.StatusServiceUnavailable, errors.New("verdict store is not configured on this server"))
		return
	}
	q, err := parseVerdictQuery(r, true)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	page, err := s.store.Scan(r.Context(), q)
	if err != nil {
		s.scanFail(w, err)
		return
	}
	recs := page.Records
	if recs == nil {
		recs = []store.Record{}
	}
	s.reply(w, http.StatusOK, VerdictsPageResponse{
		Records:    recs,
		Count:      len(recs),
		NextCursor: page.NextCursor,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		GoVersion:     buildGoVersion,
		VCSRevision:   buildVCSRevision,
		Workers:       s.workers,
		CacheEnabled:  s.cache != nil,
		FeedEnabled:   s.feed != nil,
		StoreEnabled:  s.store != nil,
	}
	if det := s.source.Current(); det != nil {
		resp.Threshold = det.Threshold()
		resp.ModelVersion = det.Version()
		if s.registry != nil {
			if m, ok := s.registry.Champion(); ok {
				resp.ModelHash = m.Manifest.Hash
			}
		}
	} else {
		// Alive but unable to score: a registry-backed server waiting for
		// its first champion. Liveness probes should not kill it, but the
		// status string tells operators why scoring answers 503.
		resp.Status = "no_model"
	}
	if s.slo != nil {
		resp.SLOState = s.slo.State().String()
		resp.ShedLevel = s.slo.ShedLevel()
	}
	s.reply(w, http.StatusOK, resp)
}

// handleMetrics serves the metrics snapshot. JSON is the frozen default
// (pinned by goldens); ?format=prometheus switches to the text
// exposition format for scrapers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.reply(w, http.StatusOK, s.Metrics())
	case "prometheus":
		s.writePrometheus(w)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or prometheus)", format))
	}
}

// handleDebugTraces serves the tracer's retained traces: the recent
// ring, the slow/error exemplar reservoir and the per-stage summaries.
// Without a tracer it answers an empty document rather than 404, so
// dashboards can poll unconditionally.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, s.tracer.Snapshot())
}

// handleDebugSLO serves the error-budget engine's full status: per-
// objective state, fast/slow burn rates, budget remaining and the
// active shed level. Without an engine it answers the empty "ok"
// document, so dashboards (kptop) can poll unconditionally.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, s.slo.Status())
}

// eventsResponse is the /debug/events document: the retained ring of
// operational events, newest first, plus the all-time count (total >
// len(events) means older events were evicted).
type eventsResponse struct {
	Events []obs.Event `json:"events"`
	Total  uint64      `json:"total"`
}

// handleDebugEvents serves the operational event journal: SLO
// transitions, shed-level changes and whatever else was wired to the
// journal (drift flags, promotions, compactions). Without a journal it
// answers an empty document rather than 404.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	evs := s.journal.Events()
	if evs == nil {
		evs = []obs.Event{}
	}
	s.reply(w, http.StatusOK, eventsResponse{Events: evs, Total: s.journal.Total()})
}

// ---------------------------------------------------------------------
// Plumbing.

func (s *Server) recordOutcome(out core.Outcome) {
	s.metrics.scored.Add(1)
	if out.FinalPhish {
		s.metrics.phish.Add(1)
	}
}

// decode parses the JSON body into v, replying with 400 on malformed
// JSON and 413 on bodies over the size limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.maxBody))
			return false
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	// One JSON document per request: trailing content means a garbled
	// or concatenated body that would otherwise be silently truncated.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.fail(w, http.StatusBadRequest, errors.New("decoding request: trailing data after JSON document"))
		return false
	}
	return true
}

// replyPool recycles response-encoding buffers. Marshaling into a
// pooled buffer first (instead of streaming into the ResponseWriter)
// reuses the encoder's working memory across requests and lets the
// response carry a Content-Length.
var replyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledReply caps the buffer capacity returned to replyPool: one
// giant batch response must not pin megabytes in the pool forever.
const maxPooledReply = 1 << 20

func (s *Server) reply(w http.ResponseWriter, status int, v any) {
	buf := replyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Nothing was written yet, so the failure can still be reported
		// as a real error status (pre-pool encoding failed after the
		// header and could only be counted).
		s.metrics.errors.Add(1)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		if buf.Cap() <= maxPooledReply {
			replyPool.Put(buf)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Headers are gone; nothing to do but count it.
		s.metrics.errors.Add(1)
	}
	if buf.Cap() <= maxPooledReply {
		replyPool.Put(buf)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.metrics.errors.Add(1)
	s.reply(w, status, errorResponse{Error: err.Error()})
}

// statusRecorder captures the response status so instrumentation can
// tell successful work apart from cheap rejections. The shed mark set
// by writeShed keeps deliberate load-shedding 503s out of SLO
// observation — a controller whose own rejections burned the
// availability budget would never recover.
type statusRecorder struct {
	http.ResponseWriter
	status int
	shed   bool
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the underlying writer so the streaming endpoint's
// per-item flush survives the instrumentation wrapper — embedding only
// the ResponseWriter interface would otherwise hide the real writer's
// Flusher from type assertions.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// slowLogSample is the slow-request log sampling interval: the first
// slow request and every slowLogSample-th after it are logged.
const slowLogSample = 8

// instrument wraps a handler with request counting and, when the class
// carries a histogram, latency capture into it. Only successful
// responses are observed: microsecond-cheap 4xx rejections would
// otherwise drag the percentiles operators alert on toward zero.
//
// It is also the admission boundary: a request whose class fails the
// shed check is rejected here with a 503 before any work, and the SLO
// seam: completed requests (except shed ones and vanished clients)
// feed the error-budget engine under the class's endpoint name.
//
// It is also the tracing seam: with a tracer configured, every request
// gets a trace attached to its context (rooted in the caller's
// traceparent header when one is sent), the response echoes the
// server's traceparent, 5xx responses mark the trace failed, and
// requests past the slow threshold are logged — sampled, with their
// trace id, so an operator can jump from a log line straight to the
// retained trace in /debug/traces.
func (s *Server) instrument(h http.HandlerFunc, cls *endpointClass) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.metrics.requests.Add(1)
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if !s.admit(cls) {
			s.shedClass(rec, cls)
			return
		}
		ctx, tr := s.tracer.StartRequest(r.Context(), r.URL.Path, r.Header.Get("traceparent"))
		if tr != nil {
			rec.Header().Set("Traceparent", tr.Traceparent())
			r = r.WithContext(ctx)
		}
		h(rec, r)
		dur := time.Since(t0)
		if tr != nil {
			if rec.status >= 500 {
				tr.SetError()
			}
			// The slow log reads the trace before Finish returns it to
			// the pool.
			if slow := s.tracer.SlowThreshold(); slow > 0 && dur >= slow {
				if n := s.slowSeen.Add(1); n == 1 || n%slowLogSample == 0 {
					s.logger.Warn("slow request",
						"path", r.URL.Path,
						"status", rec.status,
						"dur_ms", dur.Milliseconds(),
						"trace_id", tr.TraceID(),
						"sampled_1_in", slowLogSample)
				}
			}
			s.tracer.Finish(tr)
		}
		// Cancelled requests wrote nothing (status stays 200) but their
		// elapsed time is time-until-the-server-noticed, not a service
		// latency — exclude them like error responses.
		if rec.status < 400 && r.Context().Err() == nil {
			if cls.hist != nil {
				cls.hist.Observe(dur)
			}
			cls.window.Observe(dur)
		}
		// Feed the error-budget engine: every completed response is an
		// SLI event — good, or bad (5xx, or over the latency target; the
		// engine decides). Shed 503s and vanished clients are excluded;
		// see writeShed for why sheds must not burn the budget.
		if !rec.shed && r.Context().Err() == nil {
			s.slo.Observe(cls.name, dur, rec.status >= 500)
		}
	}
}

// post restricts a handler to POST requests.
func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return s.allowMethod(http.MethodPost, h)
}

// get restricts a handler to GET (and HEAD) requests.
func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return s.allowMethod(http.MethodGet, h)
}

func (s *Server) allowMethod(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method && !(method == http.MethodGet && r.Method == http.MethodHead) {
			w.Header().Set("Allow", method)
			s.fail(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
			return
		}
		h(w, r)
	}
}
