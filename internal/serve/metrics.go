package serve

import (
	"sync/atomic"
	"time"

	"knowphish/internal/drift"
	"knowphish/internal/feed"
	"knowphish/internal/store"
)

// latencyBuckets is the number of exponential histogram buckets. Bucket
// i covers latencies in [2^i, 2^(i+1)) microseconds; the last bucket is
// open-ended, reaching past one minute — far beyond any sane request.
const latencyBuckets = 26

// latencyHist is a lock-free exponential histogram of request latencies.
// Percentiles read from bucket counts are approximate (within a factor
// of two, the bucket width), which is what operational dashboards need.
type latencyHist struct {
	buckets [latencyBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := 0
	for v := us; v > 1 && b < latencyBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// percentile returns the upper bound (µs) of the bucket containing the
// p-th percentile observation, 0 when empty. p in [0, 100].
func (h *latencyHist) percentile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for b := 0; b < latencyBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen > rank {
			return int64(1) << uint(b+1)
		}
	}
	return int64(1) << latencyBuckets
}

func (h *latencyHist) mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sumUS.Load() / n
}

// Metrics aggregates the serving counters exposed at /metrics. All
// fields are updated atomically; reading while serving is safe.
type Metrics struct {
	start time.Time

	requests      atomic.Int64 // all HTTP requests
	scored        atomic.Int64 // pages scored (batch items counted singly)
	phish         atomic.Int64 // pages with a final phishing verdict
	errors        atomic.Int64 // 4xx/5xx responses
	cacheHits     atomic.Int64
	cacheMiss     atomic.Int64
	inFlight      atomic.Int64
	batchRejected atomic.Int64 // batch/stream/feed requests over the item limit (413)
	cancelled     atomic.Int64 // requests cut short by client disconnect
	streamed      atomic.Int64 // stream result lines delivered
	latency       latencyHist  // scoring-endpoint (POST /v1|v2/*) request latency
	scoreBatch    latencyHist  // per-batch latency
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	PagesScored   int64   `json:"pages_scored"`
	PhishVerdicts int64   `json:"phish_verdicts"`
	Errors        int64   `json:"errors"`
	InFlight      int64   `json:"in_flight"`

	// BatchRejected counts batch, stream and feed requests refused with
	// 413 for exceeding the configured item limit — the operator signal
	// that clients need a bigger MaxBatch or smaller requests.
	BatchRejected int64 `json:"batch_rejected"`
	// Cancelled counts requests whose client disconnected (or whose
	// stream was cut) before the verdict was delivered; their remaining
	// scoring work was abandoned.
	Cancelled int64 `json:"cancelled"`
	// StreamedItems counts result lines delivered on /v2/score/stream.
	StreamedItems int64 `json:"streamed_items"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions int64   `json:"cache_evictions"`

	// ModelVersion is the registry version currently serving traffic
	// ("" for a detector loaded outside a registry). During a
	// champion/challenger swap it flips atomically with the swap.
	ModelVersion string `json:"model_version,omitempty"`

	// Feed and Store report the ingestion-pipeline counters (queue
	// depth, throughput, retries; record and compaction counts) when
	// those subsystems are configured.
	Feed  *feed.Stats  `json:"feed,omitempty"`
	Store *store.Stats `json:"store,omitempty"`
	// Lifecycle reports the model-lifecycle gauges (drift PSI values,
	// phish-rate shift, shadow-scoring and retrain/promotion counters)
	// when the lifecycle controller is configured.
	Lifecycle *drift.LifecycleStatus `json:"lifecycle,omitempty"`

	LatencyMeanUS int64 `json:"latency_mean_us"`
	LatencyP50US  int64 `json:"latency_p50_us"`
	LatencyP90US  int64 `json:"latency_p90_us"`
	LatencyP99US  int64 `json:"latency_p99_us"`

	BatchLatencyMeanUS int64 `json:"batch_latency_mean_us"`
	BatchLatencyP99US  int64 `json:"batch_latency_p99_us"`
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot(cacheEntries int) MetricsSnapshot {
	hits, miss := m.cacheHits.Load(), m.cacheMiss.Load()
	rate := 0.0
	if hits+miss > 0 {
		rate = float64(hits) / float64(hits+miss)
	}
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		PagesScored:   m.scored.Load(),
		PhishVerdicts: m.phish.Load(),
		Errors:        m.errors.Load(),
		InFlight:      m.inFlight.Load(),
		BatchRejected: m.batchRejected.Load(),
		Cancelled:     m.cancelled.Load(),
		StreamedItems: m.streamed.Load(),

		CacheHits:    hits,
		CacheMisses:  miss,
		CacheHitRate: rate,
		CacheEntries: cacheEntries,

		LatencyMeanUS: m.latency.mean(),
		LatencyP50US:  m.latency.percentile(50),
		LatencyP90US:  m.latency.percentile(90),
		LatencyP99US:  m.latency.percentile(99),

		BatchLatencyMeanUS: m.scoreBatch.mean(),
		BatchLatencyP99US:  m.scoreBatch.percentile(99),
	}
}
