package serve

import (
	"sync/atomic"
	"time"

	"knowphish/internal/coalesce"
	"knowphish/internal/drift"
	"knowphish/internal/feed"
	"knowphish/internal/feedsrc"
	"knowphish/internal/obs"
	"knowphish/internal/slo"
	"knowphish/internal/store"
)

// latencyHist is the serving layer's request-latency histogram — the
// shared obs exponential histogram (26 buckets, bucket i covering
// [2^i, 2^(i+1)) µs, percentiles clamped to the observed maximum so the
// open-ended last bucket never reports its theoretical 2^26 µs bound).
type latencyHist = obs.Hist

// Metrics aggregates the serving counters exposed at /metrics. All
// fields are updated atomically; reading while serving is safe.
type Metrics struct {
	start time.Time

	requests      atomic.Int64 // all HTTP requests
	scored        atomic.Int64 // pages scored (batch items counted singly)
	phish         atomic.Int64 // pages with a final phishing verdict
	errors        atomic.Int64 // 4xx/5xx responses
	cacheHits     atomic.Int64
	cacheMiss     atomic.Int64
	inFlight      atomic.Int64
	batchRejected atomic.Int64 // batch/stream/feed requests over the item limit (413)
	cancelled     atomic.Int64 // requests cut short by client disconnect
	streamed      atomic.Int64 // stream result lines delivered
	shedTotal     atomic.Int64 // requests shed by admission control (all boundaries)
	shedQueued    atomic.Int64 // of shedTotal: shed at the worker-slot boundary
	latency       latencyHist  // scoring-endpoint (POST /v1|v2/*) request latency
	scoreBatch    latencyHist  // per-batch latency
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	PagesScored   int64   `json:"pages_scored"`
	PhishVerdicts int64   `json:"phish_verdicts"`
	Errors        int64   `json:"errors"`
	InFlight      int64   `json:"in_flight"`

	// BatchRejected counts batch, stream and feed requests refused with
	// 413 for exceeding the configured item limit — the operator signal
	// that clients need a bigger MaxBatch or smaller requests.
	BatchRejected int64 `json:"batch_rejected"`
	// Cancelled counts requests whose client disconnected (or whose
	// stream was cut) before the verdict was delivered; their remaining
	// scoring work was abandoned.
	Cancelled int64 `json:"cancelled"`
	// StreamedItems counts result lines delivered on /v2/score/stream.
	StreamedItems int64 `json:"streamed_items"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions int64   `json:"cache_evictions"`

	// ModelVersion is the registry version currently serving traffic
	// ("" for a detector loaded outside a registry). During a
	// champion/challenger swap it flips atomically with the swap.
	ModelVersion string `json:"model_version,omitempty"`

	// Feed and Store report the ingestion-pipeline counters (queue
	// depth, throughput, retries; record and compaction counts) when
	// those subsystems are configured.
	Feed  *feed.Stats  `json:"feed,omitempty"`
	Store *store.Stats `json:"store,omitempty"`
	// FeedSources reports each feed connector's health (cursor, lag,
	// fetch/error counts, per-reason rejects), keyed by source name,
	// when a connector mux is configured.
	FeedSources map[string]feedsrc.SourceStats `json:"feed_sources,omitempty"`
	// Lifecycle reports the model-lifecycle gauges (drift PSI values,
	// phish-rate shift, shadow-scoring and retrain/promotion counters)
	// when the lifecycle controller is configured.
	Lifecycle *drift.LifecycleStatus `json:"lifecycle,omitempty"`
	// Coalesce reports the scoring coalescer's batching counters and
	// the hit/miss/eviction stats of the four per-stage memo tables
	// (absent when coalescing is disabled).
	Coalesce *coalesce.Stats `json:"coalesce,omitempty"`

	LatencyMeanUS int64 `json:"latency_mean_us"`
	LatencyP50US  int64 `json:"latency_p50_us"`
	LatencyP90US  int64 `json:"latency_p90_us"`
	LatencyP99US  int64 `json:"latency_p99_us"`

	BatchLatencyMeanUS int64 `json:"batch_latency_mean_us"`
	BatchLatencyP99US  int64 `json:"batch_latency_p99_us"`

	// Tracing reports the request-tracing aggregates (trace counts,
	// per-stage latency summaries, exemplar retention) when a tracer is
	// configured.
	Tracing *obs.Summary `json:"tracing,omitempty"`

	// Endpoints reports each endpoint class's shed priority, shed count
	// and windowed latency percentiles (1m/5m/1h) — the "p99 right now"
	// view kptop renders, as opposed to the since-boot percentiles
	// above.
	Endpoints map[string]EndpointMetrics `json:"endpoints,omitempty"`
	// Shed reports the admission controller's rejection counters and
	// current level (always present: zero counters are the healthy
	// baseline operators trend on).
	Shed ShedMetrics `json:"shed"`
	// SLO is the error-budget engine's status document — the same
	// document GET /debug/slo serves — when an engine is configured.
	SLO *slo.Status `json:"slo,omitempty"`
}

// EndpointMetrics is one endpoint class's entry in the metrics
// document.
type EndpointMetrics struct {
	// Priority is the class's shed priority (0 = never shed; higher =
	// shed later).
	Priority int `json:"priority"`
	// Shed counts requests rejected at this class's admission check.
	Shed int64 `json:"shed"`
	// Windows holds the rolling 1m/5m/1h latency summaries (absent for
	// ops classes, which are not latency-tracked).
	Windows []obs.WindowSummary `json:"windows,omitempty"`
}

// ShedMetrics reports the admission controller's counters.
type ShedMetrics struct {
	// Total counts all shed requests (entry checks plus worker-slot
	// re-checks).
	Total int64 `json:"total"`
	// Queued counts the subset shed at the worker-slot boundary —
	// admitted, then overtaken by rising burn while queued.
	Queued int64 `json:"queued"`
	// Level is the current shed level (0 = admitting everything).
	Level int `json:"level"`
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot(cacheEntries int) MetricsSnapshot {
	hits, miss := m.cacheHits.Load(), m.cacheMiss.Load()
	rate := 0.0
	if hits+miss > 0 {
		rate = float64(hits) / float64(hits+miss)
	}
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		PagesScored:   m.scored.Load(),
		PhishVerdicts: m.phish.Load(),
		Errors:        m.errors.Load(),
		InFlight:      m.inFlight.Load(),
		BatchRejected: m.batchRejected.Load(),
		Cancelled:     m.cancelled.Load(),
		StreamedItems: m.streamed.Load(),

		CacheHits:    hits,
		CacheMisses:  miss,
		CacheHitRate: rate,
		CacheEntries: cacheEntries,

		LatencyMeanUS: m.latency.Mean(),
		LatencyP50US:  m.latency.Percentile(50),
		LatencyP90US:  m.latency.Percentile(90),
		LatencyP99US:  m.latency.Percentile(99),

		BatchLatencyMeanUS: m.scoreBatch.Mean(),
		BatchLatencyP99US:  m.scoreBatch.Percentile(99),
	}
}
