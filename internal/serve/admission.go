package serve

import (
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"knowphish/internal/obs"
)

// Adaptive admission control: when the SLO engine's fast-window burn
// crosses its thresholds, the server sheds work instead of letting the
// queue collapse — lowest-value work first. Every route belongs to an
// endpointClass carrying a shed priority; the engine's shed level L
// rejects every class with 0 < priority <= L, so background feed
// ingestion goes first, batch/stream/verdict queries second, and
// interactive single-page scoring only at the highest level. Ops
// surfaces (healthz, metrics, debug, model management) are priority 0
// and never shed — an overloaded server must stay observable and
// steerable.
//
// Shedding happens at two boundaries. The entry check in instrument
// rejects before any work. The re-check inside boundedCtx converts
// work that was admitted earlier but is still queued for a worker slot
// — under overload, queue delay is exactly what busts the latency SLO,
// so completing stale queued work late would poison the accepted-
// request percentiles the controller exists to protect.
//
// Shed responses are 503 with a Retry-After and are excluded from SLO
// observation and the latency histograms: a controller whose own
// rejections burned the availability budget would never recover.

// Shed priorities. Higher = more valuable = shed later.
const (
	prioOps         = 0 // never shed
	prioFeed        = 1 // background ingestion: first to go
	prioBatch       = 2 // batch, stream, verdict queries
	prioInteractive = 3 // single-page score/target: last to go
)

// errShed is returned by boundedCtx when queued work was shed at the
// worker-slot boundary; failCtx maps it onto the 503 surface.
var errShed = errors.New("shed: server over its error-budget burn threshold")

// endpointClass groups routes for admission control and windowed
// latency: its name is the SLO endpoint label, its priority the shed
// order, its window the "p99 right now" source for /metrics and kptop.
type endpointClass struct {
	name     string
	priority int
	// hist is the cumulative latency histogram the class observes into
	// (nil for classes excluded from the alerting percentiles).
	hist *latencyHist
	// window is the windowed latency ring (nil for ops classes).
	window *obs.WindowedHist
	// shed counts requests this class rejected at the entry check.
	shed atomic.Int64
}

// newClass registers an endpoint class on the server. Classes are
// created once in New and shared by every route they cover (v1 and v2
// score land in the same "score" class).
func (s *Server) newClass(name string, priority int, hist *latencyHist, windowed bool) *endpointClass {
	c := &endpointClass{name: name, priority: priority, hist: hist}
	if windowed {
		c.window = obs.NewWindowedHist(s.clock)
	}
	s.classes = append(s.classes, c)
	return c
}

// shedClass writes the 503 shed response for an entry-check rejection.
func (s *Server) shedClass(w http.ResponseWriter, cls *endpointClass) {
	cls.shed.Add(1)
	s.metrics.shedTotal.Add(1)
	s.writeShed(w)
}

// shedQueued writes the 503 for work shed at the worker-slot boundary
// (boundedCtx returned errShed after the entry check admitted it).
func (s *Server) shedQueued(w http.ResponseWriter) {
	s.metrics.shedQueued.Add(1)
	s.metrics.shedTotal.Add(1)
	s.writeShed(w)
}

// writeShed renders the shed 503: Retry-After tells well-behaved
// clients when the burn can plausibly have decayed, and the shed mark
// on the status recorder keeps the response out of SLO observation.
// Deliberate shedding is not an error, so metrics.errors is untouched
// — the shed counters are the signal.
func (s *Server) writeShed(w http.ResponseWriter) {
	if sr, ok := w.(*statusRecorder); ok {
		sr.shed = true
	}
	retry := s.slo.RetryAfter()
	if retry <= 0 {
		retry = 30 * time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
	s.reply(w, http.StatusServiceUnavailable, errorResponse{
		Error: "overloaded: request shed to protect the service SLO; retry after the indicated backoff",
	})
}

// admit reports whether a class passes admission at the current shed
// level. One atomic load on the accept path — this is the check
// BenchmarkAdmission pins at zero allocations.
func (s *Server) admit(cls *endpointClass) bool {
	return cls.priority == 0 || cls.priority > s.slo.ShedLevel()
}
