package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/ml"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

var (
	setupOnce sync.Once
	setupCorp *dataset.Corpus
	setupDet  *core.Detector
	setupErr  error
)

// fixtures builds one shared corpus + detector for every test.
func fixtures(t *testing.T) (*dataset.Corpus, *core.Detector) {
	t.Helper()
	setupOnce.Do(func() {
		setupCorp, setupErr = dataset.Build(dataset.Config{
			Seed:              41,
			Scale:             100,
			World:             webgen.Config{Seed: 42, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
			SkipLanguageTests: true,
		})
		if setupErr != nil {
			return
		}
		snaps := append(setupCorp.LegTrain.Snapshots(), setupCorp.PhishTrain.Snapshots()...)
		labels := append(setupCorp.LegTrain.Labels(), setupCorp.PhishTrain.Labels()...)
		setupDet, setupErr = core.Train(snaps, labels, core.TrainConfig{
			Rank: setupCorp.World.Ranking(),
			GBM:  ml.GBMConfig{Trees: 50, MaxDepth: 4, Seed: 3},
		})
	})
	if setupErr != nil {
		t.Fatalf("fixtures: %v", setupErr)
	}
	return setupCorp, setupDet
}

func newServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	c, d := fixtures(t)
	cfg := Config{Detector: d, Identifier: target.New(c.Engine)}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// call sends a JSON request and decodes the JSON response into out.
func call(t *testing.T, s *Server, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestNewValidatesConfig(t *testing.T) {
	c, d := fixtures(t)
	if _, err := New(Config{Identifier: target.New(c.Engine)}); err == nil {
		t.Error("nil detector: want error")
	}
	if _, err := New(Config{Detector: d}); err == nil {
		t.Error("nil identifier: want error")
	}
}

func TestScoreEndpoint(t *testing.T) {
	c, d := fixtures(t)
	s := newServer(t, nil)
	pipe := &core.Pipeline{Detector: d, Identifier: target.New(c.Engine)}
	for i, ex := range c.PhishTest.Examples {
		if i == 20 {
			break
		}
		var resp ScoreResponse
		code := call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: ex.Snapshot}, &resp)
		if code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if resp.Score < 0 || resp.Score > 1 {
			t.Fatalf("score %v out of range", resp.Score)
		}
		if resp.LandingURL != ex.Snapshot.LandingURL {
			t.Errorf("landing url %q, want %q", resp.LandingURL, ex.Snapshot.LandingURL)
		}
		// The serving path must agree exactly with the direct pipeline.
		want := pipe.Analyze(ex.Snapshot)
		if resp.Score != want.Score || resp.FinalPhish != want.FinalPhish ||
			resp.DetectorPhish != want.DetectorPhish {
			t.Errorf("served outcome %+v != direct outcome %+v", resp.Outcome, want)
		}
	}
}

func TestScoreCaching(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	snap := c.PhishTest.Examples[0].Snapshot

	var first, second ScoreResponse
	call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, &first)
	call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, &second)
	if first.Cached {
		t.Error("first request served from cache")
	}
	if !second.Cached {
		t.Error("second request not served from cache")
	}
	if first.Score != second.Score || first.FinalPhish != second.FinalPhish {
		t.Error("cached verdict differs from computed verdict")
	}
	m := s.Metrics()
	if m.CacheHits < 1 || m.CacheMisses < 1 {
		t.Errorf("cache counters: %+v", m)
	}
}

func TestScoreCacheDisabled(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) { cfg.CacheSize = -1 })
	snap := c.PhishTest.Examples[0].Snapshot
	var resp ScoreResponse
	call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, &resp)
	call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, &resp)
	if resp.Cached {
		t.Error("cache disabled but response marked cached")
	}
}

func TestScoreFromHTML(t *testing.T) {
	s := newServer(t, nil)
	var resp ScoreResponse
	code := call(t, s, http.MethodPost, "/v1/score", PageRequest{
		HTML:        `<title>Login</title><body>please sign in <form><input type="password"></form></body>`,
		StartingURL: "http://suspicious.test/login",
		LandingURL:  "http://suspicious.test/login",
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Score < 0 || resp.Score > 1 {
		t.Errorf("score %v out of range", resp.Score)
	}
}

func TestScoreBadRequests(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	for name, body := range map[string]any{
		"empty":            PageRequest{},
		"empty_snapshot":   PageRequest{Snapshot: &webpage.Snapshot{}},
		"both":             PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot, HTML: "<p>x</p>"},
		"snapshot_and_url": PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot, LandingURL: "http://other.test/"},
		"html_no_url":      PageRequest{HTML: "<p>x</p>"},
		"unknown_field":    map[string]any{"bogus": 1},
	} {
		var resp errorResponse
		if code := call(t, s, http.MethodPost, "/v1/score", body, &resp); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		} else if resp.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
	// Raw garbage and trailing-data bodies.
	for name, body := range map[string]string{
		"garbage":  "not json",
		"trailing": `{"html":"<p>x</p>","landing_url":"http://t.test/"} extra`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/score", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s body: status = %d, want 400", name, rec.Code)
		}
	}
}

func TestBatchEndpointDeterministicAcrossWorkers(t *testing.T) {
	c, _ := fixtures(t)
	pages := make([]PageRequest, 0, 30)
	for i, ex := range c.PhishTest.Examples {
		if i == 15 {
			break
		}
		pages = append(pages, PageRequest{Snapshot: ex.Snapshot})
	}
	for i, ex := range c.LegTrain.Examples {
		if i == 15 {
			break
		}
		pages = append(pages, PageRequest{Snapshot: ex.Snapshot})
	}

	var reference BatchResponse
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		// Fresh server per worker count so caching cannot mask differences.
		s := newServer(t, func(cfg *Config) { cfg.CacheSize = -1 })
		var resp BatchResponse
		code := call(t, s, http.MethodPost, "/v1/score/batch", BatchRequest{Pages: pages, Workers: workers}, &resp)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: status = %d", workers, code)
		}
		if resp.Count != len(pages) || len(resp.Results) != len(pages) {
			t.Fatalf("workers=%d: count = %d, want %d", workers, resp.Count, len(pages))
		}
		resp.ElapsedUS = 0
		if workers == 1 {
			reference = resp
			continue
		}
		if !reflect.DeepEqual(reference.Results, resp.Results) {
			t.Errorf("workers=%d: batch results differ from workers=1", workers)
		}
	}
}

func TestBatchUsesCache(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	pages := []PageRequest{
		{Snapshot: c.PhishTest.Examples[0].Snapshot},
		{Snapshot: c.PhishTest.Examples[1].Snapshot},
	}
	var first, second BatchResponse
	call(t, s, http.MethodPost, "/v1/score/batch", BatchRequest{Pages: pages}, &first)
	call(t, s, http.MethodPost, "/v1/score/batch", BatchRequest{Pages: pages}, &second)
	for i := range second.Results {
		if !second.Results[i].Cached {
			t.Errorf("result %d not cached on second pass", i)
		}
		if second.Results[i].Score != first.Results[i].Score {
			t.Errorf("result %d: cached score differs", i)
		}
	}
}

func TestBatchLimits(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) { cfg.MaxBatch = 2 })
	var resp errorResponse
	if code := call(t, s, http.MethodPost, "/v1/score/batch", BatchRequest{}, &resp); code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", code)
	}
	over := BatchRequest{Pages: []PageRequest{
		{Snapshot: c.PhishTest.Examples[0].Snapshot},
		{Snapshot: c.PhishTest.Examples[1].Snapshot},
		{Snapshot: c.PhishTest.Examples[2].Snapshot},
	}}
	if code := call(t, s, http.MethodPost, "/v1/score/batch", over, &resp); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status = %d, want 413", code)
	}
}

func TestBatchDeduplicatesLandingURLs(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	// Three lures funneling to the same landing page: one pipeline run.
	page := PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot}
	var resp BatchResponse
	code := call(t, s, http.MethodPost, "/v1/score/batch",
		BatchRequest{Pages: []PageRequest{page, page, page}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if m := s.Metrics(); m.PagesScored != 1 {
		t.Errorf("pages scored = %d, want 1 (deduplicated by landing URL)", m.PagesScored)
	}
	if resp.Results[0].Cached {
		t.Error("first occurrence marked cached")
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Score != resp.Results[0].Score {
			t.Errorf("result %d score differs from deduplicated result 0", i)
		}
		if !resp.Results[i].Cached {
			t.Errorf("result %d reused a verdict but is not marked cached", i)
		}
	}
}

func TestCacheNotPoisonableByContent(t *testing.T) {
	s := newServer(t, nil)
	// Two different pages claiming the same landing URL must not share
	// a verdict: the cache key fingerprints the content.
	benign := PageRequest{HTML: "<p>gardening tips and recipes</p>", LandingURL: "http://contested.test/"}
	phishy := PageRequest{
		HTML:       `<title>Login</title><body>verify your password now<form><input type="password"></form></body>`,
		LandingURL: "http://contested.test/",
	}
	var a, b ScoreResponse
	call(t, s, http.MethodPost, "/v1/score", benign, &a)
	call(t, s, http.MethodPost, "/v1/score", phishy, &b)
	if b.Cached {
		t.Error("different content under the same URL reused a cached verdict")
	}
	if m := s.Metrics(); m.PagesScored != 2 {
		t.Errorf("pages scored = %d, want 2 (no cross-content reuse)", m.PagesScored)
	}
	// The identical page, again: now it may hit.
	var c ScoreResponse
	call(t, s, http.MethodPost, "/v1/score", benign, &c)
	if !c.Cached {
		t.Error("identical resubmission did not hit the cache")
	}
}

func TestBatchNoDedupWhenCacheDisabled(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) { cfg.CacheSize = -1 })
	// Caching off means the operator rejected verdict reuse by landing
	// URL; same-URL pages must then each be scored.
	page := PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot}
	var resp BatchResponse
	call(t, s, http.MethodPost, "/v1/score/batch",
		BatchRequest{Pages: []PageRequest{page, page, page}}, &resp)
	if m := s.Metrics(); m.PagesScored != 3 {
		t.Errorf("pages scored = %d, want 3 (cache disabled disables dedup)", m.PagesScored)
	}
}

func TestOversizedBodyRejectedWith413(t *testing.T) {
	s := newServer(t, func(cfg *Config) { cfg.MaxBodyBytes = 256 })
	big := PageRequest{HTML: strings.Repeat("x", 1024), LandingURL: "http://big.test/"}
	var resp errorResponse
	if code := call(t, s, http.MethodPost, "/v1/score", big, &resp); code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", code)
	}
}

func TestTargetEndpoint(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	named, total := 0, 0
	for i, ex := range c.PhishBrand.Examples {
		if i == 20 {
			break
		}
		if ex.NoHint {
			continue
		}
		total++
		var resp TargetResponse
		code := call(t, s, http.MethodPost, "/v1/target", PageRequest{Snapshot: ex.Snapshot}, &resp)
		if code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if resp.Result.Verdict.String() == "" || resp.Result.StepsUsed < 1 {
			t.Fatalf("malformed result: %+v", resp.Result)
		}
		if resp.Result.Verdict == target.VerdictPhish {
			for j, cand := range resp.Result.Candidates {
				if j >= 3 {
					break
				}
				if cand.MLD == ex.TargetMLD {
					named++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no hinted phish examples")
	}
	if rate := float64(named) / float64(total); rate < 0.5 {
		t.Errorf("target naming rate over HTTP = %.2f, want >= 0.5", rate)
	}
}

func TestHealthz(t *testing.T) {
	s := newServer(t, nil)
	var resp HealthResponse
	if code := call(t, s, http.MethodGet, "/healthz", nil, &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Status != "ok" {
		t.Errorf("status = %q", resp.Status)
	}
	if resp.Threshold != core.DefaultThreshold {
		t.Errorf("threshold = %v", resp.Threshold)
	}
	if resp.Workers < 1 {
		t.Errorf("workers = %d", resp.Workers)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	for i := 0; i < 3; i++ {
		var resp ScoreResponse
		call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: c.PhishTest.Examples[i].Snapshot}, &resp)
	}
	var m MetricsSnapshot
	if code := call(t, s, http.MethodGet, "/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if m.Requests < 4 { // 3 scores + the metrics request itself
		t.Errorf("requests = %d, want >= 4", m.Requests)
	}
	if m.PagesScored != 3 {
		t.Errorf("pages scored = %d, want 3", m.PagesScored)
	}
	if m.CacheMisses != 3 {
		t.Errorf("cache misses = %d, want 3", m.CacheMisses)
	}
	if m.LatencyP50US <= 0 || m.LatencyP99US < m.LatencyP50US {
		t.Errorf("latency percentiles implausible: %+v", m)
	}
	if m.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", m.UptimeSeconds)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newServer(t, nil)
	for path, method := range map[string]string{
		"/v1/score":       http.MethodGet,
		"/v1/score/batch": http.MethodGet,
		"/v1/target":      http.MethodDelete,
		"/healthz":        http.MethodPost,
		"/metrics":        http.MethodPost,
	} {
		var resp errorResponse
		if code := call(t, s, method, path, nil, &resp); code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", method, path, code)
		}
	}
	if m := s.Metrics(); m.Errors < 5 {
		t.Errorf("errors = %d, want >= 5 (405s must count as errors)", m.Errors)
	}
}

func TestConcurrentScoring(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ex := c.PhishTest.Examples[(w*10+i)%len(c.PhishTest.Examples)]
				var buf bytes.Buffer
				_ = json.NewEncoder(&buf).Encode(PageRequest{Snapshot: ex.Snapshot})
				req := httptest.NewRequest(http.MethodPost, "/v1/score", &buf)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("concurrent score: status %d", rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m := s.Metrics(); m.Requests < 80 {
		t.Errorf("requests = %d, want >= 80", m.Requests)
	}
}
