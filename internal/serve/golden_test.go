package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate with: go test ./internal/serve -run TestV1Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the v1 golden response files")

// TestV1GoldenResponses pins the v1 wire format byte-for-byte. The v1
// endpoints are frozen: they must keep answering exactly as they did
// when clients first integrated, no matter how the scoring internals
// are redesigned underneath them. Any diff here is a breaking change
// for deployed clients and needs a v2 endpoint instead.
func TestV1GoldenResponses(t *testing.T) {
	c, _ := fixtures(t)
	phish := c.PhishTest.Examples[0].Snapshot
	phish2 := c.PhishTest.Examples[1].Snapshot
	legit := c.LegTrain.Examples[0].Snapshot

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
	}{
		{"score_phish", http.MethodPost, "/v1/score", PageRequest{Snapshot: phish}, http.StatusOK},
		{"score_legit", http.MethodPost, "/v1/score", PageRequest{Snapshot: legit}, http.StatusOK},
		{"score_bad_request", http.MethodPost, "/v1/score", PageRequest{}, http.StatusBadRequest},
		// The duplicate page in the batch pins the dedupe/cached wire
		// behavior; elapsed_us is zeroed below before comparing.
		{"score_batch", http.MethodPost, "/v1/score/batch",
			BatchRequest{Pages: []PageRequest{{Snapshot: phish}, {Snapshot: legit}, {Snapshot: phish}, {Snapshot: phish2}}, Workers: 1},
			http.StatusOK},
		{"target", http.MethodPost, "/v1/target", PageRequest{Snapshot: phish}, http.StatusOK},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A fresh server per case: no cache state leaks between cases,
			// so each golden is reproducible in isolation.
			s := newServer(t, nil)
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(tc.body); err != nil {
				t.Fatal(err)
			}
			req := httptest.NewRequest(tc.method, tc.path, &buf)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			got := rec.Body.Bytes()
			if tc.name == "score_batch" {
				got = zeroElapsed(t, got)
			}

			path := filepath.Join("testdata", "golden_v1_"+tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("v1 response drifted from golden %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// zeroElapsed rewrites the timing field of a batch response to 0 so the
// golden comparison pins the verdict bytes, not the wall clock.
func zeroElapsed(t *testing.T, body []byte) []byte {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("batch response not an object: %v", err)
	}
	if _, ok := doc["elapsed_us"]; !ok {
		t.Fatal("batch response lost elapsed_us")
	}
	doc["elapsed_us"] = json.RawMessage("0")
	// Re-encode field-order-stable (Go maps marshal keys sorted).
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
