package serve

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"knowphish/internal/obs"
	"knowphish/internal/racecheck"
	"knowphish/internal/slo"
	"knowphish/internal/target"
)

// sloClock is a settable fake clock shared by the SLO engine and the
// server's windowed histograms, so an overload episode can be driven
// through burn, page and recovery without real sleeps.
type sloClock struct{ ns atomic.Int64 }

func newSLOClock() *sloClock {
	c := &sloClock{}
	c.ns.Store(time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *sloClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *sloClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// sloServer builds a server wired to an SLO engine with short windows
// (fast 10s, slow 60s, hold-down 5s) over the given objective specs.
func sloServer(t *testing.T, clock *sloClock, specs ...string) (*Server, *slo.Engine, *obs.Journal) {
	t.Helper()
	c, d := fixtures(t)
	objs, err := slo.ParseObjectives(specs)
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	journal := obs.NewJournal(0)
	journal.Clock = clock.Now
	eng := slo.New(slo.Config{
		Objectives: objs,
		FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second,
		HoldDown:   5 * time.Second,
		Clock:      clock.Now,
		Journal:    journal,
	})
	s, err := New(Config{
		Detector:   d,
		Identifier: target.New(c.Engine),
		SLO:        eng,
		Journal:    journal,
		Clock:      clock.Now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, eng, journal
}

// drive feeds n SLI events for endpoint into the engine.
func drive(eng *slo.Engine, endpoint string, n int, failed bool) {
	for i := 0; i < n; i++ {
		eng.Observe(endpoint, time.Millisecond, failed)
	}
}

// TestOverloadEpisode walks one full overload episode through the HTTP
// surface: healthy serving → budget burn → page state with shedding
// (503 + Retry-After, ops surfaces still answering) → recovery back to
// ok with shedding disengaged — with the journal recording the
// transitions.
func TestOverloadEpisode(t *testing.T) {
	clock := newSLOClock()
	s, eng, _ := sloServer(t, clock, "score:avail>99")
	c, _ := fixtures(t)
	snap := c.PhishTest.Examples[0].Snapshot

	// Healthy: good traffic, state ok, scoring works.
	drive(eng, "score", 100, false)
	eng.Tick()
	if st := eng.State(); st != slo.StateOK {
		t.Fatalf("healthy state = %v, want ok", st)
	}
	if code := call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil); code != http.StatusOK {
		t.Fatalf("healthy score: status %d", code)
	}

	// Overload: 50% failures burn the 1% budget at 50× — far over the
	// page threshold in both windows, so the engine pages and the shed
	// level hits the top.
	clock.Advance(time.Second)
	drive(eng, "score", 100, true)
	eng.Tick()
	if st := eng.State(); st != slo.StatePage {
		t.Fatalf("overload state = %v, want page", st)
	}
	if lvl := eng.ShedLevel(); lvl != 3 {
		t.Fatalf("shed level = %d, want 3", lvl)
	}

	// Interactive scoring sheds with Retry-After; ops surfaces answer.
	rec := rawCall(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed score: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed 503 has no Retry-After header")
	}
	if code := call(t, s, http.MethodPost, "/v1/feed", FeedRequest{URLs: []string{"http://x.test/"}}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("shed feed: status %d, want 503", code)
	}
	var health HealthResponse
	if code := call(t, s, http.MethodGet, "/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz during shed: status %d", code)
	}
	if health.SLOState != "page" || health.ShedLevel != 3 {
		t.Errorf("healthz slo_state=%q shed_level=%d, want page/3", health.SLOState, health.ShedLevel)
	}
	var status slo.Status
	if code := call(t, s, http.MethodGet, "/debug/slo", nil, &status); code != http.StatusOK {
		t.Fatalf("/debug/slo during shed: status %d", code)
	}
	if status.State != "page" || status.ShedLevel != 3 {
		t.Errorf("/debug/slo state=%q shed_level=%d, want page/3", status.State, status.ShedLevel)
	}

	// Shed responses are deliberate, not errors: the shed counters move
	// and the error counter does not.
	m := s.Metrics()
	if m.Shed.Total < 2 {
		t.Errorf("shed.total = %d, want >= 2", m.Shed.Total)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d, want 0 (sheds must not count as errors)", m.Errors)
	}
	if m.Endpoints["score"].Shed == 0 {
		t.Error("endpoints.score.shed = 0, want > 0")
	}

	// Recovery: the bad events age out of the fast window, good traffic
	// resumes, and after the hold-down the engine returns to ok and
	// shedding disengages.
	clock.Advance(11 * time.Second)
	drive(eng, "score", 100, false)
	eng.Tick()
	if lvl := eng.ShedLevel(); lvl != 0 {
		t.Fatalf("post-burn shed level = %d, want 0 (fast window clean)", lvl)
	}
	clock.Advance(6 * time.Second)
	drive(eng, "score", 100, false)
	eng.Tick()
	if st := eng.State(); st != slo.StateOK {
		t.Fatalf("recovered state = %v, want ok", st)
	}
	if code := call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil); code != http.StatusOK {
		t.Fatalf("recovered score: status %d", code)
	}

	// The journal holds the full episode.
	var events eventsResponse
	if code := call(t, s, http.MethodGet, "/debug/events", nil, &events); code != http.StatusOK {
		t.Fatalf("/debug/events: status %d", code)
	}
	saw := map[string]bool{}
	for _, ev := range events.Events {
		saw[ev.Type] = true
	}
	if !saw["slo_transition"] || !saw["shed_level"] {
		t.Errorf("journal types = %v, want slo_transition and shed_level", saw)
	}
}

// TestShedQueuedBoundary pins the second shed boundary: work that won a
// worker slot is re-checked against the current shed level, so requests
// admitted before the burn crossed the threshold do not complete late.
func TestShedQueuedBoundary(t *testing.T) {
	clock := newSLOClock()
	s, eng, _ := sloServer(t, clock, "score:avail>99")

	drive(eng, "score", 100, true)
	eng.Tick()
	if lvl := eng.ShedLevel(); lvl != 3 {
		t.Fatalf("shed level = %d, want 3", lvl)
	}
	ran := false
	err := s.boundedCtx(context.Background(), prioInteractive, func() { ran = true })
	if err != errShed {
		t.Fatalf("boundedCtx = %v, want errShed", err)
	}
	if ran {
		t.Error("shed work ran anyway")
	}
	// Priority 0 work always passes.
	if err := s.boundedCtx(context.Background(), prioOps, func() {}); err != nil {
		t.Fatalf("prioOps boundedCtx = %v, want nil", err)
	}
}

// TestNoSLOEngine pins the nil-engine path: without an SLO engine the
// server admits everything and the debug endpoints answer empty
// documents rather than 404, so dashboards can poll unconditionally.
func TestNoSLOEngine(t *testing.T) {
	c, d := fixtures(t)
	s, err := New(Config{Detector: d, Identifier: target.New(c.Engine)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap := c.PhishTest.Examples[0].Snapshot
	if code := call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: snap}, nil); code != http.StatusOK {
		t.Fatalf("score: status %d", code)
	}
	var status slo.Status
	if code := call(t, s, http.MethodGet, "/debug/slo", nil, &status); code != http.StatusOK {
		t.Fatalf("/debug/slo: status %d", code)
	}
	if status.State != "ok" || len(status.Objectives) != 0 {
		t.Errorf("/debug/slo = %+v, want ok with no objectives", status)
	}
	var events eventsResponse
	if code := call(t, s, http.MethodGet, "/debug/events", nil, &events); code != http.StatusOK {
		t.Fatalf("/debug/events: status %d", code)
	}
	if len(events.Events) != 0 || events.Total != 0 {
		t.Errorf("/debug/events = %+v, want empty", events)
	}
	var health HealthResponse
	call(t, s, http.MethodGet, "/healthz", nil, &health)
	if health.SLOState != "" {
		t.Errorf("healthz slo_state = %q, want absent", health.SLOState)
	}
}

// TestAdmitAllocs pins the admission check at zero allocations: it runs
// on every request of every class.
func TestAdmitAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("alloc counts are meaningless under -race")
	}
	objs, err := slo.ParseObjectives([]string{"score:p99<250ms,avail>99.9"})
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	s := &Server{slo: slo.New(slo.Config{Objectives: objs})}
	cls := &endpointClass{name: "score", priority: prioInteractive}
	if n := testing.AllocsPerRun(1000, func() {
		if !s.admit(cls) {
			t.Fatal("unexpected shed")
		}
	}); n != 0 {
		t.Errorf("admit allocates %.1f per run, want 0", n)
	}
}

// BenchmarkAdmission measures the admission fast path — one atomic load
// against the engine's shed level. Gated in CI at 0 allocs/op.
func BenchmarkAdmission(b *testing.B) {
	objs, err := slo.ParseObjectives([]string{"score:p99<250ms,avail>99.9"})
	if err != nil {
		b.Fatalf("ParseObjectives: %v", err)
	}
	s := &Server{slo: slo.New(slo.Config{Objectives: objs})}
	cls := &endpointClass{name: "score", priority: prioInteractive}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.admit(cls) {
			b.Fatal("unexpected shed")
		}
	}
}
