package serve

import (
	"math"
	"net/http"
	"testing"

	"knowphish/internal/core"
	"knowphish/internal/features"
)

func TestScoreV2MatchesV1AndAddsEnvelope(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	for i, ex := range c.PhishTest.Examples {
		if i == 10 {
			break
		}
		var v1 ScoreResponse
		var v2 V2ScoreResponse
		// Cache disabled per-pair comparison: fresh server each loop
		// would be slow; instead order v2-then-v1 and accept the cached
		// flag difference, comparing the verdict fields only.
		if code := call(t, s, http.MethodPost, "/v2/score",
			V2ScoreRequest{PageRequest: PageRequest{Snapshot: ex.Snapshot}}, &v2); code != http.StatusOK {
			t.Fatalf("v2 status = %d", code)
		}
		call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: ex.Snapshot}, &v1)
		if v2.Score != v1.Score || v2.FinalPhish != v1.FinalPhish {
			t.Fatalf("v2 verdict %+v diverges from v1 %+v", v2.Outcome, v1.Outcome)
		}
		wantLabel := core.LabelLegitimate
		if v2.FinalPhish {
			wantLabel = core.LabelPhishing
		}
		if v2.Label != wantLabel || v2.Threshold != core.DefaultThreshold {
			t.Errorf("envelope: label=%q threshold=%v", v2.Label, v2.Threshold)
		}
		if v2.Cached {
			t.Error("first v2 score served from cache")
		}
		if v2.Timings.TotalNS <= 0 {
			t.Errorf("fresh verdict missing timings: %+v", v2.Timings)
		}
	}
}

func TestScoreV2Explain(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	snap := c.PhishTest.Examples[0].Snapshot

	// Warm the cache with a plain request …
	var plain V2ScoreResponse
	call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{PageRequest: PageRequest{Snapshot: snap}}, &plain)
	if plain.Explanation != nil {
		t.Fatal("explanation attached without explain option")
	}

	// … then an explain request must bypass it and carry evidence.
	var explained V2ScoreResponse
	code := call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
		PageRequest:  PageRequest{Snapshot: snap},
		ScoreOptions: ScoreOptions{Explain: "top", TopFeatures: 5},
	}, &explained)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if explained.Cached {
		t.Error("explain request served from the evidence-free cache")
	}
	if explained.Explanation == nil || len(explained.Explanation.Contributions) == 0 {
		t.Fatal("no evidence on an explain request")
	}
	if len(explained.Explanation.Contributions) > 5 {
		t.Errorf("top_features=5 returned %d contributions", len(explained.Explanation.Contributions))
	}
	if explained.Score != plain.Score {
		t.Errorf("explained score %v differs from plain score %v", explained.Score, plain.Score)
	}
	for _, ctr := range explained.Explanation.Contributions {
		if ctr.Name == "" {
			t.Errorf("contribution without a feature name: %+v", ctr)
		}
	}

	// A full explanation reassembles the score exactly.
	var full V2ScoreResponse
	call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
		PageRequest:  PageRequest{Snapshot: snap},
		ScoreOptions: ScoreOptions{Explain: "full"},
	}, &full)
	sum := full.Explanation.Bias
	for _, ctr := range full.Explanation.Contributions {
		sum += ctr.LogOdds
	}
	if got := 1 / (1 + math.Exp(-sum)); math.Abs(got-full.Score) > 1e-9 {
		t.Errorf("sigmoid(bias+Σ) = %v, score = %v", got, full.Score)
	}
}

func TestScoreV2CachedSecondCall(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	snap := c.PhishTest.Examples[0].Snapshot
	var first, second V2ScoreResponse
	call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{PageRequest: PageRequest{Snapshot: snap}}, &first)
	call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{PageRequest: PageRequest{Snapshot: snap}}, &second)
	if !second.Cached {
		t.Error("second v2 score not served from cache")
	}
	if second.Score != first.Score || second.Label != first.Label {
		t.Error("cached verdict differs from computed verdict")
	}
	if second.Timings.TotalNS != 0 {
		t.Error("cached verdict claims fresh timings")
	}
}

func TestScoreV2BadOptions(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	snap := c.PhishTest.Examples[0].Snapshot
	for name, body := range map[string]V2ScoreRequest{
		"bad_explain":  {PageRequest: PageRequest{Snapshot: snap}, ScoreOptions: ScoreOptions{Explain: "everything"}},
		"neg_deadline": {PageRequest: PageRequest{Snapshot: snap}, ScoreOptions: ScoreOptions{DeadlineMS: -5}},
		"neg_top":      {PageRequest: PageRequest{Snapshot: snap}, ScoreOptions: ScoreOptions{TopFeatures: -1}},
	} {
		var resp errorResponse
		if code := call(t, s, http.MethodPost, "/v2/score", body, &resp); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
}

func TestScoreV2SkipTarget(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) { cfg.CacheSize = -1 })
	// Find a detector positive and confirm skip_target suppresses the
	// identification stage end to end.
	for i, ex := range c.PhishTest.Examples {
		if i == 30 {
			break
		}
		var full V2ScoreResponse
		call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{PageRequest: PageRequest{Snapshot: ex.Snapshot}}, &full)
		if !full.DetectorPhish {
			continue
		}
		var skipped V2ScoreResponse
		call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
			PageRequest:  PageRequest{Snapshot: ex.Snapshot},
			ScoreOptions: ScoreOptions{SkipTarget: true},
		}, &skipped)
		if skipped.TargetRun || skipped.Timings.TargetNS != 0 {
			t.Fatalf("skip_target ran identification: %+v", skipped)
		}
		if !skipped.FinalPhish {
			t.Error("skip_target verdict lost the raw detector call")
		}
		return
	}
	t.Skip("no detector positive in the first 30 test pages")
}

// TestSkipTargetDoesNotPoisonCache: a skip_target verdict is partial
// (no FP-removal pass) and must not become the cached canonical outcome
// a later full request — v1 or v2 — gets served. Found live: a v2
// skip_target warm-up downgraded subsequent v1 responses to
// target_run=false.
func TestSkipTargetDoesNotPoisonCache(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	// Find a detector positive so the target stage actually matters.
	for i, ex := range c.PhishTest.Examples {
		if i == 30 {
			break
		}
		var probe V2ScoreResponse
		call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
			PageRequest:  PageRequest{Snapshot: ex.Snapshot},
			ScoreOptions: ScoreOptions{SkipTarget: true},
		}, &probe)
		if !probe.DetectorPhish {
			continue
		}
		// The partial verdict must not have been cached: the full v1
		// request recomputes and runs identification.
		var full ScoreResponse
		call(t, s, http.MethodPost, "/v1/score", PageRequest{Snapshot: ex.Snapshot}, &full)
		if full.Cached {
			t.Fatal("v1 request served the partial skip_target verdict from cache")
		}
		if !full.TargetRun {
			t.Fatal("v1 request lost the target-identification pass")
		}
		// The full verdict IS cached, and skip_target readers may reuse it.
		var again V2ScoreResponse
		call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
			PageRequest:  PageRequest{Snapshot: ex.Snapshot},
			ScoreOptions: ScoreOptions{SkipTarget: true},
		}, &again)
		if !again.Cached || !again.TargetRun {
			t.Errorf("skip_target reader did not reuse the canonical cached verdict: %+v", again.Outcome)
		}
		return
	}
	t.Skip("no detector positive in the first 30 test pages")
}

func TestTargetV2(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, nil)
	var v1 TargetResponse
	var v2 V2TargetResponse
	snap := c.PhishBrand.Examples[0].Snapshot
	call(t, s, http.MethodPost, "/v1/target", PageRequest{Snapshot: snap}, &v1)
	if code := call(t, s, http.MethodPost, "/v2/target",
		V2ScoreRequest{PageRequest: PageRequest{Snapshot: snap}}, &v2); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if v2.Result.Verdict != v1.Result.Verdict || v2.Result.StepsUsed != v1.Result.StepsUsed {
		t.Errorf("v2 target result diverges from v1: %+v vs %+v", v2.Result, v1.Result)
	}
	if v2.LandingURL != snap.LandingURL {
		t.Errorf("landing url %q", v2.LandingURL)
	}
}

// TestBatchOverLimitRejectedAndCounted pins the satellite bugfix: an
// over-limit batch answers 413 with a JSON error body AND the rejection
// is observable at /metrics.
func TestBatchOverLimitRejectedAndCounted(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) { cfg.MaxBatch = 2 })
	over := BatchRequest{Pages: []PageRequest{
		{Snapshot: c.PhishTest.Examples[0].Snapshot},
		{Snapshot: c.PhishTest.Examples[1].Snapshot},
		{Snapshot: c.PhishTest.Examples[2].Snapshot},
	}}
	var resp errorResponse
	if code := call(t, s, http.MethodPost, "/v1/score/batch", over, &resp); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", code)
	}
	if resp.Error == "" {
		t.Error("413 without a JSON error body")
	}
	if m := s.Metrics(); m.BatchRejected != 1 {
		t.Errorf("batch_rejected = %d, want 1", m.BatchRejected)
	}
	if m := s.Metrics(); m.PagesScored != 0 {
		t.Errorf("rejected batch scored %d pages", m.PagesScored)
	}
}

func TestServerDefaultExplain(t *testing.T) {
	c, _ := fixtures(t)
	s := newServer(t, func(cfg *Config) {
		cfg.DefaultExplain = core.ExplainTop
		cfg.ExplainTopN = 4
		cfg.CacheSize = -1
	})
	var resp V2ScoreResponse
	call(t, s, http.MethodPost, "/v2/score",
		V2ScoreRequest{PageRequest: PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot}}, &resp)
	if resp.Explanation == nil {
		t.Fatal("server default explain level not applied")
	}
	if len(resp.Explanation.Contributions) > 4 {
		t.Errorf("server ExplainTopN=4 returned %d contributions", len(resp.Explanation.Contributions))
	}
	// The request can opt back out.
	var none V2ScoreResponse
	call(t, s, http.MethodPost, "/v2/score", V2ScoreRequest{
		PageRequest:  PageRequest{Snapshot: c.PhishTest.Examples[0].Snapshot},
		ScoreOptions: ScoreOptions{Explain: "none"},
	}, &none)
	if none.Explanation != nil {
		t.Error("explain=none did not override the server default")
	}
}

func TestScoreV2FeatureMaskViaFeaturesPackage(t *testing.T) {
	// The features-layer mask behind WithFeatureSet: masking to All is
	// identity, masking to F1 zeroes everything else.
	v := make([]float64, features.TotalCount)
	for i := range v {
		v[i] = float64(i + 1)
	}
	all := features.Mask(v, features.All)
	for i := range all {
		if all[i] != v[i] {
			t.Fatalf("Mask(All) altered column %d", i)
		}
	}
	f1 := features.Mask(v, features.F1)
	idx := features.Indices(features.F1)
	keep := make(map[int]bool, len(idx))
	for _, i := range idx {
		keep[i] = true
	}
	for i := range f1 {
		if keep[i] && f1[i] != v[i] {
			t.Fatalf("Mask(F1) dropped kept column %d", i)
		}
		if !keep[i] && f1[i] != 0 {
			t.Fatalf("Mask(F1) kept masked column %d", i)
		}
	}
}
