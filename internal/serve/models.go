package serve

import (
	"errors"
	"net/http"
	"os"

	"knowphish/internal/drift"
	"knowphish/internal/registry"
)

// ModelsResponse is the GET /v2/models document: every registered
// version, which one serves traffic, and the lifecycle gauges when the
// controller is configured.
type ModelsResponse struct {
	// ChampionVersion is the version serving traffic ("" while the
	// registry is being bootstrapped).
	ChampionVersion string `json:"champion_version,omitempty"`
	// Models lists every registered manifest, oldest version first.
	Models []registry.Manifest `json:"models"`
	Count  int                 `json:"count"`
	// Lifecycle carries drift gauges, shadow-scoring stats and the
	// pending evaluation (nil when no lifecycle controller runs).
	Lifecycle *drift.LifecycleStatus `json:"lifecycle,omitempty"`
}

// RetrainResponse is the POST /v2/models document.
type RetrainResponse struct {
	// Status is "retrain_started".
	Status string `json:"status"`
}

// PromoteRequest is the POST /v2/models/promote document.
type PromoteRequest struct {
	// Version names the registered model to promote.
	Version string `json:"version"`
	// Force bypasses the promotion gate — the operator override for
	// rollbacks and models without a pending evaluation. Without a
	// lifecycle controller every promotion behaves as forced (there is
	// no gate to consult).
	Force bool `json:"force,omitempty"`
}

// PromoteResponse reports a completed promotion.
type PromoteResponse struct {
	Promoted bool   `json:"promoted"`
	From     string `json:"from,omitempty"`
	To       string `json:"to"`
	// Gate is the lifecycle's ruling when one was consulted.
	Gate *drift.Decision `json:"gate,omitempty"`
}

// handleModels serves the model registry: GET lists versions and
// lifecycle state; POST triggers a background retrain from the verdict
// store.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		s.fail(w, http.StatusServiceUnavailable, errors.New("model registry is not configured on this server"))
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		resp := ModelsResponse{
			ChampionVersion: s.registry.ChampionVersion(),
			Models:          s.registry.List(),
		}
		resp.Count = len(resp.Models)
		if s.lifecycle != nil {
			ls := s.lifecycle.Status()
			resp.Lifecycle = &ls
		}
		s.reply(w, http.StatusOK, resp)
	case http.MethodPost:
		if s.lifecycle == nil {
			s.fail(w, http.StatusServiceUnavailable, errors.New("retraining needs the lifecycle controller (run kpserve with a store and crawl source)"))
			return
		}
		if err := s.lifecycle.RetrainAsync(); err != nil {
			// Single-flight: a retrain is already running.
			s.fail(w, http.StatusConflict, err)
			return
		}
		// The retrain outlives this request by design; progress and
		// outcome are visible at GET /v2/models (retraining flag,
		// challenger_version, last_error).
		s.reply(w, http.StatusAccepted, RetrainResponse{Status: "retrain_started"})
	default:
		w.Header().Set("Allow", "GET, POST")
		s.fail(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

// handlePromote swaps the champion. With a lifecycle controller the
// promotion gate rules unless the request forces; with a bare registry
// the swap is direct.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		s.fail(w, http.StatusServiceUnavailable, errors.New("model registry is not configured on this server"))
		return
	}
	var req PromoteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Version == "" {
		s.fail(w, http.StatusBadRequest, errors.New("missing version"))
		return
	}
	from := s.registry.ChampionVersion()
	resp := PromoteResponse{From: from, To: req.Version}
	if s.lifecycle != nil {
		gate := s.lifecycle.Decide()
		resp.Gate = &gate
		if _, err := s.lifecycle.Promote(req.Version, req.Force); err != nil {
			s.failPromote(w, err)
			return
		}
	} else {
		if _, err := s.registry.SetChampion(req.Version); err != nil {
			s.failPromote(w, err)
			return
		}
	}
	// The new champion is live: flush the model-dependent memo tables
	// (detector scores, target results) so no request is answered from
	// the predecessor's work. Analysis and feature memos are
	// model-independent and survive the swap.
	s.coal.InvalidateModel()
	resp.Promoted = true
	s.reply(w, http.StatusOK, resp)
}

// failPromote maps promotion errors onto statuses an operator can act
// on: a gate refusal is a 409 (retry with force or a better model), an
// unknown version a 404.
func (s *Server) failPromote(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, drift.ErrGateRefused):
		s.fail(w, http.StatusConflict, err)
	case errors.Is(err, os.ErrNotExist):
		s.fail(w, http.StatusNotFound, err)
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}
