package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
)

// GBMConfig controls gradient-boosting training. The zero value is usable:
// every field defaults to the values noted below, matching a configuration
// comparable to scikit-learn's GradientBoostingClassifier defaults that the
// paper used.
type GBMConfig struct {
	// Trees is the number of boosting rounds (default 150).
	Trees int `json:"trees"`
	// LearningRate is the shrinkage ν (default 0.1).
	LearningRate float64 `json:"learning_rate"`
	// MaxDepth is the per-tree depth limit (default 3).
	MaxDepth int `json:"max_depth"`
	// MinLeaf is the per-leaf minimum sample count (default 5).
	MinLeaf int `json:"min_leaf"`
	// Subsample is the row-sampling ratio per round in (0,1]; values
	// below 1 give stochastic gradient boosting (Friedman 2002, the
	// variant the paper cites). Default 0.8.
	Subsample float64 `json:"subsample"`
	// FeatureFraction is the column-sampling ratio per round in (0,1].
	// Default 1 (all features).
	FeatureFraction float64 `json:"feature_fraction"`
	// Seed drives all sampling; the same seed reproduces the same model.
	Seed int64 `json:"seed"`
}

func (c GBMConfig) withDefaults() GBMConfig {
	if c.Trees < 1 {
		c.Trees = 150
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth < 1 {
		c.MaxDepth = 3
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 5
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 0.8
	}
	if c.FeatureFraction <= 0 || c.FeatureFraction > 1 {
		c.FeatureFraction = 1
	}
	return c
}

// GBM is a gradient-boosted tree ensemble for binary classification with
// logistic loss. Score returns the positive-class confidence in [0,1]; a
// discrimination threshold (0.7 in the paper) converts it to a class.
type GBM struct {
	Config GBMConfig `json:"config"`
	// InitScore is F₀, the log-odds of the positive class on the
	// training set.
	InitScore float64 `json:"init_score"`
	// Trees are the fitted base learners in boosting order.
	Trees []Tree `json:"trees"`
	// FeatureCount records the training dimensionality for validation.
	FeatureCount int `json:"feature_count"`

	// contribOnce guards the lazily computed per-tree node expectations
	// Contributions walks (see contrib.go). Models are shared by
	// pointer; the cache makes per-prediction attribution O(path)
	// instead of O(nodes).
	contribOnce sync.Once
	nodeVals    [][]float64
	// flatOnce guards the contiguous inference layout Score traverses
	// (see flat.go). Like the contribution cache it is built once and
	// shared: a GBM is immutable once published to scorers.
	flatOnce sync.Once
	flat     *flatGBM
}

// TrainGBM fits a boosted ensemble on x (rows = samples) with binary
// labels y (0 or 1).
func TrainGBM(x [][]float64, y []int, cfg GBMConfig) (*GBM, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("ml: TrainGBM: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: TrainGBM: %d samples vs %d labels", len(x), len(y))
	}
	var pos int
	for _, v := range y {
		switch v {
		case 0:
		case 1:
			pos++
		default:
			return nil, fmt.Errorf("ml: TrainGBM: label %d not in {0,1}", v)
		}
	}
	if pos == 0 || pos == len(y) {
		return nil, fmt.Errorf("ml: TrainGBM: training set needs both classes (positives=%d of %d)", pos, len(y))
	}
	cfg = cfg.withDefaults()
	n := len(x)
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("ml: TrainGBM: row %d has %d features, want %d", i, len(row), dim)
		}
	}

	m := &GBM{Config: cfg, FeatureCount: dim}
	p := float64(pos) / float64(n)
	m.InitScore = math.Log(p / (1 - p))

	rng := rand.New(rand.NewSource(cfg.Seed))
	f := make([]float64, n) // current raw scores F(x_i)
	for i := range f {
		f[i] = m.InitScore
	}
	residual := make([]float64, n)
	allIdx := make([]int, n)
	for i := range allIdx {
		allIdx[i] = i
	}
	treeCfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf}
	nSub := int(cfg.Subsample * float64(n))
	if nSub < 2 {
		nSub = n
	}
	nFeat := int(cfg.FeatureFraction * float64(dim))
	if nFeat < 1 {
		nFeat = 1
	}

	for round := 0; round < cfg.Trees; round++ {
		// Negative gradient of logistic loss: r_i = y_i − p_i.
		for i := 0; i < n; i++ {
			residual[i] = float64(y[i]) - sigmoid(f[i])
		}
		idx := allIdx
		if nSub < n {
			idx = sampleWithoutReplacement(rng, n, nSub)
		}
		features := allFeatures(dim)
		if nFeat < dim {
			features = sampleWithoutReplacement(rng, dim, nFeat)
		}
		tree, leaves, err := FitTree(x, residual, idx, features, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("ml: TrainGBM round %d: %w", round, err)
		}
		// Newton leaf step for logistic loss:
		// γ = Σ r_i / Σ p_i (1 − p_i)  over the leaf's samples.
		for leaf, samples := range leaves {
			var num, den float64
			for _, i := range samples {
				pi := sigmoid(f[i])
				num += residual[i]
				den += pi * (1 - pi)
			}
			if den < 1e-12 {
				tree.Nodes[leaf].Value = 0
			} else {
				tree.Nodes[leaf].Value = num / den
			}
		}
		// Update every sample's score with the shrunken tree output.
		for i := 0; i < n; i++ {
			f[i] += cfg.LearningRate * tree.Predict(x[i])
		}
		m.Trees = append(m.Trees, *tree)
	}
	return m, nil
}

// Score returns the positive-class confidence for x in [0,1]. It
// traverses the flattened node layout (built once per model, see
// flat.go) and never allocates.
func (m *GBM) Score(x []float64) float64 {
	return sigmoid(m.flatten().raw(x))
}

// ScoreReference scores x by walking the serialized per-tree node
// slices, the layout-naive implementation Score used before the
// flattened path existed. It is retained as the equivalence oracle:
// Score must reproduce it bit-for-bit on every input (the flat layout
// is a cache optimization, not a numerical change), and the
// BenchmarkGBMPredict layout=tree variant prices what flattening buys.
func (m *GBM) ScoreReference(x []float64) float64 {
	f := m.InitScore
	for i := range m.Trees {
		f += m.Config.LearningRate * m.Trees[i].Predict(x)
	}
	return sigmoid(f)
}

// ScoreAll maps Score over rows.
func (m *GBM) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Score(row)
	}
	return out
}

// ScoreBatchInto scores every row of xs into out (len(out) must equal
// len(xs)) in one node-major pass over the flattened ensemble: the tree
// loop is outermost, so each tree's nodes are streamed through the
// cache once per batch instead of once per row. Scores are bit-for-bit
// identical to per-row Score calls, and the call does not allocate —
// this is the cross-request coalescer's scoring kernel.
func (m *GBM) ScoreBatchInto(out []float64, xs [][]float64) {
	if len(out) != len(xs) {
		panic("ml: ScoreBatchInto length mismatch")
	}
	if len(xs) == 0 {
		return
	}
	m.flatten().rawBatch(xs, out)
	for i, z := range out {
		out[i] = sigmoid(z)
	}
}

// Predict classifies x with the given discrimination threshold: class 1
// (phishing) when Score(x) >= threshold. The paper sets threshold = 0.7,
// favoring legitimate predictions.
func (m *GBM) Predict(x []float64, threshold float64) int {
	if m.Score(x) >= threshold {
		return 1
	}
	return 0
}

// FeatureImportance returns per-feature split counts, a simple importance
// measure: how often each feature was chosen across the ensemble.
func (m *GBM) FeatureImportance() []int {
	imp := make([]int, m.FeatureCount)
	for i := range m.Trees {
		for _, n := range m.Trees[i].Nodes {
			if n.Feature >= 0 && n.Feature < len(imp) {
				imp[n.Feature]++
			}
		}
	}
	return imp
}

// Save serializes the model as JSON.
func (m *GBM) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("ml: saving GBM: %w", err)
	}
	return nil
}

// LoadGBM deserializes a model saved with Save.
func LoadGBM(r io.Reader) (*GBM, error) {
	var m GBM
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("ml: loading GBM: %w", err)
	}
	if m.FeatureCount <= 0 || len(m.Trees) == 0 {
		return nil, fmt.Errorf("ml: loading GBM: model is empty or malformed")
	}
	return &m, nil
}

func sigmoid(z float64) float64 {
	// Guard against overflow for extreme raw scores.
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func allFeatures(dim int) []int {
	out := make([]int, dim)
	for i := range out {
		out[i] = i
	}
	return out
}

// sampleWithoutReplacement returns k distinct values from [0,n) using a
// partial Fisher–Yates shuffle.
func sampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}
