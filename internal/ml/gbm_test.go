package ml

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// makeBlobs builds a two-class dataset: class 0 centered at -1, class 1 at
// +1 in every dimension, with unit noise.
func makeBlobs(n, dim int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % 2
		row := make([]float64, dim)
		center := -1.0
		if label == 1 {
			center = 1.0
		}
		for d := 0; d < dim; d++ {
			row[d] = center + rng.NormFloat64()
		}
		x[i] = row
		y[i] = label
	}
	return x, y
}

func TestTrainGBMSeparatesBlobs(t *testing.T) {
	x, y := makeBlobs(400, 4, 11)
	m, err := TrainGBM(x, y, GBMConfig{Trees: 40, Seed: 1})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	testX, testY := makeBlobs(400, 4, 99)
	c := Evaluate(m.ScoreAll(testX), testY, 0.5)
	if acc := c.Accuracy(); acc < 0.9 {
		t.Errorf("holdout accuracy = %v, want >= 0.9 (%s)", acc, c)
	}
	if auc := AUC(m.ScoreAll(testX), testY); auc < 0.95 {
		t.Errorf("holdout AUC = %v, want >= 0.95", auc)
	}
}

func TestGBMScoreInUnitInterval(t *testing.T) {
	x, y := makeBlobs(200, 3, 5)
	m, err := TrainGBM(x, y, GBMConfig{Trees: 30, Seed: 2})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	rng := rand.New(rand.NewSource(0))
	for i := 0; i < 500; i++ {
		probe := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		s := m.Score(probe)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("Score = %v, outside [0,1]", s)
		}
	}
}

func TestGBMDeterministicForSeed(t *testing.T) {
	x, y := makeBlobs(200, 3, 7)
	m1, err := TrainGBM(x, y, GBMConfig{Trees: 20, Seed: 42})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	m2, err := TrainGBM(x, y, GBMConfig{Trees: 20, Seed: 42})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	probe := []float64{0.3, -0.2, 0.5}
	if a, b := m1.Score(probe), m2.Score(probe); a != b {
		t.Errorf("same seed, different scores: %v vs %v", a, b)
	}
	m3, err := TrainGBM(x, y, GBMConfig{Trees: 20, Seed: 43})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	if a, b := m1.Score(probe), m3.Score(probe); a == b {
		t.Logf("note: different seeds produced identical scores (possible but unlikely): %v", a)
	}
}

func TestGBMPredictThreshold(t *testing.T) {
	x, y := makeBlobs(300, 2, 3)
	m, err := TrainGBM(x, y, GBMConfig{Trees: 30, Seed: 3})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	probe := []float64{1, 1}
	s := m.Score(probe)
	if s >= 0.99 {
		t.Skip("degenerate: score too close to 1 for threshold test")
	}
	// Predict must agree with a manual threshold comparison.
	for _, thr := range []float64{0.1, 0.5, 0.7, 0.99} {
		want := 0
		if s >= thr {
			want = 1
		}
		if got := m.Predict(probe, thr); got != want {
			t.Errorf("Predict(thr=%v) = %d, want %d (score %v)", thr, got, want, s)
		}
	}
}

func TestGBMTrainErrors(t *testing.T) {
	if _, err := TrainGBM(nil, nil, GBMConfig{}); err == nil {
		t.Error("empty training set: want error")
	}
	if _, err := TrainGBM([][]float64{{1}}, []int{1, 0}, GBMConfig{}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := TrainGBM([][]float64{{1}, {2}}, []int{1, 1}, GBMConfig{}); err == nil {
		t.Error("single class: want error")
	}
	if _, err := TrainGBM([][]float64{{1}, {2}}, []int{1, 2}, GBMConfig{}); err == nil {
		t.Error("bad label: want error")
	}
	if _, err := TrainGBM([][]float64{{1}, {2, 3}}, []int{0, 1}, GBMConfig{}); err == nil {
		t.Error("ragged rows: want error")
	}
}

func TestGBMSaveLoadRoundTrip(t *testing.T) {
	x, y := makeBlobs(150, 3, 9)
	m, err := TrainGBM(x, y, GBMConfig{Trees: 15, Seed: 4})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := LoadGBM(&buf)
	if err != nil {
		t.Fatalf("LoadGBM: %v", err)
	}
	for i := 0; i < 20; i++ {
		probe := x[i]
		if a, b := m.Score(probe), back.Score(probe); math.Abs(a-b) > 1e-12 {
			t.Fatalf("roundtrip score mismatch: %v vs %v", a, b)
		}
	}
}

func TestLoadGBMRejectsGarbage(t *testing.T) {
	if _, err := LoadGBM(strings.NewReader("not json")); err == nil {
		t.Error("garbage input: want error")
	}
	if _, err := LoadGBM(strings.NewReader(`{"feature_count":0,"trees":[]}`)); err == nil {
		t.Error("empty model: want error")
	}
}

func TestGBMFeatureImportance(t *testing.T) {
	// Feature 0 carries all the signal; importance must concentrate there.
	rng := rand.New(rand.NewSource(10))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % 2
		sig := -1.0
		if label == 1 {
			sig = 1.0
		}
		x[i] = []float64{sig + rng.NormFloat64()*0.3, rng.NormFloat64(), rng.NormFloat64()}
		y[i] = label
	}
	m, err := TrainGBM(x, y, GBMConfig{Trees: 30, Seed: 5})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length = %d, want 3", len(imp))
	}
	if imp[0] <= imp[1] || imp[0] <= imp[2] {
		t.Errorf("importance = %v, want feature 0 dominant", imp)
	}
}

func TestGBMSubsampleStochastic(t *testing.T) {
	x, y := makeBlobs(300, 3, 20)
	m, err := TrainGBM(x, y, GBMConfig{Trees: 25, Subsample: 0.5, Seed: 6})
	if err != nil {
		t.Fatalf("TrainGBM with subsample: %v", err)
	}
	testX, testY := makeBlobs(200, 3, 77)
	if auc := AUC(m.ScoreAll(testX), testY); auc < 0.9 {
		t.Errorf("stochastic GBM AUC = %v, want >= 0.9", auc)
	}
}

func TestGBMFeatureFraction(t *testing.T) {
	x, y := makeBlobs(300, 6, 21)
	m, err := TrainGBM(x, y, GBMConfig{Trees: 30, FeatureFraction: 0.5, Seed: 7})
	if err != nil {
		t.Fatalf("TrainGBM with feature fraction: %v", err)
	}
	testX, testY := makeBlobs(200, 6, 78)
	if auc := AUC(m.ScoreAll(testX), testY); auc < 0.9 {
		t.Errorf("column-sampled GBM AUC = %v, want >= 0.9", auc)
	}
}

func TestGBMInitScoreIsLogOdds(t *testing.T) {
	// 3 positives of 4 ⇒ F0 = ln(0.75/0.25) = ln 3.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{1, 1, 1, 0}
	m, err := TrainGBM(x, y, GBMConfig{Trees: 1, MinLeaf: 1, Seed: 8})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	if want := math.Log(3); math.Abs(m.InitScore-want) > 1e-12 {
		t.Errorf("InitScore = %v, want %v", m.InitScore, want)
	}
}

func TestSigmoidBounds(t *testing.T) {
	if sigmoid(1000) != 1 || sigmoid(-1000) != 0 {
		t.Error("sigmoid overflow guard failed")
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Error("sigmoid(0) != 0.5")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(50)
		k := 1 + rng.Intn(n)
		got := sampleWithoutReplacement(rng, n, k)
		if len(got) != k {
			t.Fatalf("len = %d, want %d", len(got), k)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("value %d outside [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}
