package ml

import (
	"math"
	"math/rand"
	"testing"
)

// trainContribModel fits a small GBM on a synthetic two-feature problem
// where feature 0 carries the signal and feature 2 is pure noise.
func trainContribModel(t *testing.T) (*GBM, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n, dim := 400, 4
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0]+0.3*row[1] > 0.6 {
			y[i] = 1
		}
	}
	m, err := TrainGBM(x, y, GBMConfig{Trees: 40, MaxDepth: 3, Seed: 9})
	if err != nil {
		t.Fatalf("TrainGBM: %v", err)
	}
	return m, x
}

func TestContributionsReassembleScore(t *testing.T) {
	m, x := trainContribModel(t)
	for _, row := range x[:50] {
		contrib, bias := m.Contributions(row)
		sum := bias
		for _, c := range contrib {
			sum += c
		}
		if got, want := sigmoid(sum), m.Score(row); math.Abs(got-want) > 1e-9 {
			t.Fatalf("sigmoid(bias+Σcontrib) = %v, Score = %v", got, want)
		}
	}
}

func TestContributionsTrackSignalFeature(t *testing.T) {
	m, x := trainContribModel(t)
	// Across the sample, the signal feature must accumulate far more
	// absolute attribution than the noise features.
	var mass [4]float64
	for _, row := range x {
		contrib, _ := m.Contributions(row)
		for j, c := range contrib {
			mass[j] += math.Abs(c)
		}
	}
	if mass[0] <= mass[2] || mass[0] <= mass[3] {
		t.Errorf("signal feature mass %v not dominant over noise %v, %v", mass[0], mass[2], mass[3])
	}
}

func TestContributionsConcurrent(t *testing.T) {
	m, x := trainContribModel(t)
	// The node-expectation cache initializes lazily; hammer it from
	// several goroutines (run with -race).
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for _, row := range x[:20] {
				m.Contributions(row)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestNodeMeansChildBeforeParentOrder(t *testing.T) {
	// A tree whose children are stored before their parent (legal for
	// Predict, which follows indices) must still produce correct
	// expectations — explanations cannot depend on FitTree's storage
	// order once models round-trip through JSON or external tools.
	tr := &Tree{Nodes: []TreeNode{
		{Feature: 0, Threshold: 0.5, Left: 2, Right: 1},
		{Feature: -1, Value: 4},
		{Feature: -1, Value: 2},
	}}
	vals := nodeMeans(tr)
	if vals[0] != 3 || vals[1] != 4 || vals[2] != 2 {
		t.Errorf("nodeMeans = %v, want [3 4 2]", vals)
	}
}

func TestNodeMeansSingleLeaf(t *testing.T) {
	tr := &Tree{Nodes: []TreeNode{{Feature: -1, Value: 2.5}}}
	vals := nodeMeans(tr)
	if len(vals) != 1 || vals[0] != 2.5 {
		t.Errorf("nodeMeans = %v, want [2.5]", vals)
	}
	if vals := nodeMeans(&Tree{}); len(vals) != 0 {
		t.Errorf("empty tree: %v", vals)
	}
}
