package ml

import (
	"math"
	"testing"
)

func TestTrainForestSeparatesBlobs(t *testing.T) {
	x, y := makeBlobs(400, 4, 19)
	f, err := TrainForest(x, y, ForestConfig{Trees: 40, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	teX, teY := makeBlobs(300, 4, 91)
	c := Evaluate(f.ScoreAll(teX), teY, 0.5)
	if acc := c.Accuracy(); acc < 0.9 {
		t.Errorf("forest accuracy = %v, want >= 0.9 (%s)", acc, c)
	}
	if auc := AUC(f.ScoreAll(teX), teY); auc < 0.95 {
		t.Errorf("forest AUC = %v", auc)
	}
}

func TestForestScoreBounds(t *testing.T) {
	x, y := makeBlobs(200, 3, 23)
	f, err := TrainForest(x, y, ForestConfig{Trees: 20, Seed: 2})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	for _, row := range x {
		s := f.Score(row)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v out of [0,1]", s)
		}
	}
	var empty RandomForest
	if empty.Score([]float64{1}) != 0 {
		t.Error("empty forest must score 0")
	}
}

func TestForestErrors(t *testing.T) {
	if _, err := TrainForest(nil, nil, ForestConfig{}); err == nil {
		t.Error("empty training: want error")
	}
	if _, err := TrainForest([][]float64{{1}, {2}}, []int{0, 0}, ForestConfig{}); err == nil {
		t.Error("single class: want error")
	}
	if _, err := TrainForest([][]float64{{1}, {2}}, []int{0, 2}, ForestConfig{}); err == nil {
		t.Error("bad label: want error")
	}
}

func TestForestDeterministic(t *testing.T) {
	x, y := makeBlobs(150, 3, 29)
	f1, err := TrainForest(x, y, ForestConfig{Trees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := TrainForest(x, y, ForestConfig{Trees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.1, -0.4, 0.9}
	if f1.Score(probe) != f2.Score(probe) {
		t.Error("same seed, different forests")
	}
}
