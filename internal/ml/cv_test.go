package ml

import (
	"strings"
	"testing"
)

func TestStratifiedKFoldBalance(t *testing.T) {
	labels := make([]int, 100)
	for i := 80; i < 100; i++ {
		labels[i] = 1 // 20% positive
	}
	fold, err := StratifiedKFold(labels, 5, 1)
	if err != nil {
		t.Fatalf("StratifiedKFold: %v", err)
	}
	if len(fold) != 100 {
		t.Fatalf("fold assignments = %d", len(fold))
	}
	posPerFold := make([]int, 5)
	totPerFold := make([]int, 5)
	for i, f := range fold {
		if f < 0 || f >= 5 {
			t.Fatalf("fold %d outside range", f)
		}
		totPerFold[f]++
		if labels[i] == 1 {
			posPerFold[f]++
		}
	}
	for f := 0; f < 5; f++ {
		if totPerFold[f] != 20 {
			t.Errorf("fold %d size = %d, want 20", f, totPerFold[f])
		}
		if posPerFold[f] != 4 {
			t.Errorf("fold %d positives = %d, want 4 (stratified)", f, posPerFold[f])
		}
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	if _, err := StratifiedKFold([]int{0, 1}, 1, 0); err == nil {
		t.Error("k=1: want error")
	}
	if _, err := StratifiedKFold([]int{0, 1}, 5, 0); err == nil {
		t.Error("too few samples: want error")
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	labels := make([]int, 50)
	for i := 0; i < 25; i++ {
		labels[i] = 1
	}
	a, err := StratifiedKFold(labels, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StratifiedKFold(labels, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different folds")
		}
	}
}

func TestCrossValidateGBM(t *testing.T) {
	x, y := makeBlobs(300, 3, 13)
	res, err := CrossValidateGBM(x, y, 5, 0.5, GBMConfig{Trees: 20, Seed: 3})
	if err != nil {
		t.Fatalf("CrossValidateGBM: %v", err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d, want 5", len(res.Folds))
	}
	if res.Pooled.Total() != 300 {
		t.Errorf("pooled total = %d, want 300 (every sample scored exactly once)", res.Pooled.Total())
	}
	if res.Pooled.Accuracy() < 0.85 {
		t.Errorf("CV accuracy = %v, want >= 0.85", res.Pooled.Accuracy())
	}
	if res.AUCMean < 0.9 || res.AUCMean > 1 {
		t.Errorf("AUCMean = %v", res.AUCMean)
	}
	if len(res.Scores) != 300 || len(res.Labels) != 300 {
		t.Errorf("pooled scores/labels = %d/%d", len(res.Scores), len(res.Labels))
	}
}

func TestCrossValidateGBMPropagatesError(t *testing.T) {
	// All labels in one fold's training set could still be fine; force an
	// error with k too large instead.
	x, y := makeBlobs(4, 2, 1)
	if _, err := CrossValidateGBM(x, y, 10, 0.5, GBMConfig{Trees: 2}); err == nil {
		t.Error("want error for k > n")
	} else if !strings.Contains(err.Error(), "folds") {
		t.Logf("error text: %v", err)
	}
}
