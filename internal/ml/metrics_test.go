package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestEvaluateAndRates(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.3, 0.6, 0.2}
	labels := []int{1, 1, 1, 0, 0, 0}
	c := Evaluate(scores, labels, 0.5)
	// preds: 1,1,0,0,1,0 → TP=2 FN=1 FP=1 TN=2
	want := Confusion{TP: 2, FP: 1, TN: 2, FN: 1}
	if c != want {
		t.Fatalf("Evaluate = %+v, want %+v", c, want)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.FPR(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("FPR = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", got)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionZeroDivisions(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.FPR() != 0 || c.Accuracy() != 0 {
		t.Error("zero-valued confusion must return 0 rates, not NaN")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	points := ROC(scores, labels)
	if len(points) < 3 {
		t.Fatalf("ROC points = %d", len(points))
	}
	if got := AUC(scores, labels); got != 1 {
		t.Errorf("AUC = %v, want 1 for perfect separation", got)
	}
	first, last := points[0], points[len(points)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("ROC must start at (0,0), got (%v,%v)", first.FPR, first.TPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("ROC must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
}

func TestROCWorstAndRandom(t *testing.T) {
	// Inverted classifier: AUC = 0.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
	// Constant scores: single diagonal step, AUC = 0.5 (ties half-counted).
	scores = []float64{0.5, 0.5, 0.5, 0.5}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("constant-score AUC = %v, want 0.5", got)
	}
}

func TestROCMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	scores := make([]float64, 500)
	labels := make([]int, 500)
	for i := range scores {
		labels[i] = rng.Intn(2)
		scores[i] = rng.Float64()
	}
	points := ROC(scores, labels)
	for i := 1; i < len(points); i++ {
		if points[i].FPR < points[i-1].FPR || points[i].TPR < points[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, points[i-1], points[i])
		}
	}
	if auc := AUC(scores, labels); auc < 0 || auc > 1 {
		t.Errorf("AUC = %v outside [0,1]", auc)
	}
}

func TestAUCMatchesPairwiseProbability(t *testing.T) {
	// AUC must equal P(score+ > score−) + ½P(tie) computed by brute force.
	rng := rand.New(rand.NewSource(5))
	scores := make([]float64, 120)
	labels := make([]int, 120)
	for i := range scores {
		labels[i] = rng.Intn(2)
		scores[i] = math.Round(rng.Float64()*10) / 10 // coarse → many ties
	}
	var wins, ties, pairs float64
	for i := range scores {
		if labels[i] != 1 {
			continue
		}
		for j := range scores {
			if labels[j] != 0 {
				continue
			}
			pairs++
			switch {
			case scores[i] > scores[j]:
				wins++
			case scores[i] == scores[j]:
				ties++
			}
		}
	}
	want := (wins + ties/2) / pairs
	if got := AUC(scores, labels); math.Abs(got-want) > 1e-9 {
		t.Errorf("AUC = %v, brute force = %v", got, want)
	}
}

func TestROCEdgeCases(t *testing.T) {
	if pts := ROC(nil, nil); pts != nil {
		t.Error("empty input must yield nil")
	}
	// Single class: undefined, nil.
	if pts := ROC([]float64{0.5, 0.6}, []int{1, 1}); pts != nil {
		t.Error("single-class input must yield nil")
	}
	if auc := AUC([]float64{0.5}, []int{1}); auc != 0 {
		t.Errorf("degenerate AUC = %v, want 0", auc)
	}
}

func TestPRCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2}
	labels := []int{1, 0, 1, 0}
	points := PRCurve(scores, labels)
	if len(points) != 4 {
		t.Fatalf("PR points = %d, want 4", len(points))
	}
	// First point: only 0.9 predicted positive → precision 1, recall 0.5.
	if points[0].Precision != 1 || points[0].Recall != 0.5 {
		t.Errorf("first PR point = %+v", points[0])
	}
	// Last point: recall must reach 1.
	if points[len(points)-1].Recall != 1 {
		t.Errorf("last PR recall = %v, want 1", points[len(points)-1].Recall)
	}
	// Recall non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].Recall < points[i-1].Recall {
			t.Errorf("recall decreased at %d", i)
		}
	}
}

func TestPRCurveEdgeCases(t *testing.T) {
	if pts := PRCurve(nil, nil); pts != nil {
		t.Error("empty input must yield nil")
	}
	if pts := PRCurve([]float64{0.1}, []int{0}); pts != nil {
		t.Error("no positives must yield nil")
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	s := c.String()
	for _, want := range []string{"TP=1", "FP=2", "TN=3", "FN=4"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
