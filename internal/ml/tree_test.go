package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitTreeSimpleSplit(t *testing.T) {
	// One feature perfectly separates targets 0 and 10.
	x := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	target := []float64{0, 0, 0, 10, 10, 10}
	idx := []int{0, 1, 2, 3, 4, 5}
	tree, leaves, err := FitTree(x, target, idx, nil, TreeConfig{MaxDepth: 2, MinLeaf: 1})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	if got := tree.Predict([]float64{2}); got != 0 {
		t.Errorf("Predict(2) = %v, want 0", got)
	}
	if got := tree.Predict([]float64{11}); got != 10 {
		t.Errorf("Predict(11) = %v, want 10", got)
	}
	// Every sample lands in exactly one leaf.
	seen := map[int]bool{}
	for _, samples := range leaves {
		for _, s := range samples {
			if seen[s] {
				t.Errorf("sample %d in multiple leaves", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != len(idx) {
		t.Errorf("leaves cover %d samples, want %d", len(seen), len(idx))
	}
}

func TestFitTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	target := []float64{5, 5, 5}
	tree, _, err := FitTree(x, target, []int{0, 1, 2}, nil, TreeConfig{})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	// No variance to reduce: single leaf predicting 5.
	if len(tree.Nodes) != 1 {
		t.Errorf("nodes = %d, want 1 (pure leaf)", len(tree.Nodes))
	}
	if got := tree.Predict([]float64{99}); got != 5 {
		t.Errorf("Predict = %v, want 5", got)
	}
}

func TestFitTreeConstantFeature(t *testing.T) {
	x := [][]float64{{7}, {7}, {7}, {7}}
	target := []float64{0, 1, 0, 1}
	tree, _, err := FitTree(x, target, []int{0, 1, 2, 3}, nil, TreeConfig{})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	if got := tree.Predict([]float64{7}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Predict = %v, want 0.5 (mean, unsplittable)", got)
	}
}

func TestFitTreeErrors(t *testing.T) {
	if _, _, err := FitTree(nil, nil, nil, nil, TreeConfig{}); err == nil {
		t.Error("empty input: want error")
	}
	if _, _, err := FitTree([][]float64{{1}}, []float64{1, 2}, []int{0}, nil, TreeConfig{}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, _, err := FitTree([][]float64{{1}}, []float64{1}, nil, nil, TreeConfig{}); err == nil {
		t.Error("empty idx: want error")
	}
}

func TestFitTreeMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([][]float64, n)
	target := make([]float64, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64()}
		target[i] = rng.Float64()
		idx[i] = i
	}
	minLeaf := 20
	_, leaves, err := FitTree(x, target, idx, nil, TreeConfig{MaxDepth: 6, MinLeaf: minLeaf})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	for leaf, samples := range leaves {
		if len(samples) < minLeaf {
			t.Errorf("leaf %d has %d samples, min %d", leaf, len(samples), minLeaf)
		}
	}
}

func TestFitTreeDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	x := make([][]float64, n)
	target := make([]float64, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		target[i] = x[i][0]*3 + x[i][1]
		idx[i] = i
	}
	maxDepth := 3
	tree, _, err := FitTree(x, target, idx, nil, TreeConfig{MaxDepth: maxDepth, MinLeaf: 1})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	// Max nodes for depth d: 2^(d+1) − 1.
	if limit := 1<<(maxDepth+1) - 1; len(tree.Nodes) > limit {
		t.Errorf("nodes = %d exceeds depth-%d limit %d", len(tree.Nodes), maxDepth, limit)
	}
	var depth func(i, d int) int
	depth = func(i, d int) int {
		n := tree.Nodes[i]
		if n.Feature < 0 {
			return d
		}
		l := depth(n.Left, d+1)
		r := depth(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if got := depth(0, 0); got > maxDepth {
		t.Errorf("tree depth = %d, max %d", got, maxDepth)
	}
}

func TestTreePredictionWithinTargetRange(t *testing.T) {
	// Property: leaf values are means of training targets, so predictions
	// stay within [min(target), max(target)].
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(100)
		x := make([][]float64, n)
		target := make([]float64, n)
		idx := make([]int, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			target[i] = rng.NormFloat64() * 10
			idx[i] = i
			lo = math.Min(lo, target[i])
			hi = math.Max(hi, target[i])
		}
		tree, _, err := FitTree(x, target, idx, nil, TreeConfig{MaxDepth: 4, MinLeaf: 2})
		if err != nil {
			t.Fatalf("FitTree: %v", err)
		}
		for probe := 0; probe < 20; probe++ {
			p := tree.Predict([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
			if p < lo-1e-9 || p > hi+1e-9 {
				t.Fatalf("prediction %v outside target range [%v,%v]", p, lo, hi)
			}
		}
	}
}

func TestFeatureSubsetRespected(t *testing.T) {
	// Feature 0 is perfectly predictive, feature 1 is noise; restricting
	// the tree to feature 1 must prevent it from using feature 0.
	x := [][]float64{{0, 5}, {0, 6}, {1, 5}, {1, 6}}
	target := []float64{0, 0, 1, 1}
	tree, _, err := FitTree(x, target, []int{0, 1, 2, 3}, []int{1}, TreeConfig{MaxDepth: 3, MinLeaf: 1})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	for _, n := range tree.Nodes {
		if n.Feature == 0 {
			t.Error("tree used feature 0 outside the allowed subset")
		}
	}
}

func TestLeafIndexMatchesPredict(t *testing.T) {
	x := [][]float64{{1}, {2}, {10}, {11}}
	target := []float64{0, 0, 1, 1}
	tree, _, err := FitTree(x, target, []int{0, 1, 2, 3}, nil, TreeConfig{MaxDepth: 2, MinLeaf: 1})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	for _, probe := range [][]float64{{0}, {5}, {100}} {
		leaf := tree.LeafIndex(probe)
		if got := tree.Nodes[leaf].Value; got != tree.Predict(probe) {
			t.Errorf("LeafIndex/Predict mismatch at %v: %v vs %v", probe, got, tree.Predict(probe))
		}
	}
}

func TestEmptyTreePredict(t *testing.T) {
	var tree Tree
	if got := tree.Predict([]float64{1}); got != 0 {
		t.Errorf("empty tree Predict = %v, want 0", got)
	}
}
