package ml

import (
	"math"
	"math/rand"
	"testing"

	"knowphish/internal/racecheck"
)

// trainFlatFixture fits a small but non-trivial ensemble on a noisy
// two-signal problem, exercising multi-level trees and both classes.
func trainFlatFixture(t testing.TB) (*GBM, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const n, dim = 400, 12
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		if row[2]+0.5*row[7] > 0.2 {
			y[i] = 1
		}
	}
	m, err := TrainGBM(x, y, GBMConfig{Trees: 40, MaxDepth: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m, x
}

func TestFlatScoreMatchesReference(t *testing.T) {
	m, x := trainFlatFixture(t)
	for i, row := range x {
		got, want := m.Score(row), m.ScoreReference(row)
		if got != want {
			t.Fatalf("row %d: flat score %v != reference %v (must be bit-for-bit)", i, got, want)
		}
	}
	// Short and over-long vectors take the out-of-range branch of the
	// split comparison; both layouts must agree there too.
	for _, row := range [][]float64{nil, {1.5}, append(append([]float64{}, x[0]...), 9, 9, 9)} {
		if got, want := m.Score(row), m.ScoreReference(row); got != want {
			t.Fatalf("len %d: flat score %v != reference %v", len(row), got, want)
		}
	}
}

// TestFlatHandlesHandEditedTrees covers models whose node storage order
// did not come from FitTree: as long as Predict can walk a tree, the
// flattened layout must reproduce it, including unreachable nodes
// (dropped) and empty trees (predict 0).
func TestFlatHandlesHandEditedTrees(t *testing.T) {
	m := &GBM{
		Config:       GBMConfig{LearningRate: 0.5}.withDefaults(),
		InitScore:    -0.25,
		FeatureCount: 2,
		Trees: []Tree{
			// Children stored before the root; node 3 unreachable.
			{Nodes: []TreeNode{
				{Feature: -1, Value: 2},
				{Feature: -1, Value: -3},
				{Feature: 0, Threshold: 1.5, Left: 0, Right: 1},
				{Feature: -1, Value: 99},
			}},
			{}, // empty tree
			{Nodes: []TreeNode{{Feature: -1, Value: 1}}},
		},
	}
	// Re-point tree 0's root: Predict starts at index 0, so wrap the
	// stored-out-of-order shape by making index 0 the split node.
	m.Trees[0].Nodes[0], m.Trees[0].Nodes[2] = m.Trees[0].Nodes[2], m.Trees[0].Nodes[0]
	m.Trees[0].Nodes[0].Left, m.Trees[0].Nodes[0].Right = 2, 1
	for _, x := range [][]float64{{0, 0}, {2, 0}, {1.5, -1}} {
		if got, want := m.Score(x), m.ScoreReference(x); got != want {
			t.Fatalf("x=%v: flat %v != reference %v", x, got, want)
		}
	}
	if f := m.flatten(); len(f.nodes) != 3+1+1 {
		t.Fatalf("flat layout kept %d nodes, want 5 (unreachable node must be dropped)", len(f.nodes))
	}
}

// TestScoreBatchMatchesScore pins the node-major batch kernel to the
// per-row walk bit-for-bit, across batch sizes (including rows of
// mismatched width, which take the out-of-range split branch) — the
// tree-interleaved traversal is a cache optimization, not a numerical
// change.
func TestScoreBatchMatchesScore(t *testing.T) {
	m, x := trainFlatFixture(t)
	ragged := append([][]float64{nil, {1.5}}, x...)
	for _, size := range []int{1, 2, 7, 64, len(ragged)} {
		batch := ragged[:size]
		out := make([]float64, size)
		m.ScoreBatchInto(out, batch)
		for i, row := range batch {
			if want := m.Score(row); out[i] != want {
				t.Fatalf("size %d row %d: batch score %v != Score %v (must be bit-for-bit)", size, i, out[i], want)
			}
		}
	}
	m.ScoreBatchInto(nil, nil) // empty batch is a no-op
}

// TestScoreBatchDoesNotAllocate pins the coalescer's scoring kernel off
// the heap: the caller supplies both slices, so a warm batch pass must
// not touch the allocator.
func TestScoreBatchDoesNotAllocate(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m, x := trainFlatFixture(t)
	batch := x[:32]
	out := make([]float64, len(batch))
	m.ScoreBatchInto(out, batch) // build the flat layout outside the measured runs
	allocs := testing.AllocsPerRun(100, func() {
		m.ScoreBatchInto(out, batch)
	})
	if allocs != 0 {
		t.Fatalf("ScoreBatchInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestFlatScoreDoesNotAllocate(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m, x := trainFlatFixture(t)
	m.Score(x[0]) // build the flat layout outside the measured runs
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		sink = m.Score(x[0])
	})
	if allocs != 0 {
		t.Fatalf("Score allocated %.1f times per run, want 0", allocs)
	}
	if math.IsNaN(sink) {
		t.Fatal("NaN score")
	}
}
