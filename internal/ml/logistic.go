package ml

import (
	"fmt"
	"math/rand"
)

// SparseVector is a sparse feature vector as (index, value) pairs, used by
// the bag-of-words baselines whose dimensionality (hashed n-grams over
// URLs) is far too large for dense rows.
type SparseVector []SparseEntry

// SparseEntry is one non-zero coordinate of a SparseVector.
type SparseEntry struct {
	Index int     `json:"i"`
	Value float64 `json:"v"`
}

// LRConfig controls logistic-regression training.
type LRConfig struct {
	// Dim is the weight-vector dimensionality (hashing-trick space).
	// Required, > 0.
	Dim int
	// Epochs is the number of SGD passes (default 5).
	Epochs int
	// LearningRate is the SGD step size (default 0.1).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-6).
	L2 float64
	// Seed drives example shuffling.
	Seed int64
}

func (c LRConfig) withDefaults() (LRConfig, error) {
	if c.Dim <= 0 {
		return c, fmt.Errorf("ml: logistic regression requires Dim > 0, got %d", c.Dim)
	}
	if c.Epochs < 1 {
		c.Epochs = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 1e-6
	}
	return c, nil
}

// LogisticRegression is a sparse binary logistic classifier trained with
// SGD, standing in for the online learners of the Ma et al. baseline.
type LogisticRegression struct {
	Weights []float64 `json:"weights"`
	Bias    float64   `json:"bias"`
}

// TrainLogistic fits the model on sparse rows x with labels y in {0,1}.
func TrainLogistic(x []SparseVector, y []int, cfg LRConfig) (*LogisticRegression, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: TrainLogistic: %d samples vs %d labels", len(x), len(y))
	}
	m := &LogisticRegression{Weights: make([]float64, cfg.Dim)}
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		lr := cfg.LearningRate / (1 + float64(e)) // simple decay
		for _, i := range order {
			p := m.Score(x[i])
			g := p - float64(y[i])
			m.Bias -= lr * g
			for _, ent := range x[i] {
				if ent.Index < 0 || ent.Index >= cfg.Dim {
					continue
				}
				w := m.Weights[ent.Index]
				m.Weights[ent.Index] = w - lr*(g*ent.Value+cfg.L2*w)
			}
		}
	}
	return m, nil
}

// Score returns the positive-class probability for x.
func (m *LogisticRegression) Score(x SparseVector) float64 {
	z := m.Bias
	for _, ent := range x {
		if ent.Index >= 0 && ent.Index < len(m.Weights) {
			z += m.Weights[ent.Index] * ent.Value
		}
	}
	return sigmoid(z)
}

// ScoreAll maps Score over rows.
func (m *LogisticRegression) ScoreAll(x []SparseVector) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = m.Score(x[i])
	}
	return out
}

// HashFeature maps a string token into the hashing-trick space [0, dim).
// FNV-1a, stdlib-free for inlining.
func HashFeature(token string, dim int) int {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(token); i++ {
		h ^= uint32(token[i])
		h *= prime
	}
	return int(h % uint32(dim))
}
