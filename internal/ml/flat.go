package ml

// Flattened inference layout for the boosted ensemble. The JSON model
// keeps its per-tree []TreeNode representation (40 bytes per node, one
// slice per tree) because that is the serialization and training
// format; serving traffic never walks it. On first Score the ensemble
// is flattened once into a single contiguous node array shared by all
// trees — 24 bytes per node, children addressed by absolute index, leaf
// values packed into the threshold slot — so a prediction is a tight
// loop over one cache-friendly slice with no per-tree slice headers, no
// interface calls and zero allocation.
//
// Flattening is layout-only: nodes are re-emitted in the order Predict
// would visit them (pre-order, left first), thresholds, values and the
// per-tree accumulation order are untouched, so flat scores are
// bit-for-bit identical to the reference tree walk (pinned by
// TestFlatScoreMatchesReference).

// flatNode is one node of the flattened ensemble. Internal nodes use
// thrVal as the split threshold; leaves (feature < 0) use it as the
// leaf value, which keeps the struct at 24 bytes instead of 32.
type flatNode struct {
	thrVal  float64
	feature int32 // split feature index, or -1 for a leaf
	left    int32 // absolute index in flatGBM.nodes
	right   int32
}

// flatGBM is the immutable inference view of a GBM.
type flatGBM struct {
	nodes []flatNode
	roots []int32 // one root index per tree, in boosting order
	lr    float64
	init  float64
}

// flatten builds (once) and returns the flattened ensemble. Models are
// shared by pointer and immutable once published, so the sync.Once is
// an atomic load on the hot path after the first call.
func (m *GBM) flatten() *flatGBM {
	m.flatOnce.Do(func() {
		f := &flatGBM{
			roots: make([]int32, 0, len(m.Trees)),
			lr:    m.Config.LearningRate,
			init:  m.InitScore,
		}
		n := 0
		for i := range m.Trees {
			n += len(m.Trees[i].Nodes)
		}
		f.nodes = make([]flatNode, 0, n)
		for i := range m.Trees {
			f.roots = append(f.roots, f.appendTree(&m.Trees[i]))
		}
		m.flat = f
	})
	return m.flat
}

// appendTree re-emits the nodes of t reachable from its root into the
// shared array, pre-order with the left subtree first, and returns the
// new root index. Unreachable nodes are dropped — Predict can never
// visit them. An empty tree becomes a zero-value leaf, preserving the
// reference walk's "empty tree predicts 0" contract.
func (f *flatGBM) appendTree(t *Tree) int32 {
	if len(t.Nodes) == 0 {
		f.nodes = append(f.nodes, flatNode{feature: -1})
		return int32(len(f.nodes) - 1)
	}
	var emit func(old int) int32
	emit = func(old int) int32 {
		n := t.Nodes[old]
		at := int32(len(f.nodes))
		if n.Feature < 0 {
			f.nodes = append(f.nodes, flatNode{thrVal: n.Value, feature: -1})
			return at
		}
		f.nodes = append(f.nodes, flatNode{thrVal: n.Threshold, feature: int32(n.Feature)})
		l := emit(n.Left)
		r := emit(n.Right)
		f.nodes[at].left = l
		f.nodes[at].right = r
		return at
	}
	return emit(0)
}

// rawBatch accumulates raw (log-odds) scores for every row of xs into
// out (len(out) must equal len(xs)) in node-major order: the outer loop
// walks trees, the inner loop rows, so one tree's nodes stay
// cache-resident while every row of the batch traverses them. A
// row-major loop re-streams the whole ensemble (thousands of nodes)
// through the cache once per row; tree-interleaving streams it once per
// batch. Per row the arithmetic is identical to raw — init, then each
// tree's leaf in boosting order — so batch scores are bit-for-bit equal
// to per-row scores (pinned by TestScoreBatchMatchesScore).
func (f *flatGBM) rawBatch(xs [][]float64, out []float64) {
	for j := range out {
		out[j] = f.init
	}
	lr := f.lr
	nodes := f.nodes
	for _, root := range f.roots {
		for j, x := range xs {
			i := root
			nx := int32(len(x))
			for {
				n := nodes[i]
				if n.feature < 0 {
					out[j] += lr * n.thrVal
					break
				}
				if n.feature < nx && x[n.feature] <= n.thrVal {
					i = n.left
				} else {
					i = n.right
				}
			}
		}
	}
}

// raw returns the ensemble's raw (log-odds) score for x, accumulated
// in the same per-tree order as the reference walk.
func (f *flatGBM) raw(x []float64) float64 {
	s := f.init
	lr := f.lr
	nodes := f.nodes
	nx := int32(len(x))
	for _, i := range f.roots {
		for {
			n := nodes[i]
			if n.feature < 0 {
				s += lr * n.thrVal
				break
			}
			if n.feature < nx && x[n.feature] <= n.thrVal {
				i = n.left
			} else {
				i = n.right
			}
		}
	}
	return s
}
