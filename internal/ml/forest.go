package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// ForestConfig controls random-forest training (used by the classifier-
// choice ablation; the paper selects gradient boosting, citing its
// feature-selection behaviour and overfitting robustness — the ablation
// quantifies that choice).
type ForestConfig struct {
	// Trees is the ensemble size (default 100).
	Trees int `json:"trees"`
	// MaxDepth limits each tree (default 8 — forests want deep trees).
	MaxDepth int `json:"max_depth"`
	// MinLeaf is the per-leaf minimum (default 2).
	MinLeaf int `json:"min_leaf"`
	// FeatureFraction is the per-split... per-tree column sample
	// (default sqrt(d)/d).
	FeatureFraction float64 `json:"feature_fraction"`
	// Seed drives bootstrap and column sampling.
	Seed int64 `json:"seed"`
}

func (c ForestConfig) withDefaults(dim int) ForestConfig {
	if c.Trees < 1 {
		c.Trees = 100
	}
	if c.MaxDepth < 1 {
		c.MaxDepth = 8
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 2
	}
	if c.FeatureFraction <= 0 || c.FeatureFraction > 1 {
		c.FeatureFraction = math.Sqrt(float64(dim)) / float64(dim)
	}
	return c
}

// RandomForest is a bagged ensemble of regression trees fit to class
// labels; Score averages the per-tree leaf means, giving a probability
// estimate in [0,1].
type RandomForest struct {
	Config ForestConfig `json:"config"`
	Trees  []Tree       `json:"trees"`
}

// TrainForest fits a random forest on x with binary labels y.
func TrainForest(x [][]float64, y []int, cfg ForestConfig) (*RandomForest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: TrainForest: %d samples vs %d labels", len(x), len(y))
	}
	dim := len(x[0])
	cfg = cfg.withDefaults(dim)
	target := make([]float64, len(y))
	var pos int
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("ml: TrainForest: label %d not in {0,1}", v)
		}
		target[i] = float64(v)
		pos += v
	}
	if pos == 0 || pos == len(y) {
		return nil, fmt.Errorf("ml: TrainForest: training set needs both classes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nFeat := int(cfg.FeatureFraction * float64(dim))
	if nFeat < 1 {
		nFeat = 1
	}
	f := &RandomForest{Config: cfg}
	treeCfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf}
	n := len(x)
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample with replacement.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		features := sampleWithoutReplacement(rng, dim, nFeat)
		tree, _, err := FitTree(x, target, idx, features, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("ml: TrainForest tree %d: %w", t, err)
		}
		f.Trees = append(f.Trees, *tree)
	}
	return f, nil
}

// Score returns the forest's positive-class probability estimate.
func (f *RandomForest) Score(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	var sum float64
	for i := range f.Trees {
		sum += f.Trees[i].Predict(x)
	}
	p := sum / float64(len(f.Trees))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ScoreAll maps Score over rows.
func (f *RandomForest) ScoreAll(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = f.Score(row)
	}
	return out
}
