package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// StratifiedKFold assigns each sample to one of k folds, preserving the
// class ratio in every fold. It returns a slice of fold assignments
// (fold[i] ∈ [0,k)). Deterministic for a given seed.
func StratifiedKFold(labels []int, k int, seed int64) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: StratifiedKFold: k=%d, need k >= 2", k)
	}
	if len(labels) < k {
		return nil, fmt.Errorf("ml: StratifiedKFold: %d samples for %d folds", len(labels), k)
	}
	rng := rand.New(rand.NewSource(seed))
	fold := make([]int, len(labels))
	// Per class, shuffle indices and deal them round-robin into folds.
	// Classes are visited in sorted order: ranging over the map would
	// consume the rng in nondeterministic order and break the
	// same-seed-same-folds contract.
	byClass := map[int][]int{}
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	classes := make([]int, 0, len(byClass))
	for l := range byClass {
		classes = append(classes, l)
	}
	sort.Ints(classes)
	for _, l := range classes {
		idx := byClass[l]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for j, i := range idx {
			fold[i] = j % k
		}
	}
	return fold, nil
}

// CVResult aggregates per-fold evaluation of a cross-validation run.
type CVResult struct {
	// Folds holds the per-fold confusion matrices at the discrimination
	// threshold used.
	Folds []Confusion `json:"folds"`
	// Pooled is the sum of all fold matrices (micro average).
	Pooled Confusion `json:"pooled"`
	// AUCMean is the mean per-fold AUC.
	AUCMean float64 `json:"auc_mean"`
	// Scores and Labels are pooled out-of-fold scores, usable for ROC
	// plots over the whole CV run.
	Scores []float64 `json:"-"`
	Labels []int     `json:"-"`
}

// CrossValidateGBM runs k-fold stratified cross-validation of a GBM with
// the given config, evaluating at threshold.
func CrossValidateGBM(x [][]float64, y []int, k int, threshold float64, cfg GBMConfig) (*CVResult, error) {
	fold, err := StratifiedKFold(y, k, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	res := &CVResult{}
	var aucSum float64
	for f := 0; f < k; f++ {
		var trX [][]float64
		var trY []int
		var teX [][]float64
		var teY []int
		for i := range x {
			if fold[i] == f {
				teX = append(teX, x[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, x[i])
				trY = append(trY, y[i])
			}
		}
		m, err := TrainGBM(trX, trY, cfg)
		if err != nil {
			return nil, fmt.Errorf("ml: CV fold %d: %w", f, err)
		}
		scores := m.ScoreAll(teX)
		c := Evaluate(scores, teY, threshold)
		res.Folds = append(res.Folds, c)
		res.Pooled.TP += c.TP
		res.Pooled.FP += c.FP
		res.Pooled.TN += c.TN
		res.Pooled.FN += c.FN
		aucSum += AUC(scores, teY)
		res.Scores = append(res.Scores, scores...)
		res.Labels = append(res.Labels, teY...)
	}
	res.AUCMean = aucSum / float64(k)
	return res, nil
}
