package ml

// Per-prediction feature attribution for the boosted ensemble, the
// model-side half of the explainable Verdict API. The method is the
// decision-path attribution of Saabas: every internal node carries an
// expected value (here the mean of its descendant leaves); walking the
// path root → leaf, the change of expectation at each split is credited
// to the split feature. The deltas telescope, so per tree
//
//	leaf value = root value + Σ path deltas
//
// holds exactly, and across the ensemble
//
//	raw score F(x) = bias + Σ_j contributions[j]
//
// with bias = InitScore + ν·Σ_t rootValue_t. Contributions are therefore
// exact in log-odds space: sigmoid of the reassembled sum reproduces
// Score(x) bit-for-bit up to float addition order.

// nodeMeans returns, for one tree, the mean descendant-leaf value of
// every node reachable from the root (leaves map to their own value;
// unreachable nodes stay 0, exactly the nodes Predict can never visit).
// The mean is unweighted: leaf sample counts are not serialized with
// the model, and for an explanation the unweighted expectation is a
// deterministic, loadable-model-compatible stand-in.
//
// The walk recurses from the root by child index rather than sweeping
// the slice, so it makes no assumption about node storage order — a
// model edited or produced outside FitTree explains correctly as long
// as Predict can walk it. Depth is bounded by the tree's own depth
// (single digits for boosted stumps).
func nodeMeans(t *Tree) []float64 {
	vals := make([]float64, len(t.Nodes))
	if len(t.Nodes) == 0 {
		return vals
	}
	var walk func(i int) (sum float64, n int)
	walk = func(i int) (float64, int) {
		node := t.Nodes[i]
		if node.Feature < 0 {
			vals[i] = node.Value
			return node.Value, 1
		}
		ls, ln := walk(node.Left)
		rs, rn := walk(node.Right)
		sum, n := ls+rs, ln+rn
		vals[i] = sum / float64(n)
		return sum, n
	}
	walk(0)
	return vals
}

// ensureNodeMeans computes and caches the per-tree node expectations.
func (m *GBM) ensureNodeMeans() [][]float64 {
	m.contribOnce.Do(func() {
		m.nodeVals = make([][]float64, len(m.Trees))
		for i := range m.Trees {
			m.nodeVals[i] = nodeMeans(&m.Trees[i])
		}
	})
	return m.nodeVals
}

// Contributions decomposes the raw (log-odds) score of x into a bias
// term plus one signed contribution per feature:
//
//	sigmoid(bias + Σ contrib[j]) == Score(x)
//
// A positive contribution pushed the page toward the phishing class, a
// negative one toward legitimate. The slice is indexed like x (the
// model's feature space; callers holding a column projection map it
// back). Safe for concurrent use.
func (m *GBM) Contributions(x []float64) (contrib []float64, bias float64) {
	contrib = make([]float64, m.FeatureCount)
	bias = m.InitScore
	means := m.ensureNodeMeans()
	lr := m.Config.LearningRate
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.Nodes) == 0 {
			continue
		}
		vals := means[ti]
		bias += lr * vals[0]
		i := 0
		for {
			n := t.Nodes[i]
			if n.Feature < 0 {
				break
			}
			var child int
			if n.Feature < len(x) && x[n.Feature] <= n.Threshold {
				child = n.Left
			} else {
				child = n.Right
			}
			if n.Feature < len(contrib) {
				contrib[n.Feature] += lr * (vals[child] - vals[i])
			}
			i = child
		}
	}
	return contrib, bias
}
