// Package ml is the machine-learning substrate the paper gets from
// scikit-learn: CART regression trees, stochastic gradient boosting
// (Friedman 2002, the paper's classifier, Section IV-C), logistic
// regression (used by the Ma et al. baseline), evaluation metrics
// (precision/recall/F1/FPR, ROC and AUC, precision–recall curves) and
// stratified cross-validation. Everything is deterministic given a seed.
package ml

import (
	"fmt"
	"math"
	"sort"
)

// TreeConfig controls regression-tree induction.
type TreeConfig struct {
	// MaxDepth limits tree depth; the root is at depth 0. Values < 1
	// default to 3.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf. Values < 1
	// default to 1.
	MinLeaf int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth < 1 {
		c.MaxDepth = 3
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 1
	}
	return c
}

// TreeNode is one node of a regression tree. Leaves have Feature == -1.
// Nodes are stored in a flat slice addressed by index so trees serialize
// naturally to JSON.
type TreeNode struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int `json:"f"`
	// Threshold splits samples: x[Feature] <= Threshold goes left.
	Threshold float64 `json:"t"`
	// Left and Right are child indices in Tree.Nodes; unset for leaves.
	Left  int `json:"l,omitempty"`
	Right int `json:"r,omitempty"`
	// Value is the prediction at a leaf.
	Value float64 `json:"v"`
}

// Tree is a CART regression tree fit by greedy variance reduction.
type Tree struct {
	Nodes []TreeNode `json:"nodes"`
}

// Predict returns the tree's output for feature vector x.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.Nodes) == 0 {
		return 0
	}
	i := 0
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if n.Feature < len(x) && x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// LeafIndex returns the index in t.Nodes of the leaf x falls into.
func (t *Tree) LeafIndex(x []float64) int {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Feature < 0 {
			return i
		}
		if n.Feature < len(x) && x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// treeBuilder carries the induction state.
type treeBuilder struct {
	x        [][]float64
	target   []float64
	cfg      TreeConfig
	features []int // candidate feature indices (column subsample)
	nodes    []TreeNode
	leaves   map[int][]int // leaf node index → sample indices
}

// FitTree builds a regression tree on samples idx (indices into x/target),
// splitting on the given candidate features. It returns the tree and, for
// boosting's Newton leaf step, the sample indices grouped per leaf node.
func FitTree(x [][]float64, target []float64, idx []int, features []int, cfg TreeConfig) (*Tree, map[int][]int, error) {
	if len(x) == 0 || len(x) != len(target) {
		return nil, nil, fmt.Errorf("ml: FitTree: %d samples vs %d targets", len(x), len(target))
	}
	if len(idx) == 0 {
		return nil, nil, fmt.Errorf("ml: FitTree: empty sample index set")
	}
	b := &treeBuilder{
		x:        x,
		target:   target,
		cfg:      cfg.withDefaults(),
		features: features,
		leaves:   make(map[int][]int),
	}
	if len(b.features) == 0 {
		b.features = make([]int, len(x[0]))
		for i := range b.features {
			b.features[i] = i
		}
	}
	b.grow(idx, 0)
	return &Tree{Nodes: b.nodes}, b.leaves, nil
}

// grow recursively builds the subtree for samples idx at the given depth
// and returns the node index.
func (b *treeBuilder) grow(idx []int, depth int) int {
	nodeIdx := len(b.nodes)
	b.nodes = append(b.nodes, TreeNode{Feature: -1})

	mean := 0.0
	for _, i := range idx {
		mean += b.target[i]
	}
	mean /= float64(len(idx))

	if depth >= b.cfg.MaxDepth || len(idx) < 2*b.cfg.MinLeaf {
		b.nodes[nodeIdx].Value = mean
		b.leaves[nodeIdx] = idx
		return nodeIdx
	}

	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		b.nodes[nodeIdx].Value = mean
		b.leaves[nodeIdx] = idx
		return nodeIdx
	}

	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		b.nodes[nodeIdx].Value = mean
		b.leaves[nodeIdx] = idx
		return nodeIdx
	}
	b.nodes[nodeIdx].Feature = feat
	b.nodes[nodeIdx].Threshold = thr
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.nodes[nodeIdx].Left = l
	b.nodes[nodeIdx].Right = r
	return nodeIdx
}

// bestSplit finds the (feature, threshold) pair maximizing variance
// reduction over samples idx. It returns ok=false when no split improves.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	var totalSum, totalSq float64
	for _, i := range idx {
		v := b.target[i]
		totalSum += v
		totalSq += v * v
	}
	baseSSE := totalSq - totalSum*totalSum/float64(n)

	bestGain := 1e-12
	type fv struct {
		val    float64
		target float64
	}
	vals := make([]fv, n)
	for _, f := range b.features {
		for k, i := range idx {
			vals[k] = fv{b.x[i][f], b.target[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].val < vals[c].val })
		if vals[0].val == vals[n-1].val {
			continue // constant feature on this node
		}
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			leftSum += vals[k].target
			leftSq += vals[k].target * vals[k].target
			if vals[k].val == vals[k+1].val {
				continue // can't split between equal values
			}
			nl := float64(k + 1)
			nr := float64(n - k - 1)
			if int(nl) < b.cfg.MinLeaf || int(nr) < b.cfg.MinLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			gain := baseSSE - sse
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (vals[k].val + vals[k+1].val) / 2
				ok = true
			}
		}
	}
	if math.IsNaN(threshold) {
		return 0, 0, false
	}
	return feature, threshold, ok
}
