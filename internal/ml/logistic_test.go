package ml

import (
	"math/rand"
	"testing"
)

func sparseBlobs(n int, seed int64) ([]SparseVector, []int) {
	// Class 1 examples contain token "phish", class 0 contain "legit",
	// both contain shared noise tokens.
	rng := rand.New(rand.NewSource(seed))
	dim := 1 << 12
	x := make([]SparseVector, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % 2
		var v SparseVector
		if label == 1 {
			v = append(v, SparseEntry{HashFeature("phish", dim), 1})
		} else {
			v = append(v, SparseEntry{HashFeature("legit", dim), 1})
		}
		for k := 0; k < 3; k++ {
			tok := string(rune('a' + rng.Intn(20)))
			v = append(v, SparseEntry{HashFeature("noise-"+tok, dim), 1})
		}
		x[i] = v
		y[i] = label
	}
	return x, y
}

func TestTrainLogisticSeparates(t *testing.T) {
	x, y := sparseBlobs(400, 17)
	m, err := TrainLogistic(x, y, LRConfig{Dim: 1 << 12, Seed: 1})
	if err != nil {
		t.Fatalf("TrainLogistic: %v", err)
	}
	teX, teY := sparseBlobs(200, 91)
	c := Evaluate(m.ScoreAll(teX), teY, 0.5)
	if acc := c.Accuracy(); acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95 (%s)", acc, c)
	}
}

func TestTrainLogisticErrors(t *testing.T) {
	if _, err := TrainLogistic(nil, nil, LRConfig{Dim: 10}); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := TrainLogistic([]SparseVector{{}}, []int{0}, LRConfig{}); err == nil {
		t.Error("Dim=0: want error")
	}
	if _, err := TrainLogistic([]SparseVector{{}}, []int{0, 1}, LRConfig{Dim: 4}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestLogisticScoreBounds(t *testing.T) {
	x, y := sparseBlobs(100, 3)
	m, err := TrainLogistic(x, y, LRConfig{Dim: 1 << 12, Seed: 2})
	if err != nil {
		t.Fatalf("TrainLogistic: %v", err)
	}
	for _, v := range x {
		s := m.Score(v)
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
	// Out-of-range indices are ignored, not a panic.
	_ = m.Score(SparseVector{{Index: -5, Value: 1}, {Index: 1 << 30, Value: 1}})
}

func TestHashFeatureStable(t *testing.T) {
	a := HashFeature("paypal", 1024)
	b := HashFeature("paypal", 1024)
	if a != b {
		t.Error("hash not stable")
	}
	if a < 0 || a >= 1024 {
		t.Errorf("hash %d outside [0,1024)", a)
	}
	if HashFeature("paypal", 1024) == HashFeature("paypa1", 1024) {
		t.Log("note: collision between near tokens (possible, not an error)")
	}
}
