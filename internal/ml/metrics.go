package ml

import (
	"fmt"
	"sort"
)

// Confusion is a binary confusion matrix with the positive class being
// "phishing" throughout the repository.
type Confusion struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	TN int `json:"tn"`
	FN int `json:"fn"`
}

// Evaluate thresholds scores against labels: score >= threshold predicts
// positive. scores and labels must have equal length.
func Evaluate(scores []float64, labels []int, threshold float64) Confusion {
	var c Confusion
	for i, s := range scores {
		pred := 0
		if s >= threshold {
			pred = 1
		}
		switch {
		case pred == 1 && labels[i] == 1:
			c.TP++
		case pred == 1 && labels[i] == 0:
			c.FP++
		case pred == 0 && labels[i] == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions exist.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN) — the true positive rate.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FPR returns FP/(FP+TN) — the rate of legitimate pages misclassified as
// phishing, the paper's headline "misclassification rate".
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Total returns the number of evaluated instances.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// String renders the matrix compactly for logs and tables.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d pre=%.4f rec=%.4f fpr=%.5f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.FPR())
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	FPR       float64 `json:"fpr"`
	TPR       float64 `json:"tpr"`
	Threshold float64 `json:"threshold"`
}

// ROC computes the full ROC curve by sweeping the threshold over every
// distinct score. Points are ordered by increasing FPR, starting at (0,0)
// and ending at (1,1).
func ROC(scores []float64, labels []int) []ROCPoint {
	n := len(scores)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var pos, neg int
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}

	points := []ROCPoint{{FPR: 0, TPR: 0, Threshold: scores[idx[0]] + 1}}
	var tp, fp int
	for k := 0; k < n; {
		// Advance over ties: all samples with equal score flip together.
		s := scores[idx[k]]
		for k < n && scores[idx[k]] == s {
			if labels[idx[k]] == 1 {
				tp++
			} else {
				fp++
			}
			k++
		}
		points = append(points, ROCPoint{
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
			Threshold: s,
		})
	}
	return points
}

// AUC computes the area under the ROC curve by trapezoidal integration.
// It equals the probability a random positive scores above a random
// negative (ties counted half).
func AUC(scores []float64, labels []int) float64 {
	points := ROC(scores, labels)
	if len(points) < 2 {
		return 0
	}
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// PRPoint is one operating point of a precision–recall curve.
type PRPoint struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	Threshold float64 `json:"threshold"`
}

// PRCurve computes the precision–recall curve by threshold sweep,
// ordered by increasing recall.
func PRCurve(scores []float64, labels []int) []PRPoint {
	n := len(scores)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var pos int
	for _, l := range labels {
		if l == 1 {
			pos++
		}
	}
	if pos == 0 {
		return nil
	}
	var points []PRPoint
	var tp, fp int
	for k := 0; k < n; {
		s := scores[idx[k]]
		for k < n && scores[idx[k]] == s {
			if labels[idx[k]] == 1 {
				tp++
			} else {
				fp++
			}
			k++
		}
		points = append(points, PRPoint{
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(pos),
			Threshold: s,
		})
	}
	return points
}
