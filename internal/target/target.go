// Package target implements the target identification system of Section V
// of the paper: given an analyzed page, it extracts keyterms from the
// data sources the page owner freely controls, queries a search engine
// with them, and either confirms the page as legitimate (its own
// registered domain appears in the results) or names the brands the page
// most plausibly mimics, ranked by evidence. Image-only pages fall back
// to OCR-extracted screenshot terms (step 4 of the process).
//
// The process mirrors the paper's steps:
//
//  1. Query with the boosted prominent terms. Own RDN returned →
//     legitimate.
//  2. Query with the prominent terms plus the landing mld terms. Own RDN
//     returned → legitimate.
//  3. Rank the returned domains as target candidates, keeping only those
//     the page actually references (a page term matching the candidate
//     mld, or an external link to the candidate). Candidates found →
//     phish with a target list.
//  4. If nothing was decided, repeat with OCR prominent terms from the
//     screenshot layer. Still nothing → suspicious (target unknown).
//
// An Identifier is safe for concurrent use: identification only reads
// its configuration and the search engine's read-locked index.
package target

import (
	"sort"
	"strings"

	"knowphish/internal/ocr"
	"knowphish/internal/search"
	"knowphish/internal/terms"
	"knowphish/internal/webpage"
)

// Verdict is the outcome of target identification.
type Verdict int

// The three possible verdicts. The zero value is VerdictSuspicious: a
// page with no confirmed owner and no identifiable target stays suspect
// (Section VI-D treats these as "keep the detector's call").
const (
	VerdictSuspicious Verdict = iota
	VerdictLegitimate
	VerdictPhish
)

// String returns the verdict name used throughout logs and tables.
func (v Verdict) String() string {
	switch v {
	case VerdictSuspicious:
		return "suspicious"
	case VerdictLegitimate:
		return "legitimate"
	case VerdictPhish:
		return "phish"
	default:
		return "unknown"
	}
}

// MarshalText encodes the verdict as its name, so JSON payloads carry
// "phish" rather than an opaque integer.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText decodes a verdict name (unknown names → suspicious).
func (v *Verdict) UnmarshalText(b []byte) error {
	switch string(b) {
	case "legitimate":
		*v = VerdictLegitimate
	case "phish":
		*v = VerdictPhish
	default:
		*v = VerdictSuspicious
	}
	return nil
}

// DefaultKeyterms is the number of keyterms per search query (the
// paper's choice of five).
const DefaultKeyterms = 5

// DefaultResults is how many search results each query examines.
const DefaultResults = 10

// keytermSources are the term distributions mined for keyterms (Section
// V-A): the owner-chosen content sources (title, text, copyright) and
// the URL sources, whose canonicalized terms recover brand references a
// homograph or typosquat domain tries to hide.
var keytermSources = []webpage.DistID{
	webpage.DistTitle,
	webpage.DistText,
	webpage.DistCopyright,
	webpage.DistStart,
	webpage.DistLand,
	webpage.DistStartRDN,
	webpage.DistLandRDN,
}

// Keyterms are the query terms extracted from a page.
type Keyterms struct {
	// Boosted are prominent terms appearing in at least two distinct
	// sources — the strongest signals of what the page is about.
	Boosted []string `json:"boosted,omitempty"`
	// Prominent are the highest-probability terms over all sources.
	Prominent []string `json:"prominent,omitempty"`
}

// ExtractKeyterms computes the boosted and prominent keyterms of an
// analyzed page, at most n of each. Deterministic: ties break
// lexicographically.
func ExtractKeyterms(a *webpage.Analysis, n int) Keyterms {
	score, sources := termStats(a)
	return keytermsFromStats(score, sources, n)
}

// keytermsFromStats ranks already-accumulated term statistics, so
// Identify can reuse one termStats pass for both keyterm extraction and
// candidate evidence.
func keytermsFromStats(score map[string]float64, sources map[string]int, n int) Keyterms {
	if n <= 0 {
		n = DefaultKeyterms
	}
	type scored struct {
		term    string
		score   float64
		sources int
	}
	all := make([]scored, 0, len(score))
	for t, s := range score {
		all = append(all, scored{term: t, score: s, sources: sources[t]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].term < all[j].term
	})
	var kt Keyterms
	for _, s := range all {
		if len(kt.Prominent) == n {
			break
		}
		kt.Prominent = append(kt.Prominent, s.term)
	}
	// Boosted: multi-source terms, ranked by source count first — a term
	// the owner repeats across title, text, copyright and URL is the
	// page's subject.
	boosted := make([]scored, 0, len(all))
	for _, s := range all {
		if s.sources >= 2 {
			boosted = append(boosted, s)
		}
	}
	sort.Slice(boosted, func(i, j int) bool {
		if boosted[i].sources != boosted[j].sources {
			return boosted[i].sources > boosted[j].sources
		}
		if boosted[i].score != boosted[j].score {
			return boosted[i].score > boosted[j].score
		}
		return boosted[i].term < boosted[j].term
	})
	for _, s := range boosted {
		if len(kt.Boosted) == n {
			break
		}
		kt.Boosted = append(kt.Boosted, s.term)
	}
	return kt
}

// termStats accumulates, per term, the summed probability across the
// keyterm sources and the number of sources containing it. Sources are
// visited in fixed order and terms in sorted order, so the float
// accumulation is bit-reproducible.
func termStats(a *webpage.Analysis) (score map[string]float64, sources map[string]int) {
	score = make(map[string]float64)
	sources = make(map[string]int)
	for _, id := range keytermSources {
		d := a.Dist(id)
		for _, t := range d.Terms() {
			score[t] += d.P(t)
			sources[t]++
		}
	}
	return score, sources
}

// Candidate is one potential phishing target.
type Candidate struct {
	// RDN is the candidate's registered domain.
	RDN string `json:"rdn"`
	// MLD is the candidate's main level domain.
	MLD string `json:"mld"`
	// Count is the accumulated evidence weight: page terms matching the
	// mld, external links to the candidate, appearances across queries.
	Count int `json:"count"`
	// Score is the summed search relevance, the tie-breaker.
	Score float64 `json:"score"`
}

// Result is the outcome of identifying one page.
type Result struct {
	// Verdict is the final call.
	Verdict Verdict `json:"verdict"`
	// StepsUsed is the process step (1–4) that produced the verdict.
	StepsUsed int `json:"steps_used"`
	// Keyterms are the extracted query terms.
	Keyterms Keyterms `json:"keyterms"`
	// Candidates are the ranked candidate targets (phish verdicts only).
	Candidates []Candidate `json:"candidates,omitempty"`
	// UsedOCR reports whether the step-4 OCR fallback ran.
	UsedOCR bool `json:"used_ocr,omitempty"`
	// OCRProminent are the prominent terms OCR recovered, when UsedOCR.
	OCRProminent []string `json:"ocr_prominent,omitempty"`
}

// Identifier runs the Section V process against a search engine.
type Identifier struct {
	// Engine is the legitimate-web index. Required.
	Engine *search.Engine
	// K is the number of keyterms per query (0 → DefaultKeyterms).
	K int
	// Results is the number of search results examined per query
	// (0 → DefaultResults).
	Results int
	// OCR recognizes screenshot text for the step-4 fallback
	// (nil → a noiseless recognizer).
	OCR *ocr.Recognizer
}

// New returns an identifier with the paper's defaults: five keyterms per
// query and the default OCR noise model.
func New(engine *search.Engine) *Identifier {
	return &Identifier{Engine: engine, K: DefaultKeyterms, Results: DefaultResults, OCR: ocr.Default()}
}

// Identify runs the full process on an analyzed page.
func (id *Identifier) Identify(a *webpage.Analysis) Result {
	k := id.K
	if k <= 0 {
		k = DefaultKeyterms
	}
	nres := id.Results
	if nres <= 0 {
		nres = DefaultResults
	}
	score, sources := termStats(a)
	res := Result{Keyterms: keytermsFromStats(score, sources, k)}

	// The page's full term set is the evidence pool for candidate
	// filtering; external RDNs are strong evidence (the phish links to
	// its target's real site).
	pageTerms := make(map[string]struct{}, len(score))
	for t := range score {
		pageTerms[t] = struct{}{}
	}
	extRDNs := externalRDNs(a)

	// Step 1: boosted prominent terms.
	q1 := res.Keyterms.Boosted
	if len(q1) == 0 {
		q1 = res.Keyterms.Prominent
	}
	r1 := id.Engine.Query(q1, nres)
	if containsOwn(r1, a) {
		res.Verdict, res.StepsUsed = VerdictLegitimate, 1
		return res
	}

	// Step 2: prominent terms plus the landing mld terms, the paper's
	// second, more site-specific query.
	q2 := appendUnique(res.Keyterms.Prominent, terms.Extract(a.Land.UnicodeRDN()))
	r2 := id.Engine.Query(q2, nres)
	if containsOwn(r2, a) {
		res.Verdict, res.StepsUsed = VerdictLegitimate, 2
		return res
	}

	// Step 3: rank the returned domains as candidate targets.
	res.Candidates = rankCandidates([][]search.Result{r1, r2}, pageTerms, extRDNs, a)
	if len(res.Candidates) > 0 {
		res.Verdict, res.StepsUsed = VerdictPhish, 3
		return res
	}
	res.StepsUsed = 3

	// Step 4: OCR fallback over the screenshot layer, for pages whose
	// HTML carries no usable terms (image-only phish kits).
	if len(a.Snap.ScreenshotTerms) > 0 {
		rec := id.OCR
		if rec == nil {
			rec = &ocr.Recognizer{}
		}
		dist := terms.FromStrings(rec.Recognize(a.Snap.ScreenshotTerms))
		res.UsedOCR = true
		res.OCRProminent = dist.TopN(k)
		res.StepsUsed = 4
		if len(res.OCRProminent) > 0 {
			r3 := id.Engine.Query(res.OCRProminent, nres)
			if containsOwn(r3, a) {
				res.Verdict = VerdictLegitimate
				return res
			}
			ocrTerms := make(map[string]struct{}, len(pageTerms)+dist.Len())
			for t := range pageTerms {
				ocrTerms[t] = struct{}{}
			}
			for _, t := range dist.Terms() {
				ocrTerms[t] = struct{}{}
			}
			res.Candidates = rankCandidates([][]search.Result{r1, r2, r3}, ocrTerms, extRDNs, a)
			if len(res.Candidates) > 0 {
				res.Verdict = VerdictPhish
				return res
			}
		}
	}

	res.Verdict = VerdictSuspicious
	return res
}

// externalRDNs collects the RDNs of links leaving the controlled domain
// set — where a phish points at its target's real site.
func externalRDNs(a *webpage.Analysis) map[string]struct{} {
	out := make(map[string]struct{})
	for _, p := range a.ExtLog {
		if p.RDN != "" {
			out[p.RDN] = struct{}{}
		}
	}
	for _, p := range a.ExtLink {
		if p.RDN != "" {
			out[p.RDN] = struct{}{}
		}
	}
	return out
}

// containsOwn reports whether any search result names a domain the page
// owner controls — the "own site found, page is legitimate" test. A
// matching mld also counts, covering regional variants of one brand.
func containsOwn(results []search.Result, a *webpage.Analysis) bool {
	for _, r := range results {
		if _, ok := a.ControlledRDNs[r.RDN]; ok {
			return true
		}
		if r.MLD != "" && (r.MLD == a.Land.MLD || r.MLD == a.Start.MLD) {
			return true
		}
	}
	return false
}

// rankCandidates turns search results into a ranked candidate target
// list. A returned domain becomes a candidate only when the page shows
// evidence of referencing it: a page term that is a substring of the
// candidate's mld (the phish spells its target's name somewhere) or an
// external link to the candidate. Evidence accumulates across queries;
// ranking is by evidence count, then search relevance, then RDN.
func rankCandidates(resultSets [][]search.Result, pageTerms map[string]struct{}, extRDNs map[string]struct{}, a *webpage.Analysis) []Candidate {
	acc := make(map[string]*Candidate)
	for _, rs := range resultSets {
		for _, r := range rs {
			if _, own := a.ControlledRDNs[r.RDN]; own {
				continue
			}
			evidence := 0
			if _, linked := extRDNs[r.RDN]; linked {
				evidence += 2
			}
			for t := range pageTerms {
				if len(t) >= terms.MinTermLength && strings.Contains(r.MLD, t) {
					evidence++
				}
			}
			if evidence == 0 {
				continue
			}
			c, ok := acc[r.RDN]
			if !ok {
				c = &Candidate{RDN: r.RDN, MLD: r.MLD}
				acc[r.RDN] = c
			}
			c.Count += evidence
			c.Score += r.Score
		}
	}
	if len(acc) == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(acc))
	for _, c := range acc {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].RDN < out[j].RDN
	})
	return out
}

// appendUnique appends the extras to base, skipping duplicates, without
// modifying base.
func appendUnique(base, extras []string) []string {
	out := make([]string, 0, len(base)+len(extras))
	seen := make(map[string]struct{}, len(base)+len(extras))
	for _, t := range base {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	for _, t := range extras {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
