package target

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"knowphish/internal/crawl"
	"knowphish/internal/dataset"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

var sharedCorpus *dataset.Corpus

func corpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	if sharedCorpus == nil {
		c, err := dataset.Build(dataset.Config{
			Seed:              31,
			Scale:             100,
			World:             webgen.Config{Seed: 32, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
			SkipLanguageTests: true,
		})
		if err != nil {
			t.Fatalf("corpus: %v", err)
		}
		sharedCorpus = c
	}
	return sharedCorpus
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictSuspicious: "suspicious",
		VerdictLegitimate: "legitimate",
		VerdictPhish:      "phish",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if Verdict(99).String() == "" {
		t.Error("out-of-range verdict must not stringify to empty")
	}
}

func TestVerdictJSONRoundTrip(t *testing.T) {
	for _, v := range []Verdict{VerdictSuspicious, VerdictLegitimate, VerdictPhish} {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Verdict
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		if back != v {
			t.Errorf("roundtrip %v -> %s -> %v", v, blob, back)
		}
	}
}

func TestExtractKeytermsFindsBrandTerms(t *testing.T) {
	c := corpus(t)
	rng := rand.New(rand.NewSource(4))
	brand := c.World.Brands[0]
	site := c.World.NewPhishSite(rng, webgen.PhishOptions{Target: brand, Hosting: webgen.HostDedicated})
	snap, err := crawl.VisitSite(c.World, site)
	if err != nil {
		t.Fatalf("visit: %v", err)
	}
	kt := ExtractKeyterms(webpage.Analyze(snap), 5)
	if len(kt.Prominent) == 0 {
		t.Fatal("no prominent terms on a phishing page")
	}
	found := false
	for _, bt := range brand.Terms {
		for _, got := range append(append([]string(nil), kt.Boosted...), kt.Prominent...) {
			if got == bt {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no brand term of %v among keyterms %+v", brand.Terms, kt)
	}
}

func TestIdentifyLegitimate(t *testing.T) {
	c := corpus(t)
	id := New(c.Engine)
	legit, total := 0, 0
	for _, ex := range c.LangTests[webgen.English].Examples {
		total++
		res := id.Identify(webpage.Analyze(ex.Snapshot))
		if res.Verdict == VerdictLegitimate {
			legit++
		}
		if res.Verdict == VerdictLegitimate && res.StepsUsed > 2 && !res.UsedOCR {
			t.Errorf("legitimate verdict at step %d without OCR", res.StepsUsed)
		}
	}
	if rate := float64(legit) / float64(total); rate < 0.8 {
		t.Errorf("legitimate confirmation rate = %.2f over %d pages, want >= 0.8", rate, total)
	}
}

func TestIdentifyPhishNamesTarget(t *testing.T) {
	c := corpus(t)
	id := New(c.Engine)
	hit, phishVerdicts, total := 0, 0, 0
	for _, ex := range c.PhishBrand.Examples {
		if ex.NoHint {
			continue
		}
		total++
		res := id.Identify(webpage.Analyze(ex.Snapshot))
		if res.Verdict != VerdictPhish {
			continue
		}
		phishVerdicts++
		for i, cand := range res.Candidates {
			if i >= 3 {
				break
			}
			if cand.MLD == ex.TargetMLD {
				hit++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no hinted phish examples")
	}
	if rate := float64(hit) / float64(total); rate < 0.6 {
		t.Errorf("top-3 target hit rate = %.2f (%d/%d, %d phish verdicts), want >= 0.6",
			rate, hit, total, phishVerdicts)
	}
}

func TestIdentifyNoHintStaysUnknown(t *testing.T) {
	c := corpus(t)
	id := New(c.Engine)
	for _, ex := range c.PhishBrand.Examples {
		if !ex.NoHint {
			continue
		}
		res := id.Identify(webpage.Analyze(ex.Snapshot))
		if res.Verdict != VerdictPhish {
			continue
		}
		// A "no-hint" page may still leak its target through the URL
		// (subdomain squatting embeds the target RDN in the FQDN, which
		// stripTargetHints cannot remove); a phish verdict is acceptable
		// only when it names that true target.
		if len(res.Candidates) == 0 || res.Candidates[0].MLD != ex.TargetMLD {
			t.Errorf("no-hint page %s got phish verdict with candidates %+v",
				ex.Snapshot.StartingURL, res.Candidates)
		}
	}
}

func TestIdentifyDeterministic(t *testing.T) {
	c := corpus(t)
	id := New(c.Engine)
	for i, ex := range c.PhishBrand.Examples {
		if i == 10 {
			break
		}
		a := webpage.Analyze(ex.Snapshot)
		first := id.Identify(a)
		second := id.Identify(webpage.Analyze(ex.Snapshot))
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("non-deterministic result for %s:\n%+v\nvs\n%+v",
				ex.Snapshot.StartingURL, first, second)
		}
	}
}

func TestIdentifyEmptyPage(t *testing.T) {
	id := New(corpus(t).Engine)
	snap := &webpage.Snapshot{StartingURL: "http://x.test/", LandingURL: "http://x.test/"}
	res := id.Identify(webpage.Analyze(snap))
	if res.Verdict != VerdictSuspicious {
		t.Errorf("empty page verdict = %v, want suspicious", res.Verdict)
	}
	if len(res.Candidates) != 0 {
		t.Errorf("empty page produced candidates: %+v", res.Candidates)
	}
}
