package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"knowphish/internal/crawl"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// stageTimes collects per-operation durations.
type stageTimes struct {
	name    string
	samples []time.Duration
}

func (s *stageTimes) add(d time.Duration) { s.samples = append(s.samples, d) }

func (s *stageTimes) stats() (median, avg, std time.Duration) {
	if len(s.samples) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median = sorted[len(sorted)/2]
	var sum float64
	for _, d := range sorted {
		sum += float64(d)
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, d := range sorted {
		diff := float64(d) - mean
		sq += diff * diff
	}
	return median, time.Duration(mean), time.Duration(math.Sqrt(sq / float64(len(sorted))))
}

// TableVIII reproduces the processing-time breakdown (Table VIII):
// webpage scraping, loading data, feature extraction and classification,
// measured over freshly generated pages. The paper's scraping column is
// dominated by network time (median 12.8 s), which a simulator does not
// have; the relationship the table demonstrates — classification adds
// under a second on top of scraping — is preserved and noted.
func (r *Runner) TableVIII(pages int) (*Table, error) {
	if pages <= 0 {
		pages = 100
	}
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed + 8))
	scrape := &stageTimes{name: "Webpage scraping (simulated web)"}
	load := &stageTimes{name: "Loading data"}
	extract := &stageTimes{name: "Features extraction"}
	classify := &stageTimes{name: "Classification"}
	total := &stageTimes{name: "Total (no scraping)"}

	for i := 0; i < pages; i++ {
		var site *webgen.Site
		if i%2 == 0 {
			site = r.Corpus.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		} else {
			site = r.Corpus.World.NewPhishSite(rng, r.Corpus.World.RandomPhishOptions(rng))
		}

		t0 := time.Now()
		snap, err := crawl.VisitSite(r.Corpus.World, site)
		if err != nil {
			return nil, fmt.Errorf("experiments: TableVIII scrape: %w", err)
		}
		scrape.add(time.Since(t0))

		// Loading data: snapshot JSON roundtrip, the paper's "load the
		// scraped json" step.
		blob, err := json.Marshal(snap)
		if err != nil {
			return nil, fmt.Errorf("experiments: TableVIII marshal: %w", err)
		}
		t1 := time.Now()
		var loaded webpage.Snapshot
		if err := json.NewDecoder(bytes.NewReader(blob)).Decode(&loaded); err != nil {
			return nil, fmt.Errorf("experiments: TableVIII load: %w", err)
		}
		loadDur := time.Since(t1)
		load.add(loadDur)

		t2 := time.Now()
		v := r.Ext.ExtractSnapshot(&loaded)
		extractDur := time.Since(t2)
		extract.add(extractDur)

		t3 := time.Now()
		_ = d.ScoreVector(v)
		classifyDur := time.Since(t3)
		classify.add(classifyDur)

		total.add(loadDur + extractDur + classifyDur)
	}

	t := &Table{
		Title:  "Table VIII: Processing time (microseconds)",
		Header: []string{"Operation", "Median", "Average", "StDev"},
	}
	for _, s := range []*stageTimes{scrape, load, extract, classify, total} {
		med, avg, std := s.stats()
		t.AddRow(s.name,
			fmt.Sprintf("%d", med.Microseconds()),
			fmt.Sprintf("%d", avg.Microseconds()),
			fmt.Sprintf("%d", std.Microseconds()))
	}
	t.Notes = append(t.Notes,
		"paper reports milliseconds on live web (scrape median 12787 ms dominated by network; classification < 1 ms)",
		"shape preserved: classification is orders of magnitude cheaper than page acquisition+extraction",
		fmt.Sprintf("measured over %d pages", pages))
	return t, nil
}
