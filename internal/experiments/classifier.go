package experiments

import (
	"fmt"

	"knowphish/internal/core"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

// AblationClassifier (A6) compares learners on the same 212 features:
// gradient boosting (the paper's choice, motivated by feature selection
// and overfitting robustness), a random forest, and a plain logistic
// regression over the dense features. All evaluated on the English
// scenario at threshold 0.7.
func (r *Runner) AblationClassifier() (*Table, error) {
	x, y := r.TrainMatrix()
	testX := append(append([][]float64{}, r.PhishTestMatrix()...), r.LangMatrix(webgen.English)...)
	testY := make([]int, 0, len(testX))
	for range r.PhishTestMatrix() {
		testY = append(testY, 1)
	}
	for range r.LangMatrix(webgen.English) {
		testY = append(testY, 0)
	}

	t := &Table{
		Title:  "Ablation A6: classifier choice on the 212 features",
		Header: []string{"Classifier", "Pre.", "Recall", "FPR", "AUC"},
	}
	addRow := func(name string, scores []float64) {
		conf := ml.Evaluate(scores, testY, core.DefaultThreshold)
		t.AddRow(name, fmtF(conf.Precision(), 3), fmtF(conf.Recall(), 3),
			fmt.Sprintf("%.4f", conf.FPR()), fmtF(ml.AUC(scores, testY), 4))
	}

	// Gradient boosting (the paper's classifier).
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	gbScores := make([]float64, len(testX))
	for i, v := range testX {
		gbScores[i] = d.ScoreVector(v)
	}
	addRow("Gradient boosting (paper)", gbScores)

	// Random forest.
	forest, err := ml.TrainForest(x, y, ml.ForestConfig{Trees: 120, MaxDepth: 10, Seed: r.Seed + 61})
	if err != nil {
		return nil, fmt.Errorf("experiments: A6 forest: %w", err)
	}
	addRow("Random forest", forest.ScoreAll(testX))

	// Dense logistic regression via the sparse trainer.
	toSparse := func(rows [][]float64) []ml.SparseVector {
		out := make([]ml.SparseVector, len(rows))
		for i, row := range rows {
			v := make(ml.SparseVector, 0, len(row))
			for j, val := range row {
				if val != 0 {
					// Squash the unbounded features so SGD behaves.
					scaled := val
					if scaled > 1 {
						scaled = 1 + logish(scaled)
					}
					v = append(v, ml.SparseEntry{Index: j, Value: scaled})
				}
			}
			out[i] = v
		}
		return out
	}
	lr, err := ml.TrainLogistic(toSparse(x), y, ml.LRConfig{Dim: len(x[0]), Epochs: 12, Seed: r.Seed + 62})
	if err != nil {
		return nil, fmt.Errorf("experiments: A6 logistic: %w", err)
	}
	addRow("Logistic regression", lr.ScoreAll(toSparse(testX)))

	t.Notes = append(t.Notes,
		"expected: the tree ensembles dominate the linear model; boosting edges the forest at equal budget — the paper's §IV-C rationale")
	return t, nil
}

// logish is a cheap monotone squash: log2-ish without importing math in
// this file's hot loop.
func logish(v float64) float64 {
	n := 0.0
	for v > 1 && n < 40 {
		v /= 2
		n++
	}
	return n
}
