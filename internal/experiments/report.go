// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the design ablations listed in DESIGN.md.
// Each experiment is a method on Runner returning renderable Tables and
// Figures; cmd/kpexperiments drives them and bench_test.go wraps each in a
// benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable result table.
type Table struct {
	// Title names the paper artifact, e.g. "Table VI".
	Title string
	// Header holds column names.
	Header []string
	// Rows holds the body, one []string per row.
	Rows [][]string
	// Notes are rendered after the table body.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a renderable result figure: the data that regenerates the
// paper's plot, in gnuplot-ready columns.
type Figure struct {
	// Title names the paper artifact, e.g. "Fig 4".
	Title          string
	XLabel, YLabel string
	Series         []Series
	Notes          []string
}

// AddSeries appends a named line.
func (f *Figure) AddSeries(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// Render emits the figure as data blocks, one per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n# x: %s, y: %s\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "# series: %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "%.6g\t%.6g\n", s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtF renders a float with the paper's typical precision.
func fmtF(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
