package experiments

import (
	"fmt"

	"knowphish/internal/core"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// TableIX reproduces the target identification results (Table IX): over
// phishBrand, the count of correctly identified targets within top-1/2/3
// candidates, unknown-target pages, and missed targets, with the success
// rate computed the paper's way (identified + unknown over total).
func (r *Runner) TableIX() (*Table, error) {
	id := target.New(r.Corpus.Engine)
	camp := r.Corpus.PhishBrand

	type counts struct{ identified, unknown, missed int }
	var byK [3]counts
	distinctTargets := map[string]struct{}{}

	for _, ex := range camp.Examples {
		distinctTargets[ex.TargetMLD] = struct{}{}
		res := id.Identify(webpage.Analyze(ex.Snapshot))
		for k := 0; k < 3; k++ {
			switch {
			case ex.NoHint && res.Verdict != target.VerdictPhish:
				// Ground truth: the page carries no target hint, and the
				// system correctly found none.
				byK[k].unknown++
			case foundWithin(res, ex.TargetMLD, k+1):
				byK[k].identified++
			default:
				byK[k].missed++
			}
		}
	}

	t := &Table{
		Title:  "Table IX: Target identification results",
		Header: []string{"Targets", "Identified", "Unknown", "Missed", "Success rate"},
	}
	total := len(camp.Examples)
	for k := 0; k < 3; k++ {
		c := byK[k]
		rate := float64(c.identified+c.unknown) / float64(total) * 100
		t.AddRow(fmt.Sprintf("top-%d", k+1),
			fmt.Sprintf("%d", c.identified),
			fmt.Sprintf("%d", c.unknown),
			fmt.Sprintf("%d", c.missed),
			fmt.Sprintf("%.1f%%", rate))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d phishing pages, %d distinct targets (paper: 600 pages, 126 targets)", total, len(distinctTargets)),
		"success rate counts unknown-target pages as successes, as the paper does")
	return t, nil
}

func foundWithin(res target.Result, wantMLD string, k int) bool {
	if res.Verdict != target.VerdictPhish {
		return false
	}
	for i, c := range res.Candidates {
		if i >= k {
			break
		}
		if c.MLD == wantMLD {
			return true
		}
	}
	return false
}

// FPReduction reproduces the Section VI-D experiment: legitimate pages of
// the English set that the detector misclassifies are fed to target
// identification; confirmed-legitimate verdicts remove false positives.
func (r *Runner) FPReduction() (*Table, error) {
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	id := target.New(r.Corpus.Engine)
	english := r.Corpus.LangTests[webgen.English]
	if english == nil {
		return nil, fmt.Errorf("experiments: FPReduction: no English test set")
	}

	var fps []*webpage.Snapshot
	legX := r.LangMatrix(webgen.English)
	for i, v := range legX {
		if d.ScoreVector(v) >= core.DefaultThreshold {
			fps = append(fps, english.Examples[i].Snapshot)
		}
	}

	confirmedPhish, suspicious, confirmedLegit := 0, 0, 0
	for _, snap := range fps {
		res := id.Identify(webpage.Analyze(snap))
		switch res.Verdict {
		case target.VerdictPhish:
			confirmedPhish++
		case target.VerdictLegitimate:
			confirmedLegit++
		default:
			suspicious++
		}
	}

	nLeg := len(legX)
	fprBefore := float64(len(fps)) / float64(nLeg)
	fprAfter := float64(len(fps)-confirmedLegit) / float64(nLeg)

	t := &Table{
		Title:  "Section VI-D: False-positive reduction via target identification",
		Header: []string{"Quantity", "Value"},
	}
	t.AddRow("Legitimate pages tested", fmt.Sprintf("%d", nLeg))
	t.AddRow("Detector false positives", fmt.Sprintf("%d", len(fps)))
	t.AddRow("... identified as phish (target found)", fmt.Sprintf("%d", confirmedPhish))
	t.AddRow("... suspicious (no target, not confirmed)", fmt.Sprintf("%d", suspicious))
	t.AddRow("... confirmed legitimate (removed)", fmt.Sprintf("%d", confirmedLegit))
	t.AddRow("FP rate before", fmt.Sprintf("%.5f", fprBefore))
	t.AddRow("FP rate after", fmt.Sprintf("%.5f", fprAfter))
	t.Notes = append(t.Notes,
		"paper: 53 FPs over 100,000 -> 4 phish, 10 suspicious, 39 confirmed legitimate; FPR 0.0005 -> 0.0001")
	return t, nil
}
