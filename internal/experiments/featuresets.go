package experiments

import (
	"fmt"

	"knowphish/internal/core"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

// featureSetOrder lists the eight feature-set combinations the paper
// evaluates (Table VII, Fig. 2, Fig. 5), in its order.
var featureSetOrder = []features.Set{
	features.F1, features.F2, features.F3, features.F4, features.F5,
	features.F15, features.F234, features.All,
}

// setEval holds both scenarios' metrics for one feature set.
type setEval struct {
	set features.Set
	// cv is scenario 1: 5-fold cross-validation on legTrain+phishTrain.
	cv       ml.Confusion
	cvAUC    float64
	cvScores []float64
	cvLabels []int
	// en is scenario 2: English dataset prediction.
	en       ml.Confusion
	enAUC    float64
	enScores []float64
	enLabels []int
}

// evaluateFeatureSets runs both scenarios for all eight sets (cached).
func (r *Runner) evaluateFeatureSets() ([]setEval, error) {
	r.mu.Lock()
	cached := r.setEvals
	r.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	x, y := r.TrainMatrix()
	out := make([]setEval, 0, len(featureSetOrder))
	for _, set := range featureSetOrder {
		ev := setEval{set: set}

		// Scenario 1: cross-validation on the training corpora.
		cols := features.Indices(set)
		proj := features.Project(x, cols)
		gbm := core.DefaultGBMConfig()
		gbm.Seed = r.Seed + int64(set)
		cv, err := ml.CrossValidateGBM(proj, y, 5, core.DefaultThreshold, gbm)
		if err != nil {
			return nil, fmt.Errorf("experiments: CV for %s: %w", set, err)
		}
		ev.cv = cv.Pooled
		ev.cvAUC = cv.AUCMean
		ev.cvScores = cv.Scores
		ev.cvLabels = cv.Labels

		// Scenario 2: train once, predict English + phishTest.
		d, err := r.Detector(set)
		if err != nil {
			return nil, err
		}
		scores, labels := r.scenario2Scores(d, webgen.English)
		ev.en, ev.enAUC = evalRow(scores, labels, core.DefaultThreshold)
		ev.enScores = scores
		ev.enLabels = labels

		out = append(out, ev)
	}
	r.mu.Lock()
	r.setEvals = out
	r.mu.Unlock()
	return out, nil
}

// TableVII reproduces the detailed per-feature-set accuracy table
// (Table VII): precision, recall, F1, FPR and AUC for the eight feature
// sets under cross-validation and under the English scenario.
func (r *Runner) TableVII() (*Table, error) {
	evals, err := r.evaluateFeatureSets()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table VII: Detailed accuracy evaluation for different feature sets",
		Header: []string{"Scenario", "Metrics", "f1", "f2", "f3", "f4", "f5", "f1,5", "f2,3,4", "fall"},
	}
	type metric struct {
		name string
		cv   func(e setEval) string
		en   func(e setEval) string
	}
	metrics := []metric{
		{"Precision", func(e setEval) string { return fmtF(e.cv.Precision(), 3) }, func(e setEval) string { return fmtF(e.en.Precision(), 3) }},
		{"Recall", func(e setEval) string { return fmtF(e.cv.Recall(), 3) }, func(e setEval) string { return fmtF(e.en.Recall(), 3) }},
		{"F1-score", func(e setEval) string { return fmtF(e.cv.F1(), 3) }, func(e setEval) string { return fmtF(e.en.F1(), 3) }},
		{"FP Rate", func(e setEval) string { return fmt.Sprintf("%.4f", e.cv.FPR()) }, func(e setEval) string { return fmt.Sprintf("%.4f", e.en.FPR()) }},
		{"AUC", func(e setEval) string { return fmtF(e.cvAUC, 3) }, func(e setEval) string { return fmtF(e.enAUC, 3) }},
	}
	for _, m := range metrics {
		row := []string{"Cross-validation", m.name}
		for _, e := range evals {
			row = append(row, m.cv(e))
		}
		t.AddRow(row...)
	}
	for _, m := range metrics {
		row := []string{"English", m.name}
		for _, e := range evals {
			row = append(row, m.en(e))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig2 reproduces the per-feature-set accuracy bars (Fig. 2a recall,
// 2b precision, 2c false positive rate) for both scenarios. Each figure
// has two series (CV, English) with x = feature-set index in paper order.
func (r *Runner) Fig2() ([]*Figure, error) {
	evals, err := r.evaluateFeatureSets()
	if err != nil {
		return nil, err
	}
	idx := make([]float64, len(evals))
	labels := make([]string, len(evals))
	for i, e := range evals {
		idx[i] = float64(i + 1)
		labels[i] = e.set.String()
	}
	build := func(title string, cv, en func(e setEval) float64) *Figure {
		f := &Figure{Title: title, XLabel: "feature set (1=f1 .. 8=fall)", YLabel: "value"}
		cvY := make([]float64, len(evals))
		enY := make([]float64, len(evals))
		for i, e := range evals {
			cvY[i] = cv(e)
			enY[i] = en(e)
		}
		f.AddSeries("CV", idx, cvY)
		f.AddSeries("English", idx, enY)
		f.Notes = append(f.Notes, "x order: "+joinLabels(labels))
		return f
	}
	return []*Figure{
		build("Fig 2a: Recall per feature set",
			func(e setEval) float64 { return e.cv.Recall() },
			func(e setEval) float64 { return e.en.Recall() }),
		build("Fig 2b: Precision per feature set",
			func(e setEval) float64 { return e.cv.Precision() },
			func(e setEval) float64 { return e.en.Precision() }),
		build("Fig 2c: False positive rate per feature set",
			func(e setEval) float64 { return e.cv.FPR() },
			func(e setEval) float64 { return e.en.FPR() }),
	}, nil
}

// Fig5 reproduces the per-feature-set ROC curves (Fig. 5a–h): one figure
// per feature set, each with an English and a cross-validation series.
func (r *Runner) Fig5() ([]*Figure, error) {
	evals, err := r.evaluateFeatureSets()
	if err != nil {
		return nil, err
	}
	panels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var out []*Figure
	for i, e := range evals {
		f := &Figure{
			Title:  fmt.Sprintf("Fig 5%s: ROC for %s", panels[i], e.set),
			XLabel: "False Positive Rate", YLabel: "True Positive Rate",
		}
		for _, src := range []struct {
			name   string
			scores []float64
			labels []int
		}{
			{"English", e.enScores, e.enLabels},
			{"Cross-validation", e.cvScores, e.cvLabels},
		} {
			curve := ml.ROC(src.scores, src.labels)
			x := make([]float64, len(curve))
			y := make([]float64, len(curve))
			for k, p := range curve {
				x[k] = p.FPR
				y[k] = p.TPR
			}
			f.AddSeries(src.name, x, y)
		}
		out = append(out, f)
	}
	return out, nil
}

func joinLabels(ls []string) string {
	out := ""
	for i, l := range ls {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d=%s", i+1, l)
	}
	return out
}
