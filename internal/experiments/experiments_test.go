package experiments

import (
	"strconv"
	"strings"
	"testing"

	"knowphish/internal/dataset"
	"knowphish/internal/webgen"
)

// sharedRunner is built once; experiments only read from it.
var sharedRunner *Runner

func runner(t *testing.T) *Runner {
	t.Helper()
	if sharedRunner == nil {
		r, err := NewRunner(dataset.Config{
			Seed:  51,
			Scale: 25,
			World: webgen.Config{Seed: 52, Brands: 80, RankedGenerics: 60, VocabularyWords: 100},
		})
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		sharedRunner = r
	}
	return sharedRunner
}

// parseCell converts a numeric table cell (possibly with % suffix).
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableV(t *testing.T) {
	r := runner(t)
	tab := r.TableV()
	if len(tab.Rows) != 4+6 {
		t.Fatalf("rows = %d, want 10 (4 cleaned campaigns + 6 language sets)", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "phishTrain") {
		t.Error("render missing phishTrain")
	}
	// Initial >= clean for cleaned campaigns.
	for _, row := range tab.Rows[:4] {
		initial := parseCell(t, row[2])
		clean := parseCell(t, row[3])
		if clean > initial {
			t.Errorf("%s: clean %v > initial %v", row[1], clean, initial)
		}
	}
}

func TestTableVIShape(t *testing.T) {
	r := runner(t)
	tab, err := r.TableVI()
	if err != nil {
		t.Fatalf("TableVI: %v", err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 languages", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		pre := parseCell(t, row[1])
		rec := parseCell(t, row[2])
		fpr := parseCell(t, row[4])
		auc := parseCell(t, row[5])
		if pre < 0.7 {
			t.Errorf("%s precision = %v, want >= 0.7", row[0], pre)
		}
		if rec < 0.8 {
			t.Errorf("%s recall = %v, want >= 0.8", row[0], rec)
		}
		if fpr > 0.03 {
			t.Errorf("%s FPR = %v, want <= 0.03", row[0], fpr)
		}
		if auc < 0.95 {
			t.Errorf("%s AUC = %v, want >= 0.95", row[0], auc)
		}
		// Recall identical across languages (same phishTest set), as in
		// the paper where recall is 0.958 for every row.
		if row[2] != tab.Rows[0][2] {
			t.Errorf("recall differs across languages: %s vs %s", row[2], tab.Rows[0][2])
		}
	}
}

func TestTableVIIShape(t *testing.T) {
	r := runner(t)
	tab, err := r.TableVII()
	if err != nil {
		t.Fatalf("TableVII: %v", err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 metrics x 2 scenarios)", len(tab.Rows))
	}
	// The paper's headline shape: fall (last column) dominates each
	// individual set on CV AUC, and f3/f5 are the weak sets.
	aucRow := tab.Rows[4] // CV AUC
	fall := parseCell(t, aucRow[len(aucRow)-1])
	f3 := parseCell(t, aucRow[4])
	f5 := parseCell(t, aucRow[6])
	f1 := parseCell(t, aucRow[2])
	if fall < f3 || fall < f5 {
		t.Errorf("fall AUC %v must dominate f3 %v and f5 %v", fall, f3, f5)
	}
	if f1 < f3 {
		t.Errorf("f1 AUC %v should beat f3 %v (paper: f1 strongest single set)", f1, f3)
	}
}

func TestFig2(t *testing.T) {
	r := runner(t)
	figs, err := r.Fig2()
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(figs) != 3 {
		t.Fatalf("figures = %d, want 3 (recall, precision, FPR)", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Errorf("%s: series = %d, want 2", f.Title, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.X) != 8 {
				t.Errorf("%s/%s: points = %d, want 8 feature sets", f.Title, s.Name, len(s.X))
			}
		}
	}
}

func TestFig3Fig4Shape(t *testing.T) {
	r := runner(t)
	f3, err := r.Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	f4, err := r.Fig4()
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	for _, f := range []*Figure{f3, f4} {
		if len(f.Series) != 6 {
			t.Fatalf("%s: series = %d, want 6 languages", f.Title, len(f.Series))
		}
	}
	// ROC curves are monotone and span [0,1].
	for _, s := range f4.Series {
		last := len(s.X) - 1
		if s.X[0] != 0 || s.Y[0] != 0 || s.X[last] != 1 || s.Y[last] != 1 {
			t.Errorf("ROC %s does not span (0,0)-(1,1)", s.Name)
		}
		for i := 1; i < len(s.X); i++ {
			if s.X[i] < s.X[i-1] || s.Y[i] < s.Y[i-1] {
				t.Fatalf("ROC %s not monotone", s.Name)
			}
		}
	}
}

func TestFig5(t *testing.T) {
	r := runner(t)
	figs, err := r.Fig5()
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(figs) != 8 {
		t.Fatalf("panels = %d, want 8", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Errorf("%s: series = %d, want 2 (English, CV)", f.Title, len(f.Series))
		}
	}
}

func TestFig6Shape(t *testing.T) {
	r := runner(t)
	f, err := r.Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3 (precision, recall, FPR)", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 10 {
			t.Errorf("%s: steps = %d, want 10", s.Name, len(s.X))
		}
		// Sizes strictly increasing.
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Fatalf("%s: size not increasing", s.Name)
			}
		}
	}
	// The paper's observation: FPR does not blow up with scale — final
	// FPR stays small.
	fpr := f.Series[2]
	if last := fpr.Y[len(fpr.Y)-1]; last > 0.05 {
		t.Errorf("final FPR = %v, want <= 0.05", last)
	}
}

func TestTableVIIIShape(t *testing.T) {
	r := runner(t)
	tab, err := r.TableVIII(30)
	if err != nil {
		t.Fatalf("TableVIII: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 stages", len(tab.Rows))
	}
	// Classification must be far cheaper than feature extraction
	// (the paper's point: decisions are fast once data is local).
	extraction := parseCell(t, tab.Rows[2][2])
	classification := parseCell(t, tab.Rows[3][2])
	if classification > extraction {
		t.Errorf("classification avg %v > extraction avg %v", classification, extraction)
	}
}

func TestTableIXShape(t *testing.T) {
	r := runner(t)
	tab, err := r.TableIX()
	if err != nil {
		t.Fatalf("TableIX: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (top-1/2/3)", len(tab.Rows))
	}
	// Success rate must be monotone in k and within a plausible band of
	// the paper's 90.5–97.3%.
	var rates []float64
	for _, row := range tab.Rows {
		rates = append(rates, parseCell(t, row[4]))
	}
	if rates[0] > rates[1] || rates[1] > rates[2] {
		t.Errorf("success rates not monotone: %v", rates)
	}
	if rates[0] < 60 {
		t.Errorf("top-1 success = %.1f%%, want >= 60%%", rates[0])
	}
	if rates[2] < 75 {
		t.Errorf("top-3 success = %.1f%%, want >= 75%%", rates[2])
	}
}

func TestTableXShape(t *testing.T) {
	r := runner(t)
	tab, err := r.TableX()
	if err != nil {
		t.Fatalf("TableX: %v", err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 baselines + 3 of ours)", len(tab.Rows))
	}
	// Our English row must have the lowest FPR among systems evaluated on
	// the English scenario (rows 0..3).
	fprCantina := parseCell(t, tab.Rows[0][6])
	fprOurs := parseCell(t, tab.Rows[3][6])
	if fprOurs > fprCantina {
		t.Errorf("our FPR %v > Cantina FPR %v — Table X shape broken", fprOurs, fprCantina)
	}
}

func TestFPReductionShape(t *testing.T) {
	r := runner(t)
	tab, err := r.FPReduction()
	if err != nil {
		t.Fatalf("FPReduction: %v", err)
	}
	var before, after float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "FP rate before":
			before = parseCell(t, row[1])
		case "FP rate after":
			after = parseCell(t, row[1])
		}
	}
	if after > before {
		t.Errorf("FP rate after %v > before %v — reduction must not hurt", after, before)
	}
}

func TestAblations(t *testing.T) {
	r := runner(t)
	a1, err := r.AblationSplit()
	if err != nil {
		t.Fatalf("A1: %v", err)
	}
	splitAUC := parseCell(t, a1.Rows[0][5])
	unsplitAUC := parseCell(t, a1.Rows[1][5])
	if splitAUC+0.02 < unsplitAUC {
		t.Errorf("A1: split AUC %v clearly below unsplit %v — split should help or tie", splitAUC, unsplitAUC)
	}

	a2, err := r.AblationDistance()
	if err != nil {
		t.Fatalf("A2: %v", err)
	}
	if len(a2.Rows) != 3 {
		t.Fatalf("A2 rows = %d", len(a2.Rows))
	}

	a3, err := r.AblationThreshold()
	if err != nil {
		t.Fatalf("A3: %v", err)
	}
	// FPR must be non-increasing as the threshold rises.
	var prev float64 = 1
	for _, row := range a3.Rows {
		fpr := parseCell(t, row[3])
		if fpr > prev+1e-9 {
			t.Errorf("A3: FPR increased with threshold: %v after %v", fpr, prev)
		}
		prev = fpr
	}

	a4, err := r.AblationTrainSize()
	if err != nil {
		t.Fatalf("A4: %v", err)
	}
	if len(a4.Rows) < 3 {
		t.Fatalf("A4 rows = %d", len(a4.Rows))
	}

	a5, err := r.AblationUnseenBrands()
	if err != nil {
		t.Fatalf("A5: %v", err)
	}
	oursRecall := parseCell(t, a5.Rows[0][1])
	if oursRecall < 0.7 {
		t.Errorf("A5: our recall on unseen brands = %v, want >= 0.7 (brand independence)", oursRecall)
	}

	a6, err := r.AblationClassifier()
	if err != nil {
		t.Fatalf("A6: %v", err)
	}
	if len(a6.Rows) != 3 {
		t.Fatalf("A6 rows = %d, want 3 classifiers", len(a6.Rows))
	}
	gbAUC := parseCell(t, a6.Rows[0][4])
	lrAUC := parseCell(t, a6.Rows[2][4])
	if gbAUC+0.02 < lrAUC {
		t.Errorf("A6: boosting AUC %v clearly below logistic %v", gbAUC, lrAUC)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "F", XLabel: "x", YLabel: "y"}
	f.AddSeries("s1", []float64{1, 2}, []float64{3, 4})
	out := f.Render()
	for _, want := range []string{"== F ==", "# series: s1", "1\t3", "2\t4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
