package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"knowphish/internal/dataset"
	"knowphish/internal/webgen"
)

// TableV reproduces the dataset description (Table V): per-campaign
// initial and clean counts, with the cleaning pass demonstrated live on a
// fresh noisy capture.
func (r *Runner) TableV() *Table {
	t := &Table{
		Title:  "Table V: Datasets description",
		Header: []string{"Set", "Name", "Initial", "Clean"},
	}
	c := r.Corpus
	addCampaign := func(kind string, camp *dataset.Campaign, cleaned bool) {
		clean := strconv.Itoa(camp.Clean())
		if !cleaned {
			clean = "-"
		}
		t.AddRow(kind, camp.Name, strconv.Itoa(camp.Initial), clean)
	}
	addCampaign("Phish", c.PhishTrain, true)
	addCampaign("Phish", c.PhishTest, true)
	addCampaign("Phish", c.PhishBrand, true)
	addCampaign("Leg", c.LegTrain, true)
	for _, lang := range webgen.Languages {
		if camp, ok := c.LangTests[lang]; ok {
			addCampaign("Leg", camp, false)
		}
	}

	// Demonstrate the cleaning pass the paper performed manually: a raw
	// PhishTank-style capture retains only true phishing pages.
	rng := rand.New(rand.NewSource(r.Seed + 5))
	raw := c.NoisyCapture(rng, 200)
	clean := dataset.CleanCapture(raw)
	t.Notes = append(t.Notes,
		fmt.Sprintf("cleaning demo: raw capture of %d pages -> %d after removing unavailable/parked/mislabeled", len(raw), len(clean)),
		fmt.Sprintf("corpus scale 1/%d of Table V sizes (see EXPERIMENTS.md)", c.Scale()),
	)
	return t
}
