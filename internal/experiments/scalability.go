package experiments

import (
	"fmt"
	"math/rand"

	"knowphish/internal/core"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

// Fig6 reproduces the scalability evaluation (Fig. 6): the model is
// trained once on the (small) training corpora, then the test set grows
// in ten increments of 10,000 legitimate + 100 phishing pages (divided by
// the corpus scale), sampling without replacement from English and
// phishTest. Precision, recall and FPR are reported at every size.
func (r *Runner) Fig6() (*Figure, error) {
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	legX := r.LangMatrix(webgen.English)
	phishX := r.PhishTestMatrix()
	if len(legX) == 0 || len(phishX) == 0 {
		return nil, fmt.Errorf("experiments: Fig6: empty test matrices")
	}

	// Pre-score everything once; increments then only re-aggregate.
	legScores := make([]float64, len(legX))
	for i, v := range legX {
		legScores[i] = d.ScoreVector(v)
	}
	phishScores := make([]float64, len(phishX))
	for i, v := range phishX {
		phishScores[i] = d.ScoreVector(v)
	}
	rng := rand.New(rand.NewSource(r.Seed + 6))
	rng.Shuffle(len(legScores), func(i, j int) { legScores[i], legScores[j] = legScores[j], legScores[i] })
	rng.Shuffle(len(phishScores), func(i, j int) { phishScores[i], phishScores[j] = phishScores[j], phishScores[i] })

	const steps = 10
	legStep := len(legScores) / steps
	phishStep := len(phishScores) / steps
	if legStep == 0 || phishStep == 0 {
		return nil, fmt.Errorf("experiments: Fig6: corpus too small for %d steps", steps)
	}

	var sizes, precision, recall, fpr []float64
	for s := 1; s <= steps; s++ {
		var scores []float64
		var labels []int
		for i := 0; i < s*legStep; i++ {
			scores = append(scores, legScores[i])
			labels = append(labels, 0)
		}
		for i := 0; i < s*phishStep; i++ {
			scores = append(scores, phishScores[i])
			labels = append(labels, 1)
		}
		conf := ml.Evaluate(scores, labels, core.DefaultThreshold)
		sizes = append(sizes, float64(len(scores)))
		precision = append(precision, conf.Precision())
		recall = append(recall, conf.Recall())
		fpr = append(fpr, conf.FPR())
	}

	f := &Figure{
		Title:  "Fig 6: Performance vs the scale of data",
		XLabel: "Sample size", YLabel: "Precision/Recall (left), FP Rate (right)",
	}
	f.AddSeries("Precision", sizes, precision)
	f.AddSeries("Recall", sizes, recall)
	f.AddSeries("FP Rate", sizes, fpr)
	_, trainY := r.TrainMatrix()
	f.Notes = append(f.Notes, fmt.Sprintf(
		"model trained once on %d instances; test grows to %d instances (scale 1/%d of the paper's 101,000)",
		len(trainY), int(sizes[len(sizes)-1]), r.Corpus.Scale()))
	return f, nil
}
