package experiments

import (
	"fmt"

	"knowphish/internal/baselines"
	"knowphish/internal/core"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// TableX reproduces the state-of-the-art comparison (Table X). The
// published systems cannot be rerun, so the three baseline archetypes are
// re-implemented (see DESIGN.md) and evaluated on the same corpora as our
// system, in the same three configurations the paper reports for itself:
// English scenario, several-languages scenario, and cross-validation.
func (r *Runner) TableX() (*Table, error) {
	t := &Table{
		Title: "Table X: Phishing detection system performances comparison",
		Header: []string{
			"Technique", "Testing legit", "Testing phish",
			"Train/Test", "Leg/Phish", "Evaluation",
			"FPR", "Pre.", "Recall", "Acc.",
		},
	}
	c := r.Corpus
	trainSnaps := append(c.LegTrain.Snapshots(), c.PhishTrain.Snapshots()...)
	trainLabels := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	english := c.LangTests[webgen.English]

	testSnaps := make([]*webpage.Snapshot, 0, len(c.PhishTest.Examples)+len(english.Examples))
	testLabels := make([]int, 0, cap(testSnaps))
	for _, ex := range c.PhishTest.Examples {
		testSnaps = append(testSnaps, ex.Snapshot)
		testLabels = append(testLabels, 1)
	}
	for _, ex := range english.Examples {
		testSnaps = append(testSnaps, ex.Snapshot)
		testLabels = append(testLabels, 0)
	}
	nLeg, nPhish := len(english.Examples), len(c.PhishTest.Examples)
	ratioTT := fmt.Sprintf("1/%d", (nLeg+nPhish)/maxInt(1, len(trainSnaps)))
	ratioLP := fmt.Sprintf("%d/1", nLeg/maxInt(1, nPhish))

	evalClassifier := func(clf baselines.Classifier, threshold float64) (ml.Confusion, bool) {
		scores := make([]float64, len(testSnaps))
		for i, s := range testSnaps {
			scores[i] = clf.Score(s)
		}
		return ml.Evaluate(scores, testLabels, threshold), true
	}
	addRow := func(name string, conf ml.Confusion, evalName string) {
		t.AddRow(name,
			fmt.Sprintf("%d", nLeg), fmt.Sprintf("%d", nPhish),
			ratioTT, ratioLP, evalName,
			fmt.Sprintf("%.4f", conf.FPR()), fmtF(conf.Precision(), 3),
			fmtF(conf.Recall(), 3), fmtF(conf.Accuracy(), 3))
	}

	// Baseline 1: Cantina (no learning).
	cantina := baselines.NewCantina(c.Engine)
	if conf, ok := evalClassifier(cantina, 0.75); ok {
		addRow(cantina.Name(), conf, "no learning")
	}

	// Baseline 2: URL-lexical logistic regression.
	urlLex, err := baselines.TrainURLLexical(trainSnaps, trainLabels, r.Seed+11)
	if err != nil {
		return nil, fmt.Errorf("experiments: TableX url-lexical: %w", err)
	}
	if conf, ok := evalClassifier(urlLex, 0.5); ok {
		addRow(urlLex.Name(), conf, "old/new")
	}

	// Baseline 3: bag-of-words.
	bow, err := baselines.TrainBagOfWords(trainSnaps, trainLabels, r.Seed+12)
	if err != nil {
		return nil, fmt.Errorf("experiments: TableX bow: %w", err)
	}
	if conf, ok := evalClassifier(bow, 0.5); ok {
		addRow(bow.Name(), conf, "old/new")
	}

	// Our method, English scenario.
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	scores, labels := r.scenario2Scores(d, webgen.English)
	conf, _ := evalRow(scores, labels, core.DefaultThreshold)
	addRow("Our method (English)", conf, "old/new")

	// Our method, all languages pooled ("several").
	var allScores []float64
	var allLabels []int
	totalLeg := 0
	for _, lang := range webgen.Languages {
		if _, ok := c.LangTests[lang]; !ok {
			continue
		}
		for _, v := range r.LangMatrix(lang) {
			allScores = append(allScores, d.ScoreVector(v))
			allLabels = append(allLabels, 0)
			totalLeg++
		}
	}
	for _, v := range r.PhishTestMatrix() {
		allScores = append(allScores, d.ScoreVector(v))
		allLabels = append(allLabels, 1)
	}
	confAll := ml.Evaluate(allScores, allLabels, core.DefaultThreshold)
	t.AddRow("Our method (several)",
		fmt.Sprintf("%d", totalLeg), fmt.Sprintf("%d", nPhish),
		fmt.Sprintf("1/%d", (totalLeg+nPhish)/maxInt(1, len(trainSnaps))),
		fmt.Sprintf("%d/1", totalLeg/maxInt(1, nPhish)), "old/new",
		fmt.Sprintf("%.4f", confAll.FPR()), fmtF(confAll.Precision(), 3),
		fmtF(confAll.Recall(), 3), fmtF(confAll.Accuracy(), 3))

	// Our method, cross-validation on the training corpora.
	x, y := r.TrainMatrix()
	gbm := core.DefaultGBMConfig()
	gbm.Seed = r.Seed + 13
	cv, err := ml.CrossValidateGBM(features.Project(x, features.Indices(features.All)), y, 5, core.DefaultThreshold, gbm)
	if err != nil {
		return nil, fmt.Errorf("experiments: TableX CV: %w", err)
	}
	t.AddRow("Our method (cross-valid)",
		fmt.Sprintf("%d", c.LegTrain.Clean()), fmt.Sprintf("%d", c.PhishTrain.Clean()),
		"4/1", fmt.Sprintf("%d/1", c.LegTrain.Clean()/maxInt(1, c.PhishTrain.Clean())), "cross-valid",
		fmt.Sprintf("%.4f", cv.Pooled.FPR()), fmtF(cv.Pooled.Precision(), 3),
		fmtF(cv.Pooled.Recall(), 3), fmtF(cv.Pooled.Accuracy(), 3))

	t.Notes = append(t.Notes,
		"published systems are represented by re-implemented archetypes (DESIGN.md substitution table)",
		"expected shape: ours keeps the lowest FPR at comparable recall; Cantina pays search dependence with FPs; URL-only trails on content-borne signals")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
