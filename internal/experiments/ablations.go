package experiments

import (
	"fmt"
	"math/rand"

	"knowphish/internal/baselines"
	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/dataset"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/terms"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// AblationSplit (A1) measures what the control/constraint separation of
// the URL features buys: a model on f1 (106 features, split by
// internal/external) against a model on the unsplit 62-feature variant.
func (r *Runner) AblationSplit() (*Table, error) {
	// Build both matrices over train and test examples.
	extractUnsplit := func(exs []*dataset.Example) [][]float64 {
		out := make([][]float64, len(exs))
		for i, ex := range exs {
			out[i] = r.Ext.ExtractUnsplitF1(webpage.Analyze(ex.Snapshot))
		}
		return out
	}
	c := r.Corpus
	trainUn := append(extractUnsplit(c.LegTrain.Examples), extractUnsplit(c.PhishTrain.Examples)...)
	trainY := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	english := c.LangTests[webgen.English]
	testUn := append(extractUnsplit(c.PhishTest.Examples), extractUnsplit(english.Examples)...)
	testY := make([]int, 0, len(testUn))
	for range c.PhishTest.Examples {
		testY = append(testY, 1)
	}
	for range english.Examples {
		testY = append(testY, 0)
	}

	gbm := core.DefaultGBMConfig()
	gbm.Seed = r.Seed + 21
	unsplitModel, err := ml.TrainGBM(trainUn, trainY, gbm)
	if err != nil {
		return nil, fmt.Errorf("experiments: A1 unsplit: %w", err)
	}
	unScores := unsplitModel.ScoreAll(testUn)
	unConf := ml.Evaluate(unScores, testY, core.DefaultThreshold)
	unAUC := ml.AUC(unScores, testY)

	// Split variant: the real f1.
	dF1, err := r.Detector(features.F1)
	if err != nil {
		return nil, err
	}
	var spScores []float64
	for _, v := range r.PhishTestMatrix() {
		spScores = append(spScores, dF1.ScoreVector(v))
	}
	for _, v := range r.LangMatrix(webgen.English) {
		spScores = append(spScores, dF1.ScoreVector(v))
	}
	spConf := ml.Evaluate(spScores, testY, core.DefaultThreshold)
	spAUC := ml.AUC(spScores, testY)

	t := &Table{
		Title:  "Ablation A1: control/constraint split of URL features",
		Header: []string{"Variant", "Features", "Pre.", "Recall", "FPR", "AUC"},
	}
	t.AddRow("f1 split (paper)", fmt.Sprintf("%d", features.CountF1),
		fmtF(spConf.Precision(), 3), fmtF(spConf.Recall(), 3),
		fmt.Sprintf("%.4f", spConf.FPR()), fmtF(spAUC, 4))
	t.AddRow("f1 unsplit", fmt.Sprintf("%d", features.UnsplitF1Count),
		fmtF(unConf.Precision(), 3), fmtF(unConf.Recall(), 3),
		fmt.Sprintf("%.4f", unConf.FPR()), fmtF(unAUC, 4))
	t.Notes = append(t.Notes, "expected: the split variant dominates — Section VII-A attributes the paper's gains to it")
	return t, nil
}

// AblationDistance (A2) swaps the Hellinger distance of f2 for total
// variation and the Bhattacharyya coefficient.
func (r *Runner) AblationDistance() (*Table, error) {
	metrics := []struct {
		name   string
		metric features.DistanceMetric
	}{
		{"Hellinger (paper)", terms.Hellinger},
		{"Total variation", terms.TotalVariation},
		{"1 - Bhattacharyya", func(p, q terms.Distribution) float64 {
			return 1 - terms.BhattacharyyaCoefficient(p, q)
		}},
	}
	c := r.Corpus
	english := c.LangTests[webgen.English]
	trainY := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	testY := make([]int, 0, len(c.PhishTest.Examples)+len(english.Examples))
	for range c.PhishTest.Examples {
		testY = append(testY, 1)
	}
	for range english.Examples {
		testY = append(testY, 0)
	}

	t := &Table{
		Title:  "Ablation A2: distribution distance metric for f2",
		Header: []string{"Metric", "Pre.", "Recall", "FPR", "AUC"},
	}
	for i, m := range metrics {
		extract := func(exs []*dataset.Example) [][]float64 {
			out := make([][]float64, len(exs))
			for k, ex := range exs {
				out[k] = features.ExtractF2With(webpage.Analyze(ex.Snapshot), m.metric)
			}
			return out
		}
		trainX := append(extract(c.LegTrain.Examples), extract(c.PhishTrain.Examples)...)
		testX := append(extract(c.PhishTest.Examples), extract(english.Examples)...)
		gbm := core.DefaultGBMConfig()
		gbm.Seed = r.Seed + 31 + int64(i)
		model, err := ml.TrainGBM(trainX, trainY, gbm)
		if err != nil {
			return nil, fmt.Errorf("experiments: A2 %s: %w", m.name, err)
		}
		scores := model.ScoreAll(testX)
		conf := ml.Evaluate(scores, testY, core.DefaultThreshold)
		t.AddRow(m.name, fmtF(conf.Precision(), 3), fmtF(conf.Recall(), 3),
			fmt.Sprintf("%.4f", conf.FPR()), fmtF(ml.AUC(scores, testY), 4))
	}
	t.Notes = append(t.Notes, "f2-only models; Hellinger and TV typically land close, confirming the choice is about boundedness and symmetry, not magic")
	return t, nil
}

// AblationThreshold (A3) sweeps the discrimination threshold around the
// paper's 0.7 on the full model.
func (r *Runner) AblationThreshold() (*Table, error) {
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	scores, labels := r.scenario2Scores(d, webgen.English)
	t := &Table{
		Title:  "Ablation A3: discrimination threshold sensitivity",
		Header: []string{"Threshold", "Pre.", "Recall", "FPR"},
	}
	for _, thr := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		conf := ml.Evaluate(scores, labels, thr)
		marker := ""
		if thr == core.DefaultThreshold {
			marker = " (paper)"
		}
		t.AddRow(fmt.Sprintf("%.1f%s", thr, marker),
			fmtF(conf.Precision(), 3), fmtF(conf.Recall(), 3), fmt.Sprintf("%.4f", conf.FPR()))
	}
	t.Notes = append(t.Notes, "0.7 trades a little recall for a lower FPR — the paper's rationale for favoring legitimate predictions")
	return t, nil
}

// AblationTrainSize (A4) tests the generalizability claim: how accuracy
// on the English scenario varies with the training-set fraction.
func (r *Runner) AblationTrainSize() (*Table, error) {
	x, y := r.TrainMatrix()
	t := &Table{
		Title:  "Ablation A4: training-set size vs accuracy",
		Header: []string{"Train fraction", "Train size", "Pre.", "Recall", "FPR", "AUC"},
	}
	rng := rand.New(rand.NewSource(r.Seed + 41))
	const repeats = 3 // average out subsample luck
	for _, frac := range []float64{0.1, 0.25, 0.5, 1.0} {
		n := int(frac * float64(len(x)))
		if n < 20 {
			n = 20
		}
		var sumPre, sumRec, sumFPR, sumAUC float64
		runs := 0
		for rep := 0; rep < repeats; rep++ {
			perm := rng.Perm(len(x))
			subX := make([][]float64, 0, n)
			subY := make([]int, 0, n)
			pos := 0
			for _, i := range perm[:n] {
				subX = append(subX, x[i])
				subY = append(subY, y[i])
				pos += y[i]
			}
			if pos == 0 || pos == n {
				continue // degenerate subsample
			}
			gbm := core.DefaultGBMConfig()
			gbm.Seed = r.Seed + 42 + int64(rep)
			d, err := core.TrainOnVectors(subX, subY, core.TrainConfig{GBM: gbm, Rank: r.Corpus.World.Ranking()})
			if err != nil {
				return nil, fmt.Errorf("experiments: A4 frac %.2f: %w", frac, err)
			}
			var scores []float64
			var labels []int
			for _, v := range r.PhishTestMatrix() {
				scores = append(scores, d.ScoreVector(v))
				labels = append(labels, 1)
			}
			for _, v := range r.LangMatrix(webgen.English) {
				scores = append(scores, d.ScoreVector(v))
				labels = append(labels, 0)
			}
			conf := ml.Evaluate(scores, labels, core.DefaultThreshold)
			sumPre += conf.Precision()
			sumRec += conf.Recall()
			sumFPR += conf.FPR()
			sumAUC += ml.AUC(scores, labels)
			runs++
		}
		if runs == 0 {
			continue
		}
		k := float64(runs)
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), fmt.Sprintf("%d", n),
			fmtF(sumPre/k, 3), fmtF(sumRec/k, 3),
			fmt.Sprintf("%.4f", sumFPR/k), fmtF(sumAUC/k, 4))
	}
	t.Notes = append(t.Notes, "expected: accuracy saturates well below 100% of an already-small training set — the paper's few-thousands claim")
	return t, nil
}

// AblationUnseenBrands (A5) tests brand independence, the paper's central
// argument against bag-of-words systems: train on phish targeting one
// half of the brands, test on phish targeting the other half, and compare
// our feature set with the bag-of-words baseline.
func (r *Runner) AblationUnseenBrands() (*Table, error) {
	c := r.Corpus
	w := c.World
	rng := rand.New(rand.NewSource(r.Seed + 51))

	half := len(w.Brands) / 2
	seen := w.Brands[:half]
	unseen := w.Brands[half:]

	genPhish := func(brands []*webgen.Brand, n int) []*webpage.Snapshot {
		out := make([]*webpage.Snapshot, 0, n)
		for i := 0; i < n; i++ {
			opts := w.RandomPhishOptions(rng)
			opts.Target = brands[rng.Intn(len(brands))]
			site := w.NewPhishSite(rng, opts)
			snap, err := crawl.VisitSite(w, site)
			if err != nil {
				continue
			}
			out = append(out, snap)
		}
		return out
	}
	nTrain := c.PhishTrain.Clean()
	nTest := c.PhishTest.Clean()
	trainPhish := genPhish(seen, nTrain)
	testPhish := genPhish(unseen, nTest)

	trainSnaps := append(c.LegTrain.Snapshots(), trainPhish...)
	trainLabels := make([]int, 0, len(trainSnaps))
	for range c.LegTrain.Examples {
		trainLabels = append(trainLabels, 0)
	}
	for range trainPhish {
		trainLabels = append(trainLabels, 1)
	}
	english := c.LangTests[webgen.English]
	testSnaps := append(testPhish, english.Snapshots()...)
	testLabels := make([]int, 0, len(testSnaps))
	for range testPhish {
		testLabels = append(testLabels, 1)
	}
	for range english.Examples {
		testLabels = append(testLabels, 0)
	}

	// Ours.
	gbm := core.DefaultGBMConfig()
	gbm.Seed = r.Seed + 52
	ours, err := core.Train(trainSnaps, trainLabels, core.TrainConfig{GBM: gbm, Rank: w.Ranking()})
	if err != nil {
		return nil, fmt.Errorf("experiments: A5 ours: %w", err)
	}
	ourScores := make([]float64, len(testSnaps))
	for i, s := range testSnaps {
		ourScores[i] = ours.Score(s)
	}
	ourConf := ml.Evaluate(ourScores, testLabels, core.DefaultThreshold)

	// Bag-of-words baseline at its natural 0.5 threshold.
	bow, err := baselines.TrainBagOfWords(trainSnaps, trainLabels, r.Seed+53)
	if err != nil {
		return nil, fmt.Errorf("experiments: A5 bag-of-words: %w", err)
	}
	bowScores := make([]float64, len(testSnaps))
	for i, s := range testSnaps {
		bowScores[i] = bow.Score(s)
	}
	bowConf := ml.Evaluate(bowScores, testLabels, 0.5)

	t := &Table{
		Title:  "Ablation A5: detection of phish against brands unseen in training",
		Header: []string{"System", "Recall (unseen brands)", "FPR", "AUC"},
	}
	t.AddRow("Our method", fmtF(ourConf.Recall(), 3),
		fmt.Sprintf("%.4f", ourConf.FPR()), fmtF(ml.AUC(ourScores, testLabels), 4))
	t.AddRow("Bag-of-words baseline", fmtF(bowConf.Recall(), 3),
		fmt.Sprintf("%.4f", bowConf.FPR()), fmtF(ml.AUC(bowScores, testLabels), 4))
	t.Notes = append(t.Notes,
		fmt.Sprintf("train phish target %d brands; test phish target %d disjoint brands", len(seen), len(unseen)),
		"expected: our recall holds (brand-independent features); bag-of-words drops (vocabulary keyed to seen brands)")
	return t, nil
}
