package experiments

import (
	"fmt"

	"knowphish/internal/core"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

// TableVI reproduces the per-language accuracy evaluation (Table VI):
// scenario 2 — train on legTrain+phishTrain, predict on phishTest plus
// each language's legitimate set, threshold 0.7.
func (r *Runner) TableVI() (*Table, error) {
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table VI: Detailed accuracy evaluation for six languages",
		Header: []string{"Language", "Pre.", "Recall", "F1-score", "FP Rate", "AUC"},
	}
	for _, lang := range webgen.Languages {
		if _, ok := r.Corpus.LangTests[lang]; !ok {
			continue
		}
		scores, labels := r.scenario2Scores(d, lang)
		conf, auc := evalRow(scores, labels, core.DefaultThreshold)
		t.AddRow(languageName(lang),
			fmtF(conf.Precision(), 3), fmtF(conf.Recall(), 3), fmtF(conf.F1(), 3),
			fmt.Sprintf("%.4f", conf.FPR()), fmtF(auc, 3))
	}
	return t, nil
}

// Fig3 reproduces the precision–recall curves for six languages (Fig. 3),
// obtained by sweeping the discrimination threshold.
func (r *Runner) Fig3() (*Figure, error) {
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	f := &Figure{Title: "Fig 3: Precision vs recall evaluation", XLabel: "Precision", YLabel: "Recall"}
	for _, lang := range webgen.Languages {
		if _, ok := r.Corpus.LangTests[lang]; !ok {
			continue
		}
		scores, labels := r.scenario2Scores(d, lang)
		curve := ml.PRCurve(scores, labels)
		x := make([]float64, len(curve))
		y := make([]float64, len(curve))
		for i, p := range curve {
			x[i] = p.Precision
			y[i] = p.Recall
		}
		f.AddSeries(languageName(lang), x, y)
	}
	return f, nil
}

// Fig4 reproduces the per-language ROC curves (Fig. 4).
func (r *Runner) Fig4() (*Figure, error) {
	d, err := r.Detector(0)
	if err != nil {
		return nil, err
	}
	f := &Figure{Title: "Fig 4: ROC evaluation results for six languages", XLabel: "False Positive Rate", YLabel: "True Positive Rate"}
	for _, lang := range webgen.Languages {
		if _, ok := r.Corpus.LangTests[lang]; !ok {
			continue
		}
		scores, labels := r.scenario2Scores(d, lang)
		curve := ml.ROC(scores, labels)
		x := make([]float64, len(curve))
		y := make([]float64, len(curve))
		for i, p := range curve {
			x[i] = p.FPR
			y[i] = p.TPR
		}
		f.AddSeries(languageName(lang), x, y)
	}
	return f, nil
}
