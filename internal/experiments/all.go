package experiments

import (
	"fmt"
	"io"
)

// Artifact is one regenerated paper artifact: a table or figure with its
// experiment id from DESIGN.md.
type Artifact struct {
	ID     string
	Table  *Table
	Figure *Figure
}

// Render writes the artifact's content.
func (a Artifact) Render() string {
	if a.Table != nil {
		return a.Table.Render()
	}
	if a.Figure != nil {
		return a.Figure.Render()
	}
	return ""
}

// RunAll executes every experiment (E1–E12 plus the ablations) and
// returns the artifacts in paper order. Progress lines go to w when it is
// non-nil.
func (r *Runner) RunAll(w io.Writer) ([]Artifact, error) {
	logf := func(format string, args ...interface{}) {
		if w != nil {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}
	var out []Artifact
	add := func(id string, t *Table, f *Figure, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, Artifact{ID: id, Table: t, Figure: f})
		logf("done: %s", id)
		return nil
	}

	logf("E1 Table V")
	if err := add("E1/TableV", r.TableV(), nil, nil); err != nil {
		return out, err
	}
	logf("E2 Table VI")
	t6, err := r.TableVI()
	if err := add("E2/TableVI", t6, nil, err); err != nil {
		return out, err
	}
	logf("E3 Fig 2")
	f2s, err := r.Fig2()
	if err != nil {
		return out, fmt.Errorf("E3/Fig2: %w", err)
	}
	for _, f := range f2s {
		out = append(out, Artifact{ID: "E3/" + f.Title, Figure: f})
	}
	logf("E4 Table VII")
	t7, err := r.TableVII()
	if err := add("E4/TableVII", t7, nil, err); err != nil {
		return out, err
	}
	logf("E5 Fig 3")
	f3, err := r.Fig3()
	if err := add("E5/Fig3", nil, f3, err); err != nil {
		return out, err
	}
	logf("E6 Fig 4")
	f4, err := r.Fig4()
	if err := add("E6/Fig4", nil, f4, err); err != nil {
		return out, err
	}
	logf("E7 Fig 5")
	f5s, err := r.Fig5()
	if err != nil {
		return out, fmt.Errorf("E7/Fig5: %w", err)
	}
	for _, f := range f5s {
		out = append(out, Artifact{ID: "E7/" + f.Title, Figure: f})
	}
	logf("E8 Fig 6")
	f6, err := r.Fig6()
	if err := add("E8/Fig6", nil, f6, err); err != nil {
		return out, err
	}
	logf("E9 Table VIII")
	t8, err := r.TableVIII(100)
	if err := add("E9/TableVIII", t8, nil, err); err != nil {
		return out, err
	}
	logf("E10 Table IX")
	t9, err := r.TableIX()
	if err := add("E10/TableIX", t9, nil, err); err != nil {
		return out, err
	}
	logf("E11 Table X")
	t10, err := r.TableX()
	if err := add("E11/TableX", t10, nil, err); err != nil {
		return out, err
	}
	logf("E12 FP reduction")
	fp, err := r.FPReduction()
	if err := add("E12/FPReduction", fp, nil, err); err != nil {
		return out, err
	}
	logf("A1 split ablation")
	a1, err := r.AblationSplit()
	if err := add("A1/Split", a1, nil, err); err != nil {
		return out, err
	}
	logf("A2 distance ablation")
	a2, err := r.AblationDistance()
	if err := add("A2/Distance", a2, nil, err); err != nil {
		return out, err
	}
	logf("A3 threshold ablation")
	a3, err := r.AblationThreshold()
	if err := add("A3/Threshold", a3, nil, err); err != nil {
		return out, err
	}
	logf("A4 train-size ablation")
	a4, err := r.AblationTrainSize()
	if err := add("A4/TrainSize", a4, nil, err); err != nil {
		return out, err
	}
	logf("A5 unseen-brands ablation")
	a5, err := r.AblationUnseenBrands()
	if err := add("A5/UnseenBrands", a5, nil, err); err != nil {
		return out, err
	}
	logf("A6 classifier ablation")
	a6, err := r.AblationClassifier()
	if err := add("A6/Classifier", a6, nil, err); err != nil {
		return out, err
	}
	return out, nil
}
