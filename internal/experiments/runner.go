package experiments

import (
	"fmt"
	"sync"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
	"knowphish/internal/webpage"
)

// Runner holds a corpus plus caches (feature matrices, trained models)
// shared across experiments. Experiments are read-only once their caches
// are built; a Runner may be reused across all experiments of a session.
type Runner struct {
	Corpus *dataset.Corpus
	// Ext extracts full 212-feature vectors with the world's ranking.
	Ext features.Extractor
	// Seed drives all model training in the experiments.
	Seed int64

	mu         sync.Mutex
	trainX     [][]float64
	trainY     []int
	phishTestX [][]float64
	langX      map[webgen.Language][][]float64
	detectors  map[features.Set]*core.Detector
	setEvals   []setEval
}

// NewRunner builds the corpus and prepares the runner.
func NewRunner(cfg dataset.Config) (*Runner, error) {
	c, err := dataset.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: building corpus: %w", err)
	}
	return &Runner{
		Corpus:    c,
		Ext:       features.Extractor{Rank: c.World.Ranking()},
		Seed:      cfg.Seed + 100,
		langX:     make(map[webgen.Language][][]float64),
		detectors: make(map[features.Set]*core.Detector),
	}, nil
}

// extract maps snapshots to full feature vectors, in parallel
// (extraction is deterministic and per-snapshot independent).
func (r *Runner) extract(examples []*dataset.Example) [][]float64 {
	snaps := make([]*webpage.Snapshot, len(examples))
	for i, ex := range examples {
		snaps[i] = ex.Snapshot
	}
	return r.Ext.ExtractBatch(snaps, 0)
}

// TrainMatrix returns the scenario training matrix: legTrain + phishTrain
// (the paper's 5,567 oldest instances), with labels.
func (r *Runner) TrainMatrix() ([][]float64, []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trainX == nil {
		leg := r.extract(r.Corpus.LegTrain.Examples)
		phish := r.extract(r.Corpus.PhishTrain.Examples)
		r.trainX = append(leg, phish...)
		r.trainY = append(r.Corpus.LegTrain.Labels(), r.Corpus.PhishTrain.Labels()...)
	}
	return r.trainX, r.trainY
}

// PhishTestMatrix returns the phishTest features.
func (r *Runner) PhishTestMatrix() [][]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.phishTestX == nil {
		r.phishTestX = r.extract(r.Corpus.PhishTest.Examples)
	}
	return r.phishTestX
}

// LangMatrix returns the features of one language's legitimate test set.
func (r *Runner) LangMatrix(lang webgen.Language) [][]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if x, ok := r.langX[lang]; ok {
		return x
	}
	camp, ok := r.Corpus.LangTests[lang]
	if !ok {
		return nil
	}
	x := r.extract(camp.Examples)
	r.langX[lang] = x
	return x
}

// Detector returns the scenario-2 detector trained on the given feature
// set (cached per set). Set 0 means features.All.
func (r *Runner) Detector(set features.Set) (*core.Detector, error) {
	if set == 0 {
		set = features.All
	}
	x, y := r.TrainMatrix()
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.detectors[set]; ok {
		return d, nil
	}
	gbm := core.DefaultGBMConfig()
	gbm.Seed = r.Seed
	d, err := core.TrainOnVectors(x, y, core.TrainConfig{
		GBM:        gbm,
		FeatureSet: set,
		Rank:       r.Corpus.World.Ranking(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: training %s detector: %w", set, err)
	}
	r.detectors[set] = d
	return d, nil
}

// scenario2Scores scores phishTest (label 1) plus one language set
// (label 0) with a detector, returning pooled scores and labels.
func (r *Runner) scenario2Scores(d *core.Detector, lang webgen.Language) ([]float64, []int) {
	var scores []float64
	var labels []int
	for _, v := range r.PhishTestMatrix() {
		scores = append(scores, d.ScoreVector(v))
		labels = append(labels, 1)
	}
	for _, v := range r.LangMatrix(lang) {
		scores = append(scores, d.ScoreVector(v))
		labels = append(labels, 0)
	}
	return scores, labels
}

// evalRow formats the standard metric columns the paper's tables use.
func evalRow(scores []float64, labels []int, threshold float64) (ml.Confusion, float64) {
	return ml.Evaluate(scores, labels, threshold), ml.AUC(scores, labels)
}

// languageName maps languages to the capitalized set names of Table V.
func languageName(l webgen.Language) string {
	switch l {
	case webgen.English:
		return "English"
	case webgen.French:
		return "French"
	case webgen.German:
		return "German"
	case webgen.Italian:
		return "Italian"
	case webgen.Portuguese:
		return "Portuguese"
	case webgen.Spanish:
		return "Spanish"
	default:
		return string(l)
	}
}
