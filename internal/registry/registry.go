// Package registry is the versioned model store of the lifecycle
// subsystem: every trained detector becomes an immutable, content-hashed
// artifact on disk with a manifest (version, training stats, feature-set
// hash, creation time), and one version at a time is the champion that
// live traffic scores with.
//
// Layout, under one registry directory:
//
//	v0001/model.json     detector artifact (core.Detector.Save bytes)
//	v0001/manifest.json  version, content hash, stats, feature-set hash
//	v0002/...
//	CHAMPION             the current champion's version, one line
//
// Two properties carry the subsystem:
//
//   - Atomic persistence: an artifact is staged in a temp directory and
//     renamed into place, and CHAMPION is replaced via temp-file +
//     rename, so a crash mid-save or mid-promotion leaves either the old
//     state or the new one, never a torn artifact.
//   - Lock-free hot swap: the champion is served from an atomic pointer.
//     Scorers resolve it with one atomic load per request
//     (Registry.Current implements core.DetectorSource); a promotion is
//     one atomic store. In-flight requests keep the detector they
//     already resolved — a swap never stalls or drops them.
//
// The content hash (sha256 of the artifact bytes) makes artifacts
// verifiable and training reproducible: the same corpus, configuration
// and seed must produce the same hash, which CI checks.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/features"
	"knowphish/internal/ranking"
)

// ErrNoChampion is returned by operations that need a champion when the
// registry has none yet.
var ErrNoChampion = errors.New("registry: no champion set")

// TrainingStats records what a model was trained and evaluated on — the
// provenance a promotion decision reads.
type TrainingStats struct {
	// Samples is the training-set size.
	Samples int `json:"samples"`
	// Phish and Legitimate split Samples by label.
	Phish      int `json:"phish"`
	Legitimate int `json:"legitimate"`
	// HeldOutAUC and HeldOutAccuracy are the model's scores on the
	// held-out split it was evaluated against at save time (0 when no
	// evaluation ran).
	HeldOutAUC      float64 `json:"held_out_auc,omitempty"`
	HeldOutAccuracy float64 `json:"held_out_accuracy,omitempty"`
	// Source names where the training data came from ("synthetic-corpus",
	// "verdict-store", ...).
	Source string `json:"source,omitempty"`
}

// Manifest describes one registered model version.
type Manifest struct {
	// Version is the registry-assigned identity ("v0001", "v0002", ...).
	Version string `json:"version"`
	// Hash is the sha256 of the model artifact bytes (hex). Identical
	// training inputs must reproduce it; Load verifies it.
	Hash string `json:"hash"`
	// FeatureSet names the feature groups the model was trained on.
	FeatureSet string `json:"feature_set"`
	// FeatureSetHash fingerprints the exact feature schema (names and
	// order) the model consumes. Two models with equal FeatureSetHash are
	// swap-compatible: they read the same vector layout.
	FeatureSetHash string `json:"feature_set_hash"`
	// Threshold is the model's discrimination threshold.
	Threshold float64 `json:"threshold"`
	// CreatedAt is when the artifact was saved (UTC). It lives in the
	// manifest, not the artifact, so it never perturbs Hash.
	CreatedAt time.Time `json:"created_at"`
	// Stats is the training provenance.
	Stats TrainingStats `json:"stats"`
	// Notes is free-form operator context ("auto-retrain after drift").
	Notes string `json:"notes,omitempty"`
}

// Model pairs a loaded detector with its manifest.
type Model struct {
	Detector *core.Detector
	Manifest Manifest
}

// Registry is the on-disk model store plus the in-memory champion
// pointer. All methods are safe for concurrent use; Current is lock-free.
type Registry struct {
	dir  string
	rank *ranking.List

	// mu guards disk mutations and the manifest index — the cold paths.
	mu        sync.Mutex
	manifests map[string]Manifest

	// champion is the hot path: one atomic load per scored request.
	champion core.SwappableSource
	// championMan mirrors the champion's manifest for introspection
	// endpoints; guarded by mu (Manifest is not needed on the hot path).
	championMan *Manifest
}

const (
	modelFile    = "model.json"
	manifestFile = "manifest.json"
	championFile = "CHAMPION"
)

// Open opens (creating if necessary) the registry at dir, indexes every
// version found and loads the champion named by the CHAMPION file, if
// any. rank is wired into loaded detectors (it is not embedded in
// artifacts, mirroring core.Load).
func Open(dir string, rank *ranking.List) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("registry: directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	r := &Registry{dir: dir, rank: rank, manifests: make(map[string]Manifest)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), ".staging-") {
			// Debris of a save that crashed before its rename; the
			// version number was never taken.
			_ = os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
	if err := r.rescanLocked(); err != nil {
		return nil, err
	}
	// Restore the champion, if one was promoted before.
	b, err := os.ReadFile(filepath.Join(dir, championFile))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No champion yet — a registry being bootstrapped.
	case err != nil:
		return nil, fmt.Errorf("registry: reading %s: %w", championFile, err)
	default:
		version := strings.TrimSpace(string(b))
		m, err := r.load(version)
		if err != nil {
			return nil, fmt.Errorf("registry: loading champion: %w", err)
		}
		r.champion.Swap(m.Detector)
		man := m.Manifest
		r.championMan = &man
	}
	return r, nil
}

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// rescanLocked folds versions that appeared in the directory since the
// last scan into the index — a second process (kptrain -registry
// against a live server's registry) registers versions this handle
// never saved. Save rescans before assigning a version so it never
// collides with an externally taken one, and List rescans so the
// /v2/models surface reflects the directory, not a snapshot of it.
func (r *Registry) rescanLocked() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("registry: reading %s: %w", r.dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !isVersion(e.Name()) {
			continue
		}
		if _, ok := r.manifests[e.Name()]; ok {
			continue
		}
		man, err := readManifest(filepath.Join(r.dir, e.Name(), manifestFile))
		if err != nil {
			// A torn save (crash before rename) never produces a
			// half-directory, so a broken manifest is corruption worth
			// surfacing rather than skipping silently.
			return fmt.Errorf("registry: version %s: %w", e.Name(), err)
		}
		if man.Version != e.Name() {
			return fmt.Errorf("registry: version %s: manifest claims %q", e.Name(), man.Version)
		}
		r.manifests[man.Version] = man
	}
	return nil
}

// Len returns the number of registered versions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.manifests)
}

// List returns every manifest, oldest version first, including
// versions registered by other processes since Open (best effort: an
// unreadable new version is simply not listed yet).
func (r *Registry) List() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = r.rescanLocked()
	out := make([]Manifest, 0, len(r.manifests))
	for _, m := range r.manifests {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// Current returns the champion detector (nil when none is promoted).
// It is one atomic load — the hot-path read behind every scored request
// — and implements core.DetectorSource.
func (r *Registry) Current() *core.Detector { return r.champion.Current() }

// Champion returns the champion model and whether one is set.
func (r *Registry) Champion() (Model, bool) {
	det := r.champion.Current()
	if det == nil {
		return Model{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.championMan == nil {
		return Model{}, false
	}
	return Model{Detector: det, Manifest: *r.championMan}, true
}

// ChampionVersion returns the champion's version ("" when none is set).
func (r *Registry) ChampionVersion() string {
	det := r.champion.Current()
	if det == nil {
		return ""
	}
	return det.Version()
}

// Save registers det as the next version: the artifact is serialized,
// content-hashed and staged to disk atomically (temp directory +
// rename). det is stamped with the assigned version (SetVersion), so
// save before publishing the detector to scorers. Saving does NOT
// promote; call SetChampion to swap traffic onto it.
func (r *Registry) Save(det *core.Detector, stats TrainingStats, notes string) (Manifest, error) {
	if det == nil {
		return Manifest{}, errors.New("registry: Save: nil detector")
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		return Manifest{}, err
	}
	art := buf.Bytes()
	sum := sha256.Sum256(art)

	r.mu.Lock()
	defer r.mu.Unlock()
	// Never assign a version another process already took on disk.
	if err := r.rescanLocked(); err != nil {
		return Manifest{}, err
	}
	version := fmt.Sprintf("v%04d", r.maxVersionLocked()+1)
	man := Manifest{
		Version:        version,
		Hash:           hex.EncodeToString(sum[:]),
		FeatureSet:     det.FeatureSet().String(),
		FeatureSetHash: FeatureSetHash(det.FeatureSet()),
		Threshold:      det.Threshold(),
		CreatedAt:      time.Now().UTC(),
		Stats:          stats,
		Notes:          notes,
	}
	manJSON, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: encoding manifest: %w", err)
	}

	// Stage into a temp directory, then rename into place: readers never
	// observe a version directory without both files, and a crash leaves
	// only debris under a dot-name Open ignores.
	tmp, err := os.MkdirTemp(r.dir, ".staging-"+version+"-")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: staging %s: %w", version, err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	// MkdirTemp creates 0700; installed versions should be readable like
	// any artifact directory.
	if err := os.Chmod(tmp, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("registry: staging %s: %w", version, err)
	}
	if err := writeFileSync(filepath.Join(tmp, modelFile), art); err != nil {
		return Manifest{}, err
	}
	if err := writeFileSync(filepath.Join(tmp, manifestFile), append(manJSON, '\n')); err != nil {
		return Manifest{}, err
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, version)); err != nil {
		return Manifest{}, fmt.Errorf("registry: installing %s: %w", version, err)
	}
	det.SetVersion(version)
	r.manifests[version] = man
	return man, nil
}

// Load reads a registered version from disk, verifies its content hash
// against the manifest and returns the detector stamped with its
// version.
func (r *Registry) Load(version string) (Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.load(version)
}

func (r *Registry) load(version string) (Model, error) {
	man, err := readManifest(filepath.Join(r.dir, version, manifestFile))
	if err != nil {
		return Model{}, fmt.Errorf("registry: version %s: %w", version, err)
	}
	art, err := os.ReadFile(filepath.Join(r.dir, version, modelFile))
	if err != nil {
		return Model{}, fmt.Errorf("registry: version %s: %w", version, err)
	}
	sum := sha256.Sum256(art)
	if got := hex.EncodeToString(sum[:]); got != man.Hash {
		return Model{}, fmt.Errorf("registry: version %s: artifact hash %s does not match manifest %s (corrupt or tampered artifact)", version, got, man.Hash)
	}
	det, err := core.Load(bytes.NewReader(art), r.rank)
	if err != nil {
		return Model{}, fmt.Errorf("registry: version %s: %w", version, err)
	}
	det.SetVersion(version)
	return Model{Detector: det, Manifest: man}, nil
}

// SetChampion promotes a registered version: the artifact is loaded and
// verified, the CHAMPION file is replaced atomically, and the in-memory
// pointer is swapped. Scorers resolving the source after SetChampion
// returns — and possibly a moment before, once the pointer is stored —
// get the new detector; in-flight requests finish on the old one. No
// scoring path blocks at any point.
func (r *Registry) SetChampion(version string) (Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.load(version)
	if err != nil {
		return Model{}, err
	}
	// Persist first: if the rename fails the in-memory champion is
	// unchanged and the error surfaces; if the process dies after the
	// rename, Open restores exactly this promotion.
	tmp := filepath.Join(r.dir, "."+championFile+".tmp")
	if err := writeFileSync(tmp, []byte(version+"\n")); err != nil {
		return Model{}, err
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, championFile)); err != nil {
		return Model{}, fmt.Errorf("registry: installing %s: %w", championFile, err)
	}
	r.champion.Swap(m.Detector)
	man := m.Manifest
	r.championMan = &man
	return m, nil
}

// FeatureSetHash fingerprints the feature schema a detector trained on
// set consumes: the set name plus every projected feature name, in
// order. Models sharing the hash read identical vector layouts and are
// therefore hot-swap compatible.
func FeatureSetHash(set features.Set) string {
	if set == 0 {
		set = features.All
	}
	h := sha256.New()
	h.Write([]byte(set.String()))
	h.Write([]byte{0})
	names := features.Names()
	if set != features.All {
		idx := features.Indices(set)
		proj := make([]string, 0, len(idx))
		for _, i := range idx {
			if i < len(names) {
				proj = append(proj, names[i])
			}
		}
		names = proj
	}
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (r *Registry) maxVersionLocked() int {
	max := 0
	for v := range r.manifests {
		if n, ok := versionNumber(v); ok && n > max {
			max = n
		}
	}
	return max
}

func isVersion(name string) bool {
	_, ok := versionNumber(name)
	return ok
}

func versionNumber(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'v' {
		return 0, false
	}
	n := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func readManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("decoding manifest: %w", err)
	}
	if m.Version == "" || m.Hash == "" {
		return Manifest{}, errors.New("manifest missing version or hash")
	}
	return m, nil
}

// writeFileSync writes data and fsyncs before closing, so a rename that
// follows publishes fully durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("registry: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("registry: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("registry: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("registry: closing %s: %w", path, err)
	}
	return nil
}
