package registry

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"knowphish/internal/core"
	"knowphish/internal/dataset"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/webgen"
)

var (
	fixOnce sync.Once
	fixCorp *dataset.Corpus
	fixErr  error
)

func fixtureCorpus(t testing.TB) *dataset.Corpus {
	t.Helper()
	fixOnce.Do(func() {
		fixCorp, fixErr = dataset.Build(dataset.Config{
			Seed:              91,
			Scale:             150,
			World:             webgen.Config{Seed: 92, Brands: 40, RankedGenerics: 40, VocabularyWords: 80},
			SkipLanguageTests: true,
		})
	})
	if fixErr != nil {
		t.Fatalf("corpus: %v", fixErr)
	}
	return fixCorp
}

func trainFixture(t testing.TB, seed int64) *core.Detector {
	t.Helper()
	c := fixtureCorpus(t)
	snaps := append(c.LegTrain.Snapshots(), c.PhishTrain.Snapshots()...)
	labels := append(c.LegTrain.Labels(), c.PhishTrain.Labels()...)
	d, err := core.Train(snaps, labels, core.TrainConfig{
		Rank: c.World.Ranking(),
		GBM:  ml.GBMConfig{Trees: 20, MaxDepth: 3, Seed: seed},
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return d
}

func openRegistry(t testing.TB) *Registry {
	t.Helper()
	r, err := Open(t.TempDir(), fixtureCorpus(t).World.Ranking())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return r
}

// TestRoundTrip is the registry artifact round-trip check wired into
// `make registry-check` / CI: train → Save → Load must reproduce
// identical scores on a fixture batch, and the loaded artifact's hash
// must verify.
func TestRoundTrip(t *testing.T) {
	c := fixtureCorpus(t)
	det := trainFixture(t, 7)
	r := openRegistry(t)

	man, err := r.Save(det, TrainingStats{Samples: 10, Phish: 5, Legitimate: 5, Source: "test"}, "round-trip")
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if man.Version != "v0001" {
		t.Errorf("version = %q, want v0001", man.Version)
	}
	if det.Version() != "v0001" {
		t.Errorf("detector not stamped: %q", det.Version())
	}
	if len(man.Hash) != 64 {
		t.Errorf("hash %q is not sha256 hex", man.Hash)
	}
	if man.FeatureSetHash != FeatureSetHash(features.All) {
		t.Errorf("feature-set hash mismatch")
	}

	loaded, err := r.Load("v0001")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Manifest.Hash != man.Hash {
		t.Errorf("manifest hash changed across load")
	}
	if loaded.Detector.Version() != "v0001" {
		t.Errorf("loaded detector version = %q", loaded.Detector.Version())
	}
	// Identical scores on a fixture batch.
	for i, ex := range c.PhishTest.Examples {
		if i >= 16 {
			break
		}
		want := det.Score(ex.Snapshot)
		got := loaded.Detector.Score(ex.Snapshot)
		if want != got {
			t.Fatalf("example %d: loaded model scores %v, original %v", i, got, want)
		}
	}
}

// TestSaveIsDeterministic pins the reproducibility contract the content
// hash relies on: two trainings from the same corpus, configuration and
// seed must produce byte-identical artifacts, hence equal hashes.
func TestSaveIsDeterministic(t *testing.T) {
	r := openRegistry(t)
	m1, err := r.Save(trainFixture(t, 7), TrainingStats{}, "")
	if err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	m2, err := r.Save(trainFixture(t, 7), TrainingStats{}, "")
	if err != nil {
		t.Fatalf("Save 2: %v", err)
	}
	if m1.Hash != m2.Hash {
		t.Fatalf("same seed trained different artifacts: %s vs %s", m1.Hash, m2.Hash)
	}
	// A different seed must not collide.
	m3, err := r.Save(trainFixture(t, 8), TrainingStats{}, "")
	if err != nil {
		t.Fatalf("Save 3: %v", err)
	}
	if m3.Hash == m1.Hash {
		t.Fatalf("different seeds produced identical artifacts")
	}
}

func TestChampionPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	rank := fixtureCorpus(t).World.Ranking()
	r, err := Open(dir, rank)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, ok := r.Champion(); ok {
		t.Fatal("empty registry reports a champion")
	}
	if r.Current() != nil {
		t.Fatal("empty registry serves a detector")
	}
	if _, err := r.Save(trainFixture(t, 7), TrainingStats{}, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := r.Save(trainFixture(t, 8), TrainingStats{}, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := r.SetChampion("v0002"); err != nil {
		t.Fatalf("SetChampion: %v", err)
	}
	if got := r.ChampionVersion(); got != "v0002" {
		t.Fatalf("champion = %q, want v0002", got)
	}

	r2, err := Open(dir, rank)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := r2.ChampionVersion(); got != "v0002" {
		t.Fatalf("champion after reopen = %q, want v0002", got)
	}
	if r2.Len() != 2 {
		t.Fatalf("Len after reopen = %d, want 2", r2.Len())
	}
	vs := r2.List()
	if len(vs) != 2 || vs[0].Version != "v0001" || vs[1].Version != "v0002" {
		t.Fatalf("List = %+v", vs)
	}
	// Version assignment continues after the existing ones.
	man, err := r2.Save(trainFixture(t, 9), TrainingStats{}, "")
	if err != nil {
		t.Fatalf("Save after reopen: %v", err)
	}
	if man.Version != "v0003" {
		t.Fatalf("next version = %q, want v0003", man.Version)
	}
}

// TestSaveSeesExternalVersions pins the cross-process contract: a
// second registry handle on the same directory (kptrain -registry
// against a live kpserve's registry) must neither collide on version
// assignment nor stay invisible to List.
func TestSaveSeesExternalVersions(t *testing.T) {
	dir := t.TempDir()
	rank := fixtureCorpus(t).World.Ranking()
	r1, err := Open(dir, rank)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Save(trainFixture(t, 7), TrainingStats{}, ""); err != nil {
		t.Fatal(err)
	}
	// A second process registers v0002 behind r1's back.
	r2, err := Open(dir, rank)
	if err != nil {
		t.Fatal(err)
	}
	if man, err := r2.Save(trainFixture(t, 8), TrainingStats{}, ""); err != nil || man.Version != "v0002" {
		t.Fatalf("external Save = %+v, %v", man, err)
	}
	// r1's next Save must take v0003, not crash into the existing v0002.
	man, err := r1.Save(trainFixture(t, 9), TrainingStats{}, "")
	if err != nil {
		t.Fatalf("Save after external registration: %v", err)
	}
	if man.Version != "v0003" {
		t.Fatalf("version = %q, want v0003", man.Version)
	}
	// And r1's listing reflects the directory, not its private snapshot.
	vs := r1.List()
	if len(vs) != 3 || vs[1].Version != "v0002" {
		t.Fatalf("List after external registration = %+v", vs)
	}
	// Promoting the externally registered version works too.
	if _, err := r1.SetChampion("v0002"); err != nil {
		t.Fatalf("SetChampion(external): %v", err)
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := r.Save(trainFixture(t, 7), TrainingStats{}, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, "v0001", "model.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("v0001"); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("corrupted artifact loaded without a hash error: %v", err)
	}
}

func TestSetChampionUnknownVersion(t *testing.T) {
	r := openRegistry(t)
	if _, err := r.SetChampion("v0042"); err == nil {
		t.Fatal("promoting an unknown version succeeded")
	}
}

// TestHotSwapRace drives concurrent ScoreCtx and AnalyzeBatchCtx
// against the registry source while the champion is swapped repeatedly.
// Under -race (CI) this proves the zero-downtime swap contract: no data
// race, no blocked or failed scorer, and every verdict is attributable
// to exactly one of the registered versions.
func TestHotSwapRace(t *testing.T) {
	c := fixtureCorpus(t)
	r := openRegistry(t)
	if _, err := r.Save(trainFixture(t, 7), TrainingStats{}, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := r.Save(trainFixture(t, 8), TrainingStats{}, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := r.SetChampion("v0001"); err != nil {
		t.Fatalf("SetChampion: %v", err)
	}

	snaps := c.PhishTest.Snapshots()
	if len(snaps) > 8 {
		snaps = snaps[:8]
	}
	reqs := make([]core.ScoreRequest, len(snaps))
	for i, s := range snaps {
		reqs[i] = core.NewScoreRequest(s, core.WithoutTargetID())
	}

	const (
		scorers = 4
		swaps   = 50
	)
	ctx := context.Background()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < scorers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				det := r.Current()
				if det == nil {
					t.Error("Current() returned nil mid-swap")
					return
				}
				if g%2 == 0 {
					v, err := det.ScoreCtx(ctx, reqs[i%len(reqs)])
					if err != nil {
						t.Errorf("ScoreCtx: %v", err)
						return
					}
					if v.ModelVersion != "v0001" && v.ModelVersion != "v0002" {
						t.Errorf("verdict carries unknown version %q", v.ModelVersion)
						return
					}
				} else {
					vs, err := det.ScoreBatchCtx(ctx, reqs, 2)
					if err != nil {
						t.Errorf("ScoreBatchCtx: %v", err)
						return
					}
					for _, v := range vs {
						if v == nil {
							t.Error("batch item missing without cancellation")
							return
						}
						if v.ModelVersion != det.Version() {
							t.Errorf("batch verdict version %q from detector %q", v.ModelVersion, det.Version())
							return
						}
					}
				}
			}
		}(g)
	}
	versions := [2]string{"v0001", "v0002"}
	for i := 0; i < swaps; i++ {
		if _, err := r.SetChampion(versions[i%2]); err != nil {
			t.Errorf("SetChampion: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()
}
