package urlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExample(t *testing.T) {
	// The worked example from Section II-B of the paper.
	p := MustParse("https://www.amazon.co.uk/ap/signin?_encoding=UTF8")
	if p.Protocol != "https" {
		t.Errorf("Protocol = %q, want https", p.Protocol)
	}
	if p.FQDN != "www.amazon.co.uk" {
		t.Errorf("FQDN = %q, want www.amazon.co.uk", p.FQDN)
	}
	if p.RDN != "amazon.co.uk" {
		t.Errorf("RDN = %q, want amazon.co.uk", p.RDN)
	}
	if p.MLD != "amazon" {
		t.Errorf("MLD = %q, want amazon", p.MLD)
	}
	if p.PublicSuffix != "co.uk" {
		t.Errorf("PublicSuffix = %q, want co.uk", p.PublicSuffix)
	}
	if p.Subdomains != "www" {
		t.Errorf("Subdomains = %q, want www", p.Subdomains)
	}
	if p.Path != "/ap/signin" {
		t.Errorf("Path = %q, want /ap/signin", p.Path)
	}
	if p.Query != "_encoding=UTF8" {
		t.Errorf("Query = %q, want _encoding=UTF8", p.Query)
	}
	free := p.FreeURL()
	for _, want := range []string{"www", "/ap/signin", "_encoding=UTF8"} {
		if !strings.Contains(free, want) {
			t.Errorf("FreeURL() = %q, missing %q", free, want)
		}
	}
	if strings.Contains(free, "amazon") {
		t.Errorf("FreeURL() = %q must not contain the RDN", free)
	}
}

func TestParseVariants(t *testing.T) {
	tests := []struct {
		name string
		raw  string
		want Parts
	}{
		{
			name: "bare domain",
			raw:  "example.com",
			want: Parts{FQDN: "example.com", RDN: "example.com", MLD: "example", PublicSuffix: "com"},
		},
		{
			name: "http with port",
			raw:  "http://login.bank.example.com:8080/a",
			want: Parts{Protocol: "http", FQDN: "login.bank.example.com", Subdomains: "login.bank", RDN: "example.com", MLD: "example", PublicSuffix: "com", Path: "/a", Port: "8080"},
		},
		{
			name: "query only",
			raw:  "https://example.org?x=1",
			want: Parts{Protocol: "https", FQDN: "example.org", RDN: "example.org", MLD: "example", PublicSuffix: "org", Query: "x=1"},
		},
		{
			name: "fragment stripped",
			raw:  "https://example.net/path#frag",
			want: Parts{Protocol: "https", FQDN: "example.net", RDN: "example.net", MLD: "example", PublicSuffix: "net", Path: "/path"},
		},
		{
			name: "userinfo obfuscation",
			raw:  "http://paypal.com@evil.example.com/login",
			want: Parts{Protocol: "http", FQDN: "evil.example.com", Subdomains: "evil", RDN: "example.com", MLD: "example", PublicSuffix: "com", Path: "/login"},
		},
		{
			name: "uppercase host folded",
			raw:  "HTTP://WWW.Example.COM/Path",
			want: Parts{Protocol: "http", FQDN: "www.example.com", Subdomains: "www", RDN: "example.com", MLD: "example", PublicSuffix: "com", Path: "/Path"},
		},
		{
			name: "deep subdomains",
			raw:  "http://a.b.c.d.example.co.uk/",
			want: Parts{Protocol: "http", FQDN: "a.b.c.d.example.co.uk", Subdomains: "a.b.c.d", RDN: "example.co.uk", MLD: "example", PublicSuffix: "co.uk", Path: "/"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.raw)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.raw, err)
			}
			got.Raw = ""
			if got != tt.want {
				t.Errorf("Parse(%q)\n got %+v\nwant %+v", tt.raw, got, tt.want)
			}
		})
	}
}

func TestParseIPLiterals(t *testing.T) {
	for _, raw := range []string{
		"http://192.168.13.7/login.php",
		"http://8.8.8.8:8080/x?y=1",
	} {
		p := MustParse(raw)
		if !p.IsIP {
			t.Errorf("Parse(%q).IsIP = false, want true", raw)
		}
		if p.RDN != "" || p.MLD != "" {
			t.Errorf("Parse(%q) RDN=%q MLD=%q, want empty for IP literal", raw, p.RDN, p.MLD)
		}
		if p.LevelDomains() != 0 {
			t.Errorf("Parse(%q).LevelDomains() = %d, want 0", raw, p.LevelDomains())
		}
	}
	// Things that look like IPs but are not.
	for _, raw := range []string{"http://256.1.1.1/", "http://1.2.3.4.5/", "http://12.34.56.com/"} {
		if p := MustParse(raw); p.IsIP {
			t.Errorf("Parse(%q).IsIP = true, want false", raw)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse("   "); err == nil {
		t.Fatal("Parse(blank) error = nil, want ErrEmptyURL")
	}
}

func TestPublicSuffixWildcardAndException(t *testing.T) {
	l := DefaultPSL()
	if got := l.PublicSuffix("foo.bar.ck"); got != "bar.ck" {
		t.Errorf("PublicSuffix(foo.bar.ck) = %q, want bar.ck (wildcard)", got)
	}
	if got := l.PublicSuffix("www.ck"); got != "ck" {
		t.Errorf("PublicSuffix(www.ck) = %q, want ck (exception)", got)
	}
	if got := l.PublicSuffix("unknowntld123.zz"); got != "zz" {
		t.Errorf("PublicSuffix for unknown TLD = %q, want zz (implicit rule)", got)
	}
}

func TestPublicSuffixWholeFQDNIsSuffix(t *testing.T) {
	p := MustParse("http://co.uk/")
	if p.RDN != "" || p.MLD != "" {
		t.Errorf("co.uk should have no registrable domain, got RDN=%q MLD=%q", p.RDN, p.MLD)
	}
}

func TestReadPSL(t *testing.T) {
	src := "// comment line\ncom\nweird.example\n\n*.wild\n!ok.wild\n"
	l, err := ReadPSL(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadPSL: %v", err)
	}
	if got := l.PublicSuffix("a.weird.example"); got != "weird.example" {
		t.Errorf("PublicSuffix(a.weird.example) = %q, want weird.example", got)
	}
	if got := l.PublicSuffix("x.y.wild"); got != "y.wild" {
		t.Errorf("PublicSuffix(x.y.wild) = %q, want y.wild", got)
	}
	if got := l.PublicSuffix("ok.wild"); got != "wild" {
		t.Errorf("PublicSuffix(ok.wild) = %q, want wild", got)
	}
}

func TestLevelDomains(t *testing.T) {
	if got := MustParse("http://a.b.example.com/").LevelDomains(); got != 4 {
		t.Errorf("LevelDomains = %d, want 4", got)
	}
	if got := MustParse("http://example.com/").LevelDomains(); got != 2 {
		t.Errorf("LevelDomains = %d, want 2", got)
	}
}

func TestIsHTTPS(t *testing.T) {
	if !MustParse("https://example.com").IsHTTPS() {
		t.Error("https URL not detected")
	}
	if MustParse("http://example.com").IsHTTPS() {
		t.Error("http URL misdetected as https")
	}
}

func TestStringReassembly(t *testing.T) {
	for _, raw := range []string{
		"https://www.amazon.co.uk/ap/signin?_encoding=UTF8",
		"http://example.com/",
		"http://example.com:8080/a?b=c",
	} {
		p := MustParse(raw)
		back := MustParse(p.String())
		back.Raw, p.Raw = "", ""
		if back != p {
			t.Errorf("roundtrip mismatch for %q:\n first %+v\nsecond %+v", raw, p, back)
		}
	}
}

// Property: for any parsed URL with a non-empty RDN, the RDN is a suffix of
// the FQDN and equals MLD + "." + PublicSuffix (or MLD when no suffix).
func TestQuickRDNInvariant(t *testing.T) {
	f := func(sub subdomainLabel, mld domainLabel, path pathString) bool {
		raw := "http://" + string(sub) + "." + string(mld) + ".com" + string(path)
		p, err := Parse(raw)
		if err != nil {
			return false
		}
		if p.RDN == "" {
			return false
		}
		if !strings.HasSuffix(p.FQDN, p.RDN) {
			return false
		}
		want := p.MLD
		if p.PublicSuffix != "" {
			want += "." + p.PublicSuffix
		}
		return p.RDN == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FreeURL never contains the MLD as a standalone label taken from
// the RDN (the RDN is excluded from FreeURL by construction).
func TestQuickFreeURLExcludesRDN(t *testing.T) {
	f := func(mld domainLabel) bool {
		raw := "http://www." + string(mld) + ".com/index"
		p, err := Parse(raw)
		if err != nil {
			return false
		}
		return p.FreeURL() == "www /index"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Generators producing well-formed URL fragments for quick.Check live in
// quick_test.go.

func TestFreeURLDotsMatchesFreeURL(t *testing.T) {
	cases := []string{
		"https://www.amazon.co.uk/ap/signin?_encoding=UTF8",
		"http://a.b.c.example.com/x.y/z.html?v=1.2.3",
		"http://example.com",
		"http://192.168.0.1/login.php",
		"example.com/path.with.dots",
		"http://example.com/?q=..",
	}
	for _, raw := range cases {
		p := MustParse(raw)
		if got, want := p.FreeURLDots(), strings.Count(p.FreeURL(), "."); got != want {
			t.Errorf("FreeURLDots(%q) = %d, want %d", raw, got, want)
		}
	}
}
