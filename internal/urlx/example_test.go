package urlx_test

import (
	"fmt"

	"knowphish/internal/urlx"
)

func ExampleParse() {
	// The worked example from Section II-B of the paper.
	p := urlx.MustParse("https://www.amazon.co.uk/ap/signin?_encoding=UTF8")
	fmt.Println("FQDN:", p.FQDN)
	fmt.Println("RDN:", p.RDN)
	fmt.Println("mld:", p.MLD)
	fmt.Println("FreeURL:", p.FreeURL())
	// Output:
	// FQDN: www.amazon.co.uk
	// RDN: amazon.co.uk
	// mld: amazon
	// FreeURL: www /ap/signin _encoding=UTF8
}

func ExampleDecodeHost() {
	// An IDN homograph domain as it appears in a URL.
	fmt.Println(urlx.DecodeHost("xn--mnchen-3ya.example"))
	// Output: münchen.example
}
