package urlx

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
)

// PSL is a public suffix list supporting longest-match lookup with
// wildcard ("*.ck") and exception ("!www.ck") rules, following the
// publicsuffix.org algorithm. The zero value is unusable; construct with
// NewPSL or load rules with ReadPSL.
type PSL struct {
	rules      map[string]struct{}
	wildcards  map[string]struct{} // base of "*.<base>" rules
	exceptions map[string]struct{} // domain of "!<domain>" rules
}

// NewPSL builds a suffix list from explicit rules using the
// publicsuffix.org rule syntax ("com", "co.uk", "*.ck", "!www.ck").
func NewPSL(rules []string) *PSL {
	l := &PSL{
		rules:      make(map[string]struct{}, len(rules)),
		wildcards:  make(map[string]struct{}),
		exceptions: make(map[string]struct{}),
	}
	for _, r := range rules {
		l.addRule(r)
	}
	return l
}

func (l *PSL) addRule(r string) {
	r = strings.ToLower(strings.TrimSpace(r))
	if r == "" || strings.HasPrefix(r, "//") {
		return
	}
	switch {
	case strings.HasPrefix(r, "!"):
		l.exceptions[r[1:]] = struct{}{}
	case strings.HasPrefix(r, "*."):
		l.wildcards[r[2:]] = struct{}{}
	default:
		l.rules[r] = struct{}{}
	}
}

// ReadPSL parses rules in publicsuffix.org file format from r.
func ReadPSL(r io.Reader) (*PSL, error) {
	l := NewPSL(nil)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		l.addRule(sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("urlx: reading public suffix list: %w", err)
	}
	return l, nil
}

// PublicSuffix returns the public suffix of fqdn per the PSL algorithm:
// the longest matching rule wins; wildcard rules match one extra label;
// exception rules override wildcards. If no rule matches, the last label
// is the suffix (the implicit "*" rule).
func (l *PSL) PublicSuffix(fqdn string) string {
	fqdn = strings.ToLower(strings.TrimRight(fqdn, "."))
	if fqdn == "" {
		return ""
	}
	labels := strings.Split(fqdn, ".")
	best := ""
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if _, ok := l.exceptions[candidate]; ok {
			// Exception rule: the suffix is one label shorter.
			if i+1 < len(labels) {
				return strings.Join(labels[i+1:], ".")
			}
			return ""
		}
		if _, ok := l.rules[candidate]; ok && len(candidate) > len(best) {
			best = candidate
		}
		if i > 0 {
			if _, ok := l.wildcards[candidate]; ok {
				wild := strings.Join(labels[i-1:], ".")
				if len(wild) > len(best) {
					best = wild
				}
			}
		}
	}
	if best == "" {
		return labels[len(labels)-1]
	}
	return best
}

// defaultRules is a representative subset of the public suffix list: the
// generic TLDs plus the country-code second-level registries relevant to
// the six evaluation languages and the synthetic world. The paper ships
// the full list; loading one via ReadPSL gives identical behaviour.
var defaultRules = []string{
	"com", "org", "net", "edu", "gov", "mil", "int", "info", "biz",
	"name", "pro", "mobi", "travel", "jobs", "cat", "tel", "xxx",
	"io", "co", "me", "tv", "cc", "ws", "us", "eu", "asia",
	"online", "site", "top", "xyz", "club", "shop", "app", "dev",
	"bank", "cloud", "store", "tech", "web", "page",
	// United Kingdom
	"uk", "co.uk", "org.uk", "ac.uk", "gov.uk", "net.uk", "sch.uk",
	// France
	"fr", "com.fr", "asso.fr", "gouv.fr",
	// Germany
	"de",
	// Italy
	"it", "gov.it", "edu.it",
	// Portugal / Brazil
	"pt", "com.pt", "org.pt", "br", "com.br", "net.br", "org.br", "gov.br",
	// Spain / Latin America
	"es", "com.es", "org.es", "mx", "com.mx", "ar", "com.ar",
	// Misc frequently seen
	"ru", "com.ru", "cn", "com.cn", "jp", "co.jp", "ne.jp", "or.jp",
	"au", "com.au", "net.au", "org.au", "nz", "co.nz", "net.nz",
	"in", "co.in", "net.in", "za", "co.za", "pl", "com.pl", "nl",
	"be", "ch", "at", "se", "no", "dk", "fi", "cz", "gr", "tr", "com.tr",
	"kr", "co.kr", "hk", "com.hk", "sg", "com.sg", "tw", "com.tw",
	"ca", "qc.ca", "on.ca", "ua", "com.ua", "il", "co.il",
	// Wildcard + exception examples from the PSL spec, kept so the
	// algorithm paths stay exercised.
	"*.ck", "!www.ck", "*.bd",
}

var (
	defaultPSLOnce sync.Once
	defaultPSL     *PSL
)

// DefaultPSL returns the process-wide suffix list built from the embedded
// subset. The returned value is shared and must be treated as read-only.
func DefaultPSL() *PSL {
	defaultPSLOnce.Do(func() {
		defaultPSL = NewPSL(defaultRules)
	})
	return defaultPSL
}
