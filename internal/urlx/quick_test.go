package urlx

// Helpers shared by the testing/quick generators in this package.

import (
	"math/rand"
	"reflect"
	"strings"
)

type (
	quickRand  = rand.Rand
	quickValue = reflect.Value
)

// genLabelStr produces a lowercase a-z label with length in [min, max].
func genLabelStr(r *rand.Rand, min, max int) string {
	n := min + r.Intn(max-min+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

type domainLabel string

func (domainLabel) Generate(r *quickRand, _ int) quickValue {
	return reflect.ValueOf(domainLabel(genLabelStr(r, 3, 12)))
}

type subdomainLabel string

func (subdomainLabel) Generate(r *quickRand, _ int) quickValue {
	return reflect.ValueOf(subdomainLabel(genLabelStr(r, 1, 8)))
}

type pathString string

func (pathString) Generate(r *quickRand, _ int) quickValue {
	n := r.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('/')
		b.WriteString(genLabelStr(r, 1, 6))
	}
	if b.Len() == 0 {
		b.WriteByte('/')
	}
	return reflect.ValueOf(pathString(b.String()))
}
