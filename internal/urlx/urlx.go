// Package urlx decomposes URLs into the structural components used
// throughout the paper (Section II-B, Fig. 1):
//
//	protocol://[subdomains.]mld.ps[/path][?query]
//	           \____________________/
//	                    FQDN
//	                        \______/
//	                          RDN = mld + "." + ps
//
// The registered domain name (RDN) is the only part of a URL a phisher
// cannot choose freely: it must be registered with a registrar. Everything
// else — subdomains, path, query — is "FreeURL", fully under the control of
// whoever operates the server. The split between RDN and FreeURL is the
// foundation of the paper's "modeling phisher limitations" conjecture.
package urlx

import (
	"errors"
	"fmt"
	"strings"
)

// Parts holds the decomposition of a URL per the paper's Fig. 1.
type Parts struct {
	// Raw is the original URL string.
	Raw string `json:"raw"`
	// Protocol is the scheme, e.g. "https". Empty when the URL is
	// scheme-relative or malformed.
	Protocol string `json:"protocol"`
	// FQDN is the fully qualified domain name (host without port), e.g.
	// "www.amazon.co.uk". For IP-literal URLs it holds the address text.
	FQDN string `json:"fqdn"`
	// Subdomains is the prefix of the FQDN before the RDN, e.g. "www".
	// Empty when the FQDN equals the RDN.
	Subdomains string `json:"subdomains,omitempty"`
	// RDN is the registered domain name, e.g. "amazon.co.uk". Empty for
	// IP-literal hosts.
	RDN string `json:"rdn,omitempty"`
	// MLD is the main level domain, e.g. "amazon".
	MLD string `json:"mld,omitempty"`
	// PublicSuffix is the effective TLD, e.g. "co.uk".
	PublicSuffix string `json:"public_suffix,omitempty"`
	// Path is the path component including the leading "/", if any.
	Path string `json:"path,omitempty"`
	// Query is the query string without the leading "?", if any.
	Query string `json:"query,omitempty"`
	// IsIP reports whether the host is an IPv4/IPv6 literal. IP-based
	// phishing URLs are discussed in Section VII-B/VII-C of the paper:
	// they defeat domain-based features (empty RDN distributions).
	IsIP bool `json:"is_ip,omitempty"`
	// Port holds an explicit port if one was present, without the colon.
	Port string `json:"port,omitempty"`
}

// ErrEmptyURL is returned by Parse for empty or blank input.
var ErrEmptyURL = errors.New("urlx: empty URL")

// Parse decomposes raw into its structural parts using the package-level
// public suffix list. It is tolerant: URLs without a scheme are accepted
// (scheme defaults to empty), and a best-effort decomposition is always
// returned for non-empty input.
func Parse(raw string) (Parts, error) {
	return DefaultPSL().Parse(raw)
}

// MustParse is Parse for inputs known to be well-formed, typically in tests
// and examples. It panics on error.
func MustParse(raw string) Parts {
	p, err := Parse(raw)
	if err != nil {
		panic(fmt.Sprintf("urlx: MustParse(%q): %v", raw, err))
	}
	return p
}

// Parse decomposes raw against this suffix list. See the package-level
// Parse for semantics.
func (l *PSL) Parse(raw string) (Parts, error) {
	trimmed := strings.TrimSpace(raw)
	if trimmed == "" {
		return Parts{}, ErrEmptyURL
	}
	p := Parts{Raw: raw}
	rest := trimmed

	if i := strings.Index(rest, "://"); i >= 0 {
		p.Protocol = strings.ToLower(rest[:i])
		rest = rest[i+len("://"):]
	}

	// Split host[:port] from path/query. The first of '/', '?', '#'
	// terminates the authority.
	hostport := rest
	var tail string
	if i := strings.IndexAny(rest, "/?#"); i >= 0 {
		hostport = rest[:i]
		tail = rest[i:]
	}

	// Strip userinfo if present (rare but used in URL obfuscation:
	// http://paypal.com@evil.example/).
	if i := strings.LastIndexByte(hostport, '@'); i >= 0 {
		hostport = hostport[i+1:]
	}

	host, port := splitHostPort(hostport)
	p.Port = port
	// Trim every trailing dot, not just one: "host.." must normalize to
	// the same FQDN PublicSuffix sees, or the label arithmetic below
	// misaligns (found by FuzzParse: "0.." yielded RDN "0.0").
	p.FQDN = strings.ToLower(strings.TrimRight(host, "."))

	switch {
	case tail == "":
	case tail[0] == '/':
		if i := strings.IndexByte(tail, '?'); i >= 0 {
			p.Path = stripFragment(tail[:i])
			p.Query = stripFragment(tail[i+1:])
		} else {
			p.Path = stripFragment(tail)
		}
	case tail[0] == '?':
		p.Query = stripFragment(tail[1:])
	}

	if isIPLiteral(p.FQDN) {
		p.IsIP = true
		return p, nil
	}

	if p.FQDN == "" {
		return p, nil
	}

	ps := l.PublicSuffix(p.FQDN)
	p.PublicSuffix = ps
	labels := strings.Split(p.FQDN, ".")
	psLabels := 0
	if ps != "" {
		psLabels = strings.Count(ps, ".") + 1
	}
	if psLabels >= len(labels) {
		// The whole FQDN is a public suffix (e.g. "co.uk" itself):
		// no registrable domain.
		return p, nil
	}
	p.MLD = labels[len(labels)-psLabels-1]
	if ps == "" {
		p.RDN = p.MLD
	} else {
		p.RDN = p.MLD + "." + ps
	}
	if extra := len(labels) - psLabels - 1; extra > 0 {
		p.Subdomains = strings.Join(labels[:extra], ".")
	}
	return p, nil
}

// FreeURL returns the concatenation of all parts of the URL that the page
// owner fully controls: subdomains, path and query (Section II-B). The RDN
// and protocol are excluded.
func (p Parts) FreeURL() string {
	var b strings.Builder
	b.WriteString(p.Subdomains)
	if p.Path != "" {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.Path)
	}
	if p.Query != "" {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.Query)
	}
	if p.IsIP && b.Len() == 0 {
		return ""
	}
	return b.String()
}

// FreeURLDots returns strings.Count(p.FreeURL(), ".") without building
// the FreeURL string: the separator FreeURL joins components with is a
// space, so the dot count is the sum over the components. The dots-in-
// FreeURL statistic (feature 2 of Table IV) is computed for every URL
// of every scored page, which is why it gets an allocation-free path.
func (p Parts) FreeURLDots() int {
	return strings.Count(p.Subdomains, ".") +
		strings.Count(p.Path, ".") +
		strings.Count(p.Query, ".")
}

// LevelDomains returns the number of dot-separated labels in the FQDN
// (feature 3 of Table IV). IP literals count as zero levels.
func (p Parts) LevelDomains() int {
	if p.IsIP || p.FQDN == "" {
		return 0
	}
	return strings.Count(p.FQDN, ".") + 1
}

// IsHTTPS reports whether the protocol is https (feature 1 of Table IV).
func (p Parts) IsHTTPS() bool { return p.Protocol == "https" }

// String reassembles a canonical form of the URL.
func (p Parts) String() string {
	var b strings.Builder
	if p.Protocol != "" {
		b.WriteString(p.Protocol)
		b.WriteString("://")
	}
	b.WriteString(p.FQDN)
	if p.Port != "" {
		b.WriteByte(':')
		b.WriteString(p.Port)
	}
	b.WriteString(p.Path)
	if p.Query != "" {
		b.WriteByte('?')
		b.WriteString(p.Query)
	}
	return b.String()
}

func stripFragment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}

func splitHostPort(hostport string) (host, port string) {
	if strings.HasPrefix(hostport, "[") {
		// IPv6 literal [::1]:8080
		if i := strings.IndexByte(hostport, ']'); i >= 0 {
			host = hostport[1:i]
			rest := hostport[i+1:]
			if strings.HasPrefix(rest, ":") {
				port = rest[1:]
			}
			return host, port
		}
		return hostport, ""
	}
	if i := strings.LastIndexByte(hostport, ':'); i >= 0 {
		candidate := hostport[i+1:]
		if isDigits(candidate) {
			return hostport[:i], candidate
		}
	}
	return hostport, ""
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isIPLiteral(host string) bool {
	if host == "" {
		return false
	}
	if strings.Contains(host, ":") {
		// Contains a colon after port stripping: IPv6.
		return true
	}
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if !isDigits(p) || len(p) > 3 {
			return false
		}
		v := 0
		for i := 0; i < len(p); i++ {
			v = v*10 + int(p[i]-'0')
		}
		if v > 255 {
			return false
		}
	}
	return true
}
