package urlx

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPunycodeRFCVectors(t *testing.T) {
	// Well-known vectors: the RFC 3492 samples plus IDNA classics.
	tests := []struct{ unicode, encoded string }{
		{"münchen", "mnchen-3ya"},
		{"bücher", "bcher-kva"},
		{"café", "caf-dma"},
		{"абв", "80acd"}, // xn--80a… is the familiar Cyrillic prefix
		{"он", "m1ab"},
	}
	for _, tt := range tests {
		enc, err := EncodePunycodeLabel(tt.unicode)
		if err != nil {
			t.Fatalf("encode %q: %v", tt.unicode, err)
		}
		if enc != tt.encoded {
			t.Errorf("encode %q = %q, want %q", tt.unicode, enc, tt.encoded)
		}
		dec, err := DecodePunycodeLabel(tt.encoded)
		if err != nil {
			t.Fatalf("decode %q: %v", tt.encoded, err)
		}
		if dec != tt.unicode {
			t.Errorf("decode %q = %q, want %q", tt.encoded, dec, tt.unicode)
		}
	}
}

func TestPunycodeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	alphabet := []rune("abcdefgz0123" + "аеорсухіβεαπ" + "üéàñçöß")
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		runes := make([]rune, n)
		for i := range runes {
			runes[i] = alphabet[rng.Intn(len(alphabet))]
		}
		label := string(runes)
		enc, err := EncodePunycodeLabel(label)
		if err != nil {
			t.Fatalf("encode %q: %v", label, err)
		}
		dec, err := DecodePunycodeLabel(enc)
		if err != nil {
			t.Fatalf("decode %q (from %q): %v", enc, label, err)
		}
		if dec != label {
			t.Fatalf("roundtrip %q -> %q -> %q", label, enc, dec)
		}
	}
}

func TestDecodePunycodeErrors(t *testing.T) {
	for _, bad := range []string{"!!!", "99999999999a", "ü-abc"} {
		if _, err := DecodePunycodeLabel(bad); err == nil {
			t.Errorf("decode %q: want error", bad)
		}
	}
	// "a-" is valid: empty delta sequence, decodes to the literal "a".
	if got, err := DecodePunycodeLabel("a-"); err != nil || got != "a" {
		t.Errorf("decode \"a-\" = %q, %v; want \"a\"", got, err)
	}
}

func TestDecodeEncodeHost(t *testing.T) {
	// Homograph of "paypal" with a Cyrillic а.
	uni := "pаypal"
	enc := EncodeHost(uni + ".com")
	if !strings.HasPrefix(enc, ACEPrefix) {
		t.Fatalf("EncodeHost = %q, want xn-- prefix", enc)
	}
	back := DecodeHost(enc)
	if back != uni+".com" {
		t.Errorf("DecodeHost(%q) = %q, want %q", enc, back, uni+".com")
	}
	// ASCII hosts pass through both ways.
	if EncodeHost("www.example.com") != "www.example.com" {
		t.Error("ASCII host changed by EncodeHost")
	}
	if DecodeHost("www.example.com") != "www.example.com" {
		t.Error("ASCII host changed by DecodeHost")
	}
}

func TestUnicodeMLDAndRDN(t *testing.T) {
	enc := EncodeHost("pаypal") // Cyrillic а
	p := MustParse("http://www." + enc + ".com/login")
	if p.MLD != enc {
		t.Fatalf("MLD = %q, want the punycode form %q", p.MLD, enc)
	}
	if got := p.UnicodeMLD(); got != "pаypal" {
		t.Errorf("UnicodeMLD = %q, want the homograph form", got)
	}
	if got := p.UnicodeRDN(); got != "pаypal.com" {
		t.Errorf("UnicodeRDN = %q", got)
	}
	// Plain domains return as-is.
	plain := MustParse("http://example.com/")
	if plain.UnicodeMLD() != "example" || plain.UnicodeRDN() != "example.com" {
		t.Error("ASCII mld/rdn altered")
	}
}
