package urlx

// Punycode (RFC 3492) for internationalized domain labels. Phishing
// domains use IDN homographs ("paypаl.com" with a Cyrillic а) which
// appear in URLs as punycode ("xn--papal-4ve.com"); decoding them lets
// the term layer apply the paper's §III-B homograph canonicalization to
// domain names, not just page text.

import (
	"fmt"
	"strings"
)

// Bootstring parameters for Punycode, RFC 3492 §5.
const (
	pcBase        = 36
	pcTMin        = 1
	pcTMax        = 26
	pcSkew        = 38
	pcDamp        = 700
	pcInitialBias = 72
	pcInitialN    = 128
)

// ACEPrefix is the IDNA ASCII-compatible-encoding label prefix.
const ACEPrefix = "xn--"

func pcAdapt(delta, numPoints int, firstTime bool) int {
	if firstTime {
		delta /= pcDamp
	} else {
		delta /= 2
	}
	delta += delta / numPoints
	k := 0
	for delta > ((pcBase-pcTMin)*pcTMax)/2 {
		delta /= pcBase - pcTMin
		k += pcBase
	}
	return k + (pcBase-pcTMin+1)*delta/(delta+pcSkew)
}

// digitValue maps a basic code point to its base-36 value.
func digitValue(c byte) (int, bool) {
	switch {
	case c >= 'a' && c <= 'z':
		return int(c - 'a'), true
	case c >= 'A' && c <= 'Z':
		return int(c - 'A'), true
	case c >= '0' && c <= '9':
		return int(c-'0') + 26, true
	default:
		return 0, false
	}
}

func digitChar(d int) byte {
	if d < 26 {
		return byte('a' + d)
	}
	return byte('0' + d - 26)
}

// DecodePunycodeLabel decodes one punycode label body (without the
// "xn--" prefix) per RFC 3492 §6.2.
func DecodePunycodeLabel(encoded string) (string, error) {
	output := []rune{}
	input := encoded
	if i := strings.LastIndexByte(encoded, '-'); i >= 0 {
		for _, r := range encoded[:i] {
			if r >= 128 {
				return "", fmt.Errorf("urlx: punycode: non-basic rune %q in literal portion", r)
			}
			output = append(output, r)
		}
		input = encoded[i+1:]
	}
	n := pcInitialN
	i := 0
	bias := pcInitialBias
	pos := 0
	for pos < len(input) {
		oldi := i
		w := 1
		for k := pcBase; ; k += pcBase {
			if pos >= len(input) {
				return "", fmt.Errorf("urlx: punycode: truncated input %q", encoded)
			}
			d, ok := digitValue(input[pos])
			pos++
			if !ok {
				return "", fmt.Errorf("urlx: punycode: bad digit %q", input[pos-1])
			}
			if d > (1<<31-1-i)/w {
				return "", fmt.Errorf("urlx: punycode: overflow in %q", encoded)
			}
			i += d * w
			var t int
			switch {
			case k <= bias:
				t = pcTMin
			case k >= bias+pcTMax:
				t = pcTMax
			default:
				t = k - bias
			}
			if d < t {
				break
			}
			if w > (1<<31-1)/(pcBase-t) {
				return "", fmt.Errorf("urlx: punycode: overflow in %q", encoded)
			}
			w *= pcBase - t
		}
		bias = pcAdapt(i-oldi, len(output)+1, oldi == 0)
		if i/(len(output)+1) > 1<<31-1-n {
			return "", fmt.Errorf("urlx: punycode: overflow in %q", encoded)
		}
		n += i / (len(output) + 1)
		i %= len(output) + 1
		if n > 0x10FFFF {
			return "", fmt.Errorf("urlx: punycode: rune out of range in %q", encoded)
		}
		output = append(output, 0)
		copy(output[i+1:], output[i:])
		output[i] = rune(n)
		i++
	}
	return string(output), nil
}

// EncodePunycodeLabel encodes one unicode label body to punycode (without
// the "xn--" prefix) per RFC 3492 §6.3.
func EncodePunycodeLabel(label string) (string, error) {
	var out strings.Builder
	runes := []rune(label)
	basicCount := 0
	for _, r := range runes {
		if r < 128 {
			out.WriteRune(r)
			basicCount++
		}
	}
	h := basicCount
	if basicCount > 0 {
		out.WriteByte('-')
	}
	n := pcInitialN
	delta := 0
	bias := pcInitialBias
	for h < len(runes) {
		m := 0x7FFFFFFF
		for _, r := range runes {
			if int(r) >= n && int(r) < m {
				m = int(r)
			}
		}
		if m-n > (1<<31-1-delta)/(h+1) {
			return "", fmt.Errorf("urlx: punycode: overflow encoding %q", label)
		}
		delta += (m - n) * (h + 1)
		n = m
		for _, r := range runes {
			if int(r) < n {
				delta++
				if delta > 1<<31-1 {
					return "", fmt.Errorf("urlx: punycode: overflow encoding %q", label)
				}
			}
			if int(r) == n {
				q := delta
				for k := pcBase; ; k += pcBase {
					var t int
					switch {
					case k <= bias:
						t = pcTMin
					case k >= bias+pcTMax:
						t = pcTMax
					default:
						t = k - bias
					}
					if q < t {
						break
					}
					out.WriteByte(digitChar(t + (q-t)%(pcBase-t)))
					q = (q - t) / (pcBase - t)
				}
				out.WriteByte(digitChar(q))
				bias = pcAdapt(delta, h+1, h == basicCount)
				delta = 0
				h++
			}
		}
		delta++
		n++
	}
	return out.String(), nil
}

// DecodeHost decodes every "xn--" label of a host to its unicode form;
// labels that fail to decode are kept as-is. Pure-ASCII hosts return
// unchanged.
func DecodeHost(host string) string {
	if !strings.Contains(host, ACEPrefix) {
		return host
	}
	labels := strings.Split(host, ".")
	for i, l := range labels {
		if strings.HasPrefix(l, ACEPrefix) {
			if decoded, err := DecodePunycodeLabel(l[len(ACEPrefix):]); err == nil {
				labels[i] = decoded
			}
		}
	}
	return strings.Join(labels, ".")
}

// EncodeHost encodes every non-ASCII label of a host into punycode;
// ASCII labels pass through. Labels that fail to encode are kept as-is.
func EncodeHost(host string) string {
	labels := strings.Split(host, ".")
	for i, l := range labels {
		ascii := true
		for _, r := range l {
			if r >= 128 {
				ascii = false
				break
			}
		}
		if ascii {
			continue
		}
		if enc, err := EncodePunycodeLabel(l); err == nil {
			labels[i] = ACEPrefix + enc
		}
	}
	return strings.Join(labels, ".")
}

// UnicodeMLD returns the mld with punycode decoded ("xn--papal-4ve" →
// "paypаl"); ASCII mlds return unchanged. Term extraction downstream
// folds the homograph characters to base letters (§III-B), recovering
// the brand term a homograph attack hides.
func (p Parts) UnicodeMLD() string {
	if !strings.HasPrefix(p.MLD, ACEPrefix) {
		return p.MLD
	}
	return DecodeHost(p.MLD)
}

// UnicodeRDN returns the RDN with punycode labels decoded.
func (p Parts) UnicodeRDN() string {
	if !strings.Contains(p.RDN, ACEPrefix) {
		return p.RDN
	}
	return DecodeHost(p.RDN)
}
