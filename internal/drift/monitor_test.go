package drift

import (
	"math/rand"
	"sync"
	"testing"

	"knowphish/internal/features"
)

// axisCfg disables everything except the axes under test. The window is
// large enough that multinomial PSI noise on identical distributions
// stays well under the thresholds.
func axisCfg(score, feature, rate float64) Config {
	return Config{
		Window:     128,
		Baseline:   128,
		ScorePSI:   score,
		FeaturePSI: feature,
		RateShift:  rate,
		EvalEvery:  1,
	}
}

func feedN(m *Monitor, n int, score func(i int) float64, phish func(i int) bool, vec func(i int) []float64) {
	for i := 0; i < n; i++ {
		var v []float64
		if vec != nil {
			v = vec(i)
		}
		m.Observe(score(i), phish(i), v)
	}
}

func TestMonitorStableTrafficDoesNotFlag(t *testing.T) {
	m := NewMonitor(axisCfg(DefaultScorePSI, DefaultFeaturePSI, DefaultRateShift))
	rng := rand.New(rand.NewSource(1))
	score := func(int) float64 { return 0.1 + 0.3*rng.Float64() }
	phish := func(i int) bool { return i%10 == 0 }
	vec := func(int) []float64 { return []float64{rng.Float64(), 5 + rng.Float64()} }
	feedN(m, 320, score, phish, vec)
	st := m.Status()
	if !st.BaselineFilled || !st.WindowFilled {
		t.Fatalf("windows not filled: %+v", st)
	}
	if st.Flagged {
		t.Fatalf("stable traffic flagged: %+v", st)
	}
	if st.Observations != 320 {
		t.Errorf("observations = %d", st.Observations)
	}
}

func TestMonitorFlagsScoreDrift(t *testing.T) {
	m := NewMonitor(axisCfg(DefaultScorePSI, -1, -1))
	feedN(m, 128, func(int) float64 { return 0.15 }, func(int) bool { return false }, nil)
	if m.Flagged() {
		t.Fatal("flagged before any shift")
	}
	// The score distribution jumps; the phish rate does not (rate axis
	// disabled anyway).
	feedN(m, 160, func(int) float64 { return 0.92 }, func(int) bool { return false }, nil)
	st := m.Status()
	if !st.Flagged {
		t.Fatalf("score shift not flagged: %+v", st)
	}
	if len(st.Reasons) != 1 || st.Reasons[0] != "score_psi" {
		t.Fatalf("reasons = %v, want [score_psi]", st.Reasons)
	}
	if st.ScorePSI < DefaultScorePSI {
		t.Errorf("ScorePSI = %v below threshold yet flagged", st.ScorePSI)
	}
}

func TestMonitorFlagsPhishRateShift(t *testing.T) {
	m := NewMonitor(axisCfg(-1, -1, DefaultRateShift))
	feedN(m, 128, func(int) float64 { return 0.5 }, func(i int) bool { return i%20 == 0 }, nil)
	feedN(m, 160, func(int) float64 { return 0.5 }, func(int) bool { return true }, nil)
	st := m.Status()
	if !st.Flagged {
		t.Fatalf("rate shift not flagged: %+v", st)
	}
	if len(st.Reasons) != 1 || st.Reasons[0] != "phish_rate" {
		t.Fatalf("reasons = %v, want [phish_rate]", st.Reasons)
	}
	if st.RateShift < DefaultRateShift {
		t.Errorf("RateShift = %v", st.RateShift)
	}
}

func TestMonitorFlagsFeatureDrift(t *testing.T) {
	m := NewMonitor(axisCfg(-1, DefaultFeaturePSI, -1))
	rng := rand.New(rand.NewSource(2))
	// Feature 0 stays put; feature 1 moves an order of magnitude.
	baseVec := func(int) []float64 { return []float64{rng.Float64(), 1 + rng.Float64()} }
	movedVec := func(int) []float64 { return []float64{rng.Float64(), 30 + rng.Float64()} }
	score := func(int) float64 { return 0.4 }
	phish := func(int) bool { return false }
	feedN(m, 128, score, phish, baseVec)
	feedN(m, 160, score, phish, movedVec)
	st := m.Status()
	if !st.Flagged {
		t.Fatalf("feature shift not flagged: %+v", st)
	}
	if len(st.Reasons) != 1 || st.Reasons[0] != "feature_psi" {
		t.Fatalf("reasons = %v, want [feature_psi]", st.Reasons)
	}
	if want := features.Names()[1]; st.DriftedFeature != want {
		t.Errorf("DriftedFeature = %q, want %q", st.DriftedFeature, want)
	}
}

// TestMonitorVectorlessObservations covers mixed traffic: observations
// without vectors (cache rehydrations, v1 adapters) still count for the
// score and rate axes and must not corrupt the feature counts.
func TestMonitorVectorlessObservations(t *testing.T) {
	m := NewMonitor(axisCfg(-1, DefaultFeaturePSI, -1))
	rng := rand.New(rand.NewSource(3))
	vec := func(int) []float64 { return []float64{rng.Float64()} }
	feedN(m, 128, func(int) float64 { return 0.4 }, func(int) bool { return false }, vec)
	// Current window: half with vectors (same distribution), half
	// without.
	for i := 0; i < 256; i++ {
		if i%2 == 0 {
			m.Observe(0.4, false, vec(i))
		} else {
			m.Observe(0.4, false, nil)
		}
	}
	if st := m.Status(); st.Flagged {
		t.Fatalf("vectorless traffic flagged feature drift: %+v", st)
	}
}

func TestMonitorOnDriftFiresOncePerEpisode(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	cfg := axisCfg(DefaultScorePSI, -1, -1)
	cfg.OnDrift = func(st Status) {
		mu.Lock()
		fired++
		mu.Unlock()
		if !st.Flagged {
			t.Error("OnDrift with unflagged status")
		}
	}
	m := NewMonitor(cfg)
	feedN(m, 128, func(int) float64 { return 0.1 }, func(int) bool { return false }, nil)
	feedN(m, 400, func(int) float64 { return 0.9 }, func(int) bool { return false }, nil)
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("OnDrift fired %d times, want 1 (latched)", fired)
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(axisCfg(DefaultScorePSI, -1, -1))
	feedN(m, 128, func(int) float64 { return 0.1 }, func(int) bool { return false }, nil)
	feedN(m, 160, func(int) float64 { return 0.9 }, func(int) bool { return false }, nil)
	if !m.Flagged() {
		t.Fatal("not flagged before reset")
	}
	m.Reset()
	st := m.Status()
	if st.Flagged || st.BaselineFilled || st.Observations != 0 {
		t.Fatalf("reset left state: %+v", st)
	}
	// The monitor re-baselines on the new distribution: the traffic that
	// used to be drift is now the reference and does not flag.
	feedN(m, 400, func(int) float64 { return 0.9 }, func(int) bool { return false }, nil)
	if m.Flagged() {
		t.Fatal("re-baselined traffic flagged")
	}
}

func TestPSIProperties(t *testing.T) {
	same := []float64{0.25, 0.25, 0.25, 0.25}
	if v := psi(same, same); v != 0 {
		t.Errorf("psi(p,p) = %v, want 0", v)
	}
	moved := []float64{0.7, 0.1, 0.1, 0.1}
	if v := psi(same, moved); v <= 0 {
		t.Errorf("psi of shifted distribution = %v, want > 0", v)
	}
	// Empty bins must not produce NaN/Inf.
	empty := []float64{1, 0, 0, 0}
	v := psi(same, empty)
	if v <= 0 || v != v {
		t.Errorf("psi with empty bins = %v", v)
	}
}
