package drift

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"

	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/features"
	"knowphish/internal/ml"
	"knowphish/internal/ranking"
	"knowphish/internal/registry"
	"knowphish/internal/store"
	"knowphish/internal/webpage"
)

// Defaults for LifecycleConfig zero values.
const (
	// DefaultEpsilon is the promotion-gate tolerance: the challenger's
	// held-out AUC and accuracy may trail the champion's by at most this
	// much.
	DefaultEpsilon = 0.02
	// DefaultMinShadow is how many live shadow scores a challenger needs
	// before the automatic loop considers promoting it.
	DefaultMinShadow = 50
	// DefaultRetrainMax caps how many verdict-store records one retrain
	// pulls.
	DefaultRetrainMax = 2048
	// DefaultHoldout is the held-out fraction of the retrain corpus.
	DefaultHoldout = 0.25
	// retrainScanPage is the cursor page size retrain uses when walking
	// the verdict store; pages keep memory flat regardless of RetrainMax.
	retrainScanPage = 256
)

// ErrRetrainRunning reports a retrain request while one is in flight —
// retraining is single-flight by design.
var ErrRetrainRunning = errors.New("drift: a retrain is already running")

// ErrGateRefused reports a promotion blocked by the gate; the wrapped
// message carries the failing metric.
var ErrGateRefused = errors.New("drift: promotion gate refused")

// LifecycleConfig assembles a Lifecycle.
type LifecycleConfig struct {
	// Registry is the versioned model store serving the champion.
	// Required.
	Registry *registry.Registry
	// Store is the durable verdict log retraining draws its corpus
	// from (any store.Backend engine). Required for retraining.
	Store store.Backend
	// Fetcher re-crawls stored URLs into snapshots for retraining.
	// Required for retraining.
	Fetcher crawl.Fetcher
	// Rank is the popularity list wired into retrained extractors and
	// the held-out evaluation (may be nil).
	Rank *ranking.List
	// Monitor tunes the drift monitor.
	Monitor Config
	// ShadowFraction is the share of observed feed traffic the current
	// challenger re-scores in shadow (0 → no shadow scoring; capped to
	// [0,1]).
	ShadowFraction float64
	// Epsilon is the promotion-gate tolerance (0 → DefaultEpsilon).
	Epsilon float64
	// MinShadow gates automatic promotion on live exposure
	// (0 → DefaultMinShadow).
	MinShadow int
	// RetrainMax caps records pulled per retrain (0 → DefaultRetrainMax).
	RetrainMax int
	// Holdout is the held-out fraction of the retrain corpus
	// (0 → DefaultHoldout).
	Holdout float64
	// AutoRetrain closes the loop: a drift flag triggers a background
	// retrain, and a challenger that passes the gate after MinShadow
	// shadow scores is promoted automatically. Without it the lifecycle
	// only watches and reports; retrain/promote happen through the API.
	AutoRetrain bool
	// GBM overrides the retrain boosting configuration (zero value →
	// the champion's own training configuration).
	GBM ml.GBMConfig
	// Seed drives shadow sampling and the retrain train/holdout split.
	Seed int64
	// Logger receives structured lifecycle-transition logs: drift flags,
	// retrain outcomes, challenger installs/retirements and promotions
	// (nil → discard).
	Logger *slog.Logger
}

// Evaluation compares champion and challenger on the same held-out
// split of a retrain corpus — the promotion gate's evidence.
type Evaluation struct {
	// Holdout is the held-out example count.
	Holdout int `json:"holdout"`
	// ChampionVersion and ChallengerVersion name the compared models.
	ChampionVersion   string `json:"champion_version"`
	ChallengerVersion string `json:"challenger_version"`

	ChampionAUC        float64 `json:"champion_auc"`
	ChallengerAUC      float64 `json:"challenger_auc"`
	ChampionAccuracy   float64 `json:"champion_accuracy"`
	ChallengerAccuracy float64 `json:"challenger_accuracy"`
}

// Decision is a promotion-gate ruling.
type Decision struct {
	// Promote is the ruling.
	Promote bool `json:"promote"`
	// Reason explains it, pass or fail.
	Reason string `json:"reason"`
	// Evaluation is the evidence the gate read (nil when none exists).
	Evaluation *Evaluation `json:"evaluation,omitempty"`
}

// LifecycleStatus is the lifecycle introspection document served at
// GET /v2/models and folded into /metrics.
type LifecycleStatus struct {
	Drift Status `json:"drift"`
	// ChampionVersion is the registry version serving traffic.
	ChampionVersion string `json:"champion_version,omitempty"`
	// ChallengerVersion is the candidate awaiting promotion ("" when
	// none).
	ChallengerVersion string `json:"challenger_version,omitempty"`
	// Evaluation is the held-out comparison from the last retrain.
	Evaluation *Evaluation `json:"evaluation,omitempty"`

	ShadowFraction float64 `json:"shadow_fraction"`
	// ShadowScored counts challenger shadow scores since it was
	// installed; ShadowAgreement is the fraction whose thresholded call
	// matched the champion's.
	ShadowScored    int64   `json:"shadow_scored"`
	ShadowAgreement float64 `json:"shadow_agreement"`

	Retrains        int64 `json:"retrains"`
	RetrainFailures int64 `json:"retrain_failures"`
	Promotions      int64 `json:"promotions"`
	// ChallengersRetired counts challengers discarded by the promotion
	// gate after their live exposure — the signal that retraining keeps
	// producing models worse than the champion.
	ChallengersRetired int64 `json:"challengers_retired,omitempty"`
	// Retraining reports an in-flight background retrain.
	Retraining  bool `json:"retraining"`
	AutoRetrain bool `json:"auto_retrain"`
	// Cooldown is how many more observed verdicts the automatic loop
	// waits before its next retrain attempt (after a failed retrain or a
	// retired challenger).
	Cooldown  int64  `json:"cooldown,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Lifecycle closes the loop from live traffic to model promotion:
// observe (drift monitor) → retrain (from the verdict store) → shadow
// (challenger on a fraction of feed traffic) → gate (held-out AUC and
// accuracy within epsilon of the champion) → promote (registry hot
// swap). All methods are safe for concurrent use; OnVerdict is the
// feed-side hook and stays cheap unless it is the sampled shadow
// fraction.
type Lifecycle struct {
	cfg     LifecycleConfig
	monitor *Monitor

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	retraining atomic.Bool
	// promoting single-flights the automatic promotion: many feed
	// workers observe verdicts concurrently, and only one should carry a
	// gate-passing challenger through Promote (the losers would surface
	// spurious "no pending evaluation" errors).
	promoting atomic.Bool
	// cooldown backs the automatic loop off after a failed retrain or a
	// retired challenger: it counts down one per observed verdict, and
	// while positive OnVerdict starts no retrain. Counting traffic
	// instead of wall time keeps the behavior deterministic under test
	// and proportional to how fast new evidence arrives.
	cooldown atomic.Int64

	mu         sync.Mutex
	challenger *registry.Model
	eval       *Evaluation
	rng        *rand.Rand
	lastErr    string

	shadowScored atomic.Int64
	shadowAgreed atomic.Int64
	retrains     atomic.Int64
	retrainFails atomic.Int64
	promotions   atomic.Int64
	retired      atomic.Int64
}

// NewLifecycle validates the configuration and builds the controller.
func NewLifecycle(cfg LifecycleConfig) (*Lifecycle, error) {
	if cfg.Registry == nil {
		return nil, errors.New("drift: LifecycleConfig.Registry is required")
	}
	if cfg.ShadowFraction < 0 {
		cfg.ShadowFraction = 0
	}
	if cfg.ShadowFraction > 1 {
		cfg.ShadowFraction = 1
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultEpsilon
	}
	if cfg.MinShadow <= 0 {
		cfg.MinShadow = DefaultMinShadow
	}
	if cfg.RetrainMax <= 0 {
		cfg.RetrainMax = DefaultRetrainMax
	}
	if cfg.Holdout <= 0 || cfg.Holdout >= 1 {
		cfg.Holdout = DefaultHoldout
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logger == nil {
		// Not obs.NopLogger: this package declares its own type named
		// obs, so the import would shadow it.
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	l := &Lifecycle{
		cfg:     cfg,
		monitor: NewMonitor(cfg.Monitor),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	l.ctx, l.cancel = context.WithCancel(context.Background())
	return l, nil
}

// Monitor exposes the drift monitor (for observation paths that bypass
// OnVerdict).
func (l *Lifecycle) Monitor() *Monitor { return l.monitor }

// Close stops background retraining and waits for it to exit.
func (l *Lifecycle) Close() {
	l.cancel()
	l.wg.Wait()
}

// OnVerdict is the feed hook: every successfully scored URL flows
// through it. It feeds the drift monitor, shadow-scores the sampled
// fraction with the current challenger, and — when AutoRetrain is on —
// kicks off a background retrain on a drift flag and promotes a
// challenger that has earned it.
func (l *Lifecycle) OnVerdict(snap *webpage.Snapshot, v core.Verdict) {
	l.monitor.Observe(v.Score, v.FinalPhish, v.Vector)

	if ch := l.challengerModel(); ch != nil && l.sampleShadow() {
		l.shadowScore(ch, snap, v)
	}

	if !l.cfg.AutoRetrain {
		return
	}
	if c := l.cooldown.Load(); c > 0 {
		// Backing off after a failed retrain or a retired challenger:
		// the drift flag is latched, so without a cooldown every verdict
		// would relaunch a doomed retrain (store still single-class,
		// fetcher still down, ...). One window of fresh traffic must
		// pass before the next attempt.
		l.cooldown.Add(-1)
		return
	}
	if l.monitor.Flagged() && l.challengerModel() == nil && !l.retraining.Load() {
		st := l.monitor.Status()
		l.cfg.Logger.Warn("drift flagged; starting background retrain",
			"score_psi", st.ScorePSI, "max_feature_psi", st.MaxFeaturePSI, "rate_shift", st.RateShift)
		_ = l.RetrainAsync() // already-running is fine; failures land in LastError
	}
	if ch := l.challengerModel(); ch != nil && l.shadowScored.Load() >= int64(l.cfg.MinShadow) {
		if !l.promoting.CompareAndSwap(false, true) {
			return
		}
		defer l.promoting.Store(false)
		d := l.Decide()
		switch {
		case d.Promote:
			if _, err := l.Promote(ch.Manifest.Version, false); err != nil {
				l.setLastErr(fmt.Sprintf("promote: %v", err))
			}
		default:
			// The gate's evidence is the held-out evaluation, fixed at
			// retrain time — once the challenger has had its live
			// exposure and still fails, it will fail forever. Retire it
			// so the loop can retrain on fresher data after a cooldown,
			// instead of wedging with a permanent also-ran.
			l.retireChallenger(ch, d.Reason)
		}
	}
}

// retireChallenger discards a gate-failed challenger (its artifact
// stays in the registry for inspection) and schedules the next retrain
// attempt one window of traffic later.
func (l *Lifecycle) retireChallenger(ch *registry.Model, reason string) {
	l.mu.Lock()
	if l.challenger == ch {
		l.challenger = nil
		l.eval = nil
	}
	l.mu.Unlock()
	l.retired.Add(1)
	l.cfg.Logger.Info("challenger retired by the promotion gate",
		"version", ch.Manifest.Version, "reason", reason)
	l.setLastErr(fmt.Sprintf("challenger %s retired by the promotion gate: %s", ch.Manifest.Version, reason))
	l.cooldown.Store(int64(l.monitor.Window()))
}

// sampleShadow flips the shadow-fraction coin.
func (l *Lifecycle) sampleShadow() bool {
	if l.cfg.ShadowFraction <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64() < l.cfg.ShadowFraction
}

// shadowScore runs the challenger on a page the champion already
// scored, detector-only (target identification ran once; the comparison
// is between models, not pipelines). Its cost is borne by the feed
// worker that sampled it — shadow traffic competes with real traffic
// exactly as a promoted model would.
func (l *Lifecycle) shadowScore(ch *registry.Model, snap *webpage.Snapshot, champion core.Verdict) {
	v, err := ch.Detector.ScoreCtx(l.ctx, core.NewScoreRequest(snap, core.WithoutTargetID()))
	if err != nil {
		return
	}
	l.shadowScored.Add(1)
	if v.DetectorPhish == champion.DetectorPhish {
		l.shadowAgreed.Add(1)
	}
}

func (l *Lifecycle) challengerModel() *registry.Model {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.challenger
}

func (l *Lifecycle) setLastErr(s string) {
	l.mu.Lock()
	l.lastErr = s
	l.mu.Unlock()
}

// RetrainAsync starts a background retrain tracked by the lifecycle
// (Close waits for it; its context cancels with the lifecycle). It
// fails fast with ErrRetrainRunning when one is already in flight; the
// retrain's own outcome surfaces in Status (Retrains / RetrainFailures
// / LastError).
func (l *Lifecycle) RetrainAsync() error {
	if l.retraining.Load() {
		return ErrRetrainRunning
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		// Failures (and the race where a concurrent starter won the CAS
		// inside Retrain) are already accounted by Retrain itself —
		// counters and LastError surface them. A genuine failure backs
		// the automatic loop off for a window of traffic; whatever broke
		// the corpus (single-class store, fetcher outage) needs fresh
		// evidence, not an immediate identical attempt.
		if _, err := l.Retrain(l.ctx); err != nil && !errors.Is(err, ErrRetrainRunning) {
			l.cooldown.Store(int64(l.monitor.Window()))
		}
	}()
	return nil
}

// Retrain builds a fresh corpus from the verdict store (re-crawling
// each stored URL, labeled by its persisted final verdict — the
// pipeline's own FP-removed calls), trains a challenger with the
// champion's configuration, evaluates both on the same held-out split
// and registers the challenger. It does not promote. Single-flight:
// concurrent calls fail with ErrRetrainRunning.
func (l *Lifecycle) Retrain(ctx context.Context) (registry.Manifest, error) {
	if !l.retraining.CompareAndSwap(false, true) {
		return registry.Manifest{}, ErrRetrainRunning
	}
	defer l.retraining.Store(false)

	man, err := l.retrain(ctx)
	if err != nil {
		l.retrainFails.Add(1)
		l.setLastErr(err.Error())
		l.cfg.Logger.Error("retrain failed", "err", err)
		return registry.Manifest{}, err
	}
	l.retrains.Add(1)
	l.setLastErr("")
	l.cfg.Logger.Info("retrain completed; challenger installed",
		"challenger_version", man.Version, "held_out_auc", man.Stats.HeldOutAUC,
		"held_out_accuracy", man.Stats.HeldOutAccuracy, "samples", man.Stats.Samples)
	return man, nil
}

func (l *Lifecycle) retrain(ctx context.Context) (registry.Manifest, error) {
	if l.cfg.Store == nil || l.cfg.Fetcher == nil {
		return registry.Manifest{}, errors.New("drift: retraining needs a verdict store and a fetcher")
	}
	champion := l.cfg.Registry.Current()
	if champion == nil {
		return registry.Manifest{}, registry.ErrNoChampion
	}

	// Page through the newest RetrainMax verdicts with Scan cursors
	// instead of materializing one whole-index slice: at production
	// scale the corpus is a window over millions of records, and the
	// store streams each page from disk.
	var snaps []*webpage.Snapshot
	var labels []int
	seen := 0
	q := store.Query{Limit: retrainScanPage}
	for seen < l.cfg.RetrainMax {
		if remaining := l.cfg.RetrainMax - seen; remaining < q.Limit {
			q.Limit = remaining
		}
		page, err := l.cfg.Store.Scan(ctx, q)
		if err != nil {
			return registry.Manifest{}, fmt.Errorf("drift: reading retrain corpus: %w", err)
		}
		for i, rec := range page.Records {
			if i%32 == 0 && ctx.Err() != nil {
				return registry.Manifest{}, context.Cause(ctx)
			}
			if rec.Error != "" {
				continue // terminal fetch failures carry no page
			}
			snap, err := crawl.Visit(l.cfg.Fetcher, rec.URL)
			if err != nil {
				continue // gone since it was scored; the rest still teach
			}
			label := 0
			if rec.Outcome.FinalPhish {
				label = 1
			}
			snaps = append(snaps, snap)
			labels = append(labels, label)
		}
		seen += len(page.Records)
		if page.NextCursor == "" {
			break
		}
		q.Cursor = page.NextCursor
	}
	trainSnaps, trainLabels, holdSnaps, holdLabels := l.split(snaps, labels)
	if err := needBothClasses(trainLabels); err != nil {
		return registry.Manifest{}, fmt.Errorf("drift: retrain corpus (%d usable of %d records): %w", len(snaps), seen, err)
	}
	if err := needBothClasses(holdLabels); err != nil {
		return registry.Manifest{}, fmt.Errorf("drift: held-out split (%d examples): %w", len(holdSnaps), err)
	}

	gbm := l.cfg.GBM
	if gbm.Trees == 0 {
		gbm = champion.Model().Config
	}
	challenger, err := core.Train(trainSnaps, trainLabels, core.TrainConfig{
		GBM:        gbm,
		Threshold:  champion.Threshold(),
		FeatureSet: champion.FeatureSet(),
		Rank:       l.cfg.Rank,
	})
	if err != nil {
		return registry.Manifest{}, fmt.Errorf("drift: training challenger: %w", err)
	}

	eval := l.evaluate(champion, challenger, holdSnaps, holdLabels)
	pos := 0
	for _, y := range trainLabels {
		pos += y
	}
	man, err := l.cfg.Registry.Save(challenger, registry.TrainingStats{
		Samples:         len(trainSnaps),
		Phish:           pos,
		Legitimate:      len(trainSnaps) - pos,
		HeldOutAUC:      eval.ChallengerAUC,
		HeldOutAccuracy: eval.ChallengerAccuracy,
		Source:          "verdict-store",
	}, "retrained from store-persisted verdicts")
	if err != nil {
		return registry.Manifest{}, err
	}
	eval.ChampionVersion = champion.Version()
	eval.ChallengerVersion = man.Version

	l.mu.Lock()
	l.challenger = &registry.Model{Detector: challenger, Manifest: man}
	l.eval = &eval
	l.mu.Unlock()
	// A fresh challenger restarts its live-exposure clock.
	l.shadowScored.Store(0)
	l.shadowAgreed.Store(0)
	return man, nil
}

// split partitions per class round-robin so both splits keep both
// classes whenever the corpus has them, deterministically for a fixed
// seed.
func (l *Lifecycle) split(snaps []*webpage.Snapshot, labels []int) (ts []*webpage.Snapshot, tl []int, hs []*webpage.Snapshot, hl []int) {
	every := int(1 / l.cfg.Holdout)
	if every < 2 {
		every = 2
	}
	var seen [2]int
	for i, s := range snaps {
		y := labels[i]
		seen[y]++
		if seen[y]%every == 0 {
			hs = append(hs, s)
			hl = append(hl, y)
		} else {
			ts = append(ts, s)
			tl = append(tl, y)
		}
	}
	return ts, tl, hs, hl
}

// evaluate scores both models on the held-out split over one shared
// feature-extraction pass.
func (l *Lifecycle) evaluate(champion, challenger *core.Detector, snaps []*webpage.Snapshot, labels []int) Evaluation {
	e := features.Extractor{Rank: l.cfg.Rank}
	champScores := make([]float64, len(snaps))
	chalScores := make([]float64, len(snaps))
	for i, s := range snaps {
		vec := e.ExtractSnapshot(s)
		champScores[i] = champion.ScoreVector(vec)
		chalScores[i] = challenger.ScoreVector(vec)
	}
	return Evaluation{
		Holdout:            len(snaps),
		ChampionAUC:        ml.AUC(champScores, labels),
		ChallengerAUC:      ml.AUC(chalScores, labels),
		ChampionAccuracy:   ml.Evaluate(champScores, labels, champion.Threshold()).Accuracy(),
		ChallengerAccuracy: ml.Evaluate(chalScores, labels, challenger.Threshold()).Accuracy(),
	}
}

func needBothClasses(labels []int) error {
	pos := 0
	for _, y := range labels {
		pos += y
	}
	if pos == 0 || pos == len(labels) {
		return fmt.Errorf("needs both classes (positives=%d of %d)", pos, len(labels))
	}
	return nil
}

// Decide runs the promotion gate against the last retrain's held-out
// evaluation: the challenger must be within Epsilon of the champion on
// both AUC and accuracy.
func (l *Lifecycle) Decide() Decision {
	l.mu.Lock()
	eval := l.eval
	ch := l.challenger
	l.mu.Unlock()
	if ch == nil || eval == nil {
		return Decision{Promote: false, Reason: "no challenger to promote"}
	}
	eps := l.cfg.Epsilon
	if eval.ChallengerAUC < eval.ChampionAUC-eps {
		return Decision{
			Promote:    false,
			Reason:     fmt.Sprintf("held-out AUC %.4f below champion %.4f − ε %.4f", eval.ChallengerAUC, eval.ChampionAUC, eps),
			Evaluation: eval,
		}
	}
	if eval.ChallengerAccuracy < eval.ChampionAccuracy-eps {
		return Decision{
			Promote:    false,
			Reason:     fmt.Sprintf("held-out accuracy %.4f below champion %.4f − ε %.4f", eval.ChallengerAccuracy, eval.ChampionAccuracy, eps),
			Evaluation: eval,
		}
	}
	return Decision{
		Promote:    true,
		Reason:     "held-out AUC and accuracy within ε of champion",
		Evaluation: eval,
	}
}

// Promote swaps the champion to version. Unless force is set, the
// promotion gate must pass when version is the current challenger; a
// version with no pending evaluation (an operator rollback to an older
// model, say) requires force. Promotion resets the drift monitor — the
// new champion defines a new baseline distribution — and clears the
// challenger slot when it was the promoted version.
func (l *Lifecycle) Promote(version string, force bool) (registry.Model, error) {
	ch := l.challengerModel()
	if !force {
		if ch == nil || ch.Manifest.Version != version {
			return registry.Model{}, fmt.Errorf("%w: %s has no pending evaluation; promote the current challenger or force", ErrGateRefused, version)
		}
		if d := l.Decide(); !d.Promote {
			return registry.Model{}, fmt.Errorf("%w: %s: %s", ErrGateRefused, version, d.Reason)
		}
	}
	m, err := l.cfg.Registry.SetChampion(version)
	if err != nil {
		return registry.Model{}, err
	}
	l.promotions.Add(1)
	l.cfg.Logger.Info("champion promoted",
		"version", version, "hash", m.Manifest.Hash, "forced", force)
	l.mu.Lock()
	if l.challenger != nil && l.challenger.Manifest.Version == version {
		l.challenger = nil
		l.eval = nil
	}
	l.mu.Unlock()
	l.monitor.Reset()
	return m, nil
}

// Status returns the lifecycle introspection document.
func (l *Lifecycle) Status() LifecycleStatus {
	st := LifecycleStatus{
		Drift:              l.monitor.Status(),
		ChampionVersion:    l.cfg.Registry.ChampionVersion(),
		ShadowFraction:     l.cfg.ShadowFraction,
		ShadowScored:       l.shadowScored.Load(),
		Retrains:           l.retrains.Load(),
		RetrainFailures:    l.retrainFails.Load(),
		Promotions:         l.promotions.Load(),
		ChallengersRetired: l.retired.Load(),
		Retraining:         l.retraining.Load(),
		AutoRetrain:        l.cfg.AutoRetrain,
		Cooldown:           l.cooldown.Load(),
	}
	if st.ShadowScored > 0 {
		st.ShadowAgreement = float64(l.shadowAgreed.Load()) / float64(st.ShadowScored)
	}
	l.mu.Lock()
	if l.challenger != nil {
		st.ChallengerVersion = l.challenger.Manifest.Version
	}
	st.Evaluation = l.eval
	st.LastError = l.lastErr
	l.mu.Unlock()
	return st
}
