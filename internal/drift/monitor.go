// Package drift watches live traffic for the silent failure mode of
// deployed detectors: the model stays frozen while phishing campaigns
// move, and accuracy decays with nothing in the request path failing.
// The paper argues its feature set "requires little maintenance" but
// still assumes periodic retraining (Sections VI-E, VII); this package
// supplies the trigger and the loop around it.
//
// Monitor compares a frozen baseline window of traffic against a
// sliding current window along three axes:
//
//   - score-distribution PSI: the population stability index of the
//     detector confidence over fixed [0,1] bins — the broadest signal
//     that the model is seeing different pages than it used to;
//   - per-feature population PSI: each monitored feature binned by its
//     baseline quantiles, exposing which inputs moved even when the
//     aggregate score has not (yet);
//   - phish-rate shift: the absolute change in the final-verdict
//     phishing rate, the operational symptom operators page on.
//
// Lifecycle (lifecycle.go) turns a flag into action: background retrain
// from the verdict store, challenger shadow-scoring, and a gated
// champion promotion through the model registry.
package drift

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"knowphish/internal/features"
)

// Defaults for Config zero values.
const (
	// DefaultWindow is the sliding current-window size in observations.
	DefaultWindow = 256
	// DefaultScoreBins is the score-histogram bin count over [0,1].
	DefaultScoreBins = 10
	// DefaultFeatureBins is the per-feature quantile bin count.
	DefaultFeatureBins = 10
	// DefaultScorePSI flags score-distribution drift. 0.2 is the
	// conventional "significant shift" PSI threshold.
	DefaultScorePSI = 0.2
	// DefaultFeaturePSI flags per-feature population drift; slightly
	// higher than the score threshold because single features are
	// noisier than the aggregate.
	DefaultFeaturePSI = 0.25
	// DefaultRateShift flags an absolute phish-rate change.
	DefaultRateShift = 0.15
)

// Config tunes a Monitor. The zero value is usable.
type Config struct {
	// Window is the sliding current-window size (0 → DefaultWindow).
	Window int
	// Baseline is how many observations freeze into the reference
	// window (0 → Window).
	Baseline int
	// ScoreBins is the score-histogram resolution (0 → DefaultScoreBins).
	ScoreBins int
	// FeatureBins is the per-feature quantile-bin count
	// (0 → DefaultFeatureBins).
	FeatureBins int
	// ScorePSI flags drift when the score-distribution PSI reaches it
	// (0 → DefaultScorePSI, negative → disabled).
	ScorePSI float64
	// FeaturePSI flags drift when any feature's PSI reaches it
	// (0 → DefaultFeaturePSI, negative → disabled).
	FeaturePSI float64
	// RateShift flags drift when |phish rate − baseline rate| reaches it
	// (0 → DefaultRateShift, negative → disabled).
	RateShift float64
	// EvalEvery is how many observations pass between drift evaluations
	// once the window is full (0 → Window/8, min 1). Evaluation is
	// O(features × bins); spacing it keeps Observe cheap.
	EvalEvery int
	// OnDrift, when set, is called once per flag transition (not per
	// observation) with the status that crossed a threshold. It runs on
	// the observing goroutine without the monitor lock held.
	OnDrift func(Status)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Baseline <= 0 {
		c.Baseline = c.Window
	}
	if c.ScoreBins <= 0 {
		c.ScoreBins = DefaultScoreBins
	}
	if c.FeatureBins <= 0 {
		c.FeatureBins = DefaultFeatureBins
	}
	// PSI on identical distributions still reads ≈ bins/observations of
	// pure multinomial noise; with small windows, ten bins would flag
	// steady traffic. Cap resolution so each bin expects ≥16 baseline
	// observations (floor of 4 bins to stay a distribution at all).
	if res := c.Baseline / 16; res < c.ScoreBins || res < c.FeatureBins {
		if res < 4 {
			res = 4
		}
		if c.ScoreBins > res {
			c.ScoreBins = res
		}
		if c.FeatureBins > res {
			c.FeatureBins = res
		}
	}
	if c.ScorePSI == 0 {
		c.ScorePSI = DefaultScorePSI
	}
	if c.FeaturePSI == 0 {
		c.FeaturePSI = DefaultFeaturePSI
	}
	if c.RateShift == 0 {
		c.RateShift = DefaultRateShift
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = c.Window / 8
		if c.EvalEvery < 1 {
			c.EvalEvery = 1
		}
	}
	return c
}

// Status is a drift snapshot — the gauges exported at /metrics and the
// document a drift flag hands to OnDrift.
type Status struct {
	// Observations counts everything Observe has seen since the last
	// Reset, baseline included.
	Observations int64 `json:"observations"`
	// BaselineFilled reports whether the reference window is frozen.
	BaselineFilled bool `json:"baseline_filled"`
	// WindowFilled reports whether the current window is full — PSI
	// values below are only meaningful once it is.
	WindowFilled bool `json:"window_filled"`
	// ScorePSI is the population stability index of the detector score
	// distribution, current window vs baseline.
	ScorePSI float64 `json:"score_psi"`
	// MaxFeaturePSI is the largest per-feature PSI observed, and
	// DriftedFeature names that feature.
	MaxFeaturePSI  float64 `json:"max_feature_psi"`
	DriftedFeature string  `json:"drifted_feature,omitempty"`
	// BaselinePhishRate and PhishRate are the final-verdict phishing
	// rates of the two windows; RateShift is |difference|.
	BaselinePhishRate float64 `json:"baseline_phish_rate"`
	PhishRate         float64 `json:"phish_rate"`
	RateShift         float64 `json:"rate_shift"`
	// Flagged latches once any monitor crosses its threshold, until
	// Reset. Reasons lists which ("score_psi", "feature_psi",
	// "phish_rate").
	Flagged bool     `json:"flagged"`
	Reasons []string `json:"reasons,omitempty"`
}

// Monitor is a sliding-window drift detector over live traffic. All
// methods are safe for concurrent use; Observe is O(features) amortized.
type Monitor struct {
	cfg Config

	mu sync.Mutex

	// Baseline accumulation (raw until frozen).
	baseScores []float64
	baseVecs   [][]float64
	basePhish  int

	// Frozen baseline.
	frozen       bool
	baseHist     []float64   // score-bin proportions
	baseRate     float64     // phish rate
	baseVecCount int         // vectors the baseline histograms were built from
	featEdges    [][]float64 // per-feature quantile bin edges (len bins-1)
	baseFeatHist [][]float64 // per-feature bin proportions

	// Sliding current window: ring buffers plus incrementally maintained
	// bin counts, so Observe never rescans the window.
	ring       []obs
	ringAt     int
	ringFull   bool
	scoreCount []int
	featCount  [][]int
	phishCount int

	observations int64
	sinceEval    int
	status       Status
}

// obs is one windowed observation, pre-binned at admission.
type obs struct {
	scoreBin int
	phish    bool
	featBins []uint8 // nil when the observation carried no vector
}

// NewMonitor builds a drift monitor. The first cfg.Baseline
// observations freeze into the reference window; drift is evaluated
// against it afterwards.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Window returns the resolved sliding-window size — the traffic unit
// the lifecycle uses for observation-based cooldowns.
func (m *Monitor) Window() int { return m.cfg.Window }

// Observe feeds one scored page into the monitor: the detector
// confidence, the final phishing call, and (optionally, may be nil) the
// extracted feature vector for per-feature drift.
func (m *Monitor) Observe(score float64, phish bool, vec []float64) {
	var fire *Status
	m.mu.Lock()
	m.observations++
	if !m.frozen {
		m.baseScores = append(m.baseScores, score)
		if phish {
			m.basePhish++
		}
		if vec != nil {
			m.baseVecs = append(m.baseVecs, vec)
		}
		if len(m.baseScores) >= m.cfg.Baseline {
			m.freezeLocked()
		}
		m.mu.Unlock()
		return
	}
	m.admitLocked(score, phish, vec)
	m.sinceEval++
	if m.ringFull && m.sinceEval >= m.cfg.EvalEvery {
		m.sinceEval = 0
		wasFlagged := m.status.Flagged
		m.evaluateLocked()
		if m.status.Flagged && !wasFlagged && m.cfg.OnDrift != nil {
			st := m.statusLocked()
			fire = &st
		}
	}
	m.mu.Unlock()
	if fire != nil {
		m.cfg.OnDrift(*fire)
	}
}

// freezeLocked turns the accumulated baseline into histograms and bin
// edges, then discards the raw observations.
func (m *Monitor) freezeLocked() {
	n := len(m.baseScores)
	m.baseHist = make([]float64, m.cfg.ScoreBins)
	for _, s := range m.baseScores {
		m.baseHist[m.scoreBin(s)]++
	}
	for i := range m.baseHist {
		m.baseHist[i] /= float64(n)
	}
	m.baseRate = float64(m.basePhish) / float64(n)

	// Per-feature quantile edges + baseline histograms, only for the
	// features the baseline actually saw vectors for.
	m.baseVecCount = len(m.baseVecs)
	if len(m.baseVecs) > 0 {
		dim := len(m.baseVecs[0])
		m.featEdges = make([][]float64, dim)
		m.baseFeatHist = make([][]float64, dim)
		col := make([]float64, 0, len(m.baseVecs))
		for f := 0; f < dim; f++ {
			col = col[:0]
			for _, v := range m.baseVecs {
				if f < len(v) {
					col = append(col, v[f])
				}
			}
			m.featEdges[f] = quantileEdges(col, m.cfg.FeatureBins)
			hist := make([]float64, m.cfg.FeatureBins)
			for _, x := range col {
				hist[binOf(x, m.featEdges[f])]++
			}
			for i := range hist {
				hist[i] /= float64(len(col))
			}
			m.baseFeatHist[f] = hist
		}
	}

	m.frozen = true
	m.baseScores, m.baseVecs = nil, nil
	m.ring = make([]obs, m.cfg.Window)
	m.ringAt, m.ringFull = 0, false
	m.scoreCount = make([]int, m.cfg.ScoreBins)
	m.featCount = make([][]int, len(m.featEdges))
	for f := range m.featCount {
		m.featCount[f] = make([]int, m.cfg.FeatureBins)
	}
	m.phishCount = 0
	m.sinceEval = 0
	m.status.BaselineFilled = true
	m.status.BaselinePhishRate = m.baseRate
}

// admitLocked pushes one observation into the ring, retiring the one it
// replaces from the incremental counts.
func (m *Monitor) admitLocked(score float64, phish bool, vec []float64) {
	if m.ringFull {
		old := m.ring[m.ringAt]
		m.scoreCount[old.scoreBin]--
		if old.phish {
			m.phishCount--
		}
		for f, b := range old.featBins {
			m.featCount[f][b]--
		}
	}
	o := obs{scoreBin: m.scoreBin(score), phish: phish}
	if vec != nil && len(m.featEdges) > 0 {
		dim := len(m.featEdges)
		if dim > len(vec) {
			dim = len(vec)
		}
		o.featBins = make([]uint8, dim)
		for f := 0; f < dim; f++ {
			o.featBins[f] = uint8(binOf(vec[f], m.featEdges[f]))
		}
	}
	m.scoreCount[o.scoreBin]++
	if o.phish {
		m.phishCount++
	}
	for f, b := range o.featBins {
		m.featCount[f][b]++
	}
	m.ring[m.ringAt] = o
	m.ringAt++
	if m.ringAt == len(m.ring) {
		m.ringAt = 0
		m.ringFull = true
	}
}

// evaluateLocked recomputes the drift gauges over the full window.
func (m *Monitor) evaluateLocked() {
	n := len(m.ring)
	cur := make([]float64, m.cfg.ScoreBins)
	for i, c := range m.scoreCount {
		cur[i] = float64(c) / float64(n)
	}
	m.status.WindowFilled = true
	m.status.ScorePSI = psi(m.baseHist, cur)
	m.status.PhishRate = float64(m.phishCount) / float64(n)
	m.status.RateShift = math.Abs(m.status.PhishRate - m.baseRate)

	m.status.MaxFeaturePSI = 0
	m.status.DriftedFeature = ""
	featureDrifted := false
	if len(m.featCount) > 0 {
		// Vector-less observations contribute nothing to feature counts;
		// normalize by the vectors actually windowed.
		names := features.Names()
		name := func(f int) string {
			if f < len(names) {
				return names[f]
			}
			return fmt.Sprintf("feature[%d]", f)
		}
		hist := make([]float64, m.cfg.FeatureBins)
		driftedPSI := 0.0
		for f := range m.featCount {
			total := 0
			for _, c := range m.featCount[f] {
				total += c
			}
			if total == 0 {
				continue
			}
			for i, c := range m.featCount[f] {
				hist[i] = float64(c) / float64(total)
			}
			v := psi(m.baseFeatHist[f], hist)
			if v > m.status.MaxFeaturePSI {
				m.status.MaxFeaturePSI = v
				if !featureDrifted {
					m.status.DriftedFeature = name(f)
				}
			}
			// Identical distributions still read a PSI of about
			// χ²₍bins−1₎ · (1/n_base + 1/n_cur) of pure sampling noise,
			// and the flag takes a max over every monitored feature — a
			// fixed threshold alone would fire on steady traffic. A
			// feature drifts only when its PSI clears both the configured
			// threshold and 5× its own noise floor, which converges to
			// the bare threshold as windows grow.
			floor := float64(m.cfg.FeatureBins-1) *
				(1/float64(m.baseVecCount) + 1/float64(total))
			if m.cfg.FeaturePSI > 0 && v >= m.cfg.FeaturePSI && v >= 5*floor && v > driftedPSI {
				featureDrifted = true
				driftedPSI = v
				m.status.DriftedFeature = name(f)
			}
		}
	}

	var reasons []string
	if m.cfg.ScorePSI > 0 && m.status.ScorePSI >= m.cfg.ScorePSI {
		reasons = append(reasons, "score_psi")
	}
	if featureDrifted {
		reasons = append(reasons, "feature_psi")
	}
	if m.cfg.RateShift > 0 && m.status.RateShift >= m.cfg.RateShift {
		reasons = append(reasons, "phish_rate")
	}
	if len(reasons) > 0 {
		// Latch: a flag stays up (and its first reasons with it) until
		// Reset, so a brief excursion cannot un-flag itself before the
		// lifecycle reacts.
		m.status.Flagged = true
		m.status.Reasons = reasons
	}
}

// Status returns the current drift gauges.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statusLocked()
}

func (m *Monitor) statusLocked() Status {
	st := m.status
	st.Observations = m.observations
	st.Reasons = append([]string(nil), m.status.Reasons...)
	return st
}

// Flagged reports whether drift is currently flagged.
func (m *Monitor) Flagged() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status.Flagged
}

// Reset discards the baseline, the window and the flag, restarting
// baseline accumulation — what a model promotion does, since the new
// champion defines a new score distribution.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frozen = false
	m.baseScores, m.baseVecs, m.basePhish = nil, nil, 0
	m.ring, m.scoreCount, m.featCount = nil, nil, nil
	m.featEdges, m.baseFeatHist, m.baseHist = nil, nil, nil
	m.ringAt, m.ringFull, m.phishCount, m.sinceEval = 0, false, 0, 0
	m.observations = 0
	m.status = Status{}
}

// scoreBin maps a confidence in [0,1] onto a fixed-width bin.
func (m *Monitor) scoreBin(s float64) int {
	b := int(s * float64(m.cfg.ScoreBins))
	if b < 0 {
		b = 0
	}
	if b >= m.cfg.ScoreBins {
		b = m.cfg.ScoreBins - 1
	}
	return b
}

// binOf places x against sorted edges (len bins-1): bin i covers
// (edges[i-1], edges[i]]. SearchFloat64s returns the first edge >= x,
// which is exactly that bin index (x above every edge lands in the last
// bin); ties on repeated edges resolve to the first, identically for
// baseline and current windows.
func binOf(x float64, edges []float64) int {
	return sort.SearchFloat64s(edges, x)
}

// quantileEdges returns bins-1 interior quantile cut points of col.
// Degenerate columns (constant features) produce repeated edges, which
// binOf and psi tolerate: everything lands in one bin on both sides, so
// the feature reports zero drift until it actually moves.
func quantileEdges(col []float64, bins int) []float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	edges := make([]float64, bins-1)
	n := len(sorted)
	for i := 1; i < bins; i++ {
		idx := i * n / bins
		if idx >= n {
			idx = n - 1
		}
		edges[i-1] = sorted[idx]
	}
	return edges
}

// psi is the population stability index Σ (qᵢ−pᵢ)·ln(qᵢ/pᵢ) with
// epsilon smoothing for empty bins. Symmetric in the usual convention:
// p is the reference, q the current population.
func psi(p, q []float64) float64 {
	const eps = 1e-4
	sum := 0.0
	for i := range p {
		pi, qi := p[i]+eps, q[i]+eps
		sum += (qi - pi) * math.Log(qi/pi)
	}
	return sum
}
