package drift

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knowphish/internal/core"
	"knowphish/internal/crawl"
	"knowphish/internal/dataset"
	"knowphish/internal/feed"
	"knowphish/internal/ml"
	"knowphish/internal/registry"
	"knowphish/internal/store"
	"knowphish/internal/target"
	"knowphish/internal/webgen"
)

var (
	fixOnce sync.Once
	fixCorp *dataset.Corpus
	fixDet  *core.Detector
	fixErr  error
)

// fixtures builds one small corpus and champion detector shared by the
// lifecycle tests.
func fixtures(t *testing.T) (*dataset.Corpus, *core.Detector) {
	t.Helper()
	fixOnce.Do(func() {
		fixCorp, fixErr = dataset.Build(dataset.Config{
			Seed:              51,
			Scale:             100,
			World:             webgen.Config{Seed: 52, Brands: 60, RankedGenerics: 60, VocabularyWords: 100},
			SkipLanguageTests: true,
		})
		if fixErr != nil {
			return
		}
		snaps := append(fixCorp.LegTrain.Snapshots(), fixCorp.PhishTrain.Snapshots()...)
		labels := append(fixCorp.LegTrain.Labels(), fixCorp.PhishTrain.Labels()...)
		fixDet, fixErr = core.Train(snaps, labels, core.TrainConfig{
			Rank: fixCorp.World.Ranking(),
			GBM:  ml.GBMConfig{Trees: 30, MaxDepth: 3, Seed: 3},
		})
	})
	if fixErr != nil {
		t.Fatalf("fixtures: %v", fixErr)
	}
	return fixCorp, fixDet
}

func newRegistryWithChampion(t *testing.T, det *core.Detector) *registry.Registry {
	t.Helper()
	c, _ := fixtures(t)
	reg, err := registry.Open(t.TempDir(), c.World.Ranking())
	if err != nil {
		t.Fatalf("registry.Open: %v", err)
	}
	if _, err := reg.Save(det, registry.TrainingStats{Source: "synthetic-corpus"}, "seed champion"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := reg.SetChampion("v0001"); err != nil {
		t.Fatalf("SetChampion: %v", err)
	}
	return reg
}

func TestNewLifecycleValidates(t *testing.T) {
	if _, err := NewLifecycle(LifecycleConfig{}); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestRetrainWithoutStoreFails(t *testing.T) {
	_, det := fixtures(t)
	reg := newRegistryWithChampion(t, det)
	lc, err := NewLifecycle(LifecycleConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.Retrain(context.Background()); err == nil {
		t.Fatal("retrain without a store succeeded")
	}
	if st := lc.Status(); st.RetrainFailures != 1 || st.LastError == "" {
		t.Fatalf("failure not accounted: %+v", st)
	}
}

func TestPromoteUnknownVersionNeedsForce(t *testing.T) {
	_, det := fixtures(t)
	reg := newRegistryWithChampion(t, det)
	lc, err := NewLifecycle(LifecycleConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.Promote("v0001", false); err == nil {
		t.Fatal("ungated promote of a version with no evaluation succeeded")
	}
	// Force is the operator override: re-promoting (or rolling back to)
	// a registered version without an evaluation.
	if _, err := lc.Promote("v0001", true); err != nil {
		t.Fatalf("forced promote: %v", err)
	}
	if got := lc.Status().Promotions; got != 1 {
		t.Fatalf("promotions = %d", got)
	}
}

// TestAutoRetrainBacksOffAfterFailure pins the failed-retrain cooldown:
// with the drift flag latched and a retrain that cannot succeed (the
// store only holds one class), the automatic loop must attempt once,
// back off for a window of traffic, then attempt again — not relaunch a
// doomed crawl-and-train on every observed verdict.
func TestAutoRetrainBacksOffAfterFailure(t *testing.T) {
	c, det := fixtures(t)
	reg := newRegistryWithChampion(t, det)
	st, err := store.Open(store.Config{Path: filepath.Join(t.TempDir(), "v.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// A single-class retrain corpus: legitimate pages only.
	rng := rand.New(rand.NewSource(17))
	fetchers := []crawl.Fetcher{c.World}
	for i := 0; i < 20; i++ {
		site := c.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		fetchers = append(fetchers, site)
		if err := st.Append(context.Background(), store.Record{URL: site.StartURL, LandingURL: site.StartURL}); err != nil {
			t.Fatal(err)
		}
	}

	const window = 16
	lc, err := NewLifecycle(LifecycleConfig{
		Registry:    reg,
		Store:       st,
		Fetcher:     crawl.Compose(fetchers...),
		Rank:        c.World.Ranking(),
		Monitor:     Config{Window: window, Baseline: window, EvalEvery: 1},
		AutoRetrain: true,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	snap := c.LegTrain.Examples[0].Snapshot
	verdict := func(phish bool) core.Verdict {
		score := 0.1
		if phish {
			score = 0.95
		}
		return core.Verdict{Outcome: core.Outcome{Score: score, FinalPhish: phish}}
	}
	// Baseline: all legitimate; then a phish burst until the flag trips
	// (the flagging call itself launches the retrain).
	for i := 0; i < window; i++ {
		lc.OnVerdict(snap, verdict(false))
	}
	for i := 0; i < 4*window && !lc.Monitor().Flagged(); i++ {
		lc.OnVerdict(snap, verdict(true))
	}
	if !lc.Monitor().Flagged() {
		t.Fatal("phish burst never flagged drift")
	}
	// The retrain runs in the background and must fail (one class) and
	// arm the cooldown.
	deadline := time.Now().Add(30 * time.Second)
	for lc.Status().Cooldown == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cooldown never armed: %+v", lc.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := lc.Status().RetrainFailures; got != 1 {
		t.Fatalf("retrain failures = %d, want 1", got)
	}
	if lc.Status().LastError == "" {
		t.Error("failed retrain left no LastError")
	}

	// While cooling down, further traffic must not relaunch the retrain.
	cd := lc.Status().Cooldown
	for i := int64(0); i < cd-1; i++ {
		lc.OnVerdict(snap, verdict(true))
	}
	if got := lc.Status().RetrainFailures; got != 1 {
		t.Fatalf("retrain refired during cooldown: failures = %d", got)
	}
	// Draining the cooldown re-arms the loop: the flag is still latched,
	// so the next verdicts attempt (and fail) again — backed off, not
	// wedged.
	for i := 0; i < 2; i++ {
		lc.OnVerdict(snap, verdict(true))
	}
	deadline = time.Now().Add(30 * time.Second)
	for lc.Status().RetrainFailures < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("loop never retried after cooldown: %+v", lc.Status())
		}
		lc.OnVerdict(snap, verdict(true))
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLifecycleEndToEnd is the acceptance path of the subsystem: feed
// traffic shifts → the drift monitor flags it → a background retrain
// learns from store-persisted verdicts → the challenger shadow-scores
// live traffic → the promotion gate swaps the champion — all while a
// concurrent scorer hammers the registry source and must see zero
// failed or blocked requests, with Verdict.ModelVersion changing
// mid-stream.
func TestLifecycleEndToEnd(t *testing.T) {
	c, det := fixtures(t)
	reg := newRegistryWithChampion(t, det)
	st, err := store.Open(store.Config{Path: filepath.Join(t.TempDir(), "verdicts.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Two traffic pools over the synthetic world: a legitimate baseline
	// and the phish campaign that later shifts the distribution.
	rng := rand.New(rand.NewSource(7))
	fetchers := []crawl.Fetcher{c.World}
	seen := map[string]bool{}
	var legitURLs, phishURLs []string
	for len(legitURLs) < 80 {
		site := c.World.NewLegitSite(rng, webgen.LegitOptions{Lang: webgen.English})
		if seen[site.StartURL] {
			continue // random generation may collide; the feed dedupes in-flight URLs
		}
		seen[site.StartURL] = true
		fetchers = append(fetchers, site)
		legitURLs = append(legitURLs, site.StartURL)
	}
	for len(phishURLs) < 60 {
		site := c.World.NewPhishSite(rng, c.World.RandomPhishOptions(rng))
		if seen[site.StartURL] {
			continue
		}
		seen[site.StartURL] = true
		fetchers = append(fetchers, site)
		phishURLs = append(phishURLs, site.StartURL)
	}
	fetcher := crawl.Compose(fetchers...)

	lc, err := NewLifecycle(LifecycleConfig{
		Registry: reg,
		Store:    st,
		Fetcher:  fetcher,
		Rank:     c.World.Ranking(),
		Monitor: Config{
			Window:    60,
			Baseline:  60,
			EvalEvery: 5,
		},
		ShadowFraction: 1,
		Epsilon:        0.15,
		MinShadow:      10,
		AutoRetrain:    true,
		Seed:           5,
		GBM:            ml.GBMConfig{Trees: 20, MaxDepth: 3, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	sched, err := feed.New(feed.Config{
		Fetcher:    fetcher,
		Pipeline:   &core.Pipeline{Detector: det, Identifier: target.New(c.Engine)},
		Detectors:  reg,
		Store:      st,
		Workers:    4,
		QueueDepth: 4096,
		DomainRate: -1,
		OnVerdict:  lc.OnVerdict,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent scorer simulating the serving path: it must never
	// block or fail across the swap, and must observe the version change
	// mid-stream.
	scoreCtx, stopScoring := context.WithCancel(context.Background())
	defer stopScoring()
	probe := c.PhishTest.Examples[0].Snapshot
	var scorerErrs, scored atomic.Int64
	versionsSeen := sync.Map{}
	var scorerWG sync.WaitGroup
	scorerWG.Add(1)
	go func() {
		defer scorerWG.Done()
		for scoreCtx.Err() == nil {
			d := reg.Current()
			if d == nil {
				scorerErrs.Add(1)
				return
			}
			v, err := d.ScoreCtx(context.Background(), core.NewScoreRequest(probe, core.WithoutTargetID()))
			if err != nil {
				scorerErrs.Add(1)
				return
			}
			versionsSeen.Store(v.ModelVersion, true)
			scored.Add(1)
		}
	}()

	enqueueAll := func(urls []string) {
		t.Helper()
		for _, u := range urls {
			if err := sched.Enqueue(u); err != nil {
				t.Fatalf("Enqueue(%s): %v", u, err)
			}
		}
		if !sched.Wait(time.Now().Add(60 * time.Second)) {
			t.Fatal("feed stalled")
		}
	}

	// Phase 1: legitimate traffic fills the drift baseline.
	enqueueAll(legitURLs)
	if lc.Monitor().Flagged() {
		t.Fatal("baseline traffic flagged drift")
	}
	if got := lc.Status().Drift.Observations; got < 60 {
		t.Fatalf("monitor observed %d of the baseline", got)
	}

	// Phase 2: the campaign shifts the distribution. Keep the phish
	// burst flowing until the closed loop retrains, shadow-scores and
	// promotes — bounded, not open-ended.
	deadline := time.Now().Add(90 * time.Second)
	for reg.ChampionVersion() == "v0001" {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion before deadline: %+v", lc.Status())
		}
		enqueueAll(phishURLs)
	}

	// One more wave so post-swap verdicts land in the store under the
	// new version.
	enqueueAll(phishURLs)

	stopScoring()
	scorerWG.Wait()
	if dropped := sched.Drain(time.Now().Add(60 * time.Second)); dropped != 0 {
		t.Fatalf("drain dropped %d URLs", dropped)
	}

	status := lc.Status()
	if status.Retrains < 1 {
		t.Errorf("retrains = %d, want >= 1", status.Retrains)
	}
	if status.Promotions < 1 {
		t.Errorf("promotions = %d, want >= 1", status.Promotions)
	}
	if got := reg.ChampionVersion(); got == "v0001" || got == "" {
		t.Errorf("champion still %q after promotion", got)
	}

	// Zero dropped or blocked requests around the swap.
	if n := scorerErrs.Load(); n != 0 {
		t.Errorf("concurrent scorer failed %d times", n)
	}
	if scored.Load() == 0 {
		t.Error("concurrent scorer made no progress")
	}
	fs := sched.Stats()
	if fs.Failed != 0 || fs.Dropped != 0 {
		t.Errorf("feed failures/drops: %+v", fs)
	}

	// The model version changed mid-stream, both for the concurrent
	// scorer and in the durable record.
	for _, v := range []string{"v0001", "v0002"} {
		if _, ok := versionsSeen.Load(v); !ok {
			t.Errorf("concurrent scorer never saw %s", v)
		}
	}
	recVersions := map[string]int{}
	page, err := st.Scan(context.Background(), store.Query{})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, rec := range page.Records {
		recVersions[rec.ModelVersion]++
	}
	if recVersions["v0001"] == 0 || recVersions["v0002"] == 0 {
		t.Errorf("store records by model version = %v, want both v0001 and v0002", recVersions)
	}
}
