// Package features implements the paper's 212-feature set (Section IV-B,
// Table III):
//
//	f1 (106) — URL statistics split by control and constraint
//	f2  (66) — pairwise Hellinger distances between term distributions
//	f3  (22) — usage of the starting and landing mld across sources
//	f4  (13) — RDN-usage consistency
//	f5   (5) — webpage content counts
//
// The extractor consumes a webpage.Analysis and a popularity ranking; it
// uses no learned vocabulary, no language resources and no online service,
// which is what makes the feature set adaptable, usable and
// language-independent (Section IV-A).
package features

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"knowphish/internal/ranking"
	"knowphish/internal/terms"
	"knowphish/internal/urlx"
	"knowphish/internal/webpage"
)

// Feature-set sizes from Table III. TotalCount must equal 212.
const (
	CountF1    = 106
	CountF2    = 66
	CountF3    = 22
	CountF4    = 13
	CountF5    = 5
	TotalCount = CountF1 + CountF2 + CountF3 + CountF4 + CountF5
)

// Set is a bitmask of feature groups, used to evaluate the per-set
// experiments of Table VII / Fig. 2 / Fig. 5.
type Set uint8

// Feature groups and the combinations the paper evaluates.
const (
	F1 Set = 1 << iota
	F2
	F3
	F4
	F5

	F15  = F1 | F5
	F234 = F2 | F3 | F4
	All  = F1 | F2 | F3 | F4 | F5
)

// String names the set the way the paper does (f1, f2,3,4, fall, ...).
func (s Set) String() string {
	if s == All {
		return "fall"
	}
	var parts []string
	for i, g := range []Set{F1, F2, F3, F4, F5} {
		if s&g != 0 {
			parts = append(parts, fmt.Sprintf("%d", i+1))
		}
	}
	if len(parts) == 0 {
		return "f none"
	}
	return "f" + strings.Join(parts, ",")
}

// Extractor computes feature vectors. The zero value works but treats all
// domains as unranked; set Rank to the world's popularity list for
// feature 9.
type Extractor struct {
	// Rank is the local popularity list (the paper's offline Alexa
	// copy). Nil means every domain is unranked.
	Rank *ranking.List
}

// Extract computes the full 212-feature vector for an analyzed page.
// The layout is [f1 | f2 | f3 | f4 | f5]; Names gives per-column names and
// Indices gives per-set column spans.
func (e *Extractor) Extract(a *webpage.Analysis) []float64 {
	out := make([]float64, 0, TotalCount)
	out = e.appendF1(out, a)
	out = appendF2(out, a)
	out = appendF3(out, a)
	out = appendF4(out, a)
	out = appendF5(out, a)
	return out
}

// ExtractSnapshot analyzes the snapshot and extracts its features.
func (e *Extractor) ExtractSnapshot(s *webpage.Snapshot) []float64 {
	return e.Extract(webpage.Analyze(s))
}

// urlStats computes the nine per-URL features of Table IV.
// Order: [1 protocol, 2 dotsInFreeURL, 3 levelDomains, 4 lenURL,
// 5 lenFQDN, 6 lenMLD, 7 termsInURL, 8 termsInMLD, 9 rank].
func (e *Extractor) urlStats(p urlx.Parts) [9]float64 {
	var f [9]float64
	if p.IsHTTPS() {
		f[0] = 1
	}
	f[1] = float64(strings.Count(p.FreeURL(), "."))
	f[2] = float64(p.LevelDomains())
	f[3] = float64(len(p.Raw))
	f[4] = float64(len(p.FQDN))
	f[5] = float64(len(p.MLD))
	f[6] = float64(len(terms.Extract(p.Raw)))
	f[7] = float64(len(terms.Extract(p.MLD)))
	f[8] = float64(e.Rank.Rank(p.RDN))
	if p.RDN == "" {
		f[8] = ranking.UnrankedValue
	}
	return f
}

// appendF1 emits the 106 URL features: 9 for the starting URL, 9 for the
// landing URL, and for each of the four link groups (internal/external ×
// logged/HREF) the mean/median/stdev of features 3–9 plus the https ratio.
func (e *Extractor) appendF1(out []float64, a *webpage.Analysis) []float64 {
	start := e.urlStats(a.Start)
	land := e.urlStats(a.Land)
	out = append(out, start[:]...)
	out = append(out, land[:]...)
	for _, group := range [][]urlx.Parts{a.IntLog, a.ExtLog, a.IntLink, a.ExtLink} {
		out = e.appendGroupStats(out, group)
	}
	return out
}

// appendGroupStats emits the 22 features of one link group: features 3–9
// aggregated as mean, median, stdev (7×3) plus the https ratio (1).
func (e *Extractor) appendGroupStats(out []float64, group []urlx.Parts) []float64 {
	n := len(group)
	// Collect per-URL values for features 3..9 (indices 2..8).
	cols := make([][]float64, 7)
	var httpsCount int
	for _, p := range group {
		s := e.urlStats(p)
		for c := 0; c < 7; c++ {
			cols[c] = append(cols[c], s[c+2])
		}
		if s[0] == 1 {
			httpsCount++
		}
	}
	for c := 0; c < 7; c++ {
		m, med, sd := meanMedianStd(cols[c])
		out = append(out, m, med, sd)
	}
	ratio := 0.0
	if n > 0 {
		ratio = float64(httpsCount) / float64(n)
	}
	return append(out, ratio)
}

// appendF2 emits the 66 pairwise Hellinger distances between the twelve
// feature distributions of Table I, pairs in canonical order.
func appendF2(out []float64, a *webpage.Analysis) []float64 {
	ids := webpage.FeatureDistIDs
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			out = append(out, terms.Hellinger(a.Dist(ids[i]), a.Dist(ids[j])))
		}
	}
	return out
}

// f3Sources are the six distributions checked for mld presence (binary
// features) and the five checked for substring-probability sums (Dtext is
// excluded from the sums: too many short irrelevant terms, Section IV-B).
var (
	f3BinarySources = []webpage.DistID{
		webpage.DistText, webpage.DistTitle,
		webpage.DistIntLog, webpage.DistExtLog,
		webpage.DistIntLink, webpage.DistExtLink,
	}
	f3SumSources = []webpage.DistID{
		webpage.DistTitle,
		webpage.DistIntLog, webpage.DistExtLog,
		webpage.DistIntLink, webpage.DistExtLink,
	}
)

// mldTerm folds an mld to its letters-only form, the term its usage in
// text would produce ("secure-login-77" → "securelogin").
func mldTerm(mld string) string {
	var b strings.Builder
	for _, r := range mld {
		c := terms.Canonicalize(r)
		if c > 0 {
			b.WriteRune(c)
		}
	}
	return b.String()
}

// appendF3 emits the 22 mld-usage features: 12 binary presence flags
// (starting and landing mld × six sources) and 10 substring-probability
// sums (starting and landing mld × five sources).
func appendF3(out []float64, a *webpage.Analysis) []float64 {
	// Punycode mlds are decoded first so homograph domains compare by
	// their folded unicode form.
	for _, mld := range []string{a.Start.UnicodeMLD(), a.Land.UnicodeMLD()} {
		t := mldTerm(mld)
		for _, src := range f3BinarySources {
			v := 0.0
			if t != "" && len(t) >= terms.MinTermLength && a.Dist(src).Contains(t) {
				v = 1
			}
			out = append(out, v)
		}
	}
	for _, mld := range []string{a.Start.UnicodeMLD(), a.Land.UnicodeMLD()} {
		t := mldTerm(mld)
		for _, src := range f3SumSources {
			out = append(out, a.Dist(src).SubstringProbabilitySum(t))
		}
	}
	return out
}

// appendF4 emits the 13 RDN-usage features (our instantiation of the
// paper's category, documented in DESIGN.md §4).
func appendF4(out []float64, a *webpage.Analysis) []float64 {
	chainRDNs := map[string]struct{}{}
	for _, p := range a.Chain {
		if p.RDN != "" {
			chainRDNs[p.RDN] = struct{}{}
		}
	}
	sameRDN := 0.0
	if a.Start.RDN != "" && a.Start.RDN == a.Land.RDN {
		sameRDN = 1
	}

	logAll := append(append([]urlx.Parts{}, a.IntLog...), a.ExtLog...)
	linkAll := append(append([]urlx.Parts{}, a.IntLink...), a.ExtLink...)

	intRatio := func(internal, total int) float64 {
		if total == 0 {
			return 0
		}
		return float64(internal) / float64(total)
	}
	landMatch := func(group []urlx.Parts) float64 {
		if len(group) == 0 || a.Land.RDN == "" {
			return 0
		}
		n := 0
		for _, p := range group {
			if p.RDN == a.Land.RDN {
				n++
			}
		}
		return float64(n) / float64(len(group))
	}

	extRDNCounts := map[string]int{}
	for _, p := range a.ExtLog {
		if p.RDN != "" {
			extRDNCounts[p.RDN]++
		}
	}
	for _, p := range a.ExtLink {
		if p.RDN != "" {
			extRDNCounts[p.RDN]++
		}
	}
	maxExtConcentration := 0.0
	totalExt := len(a.ExtLog) + len(a.ExtLink)
	if totalExt > 0 {
		maxCount := 0
		for _, c := range extRDNCounts {
			if c > maxCount {
				maxCount = c
			}
		}
		maxExtConcentration = float64(maxCount) / float64(totalExt)
	}

	out = append(out,
		float64(len(a.Chain)),                  // 1 chain length
		float64(len(chainRDNs)),                // 2 distinct RDNs in chain
		sameRDN,                                // 3 start RDN == landing RDN
		float64(distinctRDNs(logAll)),          // 4 distinct RDNs in logged
		float64(distinctRDNs(linkAll)),         // 5 distinct RDNs in HREF
		intRatio(len(a.IntLog), len(logAll)),   // 6 internal ratio logged
		intRatio(len(a.IntLink), len(linkAll)), // 7 internal ratio HREF
		float64(len(a.ExtLog)),                 // 8 external logged count
		float64(len(a.ExtLink)),                // 9 external HREF count
		landMatch(logAll),                      // 10 landing-RDN share, logged
		landMatch(linkAll),                     // 11 landing-RDN share, HREF
		float64(len(extRDNCounts)),             // 12 distinct external RDNs
		maxExtConcentration,                    // 13 max external concentration
	)
	return out
}

// appendF5 emits the 5 webpage-content features.
func appendF5(out []float64, a *webpage.Analysis) []float64 {
	return append(out,
		float64(a.Dist(webpage.DistText).TotalOccurrences()),
		float64(a.Dist(webpage.DistTitle).TotalOccurrences()),
		float64(a.Snap.InputCount),
		float64(a.Snap.ImageCount),
		float64(a.Snap.IFrameCount),
	)
}

func distinctRDNs(ps []urlx.Parts) int {
	set := map[string]struct{}{}
	for _, p := range ps {
		if p.RDN != "" {
			set[p.RDN] = struct{}{}
		}
	}
	return len(set)
}

// meanMedianStd computes the three aggregates of one column; empty input
// yields zeros (links of that group absent — the paper's features simply
// read 0, Section VII-B discusses the resulting null features).
func meanMedianStd(v []float64) (mean, median, std float64) {
	n := len(v)
	if n == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean = sum / float64(n)
	var sq float64
	for _, x := range v {
		d := x - mean
		sq += d * d
	}
	std = math.Sqrt(sq / float64(n))
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		median = sorted[n/2]
	} else {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return mean, median, std
}
